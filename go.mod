module flashextract

go 1.22
