// Command flashbench regenerates the evaluation of the FlashExtract paper
// (§6): it replays the example-based interaction over the 75-document
// benchmark and prints the per-document data behind Fig. 10 (number of
// examples) and Fig. 11 (synthesis time), plus the headline summary.
//
// Usage:
//
//	flashbench [-domain text|web|sheet|all] [-fig 10|11|both] [-summary]
//	flashbench -doc hadoop -v
//	flashbench -synth-json BENCH_synth.json -reps 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
)

func main() {
	domain := flag.String("domain", "all", "domain to evaluate: text, web, sheet, or all")
	fig := flag.String("fig", "both", "figure to regenerate: 10, 11, or both")
	summaryOnly := flag.Bool("summary", false, "print only the headline summary")
	docName := flag.String("doc", "", "evaluate a single document by name")
	mode := flag.String("mode", "bottom", "evaluation mode: bottom (⊥-relative, the paper's hardest case), topdown (ancestor-relative sessions), or transfer (learn on one page, run on a same-layout page; web domain)")
	verbose := flag.Bool("v", false, "per-field detail")
	synthJSON := flag.String("synth-json", "", "measure end-to-end field synthesis and write machine-readable JSON to this file ('-' for stdout); includes the large stress documents")
	reps := flag.Int("reps", 3, "repetitions per task in -synth-json mode")
	flag.Parse()

	var tasks []*bench.Task
	switch {
	case *docName != "":
		t := corpus.ByName(*docName)
		if t == nil {
			fmt.Fprintf(os.Stderr, "flashbench: unknown document %q\n", *docName)
			os.Exit(1)
		}
		tasks = []*bench.Task{t}
	case *domain == "text":
		tasks = corpus.Text()
	case *domain == "web":
		tasks = corpus.Web()
	case *domain == "sheet":
		tasks = corpus.Sheets()
	case *domain == "all":
		tasks = corpus.All()
	default:
		fmt.Fprintf(os.Stderr, "flashbench: unknown domain %q\n", *domain)
		os.Exit(1)
	}

	if *synthJSON != "" {
		if *docName == "" && (*domain == "text" || *domain == "all") {
			tasks = append(tasks, corpus.Large()...)
		}
		runSynthBench(tasks, *reps, *synthJSON)
		return
	}
	if *mode == "transfer" {
		runTransferMode()
		return
	}
	var results []bench.TaskResult
	switch *mode {
	case "bottom":
		results = bench.RunAll(tasks)
	case "topdown":
		results = bench.RunAllTopDown(tasks)
	default:
		fmt.Fprintf(os.Stderr, "flashbench: unknown mode %q\n", *mode)
		os.Exit(1)
	}

	if *verbose {
		for _, tr := range results {
			fmt.Printf("%s (%s)\n", tr.Task.Name, tr.Task.Domain)
			for _, f := range tr.Fields {
				status := "ok"
				if !f.Succeeded {
					status = "FAILED: " + f.FailReason
				}
				fmt.Printf("  %-10s pos=%d neg=%d iters=%d time=%.3fs  %s\n",
					f.Color, f.Positives, f.Negatives, f.Iterations, f.LastSynth.Seconds(), status)
			}
		}
		fmt.Println()
	}

	if !*summaryOnly {
		domains := []string{"text", "web", "sheet"}
		for _, d := range domains {
			var sub []bench.TaskResult
			for _, tr := range results {
				if tr.Task.Domain == d {
					sub = append(sub, tr)
				}
			}
			if len(sub) == 0 {
				continue
			}
			if *fig == "10" || *fig == "both" {
				fmt.Printf("== Fig. 10 (%s): average number of examples per document ==\n", d)
				bench.WriteFig10(os.Stdout, bench.Fig10(sub))
				fmt.Println()
			}
			if *fig == "11" || *fig == "both" {
				fmt.Printf("== Fig. 11 (%s): average learning time of the last interaction ==\n", d)
				bench.WriteFig11(os.Stdout, bench.Fig11(sub))
				fmt.Println()
			}
		}
	}

	fmt.Println("== Summary (§6) ==")
	bench.WriteSummary(os.Stdout, bench.Summarize(results))
}

// synthReport is the machine-readable envelope of -synth-json mode.
type synthReport struct {
	Schema    string              `json:"schema"`
	GoMaxProc int                 `json:"gomaxprocs"`
	Reps      int                 `json:"reps"`
	Tasks     []bench.SynthTiming `json:"tasks"`
}

// runSynthBench measures end-to-end field synthesis per task and writes
// the timings as JSON (the data behind BENCH_synth.json).
func runSynthBench(tasks []*bench.Task, reps int, path string) {
	if reps < 1 {
		reps = 1
	}
	report := synthReport{
		Schema:    "flashextract-synth-bench/v1",
		GoMaxProc: runtime.GOMAXPROCS(0),
		Reps:      reps,
	}
	for _, task := range tasks {
		st, err := bench.MeasureSynth(task, reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: %s: %v\n", task.Name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%-14s %-6s %8d B  best %12d ns  mean %12d ns\n",
			st.Name, st.Domain, st.DocBytes, st.BestNs, st.MeanNs)
		report.Tasks = append(report.Tasks, st)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
}

// runTransferMode evaluates the §2 transfer workflow over the webpage
// corpus: programs are learned on one page and replayed on a same-layout
// page with a different catalog.
func runTransferMode() {
	fmt.Println("== Transfer (§2): learned programs replayed on similar pages ==")
	fields, ok := 0, 0
	for _, pair := range corpus.WebTransfer() {
		results := bench.RunTransfer(pair[0], pair[1])
		status := "ok"
		for _, tr := range results {
			fields++
			if tr.Transferred {
				ok++
			} else {
				status = fmt.Sprintf("FAILED %s: %s", tr.Color, tr.Detail)
			}
		}
		fmt.Printf("%-14s %s\n", pair[0].Name, status)
	}
	fmt.Printf("\ntransferred: %d/%d fields\n", ok, fields)
}
