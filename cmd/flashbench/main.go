// Command flashbench regenerates the evaluation of the FlashExtract paper
// (§6): it replays the example-based interaction over the 75-document
// benchmark and prints the per-document data behind Fig. 10 (number of
// examples) and Fig. 11 (synthesis time), plus the headline summary.
//
// Usage:
//
//	flashbench [-domain text|web|sheet|all] [-fig 10|11|both] [-summary]
//	flashbench -doc hadoop -v
//	flashbench -synth-json BENCH_synth.json -reps 3
//	flashbench -metrics-json - [-deadline 100ms]
//	flashbench -batch-json BENCH_batch.json [-reps 3] [-batch-workers 4]
//	flashbench -interactive-json BENCH_interactive.json [-interactive-k 4]
//	flashbench -trace-out trace.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/logx"
	"flashextract/internal/metrics"
	"flashextract/internal/region"
	"flashextract/internal/trace"
)

func main() {
	domain := flag.String("domain", "all", "domain to evaluate: text, web, sheet, or all")
	fig := flag.String("fig", "both", "figure to regenerate: 10, 11, or both")
	summaryOnly := flag.Bool("summary", false, "print only the headline summary")
	docName := flag.String("doc", "", "evaluate a single document by name")
	mode := flag.String("mode", "bottom", "evaluation mode: bottom (⊥-relative, the paper's hardest case), topdown (ancestor-relative sessions), or transfer (learn on one page, run on a same-layout page; web domain)")
	verbose := flag.Bool("v", false, "per-field detail")
	synthJSON := flag.String("synth-json", "", "measure end-to-end field synthesis and write machine-readable JSON to this file ('-' for stdout); includes the large stress documents")
	reps := flag.Int("reps", 3, "repetitions per task in -synth-json mode")
	metricsJSON := flag.String("metrics-json", "", "run field synthesis with engine metrics enabled and write the metrics snapshot (candidates explored, cache hit/miss, per-phase latency) as JSON to this file ('-' for stdout)")
	deadline := flag.Duration("deadline", 0, "per-field synthesis deadline in -metrics-json mode (0 = none); budget-exhausted calls are reported, not fatal")
	batchJSON := flag.String("batch-json", "", "measure batch-runtime throughput over the corpus and write machine-readable JSON to this file ('-' for stdout)")
	batchWorkers := flag.Int("batch-workers", runtime.GOMAXPROCS(0), "parallel worker count compared against workers=1 in -batch-json mode")
	interactiveJSON := flag.String("interactive-json", "", "measure interactive k-th-example learn latency (incremental vs cold sessions) and write machine-readable JSON to this file ('-' for stdout); includes the large stress documents")
	interactiveK := flag.Int("interactive-k", 4, "maximum examples per field in -interactive-json mode")
	traceOut := flag.String("trace-out", "", "synthesize over the largest corpus document under the span tracer and write the Chrome trace-event JSON (Perfetto-loadable) to this file ('-' for stdout)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, or error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	flag.Parse()

	logger, err := logx.New(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
	baseCtx := logx.Into(context.Background(), logger)

	if *traceOut != "" {
		runTraceBench(baseCtx, *traceOut)
		return
	}

	var tasks []*bench.Task
	switch {
	case *docName != "":
		t := corpus.ByName(*docName)
		if t == nil {
			fmt.Fprintf(os.Stderr, "flashbench: unknown document %q\n", *docName)
			os.Exit(1)
		}
		tasks = []*bench.Task{t}
	case *domain == "text":
		tasks = corpus.Text()
	case *domain == "web":
		tasks = corpus.Web()
	case *domain == "sheet":
		tasks = corpus.Sheets()
	case *domain == "all":
		tasks = corpus.All()
	default:
		fmt.Fprintf(os.Stderr, "flashbench: unknown domain %q\n", *domain)
		os.Exit(1)
	}

	if *synthJSON != "" {
		if *docName == "" && (*domain == "text" || *domain == "all") {
			tasks = append(tasks, corpus.Large()...)
		}
		runSynthBench(tasks, *reps, *synthJSON)
		return
	}
	if *metricsJSON != "" {
		if *docName == "" && (*domain == "text" || *domain == "all") {
			tasks = append(tasks, corpus.Large()...)
		}
		runMetricsBench(baseCtx, tasks, *deadline, *metricsJSON)
		return
	}
	if *batchJSON != "" {
		runBatchBench(tasks, *reps, *batchWorkers, *batchJSON)
		return
	}
	if *interactiveJSON != "" {
		if *docName == "" && (*domain == "text" || *domain == "all") {
			tasks = append(tasks, corpus.Large()...)
		}
		runInteractiveBench(tasks, *interactiveK, *interactiveJSON)
		return
	}
	if *mode == "transfer" {
		runTransferMode()
		return
	}
	var results []bench.TaskResult
	switch *mode {
	case "bottom":
		results = bench.RunAll(tasks)
	case "topdown":
		results = bench.RunAllTopDown(tasks)
	default:
		fmt.Fprintf(os.Stderr, "flashbench: unknown mode %q\n", *mode)
		os.Exit(1)
	}

	if *verbose {
		for _, tr := range results {
			fmt.Printf("%s (%s)\n", tr.Task.Name, tr.Task.Domain)
			for _, f := range tr.Fields {
				status := "ok"
				if !f.Succeeded {
					status = "FAILED: " + f.FailReason
				}
				fmt.Printf("  %-10s pos=%d neg=%d iters=%d time=%.3fs  %s\n",
					f.Color, f.Positives, f.Negatives, f.Iterations, f.LastSynth.Seconds(), status)
			}
		}
		fmt.Println()
	}

	if !*summaryOnly {
		domains := []string{"text", "web", "sheet"}
		for _, d := range domains {
			var sub []bench.TaskResult
			for _, tr := range results {
				if tr.Task.Domain == d {
					sub = append(sub, tr)
				}
			}
			if len(sub) == 0 {
				continue
			}
			if *fig == "10" || *fig == "both" {
				fmt.Printf("== Fig. 10 (%s): average number of examples per document ==\n", d)
				bench.WriteFig10(os.Stdout, bench.Fig10(sub))
				fmt.Println()
			}
			if *fig == "11" || *fig == "both" {
				fmt.Printf("== Fig. 11 (%s): average learning time of the last interaction ==\n", d)
				bench.WriteFig11(os.Stdout, bench.Fig11(sub))
				fmt.Println()
			}
		}
	}

	fmt.Println("== Summary (§6) ==")
	bench.WriteSummary(os.Stdout, bench.Summarize(results))
}

// synthReport is the machine-readable envelope of -synth-json mode.
type synthReport struct {
	Schema    string              `json:"schema"`
	GoMaxProc int                 `json:"gomaxprocs"`
	Reps      int                 `json:"reps"`
	Tasks     []bench.SynthTiming `json:"tasks"`
}

// runSynthBench measures end-to-end field synthesis per task and writes
// the timings as JSON (the data behind BENCH_synth.json).
func runSynthBench(tasks []*bench.Task, reps int, path string) {
	if reps < 1 {
		reps = 1
	}
	report := synthReport{
		Schema:    "flashextract-synth-bench/v2",
		GoMaxProc: runtime.GOMAXPROCS(0),
		Reps:      reps,
	}
	for _, task := range tasks {
		st, err := bench.MeasureSynth(task, reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: %s: %v\n", task.Name, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%-14s %-6s %8d B  best %12d ns  mean %12d ns  explored %6d (unpruned %6d, pruned %6d, %4.1f%%)\n",
			st.Name, st.Domain, st.DocBytes, st.BestNs, st.MeanNs,
			st.ExploredPruned, st.ExploredUnpruned, st.CandidatesPruned, 100*st.PruneRatio)
		report.Tasks = append(report.Tasks, st)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
}

// metricsReport is the machine-readable envelope of -metrics-json mode;
// the schema is documented in EXPERIMENTS.md.
type metricsReport struct {
	Schema             string            `json:"schema"`
	GoMaxProc          int               `json:"gomaxprocs"`
	DeadlineNs         int64             `json:"deadline_ns,omitempty"`
	CandidatesExplored int64             `json:"candidates_explored"`
	Cache              engine.CacheStats `json:"cache"`
	Metrics            metrics.Snapshot  `json:"metrics"`
	Tasks              []taskMetrics     `json:"tasks"`
}

type taskMetrics struct {
	Name           string            `json:"name"`
	Domain         string            `json:"domain"`
	Fields         int               `json:"fields"`
	PartialResults int               `json:"partial_results"`
	ElapsedNs      int64             `json:"elapsed_ns"`
	Cache          engine.CacheStats `json:"cache"`
}

// runMetricsBench replays ⊥-relative field synthesis over the tasks with a
// metrics registry installed and writes the aggregated snapshot as JSON.
func runMetricsBench(baseCtx context.Context, tasks []*bench.Task, deadline time.Duration, path string) {
	reg := metrics.NewRegistry()
	report := metricsReport{
		Schema:     "flashextract-metrics/v1",
		GoMaxProc:  runtime.GOMAXPROCS(0),
		DeadlineNs: deadline.Nanoseconds(),
	}
	for _, task := range tasks {
		before := engine.CacheStats{}
		if cs, ok := task.Doc.(engine.CacheStatser); ok {
			before = cs.CacheStats()
		}
		tm := taskMetrics{Name: task.Name, Domain: task.Domain}
		start := time.Now()
		for _, fi := range task.Schema.Fields() {
			golden := task.Golden[fi.Color()]
			if len(golden) == 0 {
				continue
			}
			pos := golden
			if len(pos) > 2 {
				pos = pos[:2]
			}
			ctx := metrics.Into(baseCtx, reg)
			ctx, _ = core.WithBudget(ctx, core.SynthBudget{Deadline: synthDeadline(deadline)})
			_, pr, err := engine.SynthesizeFieldProgramCtx(
				ctx, task.Doc, task.Schema, engine.Highlighting{}, fi,
				append([]region.Region(nil), pos...), nil, map[string]bool{})
			if pr != nil && pr.Exhausted {
				tm.PartialResults++
			}
			if err != nil && (pr == nil || !pr.Exhausted) {
				fmt.Fprintf(os.Stderr, "flashbench: %s/%s: %v\n", task.Name, fi.Color(), err)
				os.Exit(1)
			}
			tm.Fields++
		}
		tm.ElapsedNs = time.Since(start).Nanoseconds()
		if cs, ok := task.Doc.(engine.CacheStatser); ok {
			after := cs.CacheStats()
			tm.Cache = engine.CacheStats{
				Hits:        after.Hits - before.Hits,
				Misses:      after.Misses - before.Misses,
				Entries:     after.Entries,
				ApproxBytes: after.ApproxBytes,
			}
		}
		report.Cache.Hits += tm.Cache.Hits
		report.Cache.Misses += tm.Cache.Misses
		report.Cache.Entries += tm.Cache.Entries
		report.Cache.ApproxBytes += tm.Cache.ApproxBytes
		report.Tasks = append(report.Tasks, tm)
		fmt.Fprintf(os.Stderr, "%-14s %-6s fields=%d partial=%d cache %d/%d  %10d ns\n",
			tm.Name, tm.Domain, tm.Fields, tm.PartialResults, tm.Cache.Hits, tm.Cache.Misses, tm.ElapsedNs)
	}
	reg.Count(metrics.CacheHits, report.Cache.Hits)
	reg.Count(metrics.CacheMisses, report.Cache.Misses)
	report.Metrics = reg.Snapshot()
	report.CandidatesExplored = reg.Counter(metrics.CandidatesExplored)
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
}

// interactiveReport is the machine-readable envelope of -interactive-json
// mode; the schema is documented in EXPERIMENTS.md.
type interactiveReport struct {
	Schema    string `json:"schema"`
	GoMaxProc int    `json:"gomaxprocs"`
	bench.InteractiveResult
}

// runInteractiveBench measures the k-th-example learn latency of
// incremental versus cold sessions over the tasks and writes the result
// as JSON (the data behind BENCH_interactive.json).
func runInteractiveBench(tasks []*bench.Task, maxK int, path string) {
	res := bench.MeasureInteractive(tasks, maxK)
	for _, tr := range res.Tasks {
		fmt.Fprintf(os.Stderr,
			"%-14s %-6s k≥2 p50 cold %10d ns  incremental %10d ns  speedup %5.1fx  hits=%d fallbacks=%d\n",
			tr.Task, tr.Domain, int64(tr.Cold.P50), int64(tr.Incremental.P50),
			tr.SpeedupP50, tr.Hits, tr.Fallbacks)
	}
	fmt.Fprintf(os.Stderr,
		"overall: k≥2 p50 cold %d ns, incremental %d ns (%.1fx); p99 cold %d ns, incremental %d ns; hits=%d fallbacks=%d divergences=%d stability_violations=%d\n",
		int64(res.Cold.P50), int64(res.Incremental.P50), res.SpeedupP50,
		int64(res.Cold.P99), int64(res.Incremental.P99),
		res.Hits, res.Fallbacks, res.Divergences, res.StabilityViolations)
	if res.Divergences != 0 || res.StabilityViolations != 0 {
		fmt.Fprintf(os.Stderr, "flashbench: incremental contract violated (%d divergences, %d stability violations)\n",
			res.Divergences, res.StabilityViolations)
		os.Exit(1)
	}
	report := interactiveReport{
		Schema:            "flashextract-interactive/v1",
		GoMaxProc:         runtime.GOMAXPROCS(0),
		InteractiveResult: res,
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
}

// runTraceBench synthesizes every field of the largest text-corpus
// document under the span tracer and writes the resulting Chrome
// trace-event JSON — load it at https://ui.perfetto.dev to see the full
// learner/validation breakdown of one synthesis run.
func runTraceBench(ctx context.Context, path string) {
	task := corpus.LargestText()
	root, err := bench.TraceTask(ctx, task)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: tracing %s: %v\n", task.Name, err)
		os.Exit(1)
	}
	out, err := trace.ChromeTrace(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "flashbench: traced %s: %d spans in %s\n",
		task.Name, len(trace.SpanNames(root)), root.Duration().Round(time.Millisecond))
	if path == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
}

// synthDeadline converts a relative deadline flag to the absolute instant
// of a SynthBudget (zero duration = no deadline).
func synthDeadline(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

// runTransferMode evaluates the §2 transfer workflow over the webpage
// corpus: programs are learned on one page and replayed on a same-layout
// page with a different catalog.
func runTransferMode() {
	fmt.Println("== Transfer (§2): learned programs replayed on similar pages ==")
	fields, ok := 0, 0
	for _, pair := range corpus.WebTransfer() {
		results := bench.RunTransfer(pair[0], pair[1])
		status := "ok"
		for _, tr := range results {
			fields++
			if tr.Transferred {
				ok++
			} else {
				status = fmt.Sprintf("FAILED %s: %s", tr.Color, tr.Detail)
			}
		}
		fmt.Printf("%-14s %s\n", pair[0].Name, status)
	}
	fmt.Printf("\ntransferred: %d/%d fields\n", ok, fields)
}
