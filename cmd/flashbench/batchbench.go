package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"flashextract/internal/batch"
	"flashextract/internal/bench"
	"flashextract/internal/metrics"
)

// batchReport is the machine-readable envelope of -batch-json mode; the
// schema (flashextract-batch-metrics/v1) is documented in EXPERIMENTS.md.
type batchReport struct {
	Schema    string           `json:"schema"`
	GoMaxProc int              `json:"gomaxprocs"`
	Reps      int              `json:"reps"`
	Domains   []batchDomain    `json:"domains"`
	Metrics   metrics.Snapshot `json:"metrics"`
}

// batchDomain reports one domain's throughput runs: a program learned on
// the trainer task is replayed over every corpus document of the domain
// (amplified to give the pool real work), serially and in parallel.
type batchDomain struct {
	Domain  string     `json:"domain"`
	Trainer string     `json:"trainer"`
	Docs    int        `json:"docs"`
	Runs    []batchRun `json:"runs"`
	// IdenticalOutput reports whether the parallel ordered output was
	// byte-identical to the serial one — the determinism guarantee.
	IdenticalOutput bool `json:"identical_output"`
}

// batchRun is one worker-count configuration, best/mean over reps.
type batchRun struct {
	Workers     int     `json:"workers"`
	BestNs      int64   `json:"best_ns"`
	MeanNs      int64   `json:"mean_ns"`
	DocsPerSec  float64 `json:"docs_per_sec"`
	Errors      int     `json:"errors"`
	OutputBytes int     `json:"output_bytes"`
}

// corpusAmplification repeats each domain's documents so a batch run has
// enough work to measure pool throughput on small corpus files.
const corpusAmplification = 8

// runBatchBench measures batch-runtime throughput per domain and writes
// the report as JSON (the data behind BENCH_batch.json).
func runBatchBench(tasks []*bench.Task, reps, workers int, path string) {
	if reps < 1 {
		reps = 1
	}
	if workers < 2 {
		workers = 2
	}
	reg := metrics.NewRegistry()
	report := batchReport{
		Schema:    "flashextract-batch-metrics/v1",
		GoMaxProc: runtime.GOMAXPROCS(0),
		Reps:      reps,
	}

	trainers := map[string]*bench.Task{}
	sources := map[string][]batch.Source{}
	var order []string
	for _, task := range tasks {
		if task.Source == "" {
			fmt.Fprintf(os.Stderr, "flashbench: task %s has no raw source\n", task.Name)
			os.Exit(1)
		}
		if _, ok := trainers[task.Domain]; !ok {
			trainers[task.Domain] = task
			order = append(order, task.Domain)
		}
		for rep := 0; rep < corpusAmplification; rep++ {
			sources[task.Domain] = append(sources[task.Domain],
				batch.StringSource(fmt.Sprintf("%s#%d", task.Name, rep), task.Source))
		}
	}

	for _, domain := range order {
		trainer := trainers[domain]
		prog, err := bench.LearnSchemaProgram(trainer, 3)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
			os.Exit(1)
		}
		dom := batchDomain{Domain: domain, Trainer: trainer.Name, Docs: len(sources[domain])}
		var serial, parallel string
		for _, w := range []int{1, workers} {
			run := batchRun{Workers: w}
			var total int64
			for rep := 0; rep < reps; rep++ {
				out, sum := timeBatch(prog, domain, w, sources[domain], reg)
				ns := sum.Elapsed.Nanoseconds()
				total += ns
				if run.BestNs == 0 || ns < run.BestNs {
					run.BestNs = ns
				}
				run.Errors = sum.Errors
				run.OutputBytes = len(out)
				if w == 1 {
					serial = out
				} else {
					parallel = out
				}
			}
			run.MeanNs = total / int64(reps)
			if run.BestNs > 0 {
				run.DocsPerSec = float64(dom.Docs) / (float64(run.BestNs) / float64(time.Second))
			}
			dom.Runs = append(dom.Runs, run)
			fmt.Fprintf(os.Stderr, "%-6s workers=%d  docs=%d errors=%d  best %12d ns  %8.0f docs/s\n",
				domain, w, dom.Docs, run.Errors, run.BestNs, run.DocsPerSec)
		}
		dom.IdenticalOutput = serial == parallel
		if !dom.IdenticalOutput {
			fmt.Fprintf(os.Stderr, "flashbench: %s: parallel output differs from serial\n", domain)
			os.Exit(1)
		}
		report.Domains = append(report.Domains, dom)
	}
	report.Metrics = reg.Snapshot()

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
}

// timeBatch runs one ordered batch and returns its output and summary.
func timeBatch(prog []byte, domain string, workers int, sources []batch.Source, sink metrics.Sink) (string, batch.Summary) {
	var buf bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: domain, Workers: workers, Ordered: true, Metrics: sink,
	}, sources, io.Writer(&buf))
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: batch %s workers=%d: %v\n", domain, workers, err)
		os.Exit(1)
	}
	return buf.String(), sum
}
