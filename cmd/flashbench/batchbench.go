package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"flashextract/internal/batch"
	"flashextract/internal/bench"
	"flashextract/internal/metrics"
)

// batchReport is the machine-readable envelope of -batch-json mode; the
// schema (flashextract-batch-metrics/v2) is documented in EXPERIMENTS.md.
// v2 replaced v1 when the run-path prefilter landed: the corpus gained
// synthetic non-matching padding and duplicated blobs, runs carry their
// prefilter/dedup configuration and skip counters, and each domain
// reports the skip rate and the prefilter's throughput gain.
type batchReport struct {
	Schema    string           `json:"schema"`
	GoMaxProc int              `json:"gomaxprocs"`
	Reps      int              `json:"reps"`
	Domains   []batchDomain    `json:"domains"`
	Metrics   metrics.Snapshot `json:"metrics"`
}

// batchCorpus is the composition of one domain's benchmark corpus.
type batchCorpus struct {
	// Real is the number of (amplified) corpus task documents.
	Real int `json:"real"`
	// Padding is the number of synthetic non-matching documents.
	Padding int `json:"padding"`
	// Duplicates is the number of extra copies of one real document.
	Duplicates int `json:"duplicates"`
	// Total is the full corpus size handed to each run.
	Total int `json:"total"`
}

// batchDomain reports one domain's throughput runs: a program learned on
// the trainer task is replayed over the domain's padded corpus under each
// run configuration.
type batchDomain struct {
	Domain  string      `json:"domain"`
	Trainer string      `json:"trainer"`
	Corpus  batchCorpus `json:"corpus"`
	Runs    []batchRun  `json:"runs"`
	// IdenticalOutput reports whether every configuration's ordered output
	// was byte-identical — the determinism and prefilter/dedup soundness
	// guarantee in one bit.
	IdenticalOutput bool `json:"identical_output"`
	// SkipRate is the admission test's rejection count relative to the
	// synthetic padding count. Real corpus documents the program matches
	// nothing in are also rejected, so the rate can slightly exceed 1;
	// a value ≥ 0.8 means at least 80% of the non-matching padding was
	// skipped (the batch test suite asserts the padding-only bound
	// directly).
	SkipRate float64 `json:"skip_rate"`
	// ThroughputGain is best prefiltered throughput over best unfiltered
	// throughput at the same worker count.
	ThroughputGain float64 `json:"throughput_gain"`
}

// batchRun is one configuration (worker count × prefilter × dedup),
// best/mean over reps.
type batchRun struct {
	Workers          int     `json:"workers"`
	Prefilter        bool    `json:"prefilter"`
	Dedup            bool    `json:"dedup"`
	BestNs           int64   `json:"best_ns"`
	MeanNs           int64   `json:"mean_ns"`
	DocsPerSec       float64 `json:"docs_per_sec"`
	Errors           int     `json:"errors"`
	OutputBytes      int     `json:"output_bytes"`
	PrefilterSkipped int     `json:"prefilter_skipped"`
	DedupHits        int     `json:"dedup_hits"`
}

// corpusAmplification repeats each domain's documents so a batch run has
// enough work to measure pool throughput on small corpus files.
const corpusAmplification = 8

// paddingFactor sizes the synthetic non-matching padding relative to the
// real documents: the web-scale regime where most of the corpus is noise
// and admission filtering pays.
const paddingFactor = 8

// runBatchBench measures batch-runtime throughput per domain over a
// padded, duplicated corpus and writes the report as JSON (the data
// behind BENCH_batch.json).
func runBatchBench(tasks []*bench.Task, reps, workers int, path string) {
	if reps < 1 {
		reps = 1
	}
	if workers < 2 {
		workers = 2
	}
	reg := metrics.NewRegistry()
	report := batchReport{
		Schema:    "flashextract-batch-metrics/v2",
		GoMaxProc: runtime.GOMAXPROCS(0),
		Reps:      reps,
	}

	trainers := map[string]*bench.Task{}
	real := map[string][]batch.Source{}
	var order []string
	for _, task := range tasks {
		if task.Source == "" {
			fmt.Fprintf(os.Stderr, "flashbench: task %s has no raw source\n", task.Name)
			os.Exit(1)
		}
		if _, ok := trainers[task.Domain]; !ok {
			trainers[task.Domain] = task
			order = append(order, task.Domain)
		}
		for rep := 0; rep < corpusAmplification; rep++ {
			real[task.Domain] = append(real[task.Domain],
				batch.StringSource(fmt.Sprintf("%s#%d", task.Name, rep), task.Source))
		}
	}

	for _, domain := range order {
		trainer := trainers[domain]
		prog, err := bench.LearnSchemaProgram(trainer, 3)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
			os.Exit(1)
		}
		sources, corpusInfo := padCorpus(domain, trainer, real[domain])
		dom := batchDomain{Domain: domain, Trainer: trainer.Name, Corpus: corpusInfo}

		configs := []runConfig{
			{1, false, false},
			{workers, false, false},
			{workers, true, false},
			{workers, true, true},
		}
		dom.IdenticalOutput = true
		var refOut string
		var offBest, onBest int64
		for i, c := range configs {
			run := batchRun{Workers: c.workers, Prefilter: c.prefilter, Dedup: c.dedup}
			var total int64
			var out string
			for rep := 0; rep < reps; rep++ {
				var sum batch.Summary
				out, sum = timeBatch(prog, domain, c, sources, reg)
				ns := sum.Elapsed.Nanoseconds()
				total += ns
				if run.BestNs == 0 || ns < run.BestNs {
					run.BestNs = ns
				}
				run.Errors = sum.Errors
				run.OutputBytes = len(out)
				run.PrefilterSkipped = sum.PrefilterSkipped
				run.DedupHits = sum.DedupHits
			}
			run.MeanNs = total / int64(reps)
			if run.BestNs > 0 {
				run.DocsPerSec = float64(corpusInfo.Total) / (float64(run.BestNs) / float64(time.Second))
			}
			if i == 0 {
				refOut = out
			} else if out != refOut {
				dom.IdenticalOutput = false
			}
			if c.workers == workers && !c.dedup {
				if c.prefilter {
					onBest = run.BestNs
				} else {
					offBest = run.BestNs
				}
			}
			if c.prefilter && corpusInfo.Padding > 0 {
				dom.SkipRate = float64(run.PrefilterSkipped) / float64(corpusInfo.Padding)
			}
			dom.Runs = append(dom.Runs, run)
			fmt.Fprintf(os.Stderr, "%-6s workers=%d prefilter=%-5v dedup=%-5v docs=%d errors=%d skipped=%d dedup_hits=%d  best %12d ns  %8.0f docs/s\n",
				domain, c.workers, c.prefilter, c.dedup, corpusInfo.Total, run.Errors,
				run.PrefilterSkipped, run.DedupHits, run.BestNs, run.DocsPerSec)
		}
		if onBest > 0 {
			dom.ThroughputGain = float64(offBest) / float64(onBest)
		}
		if !dom.IdenticalOutput {
			fmt.Fprintf(os.Stderr, "flashbench: %s: run outputs differ across configurations\n", domain)
			os.Exit(1)
		}
		report.Domains = append(report.Domains, dom)
	}
	report.Metrics = reg.Snapshot()

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if path == "-" {
		os.Stdout.Write(out)
		return
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: %v\n", err)
		os.Exit(1)
	}
}

// padCorpus builds a domain's benchmark corpus: the amplified real
// documents, paddingFactor times as much synthetic non-matching padding,
// and one real blob duplicated as many times as there are real documents.
func padCorpus(domain string, trainer *bench.Task, real []batch.Source) ([]batch.Source, batchCorpus) {
	info := batchCorpus{Real: len(real)}
	sources := append([]batch.Source{}, real...)
	for _, pad := range bench.PaddingDocs(domain, paddingFactor*len(real), 2026) {
		sources = append(sources, batch.StringSource(pad.Name, pad.Content))
		info.Padding++
	}
	for _, dup := range bench.DuplicateDocs(trainer.Name, trainer.Source, len(real)) {
		sources = append(sources, batch.StringSource(dup.Name, dup.Content))
		info.Duplicates++
	}
	info.Total = len(sources)
	return sources, info
}

// runConfig is one measured batch configuration.
type runConfig struct {
	workers          int
	prefilter, dedup bool
}

// timeBatch runs one ordered batch and returns its output and summary.
func timeBatch(prog []byte, domain string, c runConfig, sources []batch.Source, sink metrics.Sink) (string, batch.Summary) {
	var buf bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: domain, Workers: c.workers, Ordered: true, Metrics: sink,
		Prefilter: c.prefilter, Dedup: c.dedup,
	}, sources, io.Writer(&buf))
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashbench: batch %s workers=%d: %v\n", domain, c.workers, err)
		os.Exit(1)
	}
	return buf.String(), sum
}
