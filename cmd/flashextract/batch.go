package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"time"

	"flashextract"
)

// batchUsage documents the batch subcommand.
const batchUsage = `usage: flashextract batch -load prog.json -type text [flags] glob...

Runs a saved extraction program (flashextract ... -save prog.json) over a
collection of documents with a bounded worker pool, streaming one NDJSON
record per input document. Per-document failures become structured error
records; interrupting with Ctrl-C drains in-flight documents and exits
cleanly. Flags:
`

// batchConfig holds the batch subcommand's flags.
type batchConfig struct {
	docType  string
	loadProg string
	out      string
	workers  int
	timeout  time.Duration
	ordered  bool
	globs    []string
}

func parseBatchFlags(args []string) (batchConfig, error) {
	var cfg batchConfig
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), batchUsage)
		fs.PrintDefaults()
	}
	fs.StringVar(&cfg.docType, "type", "text", "document type: text, web, or sheet")
	fs.StringVar(&cfg.loadProg, "load", "", "saved extraction program to run (required)")
	fs.StringVar(&cfg.out, "out", "-", "NDJSON output path (- for stdout)")
	fs.IntVar(&cfg.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "per-document deadline (0 = none)")
	fs.BoolVar(&cfg.ordered, "ordered", false, "emit records in input order instead of completion order")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.globs = fs.Args()
	return cfg, nil
}

// runBatch executes the batch subcommand: it expands the input globs,
// wires SIGINT to graceful cancellation, streams the batch, and prints a
// summary line to stderr.
func runBatch(args []string, stdout io.Writer) error {
	cfg, err := parseBatchFlags(args)
	if err != nil {
		return err
	}
	if cfg.loadProg == "" {
		return fmt.Errorf("batch: -load is required")
	}
	if len(cfg.globs) == 0 {
		return fmt.Errorf("batch: no input documents (pass paths or globs)")
	}
	artifact, err := os.ReadFile(cfg.loadProg)
	if err != nil {
		return err
	}
	sources, err := expandSources(cfg.globs)
	if err != nil {
		return err
	}

	out := stdout
	if cfg.out != "" && cfg.out != "-" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	// Ctrl-C cancels the context: the pool stops dispatching, finishes
	// in-flight documents, and the summary reports the rest as skipped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sum, err := flashextract.RunBatch(ctx, flashextract.BatchOptions{
		Program:    artifact,
		DocType:    cfg.docType,
		Workers:    cfg.workers,
		DocTimeout: cfg.timeout,
		Ordered:    cfg.ordered,
	}, sources, out)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flashextract batch: %d docs, %d errors, %d skipped in %s\n",
		sum.Docs, sum.Errors, sum.Skipped, sum.Elapsed.Round(time.Millisecond))
	if sum.Cancelled {
		return fmt.Errorf("batch: interrupted after %d of %d documents", sum.Docs, len(sources))
	}
	return nil
}

// expandSources resolves the positional arguments — paths or glob
// patterns — into a deterministic, de-duplicated list of file sources.
func expandSources(globs []string) ([]flashextract.BatchSource, error) {
	seen := map[string]bool{}
	var paths []string
	for _, g := range globs {
		matches, err := filepath.Glob(g)
		if err != nil {
			return nil, fmt.Errorf("batch: bad pattern %q: %w", g, err)
		}
		if matches == nil {
			// A non-pattern path that doesn't exist should fail loudly per
			// document, not vanish: keep it so Open reports the error.
			matches = []string{g}
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				paths = append(paths, m)
			}
		}
	}
	sort.Strings(paths)
	sources := make([]flashextract.BatchSource, len(paths))
	for i, p := range paths {
		sources[i] = flashextract.BatchFileSource(p)
	}
	return sources, nil
}
