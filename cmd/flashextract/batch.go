package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"flashextract"
	"flashextract/internal/admin"
	"flashextract/internal/batch"
	"flashextract/internal/docstore"
	"flashextract/internal/faults"
	"flashextract/internal/logx"
	"flashextract/internal/metrics"
)

// batchUsage documents the batch subcommand.
const batchUsage = `usage: flashextract batch -load prog.json -type text [flags] glob...

Runs a saved extraction program (flashextract ... -save prog.json) over a
collection of documents with a bounded worker pool, streaming one NDJSON
record per input document. Per-document failures become structured error
records; interrupting with Ctrl-C drains in-flight documents and exits
cleanly.

With -admin ADDR an introspection HTTP server runs alongside the batch,
serving /metrics (Prometheus), /healthz (worker-pool liveness JSON),
/trace/last (recent document span trees), and /debug/pprof/. The process
then keeps serving after the batch finishes until interrupted, so the
run's final state stays inspectable.

With -provenance PATH the run also writes a provenance sidecar: one
flashextract-explain/v1 frame per record, in the same order as the record
stream, mapping every extracted leaf to its source byte range and the
combinator path that produced it. The record stream itself is
byte-identical to a run without -provenance.

With -chaos "seed=N[,rate=F][,failures=K][,delay=D][,sites=a;b;c]" (or the
FLASHEXTRACT_CHAOS environment variable) the run injects deterministic,
seed-reproducible faults at named sites in the serving stack, enables the
per-document invariant self-checks, and appends a one-line
flashextract-chaos/v1 JSON report to stderr. A bare seed arms only
transient/output-neutral sites, so the NDJSON output must be byte-identical
to a fault-free run. Flags:
`

// batchConfig holds the batch subcommand's flags.
type batchConfig struct {
	docType   string
	loadProg  string
	out       string
	workers   int
	timeout   time.Duration
	ordered   bool
	admin     string
	traceRing int
	logLevel  string
	logJSON   bool
	chaos      string
	selfCheck  bool
	prefilter  bool
	dedup      bool
	resume     string
	shard      string
	provenance string
	globs      []string
}

func parseBatchFlags(args []string) (batchConfig, error) {
	var cfg batchConfig
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), batchUsage)
		fs.PrintDefaults()
	}
	fs.StringVar(&cfg.docType, "type", "text", "document type: text, web, or sheet")
	fs.StringVar(&cfg.loadProg, "load", "", "saved extraction program to run (required)")
	fs.StringVar(&cfg.out, "out", "-", "NDJSON output path (- for stdout)")
	fs.IntVar(&cfg.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "per-document deadline (0 = none)")
	fs.BoolVar(&cfg.ordered, "ordered", false, "emit records in input order instead of completion order")
	fs.StringVar(&cfg.admin, "admin", "", "serve the admin endpoint on this address (e.g. :8080); empty = off")
	fs.IntVar(&cfg.traceRing, "trace-ring", 0, "document traces retained for /trace/last (0 = default)")
	fs.StringVar(&cfg.logLevel, "log-level", "info", "structured log level: debug, info, warn, or error")
	fs.BoolVar(&cfg.logJSON, "log-json", false, "emit structured logs as JSON instead of text")
	fs.StringVar(&cfg.chaos, "chaos", "", "arm deterministic fault injection: seed=N[,rate=F][,failures=K][,delay=D][,sites=a;b;c] ("+faults.EnvVar+" env var is the fallback)")
	fs.BoolVar(&cfg.selfCheck, "selfcheck", false, "verify instance well-formedness invariants per document (implied by -chaos)")
	fs.BoolVar(&cfg.prefilter, "prefilter", false, "statically analyze the program and skip documents that provably yield zero matches")
	fs.BoolVar(&cfg.dedup, "dedup", false, "extract documents with identical content once and replay the result for duplicates")
	fs.StringVar(&cfg.resume, "resume", "", "digest→outcome manifest path: replay outcomes from an earlier run and journal this one's (resumable batches)")
	fs.StringVar(&cfg.shard, "shard", "", "own only the k-th of n hash-range shards of the corpus, as \"k/n\" (shards' outputs union to the full run)")
	fs.StringVar(&cfg.provenance, "provenance", "", "write a provenance sidecar — one flashextract-explain/v1 frame per record, same order as the record stream — to this NDJSON path (- for stderr); empty = off")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.globs = fs.Args()
	return cfg, nil
}

// runBatch executes the batch subcommand: it expands the input globs,
// wires SIGINT to graceful cancellation, streams the batch, and prints a
// summary line to stderr. With -admin it also stands up the introspection
// server for the lifetime of the process and self-checks for goroutine
// leaks on the way out.
func runBatch(args []string, stdout io.Writer) error {
	cfg, err := parseBatchFlags(args)
	if err != nil {
		return err
	}
	if cfg.loadProg == "" {
		return fmt.Errorf("batch: -load is required")
	}
	if len(cfg.globs) == 0 {
		return fmt.Errorf("batch: no input documents (pass paths or globs)")
	}
	logger, err := logx.New(os.Stderr, cfg.logLevel, cfg.logJSON)
	if err != nil {
		return err
	}
	artifact, err := os.ReadFile(cfg.loadProg)
	if err != nil {
		return err
	}
	sources, err := expandSources(cfg.globs)
	if err != nil {
		return err
	}

	out := stdout
	if cfg.out != "" && cfg.out != "-" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	// Ctrl-C cancels the context: the pool stops dispatching, finishes
	// in-flight documents, and the summary reports the rest as skipped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx = logx.Into(ctx, logger)

	shard, err := docstore.ParseShard(cfg.shard)
	if err != nil {
		return err
	}
	// The provenance sidecar: capture is on only when a destination is
	// given, so plain runs keep the zero-overhead execution path.
	var provOut io.Writer
	if cfg.provenance == "-" {
		provOut = os.Stderr
	} else if cfg.provenance != "" {
		f, err := os.Create(cfg.provenance)
		if err != nil {
			return fmt.Errorf("batch: creating provenance sidecar: %w", err)
		}
		defer f.Close()
		provOut = f
	}
	opts := flashextract.BatchOptions{
		Program:    artifact,
		DocType:    cfg.docType,
		Workers:    cfg.workers,
		DocTimeout: cfg.timeout,
		Ordered:    cfg.ordered,
		SelfCheck:  cfg.selfCheck,
		Prefilter:  cfg.prefilter,
		Dedup:      cfg.dedup,
		Resume:     cfg.resume,
		ShardIndex: shard.K,
		ShardCount: shard.N,
	}
	if provOut != nil {
		opts.Provenance = true
		opts.ProvenanceOut = provOut
	}

	// Chaos mode: the -chaos spec (or the env var when the flag is empty)
	// arms deterministic fault injection, and self-checks come on with it —
	// the point of injecting faults is to catch the invariant they break.
	var inj *faults.Injector
	if cfg.chaos != "" {
		inj, err = faults.ParseSpec(cfg.chaos)
		if err != nil {
			return err
		}
	} else if inj, err = faults.FromEnv(); err != nil {
		return err
	}
	if inj != nil {
		opts.Chaos = inj
		opts.SelfCheck = true
		logger.Info("chaos armed", "spec", inj.String())
	}

	// The admin plane: a metrics registry + monitor feeding the HTTP
	// server. The goroutine baseline is captured before anything starts so
	// the post-shutdown leak check sees only what this run created.
	var srv *admin.Server
	baseline := runtime.NumGoroutine()
	if cfg.admin != "" {
		reg := metrics.NewRegistry()
		mon := &batch.Monitor{}
		opts.Metrics = reg
		opts.Monitor = mon
		opts.Trace = true
		opts.TraceRing = cfg.traceRing
		srv = admin.New(reg, mon)
		srv.SetInjector(inj)
		if err := srv.Start(cfg.admin); err != nil {
			return err
		}
		logger.Info("admin endpoint serving", "addr", srv.Addr())
	}

	sum, err := flashextract.RunBatch(ctx, opts, sources, out)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flashextract batch: %d docs, %d errors, %d skipped, %d retries in %s\n",
		sum.Docs, sum.Errors, sum.Skipped, sum.Retries, sum.Elapsed.Round(time.Millisecond))
	if sum.PrefilterSkipped > 0 || sum.DedupHits > 0 || sum.ResumeHits > 0 || sum.ShardDropped > 0 {
		fmt.Fprintf(os.Stderr, "flashextract batch: %d prefilter-skipped, %d dedup hits, %d resume hits, %d shard-dropped\n",
			sum.PrefilterSkipped, sum.DedupHits, sum.ResumeHits, sum.ShardDropped)
	}
	if inj != nil {
		if err := writeChaosReport(os.Stderr, inj, sum); err != nil {
			return err
		}
	}
	if srv != nil && ctx.Err() == nil {
		// Linger: keep the run's final metrics, health, and traces
		// inspectable until the operator interrupts.
		logger.Info("batch finished; admin endpoint lingering until interrupt",
			"addr", srv.Addr())
		<-ctx.Done()
	}
	if srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("batch: admin shutdown: %w", err)
		}
		if err := checkGoroutineLeak(baseline); err != nil {
			return err
		}
	}
	if sum.Cancelled {
		return fmt.Errorf("batch: interrupted after %d of %d documents", sum.Docs, len(sources))
	}
	return nil
}

// chaosReport is the flashextract-chaos/v1 record a chaos run appends to
// stderr: everything needed to reproduce the run (the full spec round-trips
// through -chaos) plus the outcome counters the differential checks.
type chaosReport struct {
	Schema    string   `json:"schema"`
	Spec      string   `json:"spec"`
	Seed      int64    `json:"seed"`
	Sites     []string `json:"sites"`
	Docs      int      `json:"docs"`
	Errors    int      `json:"errors"`
	Skipped   int      `json:"skipped"`
	Retries   int      `json:"retries"`
	Cancelled bool     `json:"cancelled"`
	ElapsedMS int64    `json:"elapsed_ms"`
}

// writeChaosReport emits the one-line chaos report JSON.
func writeChaosReport(w io.Writer, inj *faults.Injector, sum flashextract.BatchSummary) error {
	rep := chaosReport{
		Schema:    "flashextract-chaos/v1",
		Spec:      inj.String(),
		Seed:      inj.Seed(),
		Sites:     inj.Sites(),
		Docs:      sum.Docs,
		Errors:    sum.Errors,
		Skipped:   sum.Skipped,
		Retries:   sum.Retries,
		Cancelled: sum.Cancelled,
		ElapsedMS: sum.Elapsed.Milliseconds(),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(rep)
}

// checkGoroutineLeak verifies the process drained back to (about) its
// pre-run goroutine count after the pool and admin server shut down. The
// slack covers runtime-internal goroutines (e.g. the signal watcher) that
// legitimately outlive the run; everything else — stuck workers, an
// unshut listener — fails the process, which is exactly what the CI smoke
// test asserts.
func checkGoroutineLeak(baseline int) error {
	const slack = 3
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutine leak: %d alive after shutdown (baseline %d)", n, baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// expandSources resolves the positional arguments — paths or glob
// patterns — into a deterministic, de-duplicated list of file sources.
func expandSources(globs []string) ([]flashextract.BatchSource, error) {
	seen := map[string]bool{}
	var paths []string
	for _, g := range globs {
		matches, err := filepath.Glob(g)
		if err != nil {
			return nil, fmt.Errorf("batch: bad pattern %q: %w", g, err)
		}
		if matches == nil {
			// A non-pattern path that doesn't exist should fail loudly per
			// document, not vanish: keep it so Open reports the error.
			matches = []string{g}
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				paths = append(paths, m)
			}
		}
	}
	sort.Strings(paths)
	sources := make([]flashextract.BatchSource, len(paths))
	for i, p := range paths {
		sources[i] = flashextract.BatchFileSource(p)
	}
	return sources, nil
}
