package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"flashextract/internal/admin"
	"flashextract/internal/batch"
	"flashextract/internal/faults"
	"flashextract/internal/logx"
	"flashextract/internal/metrics"
	"flashextract/internal/serve"
)

// serveUsage documents the serve subcommand.
const serveUsage = `usage: flashextract serve -programs DIR [flags]

Runs the long-lived extraction service: saved programs named
<name>@<version>.<doctype>.json are loaded from DIR into a hot-reloadable
registry, and the process speaks the flashextract-serve/v1 NDJSON protocol
over stdin/stdout — a ready frame on startup, then one response frame per
request line (scan, scan_batch, list_programs, reload, close). Failures
are structured error frames, never a process exit. SIGHUP reloads the
program directory; SIGINT drains in-flight requests and exits cleanly.

With -admin ADDR the introspection HTTP server runs alongside the stream,
adding /programs (per-program serving counters), /rpc (the protocol over
HTTP POST), and /requests (the slowest requests' traces, as
flashextract-requests/v1) to the usual /metrics, /healthz, /trace/last,
and /debug/pprof/ endpoints.

With -access-log PATH every handled frame appends one
flashextract-access-log/v1 NDJSON line — request id, op, program, doc
count, status, latency, response bytes — to PATH (- for stderr).

With -chaos the same deterministic fault sites as the batch subcommand are
armed inside the server, and the per-document self-checks come on. Flags:
`

// serveConfig holds the serve subcommand's flags.
type serveConfig struct {
	programs     string
	admin        string
	maxInflight  int
	cache        int
	workers      int
	timeout      time.Duration
	traceRing    int
	accessLog    string
	slowRequests int
	logLevel     string
	logJSON      bool
	chaos        string
	selfCheck    bool
	prefilter    bool
}

func parseServeFlags(args []string) (serveConfig, error) {
	var cfg serveConfig
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), serveUsage)
		fs.PrintDefaults()
	}
	fs.StringVar(&cfg.programs, "programs", "", "program directory: <name>@<version>.<doctype>.json artifacts (required)")
	fs.StringVar(&cfg.admin, "admin", "", "serve the admin endpoint on this address (e.g. :8080); empty = off")
	fs.IntVar(&cfg.maxInflight, "max-inflight", serve.DefaultMaxInflight, "documents admitted across all in-flight requests before overloaded frames")
	fs.IntVar(&cfg.cache, "cache", serve.DefaultCompiledCap, "compiled program instances pooled across the registry (LRU)")
	fs.IntVar(&cfg.workers, "workers", 0, "per-scan_batch worker pool size (0 = GOMAXPROCS)")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "default per-document deadline when a request has no timeout_ms (0 = none)")
	fs.IntVar(&cfg.traceRing, "trace-ring", 0, "document traces retained for /trace/last (0 = default)")
	fs.StringVar(&cfg.accessLog, "access-log", "", "append one flashextract-access-log/v1 NDJSON line per handled frame to this path (- for stderr); empty = off")
	fs.IntVar(&cfg.slowRequests, "slow-requests", 0, "slowest requests retained for /requests (0 = default)")
	fs.StringVar(&cfg.logLevel, "log-level", "info", "structured log level: debug, info, warn, or error")
	fs.BoolVar(&cfg.logJSON, "log-json", false, "emit structured logs as JSON instead of text")
	fs.StringVar(&cfg.chaos, "chaos", "", "arm deterministic fault injection: seed=N[,rate=F][,failures=K][,delay=D][,sites=a;b;c] ("+faults.EnvVar+" env var is the fallback)")
	fs.BoolVar(&cfg.selfCheck, "selfcheck", false, "verify instance well-formedness invariants per document (implied by -chaos)")
	fs.BoolVar(&cfg.prefilter, "prefilter", false, "statically analyze programs and skip documents that provably yield zero matches")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("serve: unexpected arguments %q (documents arrive as protocol frames)", fs.Args())
	}
	return cfg, nil
}

// runServe executes the serve subcommand: it loads the program registry,
// stands up the (optional) admin endpoint with the serve-specific routes,
// wires SIGINT to graceful drain and SIGHUP to hot reload, and speaks the
// protocol over stdin/stdout until EOF, a close frame, or an interrupt.
// On the way out it self-checks for goroutine leaks.
func runServe(args []string, stdout io.Writer) error {
	cfg, err := parseServeFlags(args)
	if err != nil {
		return err
	}
	if cfg.programs == "" {
		return fmt.Errorf("serve: -programs is required")
	}
	logger, err := logx.New(os.Stderr, cfg.logLevel, cfg.logJSON)
	if err != nil {
		return err
	}

	var inj *faults.Injector
	if cfg.chaos != "" {
		inj, err = faults.ParseSpec(cfg.chaos)
		if err != nil {
			return err
		}
	} else if inj, err = faults.FromEnv(); err != nil {
		return err
	}
	if inj != nil {
		cfg.selfCheck = true
		logger.Info("chaos armed", "spec", inj.String())
	}

	// The goroutine baseline is captured before anything starts, so the
	// post-shutdown leak check sees only what this process created.
	baseline := runtime.NumGoroutine()

	// The access log: one NDJSON line per handled frame, appended so a
	// restarted server extends the same log.
	var accessLog io.Writer
	if cfg.accessLog == "-" {
		accessLog = os.Stderr
	} else if cfg.accessLog != "" {
		f, err := os.OpenFile(cfg.accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("serve: opening access log: %w", err)
		}
		defer f.Close()
		accessLog = f
	}

	registry := serve.NewRegistry(cfg.programs, cfg.cache)
	added, _, err := registry.Load()
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	mon := &batch.Monitor{}
	server, err := serve.New(serve.Options{
		Registry:       registry,
		MaxInflight:    cfg.maxInflight,
		Workers:        cfg.workers,
		DefaultTimeout: cfg.timeout,
		Metrics:        reg,
		Monitor:        mon,
		Trace:          true,
		Chaos:          inj,
		SelfCheck:      cfg.selfCheck,
		Prefilter:      cfg.prefilter,
		AccessLog:      accessLog,
		SlowRequests:   cfg.slowRequests,
	})
	if err != nil {
		return err
	}
	logger.Info("program registry loaded", "dir", cfg.programs, "programs", added)

	var adm *admin.Server
	if cfg.admin != "" {
		adm = admin.New(reg, mon)
		adm.SetInjector(inj)
		adm.Handle("/programs", server.ProgramsHandler())
		adm.Handle("/rpc", server.RPCHandler())
		adm.Handle("/requests", server.RequestsHandler())
		if err := adm.Start(cfg.admin); err != nil {
			return err
		}
		logger.Info("admin endpoint serving", "addr", adm.Addr())
	}

	// SIGINT drains: the context cancels, in-flight requests finish with
	// cancelled records, and stdin is closed to unblock the stream reader.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx = logx.Into(ctx, logger)

	// SIGHUP hot-reloads the program directory without dropping the stream;
	// a failed rescan keeps the previous catalog live.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	hupDone := make(chan struct{})
	go func() {
		defer close(hupDone)
		for {
			select {
			case <-hup:
				added, removed, err := server.Reload()
				if err != nil {
					logger.Warn("SIGHUP reload failed; catalog unchanged", "error", err)
					continue
				}
				logger.Info("SIGHUP reload", "programs", registry.Len(),
					"added", added, "removed", removed)
			case <-ctx.Done():
				return
			}
		}
	}()

	serveErr := server.Serve(ctx, os.Stdin, stdout)
	interrupted := errors.Is(serveErr, context.Canceled)
	if interrupted {
		// The drain already happened inside Serve; the interrupt is a clean
		// exit, not an error.
		serveErr = nil
	}
	// Unblock the stream reader goroutine (stdin has no cancellable read)
	// so the leak check below sees a fully drained process.
	os.Stdin.Close()
	stop()
	<-hupDone

	snap := reg.Snapshot()
	fmt.Fprintf(os.Stderr, "flashextract serve: %d frames, %d errors, %d overloaded, %d reloads, %d docs\n",
		snap.Counters[metrics.ServeRequests], snap.Counters[metrics.ServeErrors],
		snap.Counters[metrics.ServeOverloaded], snap.Counters[metrics.ServeReloads],
		snap.Counters[metrics.BatchDocs])

	if adm != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := adm.Shutdown(sctx); err != nil {
			return fmt.Errorf("serve: admin shutdown: %w", err)
		}
	}
	if err := checkGoroutineLeak(baseline); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if interrupted {
		logger.Info("interrupted; drained cleanly")
	}
	return serveErr
}
