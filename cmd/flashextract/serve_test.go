package main

import (
	"strings"
	"testing"
	"time"

	"flashextract/internal/serve"
)

func TestParseServeFlagsDefaults(t *testing.T) {
	cfg, err := parseServeFlags([]string{"-programs", "/tmp/progs"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.programs != "/tmp/progs" {
		t.Errorf("programs = %q", cfg.programs)
	}
	if cfg.maxInflight != serve.DefaultMaxInflight {
		t.Errorf("maxInflight = %d, want %d", cfg.maxInflight, serve.DefaultMaxInflight)
	}
	if cfg.cache != serve.DefaultCompiledCap {
		t.Errorf("cache = %d, want %d", cfg.cache, serve.DefaultCompiledCap)
	}
	if cfg.admin != "" || cfg.chaos != "" || cfg.selfCheck || cfg.prefilter {
		t.Errorf("non-default optional flags: %+v", cfg)
	}
	if cfg.workers != 0 || cfg.timeout != 0 {
		t.Errorf("workers/timeout defaults: %+v", cfg)
	}
	if cfg.logLevel != "info" || cfg.logJSON {
		t.Errorf("log defaults: %+v", cfg)
	}
}

func TestParseServeFlagsExplicit(t *testing.T) {
	cfg, err := parseServeFlags([]string{
		"-programs", "p", "-admin", "127.0.0.1:0", "-max-inflight", "8",
		"-cache", "3", "-workers", "2", "-timeout", "250ms",
		"-chaos", "seed=7", "-prefilter", "-log-level", "debug", "-log-json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.admin != "127.0.0.1:0" || cfg.maxInflight != 8 || cfg.cache != 3 ||
		cfg.workers != 2 || cfg.timeout != 250*time.Millisecond ||
		cfg.chaos != "seed=7" || !cfg.prefilter ||
		cfg.logLevel != "debug" || !cfg.logJSON {
		t.Errorf("parsed config: %+v", cfg)
	}
}

func TestParseServeFlagsRejectsPositionalArgs(t *testing.T) {
	_, err := parseServeFlags([]string{"-programs", "p", "doc.txt"})
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunServeRequiresPrograms(t *testing.T) {
	err := runServe(nil, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "-programs is required") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunServeMissingDirectory(t *testing.T) {
	err := runServe([]string{"-programs", "/nonexistent/progs"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "program directory") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunServeBadChaosSpec(t *testing.T) {
	err := runServe([]string{"-programs", "p", "-chaos", "rate=2"}, &strings.Builder{})
	if err == nil {
		t.Fatal("bad chaos spec accepted")
	}
}
