package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"flashextract"
	"flashextract/internal/logx"
)

func run(cfg config, out io.Writer) error {
	if cfg.loadProg != "" {
		return runLoaded(cfg, out)
	}
	logger, err := logx.New(os.Stderr, cfg.logLevel, cfg.logJSON)
	if err != nil {
		return err
	}
	ctx := logx.Into(context.Background(), logger)
	if cfg.in == "" || cfg.schema == "" || cfg.examples == "" {
		return fmt.Errorf("-in, -schema, and -examples are required (or -load a saved program)")
	}
	schemaSrc, err := os.ReadFile(cfg.schema)
	if err != nil {
		return err
	}
	sch, err := flashextract.ParseSchema(string(schemaSrc))
	if err != nil {
		return schemaDiagnostic(cfg.schema, string(schemaSrc), err)
	}
	docSrc, err := os.ReadFile(cfg.in)
	if err != nil {
		return err
	}
	doc, err := openDocument(cfg.docType, string(docSrc))
	if err != nil {
		return err
	}
	exSrc, err := os.ReadFile(cfg.examples)
	if err != nil {
		return err
	}
	examples, err := parseExamples(string(exSrc))
	if err != nil {
		return err
	}

	session := flashextract.NewSession(doc, sch)
	inferred := map[string]bool{}
	for _, ex := range examples {
		if ex.infer {
			inferred[ex.color] = true
			continue
		}
		r, err := locate(doc, ex.locator)
		if err != nil {
			return fmt.Errorf("example %q: %w", ex.raw, err)
		}
		if ex.positive {
			err = session.AddPositive(ex.color, r)
		} else {
			err = session.AddNegative(ex.color, r)
		}
		if err != nil {
			return err
		}
	}
	// Fields with examples are learned in schema (top-down) order; fields
	// marked "~" are inferred afterwards, bottom-up, once their children
	// have been materialized.
	fields := sch.Fields()
	for _, fi := range fields {
		if inferred[fi.Color()] {
			continue
		}
		fp, _, _, err := session.LearnContext(ctx, fi.Color())
		if err != nil {
			return fmt.Errorf("learning field %s: %w", fi.Color(), err)
		}
		if cfg.verbose {
			fmt.Fprintf(os.Stderr, "%s ← %s\n", fi.Color(), fp)
		}
		if err := session.Commit(fi.Color()); err != nil {
			return fmt.Errorf("committing field %s: %w", fi.Color(), err)
		}
	}
	for i := len(fields) - 1; i >= 0; i-- {
		fi := fields[i]
		if !inferred[fi.Color()] {
			continue
		}
		fp, _, err := session.InferStructure(fi.Color())
		if err != nil {
			return fmt.Errorf("inferring field %s: %w", fi.Color(), err)
		}
		if cfg.verbose {
			fmt.Fprintf(os.Stderr, "%s ← %s (inferred)\n", fi.Color(), fp)
		}
		if err := session.Commit(fi.Color()); err != nil {
			return fmt.Errorf("committing inferred field %s: %w", fi.Color(), err)
		}
	}

	inst, err := session.Extract()
	if err != nil {
		return err
	}
	if err := render(out, cfg.format, sch, inst); err != nil {
		return err
	}

	if cfg.saveProg != "" {
		q, err := session.Program()
		if err != nil {
			return err
		}
		artifact, err := flashextract.SaveProgram(q, doc)
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.saveProg, artifact, 0o644); err != nil {
			return err
		}
	}

	if cfg.runOn != "" {
		otherSrc, err := os.ReadFile(cfg.runOn)
		if err != nil {
			return err
		}
		other, err := openDocument(cfg.docType, string(otherSrc))
		if err != nil {
			return err
		}
		q, err := session.Program()
		if err != nil {
			return err
		}
		inst2, _, err := q.Run(other)
		if err != nil {
			return fmt.Errorf("running learned program on %s: %w", cfg.runOn, err)
		}
		fmt.Fprintf(out, "\n-- %s --\n", cfg.runOn)
		if err := render(out, cfg.format, sch, inst2); err != nil {
			return err
		}
	}
	return nil
}

// runLoaded executes a previously saved extraction program on the input
// document; no schema or examples are needed. Flags that only make sense
// when learning are rejected rather than silently ignored.
func runLoaded(cfg config, out io.Writer) error {
	switch {
	case cfg.saveProg != "":
		return fmt.Errorf("-save cannot be combined with -load: the program is already saved")
	case cfg.runOn != "":
		return fmt.Errorf("-run cannot be combined with -load: pass the target document as -in")
	case cfg.schema != "":
		return fmt.Errorf("-schema cannot be combined with -load: the saved program carries its schema")
	case cfg.examples != "":
		return fmt.Errorf("-examples cannot be combined with -load: a saved program needs no examples")
	}
	if cfg.in == "" {
		return fmt.Errorf("-in is required with -load")
	}
	docSrc, err := os.ReadFile(cfg.in)
	if err != nil {
		return err
	}
	doc, err := openDocument(cfg.docType, string(docSrc))
	if err != nil {
		return err
	}
	artifact, err := os.ReadFile(cfg.loadProg)
	if err != nil {
		return err
	}
	q, err := flashextract.LoadProgram(artifact, doc)
	if err != nil {
		return err
	}
	if cfg.verbose {
		fmt.Fprint(os.Stderr, q.String())
	}
	inst, _, err := q.Run(doc)
	if err != nil {
		return err
	}
	return render(out, cfg.format, q.Schema, inst)
}

// schemaDiagnostic turns a schema parse failure into a file:line:col
// diagnostic so a malformed -schema file points at the offending spot
// instead of only reporting a byte offset.
func schemaDiagnostic(path, src string, err error) error {
	var perr *flashextract.SchemaParseError
	if !errors.As(err, &perr) {
		return fmt.Errorf("%s: %w", path, err)
	}
	off := perr.Offset
	if off > len(src) {
		off = len(src)
	}
	line, col := 1, 1
	for _, c := range src[:off] {
		if c == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("%s:%d:%d: %s", path, line, col, perr.Msg)
}

func openDocument(docType, src string) (flashextract.Document, error) {
	switch docType {
	case "text":
		return flashextract.NewTextDocument(src), nil
	case "web":
		return flashextract.NewWebDocument(src)
	case "sheet":
		return flashextract.NewSheetDocument(src)
	default:
		return nil, fmt.Errorf("unknown document type %q (want text, web, or sheet)", docType)
	}
}

func render(out io.Writer, format string, sch *flashextract.Schema, inst *flashextract.Instance) error {
	switch format {
	case "json":
		_, err := io.WriteString(out, flashextract.ToJSON(inst))
		return err
	case "xml":
		_, err := io.WriteString(out, flashextract.ToXML("data", inst))
		return err
	case "csv":
		_, err := io.WriteString(out, flashextract.ToCSV(sch, inst))
		return err
	default:
		return fmt.Errorf("unknown output format %q (want json, xml, or csv)", format)
	}
}

// example is one parsed line of the examples file.
type example struct {
	positive bool
	infer    bool
	color    string
	locator  string
	raw      string
}

func parseExamples(src string) ([]example, error) {
	var out []example
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sign := line[:1]
		if sign != "+" && sign != "-" && sign != "~" {
			return nil, fmt.Errorf("line %d: want '+|- color locator' or '~ color', got %q", i+1, line)
		}
		rest := strings.TrimSpace(line[1:])
		if sign == "~" {
			// "~ color": infer this structure field bottom-up from its
			// materialized children, with no examples of its own.
			if rest == "" || strings.ContainsAny(rest, " \t") {
				return nil, fmt.Errorf("line %d: want '~ color', got %q", i+1, line)
			}
			out = append(out, example{infer: true, color: rest, raw: line})
			continue
		}
		sep := strings.IndexAny(rest, " \t")
		if sep < 0 {
			return nil, fmt.Errorf("line %d: want '+|- color locator', got %q", i+1, line)
		}
		// The locator is everything after the color, so it may contain
		// quoted spaces (find:"John Smith":0).
		out = append(out, example{
			positive: sign == "+",
			color:    rest[:sep],
			locator:  strings.TrimSpace(rest[sep:]),
			raw:      line,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no examples found")
	}
	return out, nil
}

// locate resolves a region locator against a document.
func locate(doc flashextract.Document, locator string) (flashextract.Region, error) {
	parts := splitLocator(locator)
	switch {
	case parts[0] == "text" && len(parts) == 3:
		td, ok := doc.(*flashextract.TextDocument)
		if !ok {
			return nil, fmt.Errorf("text locator on a %T document", doc)
		}
		start, err1 := strconv.Atoi(parts[1])
		end, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad offsets in %q", locator)
		}
		if start < 0 || end < start || end > len(td.Text) {
			return nil, fmt.Errorf("offsets [%d,%d) in %q out of range for a %d-byte document", start, end, locator, len(td.Text))
		}
		return td.Region(start, end), nil
	case parts[0] == "find" && len(parts) == 3:
		td, ok := doc.(*flashextract.TextDocument)
		if !ok {
			return nil, fmt.Errorf("find locator on a %T document", doc)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("bad occurrence index in %q", locator)
		}
		r, found := td.FindRegion(parts[1], n)
		if !found {
			return nil, fmt.Errorf("occurrence %d of %q not found", n, parts[1])
		}
		return r, nil
	case parts[0] == "node" && len(parts) == 3:
		wd, ok := doc.(*flashextract.WebDocument)
		if !ok {
			return nil, fmt.Errorf("node locator on a %T document", doc)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("bad node index in %q", locator)
		}
		class := strings.TrimPrefix(parts[1], ".")
		nodes := wd.Root.FindAll(flashextract.NodeHasClass(class))
		if n < 0 || n >= len(nodes) {
			return nil, fmt.Errorf("node %d with class %q not found (%d matches)", n, class, len(nodes))
		}
		return wd.NodeOf(nodes[n]), nil
	case parts[0] == "span" && len(parts) == 3:
		wd, ok := doc.(*flashextract.WebDocument)
		if !ok {
			return nil, fmt.Errorf("span locator on a %T document", doc)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("bad occurrence index in %q", locator)
		}
		r, found := wd.FindSpan(parts[1], n)
		if !found {
			return nil, fmt.Errorf("occurrence %d of %q not found in page text", n, parts[1])
		}
		return r, nil
	case parts[0] == "cell" && len(parts) == 3:
		sd, ok := doc.(*flashextract.SheetDocument)
		if !ok {
			return nil, fmt.Errorf("cell locator on a %T document", doc)
		}
		r, err1 := strconv.Atoi(parts[1])
		c, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad coordinates in %q", locator)
		}
		if !sd.Grid.InRange(r, c) {
			return nil, fmt.Errorf("cell (%d,%d) in %q out of range for a %dx%d sheet", r, c, locator, sd.Grid.Rows, sd.Grid.Cols)
		}
		return sd.CellAt(r, c), nil
	case parts[0] == "rect" && len(parts) == 5:
		sd, ok := doc.(*flashextract.SheetDocument)
		if !ok {
			return nil, fmt.Errorf("rect locator on a %T document", doc)
		}
		var coords [4]int
		for i := 0; i < 4; i++ {
			v, err := strconv.Atoi(parts[i+1])
			if err != nil {
				return nil, fmt.Errorf("bad coordinates in %q", locator)
			}
			coords[i] = v
		}
		r1, c1, r2, c2 := coords[0], coords[1], coords[2], coords[3]
		if r1 > r2 || c1 > c2 || !sd.Grid.InRange(r1, c1) || !sd.Grid.InRange(r2, c2) {
			return nil, fmt.Errorf("rect (%d,%d)-(%d,%d) in %q invalid for a %dx%d sheet", r1, c1, r2, c2, locator, sd.Grid.Rows, sd.Grid.Cols)
		}
		return sd.Rect(r1, c1, r2, c2), nil
	default:
		return nil, fmt.Errorf("unknown locator %q", locator)
	}
}

// splitLocator splits on colons but keeps quoted segments intact, so
// find:"a:b":0 works. Inside a quoted segment, a doubled quote is an
// escaped literal quote: find:"say ""hi""":0 locates `say "hi"`.
func splitLocator(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"':
			if inQuote && i+1 < len(s) && s[i+1] == '"' {
				cur.WriteByte('"')
				i++
				continue
			}
			inQuote = !inQuote
		case s[i] == ':' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(s[i])
		}
	}
	out = append(out, cur.String())
	return out
}
