package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// learnChairProgram saves the chair-inventory program of
// TestSaveAndLoadProgramCLI and returns its artifact path.
func learnChairProgram(t *testing.T, dir string) string {
	t.Helper()
	in := writeFile(t, dir, "train.txt", "inventory\nChair: Aeron (price: $540.00)\nChair: Tulip (price: $99.99)\n")
	sch := writeFile(t, dir, "schema.fx", `Struct(Names: Seq([name] String), Prices: Seq([price] Float))`)
	exs := writeFile(t, dir, "examples.fx", `
+ name find:"Aeron":0
+ name find:"Tulip":0
+ price find:"540.00":0
+ price find:"99.99":0
`)
	prog := filepath.Join(dir, "prog.json")
	var out strings.Builder
	if err := run(config{docType: "text", in: in, schema: sch, examples: exs,
		format: "json", saveProg: prog}, &out); err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBatchSubcommandEndToEnd(t *testing.T) {
	dir := t.TempDir()
	prog := learnChairProgram(t, dir)
	docs := filepath.Join(dir, "docs")
	if err := os.Mkdir(docs, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"Bistro", "Windsor", "Eames"} {
		writeFile(t, docs, fmt.Sprintf("doc%d.txt", i),
			fmt.Sprintf("inventory\nChair: %s (price: $%d.50)\n", name, 10+i))
	}
	outPath := filepath.Join(dir, "results.ndjson")
	err := runBatch([]string{
		"-load", prog, "-type", "text", "-out", outPath, "-workers", "2", "-ordered",
		filepath.Join(docs, "*.txt"),
	}, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), data)
	}
	for i, want := range []string{"Bistro", "Windsor", "Eames"} {
		if !json.Valid([]byte(lines[i])) {
			t.Fatalf("line %d not valid JSON: %q", i, lines[i])
		}
		var rec struct {
			Doc  string          `json:"doc"`
			OK   bool            `json:"ok"`
			Data json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatal(err)
		}
		if !rec.OK || !strings.Contains(string(rec.Data), want) {
			t.Errorf("line %d = %s, want ok data containing %q", i, lines[i], want)
		}
	}
}

// TestBatchSubcommandMissingFileIsolated checks a nonexistent path among
// the inputs yields an error record, not a failed run.
func TestBatchSubcommandMissingFileIsolated(t *testing.T) {
	dir := t.TempDir()
	prog := learnChairProgram(t, dir)
	good := writeFile(t, dir, "good.txt", "inventory\nChair: Bistro (price: $75.40)\n")
	var out strings.Builder
	err := runBatch([]string{
		"-load", prog, "-type", "text", "-ordered",
		good, filepath.Join(dir, "no-such-file.txt"),
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], `"ok":true`) || !strings.Contains(lines[1], `"ok":false`) {
		t.Errorf("unexpected records:\n%s", out.String())
	}
}

func TestBatchSubcommandErrors(t *testing.T) {
	dir := t.TempDir()
	prog := learnChairProgram(t, dir)
	doc := writeFile(t, dir, "d.txt", "x")
	cases := []struct {
		name string
		args []string
	}{
		{"missing -load", []string{"-type", "text", doc}},
		{"no inputs", []string{"-load", prog, "-type", "text"}},
		{"bad type", []string{"-load", prog, "-type", "pdf", doc}},
		{"missing program file", []string{"-load", filepath.Join(dir, "nope.json"), doc}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
	}
	for _, tc := range cases {
		if err := runBatch(tc.args, &strings.Builder{}); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestExpandSources(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"b.txt", "a.txt", "c.log"} {
		writeFile(t, dir, n, "x")
	}
	// Overlapping patterns must dedupe; order must be sorted.
	sources, err := expandSources([]string{
		filepath.Join(dir, "*.txt"),
		filepath.Join(dir, "a.txt"),
		filepath.Join(dir, "*"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range sources {
		names = append(names, filepath.Base(s.Name))
	}
	want := []string{"a.txt", "b.txt", "c.log"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("sources = %v, want %v", names, want)
	}
	if _, err := expandSources([]string{"[bad-pattern"}); err == nil {
		t.Error("malformed pattern accepted")
	}
}
