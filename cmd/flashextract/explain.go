package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"flashextract"
	"flashextract/internal/logx"
)

// explainUsage documents the explain subcommand.
const explainUsage = `usage: flashextract explain -load prog.json -type text [flags] glob...

Runs a saved extraction program over documents with execution capture on
and streams one flashextract-explain/v1 frame per document to stdout:
every extracted leaf mapped to its source byte range and the combinator
path (Map, Filter, Merge, Pair) that produced it. The NDJSON record
stream a plain batch run would emit goes to -records (discarded by
default) and is byte-identical to an uncaptured run. Flags:
`

// explainConfig holds the explain subcommand's flags.
type explainConfig struct {
	docType  string
	loadProg string
	records  string
	timeout  time.Duration
	logLevel string
	logJSON  bool
	globs    []string
}

func parseExplainFlags(args []string) (explainConfig, error) {
	var cfg explainConfig
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(fs.Output(), explainUsage)
		fs.PrintDefaults()
	}
	fs.StringVar(&cfg.docType, "type", "text", "document type: text, web, or sheet")
	fs.StringVar(&cfg.loadProg, "load", "", "saved extraction program to run (required)")
	fs.StringVar(&cfg.records, "records", "", "also write the NDJSON record stream to this path (- for stderr); empty = discard")
	fs.DurationVar(&cfg.timeout, "timeout", 0, "per-document deadline (0 = none)")
	fs.StringVar(&cfg.logLevel, "log-level", "info", "structured log level: debug, info, warn, or error")
	fs.BoolVar(&cfg.logJSON, "log-json", false, "emit structured logs as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.globs = fs.Args()
	return cfg, nil
}

// runExplain executes the explain subcommand: a single-worker, input-order
// batch run with provenance capture on, the explain frames on stdout and
// the record stream diverted.
func runExplain(args []string, stdout io.Writer) error {
	cfg, err := parseExplainFlags(args)
	if err != nil {
		return err
	}
	if cfg.loadProg == "" {
		return fmt.Errorf("explain: -load is required")
	}
	if len(cfg.globs) == 0 {
		return fmt.Errorf("explain: no input documents (pass paths or globs)")
	}
	logger, err := logx.New(os.Stderr, cfg.logLevel, cfg.logJSON)
	if err != nil {
		return err
	}
	artifact, err := os.ReadFile(cfg.loadProg)
	if err != nil {
		return err
	}
	sources, err := expandSources(cfg.globs)
	if err != nil {
		return err
	}

	records := io.Discard
	if cfg.records == "-" {
		records = os.Stderr
	} else if cfg.records != "" {
		f, err := os.Create(cfg.records)
		if err != nil {
			return err
		}
		defer f.Close()
		records = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	ctx = logx.Into(ctx, logger)

	// Ordered single-worker emission keeps the frame stream in input order,
	// so frame K always explains document K.
	opts := flashextract.BatchOptions{
		Program:       artifact,
		DocType:       cfg.docType,
		Workers:       1,
		DocTimeout:    cfg.timeout,
		Ordered:       true,
		Provenance:    true,
		ProvenanceOut: stdout,
	}
	sum, err := flashextract.RunBatch(ctx, opts, sources, records)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flashextract explain: %d docs, %d errors, %d skipped in %s\n",
		sum.Docs, sum.Errors, sum.Skipped, sum.Elapsed.Round(time.Millisecond))
	if sum.Cancelled {
		return fmt.Errorf("explain: interrupted after %d of %d documents", sum.Docs, len(sources))
	}
	return nil
}
