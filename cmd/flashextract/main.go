// Command flashextract extracts structured data from a document by
// examples, from the command line:
//
//	flashextract -type text -in report.txt -schema schema.fx \
//	    -examples examples.fx -format csv [-run other.txt]
//
// The schema file holds the textual schema syntax, e.g.
//
//	Seq([rec] Struct(Name: [name] String, Mass: [mass] Int))
//
// The examples file holds one example per line: a sign (+ or -), a field
// color, and a region locator. A line of the form "~ color" asks for the
// structure field to be inferred bottom-up from its materialized children
// instead of learned from examples (§3 of the paper). Blank lines and
// lines starting with # are ignored. Locators:
//
//	text:START:END          character offsets (text documents)
//	find:SUBSTRING:N        n-th occurrence of a substring (text)
//	node:CLASS:N            n-th element with a CSS class (webpages)
//	span:SUBSTRING:N        n-th occurrence in the page text (webpages)
//	cell:R:C                a cell (spreadsheets)
//	rect:R1:C1:R2:C2        a cell range (spreadsheets)
//
// Fields are learned and committed in schema order; -run re-executes the
// learned program on a second, similarly formatted document.
//
// The batch subcommand runs a saved program (-save) over a whole
// collection with a bounded worker pool, streaming NDJSON:
//
//	flashextract batch -load prog.json -type text -out results.ndjson \
//	    [-workers N] [-timeout 5s] [-ordered] 'logs/*.txt'
//
// The explain subcommand runs a saved program with execution capture on,
// streaming one flashextract-explain/v1 provenance frame per document:
//
//	flashextract explain -load prog.json -type text report.txt
//
// The serve subcommand runs the long-lived extraction service over a
// directory of named, versioned saved programs, speaking the
// flashextract-serve/v1 NDJSON protocol on stdin/stdout:
//
//	flashextract serve -programs progs/ [-admin :8080] [-max-inflight N]
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "batch" {
		if err := runBatch(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "flashextract: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		if err := runExplain(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "flashextract: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "flashextract: %v\n", err)
			os.Exit(1)
		}
		return
	}
	cfg := parseFlags()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "flashextract: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	docType  string
	in       string
	schema   string
	examples string
	format   string
	runOn    string
	saveProg string
	loadProg string
	verbose  bool
	logLevel string
	logJSON  bool
}

func parseFlags() config {
	var cfg config
	flag.StringVar(&cfg.docType, "type", "text", "document type: text, web, or sheet")
	flag.StringVar(&cfg.in, "in", "", "input document path")
	flag.StringVar(&cfg.schema, "schema", "", "schema file path")
	flag.StringVar(&cfg.examples, "examples", "", "examples file path")
	flag.StringVar(&cfg.format, "format", "json", "output format: json, xml, or csv")
	flag.StringVar(&cfg.runOn, "run", "", "optional second document to run the learned program on")
	flag.StringVar(&cfg.saveProg, "save", "", "write the learned extraction program to this path")
	flag.StringVar(&cfg.loadProg, "load", "", "load a saved extraction program instead of learning from examples")
	flag.BoolVar(&cfg.verbose, "v", false, "print learned programs")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "structured log level: debug, info, warn, or error")
	flag.BoolVar(&cfg.logJSON, "log-json", false, "emit structured logs as JSON instead of text")
	flag.Parse()
	return cfg
}
