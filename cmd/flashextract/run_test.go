package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunTextEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "doc.txt", `inventory
Chair: Aeron (price: $540.00)
Chair: Tulip (price: $99.99)
Chair: Windsor (price: $185.00)
`)
	sch := writeFile(t, dir, "schema.fx", `Struct(Names: Seq([name] String), Prices: Seq([price] Float))`)
	exs := writeFile(t, dir, "examples.fx", `
# chair names and prices
+ name find:"Aeron":0
+ name find:"Tulip":0
+ price find:"540.00":0
+ price find:"99.99":0
`)
	other := writeFile(t, dir, "other.txt", `inventory
Chair: Bistro (price: $75.40)
`)
	var out strings.Builder
	err := run(config{
		docType: "text", in: in, schema: sch, examples: exs,
		format: "csv", runOn: other,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Aeron", "Tulip", "Windsor", "540.00", "99.99", "Bistro", "75.40"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSheetJSON(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "doc.csv", `Name,Qty
Bolt,500
Nut,480
Washer,900
`)
	sch := writeFile(t, dir, "schema.fx", `Seq([rec] Struct(Part: [part] String, Qty: [qty] Int))`)
	exs := writeFile(t, dir, "examples.fx", `
+ rec rect:1:0:1:1
+ rec rect:2:0:2:1
+ part cell:1:0
+ qty cell:1:1
`)
	var out strings.Builder
	err := run(config{docType: "sheet", in: in, schema: sch, examples: exs, format: "json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"Part": "Washer"`) {
		t.Errorf("JSON missing Washer:\n%s", out.String())
	}
}

func TestRunWebXML(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "page.html", `<html><body><ul class="r">
<li class="hit"><b class="t">Alpha</b></li>
<li class="hit"><b class="t">Beta</b></li>
<li class="hit"><b class="t">Gamma</b></li>
</ul></body></html>`)
	sch := writeFile(t, dir, "schema.fx", `Seq([t] String)`)
	exs := writeFile(t, dir, "examples.fx", `+ t node:.t:0`)
	var out strings.Builder
	if err := run(config{docType: "web", in: in, schema: sch, examples: exs, format: "xml"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<item>Alpha</item>", "<item>Gamma</item>"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("XML missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "doc.txt", "hello\n")
	sch := writeFile(t, dir, "schema.fx", `Seq([x] String)`)
	exs := writeFile(t, dir, "examples.fx", `+ x find:"hello":0`)
	cases := []config{
		{}, // missing everything
		{docType: "bogus", in: in, schema: sch, examples: exs},                 // bad type
		{docType: "text", in: in, schema: sch, examples: exs, format: "bogus"}, // bad format
		{docType: "text", in: "/nonexistent", schema: sch, examples: exs},      // bad input
	}
	for i, cfg := range cases {
		if err := run(cfg, &strings.Builder{}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseExamples(t *testing.T) {
	exs, err := parseExamples("+ a find:\"x\":0\n- b cell:1:2\n# comment\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 2 || !exs[0].positive || exs[1].positive {
		t.Fatalf("parsed %+v", exs)
	}
	if exs[0].locator != `find:"x":0` {
		t.Fatalf("locator = %q", exs[0].locator)
	}
	if _, err := parseExamples("junk line\n"); err == nil {
		t.Fatal("junk should fail")
	}
	if _, err := parseExamples("# only comments\n"); err == nil {
		t.Fatal("no examples should fail")
	}
}

func TestSplitLocator(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{`find:"a:b":2`, []string{"find", "a:b", "2"}},
		// "" inside a quoted segment is an escaped literal quote.
		{`find:"say ""hi""":0`, []string{"find", `say "hi"`, "0"}},
		{`find:"""":1`, []string{"find", `"`, "1"}},
		{`find:"":0`, []string{"find", "", "0"}},
		{`text:3:7`, []string{"text", "3", "7"}},
	}
	for _, c := range cases {
		got := splitLocator(c.in)
		if len(got) != len(c.want) {
			t.Errorf("splitLocator(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitLocator(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

// TestLocateQuotedQuote exercises the "" escape end to end: locating a
// substring that itself contains a double quote.
func TestLocateQuotedQuote(t *testing.T) {
	doc, _ := openDocument("text", `she said "hi" twice`)
	r, err := locate(doc, `find:"said ""hi""":0`)
	if err != nil || r == nil {
		t.Fatalf("locate failed: %v", err)
	}
}

func TestLocateErrors(t *testing.T) {
	doc, _ := openDocument("text", "hello world")
	for _, loc := range []string{
		"bogus:1:2", `find:"zzz":0`, "text:a:b", "cell:1:2", "node:.x:0",
	} {
		if _, err := locate(doc, loc); err == nil {
			t.Errorf("locate(%q) should fail on a text document", loc)
		}
	}
	web, _ := openDocument("web", "<p class='x'>hi</p>")
	if _, err := locate(web, "node:.x:5"); err == nil {
		t.Error("out-of-range node index should fail")
	}
	if r, err := locate(web, "node:.x:0"); err != nil || r == nil {
		t.Errorf("valid node locator failed: %v", err)
	}
	if _, err := locate(web, `span:"hi":0`); err != nil {
		t.Errorf("valid span locator failed: %v", err)
	}
	sheetDoc, _ := openDocument("sheet", "a,b\nc,d\n")
	if r, err := locate(sheetDoc, "rect:0:0:1:1"); err != nil || r == nil {
		t.Errorf("valid rect locator failed: %v", err)
	}
}

func TestSaveAndLoadProgramCLI(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "doc.txt", `inventory
Chair: Aeron (price: $540.00)
Chair: Tulip (price: $99.99)
`)
	sch := writeFile(t, dir, "schema.fx", `Struct(Names: Seq([name] String), Prices: Seq([price] Float))`)
	exs := writeFile(t, dir, "examples.fx", `
+ name find:"Aeron":0
+ name find:"Tulip":0
+ price find:"540.00":0
+ price find:"99.99":0
`)
	prog := filepath.Join(dir, "prog.json")
	var out strings.Builder
	if err := run(config{docType: "text", in: in, schema: sch, examples: exs,
		format: "csv", saveProg: prog}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(prog); err != nil {
		t.Fatalf("program artifact not written: %v", err)
	}

	// Run the saved program on a new document without any examples.
	other := writeFile(t, dir, "other.txt", `inventory
Chair: Bistro (price: $75.40)
Chair: Windsor (price: $185.00)
`)
	var out2 strings.Builder
	if err := run(config{docType: "text", in: other, loadProg: prog, format: "csv"}, &out2); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Bistro", "75.40", "Windsor", "185.00"} {
		if !strings.Contains(out2.String(), want) {
			t.Errorf("loaded run missing %q:\n%s", want, out2.String())
		}
	}
}

func TestRunLoadedErrors(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "prog.json", "not json")
	in := writeFile(t, dir, "doc.txt", "x")
	if err := run(config{docType: "text", loadProg: prog, in: in}, &strings.Builder{}); err == nil {
		t.Fatal("junk program accepted")
	}
	if err := run(config{docType: "text", loadProg: prog}, &strings.Builder{}); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run(config{docType: "text", loadProg: "/nonexistent", in: in}, &strings.Builder{}); err == nil {
		t.Fatal("missing program file accepted")
	}
}

// TestRunLoadedRejectsIgnoredFlags asserts -load refuses the learning-only
// flags it used to silently ignore.
func TestRunLoadedRejectsIgnoredFlags(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "prog.json", "{}")
	in := writeFile(t, dir, "doc.txt", "x")
	cases := []struct {
		name string
		cfg  config
	}{
		{"-save", config{docType: "text", loadProg: prog, in: in, saveProg: filepath.Join(dir, "out.json")}},
		{"-run", config{docType: "text", loadProg: prog, in: in, runOn: in}},
		{"-schema", config{docType: "text", loadProg: prog, in: in, schema: in}},
		{"-examples", config{docType: "text", loadProg: prog, in: in, examples: in}},
	}
	for _, c := range cases {
		err := run(c.cfg, &strings.Builder{})
		if err == nil {
			t.Errorf("%s combined with -load was silently accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), "-load") {
			t.Errorf("%s error does not mention -load: %v", c.name, err)
		}
	}
}

func TestRunWithInferredStructure(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "doc.txt", `directory
John Smith: 425-555-0199
Mary Major: 206-555-0133
Luis Ortega: 360-555-0102
`)
	sch := writeFile(t, dir, "schema.fx", `Seq([e] Struct(Name: [n] String, Phone: [ph] String))`)
	exs := writeFile(t, dir, "examples.fx", `
+ n find:"John Smith":0
+ ph find:"425-555-0199":0
~ e
`)
	var out strings.Builder
	if err := run(config{docType: "text", in: in, schema: sch, examples: exs, format: "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"John Smith,425-555-0199", "Luis Ortega,360-555-0102"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestBadLocatorsReturnErrors feeds out-of-range and malformed locators —
// untrusted user input — and asserts every one surfaces as an error, not
// a panic, with the offending locator named.
func TestBadLocatorsReturnErrors(t *testing.T) {
	dir := t.TempDir()
	txtIn := writeFile(t, dir, "doc.txt", "hello world\n")
	csvIn := writeFile(t, dir, "doc.csv", "Name,Qty\nBolt,500\n")
	txtSch := writeFile(t, dir, "schema.fx", `Seq([x] String)`)
	csvSch := writeFile(t, dir, "schema.fx2", `Seq([x] String)`)
	cases := []struct {
		docType, in, sch, locator string
	}{
		{"text", txtIn, txtSch, "text:0:9999"},    // end past document
		{"text", txtIn, txtSch, "text:-1:3"},      // negative start
		{"text", txtIn, txtSch, "text:5:2"},       // end before start
		{"sheet", csvIn, csvSch, "cell:99:0"},     // row out of range
		{"sheet", csvIn, csvSch, "cell:0:99"},     // col out of range
		{"sheet", csvIn, csvSch, "rect:0:0:99:0"}, // corner out of range
		{"sheet", csvIn, csvSch, "rect:1:1:0:0"},  // inverted corners
	}
	for _, tc := range cases {
		exs := writeFile(t, dir, "examples.fx", "+ x "+tc.locator+"\n")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("locator %q panicked: %v", tc.locator, r)
				}
			}()
			err := run(config{docType: tc.docType, in: tc.in, schema: tc.sch, examples: exs, format: "json"}, &strings.Builder{})
			if err == nil {
				t.Errorf("locator %q: expected error", tc.locator)
			} else if !strings.Contains(err.Error(), tc.locator) {
				t.Errorf("locator %q: error %q does not name the locator", tc.locator, err)
			}
		}()
	}
}

// TestSchemaDiagnostic asserts a malformed -schema file reports a
// file:line:col position instead of crashing or a bare offset.
func TestSchemaDiagnostic(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "doc.txt", "hello\n")
	sch := writeFile(t, dir, "schema.fx", "Seq(\n  [x] Bogus)\n")
	exs := writeFile(t, dir, "examples.fx", `+ x find:"hello":0`)
	err := run(config{docType: "text", in: in, schema: sch, examples: exs, format: "json"}, &strings.Builder{})
	if err == nil {
		t.Fatal("malformed schema accepted")
	}
	if !strings.Contains(err.Error(), sch+":2:7:") {
		t.Fatalf("error %q lacks file:line:col diagnostic", err)
	}
	if !strings.Contains(err.Error(), "Bogus") {
		t.Fatalf("error %q does not name the bad token", err)
	}
}
