package flashextract_test

import (
	"strings"
	"testing"

	"flashextract"
)

const report = `DLZ - Summary Report

"Sample ID:,""5007-01"""
Analyte,"Mass","Conc. Mean"
ICP,""Be"",9,0.070073
ICP,""Sc"",45,0.042397

DLZ - Summary Report

"Sample ID:,""5007-02"""
Analyte,"Mass","Conc. Mean"
ICP,""Be"",9,0.080112
ICP,""V"",51,0.069071
`

// TestEndToEndTextExtraction walks the full public API: schema, session,
// examples, learning relative to a materialized ancestor, extraction, and
// all three export formats — the workflow of the paper's Ex. 1.
func TestEndToEndTextExtraction(t *testing.T) {
	doc := flashextract.NewTextDocument(report)
	sch := flashextract.MustParseSchema(`
		Seq([yellow] Struct(
			Analyte: [magenta] String,
			Mass:    [violet] Int,
			CMean:   [blue] Float))`)
	s := flashextract.NewSession(doc, sch)

	// Yellow structure: the analyte lines.
	l0, _ := doc.FindRegion(`ICP,""Be"",9,0.070073`, 0)
	l1, _ := doc.FindRegion(`ICP,""Sc"",45,0.042397`, 0)
	if err := s.AddPositive("yellow", l0); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPositive("yellow", l1); err != nil {
		t.Fatal(err)
	}
	if _, inferred, err := s.Learn("yellow"); err != nil {
		t.Fatal(err)
	} else if len(inferred) != 4 {
		t.Fatalf("yellow inferred %d regions, want 4", len(inferred))
	}
	if err := s.Commit("yellow"); err != nil {
		t.Fatal(err)
	}

	// Magenta analyte names, learned relative to the yellow lines.
	be, _ := doc.FindRegion("Be", 0)
	if err := s.AddPositive("magenta", be); err != nil {
		t.Fatal(err)
	}
	fp, inferred, err := s.Learn("magenta")
	if err != nil {
		t.Fatal(err)
	}
	if fp.Ancestor == nil || fp.Ancestor.Color() != "yellow" {
		t.Fatalf("magenta should learn relative to yellow: %s", fp)
	}
	if len(inferred) != 4 {
		t.Fatalf("magenta inferred %d regions, want 4", len(inferred))
	}
	if err := s.Commit("magenta"); err != nil {
		t.Fatal(err)
	}

	// Violet mass.
	nine, _ := doc.FindRegion("9,", 0)
	mass := doc.Region(nine.Start, nine.Start+1)
	if err := s.AddPositive("violet", mass); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Learn("violet"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("violet"); err != nil {
		t.Fatal(err)
	}

	// Blue concentration mean.
	conc, _ := doc.FindRegion("0.070073", 0)
	if err := s.AddPositive("blue", conc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Learn("blue"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("blue"); err != nil {
		t.Fatal(err)
	}

	inst, err := s.Extract()
	if err != nil {
		t.Fatal(err)
	}
	jsonOut := flashextract.ToJSON(inst)
	for _, want := range []string{`"Be"`, `"Sc"`, `"V"`, "45", "0.042397"} {
		if !strings.Contains(jsonOut, want) {
			t.Errorf("JSON missing %s:\n%s", want, jsonOut)
		}
	}
	xmlOut := flashextract.ToXML("samples", inst)
	if !strings.Contains(xmlOut, "<Analyte>Be</Analyte>") {
		t.Errorf("XML missing analyte:\n%s", xmlOut)
	}
	csvOut := flashextract.ToCSV(sch, inst)
	lines := strings.Split(strings.TrimSpace(csvOut), "\n")
	if len(lines) != 5 { // header + 4 analytes
		t.Fatalf("CSV rows = %d, want 5:\n%s", len(lines), csvOut)
	}
	if lines[0] != "item.Analyte,item.Mass,item.CMean" {
		t.Fatalf("CSV header = %q", lines[0])
	}

	// Transfer: run the program on a similar report.
	q, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	other := flashextract.NewTextDocument(`DLZ - Summary Report

"Sample ID:,""9001-07"""
Analyte,"Mass","Conc. Mean"
ICP,""Fe"",56,0.120073
ICP,""Cu"",63,0.042399
`)
	inst2, _, err := q.Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst2.Items) != 2 {
		t.Fatalf("transfer items = %d", len(inst2.Items))
	}
	if inst2.Items[0].Elements[0].Value.Text != "Fe" {
		t.Fatalf("transfer first analyte = %s", inst2.Items[0])
	}
}

func TestEndToEndWebExtraction(t *testing.T) {
	doc, err := flashextract.NewWebDocument(`<html><body>
<div class="list">
  <div class="product"><span class="name">Widget</span><span class="price">$9.99</span></div>
  <div class="product"><span class="name">Gadget</span><span class="price">$19.50</span></div>
  <div class="product"><span class="name">Doohickey</span><span class="price">$3.25</span></div>
</div></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	sch := flashextract.MustParseSchema(`Seq([p] Struct(Name: [n] String, Price: [pr] String))`)
	s := flashextract.NewSession(doc, sch)
	products := doc.Root.FindAll(flashextract.NodeHasClass("product"))
	if err := s.AddPositive("p", doc.NodeOf(products[0])); err != nil {
		t.Fatal(err)
	}
	if _, inferred, err := s.Learn("p"); err != nil {
		t.Fatal(err)
	} else if len(inferred) != 3 {
		t.Fatalf("products inferred = %d", len(inferred))
	}
	if err := s.Commit("p"); err != nil {
		t.Fatal(err)
	}
	names := doc.Root.FindAll(flashextract.NodeHasClass("name"))
	if err := s.AddPositive("n", doc.NodeOf(names[0])); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Learn("n"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("n"); err != nil {
		t.Fatal(err)
	}
	prices := doc.Root.FindAll(flashextract.NodeHasClass("price"))
	if err := s.AddPositive("pr", doc.NodeOf(prices[0])); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Learn("pr"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("pr"); err != nil {
		t.Fatal(err)
	}
	inst, err := s.Extract()
	if err != nil {
		t.Fatal(err)
	}
	csv := flashextract.ToCSV(sch, inst)
	if !strings.Contains(csv, "Gadget,$19.50") {
		t.Fatalf("web CSV:\n%s", csv)
	}
}

func TestEndToEndSheetExtraction(t *testing.T) {
	doc, err := flashextract.NewSheetDocument(`Department:,Biology,,
Lee,NSF,4000,approved
Kim,NIH,2500,approved
Subtotal,,6500,
Department:,Chemistry,,
Cho,DOE,1200,pending
Subtotal,,1200,
`)
	if err != nil {
		t.Fatal(err)
	}
	sch := flashextract.MustParseSchema(`Seq([rec] Struct(Name: [nm] String, Amount: [amt] Int))`)
	s := flashextract.NewSession(doc, sch)
	if err := s.AddPositive("rec", doc.Rect(1, 0, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPositive("rec", doc.Rect(2, 0, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Learn("rec"); err != nil {
		t.Fatal(err)
	}
	// The first attempt over-approximates; the user strikes the subtotal
	// row as a negative example and relearns (the refinement loop of §3).
	if err := s.AddNegative("rec", doc.Rect(3, 0, 3, 3)); err != nil {
		t.Fatal(err)
	}
	if _, inferred, err := s.Learn("rec"); err != nil {
		t.Fatal(err)
	} else if len(inferred) != 3 {
		t.Fatalf("records inferred = %d, want 3: %v", len(inferred), inferred)
	}
	if err := s.Commit("rec"); err != nil {
		t.Fatal(err)
	}
	for color, cell := range map[string]flashextract.Region{
		"nm":  doc.CellAt(1, 0),
		"amt": doc.CellAt(1, 2),
	} {
		if err := s.AddPositive(color, cell); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Learn(color); err != nil {
			t.Fatalf("%s: %v", color, err)
		}
		if err := s.Commit(color); err != nil {
			t.Fatal(err)
		}
	}
	inst, err := s.Extract()
	if err != nil {
		t.Fatal(err)
	}
	csv := flashextract.ToCSV(sch, inst)
	for _, want := range []string{"Lee,4000", "Kim,2500", "Cho,1200"} {
		if !strings.Contains(csv, want) {
			t.Errorf("sheet CSV missing %s:\n%s", want, csv)
		}
	}
}

// TestBottomUpInference exercises the §3 bottom-up workflow on all three
// domains: leaves are materialized first and the enclosing structure is
// inferred with no examples via Session.InferStructure.
func TestBottomUpInferenceWeb(t *testing.T) {
	doc, err := flashextract.NewWebDocument(`<html><body>
<div class="pub"><a class="title">Paper A</a><span class="venue">POPL</span></div>
<div class="pub"><a class="title">Paper B</a><span class="venue">PLDI</span></div>
<div class="pub"><a class="title">Paper C</a><span class="venue">CAV</span></div>
</body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	sch := flashextract.MustParseSchema(`Seq([pub] Struct(Title: [ti] String, Venue: [ve] String))`)
	s := flashextract.NewSession(doc, sch)
	titles := doc.Root.FindAll(flashextract.NodeHasClass("title"))
	venues := doc.Root.FindAll(flashextract.NodeHasClass("venue"))
	for color, node := range map[string]flashextract.Region{
		"ti": doc.NodeOf(titles[0]),
		"ve": doc.NodeOf(venues[0]),
	} {
		if err := s.AddPositive(color, node); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Learn(color); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(color); err != nil {
			t.Fatal(err)
		}
	}
	fp, inferred, err := s.InferStructure("pub")
	if err != nil {
		t.Fatal(err)
	}
	if len(inferred) != 3 {
		t.Fatalf("inferred %d pubs, want 3 (program %s)", len(inferred), fp)
	}
	if err := s.Commit("pub"); err != nil {
		t.Fatal(err)
	}
	inst, err := s.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Items) != 3 || inst.Items[1].Elements[1].Value.Text != "PLDI" {
		t.Fatalf("instance = %s", inst)
	}
}

func TestBottomUpInferenceText(t *testing.T) {
	doc := flashextract.NewTextDocument(`directory
John Smith: 425-555-0199
Mary Major: 206-555-0133
Luis Ortega: 360-555-0102
`)
	sch := flashextract.MustParseSchema(`Seq([entry] Struct(Name: [nm] String, Phone: [ph] String))`)
	s := flashextract.NewSession(doc, sch)
	nm, _ := doc.FindRegion("John Smith", 0)
	ph, _ := doc.FindRegion("425-555-0199", 0)
	for color, r := range map[string]flashextract.Region{"nm": nm, "ph": ph} {
		if err := s.AddPositive(color, r); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Learn(color); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(color); err != nil {
			t.Fatal(err)
		}
	}
	_, inferred, err := s.InferStructure("entry")
	if err != nil {
		t.Fatal(err)
	}
	if len(inferred) != 3 {
		t.Fatalf("inferred %d entries, want 3", len(inferred))
	}
	if err := s.Commit("entry"); err != nil {
		t.Fatal(err)
	}
	inst, err := s.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Items) != 3 || inst.Items[2].Elements[0].Value.Text != "Luis Ortega" {
		t.Fatalf("instance = %s", inst)
	}
}

func TestBottomUpInferenceSheet(t *testing.T) {
	doc, err := flashextract.NewSheetDocument(`Parts,,
Bolt,500,steel
Nut,480,brass
Washer,900,steel
`)
	if err != nil {
		t.Fatal(err)
	}
	sch := flashextract.MustParseSchema(`Seq([rec] Struct(Part: [pt] String, Qty: [q] Int))`)
	s := flashextract.NewSession(doc, sch)
	for color, cells := range map[string][]flashextract.Region{
		"pt": {doc.CellAt(1, 0), doc.CellAt(2, 0)},
		"q":  {doc.CellAt(1, 1), doc.CellAt(2, 1)},
	} {
		for _, c := range cells {
			if err := s.AddPositive(color, c); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := s.Learn(color); err != nil {
			t.Fatalf("%s: %v", color, err)
		}
		if err := s.Commit(color); err != nil {
			t.Fatal(err)
		}
	}
	_, inferred, err := s.InferStructure("rec")
	if err != nil {
		t.Fatal(err)
	}
	if len(inferred) != 3 {
		t.Fatalf("inferred %d records, want 3", len(inferred))
	}
	if err := s.Commit("rec"); err != nil {
		t.Fatal(err)
	}
	inst, err := s.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if inst.Items[2].Elements[0].Value.Text != "Washer" {
		t.Fatalf("instance = %s", inst)
	}
}

// TestNullFieldWorkflow mirrors the paper's conc.-mean scenario (Fig. 1):
// a struct field that is null in some records. The field is learned
// relative to the committed record structure from examples in the records
// that do have it; records without it yield null instances, blank CSV
// cells, and empty XML elements.
func TestNullFieldWorkflow(t *testing.T) {
	doc := flashextract.NewTextDocument(`readings
sensor A-1: temp=21.5 note=ok
sensor B-2: temp=19.8
sensor C-3: temp=23.1 note=calibrate
sensor D-4: temp=18.0
`)
	sch := flashextract.MustParseSchema(`
		Seq([rec] Struct(ID: [id] String, Temp: [tmp] Float, Note: [note] String))`)
	s := flashextract.NewSession(doc, sch)

	r0, _ := doc.FindRegion("sensor A-1: temp=21.5 note=ok", 0)
	r1, _ := doc.FindRegion("sensor B-2: temp=19.8", 0)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddPositive("rec", r0))
	must(s.AddPositive("rec", r1))
	if _, _, err := s.Learn("rec"); err != nil {
		t.Fatal(err)
	}
	must(s.Commit("rec"))

	id0, _ := doc.FindRegion("A-1", 0)
	must(s.AddPositive("id", id0))
	if _, _, err := s.Learn("id"); err != nil {
		t.Fatal(err)
	}
	must(s.Commit("id"))

	// The first temperature example over-fits its end position to the
	// " note" context; a second example from a note-less record fixes it.
	t0, _ := doc.FindRegion("21.5", 0)
	t1, _ := doc.FindRegion("19.8", 0)
	must(s.AddPositive("tmp", t0))
	must(s.AddPositive("tmp", t1))
	if _, inferredTmp, err := s.Learn("tmp"); err != nil {
		t.Fatal(err)
	} else if len(inferredTmp) != 4 {
		t.Fatalf("tmp inferred %d regions, want 4: %v", len(inferredTmp), inferredTmp)
	}
	must(s.Commit("tmp"))

	// The note exists only in records A-1 and C-3.
	n0, _ := doc.FindRegion("ok", 0)
	fp, inferred, err := s.Learn("note")
	_ = fp
	_ = inferred
	if err == nil {
		t.Fatal("learning note without examples should fail")
	}
	must(s.AddPositive("note", n0))
	if _, _, err := s.Learn("note"); err != nil {
		t.Fatal(err)
	}
	// One example over-approximates (a region is highlighted inside the
	// note-less B-2 record); the user strikes it, as in Fig. 1's conc.-mean
	// refinement.
	bad, _ := doc.FindRegion("19.8", 0)
	must(s.AddNegative("note", bad))
	fp, inferred, err = s.Learn("note")
	if err != nil {
		t.Fatal(err)
	}
	if fp.Ancestor == nil || fp.Ancestor.Color() != "rec" {
		t.Fatalf("note should learn relative to rec: %s", fp)
	}
	if len(inferred) != 2 {
		t.Fatalf("note inferred %d regions, want 2 (null elsewhere): %v", len(inferred), inferred)
	}
	must(s.Commit("note"))

	inst, err := s.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Items) != 4 {
		t.Fatalf("items = %d", len(inst.Items))
	}
	if inst.Items[0].Elements[2].Value.Text != "ok" {
		t.Fatalf("rec0 note = %s", inst.Items[0])
	}
	if !inst.Items[1].Elements[2].Value.IsNull() {
		t.Fatalf("rec1 note should be null: %s", inst.Items[1])
	}
	if inst.Items[2].Elements[2].Value.Text != "calibrate" {
		t.Fatalf("rec2 note = %s", inst.Items[2])
	}
	csv := flashextract.ToCSV(sch, inst)
	if !strings.Contains(csv, "B-2,19.8,\n") {
		t.Fatalf("CSV should blank the missing note:\n%s", csv)
	}
	xml := flashextract.ToXML("sensors", inst)
	if !strings.Contains(xml, "<Note/>") {
		t.Fatalf("XML should emit an empty Note element:\n%s", xml)
	}
}
