// Benchmarks regenerating the paper's evaluation (§6): one benchmark per
// figure and domain (Figs. 10 and 11 share the simulation, so each domain
// benchmark produces both), the headline aggregate, per-operator
// micro-benchmarks, and ablations for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
package flashextract_test

import (
	"context"
	"testing"

	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/htmldom"
	"flashextract/internal/region"
	"flashextract/internal/textlang"
	"flashextract/internal/tokens"
	"flashextract/internal/xpath"
)

// simulate replays the full §6 interaction over a task set and reports
// the headline metrics alongside Go's own measurements.
func simulate(b *testing.B, tasks []*bench.Task) {
	b.Helper()
	var summary bench.Summary
	for i := 0; i < b.N; i++ {
		summary = bench.Summarize(bench.RunAll(tasks))
	}
	if summary.Failures > 0 {
		b.Fatalf("%d fields failed", summary.Failures)
	}
	b.ReportMetric(summary.AvgExamples, "examples/field")
	b.ReportMetric(summary.AvgLastSynth.Seconds()*1000, "ms-synth/field")
}

// BenchmarkFig10And11Text regenerates the text bars of Figs. 10 and 11.
func BenchmarkFig10And11Text(b *testing.B) { simulate(b, corpus.Text()) }

// BenchmarkFig10And11Web regenerates the webpage bars of Figs. 10 and 11.
func BenchmarkFig10And11Web(b *testing.B) { simulate(b, corpus.Web()) }

// BenchmarkFig10And11Sheets regenerates the spreadsheet bars of Figs. 10
// and 11.
func BenchmarkFig10And11Sheets(b *testing.B) { simulate(b, corpus.Sheets()) }

// BenchmarkEvaluation regenerates the full 75-document evaluation behind
// the paper's headline numbers (2.36 examples, 0.84 s per field).
func BenchmarkEvaluation(b *testing.B) { simulate(b, corpus.All()) }

// ---- ablations ----

// BenchmarkAblationNoCleanUp disables subsumption pruning: candidate
// lists stay larger, showing what CleanUp buys (the paper's §4.3
// optimization).
func BenchmarkAblationNoCleanUp(b *testing.B) {
	core.DisableCleanUp = true
	defer func() { core.DisableCleanUp = false }()
	simulate(b, corpus.Text())
}

// BenchmarkAblationGreedyMerge forces the greedy Merge partitioning
// instead of the exhaustive minimal-partition search.
func BenchmarkAblationGreedyMerge(b *testing.B) {
	old := core.MergeExhaustiveLimit
	core.MergeExhaustiveLimit = 0
	defer func() { core.MergeExhaustiveLimit = old }()
	simulate(b, corpus.Text())
}

// ---- per-operator micro-benchmarks ----

// BenchmarkSynthesizeTextLines measures one sequence-synthesis call on
// the Ex. 1 scenario (whole analyte lines from two examples).
func BenchmarkSynthesizeTextLines(b *testing.B) {
	task := corpus.ByName("accounts")
	doc := task.Doc
	golden := task.Golden["rec"]
	exs := []engine.SeqRegionExample{{
		Input:    doc.WholeRegion(),
		Positive: []region.Region{golden[0], golden[1]},
	}}
	lang := doc.Language()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := lang.SynthesizeSeqRegion(context.Background(), exs); len(got) == 0 {
			b.Fatal("synthesis failed")
		}
	}
}

// BenchmarkSynthesizeWebNodes measures one node-sequence synthesis call
// (wrapper induction plus framework overhead).
func BenchmarkSynthesizeWebNodes(b *testing.B) {
	task := corpus.ByName("amazon")
	doc := task.Doc
	golden := task.Golden["prod"]
	exs := []engine.SeqRegionExample{{
		Input:    doc.WholeRegion(),
		Positive: []region.Region{golden[0], golden[1]},
	}}
	lang := doc.Language()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := lang.SynthesizeSeqRegion(context.Background(), exs); len(got) == 0 {
			b.Fatal("synthesis failed")
		}
	}
}

// BenchmarkSynthesizeSheetCells measures one cell-sequence synthesis call
// on a department workbook.
func BenchmarkSynthesizeSheetCells(b *testing.B) {
	task := corpus.ByName("Funded - F")
	doc := task.Doc
	golden := task.Golden["amt"]
	exs := []engine.SeqRegionExample{{
		Input:    doc.WholeRegion(),
		Positive: []region.Region{golden[0], golden[1]},
	}}
	lang := doc.Language()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := lang.SynthesizeSeqRegion(context.Background(), exs); len(got) == 0 {
			b.Fatal("synthesis failed")
		}
	}
}

// BenchmarkLearnPositionAttrs measures FlashFill-style position attribute
// learning, the inner loop of the text DSL.
func BenchmarkLearnPositionAttrs(b *testing.B) {
	exs := []tokens.PosExample{
		{S: `ICP,""Be"",9,0.070073`, K: 4},
		{S: `ICP,""Sc"",45,0.042397`, K: 4},
	}
	for i := 0; i < b.N; i++ {
		if got := tokens.LearnAttrs(exs, tokens.Standard); len(got) == 0 {
			b.Fatal("no attributes")
		}
	}
}

// BenchmarkPosSeq measures regex-pair position scanning over a document.
func BenchmarkPosSeq(b *testing.B) {
	task := corpus.ByName("hadoop")
	text := task.Doc.(*textlang.Document).Text
	rr := tokens.RegexPair{Left: tokens.Regex{tokens.Number}, Right: tokens.Regex{tokens.Colon}}
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		if got := rr.Positions(text); len(got) == 0 {
			b.Fatal("no positions")
		}
	}
}

// BenchmarkHTMLParse measures the DOM substrate on a benchmark page.
func BenchmarkHTMLParse(b *testing.B) {
	page := `<html><body><div class="list">` +
		`<div class="p"><span class="n">Widget</span><span class="v">$9.99</span></div>` +
		`<div class="p"><span class="n">Gadget</span><span class="v">$19.50</span></div>` +
		`</div></body></html>`
	b.SetBytes(int64(len(page)))
	for i := 0; i < b.N; i++ {
		if _, err := htmldom.Parse(page); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXPathSelect measures path evaluation over a parsed page.
func BenchmarkXPathSelect(b *testing.B) {
	doc := htmldom.MustParse(`<html><body><div class="list">` +
		`<div class="p"><span class="n">A</span></div>` +
		`<div class="p"><span class="n">B</span></div>` +
		`<div class="p"><span class="n">C</span></div>` +
		`</div></body></html>`)
	p, err := xpath.Parse(`/html/body/div/div[@class='p']/span[@class='n']`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if got := p.Select(doc); len(got) != 3 {
			b.Fatal("selection failed")
		}
	}
}

// BenchmarkSchemaProgramRun measures executing an already-learned schema
// program on a fresh document (the transfer workflow of §2).
func BenchmarkSchemaProgramRun(b *testing.B) {
	task := corpus.ByName("users")
	doc := task.Doc
	sch := task.Schema
	s := engine.NewSession(doc, sch)
	for _, fi := range sch.Fields() {
		golden := task.Golden[fi.Color()]
		for _, r := range golden[:2] {
			if err := s.AddPositive(fi.Color(), r); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := s.Learn(fi.Color()); err != nil {
			b.Fatal(err)
		}
		if err := s.Commit(fi.Color()); err != nil {
			b.Fatal(err)
		}
	}
	q, err := s.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := q.Run(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopDownWorkflow measures the recommended §3 top-down ordering
// (each field learned relative to its materialized ancestor) against the
// ⊥-relative scenario of BenchmarkEvaluation.
func BenchmarkTopDownWorkflow(b *testing.B) {
	tasks := corpus.All()
	var summary bench.Summary
	for i := 0; i < b.N; i++ {
		summary = bench.Summarize(bench.RunAllTopDown(tasks))
	}
	if summary.Failures > 0 {
		b.Fatalf("%d fields failed", summary.Failures)
	}
	b.ReportMetric(summary.AvgExamples, "examples/field")
	b.ReportMetric(summary.AvgLastSynth.Seconds()*1000, "ms-synth/field")
}

// BenchmarkLargeDocumentSynthesis characterizes scaling: one synthesis
// call (two examples) over a ~100 KB log file. Position-sequence learning
// scans the document per candidate regex pair, so this is the text DSL's
// worst case.
func BenchmarkLargeDocumentSynthesis(b *testing.B) {
	var sb []byte
	var firstStart, firstEnd, secondStart, secondEnd int
	for i := 0; i < 2000; i++ {
		line := []byte("2013-02-11 10:02:11 dn.storage INFO: block pool heartbeat sent\n")
		if i == 0 {
			firstStart = len(sb)
			firstEnd = firstStart + len("2013-02-11 10:02:11")
		}
		if i == 1 {
			secondStart = len(sb)
			secondEnd = secondStart + len("2013-02-11 10:02:11")
		}
		sb = append(sb, line...)
	}
	doc := textlang.NewDocument(string(sb))
	exs := []engine.SeqRegionExample{{
		Input: doc.WholeRegion(),
		Positive: []region.Region{
			doc.Region(firstStart, firstEnd),
			doc.Region(secondStart, secondEnd),
		},
	}}
	lang := doc.Language()
	b.SetBytes(int64(len(sb)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		progs := lang.SynthesizeSeqRegion(context.Background(), exs)
		if len(progs) == 0 {
			b.Fatal("synthesis failed")
		}
	}
}
