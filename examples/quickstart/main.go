// Quickstart: extract a two-column table from a semi-structured text file
// by examples — the scenario of Ex. 1 in the FlashExtract paper (analyte
// names and masses from an instrument report).
package main

import (
	"fmt"
	"log"

	"flashextract"
)

const report = `DLZ - Summary Report

"Sample ID:,""5007-01"""
Analyte,"Mass","Conc. Mean"
ICP,""Be"",9,0.070073
ICP,""Sc"",45,0.042397
ICP,""Mn"",55,0.031052

DLZ - Summary Report

"Sample ID:,""5007-02"""
Analyte,"Mass","Conc. Mean"
ICP,""Be"",9,0.080112
ICP,""V"",51,0.069071
`

func main() {
	doc := flashextract.NewTextDocument(report)
	sch := flashextract.MustParseSchema(`
		Seq([yellow] Struct(
			Analyte: [magenta] String,
			Mass:    [violet] Int))`)
	session := flashextract.NewSession(doc, sch)

	// Highlight the first two analyte lines as examples of the yellow
	// structure rows.
	l0, _ := doc.FindRegion(`ICP,""Be"",9,0.070073`, 0)
	l1, _ := doc.FindRegion(`ICP,""Sc"",45,0.042397`, 0)
	must(session.AddPositive("yellow", l0))
	must(session.AddPositive("yellow", l1))
	learnAndCommit(session, "yellow")

	// One example each for the fields inside a row.
	be, _ := doc.FindRegion("Be", 0)
	must(session.AddPositive("magenta", be))
	learnAndCommit(session, "magenta")

	nine, _ := doc.FindRegion(`,9,`, 0)
	must(session.AddPositive("violet", doc.Region(nine.Start+1, nine.End-1)))
	learnAndCommit(session, "violet")

	instance, err := session.Extract()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Extracted table (CSV):")
	fmt.Print(flashextract.ToCSV(sch, instance))
	fmt.Println()
	fmt.Println("As JSON:")
	fmt.Print(flashextract.ToJSON(instance))
}

func learnAndCommit(s *flashextract.Session, color string) {
	prog, highlighted, err := s.Learn(color)
	if err != nil {
		log.Fatalf("learning %s: %v", color, err)
	}
	fmt.Printf("%-8s learned %s\n         highlights %d regions\n", color, prog, len(highlighted))
	must(s.Commit(color))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
