// Logs: learn an extraction program from examples on one log file, then
// run it unchanged on another file with the same format — the "run the
// program on other similar files" workflow of §2 of the FlashExtract
// paper.
package main

import (
	"fmt"
	"log"

	"flashextract"
)

const febLog = `node-7 boot sequence
2013-02-11 10:02:45 dn.storage WARN: Disk latency above threshold
2013-02-11 10:03:01 dn.rpc INFO: Heartbeat sent
2013-02-11 10:04:17 dn.storage WARN: Replica count below target
2013-02-11 10:05:59 dn.scan INFO: Scanning block pool
2013-02-11 10:06:21 dn.scan WARN: Checksum mismatch during scan
`

const marLog = `node-9 boot sequence
2013-03-02 08:11:09 dn.rpc INFO: Heartbeat sent
2013-03-02 08:12:44 dn.storage WARN: Disk almost full
2013-03-02 08:15:30 dn.scan INFO: Scan started
2013-03-02 08:17:02 dn.rpc WARN: Namenode unreachable
2013-03-02 08:19:55 dn.rpc WARN: Namenode unreachable again
`

func main() {
	doc := flashextract.NewTextDocument(febLog)
	sch := flashextract.MustParseSchema(`
		Struct(Stamps: Seq([ts] String), Warnings: Seq([msg] String))`)
	session := flashextract.NewSession(doc, sch)

	// Timestamps: one per log line. A single example matches only the WARN
	// lines (a consistent but too-narrow program), so the user highlights a
	// timestamp on an INFO line as well.
	t0, _ := doc.FindRegion("2013-02-11 10:02:45", 0)
	t1, _ := doc.FindRegion("2013-02-11 10:03:01", 0)
	must(session.AddPositive("ts", t0))
	must(session.AddPositive("ts", t1))
	learnAndCommit(session, "ts")

	// Warning messages: the text after "WARN: ".
	w0, _ := doc.FindRegion("Disk latency above threshold", 0)
	w1, _ := doc.FindRegion("Replica count below target", 0)
	must(session.AddPositive("msg", w0))
	must(session.AddPositive("msg", w1))
	learnAndCommit(session, "msg")

	instance, err := session.Extract()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("February log:")
	fmt.Print(flashextract.ToJSON(instance))

	// Run the exact same program on March's log.
	program, err := session.Program()
	if err != nil {
		log.Fatal(err)
	}
	instance2, _, err := program.Run(flashextract.NewTextDocument(marLog))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMarch log (no new examples needed):")
	fmt.Print(flashextract.ToJSON(instance2))
}

func learnAndCommit(s *flashextract.Session, color string) {
	prog, highlighted, err := s.Learn(color)
	if err != nil {
		log.Fatalf("learning %s: %v", color, err)
	}
	fmt.Printf("%-4s learned %s (%d regions)\n", color, prog, len(highlighted))
	must(s.Commit(color))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
