// Scholar: extract publication titles and per-publication author lists
// from a researcher's publication page — the scenario of Ex. 2 in the
// FlashExtract paper, including splitting a comma-separated author list
// that lives inside a single div.
package main

import (
	"fmt"
	"log"
	"strings"

	"flashextract"
)

const page = `<html><body>
<div id="results">
  <div class="pub">
    <a class="title">Automating String Processing in Spreadsheets</a>
    <div class="authors">S Gulwani</div>
    <span class="venue">POPL 2011</span><span class="cites">Cited by 900</span>
  </div>
  <div class="pub">
    <a class="title">Spreadsheet Data Manipulation Using Examples</a>
    <div class="authors">S Gulwani, W Harris, R Singh</div>
    <span class="venue">CACM 2012</span><span class="cites">Cited by 400</span>
  </div>
  <div class="pub">
    <a class="title">FlashExtract: A Framework for Data Extraction</a>
    <div class="authors">V Le, S Gulwani</div>
    <span class="venue">PLDI 2014</span><span class="cites">Cited by 350</span>
  </div>
</div>
</body></html>`

func main() {
	doc, err := flashextract.NewWebDocument(page)
	if err != nil {
		log.Fatal(err)
	}
	sch := flashextract.MustParseSchema(`
		Seq([green] Struct(
			Title: [blue] String,
			AuthorGroup: [yellow] Struct(
				Authors: Seq([magenta] String))))`)
	session := flashextract.NewSession(doc, sch)

	// Publications: one node example suffices (class context generalizes).
	pubs := doc.Root.FindAll(flashextract.NodeHasClass("pub"))
	must(session.AddPositive("green", doc.NodeOf(pubs[0])))
	learnAndCommit(session, "green")

	// Titles inside each publication.
	titles := doc.Root.FindAll(flashextract.NodeHasClass("title"))
	must(session.AddPositive("blue", doc.NodeOf(titles[0])))
	learnAndCommit(session, "blue")

	// The author-group div (the "yellow" struct of the paper).
	groups := doc.Root.FindAll(flashextract.NodeHasClass("authors"))
	must(session.AddPositive("yellow", doc.NodeOf(groups[0])))
	learnAndCommit(session, "yellow")

	// Individual authors within the second group's comma-separated text.
	for _, name := range []string{"S Gulwani", "W Harris", "R Singh"} {
		span, ok := doc.FindSpan(name, 1)
		if name != "S Gulwani" {
			span, ok = doc.FindSpan(name, 0)
		}
		if !ok {
			log.Fatalf("span %q not found", name)
		}
		must(session.AddPositive("magenta", span))
	}
	learnAndCommit(session, "magenta")

	instance, err := session.Extract()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Publications with their authors:")
	for _, item := range instance.Items {
		title := item.Elements[0].Value.Text
		var authors []string
		group := item.Elements[1].Value
		for _, a := range group.Elements[0].Value.Items {
			authors = append(authors, a.Text)
		}
		fmt.Printf("  %-55s %s\n", title, strings.Join(authors, "; "))
	}

	// The task from the paper: publications where Vaziri — here Gulwani —
	// is the FIRST author, via the relational CSV view.
	fmt.Println("\nFirst-author filter over the relational view:")
	csv := flashextract.ToCSV(sch, instance)
	rows := strings.Split(strings.TrimSpace(csv), "\n")
	seen := map[string]bool{}
	for _, row := range rows[1:] {
		cols := strings.SplitN(row, ",", 2)
		title := cols[0]
		if !seen[title] && strings.HasPrefix(cols[1], "S Gulwani") {
			fmt.Printf("  %s\n", title)
		}
		seen[title] = true
	}
}

func learnAndCommit(s *flashextract.Session, color string) {
	prog, highlighted, err := s.Learn(color)
	if err != nil {
		log.Fatalf("learning %s: %v", color, err)
	}
	fmt.Printf("%-8s learned %s (%d regions)\n", color, prog, len(highlighted))
	must(s.Commit(color))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
