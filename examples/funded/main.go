// Funded: extract a relational table from a semi-structured spreadsheet
// with department blocks and subtotal rows — the scenario of Ex. 3 / Fig. 3
// in the FlashExtract paper ("Funded - February" from the EUSES corpus).
// The extracted view supports the paper's two tasks: summing the amounts
// while excluding subtotals, and grouping amounts by department.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"flashextract"
)

const workbook = `Funded Proposals February,,,
,,,
Department:,Biology,,
Lee,NSF,4000,approved
Kim,NIH,2500,approved
Subtotal,,6500,
Department:,Chemistry,,
Cho,DOE,1200,pending
Subtotal,,1200,
Department:,Physics,,
Park,NASA,900,approved
Ruiz,NSF,3100,approved
May,DOD,700,pending
Subtotal,,4700,
`

func main() {
	doc, err := flashextract.NewSheetDocument(workbook)
	if err != nil {
		log.Fatal(err)
	}
	sch := flashextract.MustParseSchema(`
		Seq([green] Struct(
			Investigator: [blue] String,
			Amount:       [magenta] Int))`)
	session := flashextract.NewSession(doc, sch)

	// Record rows: two positives, then strike the subtotal row that the
	// first attempt wrongly includes.
	must(session.AddPositive("green", doc.Rect(3, 0, 3, 3)))
	must(session.AddPositive("green", doc.Rect(4, 0, 4, 3)))
	if _, _, err := session.Learn("green"); err != nil {
		log.Fatal(err)
	}
	must(session.AddNegative("green", doc.Rect(5, 0, 5, 3)))
	learnAndCommit(session, "green")

	must(session.AddPositive("blue", doc.CellAt(3, 0)))
	learnAndCommit(session, "blue")

	must(session.AddPositive("magenta", doc.CellAt(3, 2)))
	learnAndCommit(session, "magenta")

	instance, err := session.Extract()
	if err != nil {
		log.Fatal(err)
	}
	csv := flashextract.ToCSV(sch, instance)
	fmt.Println("Relational view:")
	fmt.Print(csv)

	// Task (a): SUM over the amount column, subtotals excluded by
	// construction.
	total := 0
	rows := strings.Split(strings.TrimSpace(csv), "\n")[1:]
	for _, row := range rows {
		cols := strings.Split(row, ",")
		v, err := strconv.Atoi(cols[1])
		if err != nil {
			log.Fatal(err)
		}
		total += v
	}
	fmt.Printf("\nTask (a): total funded amount = %d\n", total)

	// Task (b): group by department. The department of each record is the
	// nearest "Department:" row above it in the original sheet; with the
	// extracted records in sheet order we can walk the blocks directly.
	fmt.Println("\nTask (b): amount by department:")
	grid := strings.Split(strings.TrimSpace(workbook), "\n")
	dept := ""
	byDept := map[string]int{}
	var order []string
	recIdx := 0
	for _, line := range grid {
		cells := strings.Split(line, ",")
		if cells[0] == "Department:" {
			dept = cells[1]
			continue
		}
		if recIdx < len(rows) && strings.HasPrefix(line, strings.Split(rows[recIdx], ",")[0]+",") {
			v, _ := strconv.Atoi(strings.Split(rows[recIdx], ",")[1])
			if _, ok := byDept[dept]; !ok {
				order = append(order, dept)
			}
			byDept[dept] += v
			recIdx++
		}
	}
	for _, d := range order {
		fmt.Printf("  %-10s %6d\n", d, byDept[d])
	}
}

func learnAndCommit(s *flashextract.Session, color string) {
	prog, highlighted, err := s.Learn(color)
	if err != nil {
		log.Fatalf("learning %s: %v", color, err)
	}
	fmt.Printf("%-8s learned %s (%d regions)\n", color, prog, len(highlighted))
	must(s.Commit(color))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
