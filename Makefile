GO ?= go

.PHONY: all build vet test race check bench bench-synth

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: compile everything, vet, and the race-enabled
# test suite (which subsumes the plain one).
check: build vet race

bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# bench-synth regenerates the task section of BENCH_synth.json.
bench-synth:
	$(GO) run ./cmd/flashbench -synth-json BENCH_synth_tasks.json -domain text
