GO ?= go

# Iterations per fuzz target in the smoke run (a count like 40x keeps the
# run fast and deterministic in duration; use a duration for real fuzzing).
FUZZTIME ?= 40x

.PHONY: all build vet test race check bench bench-synth bench-batch bench-interactive fuzz-smoke trace-smoke chaos-smoke shard-smoke serve-smoke obs-smoke trace

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: fuzz-smoke
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz-smoke exercises every fuzz target for a handful of mutated inputs,
# so a broken learner or parser invariant fails fast in `make test`.
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzTextLearn -fuzztime $(FUZZTIME) ./internal/textlang
	$(GO) test -run NONE -fuzz FuzzAbstractSound -fuzztime $(FUZZTIME) ./internal/textlang
	$(GO) test -run NONE -fuzz FuzzXPathLearn -fuzztime $(FUZZTIME) ./internal/xpath
	$(GO) test -run NONE -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/schema
	$(GO) test -run NONE -fuzz FuzzSchemaParse -fuzztime $(FUZZTIME) ./internal/schema
	$(GO) test -run NONE -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/htmldom
	$(GO) test -run NONE -fuzz FuzzHTMLParse -fuzztime $(FUZZTIME) ./internal/htmldom
	$(GO) test -run NONE -fuzz FuzzFromCSV -fuzztime $(FUZZTIME) ./internal/sheet
	$(GO) test -run NONE -fuzz FuzzGridRoundTrip -fuzztime $(FUZZTIME) ./internal/sheet
	$(GO) test -run NONE -fuzz FuzzPrefilterSound -fuzztime $(FUZZTIME) ./internal/prefilter
	$(GO) test -run NONE -fuzz FuzzServeRequest -fuzztime $(FUZZTIME) ./internal/serve

# check is what CI runs: compile everything, vet, and the race-enabled
# test suite (which subsumes the plain one).
check: build vet race

bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# bench-synth regenerates the task section of BENCH_synth.json.
bench-synth:
	$(GO) run ./cmd/flashbench -synth-json BENCH_synth_tasks.json -domain text

# bench-batch regenerates BENCH_batch.json: batch-runtime throughput over
# the corpus, serial vs. parallel, with the determinism cross-check.
bench-batch:
	$(GO) run ./cmd/flashbench -batch-json BENCH_batch.json

# bench-interactive regenerates BENCH_interactive.json: k-th-example learn
# latency of incremental vs cold sessions over the corpus plus the large
# stress documents, with the incremental contract self-checked.
bench-interactive:
	$(GO) run ./cmd/flashbench -interactive-json BENCH_interactive.json

# trace-smoke stands up `flashextract batch -admin`, curls /healthz,
# /metrics, /trace/last, and /debug/pprof, regex-asserts the Prometheus
# exposition, and fails on an unclean SIGINT drain or goroutine leak.
trace-smoke:
	./scripts/trace_smoke.sh

# chaos-smoke runs the batch chaos differential end to end under the race
# detector: seeded fault injection at the transient sites must leave the
# NDJSON output byte-identical to a fault-free run, with retries observed,
# conservation counters intact, and no goroutine leaks.
chaos-smoke:
	./scripts/chaos_smoke.sh

# serve-smoke stands up `flashextract serve -admin` over a learned program
# directory, drives the flashextract-serve/v1 protocol over stdin/stdout
# (ready, scan, scan_batch, structured error frames, SIGHUP hot reload),
# checks /programs and /rpc on the admin side, and fails on an unclean
# close-frame exit or goroutine leak.
serve-smoke:
	./scripts/serve_smoke.sh

# obs-smoke exercises the observability plane end to end: serve with
# -access-log handles scan + explain, the access log must be line-valid
# JSON with unique request ids, the exposition must carry the
# serve_explain_* counters, /requests must retain ids and traces, and the
# explain CLI / batch -provenance sidecar must agree with plain runs.
obs-smoke:
	./scripts/obs_smoke.sh

# shard-smoke runs the hash-range sharding differential end to end under
# the race detector: three `-shard k/3` runs must partition the corpus
# with no gap or overlap and union byte-for-byte to the unsharded output.
shard-smoke:
	./scripts/shard_smoke.sh

# trace writes the Perfetto-loadable synthesis trace of the largest corpus
# document to trace.json (load it at https://ui.perfetto.dev).
trace:
	$(GO) run ./cmd/flashbench -trace-out trace.json
