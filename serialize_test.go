package flashextract_test

import (
	"strings"
	"testing"

	"flashextract"
)

// learnAll materializes every schema field from the given examples.
func learnAll(t *testing.T, s *flashextract.Session, examples map[string][]flashextract.Region) {
	t.Helper()
	for _, fi := range s.Schema().Fields() {
		for _, r := range examples[fi.Color()] {
			if err := s.AddPositive(fi.Color(), r); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := s.Learn(fi.Color()); err != nil {
			t.Fatalf("learning %s: %v", fi.Color(), err)
		}
		if err := s.Commit(fi.Color()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSaveLoadTextProgram(t *testing.T) {
	doc := flashextract.NewTextDocument(report)
	sch := flashextract.MustParseSchema(`
		Seq([yellow] Struct(Analyte: [magenta] String, Mass: [violet] Int))`)
	s := flashextract.NewSession(doc, sch)
	l0, _ := doc.FindRegion(`ICP,""Be"",9,0.070073`, 0)
	l1, _ := doc.FindRegion(`ICP,""Sc"",45,0.042397`, 0)
	be, _ := doc.FindRegion("Be", 0)
	nine, _ := doc.FindRegion("9,", 0)
	learnAll(t, s, map[string][]flashextract.Region{
		"yellow":  {l0, l1},
		"magenta": {be},
		"violet":  {doc.Region(nine.Start, nine.Start+1)},
	})
	q, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	data, err := flashextract.SaveProgram(q, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "flashextract-program/1") {
		t.Fatalf("artifact missing format marker:\n%s", data)
	}

	// Load and run on a DIFFERENT document.
	other := flashextract.NewTextDocument(`DLZ - Summary Report

"Sample ID:,""9001-07"""
Analyte,"Mass","Conc. Mean"
ICP,""Fe"",56,0.120073
ICP,""Cu"",63,0.042399
`)
	loaded, err := flashextract.LoadProgram(data, other)
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := loaded.Run(other)
	if err != nil {
		t.Fatal(err)
	}
	csv := flashextract.ToCSV(sch, inst)
	for _, want := range []string{"Fe,56", "Cu,63"} {
		if !strings.Contains(csv, want) {
			t.Errorf("loaded program output missing %s:\n%s", want, csv)
		}
	}

	// The loaded program must behave identically to the original.
	origInst, _, err := q.Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if flashextract.ToJSON(origInst) != flashextract.ToJSON(inst) {
		t.Fatal("loaded program diverges from the original")
	}
}

func TestSaveLoadWebProgram(t *testing.T) {
	page := `<html><body><div class="list">
<div class="product"><span class="name">Widget</span><span class="price">$9.99</span></div>
<div class="product"><span class="name">Gadget</span><span class="price">$19.50</span></div>
</div></body></html>`
	doc, err := flashextract.NewWebDocument(page)
	if err != nil {
		t.Fatal(err)
	}
	sch := flashextract.MustParseSchema(`Seq([p] Struct(Name: [n] String, Num: [pn] Float))`)
	s := flashextract.NewSession(doc, sch)
	products := doc.Root.FindAll(flashextract.NodeHasClass("product"))
	names := doc.Root.FindAll(flashextract.NodeHasClass("name"))
	num, _ := doc.FindSpan("9.99", 0)
	learnAll(t, s, map[string][]flashextract.Region{
		"p":  {doc.NodeOf(products[0])},
		"n":  {doc.NodeOf(names[0])},
		"pn": {num},
	})
	q, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	data, err := flashextract.SaveProgram(q, doc)
	if err != nil {
		t.Fatal(err)
	}
	other, err := flashextract.NewWebDocument(`<html><body><div class="list">
<div class="product"><span class="name">Sprocket</span><span class="price">$42.00</span></div>
<div class="product"><span class="name">Flange</span><span class="price">$7.77</span></div>
<div class="product"><span class="name">Grommet</span><span class="price">$1.05</span></div>
</div></body></html>`)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := flashextract.LoadProgram(data, other)
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := loaded.Run(other)
	if err != nil {
		t.Fatal(err)
	}
	csv := flashextract.ToCSV(sch, inst)
	for _, want := range []string{"Sprocket,42.00", "Flange,7.77", "Grommet,1.05"} {
		if !strings.Contains(csv, want) {
			t.Errorf("loaded web program output missing %s:\n%s", want, csv)
		}
	}
}

func TestSaveLoadSheetProgram(t *testing.T) {
	doc, err := flashextract.NewSheetDocument(`Name,Qty
Bolt,500
Nut,480
Washer,900
`)
	if err != nil {
		t.Fatal(err)
	}
	sch := flashextract.MustParseSchema(`Seq([rec] Struct(Part: [pt] String, Qty: [q] Int))`)
	s := flashextract.NewSession(doc, sch)
	learnAll(t, s, map[string][]flashextract.Region{
		"rec": {doc.Rect(1, 0, 1, 1), doc.Rect(2, 0, 2, 1)},
		"pt":  {doc.CellAt(1, 0)},
		"q":   {doc.CellAt(1, 1)},
	})
	q, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	data, err := flashextract.SaveProgram(q, doc)
	if err != nil {
		t.Fatal(err)
	}
	other, err := flashextract.NewSheetDocument(`Name,Qty
Anchor,120
Screw,650
`)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := flashextract.LoadProgram(data, other)
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := loaded.Run(other)
	if err != nil {
		t.Fatal(err)
	}
	csv := flashextract.ToCSV(sch, inst)
	for _, want := range []string{"Anchor,120", "Screw,650"} {
		if !strings.Contains(csv, want) {
			t.Errorf("loaded sheet program output missing %s:\n%s", want, csv)
		}
	}
}

func TestLoadProgramErrors(t *testing.T) {
	doc := flashextract.NewTextDocument("x")
	if _, err := flashextract.LoadProgram([]byte("not json"), doc); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := flashextract.LoadProgram([]byte(`{"format":"other/9"}`), doc); err == nil {
		t.Fatal("wrong format accepted")
	}
	if _, err := flashextract.LoadProgram([]byte(`{"format":"flashextract-program/1","schema":"Seq("}`), doc); err == nil {
		t.Fatal("bad schema accepted")
	}
	if _, err := flashextract.LoadProgram([]byte(
		`{"format":"flashextract-program/1","schema":"Seq([x] String)","fields":[{"color":"zzz","kind":"seq","body":{}}]}`), doc); err == nil {
		t.Fatal("unknown field accepted")
	}
}
