package core

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

// Algebraic laws of the operator semantics, checked on random integer
// sequences: the identity filters behave as identities, and Merge of a
// single argument is the argument modulo duplicate removal.

func randomSeqState(xs []int8) State {
	seq := make([]Value, len(xs))
	for i, x := range xs {
		seq[i] = int(x)
	}
	return NewState(seq)
}

func TestLawFilterIntIdentity(t *testing.T) {
	f := func(xs []int8) bool {
		st := randomSeqState(xs)
		p := &FilterIntProgram{Init: 0, Iter: 1, S: inputSeq}
		got, err := p.Exec(st)
		if err != nil {
			return false
		}
		return Eq(got, st.Input())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLawFilterBoolTrueIdentity(t *testing.T) {
	truePredProg := Func{Name: "True", F: func(State) (Value, error) { return true, nil }}
	f := func(xs []int8) bool {
		st := randomSeqState(xs)
		p := &FilterBoolProgram{Var: "x", B: truePredProg, S: inputSeq}
		got, err := p.Exec(st)
		if err != nil {
			return false
		}
		gotSeq, _ := AsSeq(got)
		inSeq, _ := AsSeq(st.Input())
		if len(gotSeq) != len(inSeq) {
			return false
		}
		return Eq(got, st.Input())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLawMergeSingletonDedupes(t *testing.T) {
	f := func(xs []int8) bool {
		st := randomSeqState(xs)
		p := &MergeProgram{Args: []Program{inputSeq}, Less: func(a, b Value) bool { return a.(int) < b.(int) }}
		got, err := p.Exec(st)
		if err != nil {
			return false
		}
		gotSeq, _ := AsSeq(got)
		// sorted ascending, no adjacent duplicates, and a subset of input
		for i := 1; i < len(gotSeq); i++ {
			if gotSeq[i].(int) < gotSeq[i-1].(int) || Eq(gotSeq[i], gotSeq[i-1]) {
				return false
			}
		}
		inSeq, _ := AsSeq(st.Input())
		for _, v := range gotSeq {
			if !ContainsValue(inSeq, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLawMapIdentity(t *testing.T) {
	identity := Func{Name: "Id", F: func(st State) (Value, error) {
		v, _ := st.Lookup("x")
		return v, nil
	}}
	f := func(xs []int8) bool {
		st := randomSeqState(xs)
		p := &MapProgram{Name: "Map", Var: "x", F: identity, S: inputSeq}
		got, err := p.Exec(st)
		if err != nil {
			return false
		}
		return Eq(got, st.Input())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLawSoundnessUnderTruncation checks graceful degradation (soundness
// under truncation, Def. 3) as a law: for random inputs and a random
// candidate budget, whatever a budget-exhausted synthesis call returns is
// (a) still consistent with every example and (b) a prefix of what the
// unlimited call returns, so truncation can only shorten the ranked list,
// never reorder it or admit an unverified program.
func TestLawSoundnessUnderTruncation(t *testing.T) {
	f := func(xs []int8, dv, mc uint8) bool {
		d := int(dv%3) + 1
		st := randomSeqState(xs)
		in, _ := AsSeq(st.Input())
		var pos []Value
		for _, v := range in {
			if v.(int)%d == 0 {
				pos = append(pos, v)
			}
		}
		if len(pos) == 0 {
			return true
		}
		specs := []SeqSpec{{State: st, Positive: pos}}
		exs := []SeqExample{{State: st, Positive: pos}}
		op := FilterBoolOp{Var: "x", B: learnDivisor, S: learnInput}

		full := SynthesizeSeqRegionProg(context.Background(), op.Learn, specs, nil)
		ctx, bud := WithBudget(context.Background(), SynthBudget{MaxCandidates: int64(mc%8) + 1})
		trunc := SynthesizeSeqRegionProg(ctx, op.Learn, specs, nil)

		if len(trunc) > len(full) {
			return false
		}
		for i, p := range trunc {
			if p.String() != full[i].String() { // prefix, same ranking
				return false
			}
			if !ConsistentSeq(p, exs) { // sound despite truncation
				return false
			}
		}
		// A tripped budget must report the candidate bound as the reason.
		return bud.Reason() == "" || bud.Reason() == ReasonCandidates
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// slowLearner simulates an expensive candidate enumeration: each candidate
// costs real wall-clock time, and the loop polls the budget exactly the way
// the DSL learners do (sampled Exhausted, one AddCandidates per candidate).
func slowLearner(ctx context.Context, exs []SeqExample) []Program {
	bud := BudgetFrom(ctx)
	for i := 0; i < 1<<20; i++ {
		bud.AddCandidates(1)
		if bud.Exhausted() {
			break
		}
		time.Sleep(20 * time.Microsecond)
	}
	return learnInput(ctx, exs)
}

// TestLawCancellationPrompt checks the promptness law of budgets: a Learn
// call over a pathologically slow learner returns within a small ε of its
// deadline (or of cancellation), and what it returns is still consistent.
// ε is generous for CI jitter but far below the unbudgeted runtime (~20s).
func TestLawCancellationPrompt(t *testing.T) {
	const epsilon = 250 * time.Millisecond
	st := randomSeqState([]int8{3, 1, 4, 1, 5})
	specs := []SeqSpec{{State: st, Positive: seqOf(3, 1, 4, 1, 5)}}
	exs := []SeqExample{{State: st, Positive: specs[0].Positive}}

	check := func(t *testing.T, ctx context.Context, bud *Budget, bound time.Duration, reason string) {
		t.Helper()
		start := time.Now()
		out := SynthesizeSeqRegionProg(ctx, slowLearner, specs, nil)
		elapsed := time.Since(start)
		if elapsed > bound {
			t.Fatalf("returned after %v, want under %v", elapsed, bound)
		}
		if got := bud.Reason(); got != reason {
			t.Fatalf("budget reason = %q, want %q", got, reason)
		}
		for _, p := range out {
			if !ConsistentSeq(p, exs) {
				t.Fatalf("truncated result %s inconsistent with examples", p)
			}
		}
	}

	for _, d := range []time.Duration{5 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond} {
		t.Run("deadline/"+d.String(), func(t *testing.T) {
			ctx, bud := WithBudget(context.Background(), SynthBudget{Deadline: time.Now().Add(d)})
			check(t, ctx, bud, d+epsilon, ReasonDeadline)
		})
	}
	t.Run("expired-deadline", func(t *testing.T) {
		ctx, bud := WithBudget(context.Background(), SynthBudget{Deadline: time.Now().Add(-time.Second)})
		check(t, ctx, bud, epsilon, ReasonDeadline)
	})
	t.Run("cancelled-context", func(t *testing.T) {
		cctx, cancel := context.WithCancel(context.Background())
		ctx, bud := WithBudget(cctx, SynthBudget{})
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		check(t, ctx, bud, 10*time.Millisecond+epsilon, ReasonCancelled)
	})
	t.Run("candidate-cap", func(t *testing.T) {
		ctx, bud := WithBudget(context.Background(), SynthBudget{MaxCandidates: 100})
		check(t, ctx, bud, epsilon, ReasonCandidates)
	})
}

// TestLawFilterComposition checks FilterInt(a,b, FilterInt(0,1,S)) ≡
// FilterInt(a,b,S).
func TestLawFilterComposition(t *testing.T) {
	f := func(xs []int8, a, b uint8) bool {
		st := randomSeqState(xs)
		init := int(a % 5)
		iter := int(b%4) + 1
		direct := &FilterIntProgram{Init: init, Iter: iter, S: inputSeq}
		nested := &FilterIntProgram{Init: init, Iter: iter, S: &FilterIntProgram{Init: 0, Iter: 1, S: inputSeq}}
		g1, e1 := direct.Exec(st)
		g2, e2 := nested.Exec(st)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		return e1 != nil || Eq(g1, g2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
