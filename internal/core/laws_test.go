package core

import (
	"testing"
	"testing/quick"
)

// Algebraic laws of the operator semantics, checked on random integer
// sequences: the identity filters behave as identities, and Merge of a
// single argument is the argument modulo duplicate removal.

func randomSeqState(xs []int8) State {
	seq := make([]Value, len(xs))
	for i, x := range xs {
		seq[i] = int(x)
	}
	return NewState(seq)
}

func TestLawFilterIntIdentity(t *testing.T) {
	f := func(xs []int8) bool {
		st := randomSeqState(xs)
		p := &FilterIntProgram{Init: 0, Iter: 1, S: inputSeq}
		got, err := p.Exec(st)
		if err != nil {
			return false
		}
		return Eq(got, st.Input())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLawFilterBoolTrueIdentity(t *testing.T) {
	truePredProg := Func{Name: "True", F: func(State) (Value, error) { return true, nil }}
	f := func(xs []int8) bool {
		st := randomSeqState(xs)
		p := &FilterBoolProgram{Var: "x", B: truePredProg, S: inputSeq}
		got, err := p.Exec(st)
		if err != nil {
			return false
		}
		gotSeq, _ := AsSeq(got)
		inSeq, _ := AsSeq(st.Input())
		if len(gotSeq) != len(inSeq) {
			return false
		}
		return Eq(got, st.Input())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLawMergeSingletonDedupes(t *testing.T) {
	f := func(xs []int8) bool {
		st := randomSeqState(xs)
		p := &MergeProgram{Args: []Program{inputSeq}, Less: func(a, b Value) bool { return a.(int) < b.(int) }}
		got, err := p.Exec(st)
		if err != nil {
			return false
		}
		gotSeq, _ := AsSeq(got)
		// sorted ascending, no adjacent duplicates, and a subset of input
		for i := 1; i < len(gotSeq); i++ {
			if gotSeq[i].(int) < gotSeq[i-1].(int) || Eq(gotSeq[i], gotSeq[i-1]) {
				return false
			}
		}
		inSeq, _ := AsSeq(st.Input())
		for _, v := range gotSeq {
			if !ContainsValue(inSeq, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLawMapIdentity(t *testing.T) {
	identity := Func{Name: "Id", F: func(st State) (Value, error) {
		v, _ := st.Lookup("x")
		return v, nil
	}}
	f := func(xs []int8) bool {
		st := randomSeqState(xs)
		p := &MapProgram{Name: "Map", Var: "x", F: identity, S: inputSeq}
		got, err := p.Exec(st)
		if err != nil {
			return false
		}
		return Eq(got, st.Input())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLawFilterComposition checks FilterInt(a,b, FilterInt(0,1,S)) ≡
// FilterInt(a,b,S).
func TestLawFilterComposition(t *testing.T) {
	f := func(xs []int8, a, b uint8) bool {
		st := randomSeqState(xs)
		init := int(a % 5)
		iter := int(b%4) + 1
		direct := &FilterIntProgram{Init: init, Iter: iter, S: inputSeq}
		nested := &FilterIntProgram{Init: init, Iter: iter, S: &FilterIntProgram{Init: 0, Iter: 1, S: inputSeq}}
		g1, e1 := direct.Exec(st)
		g2, e2 := nested.Exec(st)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		return e1 != nil || Eq(g1, g2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
