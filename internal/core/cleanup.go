package core

import (
	"context"
	"sort"

	"flashextract/internal/trace"
)

// CleanUpInputCap bounds how many candidate programs CleanUp will compare
// pairwise; lower-ranked candidates beyond the cap are dropped first.
var CleanUpInputCap = 512

// DisableCleanUp turns subsumption pruning off (used by the ablation
// benchmarks); candidates are still checked for consistency and ranked.
var DisableCleanUp = false

// CleanUp ranks and prunes a candidate program list. Programs inconsistent
// with the examples (including programs whose execution fails) are dropped
// outright, preserving soundness (Theorem 1). The survivors are ordered by
// ranking cost (see Coster), tie-broken by total output size — this
// realizes the paper's preference for programs that extract fewer regions.
// Finally, a program is removed when an earlier-ranked program's outputs
// are contained in its outputs on every example (it is strictly looser
// than something ranked better, so it can never be the preferred choice).
// Minimal-output programs are never removed, so the subsumption frontier
// of Theorem 3 is preserved.
//
// CleanUp executes every candidate on every example, which makes it one of
// the hottest loops of synthesis; it counts each candidate against the
// call's budget and stops scanning on exhaustion, keeping the verified
// prefix (and recording the truncation on the budget so the engine can
// surface it as a PartialResult reason).
//
// When the context carries a Pruner, each candidate is first checked under
// the abstract semantics and rejected without concrete execution if its
// abstraction contradicts an example — sound, so the kept set is identical
// to the unpruned run. Only concretely executed candidates then count
// against the budget's explored total (pruned ones are tallied separately);
// a candidate the abstraction admitted but the concrete check rejected is a
// spurious survivor and feeds the refinement loop.
func CleanUp(ctx context.Context, ps []Program, exs []SeqExample) (kept []Program) {
	ps = capList(ps, CleanUpInputCap)
	_, sp := trace.Start(ctx, "cleanup")
	if sp != nil {
		sp.SetInt("candidates", int64(len(ps)))
		defer func() { sp.SetInt("kept", int64(len(kept))); sp.End() }()
	}
	bud := BudgetFrom(ctx)
	pr := PrunerFrom(ctx)
	if pr == nil {
		bud.AddCandidates(int64(len(ps)))
	}
	type cand struct {
		p    Program
		outs [][]Value
		cost int
		size int
	}
	var cands []cand
	for _, p := range ps {
		// Unconditional clock probe: one iteration executes the candidate
		// over every example, which on large documents costs milliseconds —
		// far too coarse for the sampled Exhausted.
		if bud.ExhaustedNow() {
			bud.NoteTruncation("cleanup")
			break
		}
		if pr != nil {
			if !pr.AdmitsSeq(p, exs) {
				pr.Ctx().CountPruned()
				continue
			}
			bud.AddCandidates(1)
		}
		rows := make([][]Value, len(exs))
		size := 0
		ok := true
		for j, ex := range exs {
			out, okExec := execSeq(p, ex.State)
			if !okExec || !IsSubsequence(ex.Positive, out) {
				ok = false
				break
			}
			rows[j] = out
			size += len(out)
		}
		if ok {
			cands = append(cands, cand{p: p, outs: rows, cost: Cost(p), size: size})
		} else if pr != nil {
			pr.RefineSeq(p, exs)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].size < cands[j].size
	})
	var result []Program
	var keptOuts [][][]Value
	for _, c := range cands {
		dominated := false
		if !DisableCleanUp {
			for _, k := range keptOuts {
				contained := true
				for j := range exs {
					if len(k[j]) > len(c.outs[j]) || !IsSubsequence(k[j], c.outs[j]) {
						contained = false
						break
					}
				}
				if contained {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			result = append(result, c.p)
			keptOuts = append(keptOuts, c.outs)
		}
	}
	return result
}
