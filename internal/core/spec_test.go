package core

import (
	"strings"
	"testing"
)

// leafProg is a serializable test leaf.
type leafProg struct {
	tag string
}

func (p leafProg) Exec(st State) (Value, error) {
	return []Value{p.tag}, nil
}

func (p leafProg) String() string { return "Leaf(" + p.tag + ")" }

func (p leafProg) EncodeProgram() (ProgramSpec, error) {
	return ProgramSpec{Op: "test.leaf", Attrs: map[string]string{"tag": p.tag}}, nil
}

// predProg is a serializable boolean leaf.
type predProg struct{}

func (predProg) Exec(st State) (Value, error) { return true, nil }
func (predProg) String() string               { return "True" }
func (predProg) EncodeProgram() (ProgramSpec, error) {
	return ProgramSpec{Op: "test.true"}, nil
}

func testDecodeCtx() DecodeContext {
	return DecodeContext{
		Leaf: func(spec ProgramSpec) (Program, error) {
			switch spec.Op {
			case "test.leaf":
				return leafProg{tag: spec.Attrs["tag"]}, nil
			case "test.true":
				return predProg{}, nil
			}
			return nil, ErrNoMatch
		},
		Less: func(a, b Value) bool { return false },
	}
}

func TestSpecRoundTripOperators(t *testing.T) {
	orig := &MergeProgram{Args: []Program{
		&MapProgram{Name: "M", Var: "x", F: predProg{}, S: leafProg{tag: "s1"}},
		&FilterIntProgram{Init: 2, Iter: 3, S: &FilterBoolProgram{Var: "x", B: predProg{}, S: leafProg{tag: "s2"}}},
	}}
	data, err := MarshalProgram(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := testDecodeCtx().UnmarshalProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != orig.String() {
		t.Fatalf("round trip changed program:\n%s\nvs\n%s", orig, back)
	}
	merged := back.(*MergeProgram)
	fi := merged.Args[1].(*FilterIntProgram)
	if fi.Init != 2 || fi.Iter != 3 {
		t.Fatalf("FilterInt params lost: %+v", fi)
	}
}

func TestSpecEncodeUnserializable(t *testing.T) {
	f := Func{Name: "closure", F: func(State) (Value, error) { return nil, nil }}
	if _, err := Encode(f); err == nil {
		t.Fatal("closure program should not encode")
	}
	// An operator containing an unserializable child must fail too.
	m := &MapProgram{Name: "M", Var: "x", F: f, S: leafProg{tag: "s"}}
	if _, err := Encode(m); err == nil {
		t.Fatal("operator with unserializable child encoded")
	}
}

func TestSpecDecodeErrors(t *testing.T) {
	ctx := testDecodeCtx()
	cases := []string{
		`{"op":"Map","children":[{"op":"test.true"}]}`,                                       // wrong arity
		`{"op":"FilterInt","attrs":{"init":"x","iter":"1"},"children":[{"op":"test.leaf"}]}`, // bad int
		`{"op":"Merge"}`,         // no children
		`{"op":"bogus.unknown"}`, // unknown leaf
		`{"op":"Map","children":[{"op":"bogus"},{"op":"test.leaf"}]}`, // bad child
		`not json`,
	}
	for _, c := range cases {
		if _, err := ctx.UnmarshalProgram([]byte(c)); err == nil {
			t.Errorf("decode of %q succeeded, want error", c)
		}
	}
	noLeaf := DecodeContext{}
	if _, err := noLeaf.Decode(ProgramSpec{Op: "anything"}); err == nil {
		t.Fatal("decode without leaf decoder accepted")
	}
}

func TestSpecJSONShape(t *testing.T) {
	p := &FilterIntProgram{Init: 1, Iter: 2, S: leafProg{tag: "z"}}
	data, err := MarshalProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"op": "FilterInt"`, `"init": "1"`, `"test.leaf"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%s", want, data)
		}
	}
}
