package core

// Coster is implemented by programs that carry a heuristic ranking cost.
// Lower cost means the program is considered more likely to match the
// user's intent; CleanUp orders candidates by cost before pruning, which
// realizes the paper's ranking criteria (e.g. preferring programs learned
// from consecutive examples at the beginning of a region, and penalizing
// contrived index arithmetic).
type Coster interface {
	Cost() int
}

// DefaultLeafCost is the cost assumed for leaf programs that do not
// implement Coster.
const DefaultLeafCost = 1

// Cost returns the ranking cost of a program.
func Cost(p Program) int {
	if c, ok := p.(Coster); ok {
		return c.Cost()
	}
	return DefaultLeafCost
}

// Cost of a Map is the cost of its parts.
func (p *MapProgram) Cost() int { return Cost(p.F) + Cost(p.S) }

// Cost of a FilterBool is the cost of its parts.
func (p *FilterBoolProgram) Cost() int { return Cost(p.B) + Cost(p.S) }

// Cost penalizes index arithmetic: a nonzero init means the examples did
// not start at the beginning of the sequence, and iter > 1 encodes a
// stride — both are unlikely unless nothing simpler exists.
func (p *FilterIntProgram) Cost() int {
	return Cost(p.S) + 2*p.Init + 4*(p.Iter-1)
}

// Cost prefers merges with fewer classes.
func (p *MergeProgram) Cost() int {
	c := 2 * (len(p.Args) - 1)
	for _, a := range p.Args {
		c += Cost(a)
	}
	return c
}

// Cost of a Pair is the cost of its components.
func (p *PairProgram) Cost() int { return Cost(p.A) + Cost(p.B) }

// Bias is the fixed cost of the wrapped function.
func (p Func) Cost() int { return p.Bias }
