package core

import (
	"encoding/json"
	"fmt"
)

// ProgramSpec is the serializable form of a DSL program: an operator name,
// scalar attributes, and child specs. Learned extraction programs are
// saved as trees of specs (the paper's §2 promises users "the data and its
// associated data extraction program"; specs make that program a portable
// artifact).
type ProgramSpec struct {
	Op       string            `json:"op"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []ProgramSpec     `json:"children,omitempty"`
}

// Encoder is implemented by programs that can serialize themselves.
type Encoder interface {
	EncodeProgram() (ProgramSpec, error)
}

// Encode serializes a program tree.
func Encode(p Program) (ProgramSpec, error) {
	if e, ok := p.(Encoder); ok {
		return e.EncodeProgram()
	}
	return ProgramSpec{}, fmt.Errorf("core: program %s (%T) is not serializable", p, p)
}

// MarshalProgram renders a program as JSON.
func MarshalProgram(p Program) ([]byte, error) {
	spec, err := Encode(p)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(spec, "", "  ")
}

// EncodeProgram serializes a Map operator.
func (p *MapProgram) EncodeProgram() (ProgramSpec, error) {
	f, err := Encode(p.F)
	if err != nil {
		return ProgramSpec{}, err
	}
	s, err := Encode(p.S)
	if err != nil {
		return ProgramSpec{}, err
	}
	return ProgramSpec{
		Op:       "Map",
		Attrs:    map[string]string{"name": p.Name, "var": p.Var},
		Children: []ProgramSpec{f, s},
	}, nil
}

// EncodeProgram serializes a FilterBool operator.
func (p *FilterBoolProgram) EncodeProgram() (ProgramSpec, error) {
	b, err := Encode(p.B)
	if err != nil {
		return ProgramSpec{}, err
	}
	s, err := Encode(p.S)
	if err != nil {
		return ProgramSpec{}, err
	}
	return ProgramSpec{
		Op:       "FilterBool",
		Attrs:    map[string]string{"var": p.Var},
		Children: []ProgramSpec{b, s},
	}, nil
}

// EncodeProgram serializes a FilterInt operator.
func (p *FilterIntProgram) EncodeProgram() (ProgramSpec, error) {
	s, err := Encode(p.S)
	if err != nil {
		return ProgramSpec{}, err
	}
	return ProgramSpec{
		Op:       "FilterInt",
		Attrs:    map[string]string{"init": itoa(p.Init), "iter": itoa(p.Iter)},
		Children: []ProgramSpec{s},
	}, nil
}

// EncodeProgram serializes a Merge operator.
func (p *MergeProgram) EncodeProgram() (ProgramSpec, error) {
	spec := ProgramSpec{Op: "Merge"}
	for _, a := range p.Args {
		c, err := Encode(a)
		if err != nil {
			return ProgramSpec{}, err
		}
		spec.Children = append(spec.Children, c)
	}
	return spec, nil
}

// DecodeContext carries the domain-specific pieces needed to reconstruct
// operator programs: the leaf decoder and the domain's document-order
// relation (used by Merge).
type DecodeContext struct {
	// Leaf decodes domain-specific leaf specs.
	Leaf func(spec ProgramSpec) (Program, error)
	// Less orders values by document location.
	Less func(a, b Value) bool
}

// Decode reconstructs a program tree from its spec.
func (ctx DecodeContext) Decode(spec ProgramSpec) (Program, error) {
	switch spec.Op {
	case "Map":
		if err := arity(spec, 2); err != nil {
			return nil, err
		}
		f, err := ctx.Decode(spec.Children[0])
		if err != nil {
			return nil, err
		}
		s, err := ctx.Decode(spec.Children[1])
		if err != nil {
			return nil, err
		}
		return &MapProgram{Name: spec.Attrs["name"], Var: spec.Attrs["var"], F: f, S: s}, nil
	case "FilterBool":
		if err := arity(spec, 2); err != nil {
			return nil, err
		}
		b, err := ctx.Decode(spec.Children[0])
		if err != nil {
			return nil, err
		}
		s, err := ctx.Decode(spec.Children[1])
		if err != nil {
			return nil, err
		}
		return &FilterBoolProgram{Var: spec.Attrs["var"], B: b, S: s}, nil
	case "FilterInt":
		if err := arity(spec, 1); err != nil {
			return nil, err
		}
		s, err := ctx.Decode(spec.Children[0])
		if err != nil {
			return nil, err
		}
		init, err1 := atoi(spec.Attrs["init"])
		iter, err2 := atoi(spec.Attrs["iter"])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("core: FilterInt spec has bad init/iter %q/%q", spec.Attrs["init"], spec.Attrs["iter"])
		}
		return &FilterIntProgram{Init: init, Iter: iter, S: s}, nil
	case "Merge":
		if len(spec.Children) == 0 {
			return nil, fmt.Errorf("core: Merge spec has no children")
		}
		out := &MergeProgram{Less: ctx.Less}
		for _, c := range spec.Children {
			a, err := ctx.Decode(c)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, a)
		}
		return out, nil
	default:
		if ctx.Leaf == nil {
			return nil, fmt.Errorf("core: unknown operator %q and no leaf decoder", spec.Op)
		}
		return ctx.Leaf(spec)
	}
}

// UnmarshalProgram parses JSON into a program using the context.
func (ctx DecodeContext) UnmarshalProgram(data []byte) (Program, error) {
	var spec ProgramSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, err
	}
	return ctx.Decode(spec)
}

func arity(spec ProgramSpec, n int) error {
	if len(spec.Children) != n {
		return fmt.Errorf("core: %s spec has %d children, want %d", spec.Op, len(spec.Children), n)
	}
	return nil
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func atoi(s string) (int, error) {
	var v int
	_, err := fmt.Sscanf(s, "%d", &v)
	return v, err
}
