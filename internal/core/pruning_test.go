package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"flashextract/internal/abstract"
)

// ---- UnionLearners rank-order guarantees (learner-layer fix #1) ----

// TestUnionLearnersSlowFirstKeepsRankOrder pins the stitching contract of
// the parallel union path: a first learner that finishes long after a later
// one must still contribute its programs ahead of the later learner's.
func TestUnionLearnersSlowFirstKeepsRankOrder(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("parallel union path needs GOMAXPROCS >= 2")
	}
	fastDone := make(chan struct{})
	slow := func(_ context.Context, _ []SeqExample) []Program {
		<-fastDone // finish strictly after the later learner
		return []Program{constSeqProgram("a", 1)}
	}
	fast := func(_ context.Context, _ []SeqExample) []Program {
		defer close(fastDone)
		return []Program{constSeqProgram("b", 2)}
	}
	got := UnionLearners(slow, fast)(context.Background(), nil)
	if len(got) != 2 || got[0].String() != "a" || got[1].String() != "b" {
		t.Fatalf("rank order broken: %v", got)
	}
}

// TestUnionLearnersBudgetTripKeepsRulePrefix asserts that a budget tripping
// while a slow early learner is still running can never let a faster later
// learner's programs land without the earlier rule's in front: the result is
// always a rule-order prefix, exactly as a serial run would produce.
func TestUnionLearnersBudgetTripKeepsRulePrefix(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("parallel union path needs GOMAXPROCS >= 2")
	}
	for i := 0; i < 25; i++ {
		ctx, bud := WithBudget(context.Background(), SynthBudget{})
		tripped := make(chan struct{})
		slow := func(_ context.Context, _ []SeqExample) []Program {
			<-tripped // guarantee the trip happens while this learner runs
			return []Program{constSeqProgram("a", 1)}
		}
		fast := func(_ context.Context, _ []SeqExample) []Program {
			bud.Trip(ReasonCandidates)
			close(tripped)
			return []Program{constSeqProgram("b", 2)}
		}
		got := UnionLearners(slow, fast)(ctx, nil)
		// Depending on whether the slow learner's start probe beat the trip,
		// the result is [a b] or [] — but never a list led by "b".
		if len(got) == 1 || (len(got) > 0 && got[0].String() != "a") {
			t.Fatalf("iteration %d: later learner's result landed out of rank order: %v", i, got)
		}
	}
}

// ---- CleanUp budget truncation (learner-layer fix #2) ----

func TestCleanUpExhaustedBudgetRecordsTruncation(t *testing.T) {
	ctx, bud := WithBudget(context.Background(), SynthBudget{
		Deadline: time.Now().Add(-time.Millisecond),
	})
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	ps := CleanUp(ctx, []Program{constSeqProgram("good", 1)}, exs)
	if len(ps) != 0 {
		t.Fatalf("exhausted budget should keep only the verified prefix, got %v", ps)
	}
	if tr := bud.Truncations(); len(tr) != 1 || tr[0] != "cleanup" {
		t.Fatalf("Truncations = %v, want [cleanup]", tr)
	}
}

func TestCleanUpBudgetTripMidScanKeepsVerifiedPrefix(t *testing.T) {
	ctx, bud := WithBudget(context.Background(), SynthBudget{})
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	tripper := Func{Name: "tripper", F: func(State) (Value, error) {
		bud.Trip(ReasonCandidates) // trips while the first candidate executes
		return seqOf(1), nil
	}}
	ps := CleanUp(ctx, []Program{tripper, constSeqProgram("late", 1)}, exs)
	if len(ps) != 1 || ps[0].String() != "tripper" {
		t.Fatalf("CleanUp = %v, want the verified prefix [tripper]", ps)
	}
	if tr := bud.Truncations(); len(tr) != 1 || tr[0] != "cleanup" {
		t.Fatalf("Truncations = %v, want [cleanup]", tr)
	}
}

func TestCleanUpWithoutTruncationReportsNone(t *testing.T) {
	ctx, bud := WithBudget(context.Background(), SynthBudget{})
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	if ps := CleanUp(ctx, []Program{constSeqProgram("good", 1)}, exs); len(ps) != 1 {
		t.Fatalf("CleanUp = %v", ps)
	}
	if tr := bud.Truncations(); tr != nil {
		t.Fatalf("Truncations = %v, want none", tr)
	}
}

// ---- PreferNonOverlapping tie-breaking (learner-layer fix #3) ----

// TestPreferNonOverlappingCostThenStableIndex pins the documented ordering
// contract: candidates sort by ranking cost, and equal-cost candidates keep
// the inner learner's emission order — so which of two tied programs wins is
// a function of the input, never of per-learner timing.
func TestPreferNonOverlappingCostThenStableIndex(t *testing.T) {
	mk := func(name string, bias int) Program {
		return Func{Name: name, Bias: bias, F: func(State) (Value, error) { return seqOf(1), nil }}
	}
	overlaps := func(a, b Value) bool { return false }
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	run := func(ps ...Program) []string {
		inner := func(_ context.Context, _ []SeqExample) []Program { return ps }
		got := PreferNonOverlapping(inner, overlaps)(context.Background(), exs)
		names := make([]string, len(got))
		for i, p := range got {
			names[i] = p.String()
		}
		return names
	}
	// A cheaper program emitted later still ranks first.
	if got := run(mk("pricey", 3), mk("tiedA", 1), mk("tiedB", 1)); got[0] != "tiedA" || got[1] != "tiedB" || got[2] != "pricey" {
		t.Fatalf("order = %v, want [tiedA tiedB pricey]", got)
	}
	// Swapping the emission order of the tied pair swaps the winner with it:
	// the tie-break is the stable input index, nothing else.
	if got := run(mk("pricey", 3), mk("tiedB", 1), mk("tiedA", 1)); got[0] != "tiedB" || got[1] != "tiedA" {
		t.Fatalf("order = %v, want tiedB before tiedA", got)
	}
}

// ---- abstraction-guided pruning through CleanUp (tentpole) ----

// absSeqFunc wraps a toy program with a fixed abstract transformer and an
// optional refinement hook.
type absSeqFunc struct {
	Program
	seq     abstract.Seq
	refined *int
}

func (p absSeqFunc) AbstractSeq(_ *abstract.Ctx, _ State) abstract.Seq { return p.seq }
func (p absSeqFunc) RefineAbstract(_ *abstract.Ctx, _ State) {
	if p.refined != nil {
		*p.refined++
	}
}

func TestCleanUpPrunesAbstractlyInfeasible(t *testing.T) {
	pr := NewPruner()
	ctx, bud := WithBudget(WithPruner(context.Background(), pr), SynthBudget{})
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	executed := 0
	bad := absSeqFunc{
		Program: Func{Name: "bad", F: func(State) (Value, error) {
			executed++
			return seqOf(2), nil // would fail the concrete check anyway
		}},
		seq: abstract.InfeasibleSeq(),
	}
	good := absSeqFunc{
		Program: constSeqProgram("good", 1),
		seq:     abstract.Seq{Count: abstract.Exact(1), Span: abstract.TopSpan()},
	}
	ps := CleanUp(ctx, []Program{bad, good}, exs)
	if len(ps) != 1 || ps[0].String() != "good" {
		t.Fatalf("CleanUp = %v, want [good]", ps)
	}
	if executed != 0 {
		t.Fatalf("pruned candidate was concretely executed %d times", executed)
	}
	if pr.Pruned() != 1 {
		t.Fatalf("Pruned = %d, want 1", pr.Pruned())
	}
	// Only the concretely executed candidate counts against the budget.
	if bud.Explored() != 1 {
		t.Fatalf("Explored = %d, want 1", bud.Explored())
	}
}

func TestCleanUpSpuriousSurvivorTriggersRefinement(t *testing.T) {
	pr := NewPruner()
	ctx, _ := WithBudget(WithPruner(context.Background(), pr), SynthBudget{})
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	refined := 0
	spurious := absSeqFunc{
		Program: constSeqProgram("spurious", 2), // admitted abstractly, fails concretely
		seq:     abstract.TopSeq(),
		refined: &refined,
	}
	if ps := CleanUp(ctx, []Program{spurious}, exs); len(ps) != 0 {
		t.Fatalf("CleanUp = %v, want none", ps)
	}
	if pr.Refinements() != 1 || refined != 1 {
		t.Fatalf("refinements = %d (leaf saw %d), want 1", pr.Refinements(), refined)
	}
}

// TestCleanUpPrunedMatchesUnpruned is the operator-level bit-identity check:
// over a mix of feasible, infeasible, and spurious candidates, the kept list
// is identical with and without a pruner in the context.
func TestCleanUpPrunedMatchesUnpruned(t *testing.T) {
	mk := func(name string, seq abstract.Seq, out ...int) Program {
		return absSeqFunc{Program: constSeqProgram(name, out...), seq: seq}
	}
	cands := []Program{
		mk("wrong", abstract.InfeasibleSeq(), 9),
		mk("loose", abstract.Seq{Count: abstract.Exact(3), Span: abstract.TopSpan()}, 1, 2, 3),
		mk("tight", abstract.Seq{Count: abstract.Exact(1), Span: abstract.TopSpan()}, 1),
		mk("spurious", abstract.TopSeq(), 7),
		mk("short", abstract.Seq{Count: abstract.Exact(0), Span: abstract.TopSpan()}),
	}
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	plain := CleanUp(context.Background(), cands, exs)
	pruned := CleanUp(WithPruner(context.Background(), NewPruner()), cands, exs)
	if len(plain) != len(pruned) {
		t.Fatalf("kept %d pruned vs %d unpruned", len(pruned), len(plain))
	}
	for i := range plain {
		if plain[i].String() != pruned[i].String() {
			t.Fatalf("kept[%d]: %s (pruned) != %s (unpruned)", i, pruned[i], plain[i])
		}
	}
}

func TestPrunerContextConfiguration(t *testing.T) {
	if PrunerConfigured(context.Background()) {
		t.Fatal("fresh context should not be configured")
	}
	off := WithPruner(context.Background(), nil)
	if !PrunerConfigured(off) {
		t.Fatal("explicitly disabled pruning should read as configured")
	}
	if PrunerFrom(off) != nil {
		t.Fatal("explicitly disabled pruning should carry no pruner")
	}
	pr := NewPruner()
	on := WithPruner(context.Background(), pr)
	if PrunerFrom(on) != pr {
		t.Fatal("pruner not carried by context")
	}
}
