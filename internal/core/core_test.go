package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// ---- toy DSL over integer sequences, used to exercise the operators ----

// inputSeq returns the input sequence bound to R0.
var inputSeq = Func{Name: "Input", F: func(st State) (Value, error) {
	return st.Input(), nil
}}

// learnInput is the trivial learner for the fixed expression Input: it is
// consistent iff every positive instance occurs, in order, in the input.
func learnInput(_ context.Context, exs []SeqExample) []Program {
	for _, ex := range exs {
		in, err := AsSeq(ex.State.Input())
		if err != nil || !IsSubsequence(ex.Positive, in) {
			return nil
		}
	}
	return []Program{inputSeq}
}

// constProgram returns a fixed integer.
func constProgram(k int) Program {
	return Func{Name: fmt.Sprintf("Const(%d)", k), F: func(State) (Value, error) { return k, nil }}
}

// addProgram adds k to the λ-bound variable x.
func addProgram(k int) Program {
	return Func{Name: fmt.Sprintf("Add(%d)", k), F: func(st State) (Value, error) {
		x, _ := st.Lookup("x")
		return x.(int) + k, nil
	}}
}

// learnAdd learns Add(k) from scalar examples binding x.
func learnAdd(_ context.Context, exs []Example) []Program {
	if len(exs) == 0 {
		return []Program{addProgram(0)}
	}
	x, _ := exs[0].State.Lookup("x")
	k := exs[0].Output.(int) - x.(int)
	for _, ex := range exs[1:] {
		x, _ := ex.State.Lookup("x")
		if ex.Output.(int)-x.(int) != k {
			return nil
		}
	}
	return []Program{addProgram(k)}
}

// isMultipleOf is a predicate program over the λ-bound variable x.
func isMultipleOf(k int) Program {
	return Func{Name: fmt.Sprintf("MultipleOf(%d)", k), F: func(st State) (Value, error) {
		x, _ := st.Lookup("x")
		return x.(int)%k == 0, nil
	}}
}

// learnDivisor learns MultipleOf(k) predicates from positive examples,
// most specific (largest k) first.
func learnDivisor(_ context.Context, exs []Example) []Program {
	g := 0
	for _, ex := range exs {
		x, _ := ex.State.Lookup("x")
		g = gcd(g, x.(int))
	}
	if g < 0 {
		g = -g
	}
	var out []Program
	for k := g; k >= 1; k-- {
		if k == 0 || (g != 0 && g%k != 0) {
			continue
		}
		out = append(out, isMultipleOf(k))
	}
	if g == 0 { // all example values were 0: any divisor works
		out = []Program{isMultipleOf(1)}
	}
	return out
}

func seqOf(xs ...int) []Value {
	out := make([]Value, len(xs))
	for i, x := range xs {
		out[i] = x
	}
	return out
}

func mustExecSeq(t *testing.T, p Program, st State) []Value {
	t.Helper()
	v, err := p.Exec(st)
	if err != nil {
		t.Fatalf("Exec(%s) failed: %v", p, err)
	}
	seq, err := AsSeq(v)
	if err != nil {
		t.Fatalf("Exec(%s): %v", p, err)
	}
	return seq
}

// ---- State ----

func TestStateBindLookup(t *testing.T) {
	st := NewState("doc")
	if got := st.Input(); got != "doc" {
		t.Fatalf("Input() = %v, want doc", got)
	}
	st2 := st.Bind("x", 7)
	if v, ok := st2.Lookup("x"); !ok || v != 7 {
		t.Fatalf("Lookup(x) = %v, %v", v, ok)
	}
	if _, ok := st.Lookup("x"); ok {
		t.Fatal("binding leaked into the original state")
	}
	st3 := st2.Bind("x", 9)
	if v, _ := st3.Lookup("x"); v != 9 {
		t.Fatalf("shadowed Lookup(x) = %v, want 9", v)
	}
	if v, _ := st2.Lookup("x"); v != 7 {
		t.Fatalf("original binding changed: %v", v)
	}
}

func TestStateInputPanicsWithoutBinding(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Input() on empty state did not panic")
		}
	}()
	State{}.Input()
}

// ---- value helpers ----

func TestEq(t *testing.T) {
	if !Eq(1, 1) || Eq(1, 2) {
		t.Fatal("scalar Eq broken")
	}
	if !Eq(seqOf(1, 2), seqOf(1, 2)) {
		t.Fatal("sequence Eq broken")
	}
	if Eq(seqOf(1, 2), seqOf(1, 2, 3)) || Eq(seqOf(1, 2), seqOf(2, 1)) {
		t.Fatal("sequence Eq accepted unequal sequences")
	}
	if Eq(seqOf(1), 1) {
		t.Fatal("sequence vs scalar should not be equal")
	}
}

type eqWrapper struct{ v int }

func (w eqWrapper) EqValue(other Value) bool {
	o, ok := other.(eqWrapper)
	return ok && o.v%10 == w.v%10
}

func TestEqUsesEqualer(t *testing.T) {
	if !Eq(eqWrapper{3}, eqWrapper{13}) {
		t.Fatal("Equaler not consulted")
	}
	if Eq(eqWrapper{3}, eqWrapper{4}) {
		t.Fatal("Equaler result ignored")
	}
}

func TestIsSubsequence(t *testing.T) {
	tests := []struct {
		sub, seq []Value
		want     bool
	}{
		{seqOf(), seqOf(1, 2), true},
		{seqOf(1), seqOf(1, 2), true},
		{seqOf(2), seqOf(1, 2), true},
		{seqOf(1, 2), seqOf(1, 3, 2), true},
		{seqOf(2, 1), seqOf(1, 3, 2), false},
		{seqOf(1, 1), seqOf(1), false},
		{seqOf(), seqOf(), true},
		{seqOf(1), seqOf(), false},
	}
	for _, tt := range tests {
		if got := IsSubsequence(tt.sub, tt.seq); got != tt.want {
			t.Errorf("IsSubsequence(%v, %v) = %v, want %v", tt.sub, tt.seq, got, tt.want)
		}
	}
}

func TestIsSubsequenceProperties(t *testing.T) {
	toVals := func(xs []int8) []Value {
		out := make([]Value, len(xs))
		for i, x := range xs {
			out[i] = int(x)
		}
		return out
	}
	// Every even-index subsampling of a sequence is a subsequence of it.
	f := func(xs []int8) bool {
		seq := toVals(xs)
		var sub []Value
		for i := 0; i < len(seq); i += 2 {
			sub = append(sub, seq[i])
		}
		return IsSubsequence(sub, seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// A strictly longer sequence is never a subsequence of a shorter one.
	g := func(xs []int8) bool {
		seq := toVals(xs)
		longer := append(append([]Value{}, seq...), 99)
		return !IsSubsequence(longer, seq)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexOf(t *testing.T) {
	s := seqOf(4, 5, 6)
	if got := IndexOf(s, 5); got != 1 {
		t.Fatalf("IndexOf = %d, want 1", got)
	}
	if got := IndexOf(s, 7); got != -1 {
		t.Fatalf("IndexOf missing = %d, want -1", got)
	}
	if !ContainsValue(s, 6) || ContainsValue(s, 0) {
		t.Fatal("ContainsValue broken")
	}
}

// ---- program execution semantics ----

func TestMapProgramExec(t *testing.T) {
	p := &MapProgram{Name: "Map", Var: "x", F: addProgram(10), S: inputSeq}
	st := NewState(seqOf(1, 2, 3))
	got := mustExecSeq(t, p, st)
	if !Eq(got, seqOf(11, 12, 13)) {
		t.Fatalf("Map output = %v", got)
	}
	if !strings.Contains(p.String(), "Map(λx:") {
		t.Fatalf("String() = %q", p.String())
	}
}

func TestMapProgramPropagatesElementError(t *testing.T) {
	failing := Func{Name: "Fail", F: func(st State) (Value, error) {
		x, _ := st.Lookup("x")
		if x.(int) == 2 {
			return nil, ErrNoMatch
		}
		return x, nil
	}}
	p := &MapProgram{Name: "Map", Var: "x", F: failing, S: inputSeq}
	if _, err := p.Exec(NewState(seqOf(1, 2, 3))); err == nil {
		t.Fatal("strict Map should fail when F fails on an element")
	}
}

func TestFilterBoolProgramExec(t *testing.T) {
	p := &FilterBoolProgram{Var: "x", B: isMultipleOf(2), S: inputSeq}
	got := mustExecSeq(t, p, NewState(seqOf(1, 2, 3, 4, 6)))
	if !Eq(got, seqOf(2, 4, 6)) {
		t.Fatalf("FilterBool output = %v", got)
	}
}

func TestFilterBoolProgramRejectsNonBool(t *testing.T) {
	p := &FilterBoolProgram{Var: "x", B: constProgram(1), S: inputSeq}
	if _, err := p.Exec(NewState(seqOf(1))); err == nil {
		t.Fatal("non-bool predicate result should error")
	}
}

func TestFilterIntProgramExec(t *testing.T) {
	p := &FilterIntProgram{Init: 1, Iter: 2, S: inputSeq}
	got := mustExecSeq(t, p, NewState(seqOf(10, 11, 12, 13, 14)))
	if !Eq(got, seqOf(11, 13)) {
		t.Fatalf("FilterInt output = %v", got)
	}
	empty := mustExecSeq(t, &FilterIntProgram{Init: 9, Iter: 1, S: inputSeq}, NewState(seqOf(1)))
	if len(empty) != 0 {
		t.Fatalf("out-of-range init should produce empty, got %v", empty)
	}
}

func TestFilterIntProgramRejectsBadIter(t *testing.T) {
	p := &FilterIntProgram{Init: 0, Iter: 0, S: inputSeq}
	if _, err := p.Exec(NewState(seqOf(1))); err == nil {
		t.Fatal("iter=0 should error")
	}
}

func TestMergeProgramOrdersAndDedupes(t *testing.T) {
	a := Func{Name: "A", F: func(State) (Value, error) { return seqOf(5, 1), nil }}
	b := Func{Name: "B", F: func(State) (Value, error) { return seqOf(3, 1), nil }}
	p := &MergeProgram{Args: []Program{a, b}, Less: func(x, y Value) bool { return x.(int) < y.(int) }}
	got := mustExecSeq(t, p, NewState(nil))
	if !Eq(got, seqOf(1, 3, 5)) {
		t.Fatalf("Merge output = %v", got)
	}
}

func TestMergeProgramStringSingleArgUnwrapped(t *testing.T) {
	p := &MergeProgram{Args: []Program{inputSeq}}
	if p.String() != "Input" {
		t.Fatalf("String() = %q", p.String())
	}
	p2 := &MergeProgram{Args: []Program{inputSeq, inputSeq}}
	if !strings.HasPrefix(p2.String(), "Merge(") {
		t.Fatalf("String() = %q", p2.String())
	}
}

func TestPairProgramExec(t *testing.T) {
	p := &PairProgram{A: constProgram(1), B: constProgram(2)}
	v, err := p.Exec(NewState(nil))
	if err != nil {
		t.Fatal(err)
	}
	pv := v.(PairValue)
	if pv.First != 1 || pv.Second != 2 {
		t.Fatalf("Pair output = %v", pv)
	}
	p2 := &PairProgram{A: constProgram(1), B: constProgram(2), Make: func(a, b Value) (Value, error) {
		return a.(int)*10 + b.(int), nil
	}}
	v2, err := p2.Exec(NewState(nil))
	if err != nil || v2 != 12 {
		t.Fatalf("Pair with Make = %v, %v", v2, err)
	}
}

// ---- operator learners ----

func TestMapLearn(t *testing.T) {
	op := MapOp{
		Name: "Map", Var: "x",
		F: learnAdd,
		S: learnInput,
		Decompose: func(st State, y []Value) ([]Value, error) {
			// The witness of Add(k) output y is y-k; but k is unknown during
			// decomposition. For this toy DSL the input sequence is known,
			// so witness each y element by matching positions: assume the
			// mapped values preserve order with a constant offset derived
			// from the first element of the input.
			in, _ := AsSeq(st.Input())
			if len(y) == 0 {
				return nil, nil
			}
			// find offset such that every y[i] - offset is in input, in order
			for _, cand := range in {
				off := y[0].(int) - cand.(int)
				z := make([]Value, len(y))
				for i := range y {
					z[i] = y[i].(int) - off
				}
				if IsSubsequence(z, in) {
					return z, nil
				}
			}
			return nil, ErrNoMatch
		},
	}
	exs := []SeqExample{{State: NewState(seqOf(1, 2, 3)), Positive: seqOf(11, 13)}}
	ps := op.Learn(context.Background(), exs)
	if len(ps) == 0 {
		t.Fatal("Map.Learn found nothing")
	}
	got := mustExecSeq(t, ps[0], NewState(seqOf(4, 5)))
	if !Eq(got, seqOf(14, 15)) {
		t.Fatalf("learned Map on fresh input = %v", got)
	}
}

func TestMapLearnFailsWhenNoWitness(t *testing.T) {
	op := MapOp{
		Name: "Map", Var: "x", F: learnAdd, S: learnInput,
		Decompose: func(st State, y []Value) ([]Value, error) { return nil, ErrNoMatch },
	}
	exs := []SeqExample{{State: NewState(seqOf(1)), Positive: seqOf(2)}}
	if ps := op.Learn(context.Background(), exs); len(ps) != 0 {
		t.Fatalf("expected no programs, got %d", len(ps))
	}
}

func TestFilterBoolLearn(t *testing.T) {
	op := FilterBoolOp{Var: "x", B: learnDivisor, S: learnInput}
	exs := []SeqExample{{State: NewState(seqOf(1, 2, 3, 4, 5, 6)), Positive: seqOf(2, 4)}}
	ps := op.Learn(context.Background(), exs)
	if len(ps) == 0 {
		t.Fatal("FilterBool.Learn found nothing")
	}
	// The top-ranked program after CleanUp must keep consistency and, by
	// the subsumption rule, extract as few extra elements as possible:
	// MultipleOf(2) selects {2,4,6}.
	got := mustExecSeq(t, ps[0], NewState(seqOf(1, 2, 3, 4, 5, 6)))
	if !IsSubsequence(seqOf(2, 4), got) {
		t.Fatalf("inconsistent program won ranking: %v", got)
	}
	for _, v := range got {
		if v.(int)%2 != 0 {
			t.Fatalf("top program selected non-multiple: %v", got)
		}
	}
}

func TestFilterIntLearnSingleton(t *testing.T) {
	op := FilterIntOp{S: learnInput}
	exs := []SeqExample{{State: NewState(seqOf(7, 8, 9)), Positive: seqOf(8)}}
	ps := op.Learn(context.Background(), exs)
	if len(ps) == 0 {
		t.Fatal("no programs")
	}
	fi := ps[0].(*FilterIntProgram)
	if fi.Init != 1 || fi.Iter != 1 {
		t.Fatalf("init/iter = %d/%d, want 1/1", fi.Init, fi.Iter)
	}
}

func TestFilterIntLearnGCD(t *testing.T) {
	op := FilterIntOp{S: learnInput}
	// positives at indices 1, 3, 7 → gaps 2 and 4 → iter gcd = 2, init 1
	exs := []SeqExample{{State: NewState(seqOf(0, 10, 20, 30, 40, 50, 60, 70)), Positive: seqOf(10, 30, 70)}}
	ps := op.Learn(context.Background(), exs)
	if len(ps) == 0 {
		t.Fatal("no programs")
	}
	fi := ps[0].(*FilterIntProgram)
	if fi.Init != 1 || fi.Iter != 2 {
		t.Fatalf("init/iter = %d/%d, want 1/2", fi.Init, fi.Iter)
	}
}

func TestFilterIntLearnMisalignedExamplesFallsBack(t *testing.T) {
	op := FilterIntOp{S: learnInput}
	// Example 1: positives at indices 1 and 3 (iter 2, init 1).
	// Example 2: positive at index 2 — misaligned with init=1, iter=2.
	exs := []SeqExample{
		{State: NewState(seqOf(0, 10, 20, 30)), Positive: seqOf(10, 30)},
		{State: NewState(seqOf(0, 10, 20, 30)), Positive: seqOf(20)},
	}
	ps := op.Learn(context.Background(), exs)
	if len(ps) == 0 {
		t.Fatal("no programs")
	}
	for _, p := range ps {
		if !ConsistentSeq(p, exs) {
			t.Fatalf("inconsistent program returned: %s", p)
		}
	}
}

func TestFilterIntLearnRejectsMissingPositive(t *testing.T) {
	op := FilterIntOp{S: learnInput}
	exs := []SeqExample{{State: NewState(seqOf(1, 2)), Positive: seqOf(99)}}
	if ps := op.Learn(context.Background(), exs); len(ps) != 0 {
		t.Fatalf("expected failure, got %d programs", len(ps))
	}
}

func TestPairLearn(t *testing.T) {
	op := PairOp{
		A: func(_ context.Context, exs []Example) []Program {
			k := exs[0].Output.(int)
			for _, ex := range exs {
				if ex.Output.(int) != k {
					return nil
				}
			}
			return []Program{constProgram(k)}
		},
		B: func(_ context.Context, exs []Example) []Program {
			k := exs[0].Output.(int)
			for _, ex := range exs {
				if ex.Output.(int) != k {
					return nil
				}
			}
			return []Program{constProgram(k)}
		},
		Split: func(out Value) (Value, Value, error) {
			pv := out.(PairValue)
			return pv.First, pv.Second, nil
		},
	}
	exs := []Example{{State: NewState(nil), Output: PairValue{3, 4}}}
	ps := op.Learn(context.Background(), exs)
	if len(ps) != 1 {
		t.Fatalf("got %d programs", len(ps))
	}
	v, err := ps[0].Exec(NewState(nil))
	if err != nil || !Eq(v, PairValue{3, 4}) {
		t.Fatalf("Exec = %v, %v", v, err)
	}
}

func TestPairLearnFailsWhenComponentFails(t *testing.T) {
	op := PairOp{
		A: func(context.Context, []Example) []Program { return nil },
		B: func(context.Context, []Example) []Program { return []Program{constProgram(0)} },
		Split: func(out Value) (Value, Value, error) {
			pv := out.(PairValue)
			return pv.First, pv.Second, nil
		},
	}
	if ps := op.Learn(context.Background(), []Example{{State: NewState(nil), Output: PairValue{1, 2}}}); len(ps) != 0 {
		t.Fatal("expected no programs when a component learner fails")
	}
}

// evenOrOddLearner learns "all even elements of input" or "all odd elements
// of input" — a deliberately limited learner so Merge must partition.
func evenOrOddLearner(_ context.Context, exs []SeqExample) []Program {
	try := func(parity int, name string) Program {
		p := Func{Name: name, F: func(st State) (Value, error) {
			in, err := AsSeq(st.Input())
			if err != nil {
				return nil, err
			}
			out := []Value{}
			for _, v := range in {
				if v.(int)%2 == parity {
					out = append(out, v)
				}
			}
			return out, nil
		}}
		for _, ex := range exs {
			out, ok := execSeq(p, ex.State)
			if !ok || !IsSubsequence(ex.Positive, out) {
				return nil
			}
		}
		return p
	}
	var out []Program
	if p := try(0, "Evens"); p != nil {
		out = append(out, p)
	}
	if p := try(1, "Odds"); p != nil {
		out = append(out, p)
	}
	return out
}

func TestMergeLearnSingleClass(t *testing.T) {
	op := MergeOp{A: evenOrOddLearner, Less: func(a, b Value) bool { return a.(int) < b.(int) }}
	exs := []SeqExample{{State: NewState(seqOf(1, 2, 3, 4)), Positive: seqOf(2, 4)}}
	ps := op.Learn(context.Background(), exs)
	if len(ps) == 0 {
		t.Fatal("no programs")
	}
	got := mustExecSeq(t, ps[0], NewState(seqOf(1, 2, 3, 4)))
	if !Eq(got, seqOf(2, 4)) {
		t.Fatalf("single-class merge output = %v", got)
	}
}

func TestMergeLearnPartitions(t *testing.T) {
	op := MergeOp{A: evenOrOddLearner, Less: func(a, b Value) bool { return a.(int) < b.(int) }}
	// {2, 3} requires merging the evens expression with the odds expression.
	exs := []SeqExample{{State: NewState(seqOf(1, 2, 3, 4)), Positive: seqOf(2, 3)}}
	ps := op.Learn(context.Background(), exs)
	if len(ps) == 0 {
		t.Fatal("Merge.Learn failed to partition")
	}
	got := mustExecSeq(t, ps[0], NewState(seqOf(1, 2, 3, 4)))
	if !Eq(got, seqOf(1, 2, 3, 4)) {
		t.Fatalf("merged output = %v, want all elements", got)
	}
}

func TestMergeLearnGreedyPath(t *testing.T) {
	old := MergeExhaustiveLimit
	MergeExhaustiveLimit = 0 // force greedy
	defer func() { MergeExhaustiveLimit = old }()
	op := MergeOp{A: evenOrOddLearner, Less: func(a, b Value) bool { return a.(int) < b.(int) }}
	exs := []SeqExample{{State: NewState(seqOf(1, 2, 3, 4, 5, 6)), Positive: seqOf(2, 3, 4)}}
	ps := op.Learn(context.Background(), exs)
	if len(ps) == 0 {
		t.Fatal("greedy Merge failed")
	}
	for _, p := range ps {
		if !ConsistentSeq(p, exs) {
			t.Fatalf("inconsistent greedy merge %s", p)
		}
	}
}

func TestMergeLearnImpossible(t *testing.T) {
	op := MergeOp{A: evenOrOddLearner}
	// 99 is not in the input at all: no partition can help.
	exs := []SeqExample{{State: NewState(seqOf(1, 2)), Positive: seqOf(99)}}
	if ps := op.Learn(context.Background(), exs); len(ps) != 0 {
		t.Fatalf("expected failure, got %d programs", len(ps))
	}
}

// ---- CleanUp ----

func constSeqProgram(name string, xs ...int) Program {
	return Func{Name: name, F: func(State) (Value, error) { return seqOf(xs...), nil }}
}

func TestCleanUpDropsInconsistent(t *testing.T) {
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	ps := CleanUp(context.Background(), []Program{constSeqProgram("bad", 2, 3), constSeqProgram("good", 1, 2)}, exs)
	if len(ps) != 1 || ps[0].String() != "good" {
		t.Fatalf("CleanUp = %v", ps)
	}
}

func TestCleanUpPrefersSubsumingPrograms(t *testing.T) {
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	tight := constSeqProgram("tight", 1)
	loose := constSeqProgram("loose", 1, 2, 3)
	ps := CleanUp(context.Background(), []Program{loose, tight}, exs)
	if len(ps) != 1 || ps[0].String() != "tight" {
		t.Fatalf("CleanUp kept %v, want only tight", ps)
	}
}

func TestCleanUpKeepsFirstOfEquals(t *testing.T) {
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	a := constSeqProgram("a", 1, 2)
	b := constSeqProgram("b", 1, 2)
	ps := CleanUp(context.Background(), []Program{a, b}, exs)
	if len(ps) != 1 || ps[0].String() != "a" {
		t.Fatalf("CleanUp = %v, want only a", ps)
	}
}

func TestCleanUpKeepsIncomparable(t *testing.T) {
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	a := constSeqProgram("a", 1, 2)
	b := constSeqProgram("b", 1, 3)
	ps := CleanUp(context.Background(), []Program{a, b}, exs)
	if len(ps) != 2 {
		t.Fatalf("CleanUp = %v, want both", ps)
	}
}

func TestCleanUpDisabled(t *testing.T) {
	DisableCleanUp = true
	defer func() { DisableCleanUp = false }()
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	ps := CleanUp(context.Background(), []Program{constSeqProgram("loose", 1, 2), constSeqProgram("tight", 1)}, exs)
	if len(ps) != 2 {
		t.Fatalf("ablation should keep both, got %v", ps)
	}
}

// ---- top-level synthesis APIs ----

func TestSynthesizeSeqRegionProgFiltersNegatives(t *testing.T) {
	n1 := func(_ context.Context, exs []SeqExample) []Program {
		return []Program{constSeqProgram("loose", 1, 2, 3), constSeqProgram("tight", 1, 3)}
	}
	specs := []SeqSpec{{State: NewState(nil), Positive: seqOf(1, 3), Negative: seqOf(2)}}
	ps := SynthesizeSeqRegionProg(context.Background(), n1, specs, nil)
	if len(ps) != 1 || ps[0].String() != "tight" {
		t.Fatalf("SynthesizeSeqRegionProg = %v", ps)
	}
}

func TestSynthesizeSeqRegionProgCustomConflict(t *testing.T) {
	n1 := func(_ context.Context, exs []SeqExample) []Program {
		return []Program{constSeqProgram("p", 1, 10)}
	}
	// conflict if |out - neg| < 5
	conflicts := func(out, neg Value) bool {
		d := out.(int) - neg.(int)
		if d < 0 {
			d = -d
		}
		return d < 5
	}
	specs := []SeqSpec{{State: NewState(nil), Positive: seqOf(1), Negative: seqOf(12)}}
	if ps := SynthesizeSeqRegionProg(context.Background(), n1, specs, conflicts); len(ps) != 0 {
		t.Fatalf("expected conflict rejection, got %v", ps)
	}
}

func TestSynthesizeSeqRegionProgDropsInconsistent(t *testing.T) {
	n1 := func(_ context.Context, exs []SeqExample) []Program {
		return []Program{constSeqProgram("wrong", 9)}
	}
	specs := []SeqSpec{{State: NewState(nil), Positive: seqOf(1)}}
	if ps := SynthesizeSeqRegionProg(context.Background(), n1, specs, nil); len(ps) != 0 {
		t.Fatalf("inconsistent program not dropped: %v", ps)
	}
}

func TestSynthesizeRegionProg(t *testing.T) {
	n2 := func(_ context.Context, exs []Example) []Program {
		return []Program{constProgram(5), constProgram(6)}
	}
	ps := SynthesizeRegionProg(context.Background(), n2, []Example{{State: NewState(nil), Output: 5}})
	if len(ps) != 1 || ps[0].String() != "Const(5)" {
		t.Fatalf("SynthesizeRegionProg = %v", ps)
	}
}

// ---- learner soundness property (Theorem 1, on the toy DSL) ----

func TestSoundnessProperty(t *testing.T) {
	f := func(raw []uint8, pickEven bool) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]Value, len(raw))
		for i, x := range raw {
			in[i] = int(x)
		}
		var pos []Value
		for _, v := range in {
			if (v.(int)%2 == 0) == pickEven {
				pos = append(pos, v)
				if len(pos) == 2 {
					break
				}
			}
		}
		if len(pos) == 0 {
			return true
		}
		op := MergeOp{A: evenOrOddLearner, Less: func(a, b Value) bool { return a.(int) < b.(int) }}
		exs := []SeqExample{{State: NewState(in), Positive: pos}}
		for _, p := range op.Learn(context.Background(), exs) {
			if !ConsistentSeq(p, exs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnionLearners(t *testing.T) {
	a := func(_ context.Context, exs []SeqExample) []Program { return []Program{constSeqProgram("a", 1)} }
	b := func(_ context.Context, exs []SeqExample) []Program { return []Program{constSeqProgram("b", 2)} }
	ps := UnionLearners(a, b)(context.Background(), nil)
	if len(ps) != 2 || ps[0].String() != "a" || ps[1].String() != "b" {
		t.Fatalf("UnionLearners = %v", ps)
	}
}

func TestUnionScalarLearners(t *testing.T) {
	a := func(_ context.Context, exs []Example) []Program { return []Program{constProgram(1)} }
	b := func(_ context.Context, exs []Example) []Program { return nil }
	ps := UnionScalarLearners(a, b)(context.Background(), nil)
	if len(ps) != 1 {
		t.Fatalf("UnionScalarLearners = %v", ps)
	}
}

func TestGCD(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{4, 6, 2}, {6, 4, 2}, {0, 5, 5}, {5, 0, 5}, {7, 13, 1}, {12, 12, 12},
	}
	for _, tt := range tests {
		if got := gcd(tt.a, tt.b); got != tt.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPreferNonOverlapping(t *testing.T) {
	overlapping := constSeqProgram("overlapping", 1, 1) // duplicates treated as equal, so craft distinct overlap below
	clean := constSeqProgram("clean", 1, 3)
	// overlap predicate: ints overlap when |a-b| < 2 (and not equal)
	overlaps := func(a, b Value) bool {
		d := a.(int) - b.(int)
		if d < 0 {
			d = -d
		}
		return d < 2
	}
	messy := constSeqProgram("messy", 1, 2) // 1 and 2 overlap
	inner := func(_ context.Context, exs []SeqExample) []Program {
		return []Program{messy, clean, overlapping}
	}
	exs := []SeqExample{{State: NewState(nil), Positive: seqOf(1)}}
	got := PreferNonOverlapping(inner, overlaps)(context.Background(), exs)
	if len(got) != 3 {
		t.Fatalf("got %d programs", len(got))
	}
	if got[0].String() != "clean" {
		t.Fatalf("non-overlapping program should rank first, got %s", got[0])
	}
	if got[1].String() != "overlapping" {
		// "overlapping" outputs [1,1] which dedupes to equal values → it is
		// NOT treated as overlapping (distinctness required).
		t.Fatalf("equal-output program should stay in the good group, got %s", got[1])
	}
	if got[2].String() != "messy" {
		t.Fatalf("overlapping program should sink, got %s", got[2])
	}
	// Single-element lists pass through untouched.
	single := func(_ context.Context, exs []SeqExample) []Program { return []Program{messy} }
	if out := PreferNonOverlapping(single, overlaps)(context.Background(), exs); len(out) != 1 || out[0].String() != "messy" {
		t.Fatalf("singleton handling broken: %v", out)
	}
}

func TestCostFunctions(t *testing.T) {
	leaf := Func{Name: "leaf", Bias: 2}
	if Cost(leaf) != 2 {
		t.Fatal("Func bias not used")
	}
	unknown := constSeqProgram("u", 1)
	if Cost(unknown) != 0 { // constSeqProgram is a Func with zero bias
		t.Fatalf("Cost(unknown Func) = %d", Cost(unknown))
	}
	m := &MapProgram{Name: "M", Var: "x", F: leaf, S: leaf}
	if Cost(m) != 4 {
		t.Fatalf("Map cost = %d, want 4", Cost(m))
	}
	fb := &FilterBoolProgram{Var: "x", B: leaf, S: leaf}
	if Cost(fb) != 4 {
		t.Fatalf("FilterBool cost = %d", Cost(fb))
	}
	fi := &FilterIntProgram{Init: 3, Iter: 2, S: leaf}
	if Cost(fi) != 2+6+4 {
		t.Fatalf("FilterInt cost = %d", Cost(fi))
	}
	mg := &MergeProgram{Args: []Program{leaf, leaf}}
	if Cost(mg) != 2+2+2 {
		t.Fatalf("Merge cost = %d", Cost(mg))
	}
	pr := &PairProgram{A: leaf, B: leaf}
	if Cost(pr) != 4 {
		t.Fatalf("Pair cost = %d", Cost(pr))
	}
}

type opaqueProgram struct{}

func (opaqueProgram) Exec(State) (Value, error) { return nil, nil }
func (opaqueProgram) String() string            { return "opaque" }

func TestCostDefaultsForNonCoster(t *testing.T) {
	if Cost(opaqueProgram{}) != DefaultLeafCost {
		t.Fatalf("default cost = %d", Cost(opaqueProgram{}))
	}
}
