package core

import (
	"reflect"
	"sync"
)

// DefaultMaxCaptured bounds the number of distinct values one ExecCapture
// will record. Beyond the cap further notes are dropped (and counted), so
// a pathological program cannot grow the capture without bound — the same
// containment strategy as the tracer's span cap.
const DefaultMaxCaptured = 1 << 20

// ExecCapture records, during program execution, which operator
// subexpressions each emitted value passed through — the execution-time
// half of extraction provenance. It is carried by the State exactly like
// the execution memo: states without a capture pay a single nil check per
// operator (see BenchmarkCaptureDisabled), states with one have every
// operator note its output elements.
//
// Steps are recorded innermost-first: inner operators execute (and note)
// before the combinators wrapping them, so a value's step list reads as
// the path of the value through the combinator tree, producer first.
// All methods are safe for concurrent use (Merge arguments and Map bodies
// may be evaluated from worker goroutines).
type ExecCapture struct {
	mu      sync.Mutex
	max     int
	steps   map[Value][]string
	dropped int64
}

// NewExecCapture creates an empty capture with the default value cap.
func NewExecCapture() *ExecCapture {
	return &ExecCapture{max: DefaultMaxCaptured, steps: map[Value][]string{}}
}

// Note appends one operator step to the value's recorded path. Values that
// are not usable as map keys (sequences, values wrapping slices) are
// skipped: provenance tracks the comparable leaf values — regions,
// positions — that domains are already required to produce (see Value).
func (c *ExecCapture) Note(v Value, step string) {
	if c == nil || v == nil {
		return
	}
	if t := reflect.TypeOf(v); !t.Comparable() {
		return
	}
	c.mu.Lock()
	if _, seen := c.steps[v]; !seen && len(c.steps) >= c.max {
		c.dropped++
		c.mu.Unlock()
		return
	}
	c.steps[v] = append(c.steps[v], step)
	c.mu.Unlock()
}

// Steps returns a copy of the operator path recorded for the value,
// innermost producer first, or nil when the value was never noted.
func (c *ExecCapture) Steps(v Value) []string {
	if c == nil || v == nil {
		return nil
	}
	if t := reflect.TypeOf(v); !t.Comparable() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.steps[v]
	if s == nil {
		return nil
	}
	return append([]string(nil), s...)
}

// Len reports how many distinct values have recorded paths.
func (c *ExecCapture) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.steps)
}

// Dropped reports how many notes were discarded by the value cap.
func (c *ExecCapture) Dropped() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}
