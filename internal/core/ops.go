package core

import (
	"context"

	"flashextract/internal/trace"
)

// This file implements the modular inductive synthesis algorithms for the
// core algebra operators (Fig. 6 of the paper). Each operator learner is
// parameterized by the learners of its arguments, so any DSL assembled from
// these operators obtains its synthesizer compositionally. Every learner
// threads the call context: argument learners receive it, and the cross
// product / partition-search loops poll the call's Budget so a deadline or
// candidate cap stops exploration while keeping what was already found.

// endLearnerSpan records the example/program counts of one operator-
// learner invocation and ends its span (no-op for nil spans).
func endLearnerSpan(sp *trace.Span, examples, programs int) {
	if sp == nil {
		return
	}
	sp.SetInt("examples", int64(examples))
	sp.SetInt("programs", int64(programs))
	sp.End()
}

// MapOp is a decomposable Map operator (§4.2). Decompose computes, from an
// input state and a desired output subsequence Y, the witness subsequence Z
// of the inner sequence such that mapping F over Z yields Y element-wise.
type MapOp struct {
	// Name is the operator's display name (e.g. "LinesMap").
	Name string
	// Var is the λ-bound variable of F.
	Var string
	// F learns the scalar function body from per-element examples.
	F ScalarLearner
	// S learns the inner sequence expression.
	S SeqLearner
	// Decompose computes the witness sequence Z for (σ, Y); it must return
	// one witness element per element of Y, or an error if none exists.
	Decompose func(st State, y []Value) ([]Value, error)
	// Cap bounds the result list (0 means DefaultCap).
	Cap int
}

// Learn implements Map.Learn of Fig. 6: decompose every example, learn F
// from the per-element scalar examples and S from the witness sequences,
// and return the cleaned-up cross product.
func (op MapOp) Learn(ctx context.Context, exs []SeqExample) (learned []Program) {
	ctx, sp := trace.Start(ctx, "map:"+op.Name)
	defer func() { endLearnerSpan(sp, len(exs), len(learned)) }()
	var scalarExs []Example
	var seqExs []SeqExample
	for _, ex := range exs {
		z, err := op.Decompose(ex.State, ex.Positive)
		if err != nil || len(z) != len(ex.Positive) {
			return nil
		}
		for i := range z {
			scalarExs = append(scalarExs, Example{
				State:  ex.State.Bind(op.Var, z[i]),
				Output: ex.Positive[i],
			})
		}
		seqExs = append(seqExs, SeqExample{State: ex.State, Positive: z})
	}
	fs := op.F(ctx, scalarExs)
	if len(fs) == 0 {
		return nil
	}
	ss := op.S(ctx, seqExs)
	if len(ss) == 0 {
		return nil
	}
	bud := BudgetFrom(ctx)
	var out []Program
cross:
	for _, s := range ss {
		for _, f := range fs {
			if bud.Exhausted() {
				break cross
			}
			out = append(out, &MapProgram{Name: op.Name, Var: op.Var, F: f, S: s})
		}
	}
	return CleanUp(ctx, capList(out, op.Cap*4), exs)
}

// FilterBoolOp selects elements of a sequence by a learned predicate.
type FilterBoolOp struct {
	// Var is the λ-bound variable of the predicate.
	Var string
	// B learns boolean programs from examples whose output is true.
	B ScalarLearner
	// S learns the inner sequence expression.
	S SeqLearner
	// Cap bounds the result list (0 means DefaultCap).
	Cap int
}

// Learn implements FilterBool.Learn of Fig. 6: learn S from the sequence
// examples and B from one true-example per positive element, then combine.
func (op FilterBoolOp) Learn(ctx context.Context, exs []SeqExample) (learned []Program) {
	ctx, sp := trace.Start(ctx, "filter_bool")
	defer func() { endLearnerSpan(sp, len(exs), len(learned)) }()
	ss := op.S(ctx, exs)
	if len(ss) == 0 {
		return nil
	}
	var predExs []Example
	for _, ex := range exs {
		for _, e := range ex.Positive {
			predExs = append(predExs, Example{State: ex.State.Bind(op.Var, e), Output: true})
		}
	}
	bs := op.B(ctx, predExs)
	if len(bs) == 0 {
		return nil
	}
	bud := BudgetFrom(ctx)
	var out []Program
cross:
	for _, s := range ss {
		for _, b := range bs {
			if bud.Exhausted() {
				break cross
			}
			out = append(out, &FilterBoolProgram{Var: op.Var, B: b, S: s})
		}
	}
	return CleanUp(ctx, capList(out, op.Cap*4), exs)
}

// FilterIntOp selects elements of a sequence by index arithmetic.
type FilterIntOp struct {
	// S learns the inner sequence expression.
	S SeqLearner
	// Cap bounds the result list (0 means DefaultCap).
	Cap int
}

// Learn implements FilterInt.Learn of Fig. 6: for each learned inner
// sequence program, choose the strictest (init, iter) consistent with the
// examples — init is the minimum offset of the first positive instance and
// iter the GCD of the index distances between contiguous positives.
func (op FilterIntOp) Learn(ctx context.Context, exs []SeqExample) (learned []Program) {
	ctx, sp := trace.Start(ctx, "filter_int")
	defer func() { endLearnerSpan(sp, len(exs), len(learned)) }()
	ss := op.S(ctx, exs)
	bud := BudgetFrom(ctx)
	var out []Program
	for _, s := range ss {
		if bud.ExhaustedNow() {
			break
		}
		init, iter, ok := deriveFilterInt(s, exs)
		if !ok {
			continue
		}
		p := &FilterIntProgram{Init: init, Iter: iter, S: s}
		if !ConsistentSeq(p, exs) {
			// The strictest parameters can misalign across multiple
			// examples; fall back to the loosest consistent filter.
			p = &FilterIntProgram{Init: init, Iter: 1, S: s}
			if !ConsistentSeq(p, exs) {
				continue
			}
		}
		out = append(out, p)
	}
	return CleanUp(ctx, capList(out, op.Cap*4), exs)
}

func deriveFilterInt(s Program, exs []SeqExample) (init, iter int, ok bool) {
	init = int(^uint(0) >> 1) // maximum int
	iter = 0
	seen := false
	for _, ex := range exs {
		if len(ex.Positive) == 0 {
			continue
		}
		z, okExec := execSeq(s, ex.State)
		if !okExec {
			return 0, 0, false
		}
		first := IndexOf(z, ex.Positive[0])
		if first < 0 {
			return 0, 0, false
		}
		seen = true
		if first < init {
			init = first
		}
		prev := first
		for i := 1; i < len(ex.Positive); i++ {
			idx := IndexOf(z, ex.Positive[i])
			if idx < 0 {
				return 0, 0, false
			}
			t := idx - prev
			if t <= 0 {
				return 0, 0, false
			}
			if iter == 0 {
				iter = t
			} else {
				iter = gcd(iter, t)
			}
			prev = idx
		}
	}
	if !seen {
		init = 0
	}
	if iter == 0 {
		iter = 1
	}
	return init, iter, true
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// PairOp constructs scalars (typically regions) from two learned components.
type PairOp struct {
	// A and B learn the component programs.
	A, B ScalarLearner
	// Split decomposes an example output into its two components.
	Split func(out Value) (a, b Value, err error)
	// Make converts the two component values back into the output value at
	// execution time (see PairProgram.Make).
	Make func(a, b Value) (Value, error)
	// Cap bounds the result list (0 means DefaultCap).
	Cap int
}

// Learn implements Pair.Learn of Fig. 6: learn both components
// independently and return the cross product.
func (op PairOp) Learn(ctx context.Context, exs []Example) (learned []Program) {
	ctx, sp := trace.Start(ctx, "pair")
	defer func() { endLearnerSpan(sp, len(exs), len(learned)) }()
	var aExs, bExs []Example
	for _, ex := range exs {
		a, b, err := op.Split(ex.Output)
		if err != nil {
			return nil
		}
		aExs = append(aExs, Example{State: ex.State, Output: a})
		bExs = append(bExs, Example{State: ex.State, Output: b})
	}
	as := op.A(ctx, aExs)
	if len(as) == 0 {
		return nil
	}
	bs := op.B(ctx, bExs)
	if len(bs) == 0 {
		return nil
	}
	bud := BudgetFrom(ctx)
	var out []Program
cross:
	for _, a := range as {
		for _, b := range bs {
			if bud.Exhausted() {
				break cross
			}
			out = append(out, &PairProgram{A: a, B: b, Make: op.Make})
		}
	}
	out = capList(out, op.Cap)
	// Abstract admission after the cap (so pruning never changes which
	// candidates enter the capped list): a pair whose abstraction
	// contradicts an example would fail the consistency check every
	// downstream driver applies, so dropping it here is sound.
	if pr := PrunerFrom(ctx); pr != nil {
		kept := out[:0]
		for _, p := range out {
			if pr.AdmitsScalar(p, exs) {
				kept = append(kept, p)
			} else {
				pr.Ctx().CountPruned()
			}
		}
		out = kept
	}
	return out
}

// MergeExhaustiveLimit is the largest number of positive instances for
// which Merge.Learn searches set partitions exhaustively; beyond it a
// greedy left-to-right partition is used.
var MergeExhaustiveLimit = 6

// MergeOp combines several sequence expressions generated by the same
// non-terminal, merging their outputs in document order.
type MergeOp struct {
	// A learns the argument sequence expressions.
	A SeqLearner
	// Less orders values by their location in the document.
	Less func(a, b Value) bool
	// Cap bounds the result list (0 means DefaultCap).
	Cap int
}

type mergeItem struct {
	ex  int // example index
	val Value
}

// Learn implements Merge.Learn of Fig. 6. It searches for a minimal
// partition of the positive instances into classes such that each class is
// learnable by A, and returns Merge programs built from the per-class
// results. For small example sets the search is exhaustive over set
// partitions in increasing class count (yielding a minimal cover as in the
// paper); larger sets use a greedy scan.
func (op MergeOp) Learn(ctx context.Context, exs []SeqExample) (learned []Program) {
	ctx, sp := trace.Start(ctx, "merge")
	defer func() { endLearnerSpan(sp, len(exs), len(learned)) }()
	// Fast path: a single expression covers everything.
	if ps := op.A(ctx, exs); len(ps) > 0 {
		out := make([]Program, len(ps))
		for i, p := range ps {
			out[i] = &MergeProgram{Args: []Program{p}, Less: op.Less}
		}
		return CleanUp(ctx, capList(out, op.Cap*4), exs)
	}
	var items []mergeItem
	for j, ex := range exs {
		for _, v := range ex.Positive {
			items = append(items, mergeItem{ex: j, val: v})
		}
	}
	if len(items) == 0 {
		return nil
	}
	bud := BudgetFrom(ctx)
	memo := map[string][]Program{}
	learnClass := func(idxs []int) []Program {
		key := classKey(idxs)
		if ps, ok := memo[key]; ok {
			return ps
		}
		if bud.ExhaustedNow() {
			// Do not memoize the truncation: an unexplored class is not a
			// proven-unlearnable class.
			return nil
		}
		ps := op.A(ctx, op.classExamples(exs, items, idxs))
		memo[key] = ps
		return ps
	}

	var out []Program
	if len(items) <= MergeExhaustiveLimit {
		out = op.learnExhaustive(ctx, exs, items, learnClass)
	} else {
		out = op.learnGreedy(exs, items, learnClass)
	}
	return CleanUp(ctx, capList(out, op.Cap*4), exs)
}

// classExamples builds the sub-example-set for a class of item indices,
// preserving per-example instance order.
func (op MergeOp) classExamples(exs []SeqExample, items []mergeItem, idxs []int) []SeqExample {
	perExample := map[int][]Value{}
	for _, i := range idxs {
		perExample[items[i].ex] = append(perExample[items[i].ex], items[i].val)
	}
	var out []SeqExample
	for j := range exs {
		if vs, ok := perExample[j]; ok {
			out = append(out, SeqExample{State: exs[j].State, Positive: vs})
		}
	}
	return out
}

func classKey(idxs []int) string {
	b := make([]byte, len(idxs)*2)
	for i, x := range idxs {
		b[i*2] = byte(x >> 8)
		b[i*2+1] = byte(x)
	}
	return string(b)
}

// learnExhaustive enumerates set partitions of the items in increasing
// class count via restricted-growth strings, returning all Merge programs
// from the minimal learnable partitions.
func (op MergeOp) learnExhaustive(ctx context.Context, exs []SeqExample, items []mergeItem, learnClass func([]int) []Program) []Program {
	bud := BudgetFrom(ctx)
	m := len(items)
	for k := 2; k <= m; k++ {
		var out []Program
		rgs := make([]int, m)
		var rec func(i, maxUsed int)
		rec = func(i, maxUsed int) {
			if len(out) >= DefaultCap || bud.Exhausted() {
				return
			}
			if i == m {
				if maxUsed+1 != k {
					return
				}
				out = append(out, op.buildMerges(rgs, k, learnClass)...)
				return
			}
			limit := maxUsed + 1
			if limit > k-1 {
				limit = k - 1
			}
			for c := 0; c <= limit; c++ {
				rgs[i] = c
				nm := maxUsed
				if c > maxUsed {
					nm = c
				}
				rec(i+1, nm)
			}
		}
		rec(0, -1)
		if len(out) > 0 {
			return out
		}
		if bud.ExhaustedNow() {
			return nil
		}
	}
	return nil
}

// buildMerges checks each class of the partition encoded by the
// restricted-growth string and, if all classes are learnable, returns the
// cross product of their program lists as Merge programs.
func (op MergeOp) buildMerges(rgs []int, k int, learnClass func([]int) []Program) []Program {
	classes := make([][]int, k)
	for i, c := range rgs {
		classes[c] = append(classes[c], i)
	}
	perClass := make([][]Program, k)
	for c, idxs := range classes {
		ps := learnClass(idxs)
		if len(ps) == 0 {
			return nil
		}
		perClass[c] = ps
	}
	// Cross product, capped: pick the top-ranked combination plus single-
	// coordinate variations to keep the result manageable.
	var out []Program
	base := make([]Program, k)
	for c := range perClass {
		base[c] = perClass[c][0]
	}
	out = append(out, &MergeProgram{Args: append([]Program(nil), base...), Less: op.Less})
	for c := range perClass {
		for _, alt := range perClass[c][1:] {
			args := append([]Program(nil), base...)
			args[c] = alt
			out = append(out, &MergeProgram{Args: args, Less: op.Less})
			if len(out) >= 16 {
				return out
			}
		}
	}
	return out
}

// learnGreedy partitions the items left to right: it grows the current
// class while it stays learnable and starts a new class otherwise.
func (op MergeOp) learnGreedy(exs []SeqExample, items []mergeItem, learnClass func([]int) []Program) []Program {
	var classes [][]int
	var cur []int
	var curPrograms []Program
	for i := range items {
		trial := append(append([]int(nil), cur...), i)
		ps := learnClass(trial)
		if len(ps) > 0 {
			cur = trial
			curPrograms = ps
			continue
		}
		if len(cur) == 0 {
			return nil
		}
		classes = append(classes, cur)
		cur = []int{i}
		curPrograms = learnClass(cur)
		if len(curPrograms) == 0 {
			return nil
		}
	}
	if len(cur) > 0 {
		classes = append(classes, cur)
	}
	args := make([]Program, len(classes))
	for c, idxs := range classes {
		ps := learnClass(idxs)
		if len(ps) == 0 {
			return nil
		}
		args[c] = ps[0]
	}
	return []Program{&MergeProgram{Args: args, Less: op.Less}}
}
