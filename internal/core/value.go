// Package core implements the generic inductive synthesis framework of
// FlashExtract (PLDI 2014, §4): an algebra of sequence and scalar operators
// (Map, FilterBool, FilterInt, Merge, Pair) together with modular learning
// algorithms for each operator, parameterized by the learners of its
// arguments. A data-extraction DSL assembled from these operators obtains a
// sound and complete synthesizer for free (Theorems 1–3 of the paper).
//
// Values flowing through DSL programs are represented as the dynamic type
// Value. Domains must use comparable concrete types for the values they
// produce (the text, web, and spreadsheet instantiations use small structs
// of integers and pointers), or implement the Equaler interface.
package core

import (
	"fmt"
	"sync"
)

// Value is a value produced or consumed by a DSL program: a region, a
// position, a line, a boolean, or a sequence ([]Value) of these.
type Value = any

// Equaler may be implemented by domain values that are not directly
// comparable with ==.
type Equaler interface {
	EqValue(other Value) bool
}

// Interval may be implemented by sequence-output values that behave as
// half-open intervals [start, end) of a shared coordinate space, letting
// PreferNonOverlapping check a program's n outputs for pairwise overlap in
// O(n log n) instead of O(n²).
//
// Implementing it is a semantic contract relative to the overlaps relation
// the domain passes to PreferNonOverlapping: for any two output values a
// and b that both implement Interval, overlaps(a, b) must hold exactly
// when their spaces are identical and their intervals strictly intersect
// (a.start < b.end && b.start < a.end), and Eq(a, b) must hold exactly
// when spaces and endpoints all coincide. Values whose overlap relation is
// richer — e.g. DOM nodes, where distinct nested nodes can share one text
// range, or 2-D spreadsheet rects — must NOT implement it; they keep the
// exact pairwise check.
type Interval interface {
	Interval() (space any, start, end int)
}

// Eq reports whether two DSL values are equal. Sequences are compared
// element-wise; scalar values via Equaler if implemented, else ==.
func Eq(a, b Value) bool {
	if as, ok := a.([]Value); ok {
		bs, ok := b.([]Value)
		if !ok || len(as) != len(bs) {
			return false
		}
		for i := range as {
			if !Eq(as[i], bs[i]) {
				return false
			}
		}
		return true
	}
	if ae, ok := a.(Equaler); ok {
		return ae.EqValue(b)
	}
	return a == b
}

// IsSubsequence reports whether sub occurs within seq preserving order
// (the ⊑ relation used for positive-instance consistency, Def. 5).
func IsSubsequence(sub, seq []Value) bool {
	if len(sub) > len(seq) {
		return false
	}
	i := 0
	for _, v := range seq {
		if i == len(sub) {
			return true
		}
		if Eq(sub[i], v) {
			i++
		}
	}
	return i == len(sub)
}

// IndexOf returns the index of v in seq, or -1 if absent.
func IndexOf(seq []Value, v Value) int {
	for i, e := range seq {
		if Eq(e, v) {
			return i
		}
	}
	return -1
}

// ContainsValue reports whether seq contains v.
func ContainsValue(seq []Value, v Value) bool {
	return IndexOf(seq, v) >= 0
}

// AsSeq asserts that v is a sequence value.
func AsSeq(v Value) ([]Value, error) {
	s, ok := v.([]Value)
	if !ok {
		return nil, fmt.Errorf("core: expected sequence value, got %T", v)
	}
	return s, nil
}

// InputVar is the name of the distinguished free variable R0 that denotes
// the input region of a top-level SeqRegion or Region program.
const InputVar = "R0"

// State is an assignment to the free variables of a DSL program. States are
// immutable: Bind returns a new state sharing the previous bindings.
type State struct {
	frame *binding
	memo  *execMemo
	cap   *ExecCapture
}

type binding struct {
	name string
	val  Value
	next *binding
}

// execMemo memoizes sequence-operator executions per (program identity,
// binding frame). Programs are pure functions of their state, so within
// one synthesis session — where the same spec states flow through learner
// filtering, ranking, clean-up, and negative-instance checking — every
// re-execution of the same operator program is a repeat. The memo is
// carried by the state and shared across Bind, so a Filter or Merge
// wrapper re-running a memoized inner sequence hits the cache.
type execMemo struct {
	mu sync.Mutex
	m  map[execMemoKey]execMemoVal
}

type execMemoKey struct {
	p     Program
	frame *binding
}

type execMemoVal struct {
	v   Value
	err error
}

// NewState creates a state binding the distinguished input variable R0.
func NewState(input Value) State {
	return State{}.Bind(InputVar, input)
}

// WithExecMemo equips the state with an execution memo for the sequence
// operators (Map, FilterBool, FilterInt, Merge). Memoized results are
// shared slices and must be treated as read-only by program consumers —
// which the operator algebra already guarantees. Synthesis drivers enable
// it on the states of their specs; execution of final programs on fresh
// states is unaffected.
func (s State) WithExecMemo() State {
	if s.memo == nil {
		s.memo = &execMemo{m: map[execMemoKey]execMemoVal{}}
	}
	return s
}

// WithCapture equips the state with an execution capture: every sequence
// and pair operator notes its output values into it, mapping each emitted
// value to the path of operator subexpressions that produced it. Like the
// memo, the capture is carried through Bind, so nested operators share it.
// States without a capture pay one nil check per operator — the
// provenance-off fast path.
func (s State) WithCapture(c *ExecCapture) State {
	s.cap = c
	return s
}

// Capture returns the state's execution capture, or nil.
func (s State) Capture() *ExecCapture { return s.cap }

// Bind returns a new state with name bound to v, shadowing any previous
// binding of the same name.
func (s State) Bind(name string, v Value) State {
	return State{frame: &binding{name: name, val: v, next: s.frame}, memo: s.memo, cap: s.cap}
}

// Lookup returns the value bound to name.
func (s State) Lookup(name string) (Value, bool) {
	for b := s.frame; b != nil; b = b.next {
		if b.name == name {
			return b.val, true
		}
	}
	return nil, false
}

// Input returns the value of the distinguished input variable R0.
// It panics if the state was not created with NewState.
func (s State) Input() Value {
	v, ok := s.Lookup(InputVar)
	if !ok {
		panic("core: state has no input binding " + InputVar)
	}
	return v
}
