package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SynthBudget bounds one synthesis call. The zero value means unlimited.
// Budgets make interactive synthesis responsive under pathological example
// sets: when a bound trips, learners stop exploring and return the
// consistent programs found so far instead of spinning (graceful
// degradation; the engine surfaces the truncation as a PartialResult).
type SynthBudget struct {
	// Deadline is the wall-clock bound of the call. A context deadline, if
	// earlier, takes precedence. Zero means no deadline beyond the context's.
	Deadline time.Time
	// MaxCandidates bounds the number of candidate programs explored
	// (generated and checked) across the call. 0 means unlimited.
	MaxCandidates int64
	// MaxCacheBytes bounds the growth of the document evaluation cache
	// during the call (approximate accounting). 0 means unlimited.
	MaxCacheBytes int64
}

// Exhaustion reasons reported by Budget.Reason.
const (
	ReasonDeadline   = "deadline"
	ReasonCancelled  = "cancelled"
	ReasonCandidates = "candidates"
	// ReasonInjected marks a budget tripped by the fault-injection layer
	// (faults.SiteBudget), so chaos-induced truncation is distinguishable
	// from organic exhaustion in partial results and batch records.
	ReasonInjected = "injected"
)

// Budget is the mutable state of one budgeted synthesis call. All methods
// are safe for concurrent use and nil-safe: a nil *Budget behaves as
// unlimited, so hot loops can check unconditionally.
type Budget struct {
	deadline      time.Time
	maxCandidates int64
	maxCacheBytes int64
	done          <-chan struct{}

	explored  atomic.Int64
	ticks     atomic.Int64
	tripped   atomic.Bool
	reasonVal atomic.Value // string

	truncMu sync.Mutex
	trunc   []string // phases that cut ranking short, deduped, in first-hit order
}

// timeCheckInterval is how many Exhausted calls pass between wall-clock
// probes; time.Now is too expensive for the innermost loops.
const timeCheckInterval = 64

// budgetKey keys the *Budget installed in a context.
type budgetKey struct{}

// WithBudget derives a context carrying a fresh Budget enforcing b, merged
// with any deadline already on ctx. The returned Budget is the per-call
// state the caller inspects after synthesis.
func WithBudget(ctx context.Context, b SynthBudget) (context.Context, *Budget) {
	bud := &Budget{
		deadline:      b.Deadline,
		maxCandidates: b.MaxCandidates,
		maxCacheBytes: b.MaxCacheBytes,
		done:          ctx.Done(),
	}
	if d, ok := ctx.Deadline(); ok && (bud.deadline.IsZero() || d.Before(bud.deadline)) {
		bud.deadline = d
	}
	return context.WithValue(ctx, budgetKey{}, bud), bud
}

// BudgetFrom returns the Budget carried by the context, or nil (meaning
// unlimited) when none is installed.
func BudgetFrom(ctx context.Context) *Budget {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}

// Exhausted reports whether the budget has tripped, probing the wall clock
// and the context's cancellation channel every timeCheckInterval calls.
// Learner hot loops call it once per candidate and stop exploring — but
// keep what they already produced — when it returns true.
func (b *Budget) Exhausted() bool {
	if b == nil {
		return false
	}
	if b.tripped.Load() {
		return true
	}
	if b.ticks.Add(1)%timeCheckInterval != 0 {
		return false
	}
	return b.checkNow()
}

// ExhaustedNow is Exhausted with an unconditional wall-clock probe, for
// loop boundaries where each iteration is expensive (candidate validation,
// per-class Merge learning).
func (b *Budget) ExhaustedNow() bool {
	if b == nil {
		return false
	}
	if b.tripped.Load() {
		return true
	}
	return b.checkNow()
}

func (b *Budget) checkNow() bool {
	if b.done != nil {
		select {
		case <-b.done:
			b.trip(ReasonCancelled)
			return true
		default:
		}
	}
	if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
		b.trip(ReasonDeadline)
		return true
	}
	return false
}

// AddCandidates records n candidate programs explored; crossing
// MaxCandidates trips the budget.
func (b *Budget) AddCandidates(n int64) {
	if b == nil || n <= 0 {
		return
	}
	total := b.explored.Add(n)
	if b.maxCandidates > 0 && total >= b.maxCandidates {
		b.trip(ReasonCandidates)
	}
}

// Explored returns the number of candidate programs recorded so far.
func (b *Budget) Explored() int64 {
	if b == nil {
		return 0
	}
	return b.explored.Load()
}

// Remaining returns the time left before the budget's deadline, and
// whether a deadline is set at all. It is the "budget remaining" quantity
// recorded on trace spans.
func (b *Budget) Remaining() (time.Duration, bool) {
	if b == nil || b.deadline.IsZero() {
		return 0, false
	}
	return time.Until(b.deadline), true
}

// MaxCacheBytes returns the evaluation-cache growth bound (0 = unlimited).
func (b *Budget) MaxCacheBytes() int64 {
	if b == nil {
		return 0
	}
	return b.maxCacheBytes
}

// MaxCandidates returns the candidate-exploration bound (0 = unlimited).
func (b *Budget) MaxCandidates() int64 {
	if b == nil {
		return 0
	}
	return b.maxCandidates
}

// NoteTruncation records that the named synthesis phase stopped scanning
// candidates because the budget was exhausted, degrading its result to the
// verified prefix. Phases are deduped and kept in first-hit order; the
// engine surfaces them on the call's PartialResult so a truncated ranking
// is distinguishable from a complete one that merely found few programs.
func (b *Budget) NoteTruncation(phase string) {
	if b == nil || phase == "" {
		return
	}
	b.truncMu.Lock()
	defer b.truncMu.Unlock()
	for _, t := range b.trunc {
		if t == phase {
			return
		}
	}
	b.trunc = append(b.trunc, phase)
}

// Truncations returns the phases that recorded a ranking truncation, in
// first-hit order (nil when none did).
func (b *Budget) Truncations() []string {
	if b == nil {
		return nil
	}
	b.truncMu.Lock()
	defer b.truncMu.Unlock()
	if len(b.trunc) == 0 {
		return nil
	}
	out := make([]string, len(b.trunc))
	copy(out, b.trunc)
	return out
}

// StopFunc returns a callback reporting budget exhaustion (unconditional
// clock probe), for handing to context-unaware helper packages below the
// framework layer (e.g. tokens position learning). Safe when no budget is
// installed: the callback then always reports false.
func StopFunc(ctx context.Context) func() bool {
	return BudgetFrom(ctx).ExhaustedNow
}

func (b *Budget) trip(reason string) {
	if b.tripped.CompareAndSwap(false, true) {
		b.reasonVal.Store(reason)
	}
}

// Trip exhausts the budget immediately with the given reason. It exists
// for layers above the learners — fault injection, admin kill switches —
// that need to force the graceful-degradation path; the first reason to
// trip wins, matching the internal semantics.
func (b *Budget) Trip(reason string) {
	if b == nil {
		return
	}
	b.trip(reason)
}

// Reason returns why the budget tripped ("" when it has not).
func (b *Budget) Reason() string {
	if b == nil || !b.tripped.Load() {
		return ""
	}
	if r, ok := b.reasonVal.Load().(string); ok {
		return r
	}
	return ""
}
