package core

import "context"

// SeqSpec is the input of SynthesizeSeqRegionProg: for each input region
// (held in State), the regions that must be extracted (Positive) and the
// regions that must not (Negative).
type SeqSpec struct {
	State    State
	Positive []Value
	Negative []Value
}

// SynthesizeSeqRegionProg learns the ranked set of sequence programs
// consistent with the given examples: it first learns from the positive
// instances via the DSL's top-level sequence non-terminal n1, then retains
// the programs whose outputs avoid every negative instance. The conflicts
// predicate decides whether an output value violates a negative instance;
// if nil, value equality is used.
//
// The filtering loop is budget-aware: on exhaustion it stops early and
// returns the verified prefix, so every returned program — even under a
// truncated search — has passed the full consistency and negative-instance
// checks (soundness under truncation, Def. 3).
func SynthesizeSeqRegionProg(ctx context.Context, n1 SeqLearner, specs []SeqSpec, conflicts func(out, neg Value) bool) []Program {
	if conflicts == nil {
		conflicts = Eq
	}
	exs := make([]SeqExample, len(specs))
	for i, sp := range specs {
		exs[i] = SeqExample{State: sp.State, Positive: sp.Positive}
	}
	candidates := n1(ctx, exs)
	bud := BudgetFrom(ctx)
	pr := PrunerFrom(ctx)
	if pr == nil {
		bud.AddCandidates(int64(len(candidates)))
	}
	var out []Program
	for _, p := range candidates {
		if bud.ExhaustedNow() {
			bud.NoteTruncation("synthesize_seq")
			break
		}
		if pr != nil {
			if !pr.AdmitsSeq(p, exs) {
				pr.Ctx().CountPruned()
				continue
			}
			bud.AddCandidates(1)
		}
		if !ConsistentSeq(p, exs) {
			if pr != nil {
				pr.RefineSeq(p, exs)
			}
			continue
		}
		if violatesNegative(p, specs, conflicts) {
			continue
		}
		out = append(out, p)
	}
	return out
}

func violatesNegative(p Program, specs []SeqSpec, conflicts func(out, neg Value) bool) bool {
	for _, sp := range specs {
		if len(sp.Negative) == 0 {
			continue
		}
		seq, ok := execSeq(p, sp.State)
		if !ok {
			return true
		}
		for _, v := range seq {
			for _, neg := range sp.Negative {
				if conflicts(v, neg) {
					return true
				}
			}
		}
	}
	return false
}

// SynthesizeRegionProg learns the ranked set of scalar (region) programs
// consistent with the examples via the DSL's top-level region non-terminal
// n2. As with the sequence driver, budget exhaustion truncates the
// verified candidate list instead of failing.
func SynthesizeRegionProg(ctx context.Context, n2 ScalarLearner, exs []Example) []Program {
	candidates := n2(ctx, exs)
	bud := BudgetFrom(ctx)
	pr := PrunerFrom(ctx)
	if pr == nil {
		bud.AddCandidates(int64(len(candidates)))
	}
	var out []Program
	for _, p := range candidates {
		if bud.ExhaustedNow() {
			bud.NoteTruncation("synthesize_region")
			break
		}
		if pr != nil {
			if !pr.AdmitsScalar(p, exs) {
				pr.Ctx().CountPruned()
				continue
			}
			bud.AddCandidates(1)
		}
		if ConsistentScalar(p, exs) {
			out = append(out, p)
		} else if pr != nil {
			pr.RefineScalar(p, exs)
		}
	}
	return out
}
