package core

// SeqSpec is the input of SynthesizeSeqRegionProg: for each input region
// (held in State), the regions that must be extracted (Positive) and the
// regions that must not (Negative).
type SeqSpec struct {
	State    State
	Positive []Value
	Negative []Value
}

// SynthesizeSeqRegionProg learns the ranked set of sequence programs
// consistent with the given examples: it first learns from the positive
// instances via the DSL's top-level sequence non-terminal n1, then retains
// the programs whose outputs avoid every negative instance. The conflicts
// predicate decides whether an output value violates a negative instance;
// if nil, value equality is used.
func SynthesizeSeqRegionProg(n1 SeqLearner, specs []SeqSpec, conflicts func(out, neg Value) bool) []Program {
	if conflicts == nil {
		conflicts = Eq
	}
	exs := make([]SeqExample, len(specs))
	for i, sp := range specs {
		exs[i] = SeqExample{State: sp.State, Positive: sp.Positive}
	}
	candidates := n1(exs)
	var out []Program
	for _, p := range candidates {
		if !ConsistentSeq(p, exs) {
			continue
		}
		if violatesNegative(p, specs, conflicts) {
			continue
		}
		out = append(out, p)
	}
	return out
}

func violatesNegative(p Program, specs []SeqSpec, conflicts func(out, neg Value) bool) bool {
	for _, sp := range specs {
		if len(sp.Negative) == 0 {
			continue
		}
		seq, ok := execSeq(p, sp.State)
		if !ok {
			return true
		}
		for _, v := range seq {
			for _, neg := range sp.Negative {
				if conflicts(v, neg) {
					return true
				}
			}
		}
	}
	return false
}

// SynthesizeRegionProg learns the ranked set of scalar (region) programs
// consistent with the examples via the DSL's top-level region non-terminal
// n2.
func SynthesizeRegionProg(n2 ScalarLearner, exs []Example) []Program {
	candidates := n2(exs)
	var out []Program
	for _, p := range candidates {
		if ConsistentScalar(p, exs) {
			out = append(out, p)
		}
	}
	return out
}
