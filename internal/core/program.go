package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Program is an executable expression of a data-extraction DSL. Scalar
// programs return a single value; sequence programs return a []Value.
type Program interface {
	Exec(st State) (Value, error)
	String() string
}

// ErrNoMatch is returned by domain programs when an expression has no result
// on the given input (e.g. a position regex that does not match). Learners
// treat any execution error as inconsistency.
var ErrNoMatch = errors.New("core: expression has no match on this input")

// Func adapts a function (plus a description) into a Program. It is the
// usual way for domains to define leaf programs such as split(R0,'\n').
type Func struct {
	Name string
	F    func(st State) (Value, error)
	// Bias is the ranking cost of the function (see Coster).
	Bias int
}

// Exec runs the wrapped function.
func (p Func) Exec(st State) (Value, error) { return p.F(st) }

func (p Func) String() string { return p.Name }

// MapProgram applies the scalar program F, with Var bound to each element,
// to every element of the sequence produced by S (standard Map semantics).
type MapProgram struct {
	Name string // operator name used for display, e.g. "LinesMap"
	Var  string
	F    Program
	S    Program
}

// Exec implements strict Map semantics: an error from F on any element
// fails the whole Map.
// execMemoized executes p in st, consulting the state's execution memo for
// the sequence operators. Non-operator programs and memo-less states run
// directly. The memoized Value is shared; consumers must not mutate the
// returned sequence.
func execMemoized(p Program, st State) (Value, error) {
	if st.memo == nil {
		return p.Exec(st)
	}
	switch p.(type) {
	case *MapProgram, *FilterBoolProgram, *FilterIntProgram, *MergeProgram:
	default:
		return p.Exec(st)
	}
	key := execMemoKey{p: p, frame: st.frame}
	st.memo.mu.Lock()
	val, hit := st.memo.m[key]
	st.memo.mu.Unlock()
	if hit {
		return val.v, val.err
	}
	v, err := p.Exec(st)
	st.memo.mu.Lock()
	st.memo.m[key] = execMemoVal{v: v, err: err}
	st.memo.mu.Unlock()
	return v, err
}

func (p *MapProgram) Exec(st State) (Value, error) {
	sv, err := execMemoized(p.S, st)
	if err != nil {
		return nil, err
	}
	seq, err := AsSeq(sv)
	if err != nil {
		return nil, err
	}
	out := make([]Value, len(seq))
	for i, e := range seq {
		r, err := p.F.Exec(st.Bind(p.Var, e))
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	if st.cap != nil {
		for _, r := range out {
			st.cap.Note(r, "Map:"+p.Name)
		}
	}
	return out, nil
}

func (p *MapProgram) String() string {
	return fmt.Sprintf("%s(λ%s: %s, %s)", p.Name, p.Var, p.F, p.S)
}

// FilterBoolProgram selects the elements of S for which predicate B, with
// Var bound to the element, evaluates to true.
type FilterBoolProgram struct {
	Var string
	B   Program
	S   Program
}

// Exec evaluates B on every element of S and keeps the satisfying ones.
func (p *FilterBoolProgram) Exec(st State) (Value, error) {
	sv, err := execMemoized(p.S, st)
	if err != nil {
		return nil, err
	}
	seq, err := AsSeq(sv)
	if err != nil {
		return nil, err
	}
	var out []Value
	for _, e := range seq {
		r, err := p.B.Exec(st.Bind(p.Var, e))
		if err != nil {
			return nil, err
		}
		keep, ok := r.(bool)
		if !ok {
			return nil, fmt.Errorf("core: predicate %s returned %T, want bool", p.B, r)
		}
		if keep {
			out = append(out, e)
		}
	}
	if out == nil {
		out = []Value{}
	}
	if st.cap != nil {
		for _, e := range out {
			st.cap.Note(e, "FilterBool")
		}
	}
	return out, nil
}

func (p *FilterBoolProgram) String() string {
	// Predicate programs print their own λ-binder.
	return fmt.Sprintf("FilterBool(%s, %s)", p.B, p.S)
}

// FilterIntProgram takes every Iter-th element of S starting at index Init.
type FilterIntProgram struct {
	Init int
	Iter int
	S    Program
}

// Exec selects elements at indices Init, Init+Iter, Init+2·Iter, ….
func (p *FilterIntProgram) Exec(st State) (Value, error) {
	sv, err := execMemoized(p.S, st)
	if err != nil {
		return nil, err
	}
	seq, err := AsSeq(sv)
	if err != nil {
		return nil, err
	}
	if p.Iter <= 0 {
		return nil, fmt.Errorf("core: FilterInt iter must be positive, got %d", p.Iter)
	}
	out := []Value{}
	for i := p.Init; i >= 0 && i < len(seq); i += p.Iter {
		out = append(out, seq[i])
	}
	if st.cap != nil {
		step := fmt.Sprintf("FilterInt(%d,%d)", p.Init, p.Iter)
		for _, e := range out {
			st.cap.Note(e, step)
		}
	}
	return out, nil
}

func (p *FilterIntProgram) String() string {
	return fmt.Sprintf("FilterInt(%d, %d, %s)", p.Init, p.Iter, p.S)
}

// MergeProgram combines the sequences produced by its argument programs,
// ordering the merged elements by the domain's location order (Less) and
// removing duplicates. It is the disjunctive abstraction that allows
// extraction of multiple-format field instances.
type MergeProgram struct {
	Args []Program
	Less func(a, b Value) bool
}

// Exec runs every argument and merges the resulting sequences in document
// order, dropping duplicates.
func (p *MergeProgram) Exec(st State) (Value, error) {
	var all []Value
	for _, a := range p.Args {
		v, err := execMemoized(a, st)
		if err != nil {
			return nil, err
		}
		seq, err := AsSeq(v)
		if err != nil {
			return nil, err
		}
		all = append(all, seq...)
	}
	if p.Less != nil {
		sort.SliceStable(all, func(i, j int) bool { return p.Less(all[i], all[j]) })
	}
	out := []Value{}
	for _, v := range all {
		if len(out) == 0 || !Eq(out[len(out)-1], v) {
			out = append(out, v)
		}
	}
	// A single-argument Merge is a transparent wrapper (String elides it
	// too); only a real disjunction is a provenance step worth recording.
	if st.cap != nil && len(p.Args) > 1 {
		for _, v := range out {
			st.cap.Note(v, "Merge")
		}
	}
	return out, nil
}

func (p *MergeProgram) String() string {
	if len(p.Args) == 1 {
		return p.Args[0].String()
	}
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = a.String()
	}
	return "Merge(" + strings.Join(parts, ", ") + ")"
}

// PairProgram evaluates both components and returns a PairValue.
type PairProgram struct {
	A, B Program
	// Make converts the two component values into the domain's region
	// representation. If nil, a PairValue is returned.
	Make func(a, b Value) (Value, error)
}

// PairValue is the default result of a PairProgram.
type PairValue struct {
	First, Second Value
}

// Exec evaluates both components.
func (p *PairProgram) Exec(st State) (Value, error) {
	a, err := p.A.Exec(st)
	if err != nil {
		return nil, err
	}
	b, err := p.B.Exec(st)
	if err != nil {
		return nil, err
	}
	var out Value
	if p.Make != nil {
		out, err = p.Make(a, b)
		if err != nil {
			return nil, err
		}
	} else {
		out = PairValue{First: a, Second: b}
	}
	if st.cap != nil {
		st.cap.Note(out, "Pair")
	}
	return out, nil
}

func (p *PairProgram) String() string {
	return fmt.Sprintf("Pair(%s, %s)", p.A, p.B)
}
