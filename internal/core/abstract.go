package core

import "flashextract/internal/abstract"

// This file is the AbstractEval seam on core programs: every operator of
// the algebra (Map, FilterBool, FilterInt, Merge, Pair) has an abstract
// transformer over internal/abstract's small lattice, and substrate leaf
// programs opt in by implementing AbstractSeqProgram / AbstractScalarProgram.
// Anything without a transformer degrades to ⊤, which admits every
// candidate — so the seam can only ever reject candidates whose concrete
// consistency check would also fail (see the soundness argument on each
// case below and DESIGN.md "Abstraction-guided pruning").

// AbstractSeqProgram is implemented by sequence leaf programs that supply
// an abstract transformer: an over-approximation of the program's concrete
// result on the given state. Implementations must be sound — Infeasible
// only when concrete execution is guaranteed to fail, a Count interval that
// contains the concrete output length whenever execution succeeds, and a
// Span covering every concrete output value's location.
type AbstractSeqProgram interface {
	AbstractSeq(ac *abstract.Ctx, st State) abstract.Seq
}

// AbstractScalarProgram is the scalar analogue of AbstractSeqProgram.
type AbstractScalarProgram interface {
	AbstractScalar(ac *abstract.Ctx, st State) abstract.Scalar
}

// AbstractRefiner is implemented by leaf programs that can tighten the
// refinement store after a spurious survivor: given the state of a failing
// example, the leaf records the exact concrete fact (typically a match
// count) its abstraction over-approximated.
type AbstractRefiner interface {
	RefineAbstract(ac *abstract.Ctx, st State)
}

// abstractMapElements is the widening cap on per-element abstract
// evaluation inside Map and on span joins: sequences longer than this are
// abstracted with a ⊤ span and only a prefix of element feasibility checks.
// Per-element checks ride the same memoized boundary/position caches the
// concrete execution uses (and skip match verification and region
// construction), so a full scan is still cheaper than the execution it can
// save; the cap exists to bound the abstract pass on degenerate documents
// with very long inner sequences.
const abstractMapElements = 4096

// AbstractSeq abstract-evaluates a sequence program on one input state.
func AbstractSeq(ac *abstract.Ctx, p Program, st State) abstract.Seq {
	switch t := p.(type) {
	case *MapProgram:
		// The inner sequence S is executed concretely through the shared
		// execution memo: the concrete path needs the very same value, so
		// this costs one memo probe on the candidates that survive. An S
		// failure fails the concrete Map too (strict semantics).
		sv, err := execMemoized(t.S, st)
		if err != nil {
			return abstract.InfeasibleSeq()
		}
		seq, err := AsSeq(sv)
		if err != nil {
			return abstract.InfeasibleSeq()
		}
		// F failing on any element fails the whole Map, so an infeasible F
		// on any checked element is ⊥. Only a prefix is checked (widening).
		lim := len(seq)
		if lim > abstractMapElements {
			lim = abstractMapElements
		}
		span := abstract.Span{}
		haveSpan := false
		for i := 0; i < lim; i++ {
			sc := AbstractScalar(ac, t.F, st.Bind(t.Var, seq[i]))
			if sc.Infeasible {
				return abstract.InfeasibleSeq()
			}
			if haveSpan {
				span = span.Join(sc.Span)
			} else {
				span, haveSpan = sc.Span, true
			}
		}
		if lim < len(seq) || !haveSpan {
			// Unchecked elements can produce values anywhere.
			span = abstract.TopSpan()
		}
		// If execution succeeds the output length equals len(seq) exactly.
		return abstract.Seq{Count: abstract.Exact(len(seq)), Span: span}

	case *FilterBoolProgram:
		inner := AbstractSeq(ac, t.S, st)
		if inner.Infeasible {
			return abstract.InfeasibleSeq()
		}
		// The filter keeps a subset: count in [0, inner.Hi], values within
		// the inner span. (The predicate itself is not abstracted: a
		// predicate error fails the candidate concretely anyway.)
		count := abstract.TopInterval()
		if !inner.Count.Top {
			count = abstract.Range(0, inner.Count.Hi)
		}
		return abstract.Seq{Count: count, Span: inner.Span}

	case *FilterIntProgram:
		inner := AbstractSeq(ac, t.S, st)
		if inner.Infeasible {
			return abstract.InfeasibleSeq()
		}
		if t.Iter <= 0 {
			// Concrete FilterInt rejects iter <= 0 with an error.
			return abstract.InfeasibleSeq()
		}
		return abstract.Seq{
			Count: inner.Count.FilterStride(t.Init, t.Iter),
			Span:  inner.Span,
		}

	case *MergeProgram:
		// Merge fails if any argument fails; its deduped output has at most
		// the sum of the argument counts and lies within the argument spans'
		// hull. Dedup can collapse arbitrarily many elements, so the lower
		// bound is 0.
		hi := abstract.Exact(0)
		var span abstract.Span
		haveSpan := false
		for _, a := range t.Args {
			as := AbstractSeq(ac, a, st)
			if as.Infeasible {
				return abstract.InfeasibleSeq()
			}
			hi = hi.Add(as.Count)
			if haveSpan {
				span = span.Join(as.Span)
			} else {
				span, haveSpan = as.Span, true
			}
		}
		if !haveSpan {
			span = abstract.TopSpan()
		}
		count := abstract.TopInterval()
		if !hi.Top {
			count = abstract.Range(0, hi.Hi)
		}
		return abstract.Seq{Count: count, Span: span}

	case AbstractSeqProgram:
		return t.AbstractSeq(ac, st)
	}
	return abstract.TopSeq()
}

// AbstractScalar abstract-evaluates a scalar program on one input state.
func AbstractScalar(ac *abstract.Ctx, p Program, st State) abstract.Scalar {
	switch t := p.(type) {
	case *PairProgram:
		a := AbstractScalar(ac, t.A, st)
		if a.Infeasible {
			return abstract.InfeasibleScalar()
		}
		b := AbstractScalar(ac, t.B, st)
		if b.Infeasible {
			return abstract.InfeasibleScalar()
		}
		// The Make step can relocate the value arbitrarily, so only
		// feasibility propagates; the span stays ⊤.
		return abstract.TopScalar()

	case AbstractScalarProgram:
		return t.AbstractScalar(ac, st)
	}
	return abstract.TopScalar()
}

// refineAbstract walks a spurious survivor and lets every refinable leaf
// tighten the store with the exact concrete facts of the failing state.
func refineAbstract(ac *abstract.Ctx, p Program, st State) {
	switch t := p.(type) {
	case *MapProgram:
		refineAbstract(ac, t.S, st)
	case *FilterBoolProgram:
		refineAbstract(ac, t.S, st)
	case *FilterIntProgram:
		refineAbstract(ac, t.S, st)
	case *MergeProgram:
		for _, a := range t.Args {
			refineAbstract(ac, a, st)
		}
	case *PairProgram:
		refineAbstract(ac, t.A, st)
		refineAbstract(ac, t.B, st)
	case AbstractRefiner:
		t.RefineAbstract(ac, st)
	}
}
