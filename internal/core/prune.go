package core

import (
	"context"

	"flashextract/internal/abstract"
)

// Pruner gates candidate programs through the abstract semantics before
// concrete execution: a candidate whose abstraction already contradicts an
// example is rejected without running it. The pruner carries the
// counterexample-driven refinement state (exact match counts learned from
// spurious survivors) and the pruned/refinement counters the engine
// publishes. One Pruner instance may serve many synthesis calls over the
// same document — abstract facts are document truths, so reuse across a
// session only sharpens the abstraction.
//
// The bit-identity contract: a Pruner is only consulted at sites that are
// immediately followed by the full concrete consistency check (CleanUp's
// execute-and-verify loop, the Synthesize*Prog validation loops, PairOp's
// admission) — every pruned candidate is one the concrete check would have
// dropped, so ranked output is unchanged. See DESIGN.md
// "Abstraction-guided pruning".
type Pruner struct {
	ac *abstract.Ctx
}

// NewPruner returns a pruner with an empty refinement store.
func NewPruner() *Pruner { return &Pruner{ac: abstract.NewCtx()} }

// Ctx exposes the refinement context (stats and substrate transformers).
func (pr *Pruner) Ctx() *abstract.Ctx {
	if pr == nil {
		return nil
	}
	return pr.ac
}

// Pruned returns how many candidates this pruner rejected.
func (pr *Pruner) Pruned() int64 { return pr.Ctx().Pruned() }

// Refinements returns how many spurious-survivor refinement passes ran.
func (pr *Pruner) Refinements() int64 { return pr.Ctx().Refinements() }

// AdmitsSeq reports whether the candidate's abstraction is consistent with
// every sequence example: execution must be feasible, the count bound must
// admit at least the example's positive instances, and every positive whose
// location is known (the Interval interface) must lie within the abstract
// span. A false return proves ConsistentSeq would also return false.
func (pr *Pruner) AdmitsSeq(p Program, exs []SeqExample) bool {
	if pr == nil {
		return true
	}
	for _, ex := range exs {
		a := AbstractSeq(pr.ac, p, ex.State)
		if a.Infeasible {
			return false
		}
		if !a.Count.AtLeast(len(ex.Positive)) {
			return false
		}
		if !spanCoversAll(a.Span, ex.Positive) {
			return false
		}
	}
	return true
}

// AdmitsScalar is AdmitsSeq for scalar examples: the abstraction must be
// feasible and the expected output must lie within the abstract span.
func (pr *Pruner) AdmitsScalar(p Program, exs []Example) bool {
	if pr == nil {
		return true
	}
	for _, ex := range exs {
		a := AbstractScalar(pr.ac, p, ex.State)
		if a.Infeasible {
			return false
		}
		if iv, ok := ex.Output.(Interval); ok {
			space, s, e := iv.Interval()
			if !a.Span.Covers(space, s, e) {
				return false
			}
		}
	}
	return true
}

// RefineSeq runs the counterexample-driven refinement loop on a spurious
// survivor: a candidate the abstraction admitted but the concrete check
// rejected. Every refinable leaf records the exact concrete facts of each
// example state, tightening the intervals future abstract evaluations use,
// so the same imprecision is not paid on the next candidate sharing the
// leaf.
func (pr *Pruner) RefineSeq(p Program, exs []SeqExample) {
	if pr == nil {
		return
	}
	pr.ac.CountRefinement()
	for _, ex := range exs {
		refineAbstract(pr.ac, p, ex.State)
	}
}

// RefineScalar is RefineSeq for scalar examples.
func (pr *Pruner) RefineScalar(p Program, exs []Example) {
	if pr == nil {
		return
	}
	pr.ac.CountRefinement()
	for _, ex := range exs {
		refineAbstract(pr.ac, p, ex.State)
	}
}

func spanCoversAll(span abstract.Span, positives []Value) bool {
	if span.Top {
		return true
	}
	for _, v := range positives {
		iv, ok := v.(Interval)
		if !ok {
			continue // no location information; never reject on it
		}
		space, s, e := iv.Interval()
		if !span.Covers(space, s, e) {
			return false
		}
	}
	return true
}

// prunerKey keys the pruning configuration installed in a context. The
// carrier distinguishes "never configured" (pruning may be installed by a
// default) from "explicitly disabled" (a nil pruner was installed).
type prunerKey struct{}

type prunerVal struct{ p *Pruner }

// WithPruner derives a context carrying the pruning configuration: a
// non-nil pruner enables abstraction-guided candidate pruning for calls
// made with the context, nil explicitly disables it (and suppresses any
// engine default).
func WithPruner(ctx context.Context, p *Pruner) context.Context {
	return context.WithValue(ctx, prunerKey{}, prunerVal{p: p})
}

// PrunerFrom returns the pruner carried by the context, or nil when none is
// installed (or pruning was explicitly disabled).
func PrunerFrom(ctx context.Context) *Pruner {
	if ctx == nil {
		return nil
	}
	v, _ := ctx.Value(prunerKey{}).(prunerVal)
	return v.p
}

// PrunerConfigured reports whether WithPruner was called on the context at
// all — enabled or explicitly disabled — so defaults higher in the stack
// know not to override an explicit choice.
func PrunerConfigured(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	_, ok := ctx.Value(prunerKey{}).(prunerVal)
	return ok
}
