package core

// This file is the state seam for incremental interactive synthesis (the
// maintenance of candidate sets across refinement iterations described in
// "Interactive Program Synthesis", Le et al.): a retained candidate set is
// only reusable while the environment it was learned in — the committed
// highlighting, the materialized-field set, the ancestor it was learned
// against — is unchanged, and while the example spec has only grown.
// RetainKey fingerprints that environment so staleness is one integer
// comparison, and ExtendsSpec is the grows-only test over example slices.

// RetainKey fingerprints the environment of a synthesis subproblem. Two
// equal keys mean the retained candidate set was learned under the same
// environment and may be intersected with an extended example spec; any
// difference (a committed ancestor, a cleared field, a different input
// partition) must force a cold re-learn.
type RetainKey uint64

// FNV-1a 64-bit parameters; the hash is stable across processes, so keys
// could be persisted alongside saved sessions.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// KeyHasher accumulates a RetainKey from the strings and integers that
// describe a subproblem. The zero value is not ready; use NewKeyHasher.
type KeyHasher struct {
	sum uint64
}

// NewKeyHasher returns a hasher seeded with the FNV-1a offset basis.
func NewKeyHasher() *KeyHasher {
	return &KeyHasher{sum: fnvOffset64}
}

// Str folds a string into the key. Each record is preceded by its length,
// so concatenation ambiguities ("ab"+"c" vs "a"+"bc") hash differently.
func (h *KeyHasher) Str(s string) *KeyHasher {
	h.Int(int64(len(s)))
	for i := 0; i < len(s); i++ {
		h.sum = (h.sum ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// Int folds an integer into the key.
func (h *KeyHasher) Int(v int64) *KeyHasher {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		h.sum = (h.sum ^ (u & 0xff)) * fnvPrime64
		u >>= 8
	}
	return h
}

// Bool folds a boolean into the key.
func (h *KeyHasher) Bool(v bool) *KeyHasher {
	if v {
		return h.Int(1)
	}
	return h.Int(0)
}

// Sum returns the accumulated key.
func (h *KeyHasher) Sum() RetainKey { return RetainKey(h.sum) }

// ExtendsSpec reports whether the example spec grew monotonically from
// (oldN items identified by key index) to the new spec: every old item is
// still present. Items are compared by the eq predicate. Retained candidate
// sets were filtered against the old spec, so they remain sound supersets
// of the consistent set exactly when the spec only gained examples.
func ExtendsSpec[T any](old, cur []T, eq func(a, b T) bool) bool {
	for _, o := range old {
		found := false
		for _, c := range cur {
			if eq(o, c) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
