package core

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"flashextract/internal/metrics"
	"flashextract/internal/trace"
)

// Example is a scalar input/output example: running the desired program in
// State must produce exactly Output.
type Example struct {
	State  State
	Output Value
}

// SeqExample is a sequence example with positive instances: the desired
// program, run in State, must produce a sequence containing Positive as a
// subsequence (Def. 5).
type SeqExample struct {
	State    State
	Positive []Value
}

// ScalarLearner learns the ranked set of scalar programs consistent with a
// set of scalar examples. An empty result means no program exists. The
// context carries cancellation and the call's SynthBudget (see WithBudget);
// learners stop exploring when it expires and return the consistent
// programs found so far.
type ScalarLearner func(ctx context.Context, exs []Example) []Program

// SeqLearner learns the ranked set of sequence programs consistent with a
// set of sequence examples (positive instances only). The context carries
// cancellation and the call's SynthBudget, as for ScalarLearner.
type SeqLearner func(ctx context.Context, exs []SeqExample) []Program

// DefaultCap bounds the length of learner result lists where a cross
// product could otherwise explode. Learners keep the highest-ranked
// programs. It can be raised for completeness experiments.
var DefaultCap = 128

func capList(ps []Program, limit int) []Program {
	if limit <= 0 {
		limit = DefaultCap
	}
	if len(ps) > limit {
		return ps[:limit]
	}
	return ps
}

// UnionLearners combines the rule learners of a non-terminal: the result is
// the concatenation of each learner's results, in rule order (the N.Learn
// procedure of Fig. 6). The rule learners are independent, so they run
// concurrently when spare processors exist; their results are stitched
// back together in rule order, keeping ranking identical to a serial run.
// A cancelled context stops each learner cooperatively; results produced
// before the cancellation are still returned.
//
// Budget exhaustion degrades to a rule-order prefix in both modes: the
// serial loop breaks at the first exhausted check, and the parallel path
// records which learners were skipped by their start-time probe and keeps
// only the results of the contiguous run of unskipped learners before the
// first skipped one. Without the prefix cut, a slow early learner could be
// skipped while a faster later one (scheduled before the trip) still
// contributed, leaving a rank-order hole that a serial run can never
// produce.
func UnionLearners(learners ...SeqLearner) SeqLearner {
	return func(ctx context.Context, exs []SeqExample) (learned []Program) {
		metrics.From(ctx).Count(metrics.LearnerFanout, int64(len(learners)))
		ctx, sp := trace.Start(ctx, "union")
		if sp != nil {
			sp.SetInt("fanout", int64(len(learners)))
			defer func() { endLearnerSpan(sp, len(exs), len(learned)) }()
		}
		bud := BudgetFrom(ctx)
		if len(learners) < 2 || runtime.GOMAXPROCS(0) < 2 {
			var out []Program
			for _, l := range learners {
				if bud.ExhaustedNow() {
					break
				}
				out = append(out, l(ctx, exs)...)
			}
			return out
		}
		parts := make([][]Program, len(learners))
		skipped := make([]bool, len(learners))
		var wg sync.WaitGroup
		for i, l := range learners {
			wg.Add(1)
			go func(i int, l SeqLearner) {
				defer wg.Done()
				if bud.ExhaustedNow() {
					skipped[i] = true
					return
				}
				parts[i] = l(ctx, exs)
			}(i, l)
		}
		wg.Wait()
		var out []Program
		for i, p := range parts {
			if skipped[i] {
				break
			}
			out = append(out, p...)
		}
		return out
	}
}

// UnionScalarLearners is UnionLearners for scalar non-terminals.
func UnionScalarLearners(learners ...ScalarLearner) ScalarLearner {
	return func(ctx context.Context, exs []Example) (learned []Program) {
		metrics.From(ctx).Count(metrics.LearnerFanout, int64(len(learners)))
		ctx, sp := trace.Start(ctx, "union_scalar")
		if sp != nil {
			sp.SetInt("fanout", int64(len(learners)))
			defer func() { endLearnerSpan(sp, len(exs), len(learned)) }()
		}
		bud := BudgetFrom(ctx)
		if len(learners) < 2 || runtime.GOMAXPROCS(0) < 2 {
			var out []Program
			for _, l := range learners {
				if bud.ExhaustedNow() {
					break
				}
				out = append(out, l(ctx, exs)...)
			}
			return out
		}
		parts := make([][]Program, len(learners))
		skipped := make([]bool, len(learners))
		var wg sync.WaitGroup
		for i, l := range learners {
			wg.Add(1)
			go func(i int, l ScalarLearner) {
				defer wg.Done()
				if bud.ExhaustedNow() {
					skipped[i] = true
					return
				}
				parts[i] = l(ctx, exs)
			}(i, l)
		}
		wg.Wait()
		var out []Program
		for i, p := range parts {
			if skipped[i] {
				break
			}
			out = append(out, p...)
		}
		return out
	}
}

// execSeq runs a program expected to return a sequence; ok is false when
// execution fails or the result is not a sequence.
func execSeq(p Program, st State) ([]Value, bool) {
	v, err := execMemoized(p, st)
	if err != nil {
		return nil, false
	}
	seq, err := AsSeq(v)
	if err != nil {
		return nil, false
	}
	return seq, true
}

// ConsistentSeq reports whether p is consistent with the positive instances
// of all sequence examples.
func ConsistentSeq(p Program, exs []SeqExample) bool {
	for _, ex := range exs {
		out, ok := execSeq(p, ex.State)
		if !ok || !IsSubsequence(ex.Positive, out) {
			return false
		}
	}
	return true
}

// ConsistentScalar reports whether p is consistent with all scalar examples.
func ConsistentScalar(p Program, exs []Example) bool {
	for _, ex := range exs {
		v, err := p.Exec(ex.State)
		if err != nil || !Eq(v, ex.Output) {
			return false
		}
	}
	return true
}

// PreferNonOverlapping wraps a sequence learner so that programs whose
// example outputs contain two overlapping (but distinct) values rank as a
// group after programs with pairwise non-overlapping outputs. Instances of
// one field never overlap each other in practice, so an overlapping output
// almost always signals an overfit candidate; the overlapping programs are
// kept as a fallback to preserve completeness.
//
// Within each group the order is cost-then-stable-index deterministic: a
// stable sort by ranking Cost, so equal-cost programs keep the inner
// learner's emission order (see DESIGN.md "Abstraction-guided pruning" →
// ordering contract). The explicit sort pins tie-breaking to the input
// index rather than to whatever order the wrapped learner happened to
// produce under a given timing, so a pruning pass that changes per-learner
// timing can never flip which of two tied programs wins downstream.
func PreferNonOverlapping(l SeqLearner, overlaps func(a, b Value) bool) SeqLearner {
	return func(ctx context.Context, exs []SeqExample) []Program {
		ps := l(ctx, exs)
		if len(ps) <= 1 {
			return ps
		}
		var good, bad []Program
		for _, p := range ps {
			if hasOverlappingOutput(p, exs, overlaps) {
				bad = append(bad, p)
			} else {
				good = append(good, p)
			}
		}
		sortByCostStable(good)
		sortByCostStable(bad)
		return append(good, bad...)
	}
}

// sortByCostStable orders programs by ranking cost, preserving input order
// among equal costs. Cost is computed once per program up front: Cost walks
// the whole operator tree, and sort comparisons are O(n log n).
func sortByCostStable(ps []Program) {
	if len(ps) <= 1 {
		return
	}
	costs := make([]int, len(ps))
	for i, p := range ps {
		costs[i] = Cost(p)
	}
	type ranked struct {
		p Program
		c int
	}
	rs := make([]ranked, len(ps))
	for i := range ps {
		rs[i] = ranked{ps[i], costs[i]}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].c < rs[j].c })
	for i := range rs {
		ps[i] = rs[i].p
	}
}

func hasOverlappingOutput(p Program, exs []SeqExample, overlaps func(a, b Value) bool) bool {
	for _, ex := range exs {
		out, ok := execSeq(p, ex.State)
		if !ok {
			continue
		}
		if hit, ok := intervalOverlap(out); ok {
			if hit {
				return true
			}
			continue
		}
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if !Eq(out[i], out[j]) && overlaps(out[i], out[j]) {
					return true
				}
			}
		}
	}
	return false
}

// intervalOverlap is the O(n log n) pairwise-overlap check over outputs
// that all implement Interval (see that type's contract). It reports
// (overlapping, applicable); applicable is false when any output lacks the
// interface, in which case the caller falls back to the exact pairwise
// loop. A pair of outputs overlaps exactly when their spaces match, their
// intervals strictly intersect, and they are not Eq — which by the
// contract means not span-identical.
func intervalOverlap(out []Value) (overlapping, applicable bool) {
	if len(out) < 2 {
		_, ok := firstNonInterval(out)
		return false, !ok
	}
	type span struct{ start, end int }
	groups := map[any][]span{}
	for _, v := range out {
		iv, ok := v.(Interval)
		if !ok {
			return false, false
		}
		space, s, e := iv.Interval()
		groups[space] = append(groups[space], span{s, e})
	}
	const minInt = -int(^uint(0)>>1) - 1
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		sort.Slice(g, func(i, j int) bool {
			if g[i].start != g[j].start {
				return g[i].start < g[j].start
			}
			return g[i].end < g[j].end
		})
		// strictMax: max end among spans starting strictly before the
		// current start run; runMax: max end within the run. A span
		// overlaps an earlier-starting span iff that span ends past its
		// start, and a same-start span iff both are non-empty.
		strictMax, runMax, runStart := minInt, minInt, g[0].start
		for i, v := range g {
			if i > 0 && v == g[i-1] {
				continue // Eq duplicate by the Interval contract
			}
			if v.start != runStart {
				if runMax > strictMax {
					strictMax = runMax
				}
				runMax = minInt
				runStart = v.start
			}
			if strictMax > v.start {
				return true, true
			}
			if runMax > v.start && v.end > v.start {
				return true, true
			}
			if v.end > runMax {
				runMax = v.end
			}
		}
	}
	return false, true
}

// firstNonInterval reports whether out contains a value that does not
// implement Interval (and returns the first such value).
func firstNonInterval(out []Value) (Value, bool) {
	for _, v := range out {
		if _, ok := v.(Interval); !ok {
			return v, true
		}
	}
	return nil, false
}
