package core

import "testing"

func TestKeyHasherDeterministic(t *testing.T) {
	k1 := NewKeyHasher().Str("row").Int(3).Bool(true).Sum()
	k2 := NewKeyHasher().Str("row").Int(3).Bool(true).Sum()
	if k1 != k2 {
		t.Fatalf("same inputs hashed to %x and %x", k1, k2)
	}
}

func TestKeyHasherSeparatesRecords(t *testing.T) {
	// Length prefixes must keep shifted concatenations distinct.
	a := NewKeyHasher().Str("ab").Str("c").Sum()
	b := NewKeyHasher().Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal("record boundaries not separated by the hasher")
	}
	if NewKeyHasher().Bool(true).Sum() == NewKeyHasher().Bool(false).Sum() {
		t.Fatal("booleans indistinguishable")
	}
}

func TestExtendsSpec(t *testing.T) {
	eq := func(a, b int) bool { return a == b }
	if !ExtendsSpec([]int{1, 2}, []int{1, 2, 3}, eq) {
		t.Fatal("superset rejected")
	}
	if !ExtendsSpec(nil, []int{1}, eq) {
		t.Fatal("empty old spec rejected")
	}
	if !ExtendsSpec([]int{2, 1}, []int{1, 2}, eq) {
		t.Fatal("order must not matter")
	}
	if ExtendsSpec([]int{1, 4}, []int{1, 2, 3}, eq) {
		t.Fatal("removed example accepted")
	}
}
