package core

import (
	"fmt"
	"strings"
	"testing"
)

// captureSeq is a leaf sequence program over small comparable values.
func captureSeq(vals ...int) Program {
	seq := make([]Value, len(vals))
	for i, v := range vals {
		seq[i] = v
	}
	return Func{Name: "src", F: func(State) (Value, error) { return seq, nil }}
}

func TestCaptureRecordsOperatorPath(t *testing.T) {
	// FilterBool(even, Map(double, src)) over 1..4: outputs 2,4,6,8 all even.
	inner := &MapProgram{
		Name: "DoubleMap",
		Var:  "x",
		F: Func{Name: "double", F: func(st State) (Value, error) {
			v, _ := st.Lookup("x")
			return v.(int) * 2, nil
		}},
		S: captureSeq(1, 2, 3, 4),
	}
	prog := &FilterBoolProgram{
		Var: "y",
		B: Func{Name: "even", F: func(st State) (Value, error) {
			v, _ := st.Lookup("y")
			return v.(int)%2 == 0, nil
		}},
		S: inner,
	}
	cap := NewExecCapture()
	out, err := prog.Exec(NewState("in").WithCapture(cap))
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	seq := out.([]Value)
	if len(seq) != 4 {
		t.Fatalf("output = %v, want 4 elements", seq)
	}
	for _, v := range seq {
		steps := cap.Steps(v)
		want := []string{"Map:DoubleMap", "FilterBool"}
		if len(steps) != 2 || steps[0] != want[0] || steps[1] != want[1] {
			t.Fatalf("Steps(%v) = %v, want %v (innermost first)", v, steps, want)
		}
	}
	if cap.Len() != 4 {
		t.Fatalf("Len = %d, want 4", cap.Len())
	}
}

func TestCaptureFilterIntMergePair(t *testing.T) {
	fi := &FilterIntProgram{Init: 1, Iter: 2, S: captureSeq(10, 20, 30, 40)}
	merged := &MergeProgram{
		Args: []Program{fi, captureSeq(5)},
		Less: func(a, b Value) bool { return a.(int) < b.(int) },
	}
	cap := NewExecCapture()
	out, err := merged.Exec(NewState("in").WithCapture(cap))
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if got := fmt.Sprint(out); got != "[5 20 40]" {
		t.Fatalf("merge output = %s", got)
	}
	steps := cap.Steps(20)
	if len(steps) != 2 || steps[0] != "FilterInt(1,2)" || steps[1] != "Merge" {
		t.Fatalf("Steps(20) = %v", steps)
	}
	// The leaf-only element carries just the Merge step.
	if s := cap.Steps(5); len(s) != 1 || s[0] != "Merge" {
		t.Fatalf("Steps(5) = %v", s)
	}

	pair := &PairProgram{
		A: Func{Name: "a", F: func(State) (Value, error) { return 1, nil }},
		B: Func{Name: "b", F: func(State) (Value, error) { return 2, nil }},
		Make: func(a, b Value) (Value, error) {
			return [2]int{a.(int), b.(int)}, nil
		},
	}
	pcap := NewExecCapture()
	pv, err := pair.Exec(NewState("in").WithCapture(pcap))
	if err != nil {
		t.Fatalf("pair Exec: %v", err)
	}
	if s := pcap.Steps(pv); len(s) != 1 || s[0] != "Pair" {
		t.Fatalf("Steps(pair) = %v", s)
	}
}

func TestCaptureSkipsNonComparable(t *testing.T) {
	cap := NewExecCapture()
	cap.Note([]Value{1, 2}, "Map:X") // must not panic
	if cap.Len() != 0 {
		t.Fatalf("non-comparable value was recorded")
	}
	if s := cap.Steps([]Value{1, 2}); s != nil {
		t.Fatalf("Steps on non-comparable = %v", s)
	}
}

func TestCaptureCap(t *testing.T) {
	c := &ExecCapture{max: 2, steps: map[Value][]string{}}
	c.Note(1, "a")
	c.Note(2, "a")
	c.Note(3, "a") // over the cap: dropped
	c.Note(1, "b") // existing key: still recorded
	if c.Len() != 2 || c.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 2/1", c.Len(), c.Dropped())
	}
	if s := c.Steps(1); strings.Join(s, ",") != "a,b" {
		t.Fatalf("Steps(1) = %v", s)
	}
}

func TestNilCaptureIsInert(t *testing.T) {
	var c *ExecCapture
	c.Note(1, "a")
	if c.Steps(1) != nil || c.Len() != 0 || c.Dropped() != 0 {
		t.Fatal("nil capture must be a no-op")
	}
}

// benchProg is a Map over a medium sequence — the operator shape of the
// extraction hot path — used by the capture-path benchmarks.
func benchProg() Program {
	vals := make([]Value, 256)
	for i := range vals {
		vals[i] = i
	}
	return &MapProgram{
		Name: "IdMap",
		Var:  "x",
		F: Func{Name: "id", F: func(st State) (Value, error) {
			v, _ := st.Lookup("x")
			return v, nil
		}},
		S: Func{Name: "src", F: func(State) (Value, error) { return vals, nil }},
	}
}

// BenchmarkCaptureDisabled measures the provenance-off fast path: states
// without a capture must cost the operators only a nil check, exactly like
// trace.Start with no tracer installed.
func BenchmarkCaptureDisabled(b *testing.B) {
	p := benchProg()
	st := NewState("in")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Exec(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaptureEnabled measures the same execution with capture on, for
// the overhead comparison recorded in DESIGN.md.
func BenchmarkCaptureEnabled(b *testing.B) {
	p := benchProg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := NewState("in").WithCapture(NewExecCapture())
		if _, err := p.Exec(st); err != nil {
			b.Fatal(err)
		}
	}
}
