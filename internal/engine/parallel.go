package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// firstPassing returns the lowest index i in [0, n) for which try(i) is
// true, or -1 when no index passes — the same answer as the serial loop
//
//	for i := 0; i < n; i++ { if try(i) { return i } }
//
// but with independent try calls fanned across a GOMAXPROCS-bounded worker
// pool. try must be safe for concurrent calls and deterministic per index.
//
// Ranking stays bit-identical to serial execution: candidates are claimed
// in index order off a shared counter, a worker abandons its claim once
// some lower index has already passed, and the final answer is the minimum
// passing index. Every index below the returned one has been tried and
// rejected, exactly as in the serial loop; indexes above it may be skipped
// (early cancellation).
func firstPassing(n int, try func(int) bool) int {
	if n <= 0 {
		return -1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if try(i) {
				return i
			}
		}
		return -1
	}

	var (
		next atomic.Int64 // next candidate index to claim
		best atomic.Int64 // lowest passing index found so far
		wg   sync.WaitGroup
	)
	best.Store(int64(n))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) || i >= best.Load() {
					return
				}
				if !try(int(i)) {
					continue
				}
				for {
					cur := best.Load()
					if i >= cur || best.CompareAndSwap(cur, i) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if b := best.Load(); b < int64(n) {
		return int(b)
	}
	return -1
}
