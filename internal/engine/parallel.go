package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"flashextract/internal/core"
	"flashextract/internal/trace"
)

// ValidationWorkers overrides the size of the candidate-validation worker
// pool (0 means GOMAXPROCS). It exists for the differential test harness,
// which compares the parallel scan against a forced-serial reference; the
// production default is 0.
var ValidationWorkers = 0

// firstPassing returns the lowest index i in [0, n) for which try(i) is
// true, or -1 when no index passes — the same answer as the serial loop
//
//	for i := 0; i < n; i++ { if try(i) { return i } }
//
// but with independent try calls fanned across a GOMAXPROCS-bounded worker
// pool. try must be safe for concurrent calls and deterministic per index.
//
// Ranking stays bit-identical to serial execution: candidates are claimed
// in index order off a shared counter, a worker abandons its claim once
// some lower index has already passed, and the final answer is the minimum
// passing index. Every index below the returned one has been tried and
// rejected, exactly as in the serial loop; indexes above it may be skipped
// (early cancellation).
//
// Worker lifetime is tied to the context: when ctx is cancelled or the
// call's budget trips, workers stop claiming new candidates and the call
// returns after at most one in-flight try each — no goroutine outlives
// firstPassing, so an abandoning caller leaks nothing. A truncated scan is
// reported via complete=false: the returned index is then the best passing
// candidate found before the interruption (or -1), and lower-ranked
// untried candidates may exist, so the serial-equivalence guarantee only
// holds when complete is true.
func firstPassing(ctx context.Context, n int, try func(int) bool) (idx int, complete bool) {
	if n <= 0 {
		return -1, true
	}
	bud := core.BudgetFrom(ctx)
	workers := ValidationWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil || bud.ExhaustedNow() {
				return -1, false
			}
			if try(i) {
				return i, true
			}
		}
		return -1, true
	}

	var (
		next      atomic.Int64 // next candidate index to claim
		best      atomic.Int64 // lowest passing index found so far
		truncated atomic.Bool  // a worker stopped before exhausting its claims
		wg        sync.WaitGroup
	)
	best.Store(int64(n))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker gets its own child span of the validation scan,
			// so traces show how candidate checks spread across goroutines.
			_, wsp := trace.Start(ctx, "validate_worker")
			tried := int64(0)
			defer func() {
				wsp.SetInt("worker", int64(w))
				wsp.SetInt("tried", tried)
				wsp.End()
			}()
			for {
				if ctx.Err() != nil || bud.ExhaustedNow() {
					truncated.Store(true)
					return
				}
				i := next.Add(1) - 1
				if i >= int64(n) || i >= best.Load() {
					return
				}
				tried++
				if !try(int(i)) {
					continue
				}
				for {
					cur := best.Load()
					if i >= cur || best.CompareAndSwap(cur, i) {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	b := best.Load()
	if truncated.Load() {
		if b < int64(n) {
			return int(b), false
		}
		return -1, false
	}
	if b < int64(n) {
		return int(b), true
	}
	return -1, true
}
