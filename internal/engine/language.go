// Package engine implements the document-independent user interaction
// model of FlashExtract (§3 of the paper): output-schema-driven
// highlighting, the execution semantics of schema extraction programs
// (Algorithm 1 and the Fill function of Fig. 5), the field synthesis
// driver (Algorithm 2), and an interactive Session that mirrors the
// example-based workflow of the tool.
//
// The engine is parameterized by a Language — one per document type — that
// exposes the two inductive synthesis APIs of the framework.
package engine

import (
	"context"

	"flashextract/internal/region"
)

// SeqRegionExample is one example for SynthesizeSeqRegion: within the
// Input region, the Positive regions must be extracted and the Negative
// regions must not.
type SeqRegionExample struct {
	Input    region.Region
	Positive []region.Region
	Negative []region.Region
}

// RegionExample is one example for SynthesizeRegion: within the Input
// region, exactly the Output region must be extracted.
type RegionExample struct {
	Input  region.Region
	Output region.Region
}

// SeqRegionProgram extracts a sequence of regions from an ancestor region.
type SeqRegionProgram interface {
	ExtractSeq(r region.Region) ([]region.Region, error)
	String() string
}

// RegionProgram extracts a single region from an ancestor region. A nil
// region with a nil error denotes the null instance ⊥.
type RegionProgram interface {
	Extract(r region.Region) (region.Region, error)
	String() string
}

// Language is a data-extraction DSL instantiation: it provides the two
// synthesis APIs of the framework (§4.3). Both return ranked lists of
// programs consistent with the examples; an empty list means no program in
// the DSL is consistent. The context carries cancellation and the call's
// synthesis budget (core.WithBudget): implementations stop exploring
// cooperatively when it expires and return the consistent programs found
// so far, so an empty list under an exhausted budget means "none found in
// time", not "none exists".
type Language interface {
	SynthesizeSeqRegion(ctx context.Context, exs []SeqRegionExample) []SeqRegionProgram
	SynthesizeRegion(ctx context.Context, exs []RegionExample) []RegionProgram
}

// CacheStats summarizes a document's evaluation cache: probe hits and
// misses plus approximate resident bytes. Documents whose Language uses a
// document-scoped cache implement CacheStatser; the Session and flashbench
// surface the numbers alongside the engine metrics.
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Entries     int64 `json:"entries"`
	Evictions   int64 `json:"evictions,omitempty"`
	ApproxBytes int64 `json:"approx_bytes"`
}

// CacheStatser is implemented by documents that expose evaluation-cache
// statistics.
type CacheStatser interface {
	CacheStats() CacheStats
}

// Document is a concrete document of some domain, paired with the domain's
// DSL.
type Document interface {
	// WholeRegion returns the largest region of the document (D.Region).
	WholeRegion() region.Region
	// Language returns the document's data-extraction DSL.
	Language() Language
}

// Spanner is implemented by documents that can compute a minimal covering
// region of two regions. It enables bottom-up structure inference (§3 of
// the paper): proposing non-leaf field regions from the materialized
// highlighting of their descendants.
type Spanner interface {
	Span(a, b region.Region) (region.Region, error)
}
