package engine

import (
	"fmt"
	"strings"

	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// InstanceKind discriminates the shapes of a schema instance.
type InstanceKind int

// The instance shapes produced by Fill.
const (
	NullInstance InstanceKind = iota
	LeafInstance
	StructInstance
	SeqInstance
)

// Instance is an instance of the output schema, produced by Fill (Fig. 5).
type Instance struct {
	Kind InstanceKind
	// Elements holds the named element instances of a struct.
	Elements []NamedInstance
	// Items holds the element instances of a sequence.
	Items []*Instance
	// Region and Text are set for leaf instances.
	Region region.Region
	Text   string
	// Type is the leaf type for leaf instances.
	Type schema.LeafType
}

// NamedInstance is one named element of a struct instance.
type NamedInstance struct {
	Name  string
	Value *Instance
}

// IsNull reports whether the instance is ⊥.
func (in *Instance) IsNull() bool { return in == nil || in.Kind == NullInstance }

func (in *Instance) String() string {
	var b strings.Builder
	in.write(&b)
	return b.String()
}

func (in *Instance) write(b *strings.Builder) {
	switch {
	case in.IsNull():
		b.WriteString("⊥")
	case in.Kind == LeafInstance:
		fmt.Fprintf(b, "%q", in.Text)
	case in.Kind == StructInstance:
		b.WriteString("{")
		for i, e := range in.Elements {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.Name)
			b.WriteString(": ")
			e.Value.write(b)
		}
		b.WriteString("}")
	case in.Kind == SeqInstance:
		b.WriteString("[")
		for i, it := range in.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			it.write(b)
		}
		b.WriteString("]")
	}
}

// Fill generates a schema instance from a highlighting, per the semantics
// of Fig. 5, starting at the document's whole region.
func Fill(m *schema.Schema, cr Highlighting, whole region.Region) *Instance {
	if m.TopSeq != nil {
		return fillSeq(m.TopSeq, cr, whole)
	}
	return fillStruct(m.TopStruct, cr, whole)
}

func fillStruct(s *schema.Struct, cr Highlighting, r region.Region) *Instance {
	if r == nil {
		return &Instance{Kind: NullInstance}
	}
	out := &Instance{Kind: StructInstance}
	for _, e := range s.Elements {
		var v *Instance
		if e.Seq != nil {
			v = fillSeq(e.Seq, cr, r)
		} else {
			v = fillField(e.Field, cr, r)
		}
		out.Elements = append(out.Elements, NamedInstance{Name: e.Name, Value: v})
	}
	return out
}

func fillSeq(s *schema.Seq, cr Highlighting, r region.Region) *Instance {
	if r == nil {
		return &Instance{Kind: NullInstance}
	}
	out := &Instance{Kind: SeqInstance, Items: []*Instance{}}
	for _, sub := range region.Subregions(r, cr[s.Inner.Color]) {
		out.Items = append(out.Items, fillField(s.Inner, cr, sub))
	}
	return out
}

func fillField(f *schema.Field, cr Highlighting, r region.Region) *Instance {
	if r == nil {
		return &Instance{Kind: NullInstance}
	}
	sub := region.Subregion(r, cr[f.Color])
	if sub == nil {
		return &Instance{Kind: NullInstance}
	}
	if f.IsLeaf() {
		return &Instance{Kind: LeafInstance, Region: sub, Text: sub.Value(), Type: f.Leaf}
	}
	return fillStruct(f.Struct, cr, sub)
}
