package engine_test

import (
	"strings"
	"testing"

	"flashextract/internal/engine"
	"flashextract/internal/region"
	"flashextract/internal/schema"
	"flashextract/internal/textlang"
)

// noCodecLang wraps a Language without implementing ProgramCodec.
type noCodecLang struct{ engine.Language }

func learnSimpleProgram(t *testing.T) (*engine.SchemaProgram, *textlang.Document) {
	t.Helper()
	doc := textlang.NewDocument("k: 1\nq: 22\nz: 333\n")
	sch := schema.MustParse(`Seq([rec] Struct(Key: [k] String, Val: [v] Int))`)
	s := engine.NewSession(doc, sch)
	examples := map[string][]region.Region{}
	lines := []struct{ key, val string }{{"k", "1"}, {"q", "22"}}
	for _, l := range lines {
		kr, _ := doc.FindRegion(l.key+":", 0)
		examples["rec"] = append(examples["rec"], doc.Region(kr.Start, kr.Start+len(l.key)+2+len(l.val)))
		examples["k"] = append(examples["k"], doc.Region(kr.Start, kr.Start+len(l.key)))
		vr, _ := doc.FindRegion(l.val, 0)
		examples["v"] = append(examples["v"], vr)
	}
	for _, fi := range sch.Fields() {
		for _, r := range examples[fi.Color()] {
			if err := s.AddPositive(fi.Color(), r); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := s.Learn(fi.Color()); err != nil {
			t.Fatalf("learning %s: %v", fi.Color(), err)
		}
		if err := s.Commit(fi.Color()); err != nil {
			t.Fatal(err)
		}
	}
	q, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	return q, doc
}

func TestSaveSchemaProgramRoundTrip(t *testing.T) {
	q, doc := learnSimpleProgram(t)
	data, err := engine.SaveSchemaProgram(q, doc.Language())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := engine.LoadSchemaProgram(data, doc.Language())
	if err != nil {
		t.Fatal(err)
	}
	inst1, _, err := q.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	inst2, _, err := loaded.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	if inst1.String() != inst2.String() {
		t.Fatalf("loaded program diverges:\n%s\nvs\n%s", inst1, inst2)
	}
}

func TestSaveSchemaProgramWithoutCodec(t *testing.T) {
	q, doc := learnSimpleProgram(t)
	if _, err := engine.SaveSchemaProgram(q, noCodecLang{doc.Language()}); err == nil {
		t.Fatal("language without codec accepted")
	}
	if _, err := engine.LoadSchemaProgram([]byte("{}"), noCodecLang{doc.Language()}); err == nil {
		t.Fatal("load without codec accepted")
	}
}

func TestSaveSchemaProgramIncomplete(t *testing.T) {
	doc := textlang.NewDocument("x")
	sch := schema.MustParse(`Seq([a] String)`)
	q := &engine.SchemaProgram{Schema: sch, Fields: map[string]*engine.FieldProgram{}}
	if _, err := engine.SaveSchemaProgram(q, doc.Language()); err == nil {
		t.Fatal("incomplete program accepted")
	}
}

func TestLoadSchemaProgramBadBody(t *testing.T) {
	doc := textlang.NewDocument("x")
	artifact := `{"format":"flashextract-program/1","schema":"Seq([a] String)",
		"fields":[{"color":"a","kind":"seq","body":{"op":"nope"}}]}`
	if _, err := engine.LoadSchemaProgram([]byte(artifact), doc.Language()); err == nil {
		t.Fatal("undecodable body accepted")
	}
	artifact2 := `{"format":"flashextract-program/1","schema":"Seq([a] String)",
		"fields":[{"color":"a","kind":"weird","body":{}}]}`
	if _, err := engine.LoadSchemaProgram([]byte(artifact2), doc.Language()); err == nil {
		t.Fatal("unknown kind accepted")
	}
	artifact3 := `{"format":"flashextract-program/1","schema":"Seq([a] Struct(X: [x] String))",
		"fields":[{"color":"x","ancestor":"zzz","kind":"region","body":{}}]}`
	if _, err := engine.LoadSchemaProgram([]byte(artifact3), doc.Language()); err == nil {
		t.Fatal("unknown ancestor accepted")
	}
}

func TestLoadedProgramAncestorsPreserved(t *testing.T) {
	q, doc := learnSimpleProgram(t)
	data, err := engine.SaveSchemaProgram(q, doc.Language())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"ancestor": "rec"`) {
		t.Fatalf("artifact does not record the ancestor relation:\n%s", data)
	}
	loaded, err := engine.LoadSchemaProgram(data, doc.Language())
	if err != nil {
		t.Fatal(err)
	}
	fp := loaded.Fields["k"]
	if fp.Ancestor == nil || fp.Ancestor.Color() != "rec" {
		t.Fatalf("loaded ancestor = %v", fp.Ancestor)
	}
}
