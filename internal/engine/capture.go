package engine

import (
	"context"
	"fmt"

	"flashextract/internal/core"
	"flashextract/internal/region"
)

// CapturedSeqExtractor is optionally implemented by SeqRegion programs
// whose execution can record provenance: which core operator
// subexpressions each emitted region passed through. All substrate
// adapters (textlang, weblang, sheetlang) implement it; hand-written
// programs that don't are simply run uncaptured.
type CapturedSeqExtractor interface {
	ExtractSeqCaptured(r region.Region, c *core.ExecCapture) ([]region.Region, error)
}

// CapturedRegionExtractor is the Region-program counterpart of
// CapturedSeqExtractor.
type CapturedRegionExtractor interface {
	ExtractCaptured(r region.Region, c *core.ExecCapture) (region.Region, error)
}

// RunCapturedContext is RunContext with execution provenance: in addition
// to the instance and highlighting it returns, per field color, the
// ExecCapture recording which operator subexpressions produced each of the
// field's regions. Captured runs bypass no consistency checks — the
// instance and highlighting are identical to an uncaptured run's (capture
// only observes operator outputs; see the provenance differential tests).
func (q *SchemaProgram) RunCapturedContext(ctx context.Context, doc Document) (*Instance, Highlighting, map[string]*core.ExecCapture, error) {
	if err := q.Complete(); err != nil {
		return nil, nil, nil, err
	}
	caps := map[string]*core.ExecCapture{}
	cr := Highlighting{}
	for _, fi := range q.Schema.Fields() {
		fp := q.Fields[fi.Color()]
		cap := core.NewExecCapture()
		caps[fi.Color()] = cap
		rs, err := fp.runCtx(ctx, doc, cr, cap)
		if err != nil {
			return nil, nil, nil, err
		}
		cr.Add(fi.Color(), rs...)
	}
	if err := cr.ConsistentWith(q.Schema); err != nil {
		return nil, nil, nil, fmt.Errorf("engine: extraction result inconsistent with schema: %w", err)
	}
	inst := Fill(q.Schema, cr, doc.WholeRegion())
	return inst, cr, caps, nil
}
