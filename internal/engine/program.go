package engine

import (
	"context"
	"fmt"
	"strings"

	"flashextract/internal/core"
	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// FieldProgram is a field extraction program (Def. 4): a pair of an
// ancestor field f′ (nil meaning ⊥) and either a SeqRegion program (when
// f′ is a sequence-ancestor of the field) or a Region program (when f′ is
// a structure-ancestor).
type FieldProgram struct {
	Field    *schema.FieldInfo
	Ancestor *schema.FieldInfo // nil = ⊥
	Seq      SeqRegionProgram  // non-nil iff Ancestor is a sequence-ancestor
	Reg      RegionProgram     // non-nil iff Ancestor is a structure-ancestor
}

func (fp *FieldProgram) String() string {
	anc := "⊥"
	if fp.Ancestor != nil {
		anc = fp.Ancestor.Color()
	}
	body := ""
	if fp.Seq != nil {
		body = fp.Seq.String()
	} else if fp.Reg != nil {
		body = fp.Reg.String()
	}
	return fmt.Sprintf("(%s, %s)", anc, body)
}

// run executes the field extraction program against the highlighting built
// so far (the body of the inner Run of Algorithm 1). A program failure on
// one ancestor region contributes no regions for that ancestor: sequence
// programs contribute an empty sequence, region programs the null
// instance.
func (fp *FieldProgram) run(doc Document, cr Highlighting) []region.Region {
	out, _ := fp.runCtx(context.Background(), doc, cr, nil)
	return out
}

// runCtx is run under a context: cancellation (or a tripped budget) aborts
// between ancestor regions with the context's error. A non-nil cap records
// execution provenance for the emitted regions, when the substrate program
// supports capture (see CapturedSeqExtractor); unsupported programs run
// uncaptured.
func (fp *FieldProgram) runCtx(ctx context.Context, doc Document, cr Highlighting, cap *core.ExecCapture) ([]region.Region, error) {
	var inputs []region.Region
	if fp.Ancestor == nil {
		inputs = []region.Region{doc.WholeRegion()}
	} else {
		inputs = cr[fp.Ancestor.Color()]
	}
	bud := core.BudgetFrom(ctx)
	var out []region.Region
	for _, in := range inputs {
		if err := runErr(ctx, bud); err != nil {
			return nil, err
		}
		if fp.Seq != nil {
			var rs []region.Region
			var err error
			if cse, ok := fp.Seq.(CapturedSeqExtractor); ok && cap != nil {
				rs, err = cse.ExtractSeqCaptured(in, cap)
			} else {
				rs, err = fp.Seq.ExtractSeq(in)
			}
			if err == nil {
				out = append(out, rs...)
			}
		} else {
			var r region.Region
			var err error
			if cre, ok := fp.Reg.(CapturedRegionExtractor); ok && cap != nil {
				r, err = cre.ExtractCaptured(in, cap)
			} else {
				r, err = fp.Reg.Extract(in)
			}
			if err == nil && r != nil {
				out = append(out, r)
			}
		}
	}
	region.Sort(out)
	return out, nil
}

// runErr reports why an execution context no longer permits work: the
// context's own error when it is done, or a budget-exhaustion error when
// the per-run budget (deadline, cancellation) tripped.
func runErr(ctx context.Context, bud *core.Budget) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if bud.ExhaustedNow() {
		return fmt.Errorf("engine: run budget exhausted: %s", bud.Reason())
	}
	return nil
}

// SchemaProgram is a schema extraction program Q: a map from every field
// of the schema to its field extraction program.
type SchemaProgram struct {
	Schema *schema.Schema
	Fields map[string]*FieldProgram // keyed by field color
}

func (q *SchemaProgram) String() string {
	var b strings.Builder
	for _, fi := range q.Schema.Fields() {
		fp := q.Fields[fi.Color()]
		fmt.Fprintf(&b, "%-10s ← %s\n", fi.Color(), fp)
	}
	return b.String()
}

// Complete reports whether every schema field has a program.
func (q *SchemaProgram) Complete() error {
	for _, fi := range q.Schema.Fields() {
		if q.Fields[fi.Color()] == nil {
			return fmt.Errorf("engine: no extraction program for field %s [%s]", fi.Path, fi.Color())
		}
	}
	return nil
}

// Run executes the schema extraction program on a document (Algorithm 1):
// field programs run in top-down topological order, each updating the
// highlighting, and the resulting highlighting is turned into a schema
// instance by Fill. Run fails if the produced highlighting is inconsistent
// with the schema.
func (q *SchemaProgram) Run(doc Document) (*Instance, Highlighting, error) {
	return q.RunContext(context.Background(), doc)
}

// RunContext is Run under a context: cancellation, a context deadline, or
// a core.Budget installed with core.WithBudget abort the run cooperatively
// between field programs and between ancestor regions — the granularity at
// which extraction programs execute — so a batch runtime can bound each
// document's run without leaking work.
func (q *SchemaProgram) RunContext(ctx context.Context, doc Document) (*Instance, Highlighting, error) {
	if err := q.Complete(); err != nil {
		return nil, nil, err
	}
	cr := Highlighting{}
	for _, fi := range q.Schema.Fields() {
		fp := q.Fields[fi.Color()]
		rs, err := fp.runCtx(ctx, doc, cr, nil)
		if err != nil {
			return nil, nil, err
		}
		cr.Add(fi.Color(), rs...)
	}
	if err := cr.ConsistentWith(q.Schema); err != nil {
		return nil, nil, fmt.Errorf("engine: extraction result inconsistent with schema: %w", err)
	}
	inst := Fill(q.Schema, cr, doc.WholeRegion())
	return inst, cr, nil
}
