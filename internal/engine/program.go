package engine

import (
	"fmt"
	"strings"

	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// FieldProgram is a field extraction program (Def. 4): a pair of an
// ancestor field f′ (nil meaning ⊥) and either a SeqRegion program (when
// f′ is a sequence-ancestor of the field) or a Region program (when f′ is
// a structure-ancestor).
type FieldProgram struct {
	Field    *schema.FieldInfo
	Ancestor *schema.FieldInfo // nil = ⊥
	Seq      SeqRegionProgram  // non-nil iff Ancestor is a sequence-ancestor
	Reg      RegionProgram     // non-nil iff Ancestor is a structure-ancestor
}

func (fp *FieldProgram) String() string {
	anc := "⊥"
	if fp.Ancestor != nil {
		anc = fp.Ancestor.Color()
	}
	body := ""
	if fp.Seq != nil {
		body = fp.Seq.String()
	} else if fp.Reg != nil {
		body = fp.Reg.String()
	}
	return fmt.Sprintf("(%s, %s)", anc, body)
}

// run executes the field extraction program against the highlighting built
// so far (the body of the inner Run of Algorithm 1). A program failure on
// one ancestor region contributes no regions for that ancestor: sequence
// programs contribute an empty sequence, region programs the null
// instance.
func (fp *FieldProgram) run(doc Document, cr Highlighting) []region.Region {
	var inputs []region.Region
	if fp.Ancestor == nil {
		inputs = []region.Region{doc.WholeRegion()}
	} else {
		inputs = cr[fp.Ancestor.Color()]
	}
	var out []region.Region
	for _, in := range inputs {
		if fp.Seq != nil {
			rs, err := fp.Seq.ExtractSeq(in)
			if err == nil {
				out = append(out, rs...)
			}
		} else {
			r, err := fp.Reg.Extract(in)
			if err == nil && r != nil {
				out = append(out, r)
			}
		}
	}
	region.Sort(out)
	return out
}

// SchemaProgram is a schema extraction program Q: a map from every field
// of the schema to its field extraction program.
type SchemaProgram struct {
	Schema *schema.Schema
	Fields map[string]*FieldProgram // keyed by field color
}

func (q *SchemaProgram) String() string {
	var b strings.Builder
	for _, fi := range q.Schema.Fields() {
		fp := q.Fields[fi.Color()]
		fmt.Fprintf(&b, "%-10s ← %s\n", fi.Color(), fp)
	}
	return b.String()
}

// Complete reports whether every schema field has a program.
func (q *SchemaProgram) Complete() error {
	for _, fi := range q.Schema.Fields() {
		if q.Fields[fi.Color()] == nil {
			return fmt.Errorf("engine: no extraction program for field %s [%s]", fi.Path, fi.Color())
		}
	}
	return nil
}

// Run executes the schema extraction program on a document (Algorithm 1):
// field programs run in top-down topological order, each updating the
// highlighting, and the resulting highlighting is turned into a schema
// instance by Fill. Run fails if the produced highlighting is inconsistent
// with the schema.
func (q *SchemaProgram) Run(doc Document) (*Instance, Highlighting, error) {
	if err := q.Complete(); err != nil {
		return nil, nil, err
	}
	cr := Highlighting{}
	for _, fi := range q.Schema.Fields() {
		fp := q.Fields[fi.Color()]
		cr.Add(fi.Color(), fp.run(doc, cr)...)
	}
	if err := cr.ConsistentWith(q.Schema); err != nil {
		return nil, nil, fmt.Errorf("engine: extraction result inconsistent with schema: %w", err)
	}
	inst := Fill(q.Schema, cr, doc.WholeRegion())
	return inst, cr, nil
}
