package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// ---- a tiny fake domain: documents are strings, regions are spans ----

type span struct {
	doc  string
	s, e int
}

func (r span) Contains(other region.Region) bool {
	o, ok := other.(span)
	return ok && o.doc == r.doc && r.s <= o.s && o.e <= r.e
}

func (r span) Overlaps(other region.Region) bool {
	o, ok := other.(span)
	return ok && o.doc == r.doc && r.s < o.e && o.s < r.e
}

func (r span) Less(other region.Region) bool {
	o := other.(span)
	if r.s != o.s {
		return r.s < o.s
	}
	return r.e > o.e // larger regions first at the same start
}

func (r span) Value() string  { return r.doc[r.s:r.e] }
func (r span) String() string { return fmt.Sprintf("[%d,%d)", r.s, r.e) }

// fakeDoc's text is a sequence of lines, each "word number".
type fakeDoc struct {
	text string
	lang Language
}

func (d *fakeDoc) WholeRegion() region.Region { return span{d.text, 0, len(d.text)} }
func (d *fakeDoc) Language() Language         { return d.lang }

type seqProg struct {
	name string
	f    func(in span) []span
}

func (p seqProg) ExtractSeq(r region.Region) ([]region.Region, error) {
	in := r.(span)
	var out []region.Region
	for _, s := range p.f(in) {
		out = append(out, s)
	}
	return out, nil
}
func (p seqProg) String() string { return p.name }

type regProg struct {
	name string
	f    func(in span) (span, bool)
}

func (p regProg) Extract(r region.Region) (region.Region, error) {
	s, ok := p.f(r.(span))
	if !ok {
		return nil, nil
	}
	return s, nil
}
func (p regProg) String() string { return p.name }

// fakeLang owns a fixed candidate pool and returns the consistent ones.
type fakeLang struct {
	seqCandidates []seqProg
	regCandidates []regProg
}

func (l *fakeLang) SynthesizeSeqRegion(_ context.Context, exs []SeqRegionExample) []SeqRegionProgram {
	var out []SeqRegionProgram
	for _, p := range l.seqCandidates {
		ok := true
		for _, ex := range exs {
			got, _ := p.ExtractSeq(ex.Input)
			if !isSubseq(ex.Positive, got) {
				ok = false
				break
			}
			for _, n := range ex.Negative {
				for _, g := range got {
					if g.Overlaps(n) {
						ok = false
					}
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	return out
}

func (l *fakeLang) SynthesizeRegion(_ context.Context, exs []RegionExample) []RegionProgram {
	var out []RegionProgram
	for _, p := range l.regCandidates {
		ok := true
		for _, ex := range exs {
			got, err := p.Extract(ex.Input)
			if err != nil || got != ex.Output {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	return out
}

func isSubseq(sub, seq []region.Region) bool {
	i := 0
	for _, v := range seq {
		if i == len(sub) {
			return true
		}
		if v == sub[i] {
			i++
		}
	}
	return i == len(sub)
}

// helpers to build spans of the standard fake document
const fakeText = "alpha 1\nbeta 22\ngamma 333\n"

func lineSpans(doc string) []span {
	var out []span
	start := 0
	for i := 0; i <= len(doc); i++ {
		if i == len(doc) || doc[i] == '\n' {
			if i > start {
				out = append(out, span{doc, start, i})
			}
			start = i + 1
		}
	}
	return out
}

func wordOfLine(l span) (span, bool) {
	i := strings.IndexByte(l.Value(), ' ')
	if i < 0 {
		return span{}, false
	}
	return span{l.doc, l.s, l.s + i}, true
}

func numberOfLine(l span) (span, bool) {
	i := strings.IndexByte(l.Value(), ' ')
	if i < 0 {
		return span{}, false
	}
	return span{l.doc, l.s + i + 1, l.e}, true
}

func newFakeDomain(text string) (*fakeDoc, *fakeLang) {
	lang := &fakeLang{}
	doc := &fakeDoc{text: text, lang: lang}
	lang.seqCandidates = []seqProg{
		{"AllLines", func(in span) []span {
			var out []span
			for _, l := range lineSpans(in.doc) {
				if in.Contains(l) {
					out = append(out, l)
				}
			}
			return out
		}},
		{"EvenLines", func(in span) []span {
			var out []span
			for i, l := range lineSpans(in.doc) {
				if i%2 == 0 && in.Contains(l) {
					out = append(out, l)
				}
			}
			return out
		}},
		{"AllWords", func(in span) []span {
			var out []span
			for _, l := range lineSpans(in.doc) {
				if w, ok := wordOfLine(l); ok && in.Contains(w) {
					out = append(out, w)
				}
			}
			return out
		}},
		{"AllNumbers", func(in span) []span {
			var out []span
			for _, l := range lineSpans(in.doc) {
				if n, ok := numberOfLine(l); ok && in.Contains(n) {
					out = append(out, n)
				}
			}
			return out
		}},
	}
	lang.regCandidates = []regProg{
		{"WordInLine", func(in span) (span, bool) { return wordOfLine(in) }},
		{"NumberInLine", func(in span) (span, bool) { return numberOfLine(in) }},
		{"WholeInput", func(in span) (span, bool) { return in, true }},
	}
	return doc, lang
}

const rowSchema = `Seq([row] Struct(Name: [a] String, Value: [b] Int))`

// ---- Highlighting tests ----

func TestHighlightingAddDedupesAndSorts(t *testing.T) {
	cr := Highlighting{}
	a := span{fakeText, 8, 15}
	b := span{fakeText, 0, 7}
	cr.Add("x", a, b, a)
	if len(cr["x"]) != 2 {
		t.Fatalf("Add kept %d regions, want 2", len(cr["x"]))
	}
	if cr["x"][0] != region.Region(b) {
		t.Fatal("regions not sorted in document order")
	}
}

func TestConsistencyOverlap(t *testing.T) {
	m := schema.MustParse(rowSchema)
	cr := Highlighting{}
	cr.Add("row", span{fakeText, 0, 10})
	cr.Add("a", span{fakeText, 5, 15}) // overlaps the row without nesting
	if err := cr.ConsistentWith(m); err == nil {
		t.Fatal("overlapping non-nested regions accepted")
	}
}

func TestConsistencyAncestorNesting(t *testing.T) {
	m := schema.MustParse(rowSchema)
	cr := Highlighting{}
	cr.Add("row", span{fakeText, 0, 7})
	cr.Add("a", span{fakeText, 8, 12}) // outside every row region
	if err := cr.ConsistentWith(m); err == nil {
		t.Fatal("orphan field region accepted")
	}
}

func TestConsistencyStructMultiplicity(t *testing.T) {
	m := schema.MustParse(rowSchema)
	cr := Highlighting{}
	cr.Add("row", span{fakeText, 0, 7})
	cr.Add("a", span{fakeText, 0, 2}, span{fakeText, 3, 5}) // two a's in one row
	if err := cr.ConsistentWith(m); err == nil {
		t.Fatal("two struct-field regions in one ancestor accepted")
	}
}

func TestConsistencyLeafTypes(t *testing.T) {
	m := schema.MustParse(rowSchema)
	cr := Highlighting{}
	cr.Add("row", span{fakeText, 0, 7})
	cr.Add("b", span{fakeText, 0, 5}) // "alpha" is not an Int
	if err := cr.ConsistentWith(m); err == nil {
		t.Fatal("ill-typed leaf value accepted")
	}
	cr2 := Highlighting{}
	cr2.Add("row", span{fakeText, 0, 7})
	cr2.Add("b", span{fakeText, 6, 7}) // "1"
	if err := cr2.ConsistentWith(m); err != nil {
		t.Fatalf("well-typed highlighting rejected: %v", err)
	}
}

func TestConsistencySequenceAllowsMany(t *testing.T) {
	m := schema.MustParse(rowSchema)
	cr := Highlighting{}
	cr.Add("row", span{fakeText, 0, 7}, span{fakeText, 8, 15})
	if err := cr.ConsistentWith(m); err != nil {
		t.Fatalf("many sequence regions rejected: %v", err)
	}
}

// ---- full session flow ----

func TestSessionEndToEnd(t *testing.T) {
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(rowSchema)
	s := NewSession(doc, m)

	lines := lineSpans(fakeText)

	// Field "row": one positive example, the first line.
	if err := s.AddPositive("row", lines[0]); err != nil {
		t.Fatal(err)
	}
	fp, inferred, err := s.Learn("row")
	if err != nil {
		t.Fatal(err)
	}
	if fp.Ancestor != nil || fp.Seq == nil {
		t.Fatalf("row program: %s", fp)
	}
	if len(inferred) != 2 { // EvenLines is tighter and ranked consistent
		// Either AllLines (3) or EvenLines (2) may come first depending on
		// ranking; accept both but verify consistency with the example.
		if len(inferred) != 3 {
			t.Fatalf("inferred %d row regions", len(inferred))
		}
	}
	// Negative example: strike the second line if it was highlighted; to
	// force AllLines vs EvenLines disambiguation, give line 2 as positive.
	if err := s.AddPositive("row", lines[1]); err != nil {
		t.Fatal(err)
	}
	_, inferred, err = s.Learn("row")
	if err != nil {
		t.Fatal(err)
	}
	if len(inferred) != 3 {
		t.Fatalf("after second example, inferred %d rows, want 3", len(inferred))
	}
	if err := s.Commit("row"); err != nil {
		t.Fatal(err)
	}
	if !s.Materialized("row") {
		t.Fatal("row not materialized")
	}

	// Field "a" relative to the materialized row structure-ancestor.
	w0, _ := wordOfLine(lines[0])
	if err := s.AddPositive("a", w0); err != nil {
		t.Fatal(err)
	}
	fpA, inferredA, err := s.Learn("a")
	if err != nil {
		t.Fatal(err)
	}
	if fpA.Ancestor == nil || fpA.Ancestor.Color() != "row" || fpA.Reg == nil {
		t.Fatalf("field a should learn relative to row: %s", fpA)
	}
	if len(inferredA) != 3 {
		t.Fatalf("inferred %d a-regions, want 3", len(inferredA))
	}
	if err := s.Commit("a"); err != nil {
		t.Fatal(err)
	}

	// Field "b".
	n0, _ := numberOfLine(lines[0])
	if err := s.AddPositive("b", n0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Learn("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("b"); err != nil {
		t.Fatal(err)
	}

	// Assemble and run.
	inst, err := s.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if inst.Kind != SeqInstance || len(inst.Items) != 3 {
		t.Fatalf("instance = %s", inst)
	}
	first := inst.Items[0]
	if first.Kind != StructInstance || len(first.Elements) != 2 {
		t.Fatalf("first row = %s", first)
	}
	if first.Elements[0].Value.Text != "alpha" || first.Elements[1].Value.Text != "1" {
		t.Fatalf("first row = %s", first)
	}

	// Run the same program on a similar document.
	doc2, _ := newFakeDomain("delta 4\nepsilon 55\n")
	q, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	inst2, _, err := q.Run(doc2)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst2.Items) != 2 || inst2.Items[1].Elements[0].Value.Text != "epsilon" {
		t.Fatalf("transfer run = %s", inst2)
	}
}

func TestSessionNegativeExamples(t *testing.T) {
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)
	if err := s.AddPositive("row", lines[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNegative("row", lines[1]); err != nil {
		t.Fatal(err)
	}
	fp, inferred, err := s.Learn("row")
	if err != nil {
		t.Fatal(err)
	}
	if fp.Seq.String() != "EvenLines" {
		t.Fatalf("learned %s, want EvenLines", fp.Seq)
	}
	if len(inferred) != 2 {
		t.Fatalf("inferred %d regions, want 2", len(inferred))
	}
}

func TestSessionErrors(t *testing.T) {
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(rowSchema)
	s := NewSession(doc, m)

	if err := s.AddPositive("nosuch", span{fakeText, 0, 1}); err == nil {
		t.Fatal("unknown color accepted")
	}
	if err := s.AddNegative("nosuch", span{fakeText, 0, 1}); err == nil {
		t.Fatal("unknown color accepted")
	}
	if _, _, err := s.Learn("row"); err == nil {
		t.Fatal("Learn without examples should fail")
	}
	if err := s.Commit("row"); err == nil {
		t.Fatal("Commit without Learn should fail")
	}
	if _, err := s.Program(); err == nil {
		t.Fatal("Program with unmaterialized fields should fail")
	}
	if _, err := s.Extract(); err == nil {
		t.Fatal("Extract with unmaterialized fields should fail")
	}
}

func TestSessionLearnTwiceAfterMaterialize(t *testing.T) {
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)
	s.AddPositive("row", lines[0])
	s.AddPositive("row", lines[1])
	if _, _, err := s.Learn("row"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("row"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Learn("row"); err == nil {
		t.Fatal("Learn on a materialized field should fail")
	}
}

func TestSessionClearExamples(t *testing.T) {
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	s.AddPositive("row", lineSpans(fakeText)[0])
	s.ClearExamples("row")
	if _, _, err := s.Learn("row"); err == nil {
		t.Fatal("Learn after ClearExamples should fail for lack of examples")
	}
}

func TestSynthesizeFieldProgramNoAncestorAvailable(t *testing.T) {
	doc, lang := newFakeDomain(fakeText)
	lang.seqCandidates = nil // nothing learnable at ⊥
	m := schema.MustParse(rowSchema)
	fi := m.FieldByColor("row")
	_, err := SynthesizeFieldProgram(doc, m, Highlighting{}, fi,
		[]region.Region{lineSpans(fakeText)[0]}, nil, map[string]bool{})
	if err == nil {
		t.Fatal("expected failure with empty candidate pool")
	}
}

func TestSynthesizeFieldProgramRejectsTwoPositivesInStructAncestor(t *testing.T) {
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(rowSchema)
	lines := lineSpans(fakeText)
	cr := Highlighting{}
	cr.Add("row", lines[0], lines[1], lines[2])
	w0, _ := wordOfLine(lines[0])
	n0, _ := numberOfLine(lines[0])
	fi := m.FieldByColor("a")
	_, err := SynthesizeFieldProgram(doc, m, cr, fi,
		[]region.Region{w0, n0}, nil, map[string]bool{"row": true})
	if err == nil {
		t.Fatal("two positives inside one struct-ancestor region must be rejected")
	}
}

// ---- Fill and instance rendering ----

func TestFillWithNullField(t *testing.T) {
	m := schema.MustParse(`Seq([row] Struct(Name: [a] String, Value: [b] Int))`)
	lines := lineSpans(fakeText)
	cr := Highlighting{}
	cr.Add("row", lines[0], lines[1])
	w0, _ := wordOfLine(lines[0])
	cr.Add("a", w0) // no "a" in row 1, no "b" anywhere
	whole := span{fakeText, 0, len(fakeText)}
	inst := Fill(m, cr, whole)
	if len(inst.Items) != 2 {
		t.Fatalf("items = %d", len(inst.Items))
	}
	if inst.Items[0].Elements[0].Value.Text != "alpha" {
		t.Fatalf("row0 name = %s", inst.Items[0])
	}
	if !inst.Items[0].Elements[1].Value.IsNull() {
		t.Fatal("missing b should be null")
	}
	if !inst.Items[1].Elements[0].Value.IsNull() {
		t.Fatal("missing a in row1 should be null")
	}
	str := inst.String()
	if !strings.Contains(str, "⊥") || !strings.Contains(str, `"alpha"`) {
		t.Fatalf("instance String = %s", str)
	}
}

func TestFillTopStruct(t *testing.T) {
	m := schema.MustParse(`Struct(First: [a] String)`)
	lines := lineSpans(fakeText)
	w0, _ := wordOfLine(lines[0])
	cr := Highlighting{}
	cr.Add("a", w0)
	inst := Fill(m, cr, span{fakeText, 0, len(fakeText)})
	if inst.Kind != StructInstance || inst.Elements[0].Value.Text != "alpha" {
		t.Fatalf("inst = %s", inst)
	}
}

func TestInstanceStringForms(t *testing.T) {
	var null *Instance
	if !null.IsNull() {
		t.Fatal("nil instance should be null")
	}
	seq := &Instance{Kind: SeqInstance, Items: []*Instance{
		{Kind: LeafInstance, Text: "x"},
		{Kind: NullInstance},
	}}
	if got := seq.String(); got != `["x", ⊥]` {
		t.Fatalf("String = %q", got)
	}
}

func TestSchemaProgramRunInconsistent(t *testing.T) {
	// A program whose output violates the schema must fail at Run.
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(rowSchema)
	badSeq := seqProg{"Bad", func(in span) []span {
		// two overlapping non-nested regions
		return []span{{in.doc, 0, 10}, {in.doc, 5, 14}}
	}}
	q := &SchemaProgram{Schema: m, Fields: map[string]*FieldProgram{
		"row": {Field: m.FieldByColor("row"), Seq: badSeq},
		"a":   {Field: m.FieldByColor("a"), Ancestor: m.FieldByColor("row"), Reg: regProg{"none", func(in span) (span, bool) { return span{}, false }}},
		"b":   {Field: m.FieldByColor("b"), Ancestor: m.FieldByColor("row"), Reg: regProg{"none", func(in span) (span, bool) { return span{}, false }}},
	}}
	if _, _, err := q.Run(doc); err == nil {
		t.Fatal("inconsistent run result accepted")
	}
}

func TestSchemaProgramIncomplete(t *testing.T) {
	m := schema.MustParse(rowSchema)
	q := &SchemaProgram{Schema: m, Fields: map[string]*FieldProgram{}}
	if err := q.Complete(); err == nil {
		t.Fatal("incomplete program accepted")
	}
	doc, _ := newFakeDomain(fakeText)
	if _, _, err := q.Run(doc); err == nil {
		t.Fatal("running incomplete program should fail")
	}
}

func TestSchemaProgramString(t *testing.T) {
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	s.AddPositive("row", lineSpans(fakeText)[0])
	s.AddPositive("row", lineSpans(fakeText)[1])
	if _, _, err := s.Learn("row"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("row"); err != nil {
		t.Fatal(err)
	}
	q, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	str := q.String()
	if !strings.Contains(str, "row") || !strings.Contains(str, "⊥") {
		t.Fatalf("program String = %q", str)
	}
}

func TestFieldProgramString(t *testing.T) {
	m := schema.MustParse(rowSchema)
	fp := &FieldProgram{Field: m.FieldByColor("a"), Ancestor: m.FieldByColor("row"),
		Reg: regProg{"WordInLine", nil}}
	if got := fp.String(); got != "(row, WordInLine)" {
		t.Fatalf("String = %q", got)
	}
}

// Span implements engine.Spanner for the fake domain.
func (d *fakeDoc) Span(a, b region.Region) (region.Region, error) {
	ar := a.(span)
	br := b.(span)
	out := span{doc: ar.doc, s: ar.s, e: ar.e}
	if br.s < out.s {
		out.s = br.s
	}
	if br.e > out.e {
		out.e = br.e
	}
	return out, nil
}

func TestInferStructureBottomUp(t *testing.T) {
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(rowSchema)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	// Materialize the leaves first (bottom-up order).
	w0, _ := wordOfLine(lines[0])
	w1, _ := wordOfLine(lines[1])
	if err := s.AddPositive("a", w0); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPositive("a", w1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Learn("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("a"); err != nil {
		t.Fatal(err)
	}
	n0, _ := numberOfLine(lines[0])
	if err := s.AddPositive("b", n0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Learn("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("b"); err != nil {
		t.Fatal(err)
	}

	// Infer the row structure with no examples at all.
	fp, inferred, err := s.InferStructure("row")
	if err != nil {
		t.Fatal(err)
	}
	if fp == nil || len(inferred) != 3 {
		t.Fatalf("inferred %d rows, want 3", len(inferred))
	}
	if err := s.Commit("row"); err != nil {
		t.Fatal(err)
	}
	inst, err := s.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Items) != 3 || inst.Items[2].Elements[0].Value.Text != "gamma" {
		t.Fatalf("instance = %s", inst)
	}
}

func TestInferStructureErrors(t *testing.T) {
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(rowSchema)
	s := NewSession(doc, m)
	if _, _, err := s.InferStructure("a"); err == nil {
		t.Fatal("leaf field accepted")
	}
	if _, _, err := s.InferStructure("nosuch"); err == nil {
		t.Fatal("unknown color accepted")
	}
	if _, _, err := s.InferStructure("row"); err == nil {
		t.Fatal("inference without materialized children accepted")
	}
}

func TestSynthesizeFieldProgramRegionNegatives(t *testing.T) {
	// Region-program candidates that would re-extract a struck region must
	// be rejected even though the per-ancestor region API has no negative
	// channel of its own.
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(rowSchema)
	lines := lineSpans(fakeText)
	cr := Highlighting{}
	cr.Add("row", lines[0], lines[1], lines[2])

	w0, _ := wordOfLine(lines[0])
	n1, _ := numberOfLine(lines[1])
	fi := m.FieldByColor("a")
	// Without negatives, WordInLine is learnable from the single positive.
	fp, err := SynthesizeFieldProgram(doc, m, cr, fi,
		[]region.Region{w0}, nil, map[string]bool{"row": true})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Reg.String() != "WordInLine" {
		t.Fatalf("learned %s", fp.Reg)
	}
	// Striking the word of line 1 kills WordInLine; nothing else extracts
	// w0, so synthesis must fail rather than return a violating program.
	w1, _ := wordOfLine(lines[1])
	if _, err := SynthesizeFieldProgram(doc, m, cr, fi,
		[]region.Region{w0}, []region.Region{w1}, map[string]bool{"row": true}); err == nil {
		t.Fatal("program violating a negative instance was accepted")
	}
	// A negative that no candidate touches changes nothing.
	fp, err = SynthesizeFieldProgram(doc, m, cr, fi,
		[]region.Region{w0}, []region.Region{n1}, map[string]bool{"row": true})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Reg.String() != "WordInLine" {
		t.Fatalf("learned %s", fp.Reg)
	}
}

func TestConsistencyErrorDeterministic(t *testing.T) {
	// The overlap error names the first offending pair; with several
	// mutually overlapping colors, map-order iteration would make the
	// message (and therefore batch output records) flip between runs.
	m := schema.MustParse(rowSchema)
	errs := map[string]bool{}
	for i := 0; i < 64; i++ {
		cr := Highlighting{}
		cr.Add("row", span{fakeText, 0, 10})
		cr.Add("a", span{fakeText, 5, 15})
		cr.Add("b", span{fakeText, 7, 12})
		err := cr.ConsistentWith(m)
		if err == nil {
			t.Fatal("overlapping non-nested regions accepted")
		}
		errs[err.Error()] = true
	}
	if len(errs) != 1 {
		t.Fatalf("ConsistentWith produced %d distinct error messages across identical inputs: %v", len(errs), errs)
	}
}
