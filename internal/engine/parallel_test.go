package engine

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// TestFirstPassingMatchesSerial checks the central invariant of parallel
// candidate validation: firstPassing returns exactly the index a serial
// scan would, for randomized pass sets and several pool widths.
func TestFirstPassingMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(90)
		pass := make([]bool, n)
		want := -1
		for i := range pass {
			pass[i] = rng.Intn(6) == 0
			if want < 0 && pass[i] {
				want = i
			}
		}
		var calls atomic.Int64
		got := firstPassing(n, func(i int) bool {
			calls.Add(1)
			if i < 0 || i >= n {
				t.Errorf("try(%d) out of range [0,%d)", i, n)
			}
			return pass[i]
		})
		if got != want {
			t.Fatalf("trial %d: firstPassing = %d, serial scan = %d (n=%d)", trial, got, want, n)
		}
		// Every candidate below the winner must have been tried, exactly as
		// in the serial loop.
		if want >= 0 && calls.Load() < int64(want)+1 {
			t.Fatalf("trial %d: only %d calls for winner %d", trial, calls.Load(), want)
		}
	}
}

func TestFirstPassingEdgeCases(t *testing.T) {
	if got := firstPassing(0, func(int) bool { return true }); got != -1 {
		t.Fatalf("n=0: got %d", got)
	}
	if got := firstPassing(5, func(int) bool { return false }); got != -1 {
		t.Fatalf("all-fail: got %d", got)
	}
	if got := firstPassing(1, func(i int) bool { return i == 0 }); got != 0 {
		t.Fatalf("n=1: got %d", got)
	}
}

// TestSynthesizeFieldProgramParallelMatchesSerial runs the same synthesis
// call with one and with several workers and requires the identical
// (lowest-ranked) program, so parallel validation cannot change ranking.
func TestSynthesizeFieldProgramParallelMatchesSerial(t *testing.T) {
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(rowSchema)
	lines := lineSpans(fakeText)
	cr := Highlighting{}
	cr.Add("row", lines[0], lines[1], lines[2])
	w0, _ := wordOfLine(lines[0])
	fi := m.FieldByColor("a")

	synth := func() string {
		fp, err := SynthesizeFieldProgram(doc, m, cr, fi,
			[]region.Region{w0}, nil, map[string]bool{"row": true})
		if err != nil {
			t.Fatal(err)
		}
		return fp.Reg.String()
	}

	prev := runtime.GOMAXPROCS(1)
	serial := synth()
	runtime.GOMAXPROCS(4)
	parallel := synth()
	runtime.GOMAXPROCS(prev)

	if serial != parallel {
		t.Fatalf("serial learned %s, parallel learned %s", serial, parallel)
	}
	// Also at the sequence level: field row against the whole document.
	rowFi := m.FieldByColor("row")
	synthRow := func() string {
		fp, err := SynthesizeFieldProgram(doc, m, Highlighting{}, rowFi,
			[]region.Region{lines[0], lines[1]}, nil, map[string]bool{})
		if err != nil {
			t.Fatal(err)
		}
		return fp.Seq.String()
	}
	runtime.GOMAXPROCS(1)
	serialRow := synthRow()
	runtime.GOMAXPROCS(4)
	parallelRow := synthRow()
	runtime.GOMAXPROCS(prev)
	if serialRow != parallelRow {
		t.Fatalf("serial learned %s, parallel learned %s", serialRow, parallelRow)
	}
}
