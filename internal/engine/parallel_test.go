package engine

import (
	"context"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"flashextract/internal/core"
	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// TestFirstPassingMatchesSerial checks the central invariant of parallel
// candidate validation: firstPassing returns exactly the index a serial
// scan would, for randomized pass sets and several pool widths.
func TestFirstPassingMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(90)
		pass := make([]bool, n)
		want := -1
		for i := range pass {
			pass[i] = rng.Intn(6) == 0
			if want < 0 && pass[i] {
				want = i
			}
		}
		var calls atomic.Int64
		got, complete := firstPassing(context.Background(), n, func(i int) bool {
			calls.Add(1)
			if i < 0 || i >= n {
				t.Errorf("try(%d) out of range [0,%d)", i, n)
			}
			return pass[i]
		})
		if !complete {
			t.Fatalf("trial %d: unbudgeted scan reported truncation", trial)
		}
		if got != want {
			t.Fatalf("trial %d: firstPassing = %d, serial scan = %d (n=%d)", trial, got, want, n)
		}
		// Every candidate below the winner must have been tried, exactly as
		// in the serial loop.
		if want >= 0 && calls.Load() < int64(want)+1 {
			t.Fatalf("trial %d: only %d calls for winner %d", trial, calls.Load(), want)
		}
	}
}

// TestFirstPassingNoGoroutineLeak checks that validation workers never
// outlive the call: after firstPassing returns — including when it is cut
// short by a cancelled context or an expired budget mid-scan — the
// goroutine count settles back to its baseline.
func TestFirstPassingNoGoroutineLeak(t *testing.T) {
	baseline := func() int {
		runtime.GC()
		return runtime.NumGoroutine()
	}
	settle := func(want int) int {
		var n int
		for i := 0; i < 100; i++ {
			runtime.GC()
			n = runtime.NumGoroutine()
			if n <= want {
				return n
			}
			time.Sleep(5 * time.Millisecond)
		}
		return n
	}

	before := baseline()
	for trial := 0; trial < 20; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		go func() {
			// Cancel while workers are mid-scan.
			for calls.Load() < 4 {
				runtime.Gosched()
			}
			cancel()
		}()
		firstPassing(ctx, 512, func(i int) bool {
			calls.Add(1)
			time.Sleep(100 * time.Microsecond)
			return false
		})
		cancel()
	}
	// Budget-exhaustion path: an already-expired deadline.
	for trial := 0; trial < 20; trial++ {
		ctx, _ := core.WithBudget(context.Background(),
			core.SynthBudget{Deadline: time.Now().Add(-time.Second)})
		firstPassing(ctx, 512, func(i int) bool {
			time.Sleep(100 * time.Microsecond)
			return false
		})
	}
	if after := settle(before); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestFirstPassingEdgeCases(t *testing.T) {
	ctx := context.Background()
	if got, _ := firstPassing(ctx, 0, func(int) bool { return true }); got != -1 {
		t.Fatalf("n=0: got %d", got)
	}
	if got, _ := firstPassing(ctx, 5, func(int) bool { return false }); got != -1 {
		t.Fatalf("all-fail: got %d", got)
	}
	if got, _ := firstPassing(ctx, 1, func(i int) bool { return i == 0 }); got != 0 {
		t.Fatalf("n=1: got %d", got)
	}
}

// TestSynthesizeFieldProgramParallelMatchesSerial runs the same synthesis
// call with one and with several workers and requires the identical
// (lowest-ranked) program, so parallel validation cannot change ranking.
func TestSynthesizeFieldProgramParallelMatchesSerial(t *testing.T) {
	doc, _ := newFakeDomain(fakeText)
	m := schema.MustParse(rowSchema)
	lines := lineSpans(fakeText)
	cr := Highlighting{}
	cr.Add("row", lines[0], lines[1], lines[2])
	w0, _ := wordOfLine(lines[0])
	fi := m.FieldByColor("a")

	synth := func() string {
		fp, err := SynthesizeFieldProgram(doc, m, cr, fi,
			[]region.Region{w0}, nil, map[string]bool{"row": true})
		if err != nil {
			t.Fatal(err)
		}
		return fp.Reg.String()
	}

	prev := runtime.GOMAXPROCS(1)
	serial := synth()
	runtime.GOMAXPROCS(4)
	parallel := synth()
	runtime.GOMAXPROCS(prev)

	if serial != parallel {
		t.Fatalf("serial learned %s, parallel learned %s", serial, parallel)
	}
	// Also at the sequence level: field row against the whole document.
	rowFi := m.FieldByColor("row")
	synthRow := func() string {
		fp, err := SynthesizeFieldProgram(doc, m, Highlighting{}, rowFi,
			[]region.Region{lines[0], lines[1]}, nil, map[string]bool{})
		if err != nil {
			t.Fatal(err)
		}
		return fp.Seq.String()
	}
	runtime.GOMAXPROCS(1)
	serialRow := synthRow()
	runtime.GOMAXPROCS(4)
	parallelRow := synthRow()
	runtime.GOMAXPROCS(prev)
	if serialRow != parallelRow {
		t.Fatalf("serial learned %s, parallel learned %s", serialRow, parallelRow)
	}
}
