package engine

import (
	"fmt"

	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// CheckInstance verifies the well-formedness invariants of a schema
// instance produced by Fill against its schema and source document:
//
//   - the instance's shape mirrors the schema (structs have exactly the
//     schema's elements in order, sequences hold only inner-field items),
//   - every leaf carries a non-nil region whose Value() equals the
//     instance's Text and whose type admits that text,
//   - every leaf region is contained in the document's whole region, and
//     sequence items appear in document order.
//
// Fill upholds all of these by construction, so a violation means memory
// corruption, a broken Region implementation, or a regression in Fill —
// exactly what the batch runtime's self-check mode exists to catch before
// the record is emitted as "ok". A nil error means the instance is sound.
func CheckInstance(m *schema.Schema, inst *Instance, whole region.Region) error {
	if m == nil {
		return fmt.Errorf("engine: check: nil schema")
	}
	if m.TopSeq != nil {
		return checkSeq("", m.TopSeq, inst, whole)
	}
	return checkStruct("", m.TopStruct, inst, whole)
}

func checkStruct(path string, s *schema.Struct, inst *Instance, whole region.Region) error {
	if inst.IsNull() {
		return nil
	}
	if inst.Kind != StructInstance {
		return fmt.Errorf("engine: check: %s: schema wants a struct, instance has kind %d", pathOrTop(path), inst.Kind)
	}
	if len(inst.Elements) != len(s.Elements) {
		return fmt.Errorf("engine: check: %s: struct has %d elements, schema has %d", pathOrTop(path), len(inst.Elements), len(s.Elements))
	}
	for i, e := range s.Elements {
		got := inst.Elements[i]
		if got.Name != e.Name {
			return fmt.Errorf("engine: check: %s: element %d named %q, schema says %q", pathOrTop(path), i, got.Name, e.Name)
		}
		sub := path + "." + e.Name
		var err error
		if e.Seq != nil {
			err = checkSeq(sub, e.Seq, got.Value, whole)
		} else {
			err = checkField(sub, e.Field, got.Value, whole)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func checkSeq(path string, s *schema.Seq, inst *Instance, whole region.Region) error {
	if inst.IsNull() {
		return nil
	}
	if inst.Kind != SeqInstance {
		return fmt.Errorf("engine: check: %s: schema wants a sequence, instance has kind %d", pathOrTop(path), inst.Kind)
	}
	var prev region.Region
	for i, item := range inst.Items {
		sub := fmt.Sprintf("%s[%d]", path, i)
		if err := checkField(sub, s.Inner, item, whole); err != nil {
			return err
		}
		// Document order between successive leaf items; struct items are
		// ordered by their own leaves, checked recursively above.
		if item != nil && item.Kind == LeafInstance {
			if prev != nil && item.Region.Less(prev) {
				return fmt.Errorf("engine: check: %s: sequence items out of document order", pathOrTop(path))
			}
			prev = item.Region
		}
	}
	return nil
}

func checkField(path string, f *schema.Field, inst *Instance, whole region.Region) error {
	if inst.IsNull() {
		return nil
	}
	if !f.IsLeaf() {
		return checkStruct(path, f.Struct, inst, whole)
	}
	if inst.Kind != LeafInstance {
		return fmt.Errorf("engine: check: %s: schema wants leaf [%s], instance has kind %d", pathOrTop(path), f.Color, inst.Kind)
	}
	if inst.Region == nil {
		return fmt.Errorf("engine: check: %s: leaf [%s] has nil region", pathOrTop(path), f.Color)
	}
	if got := inst.Region.Value(); got != inst.Text {
		return fmt.Errorf("engine: check: %s: leaf [%s] text %q differs from its region value %q", pathOrTop(path), f.Color, inst.Text, got)
	}
	if whole != nil && !whole.Contains(inst.Region) {
		return fmt.Errorf("engine: check: %s: leaf [%s] region %s escapes the document", pathOrTop(path), f.Color, inst.Region)
	}
	return nil
}

func pathOrTop(path string) string {
	if path == "" {
		return "top"
	}
	return path
}
