package engine

import (
	"context"
	"fmt"
	"time"

	"flashextract/internal/core"
	"flashextract/internal/faults"
	"flashextract/internal/logx"
	"flashextract/internal/metrics"
	"flashextract/internal/region"
	"flashextract/internal/schema"
	"flashextract/internal/trace"
)

// PartialResult describes how a synthesis call ended with respect to its
// budget. When the budget (wall-clock deadline, candidate cap, or context
// cancellation) is exhausted mid-search, the call degrades gracefully: it
// returns the best program found so far — every returned program is still
// consistent with the examples — together with a PartialResult instead of
// an error. Exhausted is false for a run to completion.
type PartialResult struct {
	// Exhausted reports whether the budget tripped during the call.
	Exhausted bool `json:"exhausted"`
	// Reason is why it tripped: "deadline", "cancelled", "candidates", or
	// "injected" (empty when Exhausted is false).
	Reason string `json:"reason,omitempty"`
	// BestEffort is true when a program was returned but the search was
	// truncated, so a better-ranked program may exist.
	BestEffort bool `json:"best_effort,omitempty"`
	// CandidatesExplored counts the candidate programs examined.
	CandidatesExplored int64 `json:"candidates_explored"`
	// CandidatesPruned counts candidates rejected by the abstract semantics
	// before concrete execution (zero when pruning is off for the call).
	CandidatesPruned int64 `json:"candidates_pruned,omitempty"`
	// TruncatedPhases lists the synthesis phases that stopped scanning
	// candidates on budget exhaustion ("cleanup", "synthesize_seq",
	// "synthesize_region"): the ranking degraded to a verified prefix
	// instead of the full candidate list.
	TruncatedPhases []string `json:"truncated_phases,omitempty"`
	// Elapsed is the wall time of the call.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// SynthesizeFieldProgram implements Algorithm 2 of the paper with a
// background context; see SynthesizeFieldProgramCtx.
func SynthesizeFieldProgram(
	doc Document,
	m *schema.Schema,
	cr Highlighting,
	f *schema.FieldInfo,
	pos, neg []region.Region,
	materialized map[string]bool,
) (*FieldProgram, error) {
	fp, _, err := SynthesizeFieldProgramCtx(context.Background(), doc, m, cr, f, pos, neg, materialized)
	return fp, err
}

// SynthesizeFieldProgramCtx implements Algorithm 2 of the paper: given a
// document, a schema, a highlighting consistent with the schema, a
// non-materialized field f, and positive/negative example regions, it
// synthesizes a field extraction program (f′, P) such that P is consistent
// with the examples and executing it yields a highlighting consistent with
// the schema. Ancestors are tried nearest first; only materialized
// ancestors (or ⊥) form learning boundaries. materialized maps field
// colors to whether their highlighting has been committed.
//
// The context bounds the call: its deadline, its cancellation, and any
// budget installed with core.WithBudget stop the search cooperatively. The
// returned PartialResult is never nil and records whether the search was
// truncated; on truncation the returned program (if any) is the best found
// so far.
func SynthesizeFieldProgramCtx(
	ctx context.Context,
	doc Document,
	m *schema.Schema,
	cr Highlighting,
	f *schema.FieldInfo,
	pos, neg []region.Region,
	materialized map[string]bool,
) (*FieldProgram, *PartialResult, error) {
	return synthesizeFieldProgramCapture(ctx, doc, m, cr, f, pos, neg, materialized, nil)
}

// learnedCandidates captures the full ranked candidate list of one
// synthesis call for the session's incremental reuse: the ancestor the
// candidates were learned against, every candidate (not just the selected
// one), and whether the producing call ran to completion. A call that
// tripped its budget may have truncated the list, so only complete captures
// are safe to intersect against a future, larger example spec.
type learnedCandidates struct {
	anc       *schema.FieldInfo
	isSeq     bool
	fps       []*FieldProgram
	winnerIdx int // rank of the selected program within fps
	complete  bool
}

// synthesizeFieldProgramCapture is SynthesizeFieldProgramCtx with an
// optional capture of the winning ancestor's full candidate list (cap may
// be nil; it is only populated on success).
func synthesizeFieldProgramCapture(
	ctx context.Context,
	doc Document,
	m *schema.Schema,
	cr Highlighting,
	f *schema.FieldInfo,
	pos, neg []region.Region,
	materialized map[string]bool,
	capture *learnedCandidates,
) (*FieldProgram, *PartialResult, error) {
	start := time.Now()
	bud := core.BudgetFrom(ctx)
	if bud == nil {
		// Adopt the context's own deadline/cancellation as the budget so
		// plain context.WithTimeout callers get cooperative cancellation.
		ctx, bud = core.WithBudget(ctx, core.SynthBudget{})
	}
	sink := metrics.From(ctx)
	sink.Count(metrics.LearnCalls, 1)
	applyCacheBudget(doc, bud)
	// Install abstraction-guided pruning unless the caller already decided
	// (a Session installs its own, possibly-nil pruner) or a candidate cap
	// meters the search by explored count (see pruning.go).
	if !core.PrunerConfigured(ctx) && DefaultPruning && bud.MaxCandidates() == 0 {
		ctx = core.WithPruner(ctx, core.NewPruner())
	}
	pruner := core.PrunerFrom(ctx)
	prunedBefore, refsBefore := pruner.Pruned(), pruner.Refinements()
	// Chaos site: exhaust the budget before the learner starts, forcing the
	// graceful-degradation path for this field as if a deadline had tripped.
	if faults.From(ctx).Hit(faults.SiteBudget, "learn:"+f.Color()) {
		bud.Trip(core.ReasonInjected)
	}

	// Field-level span: the root of one Algorithm 2 call's trace subtree.
	ctx, fsp := trace.Start(ctx, "field:"+f.Color())
	fsp.SetString("path", f.Path)
	fsp.SetInt("pos", int64(len(pos)))
	fsp.SetInt("neg", int64(len(neg)))
	var cacheBefore CacheStats
	if cs, ok := doc.(CacheStatser); ok {
		cacheBefore = cs.CacheStats()
	}

	finish := func(fp *FieldProgram, bestEffort bool, err error) (*FieldProgram, *PartialResult, error) {
		pr := &PartialResult{
			Exhausted:          bud.Reason() != "",
			Reason:             bud.Reason(),
			BestEffort:         bestEffort && bud.Reason() != "",
			CandidatesExplored: bud.Explored(),
			TruncatedPhases:    bud.Truncations(),
			Elapsed:            time.Since(start),
		}
		sink.Count(metrics.CandidatesExplored, pr.CandidatesExplored)
		if pruner != nil {
			pr.CandidatesPruned = pruner.Pruned() - prunedBefore
			sink.Count(metrics.CandidatesPruned, pr.CandidatesPruned)
			sink.Count(metrics.AbstractionRefinements, pruner.Refinements()-refsBefore)
		}
		if pr.Exhausted {
			sink.Count(metrics.PartialResults, 1)
		}
		if fsp != nil {
			// A zero-length "cache" child span carries the document
			// evaluation-cache deltas of this synthesis call.
			if cs, ok := doc.(CacheStatser); ok {
				after := cs.CacheStats()
				_, csp := trace.Start(ctx, "cache")
				csp.SetInt("hits_delta", after.Hits-cacheBefore.Hits)
				csp.SetInt("misses_delta", after.Misses-cacheBefore.Misses)
				csp.SetInt("entries", after.Entries)
				csp.SetInt("approx_bytes", after.ApproxBytes)
				csp.End()
			}
			fsp.SetInt("candidates", pr.CandidatesExplored)
			fsp.SetBool("ok", err == nil)
			if pr.Reason != "" {
				fsp.SetString("exhausted", pr.Reason)
			}
			if rem, hasDeadline := bud.Remaining(); hasDeadline {
				fsp.SetFloat("budget_remaining_ms", float64(rem.Nanoseconds())/1e6)
			}
			fsp.End()
		}
		logx.From(ctx).Debug("synthesized field",
			"field", f.Color(), "ok", err == nil,
			"candidates", pr.CandidatesExplored,
			"elapsed", pr.Elapsed, "exhausted", pr.Reason)
		return fp, pr, err
	}

	if len(pos) == 0 {
		return finish(nil, false, fmt.Errorf("engine: field %s: at least one positive example is required", f.Color()))
	}
	lang := doc.Language()
	var lastErr error
	for _, anc := range f.Ancestors() {
		if anc != nil && !materialized[anc.Color()] {
			continue
		}
		var inputs []region.Region
		if anc == nil {
			inputs = []region.Region{doc.WholeRegion()}
		} else {
			inputs = cr[anc.Color()]
		}
		actx, asp := trace.Start(ctx, "ancestor:"+ancName(anc))
		asp.SetInt("inputs", int64(len(inputs)))
		fp, bestEffort, all, err := synthesizeAgainstAncestor(actx, doc, m, cr, f, anc, inputs, pos, neg, lang)
		asp.SetBool("ok", err == nil)
		asp.End()
		if err != nil {
			lastErr = err
			if bud.ExhaustedNow() {
				// Later (farther) ancestors cannot be explored in budget
				// either; stop instead of burning the remaining deadline.
				break
			}
			continue
		}
		if capture != nil {
			capture.anc = anc
			capture.isSeq = f.IsSequenceAncestor(anc)
			capture.fps = all
			capture.winnerIdx = -1
			for i, p := range all {
				if p == fp {
					capture.winnerIdx = i
					break
				}
			}
			capture.complete = bud.Reason() == ""
		}
		return finish(fp, bestEffort, nil)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("engine: field %s: no materialized ancestor available", f.Color())
	}
	if reason := bud.Reason(); reason != "" {
		lastErr = fmt.Errorf("engine: field %s: synthesis budget exhausted (%s) before a program was found: %w", f.Color(), reason, lastErr)
	}
	return finish(nil, false, lastErr)
}

// applyCacheBudget propagates the budget's evaluation-cache byte cap to
// the document's cache, when the document exposes one.
func applyCacheBudget(doc Document, bud *core.Budget) {
	if limit := bud.MaxCacheBytes(); limit > 0 {
		if lim, ok := doc.(interface{ LimitCacheBytes(int64) }); ok {
			lim.LimitCacheBytes(limit)
		}
	}
}

// seqExamplesFor splits field examples into per-ancestor-region sequence
// examples: within every input region holding at least one example, the
// nested positives must be extracted and the nested negatives must not. An
// example nested in no input region is an error — the ancestor cannot
// explain it.
func seqExamplesFor(f *schema.FieldInfo, anc *schema.FieldInfo, inputs, pos, neg []region.Region) ([]SeqRegionExample, error) {
	var exs []SeqRegionExample
	covered := 0
	for _, in := range inputs {
		p := region.Subregions(in, pos)
		n := region.Subregions(in, neg)
		if len(p) == 0 && len(n) == 0 {
			continue
		}
		covered += len(p) + len(n)
		exs = append(exs, SeqRegionExample{Input: in, Positive: p, Negative: n})
	}
	if covered < len(pos)+len(neg) {
		return nil, fmt.Errorf("engine: field %s: some examples lie outside every %s-region", f.Color(), ancName(anc))
	}
	if len(exs) == 0 {
		return nil, fmt.Errorf("engine: field %s: no examples within %s-regions", f.Color(), ancName(anc))
	}
	return exs, nil
}

// regExamplesFor splits field examples into per-ancestor-region scalar
// examples: at most one positive per structure-ancestor region, every
// positive inside some input region.
func regExamplesFor(f *schema.FieldInfo, anc *schema.FieldInfo, inputs, pos []region.Region) ([]RegionExample, error) {
	var exs []RegionExample
	covered := 0
	for _, in := range inputs {
		p := region.Subregions(in, pos)
		if len(p) == 0 {
			continue
		}
		if len(p) > 1 {
			return nil, fmt.Errorf("engine: field %s: %d positive examples inside one %s-region (want at most 1)",
				f.Color(), len(p), ancName(anc))
		}
		covered += len(p)
		exs = append(exs, RegionExample{Input: in, Output: p[0]})
	}
	if covered < len(pos) {
		return nil, fmt.Errorf("engine: field %s: some examples lie outside every %s-region", f.Color(), ancName(anc))
	}
	if len(exs) == 0 {
		return nil, fmt.Errorf("engine: field %s: no examples within %s-regions", f.Color(), ancName(anc))
	}
	return exs, nil
}

// validatesCandidate reports whether executing fp keeps the highlighting
// consistent with the schema (loop at line 12 of Alg. 2) and re-extracts no
// negative instance. (Sequence synthesis already filters negatives inside
// the language; the check here also covers region programs, whose
// per-ancestor learning API has no negative channel.) It is the shared
// validation predicate of the cold driver and the incremental session scan.
func validatesCandidate(doc Document, m *schema.Schema, cr Highlighting, f *schema.FieldInfo, neg []region.Region, fp *FieldProgram) bool {
	crNew := cr.Clone()
	crNew[f.Color()] = nil
	extracted := fp.run(doc, crNew)
	for _, r := range extracted {
		for _, n := range neg {
			if r == n || r.Overlaps(n) {
				return false
			}
		}
	}
	crNew.Add(f.Color(), extracted...)
	return crNew.ConsistentWith(m) == nil
}

// synthesizeAgainstAncestor learns and validates candidates relative to
// one ancestor. bestEffort reports that the returned program came from a
// truncated validation scan (a lower-ranked candidate was returned than a
// complete scan might have chosen); all is the full ranked candidate list
// the winner was selected from.
func synthesizeAgainstAncestor(
	ctx context.Context,
	doc Document,
	m *schema.Schema,
	cr Highlighting,
	f *schema.FieldInfo,
	anc *schema.FieldInfo,
	inputs []region.Region,
	pos, neg []region.Region,
	lang Language,
) (fp *FieldProgram, bestEffort bool, all []*FieldProgram, err error) {
	sink := metrics.From(ctx)
	isSeq := f.IsSequenceAncestor(anc)
	var seqProgs []SeqRegionProgram
	var regProgs []RegionProgram
	learnStart := time.Now()
	if isSeq {
		exs, err := seqExamplesFor(f, anc, inputs, pos, neg)
		if err != nil {
			return nil, false, nil, err
		}
		lctx, lsp := trace.Start(ctx, "learn")
		lsp.SetBool("sequence", true)
		seqProgs = lang.SynthesizeSeqRegion(lctx, exs)
		lsp.SetInt("programs", int64(len(seqProgs)))
		lsp.End()
		sink.Observe(metrics.PhaseLearn, time.Since(learnStart).Seconds())
		if len(seqProgs) == 0 {
			return nil, false, nil, fmt.Errorf("engine: field %s: no consistent sequence program relative to %s", f.Color(), ancName(anc))
		}
	} else {
		exs, err := regExamplesFor(f, anc, inputs, pos)
		if err != nil {
			return nil, false, nil, err
		}
		lctx, lsp := trace.Start(ctx, "learn")
		lsp.SetBool("sequence", false)
		regProgs = lang.SynthesizeRegion(lctx, exs)
		lsp.SetInt("programs", int64(len(regProgs)))
		lsp.End()
		sink.Observe(metrics.PhaseLearn, time.Since(learnStart).Seconds())
		if len(regProgs) == 0 {
			return nil, false, nil, fmt.Errorf("engine: field %s: no consistent region program relative to %s", f.Color(), ancName(anc))
		}
	}

	// Select the first program passing validatesCandidate. Candidates are
	// independent, so the checks are fanned across a worker pool;
	// firstPassing returns the lowest-ranked passing candidate, keeping the
	// choice bit-identical to a serial scan unless the budget truncates the
	// scan.
	var fps []*FieldProgram
	if isSeq {
		fps = make([]*FieldProgram, len(seqProgs))
		for i, p := range seqProgs {
			fps[i] = &FieldProgram{Field: f, Ancestor: anc, Seq: p}
		}
	} else {
		fps = make([]*FieldProgram, len(regProgs))
		for i, p := range regProgs {
			fps[i] = &FieldProgram{Field: f, Ancestor: anc, Reg: p}
		}
	}
	validateStart := time.Now()
	core.BudgetFrom(ctx).AddCandidates(int64(len(fps)))
	vctx, vsp := trace.Start(ctx, "validate")
	vsp.SetInt("candidates", int64(len(fps)))
	i, complete := firstPassing(vctx, len(fps), func(i int) bool {
		return validatesCandidate(doc, m, cr, f, neg, fps[i])
	})
	vsp.SetInt("selected", int64(i))
	vsp.SetBool("complete", complete)
	vsp.End()
	sink.Observe(metrics.PhaseValidate, time.Since(validateStart).Seconds())
	if i >= 0 {
		return fps[i], !complete, fps, nil
	}
	if !complete {
		return nil, false, nil, fmt.Errorf("engine: field %s: synthesis budget exhausted while validating %d candidates", f.Color(), len(fps))
	}
	return nil, false, nil, fmt.Errorf("engine: field %s: every consistent program violates the schema when executed", f.Color())
}

func ancName(anc *schema.FieldInfo) string {
	if anc == nil {
		return "⊥"
	}
	return anc.Color()
}
