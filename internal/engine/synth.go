package engine

import (
	"fmt"

	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// SynthesizeFieldProgram implements Algorithm 2 of the paper: given a
// document, a schema, a highlighting consistent with the schema, a
// non-materialized field f, and positive/negative example regions, it
// synthesizes a field extraction program (f′, P) such that P is consistent
// with the examples and executing it yields a highlighting consistent with
// the schema. Ancestors are tried nearest first; only materialized
// ancestors (or ⊥) form learning boundaries. materialized maps field
// colors to whether their highlighting has been committed.
func SynthesizeFieldProgram(
	doc Document,
	m *schema.Schema,
	cr Highlighting,
	f *schema.FieldInfo,
	pos, neg []region.Region,
	materialized map[string]bool,
) (*FieldProgram, error) {
	if len(pos) == 0 {
		return nil, fmt.Errorf("engine: field %s: at least one positive example is required", f.Color())
	}
	lang := doc.Language()
	var lastErr error
	for _, anc := range f.Ancestors() {
		if anc != nil && !materialized[anc.Color()] {
			continue
		}
		var inputs []region.Region
		if anc == nil {
			inputs = []region.Region{doc.WholeRegion()}
		} else {
			inputs = cr[anc.Color()]
		}
		fp, err := synthesizeAgainstAncestor(doc, m, cr, f, anc, inputs, pos, neg, lang)
		if err != nil {
			lastErr = err
			continue
		}
		return fp, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("engine: field %s: no materialized ancestor available", f.Color())
	}
	return nil, lastErr
}

func synthesizeAgainstAncestor(
	doc Document,
	m *schema.Schema,
	cr Highlighting,
	f *schema.FieldInfo,
	anc *schema.FieldInfo,
	inputs []region.Region,
	pos, neg []region.Region,
	lang Language,
) (*FieldProgram, error) {
	isSeq := f.IsSequenceAncestor(anc)
	var seqProgs []SeqRegionProgram
	var regProgs []RegionProgram
	if isSeq {
		var exs []SeqRegionExample
		covered := 0
		for _, in := range inputs {
			p := region.Subregions(in, pos)
			n := region.Subregions(in, neg)
			if len(p) == 0 && len(n) == 0 {
				continue
			}
			covered += len(p) + len(n)
			exs = append(exs, SeqRegionExample{Input: in, Positive: p, Negative: n})
		}
		if covered < len(pos)+len(neg) {
			return nil, fmt.Errorf("engine: field %s: some examples lie outside every %s-region", f.Color(), ancName(anc))
		}
		if len(exs) == 0 {
			return nil, fmt.Errorf("engine: field %s: no examples within %s-regions", f.Color(), ancName(anc))
		}
		seqProgs = lang.SynthesizeSeqRegion(exs)
		if len(seqProgs) == 0 {
			return nil, fmt.Errorf("engine: field %s: no consistent sequence program relative to %s", f.Color(), ancName(anc))
		}
	} else {
		var exs []RegionExample
		covered := 0
		for _, in := range inputs {
			p := region.Subregions(in, pos)
			if len(p) == 0 {
				continue
			}
			if len(p) > 1 {
				return nil, fmt.Errorf("engine: field %s: %d positive examples inside one %s-region (want at most 1)",
					f.Color(), len(p), ancName(anc))
			}
			covered += len(p)
			exs = append(exs, RegionExample{Input: in, Output: p[0]})
		}
		if covered < len(pos) {
			return nil, fmt.Errorf("engine: field %s: some examples lie outside every %s-region", f.Color(), ancName(anc))
		}
		if len(exs) == 0 {
			return nil, fmt.Errorf("engine: field %s: no examples within %s-regions", f.Color(), ancName(anc))
		}
		regProgs = lang.SynthesizeRegion(exs)
		if len(regProgs) == 0 {
			return nil, fmt.Errorf("engine: field %s: no consistent region program relative to %s", f.Color(), ancName(anc))
		}
	}

	// Select the first program whose full execution result keeps the
	// highlighting consistent with the schema (loop at line 12 of Alg. 2)
	// and does not re-extract any negative instance. (Sequence synthesis
	// already filters negatives inside the language; the check here also
	// covers region programs, whose per-ancestor learning API has no
	// negative channel.) Candidates are independent, so the checks are
	// fanned across a worker pool; firstPassing returns the lowest-ranked
	// passing candidate, keeping the choice bit-identical to a serial scan.
	try := func(fp *FieldProgram) bool {
		crNew := cr.Clone()
		crNew[f.Color()] = nil
		extracted := fp.run(doc, crNew)
		for _, r := range extracted {
			for _, n := range neg {
				if r == n || r.Overlaps(n) {
					return false
				}
			}
		}
		crNew.Add(f.Color(), extracted...)
		return crNew.ConsistentWith(m) == nil
	}
	var fps []*FieldProgram
	if isSeq {
		fps = make([]*FieldProgram, len(seqProgs))
		for i, p := range seqProgs {
			fps[i] = &FieldProgram{Field: f, Ancestor: anc, Seq: p}
		}
	} else {
		fps = make([]*FieldProgram, len(regProgs))
		for i, p := range regProgs {
			fps[i] = &FieldProgram{Field: f, Ancestor: anc, Reg: p}
		}
	}
	if i := firstPassing(len(fps), func(i int) bool { return try(fps[i]) }); i >= 0 {
		return fps[i], nil
	}
	return nil, fmt.Errorf("engine: field %s: every consistent program violates the schema when executed", f.Color())
}

func ancName(anc *schema.FieldInfo) string {
	if anc == nil {
		return "⊥"
	}
	return anc.Color()
}
