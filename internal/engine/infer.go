package engine

import (
	"context"
	"fmt"

	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// InferStructure synthesizes the extraction program of a non-leaf field
// without user examples, from the already-materialized highlighting of its
// direct child fields — the bottom-up workflow of §3 of the paper
// (“FlashExtract may be able to automatically infer the organization of
// the various leaf field instances”).
//
// The child instances are grouped by relative document order: the child
// with the most instances leads, every other instance joins the group of
// the nearest preceding leader instance, and the minimal region covering
// each group (via the document's Spanner) becomes a positive example for
// the struct field. The field program is then synthesized from those
// examples as usual and recorded, ready to Commit.
func (s *Session) InferStructure(color string) (*FieldProgram, []region.Region, error) {
	fi, err := s.field(color)
	if err != nil {
		return nil, nil, err
	}
	if fi.Field.IsLeaf() {
		return nil, nil, fmt.Errorf("engine: field %s is a leaf; structure inference applies to struct fields", color)
	}
	if s.materialized[color] {
		return nil, nil, fmt.Errorf("engine: field %s is already materialized", color)
	}
	spanner, ok := s.doc.(Spanner)
	if !ok {
		return nil, nil, fmt.Errorf("engine: document type %T does not support structure inference", s.doc)
	}
	var children []*schema.FieldInfo
	for _, other := range s.sch.Fields() {
		if other.Parent == fi {
			children = append(children, other)
		}
	}
	if len(children) == 0 {
		return nil, nil, fmt.Errorf("engine: field %s has no child fields", color)
	}
	instances := make([][]region.Region, len(children))
	leader := -1
	for i, child := range children {
		if !s.materialized[child.Color()] {
			return nil, nil, fmt.Errorf("engine: child field %s must be materialized before inferring %s", child.Color(), color)
		}
		instances[i] = s.cr[child.Color()]
		if len(instances[i]) == 0 {
			return nil, nil, fmt.Errorf("engine: child field %s has no instances", child.Color())
		}
		if leader < 0 || len(instances[i]) > len(instances[leader]) {
			leader = i
		}
	}

	spans, err := groupAndSpan(spanner, instances, leader)
	if err != nil {
		return nil, nil, err
	}
	// Run through the session's budgeted driver so the call is recorded in
	// SessionStats like any other synthesis call. The synthetic span
	// examples are not the user's recorded spec for the color, so any
	// retained incremental state is dropped rather than refreshed.
	fp, pr, err := s.synthesize(context.Background(), fi, spans, nil)
	s.record(color, pr)
	delete(s.inc, color)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: inferring %s: %w", color, err)
	}
	s.programs[color] = fp
	return fp, fp.run(s.doc, s.cr), nil
}

// groupAndSpan assigns every child instance to the group of the nearest
// preceding leader instance and folds each group into its covering region.
func groupAndSpan(spanner Spanner, instances [][]region.Region, leader int) ([]region.Region, error) {
	leaders := instances[leader]
	groups := make([]region.Region, len(leaders))
	for i, l := range leaders {
		groups[i] = l
	}
	for ci, rs := range instances {
		if ci == leader {
			continue
		}
		for _, r := range rs {
			idx := -1
			for j, l := range leaders {
				if l == r || l.Less(r) {
					idx = j
				} else {
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("engine: instance %s precedes every leader instance; cannot infer grouping", r)
			}
			joined, err := spanner.Span(groups[idx], r)
			if err != nil {
				return nil, err
			}
			groups[idx] = joined
		}
	}
	region.Sort(groups)
	return groups, nil
}
