package engine

import (
	"context"
	"time"

	"flashextract/internal/core"
	"flashextract/internal/logx"
	"flashextract/internal/metrics"
	"flashextract/internal/region"
	"flashextract/internal/schema"
	"flashextract/internal/trace"
)

// Incremental interactive synthesis: every Learn call of the §3 refinement
// loop used to restart Algorithm 2 from scratch, paying full learner cost
// on the k-th example. Following the incremental maintenance of synthesis
// state in "Interactive Program Synthesis" (Le et al.), the session now
// retains, per field, the full ranked candidate list of the last complete
// synthesis call together with the spec slice it was learned from and a
// fingerprint of the environment (committed highlighting + materialized
// set + ancestor). When the user adds examples and re-learns, the retained
// candidates are intersected with the extended spec — a consistency filter
// plus the usual schema-validation scan, fused into one rank-ordered
// firstPassing pass — instead of invoking the DSL learner again. Sound
// reuse rests on two monotonicity facts about a grown spec under an
// unchanged environment: a candidate inconsistent with the old spec stays
// inconsistent with the extended one, and a candidate that failed the
// schema-validation check keeps failing (more negatives only add failure
// modes; the committed highlighting is pinned by the environment key). So
// every retained candidate ranked before the previously selected winner
// provably fails again, and the scan only has to re-check the prefix
// ending at the winner: when the winner itself survives, it is returned
// unchanged. In every other case — committed ancestor highlighting
// changed, examples were removed or cleared, the retained state came from
// a budget-truncated call, or the winner no longer survives — the session
// falls back to a cold re-learn.
//
// The reuse contract is program stability, the interactive-synthesis
// property of Le et al.: a hit happens exactly when every new example
// confirms the current program, and it returns that program, so the
// highlighting the user sees does not move under confirming examples. A
// hit is deliberately NOT required to match what a from-scratch learner
// would now rank first: DSL candidate generation is example-driven (new
// examples discover new dynamic tokens, and the per-side attribute cap
// makes generation lossy), so a fresh learner at the larger spec can
// produce a different — equally consistent — program, yanking the
// highlighting out from under an example that agreed with it. Whenever the
// extended spec CORRECTS the program instead (a positive the program
// missed, a negative it overlapped), the winner dies, the call falls back
// cold, and the result is bit-identical to a from-scratch session by
// determinism of the synthesis pipeline. The incremental-vs-cold
// differential suite in internal/bench pins both halves of the contract
// over the full corpus: mismatch-driven refinement (every step corrects,
// so every step must equal cold), and forced-confirmation refinement
// (every hit must keep the previous highlighting; every fallback must
// equal cold).

// DefaultIncremental is the initial incremental-reuse setting of new
// sessions. It exists for the differential harness, which compares an
// incremental session against a forced-cold reference; the production
// default is true. Session.SetIncremental overrides it per session.
var DefaultIncremental = true

// incState is the retained per-field learner state: the surviving
// candidate set of the last complete synthesis call, the rank of the
// candidate that call selected, and the environment key plus spec slice
// the set was learned from.
type incState struct {
	anc       *schema.FieldInfo
	isSeq     bool
	fps       []*FieldProgram
	winnerIdx int
	pos, neg  []region.Region
	key       core.RetainKey
	complete  bool
}

// SetIncremental turns incremental candidate reuse on or off for
// subsequent Learn calls. Turning it off also drops any retained state, so
// a later re-enable cannot reuse candidates captured while disabled
// semantics were in effect.
func (s *Session) SetIncremental(on bool) {
	s.incremental = on
	if !on {
		s.inc = map[string]*incState{}
	}
}

// Incremental reports whether the session reuses retained candidate state
// across Learn calls.
func (s *Session) Incremental() bool { return s.incremental }

// incKey fingerprints the environment a candidate set is valid in: the
// ancestor it was learned against plus, for every schema field, whether it
// is materialized and the exact committed regions of its color. Any change
// — an ancestor commit, a clear, a different input partition — changes the
// key and forces a cold re-learn.
func (s *Session) incKey(anc *schema.FieldInfo) core.RetainKey {
	h := core.NewKeyHasher()
	h.Str(ancName(anc))
	for _, fi := range s.sch.Fields() {
		c := fi.Color()
		h.Str(c).Bool(s.materialized[c]).Int(int64(len(s.cr[c])))
		for _, r := range s.cr[c] {
			h.Str(r.String())
		}
	}
	return h.Sum()
}

// regionEq is the equality predicate of example specs.
func regionEq(a, b region.Region) bool { return a == b }

// consistentSeqCandidate reports whether a retained sequence program is
// consistent with the example split: within every input, the positives are
// a subsequence of its output and no output region equals or overlaps a
// negative — the same consistency notion the DSL learners enforce
// (core.ConsistentSeq plus the overlap conflict predicate).
func consistentSeqCandidate(p SeqRegionProgram, exs []SeqRegionExample) bool {
	for _, ex := range exs {
		out, err := p.ExtractSeq(ex.Input)
		if err != nil {
			return false
		}
		if !regionSubseq(ex.Positive, out) {
			return false
		}
		for _, o := range out {
			for _, n := range ex.Negative {
				if o == n || o.Overlaps(n) {
					return false
				}
			}
		}
	}
	return true
}

// consistentRegCandidate reports whether a retained region program still
// extracts exactly the positive example of every input that has one.
func consistentRegCandidate(p RegionProgram, exs []RegionExample) bool {
	for _, ex := range exs {
		out, err := p.Extract(ex.Input)
		if err != nil || out == nil || out != ex.Output {
			return false
		}
	}
	return true
}

// regionSubseq reports whether sub occurs as a subsequence of seq.
func regionSubseq(sub, seq []region.Region) bool {
	i := 0
	for _, v := range seq {
		if i == len(sub) {
			return true
		}
		if v == sub[i] {
			i++
		}
	}
	return i == len(sub)
}

// tryIncremental attempts to serve one Learn call from the retained
// candidate state of the color. The context must already carry the
// session's metric sink and the call's budget. ok is false when the state
// is missing or not reusable — the caller then runs the cold path, which
// captures fresh state. A reusable-but-failed attempt (stale key, removed
// examples, truncated state, no surviving candidate) counts one
// incremental fallback; a call with no retained state counts neither.
func (s *Session) tryIncremental(ctx context.Context, fi *schema.FieldInfo, pos, neg []region.Region) (*FieldProgram, *PartialResult, bool) {
	if !s.incremental {
		return nil, nil, false
	}
	st := s.inc[fi.Color()]
	if st == nil {
		return nil, nil, false
	}
	sink := metrics.From(ctx)
	bud := core.BudgetFrom(ctx)
	fallback := func(why string) (*FieldProgram, *PartialResult, bool) {
		s.stats.IncrementalFallbacks++
		sink.Count(metrics.IncrementalFallbacks, 1)
		logx.From(ctx).Debug("incremental fallback", "field", fi.Color(), "why", why)
		return nil, nil, false
	}
	if !st.complete {
		return fallback("partial_state")
	}
	if bud.ExhaustedNow() {
		// The call's budget is already dead: the cold path owns the
		// graceful-degradation semantics, and partial state produced under
		// exhaustion must never seed future reuse.
		return fallback("budget_exhausted")
	}
	if s.budget.MaxCandidates > 0 {
		// A candidate cap meters the learner's search; the incremental scan
		// does not run the learner, so its candidate accounting is
		// incomparable with cold's and reuse would make budget trips depend
		// on cache state. Capped calls always take the cold path, keeping
		// trip behavior identical to a session that never reused anything.
		return fallback("candidate_budget")
	}
	if st.key != s.incKey(st.anc) {
		return fallback("highlighting_changed")
	}
	if len(pos) == 0 {
		// The cold path produces the canonical "at least one positive
		// example" error.
		return fallback("no_examples")
	}
	if !core.ExtendsSpec(st.pos, pos, regionEq) || !core.ExtendsSpec(st.neg, neg, regionEq) {
		return fallback("examples_removed")
	}

	var inputs []region.Region
	if st.anc == nil {
		inputs = []region.Region{s.doc.WholeRegion()}
	} else {
		inputs = s.cr[st.anc.Color()]
	}

	start := time.Now()
	ctx, fsp := trace.Start(ctx, "field:"+fi.Color())
	fsp.SetString("path", fi.Path)
	fsp.SetBool("incremental", true)
	fsp.SetInt("pos", int64(len(pos)))
	fsp.SetInt("neg", int64(len(neg)))
	defer fsp.End()

	// Build the per-ancestor example split exactly as the cold driver
	// would; a split error (an example outside every ancestor region, two
	// positives in one structure region) means this ancestor can no longer
	// explain the spec and the cold driver must re-run its ancestor loop.
	var try func(i int) bool
	if st.isSeq {
		exs, err := seqExamplesFor(fi, st.anc, inputs, pos, neg)
		if err != nil {
			fsp.SetBool("ok", false)
			return fallback("example_split")
		}
		try = func(i int) bool {
			return consistentSeqCandidate(st.fps[i].Seq, exs) &&
				validatesCandidate(s.doc, s.sch, s.cr, fi, neg, st.fps[i])
		}
	} else {
		exs, err := regExamplesFor(fi, st.anc, inputs, pos)
		if err != nil {
			fsp.SetBool("ok", false)
			return fallback("example_split")
		}
		try = func(i int) bool {
			return consistentRegCandidate(st.fps[i].Reg, exs) &&
				validatesCandidate(s.doc, s.sch, s.cr, fi, neg, st.fps[i])
		}
	}

	// Intersect-and-validate in retained rank order over the prefix ending
	// at the previous winner; see the package comment for why candidates
	// past the winner must not be accepted. Candidates are NOT counted
	// against the budget unless the scan is accepted, so a failed attempt
	// leaves the candidate budget exactly as a pure cold call would see
	// it — the fallback stays differentially identical to cold.
	n := st.winnerIdx + 1
	vctx, vsp := trace.Start(ctx, "validate")
	vsp.SetInt("candidates", int64(n))
	i, complete := firstPassing(vctx, n, try)
	vsp.SetInt("selected", int64(i))
	vsp.SetBool("complete", complete)
	vsp.End()
	if i != st.winnerIdx || !complete || bud.ExhaustedNow() {
		fsp.SetBool("ok", false)
		switch {
		case !complete || bud.ExhaustedNow():
			return fallback("scan_truncated")
		case i >= 0:
			// A candidate the previous call rejected now passes; the
			// monotonicity assumptions were violated (this should be
			// impossible), so trust the cold path instead.
			return fallback("rank_changed")
		default:
			return fallback("winner_died")
		}
	}

	bud.AddCandidates(int64(i + 1))
	sink.Count(metrics.LearnCalls, 1)
	sink.Count(metrics.CandidatesExplored, int64(i+1))
	sink.Count(metrics.IncrementalHits, 1)
	sink.Observe(metrics.PhaseValidate, time.Since(start).Seconds())
	s.stats.IncrementalHits++
	fsp.SetInt("candidates", int64(i+1))
	fsp.SetBool("ok", true)

	// The retained candidate list stays valid for further extensions of the
	// new, larger spec; only the spec slice advances.
	st.pos = append([]region.Region(nil), pos...)
	st.neg = append([]region.Region(nil), neg...)

	pr := &PartialResult{
		Exhausted:          bud.Reason() != "",
		Reason:             bud.Reason(),
		CandidatesExplored: bud.Explored(),
		Elapsed:            time.Since(start),
	}
	if pr.Exhausted {
		sink.Count(metrics.PartialResults, 1)
	}
	logx.From(ctx).Debug("incremental hit",
		"field", fi.Color(), "candidates", i+1, "elapsed", pr.Elapsed)
	return st.fps[i], pr, true
}

// captureIncremental folds the outcome of a cold synthesis call into the
// retained state of the color: a successful, complete call (budget never
// tripped) replaces the state with the fresh candidate list keyed to the
// current environment and spec; anything else — an error, a truncated
// call, reuse disabled — drops the state so partial results can never seed
// a later intersection.
func (s *Session) captureIncremental(color string, capture *learnedCandidates, pr *PartialResult, err error, pos, neg []region.Region) {
	if !s.incremental || err != nil || capture == nil || capture.fps == nil ||
		!capture.complete || capture.winnerIdx < 0 || (pr != nil && pr.Exhausted) {
		delete(s.inc, color)
		return
	}
	s.inc[color] = &incState{
		anc:       capture.anc,
		isSeq:     capture.isSeq,
		fps:       capture.fps,
		winnerIdx: capture.winnerIdx,
		pos:       append([]region.Region(nil), pos...),
		neg:       append([]region.Region(nil), neg...),
		key:       s.incKey(capture.anc),
		complete:  true,
	}
}
