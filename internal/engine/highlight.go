package engine

import (
	"fmt"
	"sort"

	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// Highlighting is a collection of colored regions of a document (Def. 3):
// a map from a field color to all regions of that color.
type Highlighting map[string][]region.Region

// Clone returns a deep copy of the highlighting.
func (cr Highlighting) Clone() Highlighting {
	out := make(Highlighting, len(cr))
	for c, rs := range cr {
		out[c] = append([]region.Region(nil), rs...)
	}
	return out
}

// Add adds regions of the given color, keeping the color's regions in
// document order and dropping exact duplicates.
func (cr Highlighting) Add(color string, rs ...region.Region) {
	for _, r := range rs {
		if containsRegion(cr[color], r) {
			continue
		}
		cr[color] = append(cr[color], r)
	}
	region.Sort(cr[color])
}

func containsRegion(rs []region.Region, r region.Region) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

// ConsistentWith checks the four conditions of Def. 3: (1) any two regions
// either do not overlap or are nested; (2) every region of a field is
// nested inside some region of each of its highlighted ancestors; (3) at
// most one region of a field lies inside each region of a
// structure-ancestor; (4) leaf region values have the declared leaf type.
// Colors not present in the highlighting are not constrained (fields may
// be highlighted in any order).
func (cr Highlighting) ConsistentWith(m *schema.Schema) error {
	// (1) pairwise nesting/disjointness across all colors. Colors are
	// visited in schema order (then any extras sorted), never in map
	// order: the first overlapping pair found decides the error message,
	// and batch output promises byte-identical records across runs.
	type colored struct {
		color string
		r     region.Region
	}
	var all []colored
	addColor := func(c string) {
		for _, r := range cr[c] {
			all = append(all, colored{c, r})
		}
	}
	seen := make(map[string]bool, len(cr))
	for _, fi := range m.Fields() {
		if _, ok := cr[fi.Color()]; ok && !seen[fi.Color()] {
			seen[fi.Color()] = true
			addColor(fi.Color())
		}
	}
	var extra []string
	for c := range cr {
		if !seen[c] {
			extra = append(extra, c)
		}
	}
	sort.Strings(extra)
	for _, c := range extra {
		addColor(c)
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			if a.r == b.r {
				continue
			}
			if a.r.Overlaps(b.r) && !a.r.Contains(b.r) && !b.r.Contains(a.r) {
				return fmt.Errorf("engine: regions %s [%s] and %s [%s] overlap without nesting",
					a.r, a.color, b.r, b.color)
			}
		}
	}
	// (2), (3), (4) per schema relations.
	for _, fi := range m.Fields() {
		rs, ok := cr[fi.Color()]
		if !ok {
			continue
		}
		if fi.Field.IsLeaf() {
			for _, r := range rs {
				if !fi.Field.Leaf.ValidValue(r.Value()) {
					return fmt.Errorf("engine: value %q of %s-region %s is not of type %s",
						r.Value(), fi.Color(), r, fi.Field.Leaf)
				}
			}
		}
		for _, anc := range fi.Ancestors() {
			if anc == nil {
				continue
			}
			ancRegions, ok := cr[anc.Color()]
			if !ok {
				continue
			}
			for _, r := range rs {
				n := 0
				for _, ar := range ancRegions {
					if ar.Contains(r) {
						n++
					}
				}
				if n == 0 {
					return fmt.Errorf("engine: %s-region %s is not nested in any %s-region",
						fi.Color(), r, anc.Color())
				}
			}
			if !fi.IsSequenceAncestor(anc) {
				// structure-ancestor: at most one region per ancestor region
				for _, ar := range ancRegions {
					n := 0
					for _, r := range rs {
						if ar.Contains(r) {
							n++
						}
					}
					if n > 1 {
						return fmt.Errorf("engine: %d %s-regions inside structure-ancestor %s-region %s (want at most 1)",
							n, fi.Color(), anc.Color(), ar)
					}
				}
			}
		}
	}
	return nil
}
