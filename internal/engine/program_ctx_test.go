package engine_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"flashextract/internal/core"
)

// TestRunContextCancelled asserts a cancelled context aborts RunContext
// with the context's error instead of returning a partial instance.
func TestRunContextCancelled(t *testing.T) {
	q, doc := learnSimpleProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := q.RunContext(ctx, doc); err == nil {
		t.Fatal("cancelled RunContext returned no error")
	} else if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextBudgetDeadline asserts an expired core.Budget deadline
// aborts RunContext with a budget-exhaustion error.
func TestRunContextBudgetDeadline(t *testing.T) {
	q, doc := learnSimpleProgram(t)
	ctx, _ := core.WithBudget(context.Background(),
		core.SynthBudget{Deadline: time.Now().Add(-time.Second)})
	_, _, err := q.RunContext(ctx, doc)
	if err == nil {
		t.Fatal("expired budget returned no error")
	}
	if !strings.Contains(err.Error(), "budget exhausted") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
}

// TestRunContextPlain asserts RunContext without a deadline matches Run.
func TestRunContextPlain(t *testing.T) {
	q, doc := learnSimpleProgram(t)
	inst1, _, err := q.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	inst2, _, err := q.RunContext(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if inst1.String() != inst2.String() {
		t.Fatalf("RunContext diverged from Run:\n%s\nvs\n%s", inst1, inst2)
	}
}
