package engine

import (
	"encoding/json"
	"fmt"

	"flashextract/internal/schema"
)

// ProgramCodec is implemented by languages whose programs can be
// serialized to portable JSON artifacts and reloaded later — the paper's
// §2 workflow of keeping "the data and its associated data extraction
// program" to re-run on similar documents.
type ProgramCodec interface {
	MarshalSeqProgram(p SeqRegionProgram) ([]byte, error)
	UnmarshalSeqProgram(data []byte) (SeqRegionProgram, error)
	MarshalRegionProgram(p RegionProgram) ([]byte, error)
	UnmarshalRegionProgram(data []byte) (RegionProgram, error)
}

// fieldProgramSpec is the serialized form of one field extraction program.
type fieldProgramSpec struct {
	Color    string          `json:"color"`
	Ancestor string          `json:"ancestor,omitempty"` // empty means ⊥
	Kind     string          `json:"kind"`               // "seq" or "region"
	Body     json.RawMessage `json:"body"`
}

// schemaProgramSpec is the serialized form of a schema extraction program.
type schemaProgramSpec struct {
	Format string             `json:"format"`
	Schema string             `json:"schema"`
	Fields []fieldProgramSpec `json:"fields"`
}

// schemaProgramFormat identifies the artifact format version.
const schemaProgramFormat = "flashextract-program/1"

// SaveSchemaProgram serializes a complete schema extraction program. The
// language of the document it was learned on must implement ProgramCodec.
func SaveSchemaProgram(q *SchemaProgram, lang Language) ([]byte, error) {
	codec, ok := lang.(ProgramCodec)
	if !ok {
		return nil, fmt.Errorf("engine: language %T does not support program serialization", lang)
	}
	if err := q.Complete(); err != nil {
		return nil, err
	}
	spec := schemaProgramSpec{Format: schemaProgramFormat, Schema: q.Schema.String()}
	for _, fi := range q.Schema.Fields() {
		fp := q.Fields[fi.Color()]
		fs := fieldProgramSpec{Color: fi.Color()}
		if fp.Ancestor != nil {
			fs.Ancestor = fp.Ancestor.Color()
		}
		var body []byte
		var err error
		if fp.Seq != nil {
			fs.Kind = "seq"
			body, err = codec.MarshalSeqProgram(fp.Seq)
		} else {
			fs.Kind = "region"
			body, err = codec.MarshalRegionProgram(fp.Reg)
		}
		if err != nil {
			return nil, fmt.Errorf("engine: serializing field %s: %w", fi.Color(), err)
		}
		fs.Body = body
		spec.Fields = append(spec.Fields, fs)
	}
	return json.MarshalIndent(spec, "", "  ")
}

// LoadSchemaProgram reconstructs a schema extraction program from its
// serialized form, ready to Run on any document of the language.
func LoadSchemaProgram(data []byte, lang Language) (*SchemaProgram, error) {
	codec, ok := lang.(ProgramCodec)
	if !ok {
		return nil, fmt.Errorf("engine: language %T does not support program serialization", lang)
	}
	var spec schemaProgramSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, err
	}
	if spec.Format != schemaProgramFormat {
		return nil, fmt.Errorf("engine: unsupported program format %q", spec.Format)
	}
	m, err := schema.Parse(spec.Schema)
	if err != nil {
		return nil, fmt.Errorf("engine: embedded schema: %w", err)
	}
	q := &SchemaProgram{Schema: m, Fields: map[string]*FieldProgram{}}
	for _, fs := range spec.Fields {
		fi := m.FieldByColor(fs.Color)
		if fi == nil {
			return nil, fmt.Errorf("engine: program references unknown field %q", fs.Color)
		}
		fp := &FieldProgram{Field: fi}
		if fs.Ancestor != "" {
			fp.Ancestor = m.FieldByColor(fs.Ancestor)
			if fp.Ancestor == nil {
				return nil, fmt.Errorf("engine: program references unknown ancestor %q", fs.Ancestor)
			}
		}
		switch fs.Kind {
		case "seq":
			fp.Seq, err = codec.UnmarshalSeqProgram(fs.Body)
		case "region":
			fp.Reg, err = codec.UnmarshalRegionProgram(fs.Body)
		default:
			return nil, fmt.Errorf("engine: unknown field program kind %q", fs.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("engine: loading field %s: %w", fs.Color, err)
		}
		q.Fields[fs.Color] = fp
	}
	if err := q.Complete(); err != nil {
		return nil, err
	}
	return q, nil
}
