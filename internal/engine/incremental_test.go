package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"flashextract/internal/core"
	"flashextract/internal/metrics"
	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// countingLang wraps the fake language and counts learner invocations, so
// tests can assert that an incremental hit did not re-run the learner.
type countingLang struct {
	inner    *fakeLang
	seqCalls int
	regCalls int
}

func (l *countingLang) SynthesizeSeqRegion(ctx context.Context, exs []SeqRegionExample) []SeqRegionProgram {
	l.seqCalls++
	return l.inner.SynthesizeSeqRegion(ctx, exs)
}

func (l *countingLang) SynthesizeRegion(ctx context.Context, exs []RegionExample) []RegionProgram {
	l.regCalls++
	return l.inner.SynthesizeRegion(ctx, exs)
}

// newCountingDomain wires the fake candidate pool behind a counting
// language.
func newCountingDomain(text string) (*fakeDoc, *countingLang) {
	doc, inner := newFakeDomain(text)
	cl := &countingLang{inner: inner}
	doc.lang = cl
	return doc, cl
}

func mustLearn(t *testing.T, s *Session, color string) (*FieldProgram, []region.Region) {
	t.Helper()
	fp, out, err := s.Learn(color)
	if err != nil {
		t.Fatalf("Learn(%s): %v", color, err)
	}
	return fp, out
}

func TestIncrementalHitSkipsLearner(t *testing.T) {
	doc, cl := newCountingDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	if err := s.AddPositive("row", lines[0]); err != nil {
		t.Fatal(err)
	}
	_, coldOut := mustLearn(t, s, "row")
	if cl.seqCalls != 1 {
		t.Fatalf("cold learn ran the learner %d times, want 1", cl.seqCalls)
	}

	// lines[1] is in the winner's output, so the extended spec is
	// consistent with it: the call must be served from retained state.
	if err := s.AddPositive("row", lines[1]); err != nil {
		t.Fatal(err)
	}
	_, incOut := mustLearn(t, s, "row")
	if cl.seqCalls != 1 {
		t.Fatalf("incremental learn re-ran the learner (%d calls)", cl.seqCalls)
	}
	st := s.Stats()
	if st.IncrementalHits != 1 || st.IncrementalFallbacks != 0 {
		t.Fatalf("hits=%d fallbacks=%d, want 1/0", st.IncrementalHits, st.IncrementalFallbacks)
	}
	if st.Metrics.Counters[metrics.IncrementalHits] != 1 {
		t.Fatalf("registry hit counter = %d", st.Metrics.Counters[metrics.IncrementalHits])
	}
	// LearnCalls must count both invocations regardless of the path taken.
	if st.LearnCalls != 2 || st.Metrics.Counters[metrics.LearnCalls] != 2 {
		t.Fatalf("LearnCalls stats=%d registry=%d, want 2/2", st.LearnCalls, st.Metrics.Counters[metrics.LearnCalls])
	}

	// The highlighting must match a from-scratch session given the same
	// examples.
	doc2, _ := newCountingDomain(fakeText)
	ref := NewSession(doc2, m)
	ref.SetIncremental(false)
	ref.AddPositive("row", lines[0])
	ref.AddPositive("row", lines[1])
	_, refOut := mustLearn(t, ref, "row")
	if len(refOut) != len(incOut) {
		t.Fatalf("incremental %d regions, cold reference %d", len(incOut), len(refOut))
	}
	for i := range refOut {
		if refOut[i] != incOut[i] {
			t.Fatalf("region %d: incremental %v, cold %v", i, incOut[i], refOut[i])
		}
	}
	_ = coldOut
}

func TestIncrementalFallbackOnContradictingExample(t *testing.T) {
	doc, cl := newCountingDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	s.AddPositive("row", lines[0])
	fp, _ := mustLearn(t, s, "row")
	if fp.Seq.String() != "AllLines" {
		t.Fatalf("first winner = %s, want AllLines", fp.Seq)
	}
	// Striking lines[1] contradicts AllLines: the winner dies, and the
	// session must fall back to a cold re-learn rather than promote a
	// lower-ranked retained candidate (the fresh learner could rank a new
	// program above it).
	if err := s.AddNegative("row", lines[1]); err != nil {
		t.Fatal(err)
	}
	fp, out := mustLearn(t, s, "row")
	if cl.seqCalls != 2 {
		t.Fatalf("fallback should re-run the learner (calls=%d, want 2)", cl.seqCalls)
	}
	if fp.Seq.String() != "EvenLines" || len(out) != 2 {
		t.Fatalf("after negative: %s with %d regions", fp.Seq, len(out))
	}
	st := s.Stats()
	if st.IncrementalHits != 0 || st.IncrementalFallbacks != 1 {
		t.Fatalf("hits=%d fallbacks=%d, want 0/1", st.IncrementalHits, st.IncrementalFallbacks)
	}
	if st.Metrics.Counters[metrics.IncrementalFallbacks] != 1 {
		t.Fatalf("registry fallback counter = %d", st.Metrics.Counters[metrics.IncrementalFallbacks])
	}
}

func TestIncrementalInvalidatedByCommitOfOtherField(t *testing.T) {
	// Committing any field changes the environment fingerprint (committed
	// highlighting + materialized set), so retained state of every other
	// field must stop being reused even if its own examples only grew.
	doc, cl := newCountingDomain(fakeText)
	m := schema.MustParse(rowSchema)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	s.AddPositive("row", lines[0])
	s.AddPositive("row", lines[1])
	mustLearn(t, s, "row")
	if err := s.Commit("row"); err != nil {
		t.Fatal(err)
	}

	w0, _ := wordOfLine(lines[0])
	s.AddPositive("a", w0)
	fpA, _ := mustLearn(t, s, "a")
	if fpA.Ancestor == nil || fpA.Ancestor.Color() != "row" {
		t.Fatalf("field a learned relative to %v, want row", fpA.Ancestor)
	}
	regCallsAfterA := cl.regCalls

	n0, _ := numberOfLine(lines[0])
	s.AddPositive("b", n0)
	mustLearn(t, s, "b")
	if err := s.Commit("b"); err != nil {
		t.Fatal(err)
	}

	// a's spec grows consistently, but the commit of b changed the
	// committed highlighting: the retained state is stale and the call
	// must fall back cold.
	w1, _ := wordOfLine(lines[1])
	s.AddPositive("a", w1)
	fpA2, _ := mustLearn(t, s, "a")
	if cl.regCalls <= regCallsAfterA {
		t.Fatal("stale retained state was reused after a commit changed the environment")
	}
	if fpA2.Ancestor == nil || fpA2.Ancestor.Color() != "row" {
		t.Fatalf("re-learned ancestor = %v, want row", fpA2.Ancestor)
	}
	if s.Stats().IncrementalFallbacks == 0 {
		t.Fatal("no fallback recorded for the stale-key re-learn")
	}
}

func TestClearExamplesInvalidatesDerivedState(t *testing.T) {
	doc, cl := newCountingDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	s.AddPositive("row", lines[0])
	mustLearn(t, s, "row")
	if s.LastPartial("row") == nil {
		t.Fatal("Learn left no PartialResult")
	}
	if err := s.ClearExamples("row"); err != nil {
		t.Fatal(err)
	}
	// The learned program must not survive the clear: committing it would
	// materialize a highlighting the (now empty) examples never supported.
	if err := s.Commit("row"); err == nil {
		t.Fatal("Commit after ClearExamples materialized a stale program")
	}
	if s.LastPartial("row") != nil {
		t.Fatal("ClearExamples left a stale PartialResult")
	}
	if _, _, err := s.Learn("row"); err == nil {
		t.Fatal("Learn with no examples should fail")
	}

	// Retained incremental state must be gone too: a fresh example set
	// must go cold even if it extends the pre-clear spec.
	calls := cl.seqCalls
	s.AddPositive("row", lines[0])
	s.AddPositive("row", lines[1])
	mustLearn(t, s, "row")
	if cl.seqCalls <= calls {
		t.Fatal("post-clear learn did not run the learner")
	}
	if s.Stats().IncrementalHits != 0 {
		t.Fatal("post-clear learn reused cleared state")
	}

	if err := s.ClearExamples("nosuch"); err == nil {
		t.Fatal("unknown color accepted")
	}
	if err := s.Commit("row"); err != nil {
		t.Fatal(err)
	}
	if err := s.ClearExamples("row"); err == nil || !strings.Contains(err.Error(), "materialized") {
		t.Fatalf("ClearExamples on a materialized field: %v", err)
	}
}

func TestContradictoryExamplesRejected(t *testing.T) {
	doc, _ := newCountingDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	if err := s.AddPositive("row", lines[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNegative("row", lines[0]); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Fatalf("negative over an existing positive: %v", err)
	}
	if err := s.AddNegative("row", lines[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPositive("row", lines[1]); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("positive over an existing negative: %v", err)
	}
	// Re-adding with the same polarity stays an accepted no-op.
	if err := s.AddPositive("row", lines[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.AddNegative("row", lines[1]); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializedExampleMutationRejected(t *testing.T) {
	doc, _ := newCountingDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	s.AddPositive("row", lines[0])
	s.AddPositive("row", lines[1])
	mustLearn(t, s, "row")
	if err := s.Commit("row"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPositive("row", lines[2]); err == nil || !strings.Contains(err.Error(), "materialized") {
		t.Fatalf("AddPositive on a materialized field: %v", err)
	}
	if err := s.AddNegative("row", lines[2]); err == nil || !strings.Contains(err.Error(), "materialized") {
		t.Fatalf("AddNegative on a materialized field: %v", err)
	}
}

func TestLearnCallsCountsFailedLearns(t *testing.T) {
	doc, _ := newCountingDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	// A learn that fails (no examples) is still a synthesis call.
	if _, _, err := s.Learn("row"); err == nil {
		t.Fatal("Learn without examples should fail")
	}
	if got := s.Stats().LearnCalls; got != 1 {
		t.Fatalf("failed learn not counted: LearnCalls=%d, want 1", got)
	}
	// Requests rejected before synthesis are not synthesis calls.
	if _, _, err := s.Learn("nosuch"); err == nil {
		t.Fatal("unknown color accepted")
	}
	if got := s.Stats().LearnCalls; got != 1 {
		t.Fatalf("unknown-color rejection counted: LearnCalls=%d, want 1", got)
	}
	s.AddPositive("row", lines[0])
	s.AddPositive("row", lines[1])
	mustLearn(t, s, "row")
	if err := s.Commit("row"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Learn("row"); err == nil {
		t.Fatal("Learn on a materialized field should fail")
	}
	if got := s.Stats().LearnCalls; got != 2 {
		t.Fatalf("materialized rejection counted: LearnCalls=%d, want 2", got)
	}
}

func TestBudgetTrippedCallDoesNotSeedReuse(t *testing.T) {
	doc, cl := newCountingDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	// A candidate cap below the pool size trips the budget mid-call; the
	// call degrades, and whatever it learned must not be retained.
	s.SetBudget(core.SynthBudget{MaxCandidates: 1})
	s.AddPositive("row", lines[0])
	if _, _, err := s.Learn("row"); err == nil {
		t.Fatal("capped learn should fail on this pool")
	}
	pr := s.LastPartial("row")
	if pr == nil || !pr.Exhausted {
		t.Fatalf("capped learn PartialResult = %+v", pr)
	}

	// With the cap lifted and the spec grown, the call must go cold: there
	// is no complete state to reuse.
	s.SetBudget(core.SynthBudget{})
	s.AddPositive("row", lines[1])
	calls := cl.seqCalls
	mustLearn(t, s, "row")
	if cl.seqCalls <= calls {
		t.Fatal("post-trip learn did not run the learner")
	}
	if s.Stats().IncrementalHits != 0 {
		t.Fatal("budget-truncated state was reused")
	}
}

func TestCandidateCapForcesColdPath(t *testing.T) {
	// Candidate-capped calls always take the cold path, so trip behavior is
	// identical whether or not the session previously retained state.
	doc, cl := newCountingDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	s.AddPositive("row", lines[0])
	mustLearn(t, s, "row") // complete call: state retained
	s.SetBudget(core.SynthBudget{MaxCandidates: 100})
	s.AddPositive("row", lines[1])
	calls := cl.seqCalls
	mustLearn(t, s, "row")
	if cl.seqCalls <= calls {
		t.Fatal("capped call skipped the learner")
	}
	st := s.Stats()
	if st.IncrementalHits != 0 || st.IncrementalFallbacks != 1 {
		t.Fatalf("hits=%d fallbacks=%d, want 0/1", st.IncrementalHits, st.IncrementalFallbacks)
	}
}

func TestExpiredDeadlineSkipsIncremental(t *testing.T) {
	doc, _ := newCountingDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	lines := lineSpans(fakeText)

	run := func(incremental bool) (error, SessionStats) {
		s := NewSession(doc, m)
		s.SetIncremental(incremental)
		s.AddPositive("row", lines[0])
		if _, _, _, err := s.LearnContext(context.Background(), "row"); err != nil {
			return err, s.Stats()
		}
		s.AddPositive("row", lines[1])
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		_, _, _, err := s.LearnContext(ctx, "row")
		return err, s.Stats()
	}
	errInc, stInc := run(true)
	errCold, _ := run(false)
	if (errInc == nil) != (errCold == nil) {
		t.Fatalf("expired-deadline divergence: incremental err=%v, cold err=%v", errInc, errCold)
	}
	if stInc.IncrementalHits != 0 {
		t.Fatal("incremental hit under an already-expired deadline")
	}
}

func TestSetIncrementalDropsState(t *testing.T) {
	doc, cl := newCountingDomain(fakeText)
	m := schema.MustParse(`Seq([row] String)`)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	if !s.Incremental() {
		t.Fatal("sessions should default to incremental (DefaultIncremental)")
	}
	s.AddPositive("row", lines[0])
	mustLearn(t, s, "row")
	s.SetIncremental(false)
	s.SetIncremental(true)
	s.AddPositive("row", lines[1])
	calls := cl.seqCalls
	mustLearn(t, s, "row")
	if cl.seqCalls <= calls {
		t.Fatal("state retained across SetIncremental(false) was reused")
	}
}

func TestInferStructureCountsAsLearnCall(t *testing.T) {
	doc, _ := newCountingDomain(fakeText)
	m := schema.MustParse(rowSchema)
	s := NewSession(doc, m)
	lines := lineSpans(fakeText)

	// Requests rejected before synthesis are not synthesis calls.
	if _, _, err := s.InferStructure("row"); err == nil {
		t.Fatal("inference without materialized children accepted")
	}
	if got := s.Stats().LearnCalls; got != 0 {
		t.Fatalf("pre-synthesis rejection counted: LearnCalls=%d, want 0", got)
	}

	// Bottom-up: materialize the leaves, then infer the row structure and
	// check the inference is recorded like any other synthesis call.
	w0, _ := wordOfLine(lines[0])
	w1, _ := wordOfLine(lines[1])
	n0, _ := numberOfLine(lines[0])
	s.AddPositive("a", w0)
	s.AddPositive("a", w1)
	mustLearn(t, s, "a")
	if err := s.Commit("a"); err != nil {
		t.Fatal(err)
	}
	s.AddPositive("b", n0)
	mustLearn(t, s, "b")
	if err := s.Commit("b"); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().LearnCalls
	if _, _, err := s.InferStructure("row"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().LearnCalls; got != before+1 {
		t.Fatalf("InferStructure not counted: LearnCalls=%d, want %d", got, before+1)
	}
	if s.LastPartial("row") == nil {
		t.Fatal("InferStructure left no PartialResult")
	}
}
