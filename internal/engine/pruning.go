package engine

import "flashextract/internal/core"

// Abstraction-guided candidate pruning: before a candidate program is
// executed concretely against the examples, its abstract semantics
// (internal/abstract) is checked against each example; a candidate whose
// abstraction contradicts an example — too few possible matches, an output
// range that cannot cover a highlighted region — is rejected without
// execution. The abstraction is a sound over-approximation, so pruning is
// invisible in the output: the ranked candidate set, the selected program,
// and the inferred highlighting are bit-identical with pruning on or off
// (the pruning differential suite in internal/bench pins this over the
// full corpus). Only the synth_candidates_explored counter drops; rejected
// candidates are tallied separately as synth_candidates_pruned.
//
// Pruning composes with candidate budgets conservatively: a budget with
// MaxCandidates > 0 meters the learner's search by explored count, and
// pruning would change which candidates the cap admits, so the engine only
// installs a pruner when no candidate cap is set (mirroring the
// incremental path's candidate_budget fallback).

// DefaultPruning is the initial abstraction-guided-pruning setting of new
// sessions and of direct SynthesizeFieldProgram calls. It exists for the
// pruning differential harness, which compares a pruned run against a
// forced-unpruned reference; the production default is true.
// Session.SetPruning overrides it per session.
var DefaultPruning = true

// SetPruning turns abstraction-guided candidate pruning on or off for
// subsequent Learn calls. Turning it off drops the session's refinement
// store; a later re-enable starts from an empty store (the store holds only
// document-true facts, so this costs re-derivation, never soundness).
func (s *Session) SetPruning(on bool) {
	s.pruning = on
	if !on {
		s.pruner = nil
	}
}

// Pruning reports whether the session prunes candidates via the abstract
// semantics before concrete execution.
func (s *Session) Pruning() bool { return s.pruning }

// learnPruner returns the pruner to install on a Learn call's context: the
// session-lifetime pruner when pruning is enabled and no candidate cap is
// set, nil otherwise (which explicitly disables pruning for the call — the
// cap meters explored candidates, and pruning would change what it admits).
// The pruner — and with it the counterexample-driven refinement store — is
// shared across the session's Learn calls: refinement facts are exact match
// counts over the immutable document, so they stay true across calls and
// commits.
func (s *Session) learnPruner() *core.Pruner {
	if !s.pruning || s.budget.MaxCandidates > 0 {
		return nil
	}
	if s.pruner == nil {
		s.pruner = core.NewPruner()
	}
	return s.pruner
}
