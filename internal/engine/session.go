package engine

import (
	"fmt"

	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// Session is the interactive example-based workflow of §3: the user picks
// a field, highlights positive (and possibly negative) example regions,
// asks FlashExtract to learn, inspects the inferred highlighting, and
// either provides more examples or commits the field and moves on.
type Session struct {
	doc Document
	sch *schema.Schema

	cr           Highlighting    // committed highlighting
	materialized map[string]bool // colors whose programs are committed
	programs     map[string]*FieldProgram
	pos, neg     map[string][]region.Region // examples per color
}

// NewSession starts an extraction session for a document and schema.
func NewSession(doc Document, sch *schema.Schema) *Session {
	return &Session{
		doc:          doc,
		sch:          sch,
		cr:           Highlighting{},
		materialized: map[string]bool{},
		programs:     map[string]*FieldProgram{},
		pos:          map[string][]region.Region{},
		neg:          map[string][]region.Region{},
	}
}

// Schema returns the session's output schema.
func (s *Session) Schema() *schema.Schema { return s.sch }

// Document returns the session's document.
func (s *Session) Document() Document { return s.doc }

// field resolves a color to its schema field.
func (s *Session) field(color string) (*schema.FieldInfo, error) {
	fi := s.sch.FieldByColor(color)
	if fi == nil {
		return nil, fmt.Errorf("engine: schema has no field with color %q", color)
	}
	return fi, nil
}

// AddPositive records a positive example region for the field of the given
// color.
func (s *Session) AddPositive(color string, r region.Region) error {
	if _, err := s.field(color); err != nil {
		return err
	}
	if containsRegion(s.pos[color], r) {
		return nil
	}
	s.pos[color] = append(s.pos[color], r)
	region.Sort(s.pos[color])
	return nil
}

// AddNegative records a negative example region for the field of the given
// color.
func (s *Session) AddNegative(color string, r region.Region) error {
	if _, err := s.field(color); err != nil {
		return err
	}
	if containsRegion(s.neg[color], r) {
		return nil
	}
	s.neg[color] = append(s.neg[color], r)
	region.Sort(s.neg[color])
	return nil
}

// ClearExamples removes all recorded examples for a color.
func (s *Session) ClearExamples(color string) {
	delete(s.pos, color)
	delete(s.neg, color)
}

// Learn synthesizes a field extraction program for the field of the given
// color from the examples recorded so far and returns the program together
// with the full highlighting it infers for the field.
func (s *Session) Learn(color string) (*FieldProgram, []region.Region, error) {
	fi, err := s.field(color)
	if err != nil {
		return nil, nil, err
	}
	if s.materialized[color] {
		return nil, nil, fmt.Errorf("engine: field %s is already materialized", color)
	}
	fp, err := SynthesizeFieldProgram(s.doc, s.sch, s.cr, fi, s.pos[color], s.neg[color], s.materialized)
	if err != nil {
		return nil, nil, err
	}
	s.programs[color] = fp
	return fp, fp.run(s.doc, s.cr), nil
}

// Commit materializes a field: the highlighting inferred by its learned
// program becomes part of the committed highlighting, enabling descendant
// fields to learn relative to it. Learn must have succeeded for the color.
func (s *Session) Commit(color string) error {
	fi, err := s.field(color)
	if err != nil {
		return err
	}
	fp := s.programs[color]
	if fp == nil {
		return fmt.Errorf("engine: field %s has no learned program to commit", color)
	}
	crNew := s.cr.Clone()
	crNew[color] = nil
	crNew.Add(color, fp.run(s.doc, s.cr)...)
	if err := crNew.ConsistentWith(s.sch); err != nil {
		return fmt.Errorf("engine: committing %s: %w", color, err)
	}
	s.cr = crNew
	s.materialized[fi.Color()] = true
	return nil
}

// Materialized reports whether the field of the given color has been
// committed.
func (s *Session) Materialized(color string) bool { return s.materialized[color] }

// Highlighting returns the committed highlighting.
func (s *Session) Highlighting() Highlighting { return s.cr.Clone() }

// Program assembles the schema extraction program once every field has
// been materialized.
func (s *Session) Program() (*SchemaProgram, error) {
	q := &SchemaProgram{Schema: s.sch, Fields: map[string]*FieldProgram{}}
	for _, fi := range s.sch.Fields() {
		fp := s.programs[fi.Color()]
		if fp == nil || !s.materialized[fi.Color()] {
			return nil, fmt.Errorf("engine: field %s [%s] has not been materialized", fi.Path, fi.Color())
		}
		q.Fields[fi.Color()] = fp
	}
	return q, nil
}

// Extract runs the assembled schema program on the session's document and
// returns the resulting schema instance.
func (s *Session) Extract() (*Instance, error) {
	q, err := s.Program()
	if err != nil {
		return nil, err
	}
	inst, _, err := q.Run(s.doc)
	return inst, err
}
