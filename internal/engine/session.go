package engine

import (
	"context"
	"fmt"
	"time"

	"flashextract/internal/core"
	"flashextract/internal/metrics"
	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// Session is the interactive example-based workflow of §3: the user picks
// a field, highlights positive (and possibly negative) example regions,
// asks FlashExtract to learn, inspects the inferred highlighting, and
// either provides more examples or commits the field and moves on.
//
// Learn calls are incremental by default: the session retains the ranked
// candidate set of each field's last complete synthesis call, and a
// re-learn after adding examples intersects the retained candidates with
// the extended spec instead of restarting the DSL learner (see
// incremental.go for the reuse conditions and the fallback rules).
type Session struct {
	doc Document
	sch *schema.Schema

	cr           Highlighting    // committed highlighting
	materialized map[string]bool // colors whose programs are committed
	programs     map[string]*FieldProgram
	pos, neg     map[string][]region.Region // examples per color

	budget      core.SynthBudget  // per-Learn budget (zero = unlimited)
	reg         *metrics.Registry // session-lifetime engine metrics
	partial     map[string]*PartialResult
	stats       SessionStats
	inc         map[string]*incState // retained candidate state per color
	incremental bool                 // reuse retained state across Learn calls
	pruning     bool                 // abstraction-guided candidate pruning
	pruner      *core.Pruner         // session-lifetime refinement store (lazy)
}

// SessionStats aggregates the engine metrics of a session: per-call
// synthesis outcomes plus the document's evaluation-cache counters. It is
// a snapshot; see Session.Stats.
type SessionStats struct {
	// LearnCalls counts Learn/LearnContext/InferStructure synthesis calls,
	// including calls that returned an error or no program. (Requests
	// rejected before synthesis starts — an unknown color, an already
	// materialized field — are not synthesis calls and are not counted.)
	LearnCalls int64 `json:"learn_calls"`
	// PartialResults counts calls that exhausted their budget.
	PartialResults int64 `json:"partial_results"`
	// CandidatesExplored totals candidate programs examined.
	CandidatesExplored int64 `json:"candidates_explored"`
	// LearnerFanout totals learners dispatched by Union combinators.
	LearnerFanout int64 `json:"learner_fanout"`
	// IncrementalHits counts Learn calls served from the session's retained
	// candidate state without re-invoking the DSL learner.
	IncrementalHits int64 `json:"incremental_hits"`
	// IncrementalFallbacks counts Learn calls that had retained candidate
	// state but fell back to a cold re-synthesis.
	IncrementalFallbacks int64 `json:"incremental_fallbacks"`
	// CandidatesPruned counts candidates rejected by the abstract semantics
	// before concrete execution.
	CandidatesPruned int64 `json:"candidates_pruned"`
	// AbstractionRefinements counts spurious abstract survivors fed back
	// into the pruner's refinement store.
	AbstractionRefinements int64 `json:"abstraction_refinements"`
	// SynthTime totals wall time spent inside synthesis calls.
	SynthTime time.Duration `json:"synth_time_ns"`
	// Cache holds the document's evaluation-cache counters (zero value
	// when the document type has no cache).
	Cache CacheStats `json:"cache"`
	// Metrics is the full snapshot of the session's metric registry,
	// including the per-phase latency histograms.
	Metrics metrics.Snapshot `json:"metrics"`
}

// NewSession starts an extraction session for a document and schema.
func NewSession(doc Document, sch *schema.Schema) *Session {
	return &Session{
		doc:          doc,
		sch:          sch,
		cr:           Highlighting{},
		materialized: map[string]bool{},
		programs:     map[string]*FieldProgram{},
		pos:          map[string][]region.Region{},
		neg:          map[string][]region.Region{},
		reg:          metrics.NewRegistry(),
		partial:      map[string]*PartialResult{},
		inc:          map[string]*incState{},
		incremental:  DefaultIncremental,
		pruning:      DefaultPruning,
	}
}

// Schema returns the session's output schema.
func (s *Session) Schema() *schema.Schema { return s.sch }

// Document returns the session's document.
func (s *Session) Document() Document { return s.doc }

// SetBudget installs a synthesis budget applied to every subsequent Learn
// call of the session (in addition to any deadline on the call's context).
// The zero budget removes all session-level limits.
func (s *Session) SetBudget(b core.SynthBudget) { s.budget = b }

// Stats returns a snapshot of the session's engine metrics: learn calls,
// partial results, candidates explored, learner fan-out, incremental
// reuse outcomes, synthesis wall time, per-phase latency histograms, and
// the document cache counters.
func (s *Session) Stats() SessionStats {
	st := s.stats
	st.Metrics = s.reg.Snapshot()
	st.LearnerFanout = s.reg.Counter(metrics.LearnerFanout)
	st.CandidatesPruned = s.reg.Counter(metrics.CandidatesPruned)
	st.AbstractionRefinements = s.reg.Counter(metrics.AbstractionRefinements)
	if cs, ok := s.doc.(CacheStatser); ok {
		st.Cache = cs.CacheStats()
	}
	return st
}

// LastPartial returns the PartialResult of the most recent synthesis call
// for a color (nil when the field has not been learned).
func (s *Session) LastPartial(color string) *PartialResult { return s.partial[color] }

// field resolves a color to its schema field.
func (s *Session) field(color string) (*schema.FieldInfo, error) {
	fi := s.sch.FieldByColor(color)
	if fi == nil {
		return nil, fmt.Errorf("engine: schema has no field with color %q", color)
	}
	return fi, nil
}

// mutableField resolves a color to a field whose examples may still be
// edited: materialized fields have a committed program, so mutating their
// spec could only desynchronize the session.
func (s *Session) mutableField(color string) (*schema.FieldInfo, error) {
	fi, err := s.field(color)
	if err != nil {
		return nil, err
	}
	if s.materialized[color] {
		return nil, fmt.Errorf("engine: field %s is already materialized; examples can no longer be changed", color)
	}
	return fi, nil
}

// AddPositive records a positive example region for the field of the given
// color. The field must not be materialized, and the region must not
// already be recorded as a negative example.
func (s *Session) AddPositive(color string, r region.Region) error {
	if _, err := s.mutableField(color); err != nil {
		return err
	}
	if containsRegion(s.neg[color], r) {
		return fmt.Errorf("engine: region %s is already a negative example for field %s; remove it (ClearExamples) before marking it positive", r, color)
	}
	if containsRegion(s.pos[color], r) {
		return nil
	}
	s.pos[color] = append(s.pos[color], r)
	region.Sort(s.pos[color])
	return nil
}

// AddNegative records a negative example region for the field of the given
// color. The field must not be materialized, and the region must not
// already be recorded as a positive example.
func (s *Session) AddNegative(color string, r region.Region) error {
	if _, err := s.mutableField(color); err != nil {
		return err
	}
	if containsRegion(s.pos[color], r) {
		return fmt.Errorf("engine: region %s is already a positive example for field %s; remove it (ClearExamples) before marking it negative", r, color)
	}
	if containsRegion(s.neg[color], r) {
		return nil
	}
	s.neg[color] = append(s.neg[color], r)
	region.Sort(s.neg[color])
	return nil
}

// ClearExamples removes all recorded examples for a color and invalidates
// everything derived from them: the learned program, the last
// PartialResult, and any retained incremental candidate state. A field
// cleared after Learn must be re-learned before it can be committed.
func (s *Session) ClearExamples(color string) error {
	if _, err := s.mutableField(color); err != nil {
		return err
	}
	delete(s.pos, color)
	delete(s.neg, color)
	delete(s.programs, color)
	delete(s.partial, color)
	delete(s.inc, color)
	return nil
}

// Learn synthesizes a field extraction program for the field of the given
// color from the examples recorded so far and returns the program together
// with the full highlighting it infers for the field. It is LearnContext
// with a background context (the session budget, if any, still applies).
func (s *Session) Learn(color string) (*FieldProgram, []region.Region, error) {
	fp, rs, _, err := s.LearnContext(context.Background(), color)
	return fp, rs, err
}

// LearnContext is Learn bounded by a context: the context's deadline and
// cancellation, together with the session budget installed by SetBudget,
// stop synthesis cooperatively. On budget exhaustion the best program
// found so far is returned (when one exists) along with a PartialResult
// describing the truncation; the caller decides whether to keep it,
// refine, or retry with a larger budget.
//
// When the session holds reusable candidate state for the color (a
// previous complete Learn under the same committed highlighting, and the
// examples have only grown), the call is served by intersecting the
// retained candidates with the extended spec instead of re-running the DSL
// learner; otherwise it falls back to a cold synthesis, which refreshes
// the retained state. A reuse hit keeps the previously inferred
// highlighting unchanged (the new examples confirmed it); a fallback is
// bit-identical to a from-scratch call (see incremental.go for the
// contract).
func (s *Session) LearnContext(ctx context.Context, color string) (*FieldProgram, []region.Region, *PartialResult, error) {
	fi, err := s.field(color)
	if err != nil {
		return nil, nil, nil, err
	}
	if s.materialized[color] {
		return nil, nil, nil, fmt.Errorf("engine: field %s is already materialized", color)
	}
	pos, neg := s.pos[color], s.neg[color]
	// One metric sink and one budget are shared by the incremental attempt
	// and the cold fallback: a failed attempt consumes no candidate budget
	// (see tryIncremental), so the fallback sees the budget a pure cold
	// call would.
	ctx = metrics.Into(ctx, s.reg)
	ctx, _ = core.WithBudget(ctx, s.budget)
	// Install the session's pruning decision (possibly "explicitly off") so
	// the cold driver neither double-installs nor overrides it.
	ctx = core.WithPruner(ctx, s.learnPruner())
	if fp, pr, ok := s.tryIncremental(ctx, fi, pos, neg); ok {
		s.record(color, pr)
		s.programs[color] = fp
		return fp, fp.run(s.doc, s.cr), pr, nil
	}
	var capture learnedCandidates
	fp, pr, err := synthesizeFieldProgramCapture(ctx, s.doc, s.sch, s.cr, fi, pos, neg, s.materialized, &capture)
	s.captureIncremental(color, &capture, pr, err, pos, neg)
	s.record(color, pr)
	if err != nil {
		return nil, nil, pr, err
	}
	s.programs[color] = fp
	return fp, fp.run(s.doc, s.cr), pr, nil
}

// synthesize runs the budgeted Algorithm 2 driver with the session's
// metric registry installed on the context.
func (s *Session) synthesize(ctx context.Context, fi *schema.FieldInfo, pos, neg []region.Region) (*FieldProgram, *PartialResult, error) {
	ctx = metrics.Into(ctx, s.reg)
	ctx, _ = core.WithBudget(ctx, s.budget)
	ctx = core.WithPruner(ctx, s.learnPruner())
	return SynthesizeFieldProgramCtx(ctx, s.doc, s.sch, s.cr, fi, pos, neg, s.materialized)
}

// record folds one synthesis outcome into the session stats. Every
// synthesis call is counted, including ones that failed before producing a
// PartialResult; the per-color partial slot always reflects the latest
// call.
func (s *Session) record(color string, pr *PartialResult) {
	s.stats.LearnCalls++
	s.partial[color] = pr
	if pr == nil {
		return
	}
	if pr.Exhausted {
		s.stats.PartialResults++
	}
	s.stats.CandidatesExplored += pr.CandidatesExplored
	s.stats.SynthTime += pr.Elapsed
}

// Commit materializes a field: the highlighting inferred by its learned
// program becomes part of the committed highlighting, enabling descendant
// fields to learn relative to it. Learn must have succeeded for the color.
func (s *Session) Commit(color string) error {
	fi, err := s.field(color)
	if err != nil {
		return err
	}
	fp := s.programs[color]
	if fp == nil {
		return fmt.Errorf("engine: field %s has no learned program to commit", color)
	}
	crNew := s.cr.Clone()
	crNew[color] = nil
	crNew.Add(color, fp.run(s.doc, s.cr)...)
	if err := crNew.ConsistentWith(s.sch); err != nil {
		return fmt.Errorf("engine: committing %s: %w", color, err)
	}
	s.cr = crNew
	s.materialized[fi.Color()] = true
	// The field can no longer be re-learned, so its retained candidate
	// state is dead weight. (Other fields' state self-invalidates: their
	// environment fingerprint covers the highlighting just committed.)
	delete(s.inc, color)
	return nil
}

// Materialized reports whether the field of the given color has been
// committed.
func (s *Session) Materialized(color string) bool { return s.materialized[color] }

// Highlighting returns the committed highlighting.
func (s *Session) Highlighting() Highlighting { return s.cr.Clone() }

// Program assembles the schema extraction program once every field has
// been materialized.
func (s *Session) Program() (*SchemaProgram, error) {
	q := &SchemaProgram{Schema: s.sch, Fields: map[string]*FieldProgram{}}
	for _, fi := range s.sch.Fields() {
		fp := s.programs[fi.Color()]
		if fp == nil || !s.materialized[fi.Color()] {
			return nil, fmt.Errorf("engine: field %s [%s] has not been materialized", fi.Path, fi.Color())
		}
		q.Fields[fi.Color()] = fp
	}
	return q, nil
}

// Extract runs the assembled schema program on the session's document and
// returns the resulting schema instance.
func (s *Session) Extract() (*Instance, error) {
	q, err := s.Program()
	if err != nil {
		return nil, err
	}
	inst, _, err := q.Run(s.doc)
	return inst, err
}
