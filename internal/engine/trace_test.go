package engine

import (
	"context"
	"sync/atomic"
	"testing"

	"flashextract/internal/trace"
)

// TestFirstPassingWorkerSpans asserts that the validation scan's worker
// goroutines create child spans that nest under the span carried by the
// caller's context — the cross-goroutine parent/child guarantee of the
// tracer — and that the scan's answer is unaffected by tracing.
func TestFirstPassingWorkerSpans(t *testing.T) {
	old := ValidationWorkers
	ValidationWorkers = 4
	defer func() { ValidationWorkers = old }()

	tr := trace.NewTracer()
	ctx, root := tr.StartRoot(context.Background(), "validate")
	var tries atomic.Int64
	idx, complete := firstPassing(ctx, 64, func(i int) bool {
		tries.Add(1)
		return i == 40
	})
	root.End()
	if idx != 40 || !complete {
		t.Fatalf("firstPassing = (%d, %v), want (40, true)", idx, complete)
	}
	workers := root.Children()
	if len(workers) != 4 {
		t.Fatalf("worker spans = %d, want 4", len(workers))
	}
	var spanTried int64
	for _, w := range workers {
		if w.Name() != "validate_worker" {
			t.Fatalf("unexpected span %q under validate", w.Name())
		}
		if w.ParentID() != root.ID() {
			t.Fatalf("worker span parent = %d, want %d", w.ParentID(), root.ID())
		}
		if w.Duration() <= 0 {
			t.Fatalf("worker span not ended")
		}
		for _, a := range w.Attrs() {
			if a.Key == "tried" {
				spanTried += a.Value.(int64)
			}
		}
	}
	// Workers may claim an index and abandon it after a lower passing index
	// is published, so the spans' tried counts can exceed the passing
	// index but never the total claim count.
	if spanTried < 1 || spanTried > tries.Load() {
		t.Fatalf("span tried total = %d, callback tries = %d", spanTried, tries.Load())
	}
}

// TestFirstPassingNoTracer asserts the serial and parallel paths work
// unchanged with no tracer on the context (the production default).
func TestFirstPassingNoTracer(t *testing.T) {
	for _, workers := range []int{1, 4} {
		old := ValidationWorkers
		ValidationWorkers = workers
		idx, complete := firstPassing(context.Background(), 10, func(i int) bool { return i >= 7 })
		ValidationWorkers = old
		if idx != 7 || !complete {
			t.Fatalf("workers=%d: firstPassing = (%d, %v), want (7, true)", workers, idx, complete)
		}
	}
}
