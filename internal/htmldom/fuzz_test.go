package htmldom

import "testing"

// FuzzParse asserts the parser's leniency invariant: on any input it
// either returns a document or an error, and never panics. The seed corpus
// covers the tricky syntactic corners; `go test -fuzz FuzzParse` explores
// beyond them.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		samplePage, "", "<", "</", "<!", "<!-", "<a b='", `<a b="x`, "<a/>",
		"<script>unterminated", "<p>a<p>b", "<td><tr><li>", "&amp;&bogus;",
		"<DIV CLASS='X'>y</DIV>", "<a b = c>", "< >", "<a\n\tb\r=1>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		if err == nil && doc == nil {
			t.Fatal("nil document without error")
		}
		if doc != nil {
			// The finalize pass must leave consistent ranges.
			doc.Walk(func(n *Node) {
				if n.TextStart > n.TextEnd {
					t.Fatalf("node %s has inverted text range", n.Tag)
				}
			})
		}
	})
}
