package htmldom

import "testing"

// FuzzParse asserts the parser's leniency invariant: on any input it
// either returns a document or an error, and never panics. The seed corpus
// covers the tricky syntactic corners; `go test -fuzz FuzzParse` explores
// beyond them.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		samplePage, "", "<", "</", "<!", "<!-", "<a b='", `<a b="x`, "<a/>",
		"<script>unterminated", "<p>a<p>b", "<td><tr><li>", "&amp;&bogus;",
		"<DIV CLASS='X'>y</DIV>", "<a b = c>", "< >", "<a\n\tb\r=1>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		if err == nil && doc == nil {
			t.Fatal("nil document without error")
		}
		if doc != nil {
			// The finalize pass must leave consistent ranges.
			doc.Walk(func(n *Node) {
				if n.TextStart > n.TextEnd {
					t.Fatalf("node %s has inverted text range", n.Tag)
				}
			})
		}
	})
}

// FuzzHTMLParse asserts the error-or-valid-result contract on corrupt
// documents: arbitrary bytes — including chaos-style truncation followed
// by parser-hostile suffixes — either parse into a document whose every
// node has ranges inside the source, or return an error. Never a panic.
func FuzzHTMLParse(f *testing.F) {
	for _, seed := range []string{
		samplePage, "", "\x00\"<!--[", "<table><tr><td>x" + "\x00\"<!--[",
		"<html><body><p>tex", "<!--never closed", "<a href=\"u", "\xff\xfe<p>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		// The prefilter's parse-hazard gate depends on Scan agreeing with
		// Parse on every input — same accept/reject decision, same message.
		scanErr := Scan(src)
		if (err == nil) != (scanErr == nil) {
			t.Fatalf("Scan/Parse disagree: Parse=%v Scan=%v", err, scanErr)
		}
		if err != nil {
			if err.Error() != scanErr.Error() {
				t.Fatalf("Scan/Parse error messages differ: Parse=%q Scan=%q", err, scanErr)
			}
			return
		}
		if doc == nil {
			t.Fatal("nil document without error")
		}
		doc.Walk(func(n *Node) {
			if n.TextStart > n.TextEnd {
				t.Fatalf("node %s has inverted text range", n.Tag)
			}
			// Every node's text range nests inside the root's: the global
			// text is built by the same pre-order walk, so an escape means
			// a broken finalize pass.
			if n.TextStart < doc.TextStart || n.TextEnd > doc.TextEnd {
				t.Fatalf("node %s range [%d,%d) escapes root range [%d,%d)",
					n.Tag, n.TextStart, n.TextEnd, doc.TextStart, doc.TextEnd)
			}
		})
	})
}
