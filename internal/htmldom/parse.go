package htmldom

import (
	"fmt"
	"strings"
)

// voidElements never have children.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements contain raw text until their matching end tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// impliedEnd maps a tag to the set of open tags it implicitly closes.
var impliedEnd = map[string][]string{
	"li":     {"li"},
	"p":      {"p"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"tr":     {"td", "th", "tr"},
	"option": {"option"},
	"dt":     {"dt", "dd"},
	"dd":     {"dt", "dd"},
}

// Parse parses an HTML document and returns its document node. The parser
// is lenient: unmatched end tags are ignored and unclosed elements are
// closed at end of input. After parsing, every node carries its document
// order index and global text range.
func Parse(src string) (*Node, error) {
	p := &parser{src: src}
	doc := &Node{Type: DocumentNode, Tag: "#document"}
	p.stack = []*Node{doc}
	if err := p.run(); err != nil {
		return nil, err
	}
	finalize(doc)
	return doc, nil
}

// MustParse is Parse for statically known documents; it panics on error.
func MustParse(src string) *Node {
	doc, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return doc
}

type parser struct {
	src   string
	pos   int
	stack []*Node
}

func (p *parser) top() *Node { return p.stack[len(p.stack)-1] }

func (p *parser) appendChild(n *Node) {
	n.Parent = p.top()
	p.top().Children = append(p.top().Children, n)
}

func (p *parser) run() error {
	for p.pos < len(p.src) {
		if p.src[p.pos] != '<' {
			start := p.pos
			for p.pos < len(p.src) && p.src[p.pos] != '<' {
				p.pos++
			}
			text := decodeEntities(p.src[start:p.pos])
			p.appendChild(&Node{Type: TextNode, Text: text})
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				return fmt.Errorf("htmldom: unterminated comment at offset %d", p.pos)
			}
			p.appendChild(&Node{Type: CommentNode, Text: p.src[p.pos+4 : p.pos+4+end]})
			p.pos += 4 + end + 3
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "<!") || strings.HasPrefix(p.src[p.pos:], "<?") {
			end := strings.IndexByte(p.src[p.pos:], '>')
			if end < 0 {
				return fmt.Errorf("htmldom: unterminated declaration at offset %d", p.pos)
			}
			p.pos += end + 1
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "</") {
			if err := p.parseEndTag(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseStartTag(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseEndTag() error {
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return fmt.Errorf("htmldom: unterminated end tag at offset %d", p.pos)
	}
	tag := strings.ToLower(strings.TrimSpace(p.src[p.pos+2 : p.pos+end]))
	p.pos += end + 1
	// Pop to the matching open element; ignore the end tag if unmatched.
	for i := len(p.stack) - 1; i > 0; i-- {
		if p.stack[i].Tag == tag {
			p.stack = p.stack[:i]
			return nil
		}
	}
	return nil
}

func (p *parser) parseStartTag() error {
	i := p.pos + 1
	start := i
	for i < len(p.src) && isTagNameChar(p.src[i]) {
		i++
	}
	if i == start {
		// A stray '<': treat it as text.
		p.appendChild(&Node{Type: TextNode, Text: "<"})
		p.pos++
		return nil
	}
	tag := strings.ToLower(p.src[start:i])
	n := &Node{Type: ElementNode, Tag: tag}
	// attributes
	for {
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i >= len(p.src) {
			return fmt.Errorf("htmldom: unterminated start tag <%s>", tag)
		}
		if p.src[i] == '>' {
			i++
			break
		}
		if strings.HasPrefix(p.src[i:], "/>") {
			i += 2
			p.closeImplied(tag)
			p.appendChild(n)
			p.pos = i
			return nil
		}
		key, val, next, err := p.parseAttr(i)
		if err != nil {
			return err
		}
		n.Attrs = append(n.Attrs, Attr{Key: key, Val: val})
		i = next
	}
	p.pos = i
	p.closeImplied(tag)
	p.appendChild(n)
	if voidElements[tag] {
		return nil
	}
	if rawTextElements[tag] {
		closeTag := "</" + tag
		idx := strings.Index(strings.ToLower(p.src[p.pos:]), closeTag)
		if idx < 0 {
			n.Children = append(n.Children, &Node{Type: TextNode, Text: p.src[p.pos:], Parent: n})
			p.pos = len(p.src)
			return nil
		}
		if idx > 0 {
			n.Children = append(n.Children, &Node{Type: TextNode, Text: p.src[p.pos : p.pos+idx], Parent: n})
		}
		gt := strings.IndexByte(p.src[p.pos+idx:], '>')
		if gt < 0 {
			return fmt.Errorf("htmldom: unterminated </%s>", tag)
		}
		p.pos += idx + gt + 1
		return nil
	}
	p.stack = append(p.stack, n)
	return nil
}

// closeImplied pops open elements that the new tag implicitly terminates.
func (p *parser) closeImplied(tag string) {
	closers, ok := impliedEnd[tag]
	if !ok {
		return
	}
	top := p.top()
	if top.Type != ElementNode {
		return
	}
	for _, c := range closers {
		if top.Tag == c {
			p.stack = p.stack[:len(p.stack)-1]
			return
		}
	}
}

func (p *parser) parseAttr(i int) (key, val string, next int, err error) {
	start := i
	for i < len(p.src) && !isSpace(p.src[i]) && p.src[i] != '=' && p.src[i] != '>' && !strings.HasPrefix(p.src[i:], "/>") {
		i++
	}
	key = strings.ToLower(p.src[start:i])
	if key == "" {
		return "", "", 0, fmt.Errorf("htmldom: malformed attribute at offset %d", i)
	}
	for i < len(p.src) && isSpace(p.src[i]) {
		i++
	}
	if i >= len(p.src) || p.src[i] != '=' {
		return key, "", i, nil // boolean attribute
	}
	i++
	for i < len(p.src) && isSpace(p.src[i]) {
		i++
	}
	if i >= len(p.src) {
		return "", "", 0, fmt.Errorf("htmldom: unterminated attribute %q", key)
	}
	if p.src[i] == '"' || p.src[i] == '\'' {
		quote := p.src[i]
		i++
		start = i
		for i < len(p.src) && p.src[i] != quote {
			i++
		}
		if i >= len(p.src) {
			return "", "", 0, fmt.Errorf("htmldom: unterminated quoted attribute %q", key)
		}
		return key, decodeEntities(p.src[start:i]), i + 1, nil
	}
	start = i
	for i < len(p.src) && !isSpace(p.src[i]) && p.src[i] != '>' {
		i++
	}
	return key, decodeEntities(p.src[start:i]), i, nil
}

func isTagNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == ':'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

var entities = map[string]string{
	"&amp;": "&", "&lt;": "<", "&gt;": ">", "&quot;": `"`, "&#39;": "'",
	"&apos;": "'", "&nbsp;": " ",
}

func decodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	for k, v := range entities {
		s = strings.ReplaceAll(s, k, v)
	}
	return s
}

// finalize assigns document-order indices and global text ranges.
func finalize(doc *Node) {
	index := 0
	offset := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		n.Index = index
		index++
		n.TextStart = offset
		if n.Type == TextNode {
			offset += len(n.Text)
		}
		for _, c := range n.Children {
			walk(c)
		}
		n.TextEnd = offset
	}
	walk(doc)
}
