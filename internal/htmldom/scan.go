package htmldom

import (
	"fmt"
	"strings"
)

// Scan reports whether Parse would accept src, without building a DOM,
// decoding entities, or allocating nodes. It mirrors the parser's error
// conditions exactly — same control flow, same error messages — so that
//
//	(Scan(src) == nil) ⇔ (Parse(src) succeeds)
//
// holds for every input. The batch prefilter relies on this equivalence:
// a document that would fail to parse must be admitted to the full run
// path so the run emits the same structured parse-error record it would
// have emitted without prefiltering. Any change to Parse's error behavior
// must be replicated here; the agreement is fuzzed by FuzzHTMLParse.
func Scan(src string) error {
	pos := 0
	for pos < len(src) {
		if src[pos] != '<' {
			// Skip the text run with IndexByte (vectorized) — same
			// destination as the parser's byte loop: the next '<' or EOF.
			next := strings.IndexByte(src[pos:], '<')
			if next < 0 {
				break
			}
			pos += next
			continue
		}
		if strings.HasPrefix(src[pos:], "<!--") {
			end := strings.Index(src[pos+4:], "-->")
			if end < 0 {
				return fmt.Errorf("htmldom: unterminated comment at offset %d", pos)
			}
			pos += 4 + end + 3
			continue
		}
		if strings.HasPrefix(src[pos:], "<!") || strings.HasPrefix(src[pos:], "<?") {
			end := strings.IndexByte(src[pos:], '>')
			if end < 0 {
				return fmt.Errorf("htmldom: unterminated declaration at offset %d", pos)
			}
			pos += end + 1
			continue
		}
		if strings.HasPrefix(src[pos:], "</") {
			end := strings.IndexByte(src[pos:], '>')
			if end < 0 {
				return fmt.Errorf("htmldom: unterminated end tag at offset %d", pos)
			}
			pos += end + 1
			continue
		}
		next, err := scanStartTag(src, pos)
		if err != nil {
			return err
		}
		pos = next
	}
	return nil
}

// scanStartTag mirrors parser.parseStartTag: it validates one start tag
// (plus the raw-text run of a script/style element) starting at pos and
// returns the position after it.
func scanStartTag(src string, pos int) (int, error) {
	i := pos + 1
	start := i
	for i < len(src) && isTagNameChar(src[i]) {
		i++
	}
	if i == start {
		// A stray '<': the parser treats it as text.
		return pos + 1, nil
	}
	tag := strings.ToLower(src[start:i])
	for {
		for i < len(src) && isSpace(src[i]) {
			i++
		}
		if i >= len(src) {
			return 0, fmt.Errorf("htmldom: unterminated start tag <%s>", tag)
		}
		if src[i] == '>' {
			i++
			break
		}
		if strings.HasPrefix(src[i:], "/>") {
			return i + 2, nil // self-closing: no raw-text handling
		}
		next, err := scanAttr(src, i)
		if err != nil {
			return 0, err
		}
		i = next
	}
	if voidElements[tag] || !rawTextElements[tag] {
		return i, nil
	}
	// Raw-text element: the parser lowercases the remainder and searches
	// for the close tag. Mirror that verbatim (ToLower, not a per-byte
	// ASCII fold) so non-ASCII case-folding behaves identically.
	closeTag := "</" + tag
	idx := strings.Index(strings.ToLower(src[i:]), closeTag)
	if idx < 0 {
		return len(src), nil // unclosed raw text swallows the rest
	}
	gt := strings.IndexByte(src[i+idx:], '>')
	if gt < 0 {
		return 0, fmt.Errorf("htmldom: unterminated </%s>", tag)
	}
	return i + idx + gt + 1, nil
}

// scanAttr mirrors parser.parseAttr without materializing the key/value.
func scanAttr(src string, i int) (int, error) {
	start := i
	for i < len(src) && !isSpace(src[i]) && src[i] != '=' && src[i] != '>' && !strings.HasPrefix(src[i:], "/>") {
		i++
	}
	if i == start {
		return 0, fmt.Errorf("htmldom: malformed attribute at offset %d", i)
	}
	key := strings.ToLower(src[start:i])
	for i < len(src) && isSpace(src[i]) {
		i++
	}
	if i >= len(src) || src[i] != '=' {
		return i, nil // boolean attribute
	}
	i++
	for i < len(src) && isSpace(src[i]) {
		i++
	}
	if i >= len(src) {
		return 0, fmt.Errorf("htmldom: unterminated attribute %q", key)
	}
	if src[i] == '"' || src[i] == '\'' {
		quote := src[i]
		i++
		for i < len(src) && src[i] != quote {
			i++
		}
		if i >= len(src) {
			return 0, fmt.Errorf("htmldom: unterminated quoted attribute %q", key)
		}
		return i + 1, nil
	}
	for i < len(src) && !isSpace(src[i]) && src[i] != '>' {
		i++
	}
	return i, nil
}
