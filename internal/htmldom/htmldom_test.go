package htmldom

import (
	"strings"
	"testing"
)

const samplePage = `<!DOCTYPE html>
<html>
<head><title>Shop</title><script>var x = "<div>not a tag</div>";</script></head>
<body>
<!-- product list -->
<div class="list" id="main">
  <div class="product"><span class="name">Widget</span><span class="price">$9.99</span></div>
  <div class="product"><span class="name">Gadget</span><span class="price">$19.50</span></div>
</div>
<ul><li>one<li>two<li>three</ul>
<p>first<p>second</p>
<img src="x.png"><br/>
</body>
</html>`

func parseSample(t *testing.T) *Node {
	t.Helper()
	doc, err := Parse(samplePage)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseBasicStructure(t *testing.T) {
	doc := parseSample(t)
	html := doc.Find(func(n *Node) bool { return n.Tag == "html" })
	if html == nil {
		t.Fatal("no html element")
	}
	body := doc.Find(func(n *Node) bool { return n.Tag == "body" })
	if body == nil || body.Parent.Tag != "html" {
		t.Fatal("body not under html")
	}
	products := doc.FindAll(func(n *Node) bool { return n.HasClass("product") })
	if len(products) != 2 {
		t.Fatalf("got %d products, want 2", len(products))
	}
}

func TestParseAttributes(t *testing.T) {
	doc := parseSample(t)
	list := doc.Find(func(n *Node) bool { return n.Tag == "div" })
	if v, ok := list.Attr("class"); !ok || v != "list" {
		t.Fatalf("class = %q, %v", v, ok)
	}
	if v, ok := list.Attr("id"); !ok || v != "main" {
		t.Fatalf("id = %q, %v", v, ok)
	}
	if _, ok := list.Attr("nope"); ok {
		t.Fatal("phantom attribute")
	}
	if !list.HasClass("list") || list.HasClass("li") {
		t.Fatal("HasClass broken")
	}
}

func TestParseAttributeForms(t *testing.T) {
	doc := MustParse(`<div a="x y" b='z' c=bare d></div>`)
	n := doc.Find(func(n *Node) bool { return n.Tag == "div" })
	for _, tt := range []struct{ k, v string }{{"a", "x y"}, {"b", "z"}, {"c", "bare"}, {"d", ""}} {
		if v, ok := n.Attr(tt.k); !ok || v != tt.v {
			t.Errorf("attr %s = %q, %v; want %q", tt.k, v, ok, tt.v)
		}
	}
}

func TestImpliedEndTags(t *testing.T) {
	doc := parseSample(t)
	lis := doc.FindAll(func(n *Node) bool { return n.Tag == "li" })
	if len(lis) != 3 {
		t.Fatalf("got %d li elements, want 3", len(lis))
	}
	for _, li := range lis {
		if li.Parent.Tag != "ul" {
			t.Fatalf("li nested under %s, want ul", li.Parent.Tag)
		}
	}
	ps := doc.FindAll(func(n *Node) bool { return n.Tag == "p" })
	if len(ps) != 2 {
		t.Fatalf("got %d p elements, want 2", len(ps))
	}
	if ps[1].Parent.Tag != "body" {
		t.Fatal("second p should be a sibling of the first")
	}
}

func TestVoidAndSelfClosing(t *testing.T) {
	doc := parseSample(t)
	img := doc.Find(func(n *Node) bool { return n.Tag == "img" })
	if img == nil || len(img.Children) != 0 {
		t.Fatal("img should be void")
	}
	br := doc.Find(func(n *Node) bool { return n.Tag == "br" })
	if br == nil {
		t.Fatal("self-closing br missing")
	}
	// Content after the void element must not nest inside it.
	if img.Parent.Tag != "body" {
		t.Fatalf("img parent = %s", img.Parent.Tag)
	}
}

func TestRawTextScript(t *testing.T) {
	doc := parseSample(t)
	script := doc.Find(func(n *Node) bool { return n.Tag == "script" })
	if script == nil {
		t.Fatal("no script")
	}
	if !strings.Contains(script.Children[0].Text, "<div>not a tag</div>") {
		t.Fatalf("script text = %q", script.Children[0].Text)
	}
	// The fake div inside the script must not become an element.
	divs := doc.FindAll(func(n *Node) bool { return n.Tag == "div" })
	if len(divs) != 3 {
		t.Fatalf("got %d real divs, want 3", len(divs))
	}
}

func TestCommentsIgnoredInText(t *testing.T) {
	doc := MustParse(`<p>a<!-- hidden -->b</p>`)
	p := doc.Find(func(n *Node) bool { return n.Tag == "p" })
	if got := p.TextContent(); got != "ab" {
		t.Fatalf("TextContent = %q", got)
	}
}

func TestEntities(t *testing.T) {
	doc := MustParse(`<p title="a&amp;b">1 &lt; 2 &amp; 3 &gt; 2</p>`)
	p := doc.Find(func(n *Node) bool { return n.Tag == "p" })
	if got := p.TextContent(); got != "1 < 2 & 3 > 2" {
		t.Fatalf("TextContent = %q", got)
	}
	if v, _ := p.Attr("title"); v != "a&b" {
		t.Fatalf("title = %q", v)
	}
}

func TestTextContentAndRanges(t *testing.T) {
	doc := MustParse(`<div><span>ab</span><span>cd</span></div>`)
	div := doc.Find(func(n *Node) bool { return n.Tag == "div" })
	if div.TextContent() != "abcd" {
		t.Fatalf("TextContent = %q", div.TextContent())
	}
	spans := doc.FindAll(func(n *Node) bool { return n.Tag == "span" })
	if spans[0].TextStart != 0 || spans[0].TextEnd != 2 {
		t.Fatalf("span0 range = [%d,%d)", spans[0].TextStart, spans[0].TextEnd)
	}
	if spans[1].TextStart != 2 || spans[1].TextEnd != 4 {
		t.Fatalf("span1 range = [%d,%d)", spans[1].TextStart, spans[1].TextEnd)
	}
	if div.TextStart != 0 || div.TextEnd != 4 {
		t.Fatalf("div range = [%d,%d)", div.TextStart, div.TextEnd)
	}
}

func TestDocumentOrderIndices(t *testing.T) {
	doc := parseSample(t)
	last := -1
	doc.Walk(func(n *Node) {
		if n.Index <= last {
			t.Fatalf("indices not strictly increasing: %d after %d", n.Index, last)
		}
		last = n.Index
	})
}

func TestIsAncestorOf(t *testing.T) {
	doc := parseSample(t)
	body := doc.Find(func(n *Node) bool { return n.Tag == "body" })
	name := doc.Find(func(n *Node) bool { return n.HasClass("name") })
	if !body.IsAncestorOf(name) || name.IsAncestorOf(body) {
		t.Fatal("IsAncestorOf broken")
	}
	if !name.IsAncestorOf(name) {
		t.Fatal("a node should be its own ancestor")
	}
}

func TestSiblingIndexSameTag(t *testing.T) {
	doc := parseSample(t)
	products := doc.FindAll(func(n *Node) bool { return n.HasClass("product") })
	if products[0].SiblingIndexSameTag() != 1 || products[1].SiblingIndexSameTag() != 2 {
		t.Fatalf("sibling indices = %d, %d", products[0].SiblingIndexSameTag(), products[1].SiblingIndexSameTag())
	}
}

func TestPathFromRoot(t *testing.T) {
	doc := parseSample(t)
	name := doc.Find(func(n *Node) bool { return n.HasClass("name") })
	chain := name.PathFromRoot(doc)
	if len(chain) == 0 || chain[len(chain)-1] != name {
		t.Fatalf("chain = %v", chain)
	}
	tagChain := make([]string, len(chain))
	for i, n := range chain {
		tagChain[i] = n.Tag
	}
	want := "html body div div span"
	if strings.Join(tagChain, " ") != want {
		t.Fatalf("chain tags = %q, want %q", strings.Join(tagChain, " "), want)
	}
	other := MustParse("<p></p>")
	if name.PathFromRoot(other) != nil {
		t.Fatal("chain across documents should be nil")
	}
}

func TestUnmatchedEndTagIgnored(t *testing.T) {
	doc := MustParse(`<div>a</span>b</div>`)
	div := doc.Find(func(n *Node) bool { return n.Tag == "div" })
	if div.TextContent() != "ab" {
		t.Fatalf("TextContent = %q", div.TextContent())
	}
}

func TestUnclosedElementsClosedAtEOF(t *testing.T) {
	doc := MustParse(`<div><span>a`)
	span := doc.Find(func(n *Node) bool { return n.Tag == "span" })
	if span == nil || span.TextContent() != "a" {
		t.Fatal("unclosed elements mishandled")
	}
}

func TestStrayLtIsText(t *testing.T) {
	doc := MustParse(`<p>1 < 2</p>`)
	p := doc.Find(func(n *Node) bool { return n.Tag == "p" })
	if p.TextContent() != "1 < 2" {
		t.Fatalf("TextContent = %q", p.TextContent())
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`<p><!-- unterminated`,
		`<p attr="unterminated`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestChildElements(t *testing.T) {
	doc := MustParse(`<div>text<span></span>more<b></b></div>`)
	div := doc.Find(func(n *Node) bool { return n.Tag == "div" })
	kids := div.ChildElements()
	if len(kids) != 2 || kids[0].Tag != "span" || kids[1].Tag != "b" {
		t.Fatalf("ChildElements = %v", kids)
	}
}

func TestParseArbitraryInputNoPanic(t *testing.T) {
	// The parser is lenient: any byte soup either parses or returns an
	// error, but never panics.
	seeds := []string{
		"", "<", ">", "<<>>", "</", "<!", "<a", "<a b", "<a b=", `<a b="`,
		"<a/><b></a></b>", "<script>", "<p>&bogus;</p>", "< p>", "<-->",
		"plain text only", "<a b='x' c>text</a", strings.Repeat("<div>", 50),
	}
	rng := uint64(12345)
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	for i := 0; i < 200; i++ {
		n := int(next() % 40)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(next() % 96) // printable-ish range incl. < > / = "
		}
		seeds = append(seeds, "<"+string(b))
	}
	for _, src := range seeds {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			doc, err := Parse(src)
			if err == nil && doc == nil {
				t.Fatalf("Parse(%q) returned nil doc without error", src)
			}
		}()
	}
}
