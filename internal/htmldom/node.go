// Package htmldom is a small HTML parser and DOM substrate for the webpage
// instantiation of FlashExtract (§5.2). It handles the common subset of
// HTML needed for data extraction from rendered pages: elements with
// attributes, void and self-closing elements, raw-text elements (script,
// style), comments, doctypes, character entities, and the usual implied
// end tags (li, p, td, tr, …).
//
// Beyond the tree structure, the package assigns every node a global text
// range: the offsets of its text content within the concatenation of all
// document text. This gives intra-node substring regions a canonical,
// node-independent representation, which the webpage DSL relies on.
package htmldom

import "strings"

// NodeType discriminates DOM node kinds.
type NodeType int

// The node kinds produced by Parse.
const (
	DocumentNode NodeType = iota
	ElementNode
	TextNode
	CommentNode
)

// Attr is one HTML attribute.
type Attr struct {
	Key, Val string
}

// Node is a DOM node.
type Node struct {
	Type     NodeType
	Tag      string // lowercase tag name for elements
	Attrs    []Attr
	Parent   *Node
	Children []*Node
	Text     string // text content for text and comment nodes

	// Index is the node's position in document (pre-)order.
	Index int
	// TextStart and TextEnd delimit the node's text content within the
	// document's global text (see Document text in the package comment).
	TextStart, TextEnd int
}

// Attr returns the value of the attribute with the given key.
func (n *Node) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// HasClass reports whether the node's class attribute contains the given
// class name.
func (n *Node) HasClass(class string) bool {
	v, ok := n.Attr("class")
	if !ok {
		return false
	}
	for _, c := range strings.Fields(v) {
		if c == class {
			return true
		}
	}
	return false
}

// TextContent returns the concatenated text of all descendant text nodes.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.writeText(&b)
	return b.String()
}

func (n *Node) writeText(b *strings.Builder) {
	if n.Type == TextNode {
		b.WriteString(n.Text)
		return
	}
	if n.Type == CommentNode {
		return
	}
	for _, c := range n.Children {
		c.writeText(b)
	}
}

// ChildElements returns the element children of n.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Type == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// IsAncestorOf reports whether n is an ancestor of other (or n == other).
func (n *Node) IsAncestorOf(other *Node) bool {
	for cur := other; cur != nil; cur = cur.Parent {
		if cur == n {
			return true
		}
	}
	return false
}

// SiblingIndexSameTag returns the 1-based position of n among its parent's
// element children with the same tag.
func (n *Node) SiblingIndexSameTag() int {
	if n.Parent == nil {
		return 1
	}
	idx := 0
	for _, c := range n.Parent.ChildElements() {
		if c.Tag == n.Tag {
			idx++
		}
		if c == n {
			return idx
		}
	}
	return 1
}

// Walk visits n and all descendants in document order.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Find returns the first descendant element (in document order) accepted
// by the predicate, or nil.
func (n *Node) Find(pred func(*Node) bool) *Node {
	var found *Node
	n.Walk(func(m *Node) {
		if found == nil && m.Type == ElementNode && pred(m) {
			found = m
		}
	})
	return found
}

// FindAll returns all descendant elements accepted by the predicate in
// document order.
func (n *Node) FindAll(pred func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(m *Node) {
		if m.Type == ElementNode && pred(m) {
			out = append(out, m)
		}
	})
	return out
}

// PathFromRoot returns the chain of elements from (excluding) root down to
// n, or nil when n is not a descendant of root.
func (n *Node) PathFromRoot(root *Node) []*Node {
	var rev []*Node
	for cur := n; cur != nil; cur = cur.Parent {
		if cur == root {
			// reverse
			out := make([]*Node, len(rev))
			for i, m := range rev {
				out[len(rev)-1-i] = m
			}
			return out
		}
		rev = append(rev, cur)
	}
	return nil
}
