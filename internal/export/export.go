// Package export renders extracted schema instances into the output
// formats the FlashExtract user experience offers (§2): JSON, XML, and the
// flat relational CSV view that enables spreadsheet workflows such as
// SUM-over-a-column and chart recommendations.
package export

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"flashextract/internal/engine"
	"flashextract/internal/schema"
)

// ToJSON renders an instance as indented JSON. Struct element order
// follows the schema; Int and Float leaves become JSON numbers; null
// instances become null.
func ToJSON(in *engine.Instance) string {
	var b strings.Builder
	writeJSON(&b, in, 0)
	b.WriteByte('\n')
	return b.String()
}

// JSONValue renders an instance as a single compact JSON value, verified
// with json.Valid — the form the batch runtime embeds in NDJSON records.
// An error means the rendered value failed validation, which writeJSONLeaf's
// number normalization is designed to make impossible.
func JSONValue(in *engine.Instance) (json.RawMessage, error) {
	var b strings.Builder
	writeJSON(&b, in, 0)
	var buf bytes.Buffer
	if err := json.Compact(&buf, []byte(b.String())); err != nil {
		return nil, fmt.Errorf("export: instance rendered to invalid JSON: %w", err)
	}
	out := buf.Bytes()
	if !json.Valid(out) {
		return nil, fmt.Errorf("export: instance rendered to invalid JSON")
	}
	return out, nil
}

func writeJSON(b *strings.Builder, in *engine.Instance, depth int) {
	switch {
	case in.IsNull():
		b.WriteString("null")
	case in.Kind == engine.LeafInstance:
		writeJSONLeaf(b, in)
	case in.Kind == engine.StructInstance:
		b.WriteString("{")
		for i, e := range in.Elements {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString("\n")
			indentJSON(b, depth+1)
			key, _ := json.Marshal(e.Name)
			b.Write(key)
			b.WriteString(": ")
			writeJSON(b, e.Value, depth+1)
		}
		b.WriteString("\n")
		indentJSON(b, depth)
		b.WriteString("}")
	case in.Kind == engine.SeqInstance:
		if len(in.Items) == 0 {
			b.WriteString("[]")
			return
		}
		b.WriteString("[")
		for i, it := range in.Items {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString("\n")
			indentJSON(b, depth+1)
			writeJSON(b, it, depth+1)
		}
		b.WriteString("\n")
		indentJSON(b, depth)
		b.WriteString("]")
	}
}

func writeJSONLeaf(b *strings.Builder, in *engine.Instance) {
	text := strings.TrimSpace(in.Text)
	switch in.Type {
	case schema.Int, schema.Float:
		if text != "" && in.Type.ValidValue(text) {
			if n, ok := normalizeJSONNumber(text); ok {
				b.WriteString(n)
				return
			}
		}
	}
	quoted, _ := json.Marshal(in.Text)
	b.Write(quoted)
}

// normalizeJSONNumber rewrites a numeric leaf value into the RFC 8259
// number grammar: "+" signs are dropped, leading zeros stripped ("007" →
// "7"), and bare-dot mantissas given their leading digit (".5" → "0.5",
// "3." → "3"). It reports false for text that still is not a valid JSON
// number (e.g. "NaN"), in which case the caller quotes the raw text.
func normalizeJSONNumber(s string) (string, bool) {
	neg := false
	switch s[0] {
	case '+':
		s = s[1:]
	case '-':
		neg, s = true, s[1:]
	}
	if s == "" {
		return "", false
	}
	mant, exp := s, ""
	if i := strings.IndexAny(s, "eE"); i >= 0 {
		mant, exp = s[:i], s[i:]
	}
	intp, frac := mant, ""
	hasDot := false
	if i := strings.IndexByte(mant, '.'); i >= 0 {
		intp, frac, hasDot = mant[:i], mant[i+1:], true
	}
	intp = strings.TrimLeft(intp, "0")
	if intp == "" {
		intp = "0"
	}
	var out strings.Builder
	if neg {
		out.WriteByte('-')
	}
	out.WriteString(intp)
	if hasDot {
		if frac == "" {
			frac = "0"
		}
		out.WriteByte('.')
		out.WriteString(frac)
	}
	out.WriteString(exp)
	res := out.String()
	if !json.Valid([]byte(res)) {
		return "", false
	}
	return res, true
}

func indentJSON(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// ToXML renders an instance as an XML document with the given root
// element name. Sequence items are wrapped in <item> elements; null
// instances render as empty elements.
func ToXML(root string, in *engine.Instance) string {
	var b strings.Builder
	b.WriteString("<?xml version=\"1.0\"?>\n")
	writeXML(&b, root, in, 0)
	return b.String()
}

func writeXML(b *strings.Builder, tag string, in *engine.Instance, depth int) {
	indent := strings.Repeat("  ", depth)
	switch {
	case in.IsNull():
		fmt.Fprintf(b, "%s<%s/>\n", indent, tag)
	case in.Kind == engine.LeafInstance:
		fmt.Fprintf(b, "%s<%s>%s</%s>\n", indent, tag, escapeXML(in.Text), tag)
	case in.Kind == engine.StructInstance:
		fmt.Fprintf(b, "%s<%s>\n", indent, tag)
		for _, e := range in.Elements {
			writeXML(b, e.Name, e.Value, depth+1)
		}
		fmt.Fprintf(b, "%s</%s>\n", indent, tag)
	case in.Kind == engine.SeqInstance:
		fmt.Fprintf(b, "%s<%s>\n", indent, tag)
		for _, it := range in.Items {
			writeXML(b, "item", it, depth+1)
		}
		fmt.Fprintf(b, "%s</%s>\n", indent, tag)
	}
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}

// ToCSV renders the relational view of an instance for the given schema:
// one column per leaf field (named by its schema path), one row per
// combination of nested sequence items, with ancestor values repeated —
// the flat table the paper's spreadsheet tasks operate on.
func ToCSV(m *schema.Schema, in *engine.Instance) string {
	cols := leafPaths(m)
	top := ""
	if m.TopSeq != nil {
		top = "item"
	}
	rows := flatten(in, top)
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvQuote(c))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		for i, c := range cols {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvQuote(row[c]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// leafPaths lists the dotted paths of all leaf fields in schema order.
func leafPaths(m *schema.Schema) []string {
	var out []string
	for _, fi := range m.Fields() {
		if fi.Field.IsLeaf() {
			out = append(out, fi.Path)
		}
	}
	return out
}

// flatten converts an instance into rows mapping leaf path → value. A
// sequence concatenates its items' rows (items share the sequence's
// element path, matching schema.FieldInfo.Path); a struct cross-joins its
// elements' rows, so nested sequences multiply with repeated ancestor
// values — the relational semantics of nested records.
func flatten(in *engine.Instance, path string) []map[string]string {
	switch {
	case in.IsNull():
		return []map[string]string{{}}
	case in.Kind == engine.LeafInstance:
		return []map[string]string{{path: in.Text}}
	case in.Kind == engine.SeqInstance:
		var out []map[string]string
		for _, it := range in.Items {
			out = append(out, flatten(it, path)...)
		}
		if out == nil {
			out = []map[string]string{{}}
		}
		return out
	default: // struct
		rows := []map[string]string{{}}
		for _, e := range in.Elements {
			childPath := e.Name
			if path != "" {
				childPath = path + "." + e.Name
			}
			rows = crossJoin(rows, flatten(e.Value, childPath))
		}
		return rows
	}
}

func crossJoin(a, b []map[string]string) []map[string]string {
	var out []map[string]string
	for _, ra := range a {
		for _, rb := range b {
			merged := make(map[string]string, len(ra)+len(rb))
			for k, v := range ra {
				merged[k] = v
			}
			for k, v := range rb {
				merged[k] = v
			}
			out = append(out, merged)
		}
	}
	return out
}

func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
