package export

import (
	"encoding/json"
	"encoding/xml"
	"io"
	"strings"
	"testing"

	"flashextract/internal/engine"
	"flashextract/internal/schema"
)

func leaf(text string, t schema.LeafType) *engine.Instance {
	return &engine.Instance{Kind: engine.LeafInstance, Text: text, Type: t}
}

func null() *engine.Instance { return &engine.Instance{Kind: engine.NullInstance} }

func structOf(elems ...engine.NamedInstance) *engine.Instance {
	return &engine.Instance{Kind: engine.StructInstance, Elements: elems}
}

func seqOf(items ...*engine.Instance) *engine.Instance {
	return &engine.Instance{Kind: engine.SeqInstance, Items: items}
}

// sample builds the instance for
// Seq([g] Struct(Name: [a] String, Mass: [b] Int, Readings: Seq([r] Float)))
func sampleSchema() *schema.Schema {
	return schema.MustParse(`Seq([g] Struct(Name: [a] String, Mass: [b] Int, Readings: Seq([r] Float)))`)
}

func sampleInstance() *engine.Instance {
	return seqOf(
		structOf(
			engine.NamedInstance{Name: "Name", Value: leaf("Be", schema.String)},
			engine.NamedInstance{Name: "Mass", Value: leaf("9", schema.Int)},
			engine.NamedInstance{Name: "Readings", Value: seqOf(leaf("0.07", schema.Float), leaf("0.08", schema.Float))},
		),
		structOf(
			engine.NamedInstance{Name: "Name", Value: leaf("Sc", schema.String)},
			engine.NamedInstance{Name: "Mass", Value: null()},
			engine.NamedInstance{Name: "Readings", Value: seqOf()},
		),
	)
}

func TestToJSONStructure(t *testing.T) {
	out := ToJSON(sampleInstance())
	var v any
	if err := json.Unmarshal([]byte(out), &v); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	arr, ok := v.([]any)
	if !ok || len(arr) != 2 {
		t.Fatalf("JSON top level = %T", v)
	}
	first := arr[0].(map[string]any)
	if first["Name"] != "Be" {
		t.Fatalf("Name = %v", first["Name"])
	}
	if first["Mass"] != float64(9) {
		t.Fatalf("Mass should be a JSON number, got %T %v", first["Mass"], first["Mass"])
	}
	second := arr[1].(map[string]any)
	if second["Mass"] != nil {
		t.Fatalf("null Mass = %v", second["Mass"])
	}
	if rs, ok := second["Readings"].([]any); !ok || len(rs) != 0 {
		t.Fatalf("empty Readings = %v", second["Readings"])
	}
}

func TestToJSONEscaping(t *testing.T) {
	out := ToJSON(leaf("say \"hi\"\nnewline", schema.String))
	var s string
	if err := json.Unmarshal([]byte(out), &s); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if s != "say \"hi\"\nnewline" {
		t.Fatalf("round trip = %q", s)
	}
}

func TestToJSONNumberNormalization(t *testing.T) {
	cases := []struct {
		in   *engine.Instance
		want string
	}{
		{leaf("+7", schema.Int), "7"},
		{leaf("-3.", schema.Float), "-3.0"},
		{leaf(" 12 ", schema.Int), "12"},
		{leaf("not a number", schema.Int), `"not a number"`},
		// RFC 8259 forbids leading zeros and bare-dot mantissas; these
		// used to be written bare and produced invalid JSON.
		{leaf("007", schema.Int), "7"},
		{leaf("-007", schema.Int), "-7"},
		{leaf("+007", schema.Int), "7"},
		{leaf("000", schema.Int), "0"},
		{leaf("-000", schema.Int), "-0"},
		{leaf(".5", schema.Float), "0.5"},
		{leaf("+.5", schema.Float), "0.5"},
		{leaf("-.5", schema.Float), "-0.5"},
		{leaf("00.5", schema.Float), "0.5"},
		{leaf("007.25", schema.Float), "7.25"},
		{leaf(".", schema.Float), `"."`},
		{leaf("NaN", schema.Float), `"NaN"`},
		{leaf("Inf", schema.Float), `"Inf"`},
		{leaf("0x1p2", schema.Float), `"0x1p2"`},
		{leaf("", schema.Int), `""`},
	}
	for _, c := range cases {
		got := strings.TrimSpace(ToJSON(c.in))
		if got != c.want {
			t.Errorf("ToJSON(%q) = %s, want %s", c.in.Text, got, c.want)
		}
		if !json.Valid([]byte(got)) {
			t.Errorf("ToJSON(%q) = %s is not valid JSON", c.in.Text, got)
		}
	}
}

// TestToJSONAlwaysValid asserts the end-to-end guarantee the batch runtime
// relies on: every ToJSON output passes json.Valid, whatever text ends up
// in a numeric leaf.
func TestToJSONAlwaysValid(t *testing.T) {
	texts := []string{
		"007", ".5", "+.5", "-.", "0", "-0", "3.", "00", "1e5", "1E05",
		"--3", "+", "-", ".", "..", "0.0.0", "NaN", "-Inf", "0x10", "٠٧",
		"9999999999999999999999999", " 42\n", "", "null", `"`,
	}
	for _, txt := range texts {
		for _, typ := range []schema.LeafType{schema.String, schema.Int, schema.Float} {
			inst := seqOf(structOf(engine.NamedInstance{Name: "V", Value: leaf(txt, typ)}))
			out := ToJSON(inst)
			if !json.Valid([]byte(out)) {
				t.Errorf("ToJSON(%q as %v) emits invalid JSON:\n%s", txt, typ, out)
			}
		}
	}
}

// xmlItem mirrors one <item> of the sample instance for decoding with
// encoding/xml.
type xmlItem struct {
	Name     string   `xml:"Name"`
	Mass     string   `xml:"Mass"`
	Readings []string `xml:"Readings>item"`
}

// TestToXMLRoundTrip decodes ToXML output with encoding/xml and checks the
// values survive, including characters that need escaping.
func TestToXMLRoundTrip(t *testing.T) {
	inst := seqOf(
		structOf(
			engine.NamedInstance{Name: "Name", Value: leaf(`a<b&c>"d"'e'`, schema.String)},
			engine.NamedInstance{Name: "Mass", Value: leaf("9", schema.Int)},
			engine.NamedInstance{Name: "Readings", Value: seqOf(leaf("0.07", schema.Float), leaf("<1>", schema.Float))},
		),
	)
	out := ToXML("samples", inst)
	var decoded struct {
		Items []xmlItem `xml:"item"`
	}
	if err := xml.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("ToXML output unparseable by encoding/xml: %v\n%s", err, out)
	}
	if len(decoded.Items) != 1 {
		t.Fatalf("decoded %d items, want 1:\n%s", len(decoded.Items), out)
	}
	it := decoded.Items[0]
	if it.Name != `a<b&c>"d"'e'` {
		t.Errorf("Name round-tripped to %q", it.Name)
	}
	if it.Mass != "9" || len(it.Readings) != 2 || it.Readings[1] != "<1>" {
		t.Errorf("decoded item = %+v", it)
	}
}

// TestToXMLTagNamesValid parses ToXML output for every field name of the
// sample schema: schema field names become tags, so they must stay within
// XML's name grammar for the emitted document to parse at all.
func TestToXMLTagNamesValid(t *testing.T) {
	out := ToXML("data", sampleInstance())
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ToXML output is not well-formed: %v\n%s", err, out)
		}
	}
}

// TestToCSVNullStructElements checks the cross-join when whole struct
// elements — including a nested sequence — are null: the row must still
// appear once, with blanks in the null columns.
func TestToCSVNullStructElements(t *testing.T) {
	m := schema.MustParse(`Seq([g] Struct(Name: [a] String, Mass: [b] Int, Readings: Seq([r] Float)))`)
	inst := seqOf(
		structOf(
			engine.NamedInstance{Name: "Name", Value: null()},
			engine.NamedInstance{Name: "Mass", Value: null()},
			engine.NamedInstance{Name: "Readings", Value: null()},
		),
		structOf(
			engine.NamedInstance{Name: "Name", Value: leaf("Sc", schema.String)},
			engine.NamedInstance{Name: "Mass", Value: null()},
			engine.NamedInstance{Name: "Readings", Value: seqOf(leaf("1.5", schema.Float))},
		),
	)
	out := ToCSV(m, inst)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	want := []string{"item.Name,item.Mass,item.Readings", ",,", "Sc,,1.5"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), out)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestToXML(t *testing.T) {
	out := ToXML("samples", sampleInstance())
	for _, want := range []string{
		`<?xml version="1.0"?>`,
		"<samples>", "<item>", "<Name>Be</Name>", "<Mass>9</Mass>",
		"<Readings>", "<item>0.07</item>", "<Mass/>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("XML missing %q:\n%s", want, out)
		}
	}
}

func TestToXMLEscaping(t *testing.T) {
	out := ToXML("r", leaf(`a<b&c>"d"`, schema.String))
	if !strings.Contains(out, "a&lt;b&amp;c&gt;&quot;d&quot;") {
		t.Fatalf("XML escaping broken:\n%s", out)
	}
}

func TestToCSVRelationalView(t *testing.T) {
	out := ToCSV(sampleSchema(), sampleInstance())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "item.Name,item.Mass,item.Readings" {
		t.Fatalf("header = %q", lines[0])
	}
	// Row expansion: Be has two readings (2 rows), Sc has none (1 row with
	// blanks).
	if len(lines) != 4 {
		t.Fatalf("got %d data rows, want 3:\n%s", len(lines)-1, out)
	}
	if lines[1] != "Be,9,0.07" || lines[2] != "Be,9,0.08" {
		t.Fatalf("rows = %q, %q", lines[1], lines[2])
	}
	if lines[3] != "Sc,," {
		t.Fatalf("null row = %q", lines[3])
	}
}

func TestToCSVQuoting(t *testing.T) {
	m := schema.MustParse(`Seq([x] String)`)
	inst := seqOf(leaf(`a,b "q"`, schema.String))
	out := ToCSV(m, inst)
	if !strings.Contains(out, `"a,b ""q"""`) {
		t.Fatalf("CSV quoting broken:\n%s", out)
	}
}

func TestToCSVTopStruct(t *testing.T) {
	m := schema.MustParse(`Struct(A: [a] String, B: [b] Int)`)
	inst := structOf(
		engine.NamedInstance{Name: "A", Value: leaf("x", schema.String)},
		engine.NamedInstance{Name: "B", Value: leaf("5", schema.Int)},
	)
	out := ToCSV(m, inst)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "A,B" || lines[1] != "x,5" {
		t.Fatalf("top-struct CSV:\n%s", out)
	}
}

func TestToJSONNull(t *testing.T) {
	if got := strings.TrimSpace(ToJSON(null())); got != "null" {
		t.Fatalf("null JSON = %q", got)
	}
	var nilInst *engine.Instance
	if got := strings.TrimSpace(ToJSON(nilInst)); got != "null" {
		t.Fatalf("nil JSON = %q", got)
	}
}
