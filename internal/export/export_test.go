package export

import (
	"encoding/json"
	"strings"
	"testing"

	"flashextract/internal/engine"
	"flashextract/internal/schema"
)

func leaf(text string, t schema.LeafType) *engine.Instance {
	return &engine.Instance{Kind: engine.LeafInstance, Text: text, Type: t}
}

func null() *engine.Instance { return &engine.Instance{Kind: engine.NullInstance} }

func structOf(elems ...engine.NamedInstance) *engine.Instance {
	return &engine.Instance{Kind: engine.StructInstance, Elements: elems}
}

func seqOf(items ...*engine.Instance) *engine.Instance {
	return &engine.Instance{Kind: engine.SeqInstance, Items: items}
}

// sample builds the instance for
// Seq([g] Struct(Name: [a] String, Mass: [b] Int, Readings: Seq([r] Float)))
func sampleSchema() *schema.Schema {
	return schema.MustParse(`Seq([g] Struct(Name: [a] String, Mass: [b] Int, Readings: Seq([r] Float)))`)
}

func sampleInstance() *engine.Instance {
	return seqOf(
		structOf(
			engine.NamedInstance{Name: "Name", Value: leaf("Be", schema.String)},
			engine.NamedInstance{Name: "Mass", Value: leaf("9", schema.Int)},
			engine.NamedInstance{Name: "Readings", Value: seqOf(leaf("0.07", schema.Float), leaf("0.08", schema.Float))},
		),
		structOf(
			engine.NamedInstance{Name: "Name", Value: leaf("Sc", schema.String)},
			engine.NamedInstance{Name: "Mass", Value: null()},
			engine.NamedInstance{Name: "Readings", Value: seqOf()},
		),
	)
}

func TestToJSONStructure(t *testing.T) {
	out := ToJSON(sampleInstance())
	var v any
	if err := json.Unmarshal([]byte(out), &v); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	arr, ok := v.([]any)
	if !ok || len(arr) != 2 {
		t.Fatalf("JSON top level = %T", v)
	}
	first := arr[0].(map[string]any)
	if first["Name"] != "Be" {
		t.Fatalf("Name = %v", first["Name"])
	}
	if first["Mass"] != float64(9) {
		t.Fatalf("Mass should be a JSON number, got %T %v", first["Mass"], first["Mass"])
	}
	second := arr[1].(map[string]any)
	if second["Mass"] != nil {
		t.Fatalf("null Mass = %v", second["Mass"])
	}
	if rs, ok := second["Readings"].([]any); !ok || len(rs) != 0 {
		t.Fatalf("empty Readings = %v", second["Readings"])
	}
}

func TestToJSONEscaping(t *testing.T) {
	out := ToJSON(leaf("say \"hi\"\nnewline", schema.String))
	var s string
	if err := json.Unmarshal([]byte(out), &s); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if s != "say \"hi\"\nnewline" {
		t.Fatalf("round trip = %q", s)
	}
}

func TestToJSONNumberNormalization(t *testing.T) {
	cases := []struct {
		in   *engine.Instance
		want string
	}{
		{leaf("+7", schema.Int), "7"},
		{leaf("-3.", schema.Float), "-3.0"},
		{leaf(" 12 ", schema.Int), "12"},
		{leaf("not a number", schema.Int), `"not a number"`},
	}
	for _, c := range cases {
		got := strings.TrimSpace(ToJSON(c.in))
		if got != c.want {
			t.Errorf("ToJSON(%q) = %s, want %s", c.in.Text, got, c.want)
		}
	}
}

func TestToXML(t *testing.T) {
	out := ToXML("samples", sampleInstance())
	for _, want := range []string{
		`<?xml version="1.0"?>`,
		"<samples>", "<item>", "<Name>Be</Name>", "<Mass>9</Mass>",
		"<Readings>", "<item>0.07</item>", "<Mass/>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("XML missing %q:\n%s", want, out)
		}
	}
}

func TestToXMLEscaping(t *testing.T) {
	out := ToXML("r", leaf(`a<b&c>"d"`, schema.String))
	if !strings.Contains(out, "a&lt;b&amp;c&gt;&quot;d&quot;") {
		t.Fatalf("XML escaping broken:\n%s", out)
	}
}

func TestToCSVRelationalView(t *testing.T) {
	out := ToCSV(sampleSchema(), sampleInstance())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "item.Name,item.Mass,item.Readings" {
		t.Fatalf("header = %q", lines[0])
	}
	// Row expansion: Be has two readings (2 rows), Sc has none (1 row with
	// blanks).
	if len(lines) != 4 {
		t.Fatalf("got %d data rows, want 3:\n%s", len(lines)-1, out)
	}
	if lines[1] != "Be,9,0.07" || lines[2] != "Be,9,0.08" {
		t.Fatalf("rows = %q, %q", lines[1], lines[2])
	}
	if lines[3] != "Sc,," {
		t.Fatalf("null row = %q", lines[3])
	}
}

func TestToCSVQuoting(t *testing.T) {
	m := schema.MustParse(`Seq([x] String)`)
	inst := seqOf(leaf(`a,b "q"`, schema.String))
	out := ToCSV(m, inst)
	if !strings.Contains(out, `"a,b ""q"""`) {
		t.Fatalf("CSV quoting broken:\n%s", out)
	}
}

func TestToCSVTopStruct(t *testing.T) {
	m := schema.MustParse(`Struct(A: [a] String, B: [b] Int)`)
	inst := structOf(
		engine.NamedInstance{Name: "A", Value: leaf("x", schema.String)},
		engine.NamedInstance{Name: "B", Value: leaf("5", schema.Int)},
	)
	out := ToCSV(m, inst)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "A,B" || lines[1] != "x,5" {
		t.Fatalf("top-struct CSV:\n%s", out)
	}
}

func TestToJSONNull(t *testing.T) {
	if got := strings.TrimSpace(ToJSON(null())); got != "null" {
		t.Fatalf("null JSON = %q", got)
	}
	var nilInst *engine.Instance
	if got := strings.TrimSpace(ToJSON(nilInst)); got != "null" {
		t.Fatalf("nil JSON = %q", got)
	}
}
