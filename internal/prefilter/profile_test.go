package prefilter

import "testing"

// TestBuildProfileFold checks the bit-space uppercase fold in
// buildProfile against the per-byte reference it replaced.
func TestBuildProfileFold(t *testing.T) {
	docs := []string{"", "ABCxyz", "AZaz@[`{", "Hello, World! 123", string([]byte{0, 64, 65, 90, 91, 96, 97, 122, 123, 255})}
	for _, d := range docs {
		got := buildProfile(d)
		var want profile
		for i := 0; i < len(d); i++ {
			want.mask.Set(d[i])
			want.foldMask.Set(foldByte(d[i]))
		}
		if got != want {
			t.Fatalf("profile mismatch for %q:\n got %v\nwant %v", d, got, want)
		}
	}
}
