package prefilter

import (
	"flashextract/internal/tokens"
	"flashextract/internal/xpath"
)

// ---- raw-byte substrate (textlang) --------------------------------------
//
// Ltext programs evaluate directly over the document bytes (or over lines,
// which are byte subranges), so token evidence translates to exact
// substring and byte-class requirements.

// classMask builds the byte mask of a character-class token.
func classMask(t tokens.Token) ByteMask {
	var m ByteMask
	for b := 0; b < 256; b++ {
		if t.MatchesByte(byte(b)) {
			m.Set(byte(b))
		}
	}
	return m
}

// CondTokens is the admission condition of a token sequence that must
// match contiguously somewhere in the raw document: maximal runs of
// literal tokens join into exact substring atoms, class tokens contribute
// byte-presence masks, and every token adds at least one byte to the
// minimum length.
func CondTokens(toks []tokens.Token) Cond {
	if len(toks) == 0 {
		return True()
	}
	cj := Conj{}
	run := ""
	flush := func() {
		if run != "" {
			cj.add(Atom{Kind: AtomSubstr, Lit: run})
			run = ""
		}
	}
	for _, t := range toks {
		if lit := t.Lit(); lit != "" {
			run += lit
			cj.MinLen += len(lit)
			continue
		}
		flush()
		cj.add(Atom{Kind: AtomByte, Mask: classMask(t)})
		cj.MinLen++ // a class token matches at least one byte
	}
	flush()
	return Cond{Disj: []Conj{cj}}
}

// CondRegex is CondTokens for a single regex: any match embeds the token
// sequence contiguously in the document.
func CondRegex(r tokens.Regex) Cond {
	return CondTokens(r)
}

// CondRegexPair is the admission condition of a PosSeq position pair
// over raw bytes. A position k requires Left to match a suffix ending at
// k and Right a prefix starting at k, so the concatenated token sequence
// occupies one contiguous byte range — literal runs join across the
// boundary. Both regexes empty never matches (tokens.RegexPair.Positions
// returns no positions for the vacuous pair).
func CondRegexPair(rr tokens.RegexPair) Cond {
	if len(rr.Left) == 0 && len(rr.Right) == 0 {
		return False()
	}
	all := make([]tokens.Token, 0, len(rr.Left)+len(rr.Right))
	all = append(all, rr.Left...)
	all = append(all, rr.Right...)
	return CondTokens(all)
}

// CondAttr is the admission condition of a position attribute over raw
// bytes: absolute positions only bound the region length, regex-relative
// positions inherit their pair's token evidence.
func CondAttr(a tokens.Attr) Cond {
	switch v := a.(type) {
	case tokens.AbsPos:
		return Cond{Disj: []Conj{{MinLen: absPosMinLen(v.K)}}}
	case tokens.RegPos:
		if v.K == 0 {
			return False() // RegPos with k = 0 always errors
		}
		return CondRegexPair(v.RR)
	}
	return True()
}

// absPosMinLen is the minimum region (hence document) length for AbsPos
// k to evaluate without an out-of-range error.
func absPosMinLen(k int) int {
	if k >= 0 {
		return k // position k needs len ≥ k
	}
	return -k - 1 // position len+k+1 ≥ 0 needs len ≥ -k-1
}

// ---- HTML text substrate (weblang) --------------------------------------
//
// Lweb position programs evaluate over a node's *text content*: entity-
// decoded text node runs concatenated across the subtree. A literal that
// spans two text nodes never appears contiguously in the source, and a
// decoded byte may come from an entity — so only per-byte presence
// survives, widened with '&' for every byte an entity can produce.

// entityProducible holds the bytes htmldom's entity table can decode to:
// & < > " ' and the non-breaking space.
var entityProducible = func() ByteMask {
	var m ByteMask
	for _, b := range []byte{'&', '<', '>', '"', '\'', ' '} {
		m.Set(b)
	}
	return m
}()

// htmlWiden widens a required-byte mask for entity decoding: when a
// required byte can be written as an entity, the source may hold '&'
// instead of the byte itself.
func htmlWiden(m ByteMask) ByteMask {
	if m.Intersects(entityProducible) {
		m.Set('&')
	}
	return m
}

func htmlByteMask(b byte) ByteMask {
	var m ByteMask
	m.Set(b)
	return htmlWiden(m)
}

// CondTokensHTML is CondTokens weakened for token sequences matched
// against HTML text content. Minimum lengths remain sound: every decoded
// text byte consumes at least one source byte, and markup only adds.
func CondTokensHTML(toks []tokens.Token) Cond {
	if len(toks) == 0 {
		return True()
	}
	cj := Conj{}
	for _, t := range toks {
		if lit := t.Lit(); lit != "" {
			for i := 0; i < len(lit); i++ {
				cj.add(Atom{Kind: AtomByte, Mask: htmlByteMask(lit[i])})
			}
			cj.MinLen += len(lit)
			continue
		}
		cj.add(Atom{Kind: AtomByte, Mask: htmlWiden(classMask(t))})
		cj.MinLen++
	}
	return Cond{Disj: []Conj{cj}}
}

// CondRegexPairHTML is CondRegexPair against HTML text content.
func CondRegexPairHTML(rr tokens.RegexPair) Cond {
	if len(rr.Left) == 0 && len(rr.Right) == 0 {
		return False()
	}
	all := make([]tokens.Token, 0, len(rr.Left)+len(rr.Right))
	all = append(all, rr.Left...)
	all = append(all, rr.Right...)
	return CondTokensHTML(all)
}

// CondAttrHTML is CondAttr against HTML text content.
func CondAttrHTML(a tokens.Attr) Cond {
	switch v := a.(type) {
	case tokens.AbsPos:
		return Cond{Disj: []Conj{{MinLen: absPosMinLen(v.K)}}}
	case tokens.RegPos:
		if v.K == 0 {
			return False()
		}
		return CondRegexPairHTML(v.RR)
	}
	return True()
}

// CondXPath is the admission condition of an XPath selection: every
// matched document embeds each named step as a start tag ("<tag",
// case-insensitive in HTML source) and each attribute predicate as its
// key plus the entity-safe runs of its value. Start tags of nested
// elements occupy disjoint source ranges, so their lengths sum into the
// minimum document size.
func CondXPath(p *xpath.Path) Cond {
	if p == nil || len(p.Steps) == 0 {
		return True()
	}
	cj := Conj{}
	for _, s := range p.Steps {
		if s.Tag != "*" {
			cj.add(Atom{Kind: AtomISubstr, Lit: "<" + s.Tag})
			cj.MinLen += len(s.Tag) + 1
		} else {
			cj.MinLen += 2 // any element is at least "<x"
		}
		for _, at := range s.Attrs {
			if at.Key != "" {
				// Keys are lowercased by both the HTML and the XPath
				// parser; the source spelling is a contiguous run in any
				// case mix.
				cj.add(Atom{Kind: AtomISubstr, Lit: at.Key})
				cj.MinLen += len(at.Key)
			}
			// Values are entity-decoded but not case-folded: runs free of
			// entity-producible bytes appear verbatim in the source.
			for _, run := range entitySafeRuns(at.Val) {
				cj.add(Atom{Kind: AtomSubstr, Lit: run})
			}
		}
	}
	return Cond{Disj: []Conj{cj}}
}

// entitySafeRuns splits s into maximal runs of bytes that entity decoding
// cannot have produced, i.e. bytes guaranteed to appear verbatim in the
// HTML source of an attribute value equal to s.
func entitySafeRuns(s string) []string {
	var runs []string
	start := -1
	for i := 0; i < len(s); i++ {
		if entityProducible.Has(s[i]) {
			if start >= 0 {
				runs = append(runs, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		runs = append(runs, s[start:])
	}
	return runs
}

// ---- CSV substrate (sheetlang) ------------------------------------------
//
// Lsps cell programs evaluate over grid cells loaded from CSV. Cell
// content bytes appear in the raw CSV except that a '"' in a cell is
// written doubled — so fragments between quotes survive verbatim.

// CondCellLiteral is the admission condition of some cell being exactly
// s: the quote-free fragments of s are raw substrings of the CSV.
func CondCellLiteral(s string) Cond {
	if s == "" {
		return True() // empty cells need no bytes at all
	}
	cj := Conj{MinLen: len(s)}
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '"' {
			if i > start {
				cj.add(Atom{Kind: AtomSubstr, Lit: s[start:i]})
			}
			start = i + 1
		}
	}
	return Cond{Disj: []Conj{cj}}
}

// CondByteMask is the admission condition requiring at least one byte
// from the mask (with an optional minimum length), for substrates where
// class evidence survives into the raw bytes.
func CondByteMask(m ByteMask, minLen int) Cond {
	cj := Conj{MinLen: minLen}
	cj.add(Atom{Kind: AtomByte, Mask: m})
	return Cond{Disj: []Conj{cj}}
}
