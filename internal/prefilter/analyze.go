package prefilter

import (
	"fmt"
	"strings"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/htmldom"
	"flashextract/internal/sheet"
)

// CoreProgrammer exposes the compiled core combinator tree of a language
// seq/region program adapter. The language packages implement it on
// their unexported wrappers so the analyzer can walk programs without
// the languages importing each other (or this package importing them).
type CoreProgrammer interface {
	CoreProgram() core.Program
}

// Admissible is implemented by DSL leaf programs (region expressions,
// position-pair map functions, predicates) that can state a necessary
// byte-level condition on the raw document for the node to contribute a
// non-error result. Leaves that cannot are treated as True (no
// information), which is always sound.
type Admissible interface {
	AdmissionCond() Cond
}

// CondOf derives the admission condition of a core program tree: a
// condition that holds on every document for which the tree produces at
// least one region. Combinators compose structurally — Merge is a union
// of alternatives, Map/Filter/Pair need all their parts to cooperate —
// and leaves answer through the Admissible interface.
func CondOf(p core.Program) Cond {
	switch v := p.(type) {
	case *core.MergeProgram:
		// Merge yields a region iff some argument does.
		c := False()
		for _, arg := range v.Args {
			c = Or(c, CondOf(arg))
		}
		return c
	case *core.MapProgram:
		// Map F S yields a region only if S yields one and F maps it
		// without error (Map is strict: any F error empties the field).
		return And(CondOf(v.S), CondOf(v.F))
	case *core.FilterBoolProgram:
		// A surviving element needs S to produce it and B to accept it.
		return And(CondOf(v.S), CondOf(v.B))
	case *core.FilterIntProgram:
		return CondOf(v.S)
	case *core.PairProgram:
		return And(CondOf(v.A), CondOf(v.B))
	}
	if a, ok := p.(Admissible); ok {
		return a.AdmissionCond()
	}
	return True()
}

// Filter is the compiled admission test for one saved schema program.
type Filter struct {
	fields []fieldCond
	// hazard validates the raw bytes against the substrate parser: a
	// document the parser would reject must be admitted so the full run
	// path emits the same structured parse-error record it always did.
	hazard func(string) error
}

type fieldCond struct {
	color string
	cond  Cond
}

// FromSchemaProgram derives the admission filter of a compiled program
// for documents of the given type ("text", "web" or "sheet"). Only
// ⊥-rooted fields (no ancestor) participate: a descendant field's program
// runs over its ancestor's regions, so when every root field is empty the
// whole extraction cascades to empty regardless of what the descendants'
// own conditions would admit — dropping them makes the filter strictly
// more selective at no soundness cost. A document is admitted when any
// root field's condition is satisfiable on it; root fields whose programs
// expose no analyzable structure contribute True and make the filter
// admit everything (still sound, never faster).
func FromSchemaProgram(q *engine.SchemaProgram, docType string) (*Filter, error) {
	f := &Filter{}
	switch docType {
	case "text":
		// textlang documents are total: every string parses.
	case "web":
		f.hazard = htmldom.Scan
	case "sheet":
		f.hazard = sheet.CheckCSV
	default:
		return nil, fmt.Errorf("prefilter: unknown document type %q", docType)
	}
	for _, fi := range q.Schema.Fields() {
		fp := q.Fields[fi.Color()]
		if fp == nil {
			return nil, fmt.Errorf("prefilter: field %s has no program", fi.Color())
		}
		if fp.Ancestor != nil {
			continue // rides on its ancestor's regions; see above
		}
		cond := True()
		var inner any
		if fp.Seq != nil {
			inner = fp.Seq
		} else {
			inner = fp.Reg
		}
		if cp, ok := inner.(CoreProgrammer); ok {
			cond = CondOf(cp.CoreProgram())
			cond.normalize()
		}
		f.fields = append(f.fields, fieldCond{color: fi.Color(), cond: cond})
	}
	return f, nil
}

// Admit reports whether the document could produce at least one region
// for at least one field. Admit(doc) == false guarantees a full run on
// doc yields the empty extraction result for every field. Field
// conditions are checked before the substrate-hazard scan: an admitted
// document never pays for the scan (the full path reparses anyway), and
// the census behind mask atoms is built lazily so a substring miss
// rejects without any O(n) pass beyond the search itself.
func (f *Filter) Admit(doc string) bool {
	if f == nil {
		return true
	}
	cs := &census{doc: doc}
	for _, fc := range f.fields {
		if fc.cond.admits(doc, cs) {
			return true
		}
	}
	if f.hazard != nil && f.hazard(doc) != nil {
		return true // would not parse: take the full path for its error record
	}
	return false
}

// Selective reports whether the filter can reject anything at all: at
// least one field condition is not the vacuous True. Callers use it to
// log when prefiltering is a no-op for a given program.
func (f *Filter) Selective() bool {
	if f == nil {
		return false
	}
	for _, fc := range f.fields {
		if !fc.cond.IsTrue() {
			return true
		}
	}
	return false
}

// String renders the per-field conditions for debugging and tests.
func (f *Filter) String() string {
	var b strings.Builder
	for _, fc := range f.fields {
		fmt.Fprintf(&b, "%s: ", fc.color)
		switch {
		case fc.cond.IsTrue():
			b.WriteString("true")
		case fc.cond.IsFalse():
			b.WriteString("false")
		default:
			for i, cj := range fc.cond.Disj {
				if i > 0 {
					b.WriteString(" | ")
				}
				fmt.Fprintf(&b, "(len>=%d", cj.MinLen)
				for _, a := range cj.Atoms {
					b.WriteString(" & ")
					b.WriteString(a.String())
				}
				b.WriteString(")")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
