// Package prefilter derives conservative admission tests from compiled
// extraction programs. The FlashExtract DSLs anchor every region on
// concrete token evidence — regex token pairs in Ltext, XPath steps and
// position pairs in Lweb, cell tokens in Lsps — so a static walk over a
// program's combinator tree can collect byte-level facts that any
// matching document must exhibit: required literal substrings, required
// byte classes, and minimum document sizes. A document failing the test
// is guaranteed to produce zero matches for every field, so the batch
// run path can skip it — no tokens.Cache, no HTML parse, no grid build —
// and emit the precomputed zero-match record instead. Admission is
// deliberately one-sided: the test may admit documents that do not
// match (the full run then finds nothing), but must never reject one
// that would.
package prefilter

import (
	"sort"
	"strings"
)

// ByteMask is a 256-bit set of byte values.
type ByteMask [4]uint64

// Set adds b to the mask.
func (m *ByteMask) Set(b byte) { m[b>>6] |= 1 << (b & 63) }

// Has reports whether b is in the mask.
func (m ByteMask) Has(b byte) bool { return m[b>>6]&(1<<(b&63)) != 0 }

// Intersects reports whether the two masks share any byte.
func (m ByteMask) Intersects(o ByteMask) bool {
	return m[0]&o[0] != 0 || m[1]&o[1] != 0 || m[2]&o[2] != 0 || m[3]&o[3] != 0
}

// Full reports whether the mask contains every byte value (such an atom
// is vacuous and should be dropped, keeping only its length contribution).
func (m ByteMask) Full() bool {
	return m[0] == ^uint64(0) && m[1] == ^uint64(0) && m[2] == ^uint64(0) && m[3] == ^uint64(0)
}

// AtomKind discriminates the three admission-atom shapes.
type AtomKind int

const (
	// AtomSubstr requires an exact byte substring.
	AtomSubstr AtomKind = iota
	// AtomISubstr requires a substring under ASCII case folding.
	AtomISubstr
	// AtomByte requires at least one byte from a mask to be present.
	AtomByte
)

// Atom is one necessary byte-level fact about a matching document.
type Atom struct {
	Kind AtomKind
	Lit  string   // AtomSubstr / AtomISubstr
	Mask ByteMask // AtomByte
}

func (a Atom) String() string {
	switch a.Kind {
	case AtomSubstr:
		return "substr(" + a.Lit + ")"
	case AtomISubstr:
		return "isubstr(" + a.Lit + ")"
	default:
		n := 0
		for i := 0; i < 256; i++ {
			if a.Mask.Has(byte(i)) {
				n++
			}
		}
		return "mask(" + itoa(n) + " bytes)"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Conj is a conjunction of atoms plus a minimum document length; every
// atom must hold (and the document must be at least MinLen bytes) for
// the conjunction to be satisfiable.
type Conj struct {
	Atoms  []Atom
	MinLen int
}

// add appends an atom unless an equal one is already present or the atom
// is vacuous (a full mask). Conjunctions are capped at maxConjAtoms;
// dropping surplus atoms only weakens the test, which is sound.
func (cj *Conj) add(a Atom) {
	if a.Kind == AtomByte && a.Mask.Full() {
		return
	}
	for _, x := range cj.Atoms {
		if x.Kind == a.Kind && x.Lit == a.Lit && x.Mask == a.Mask {
			return
		}
	}
	if len(cj.Atoms) >= maxConjAtoms {
		return
	}
	cj.Atoms = append(cj.Atoms, a)
}

// Cond is a necessary admission condition in disjunctive normal form.
// The zero value is the unsatisfiable condition (False): the program can
// provably never produce a region, whatever the document.
type Cond struct {
	always bool   // vacuous condition: no information, admit everything
	Disj   []Conj // satisfiable iff some conjunction is
}

// True returns the vacuous condition.
func True() Cond { return Cond{always: true} }

// False returns the unsatisfiable condition.
func False() Cond { return Cond{} }

// IsTrue reports whether the condition admits every document.
func (c Cond) IsTrue() bool { return c.always }

// IsFalse reports whether the condition rejects every document.
func (c Cond) IsFalse() bool { return !c.always && len(c.Disj) == 0 }

// Widening caps. Exceeding either collapses toward True, which admits
// more documents and is therefore always sound.
const (
	maxDisjuncts = 8
	maxConjAtoms = 16
)

// Or returns a condition admitting whatever a or b admits.
func Or(a, b Cond) Cond {
	if a.always || b.always {
		return True()
	}
	d := make([]Conj, 0, len(a.Disj)+len(b.Disj))
	d = append(d, a.Disj...)
	d = append(d, b.Disj...)
	if len(d) > maxDisjuncts {
		return True() // widen: too many alternatives to track precisely
	}
	return Cond{Disj: d}
}

// And returns a condition requiring both a and b. When the cross product
// grows past the disjunct cap, the stronger operand alone is kept —
// And(a, b) implies a and implies b, so either is a sound widening.
func And(a, b Cond) Cond {
	if a.always {
		return b
	}
	if b.always {
		return a
	}
	if a.IsFalse() || b.IsFalse() {
		return False()
	}
	if len(a.Disj)*len(b.Disj) > maxDisjuncts {
		if condWeight(b) > condWeight(a) {
			return b
		}
		return a
	}
	out := make([]Conj, 0, len(a.Disj)*len(b.Disj))
	for _, x := range a.Disj {
		for _, y := range b.Disj {
			out = append(out, mergeConj(x, y))
		}
	}
	return Cond{Disj: out}
}

// condWeight is a crude precision score used to pick which operand to
// keep when And must widen: more atoms in fewer disjuncts reject more.
func condWeight(c Cond) int {
	n := 0
	for _, cj := range c.Disj {
		n += len(cj.Atoms) + 1
	}
	if len(c.Disj) > 0 {
		n /= len(c.Disj)
	}
	return n
}

// mergeConj conjoins two conjunctions: atoms union, MinLen max.
func mergeConj(x, y Conj) Conj {
	out := Conj{MinLen: x.MinLen}
	if y.MinLen > out.MinLen {
		out.MinLen = y.MinLen
	}
	out.Atoms = append(out.Atoms, x.Atoms...)
	for _, a := range y.Atoms {
		out.add(a)
	}
	return out
}

// profile is the single-pass byte census an admission check consults so
// that one-byte and mask atoms need no substring scans.
type profile struct {
	mask     ByteMask // bytes present in the document
	foldMask ByteMask // same, with A-Z folded to a-z
}

func buildProfile(doc string) profile {
	var m ByteMask
	for i := 0; i < len(doc); i++ {
		b := doc[i]
		m[b>>6] |= 1 << (b & 63)
	}
	p := profile{mask: m, foldMask: m}
	// Fold in bit space rather than per byte: 'A'..'Z' occupy bits 1..26
	// of word 1 and 'a'..'z' bits 33..58 of the same word, exactly 32
	// positions apart, so one shift moves the whole uppercase range.
	const upperBits = uint64(0x3ffffff) << 1
	p.foldMask[1] = (m[1] &^ upperBits) | (m[1]&upperBits)<<32
	return p
}

// census builds a document's byte profile on first demand, so admission
// checks decided by substring and length atoms alone never pay the O(n)
// census pass.
type census struct {
	doc   string
	built bool
	p     profile
}

func (cs *census) profile() profile {
	if !cs.built {
		cs.p = buildProfile(cs.doc)
		cs.built = true
	}
	return cs.p
}

func foldByte(b byte) byte {
	if b >= 'A' && b <= 'Z' {
		return b + ('a' - 'A')
	}
	return b
}

// atomRank orders a conjunction's atoms by evaluation cost, so a
// rejection reaches its cheapest decisive atom first: vectorized
// substring searches, then census-answered single-byte and mask checks,
// then byte-wise case-folded searches.
func atomRank(a Atom) int {
	switch a.Kind {
	case AtomSubstr:
		if len(a.Lit) > 1 {
			return 0
		}
		return 1
	case AtomByte:
		return 1
	default: // AtomISubstr
		if len(a.Lit) == 1 {
			return 1
		}
		return 2
	}
}

// normalize cost-orders every conjunction's atoms in place. Conjunction
// satisfaction is order-independent, so this changes evaluation time
// only, never the verdict.
func (c *Cond) normalize() {
	for i := range c.Disj {
		sort.SliceStable(c.Disj[i].Atoms, func(x, y int) bool {
			return atomRank(c.Disj[i].Atoms[x]) < atomRank(c.Disj[i].Atoms[y])
		})
	}
}

// admits evaluates the condition against a document and its lazily built
// byte census.
func (c Cond) admits(doc string, cs *census) bool {
	if c.always {
		return true
	}
	for _, cj := range c.Disj {
		if cj.sat(doc, cs) {
			return true
		}
	}
	return false
}

func (cj Conj) sat(doc string, cs *census) bool {
	if len(doc) < cj.MinLen {
		return false
	}
	for _, a := range cj.Atoms {
		if !a.sat(doc, cs) {
			return false
		}
	}
	return true
}

func (a Atom) sat(doc string, cs *census) bool {
	switch a.Kind {
	case AtomSubstr:
		if len(a.Lit) == 1 {
			return cs.profile().mask.Has(a.Lit[0])
		}
		return strings.Contains(doc, a.Lit)
	case AtomISubstr:
		if len(a.Lit) == 1 {
			return cs.profile().foldMask.Has(foldByte(a.Lit[0]))
		}
		return containsFold(doc, a.Lit)
	default:
		return cs.profile().mask.Intersects(a.Mask)
	}
}

// containsFold reports whether s contains sub under ASCII case folding.
// When the needle starts with a non-letter (so the byte folds to itself),
// candidate positions are located with the vectorized IndexByte instead
// of a byte-wise folding scan.
func containsFold(s, sub string) bool {
	n := len(sub)
	if n == 0 {
		return true
	}
	if n > len(s) {
		return false
	}
	c0 := foldByte(sub[0])
	memchr := c0 < 'a' || c0 > 'z'
	for i := 0; i+n <= len(s); {
		if memchr {
			j := strings.IndexByte(s[i:len(s)-n+1], c0)
			if j < 0 {
				return false
			}
			i += j
		} else if foldByte(s[i]) != c0 {
			i++
			continue
		}
		j := 1
		for ; j < n; j++ {
			if foldByte(s[i+j]) != foldByte(sub[j]) {
				break
			}
		}
		if j == n {
			return true
		}
		i++
	}
	return false
}
