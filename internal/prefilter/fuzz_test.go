package prefilter_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
	"flashextract/internal/engine"
	"flashextract/internal/prefilter"
	"flashextract/internal/sheetlang"
	"flashextract/internal/textlang"
	"flashextract/internal/weblang"
)

var fuzzDomains = []string{"text", "web", "sheet"}

// fuzzPrograms lazily learns one corpus program and builds one filter per
// domain, shared across every fuzz execution.
var fuzzPrograms struct {
	once    sync.Once
	progs   map[string]*engine.SchemaProgram
	filters map[string]*prefilter.Filter
	err     error
}

func fuzzSetup() error {
	fuzzPrograms.once.Do(func() {
		fuzzPrograms.progs = map[string]*engine.SchemaProgram{}
		fuzzPrograms.filters = map[string]*prefilter.Filter{}
		trainers := map[string]*bench.Task{}
		for _, task := range corpus.All() {
			if _, ok := trainers[task.Domain]; !ok {
				trainers[task.Domain] = task
			}
		}
		for domain, trainer := range trainers {
			artifact, err := bench.LearnSchemaProgram(trainer, 3)
			if err != nil {
				fuzzPrograms.err = fmt.Errorf("learning %s: %w", trainer.Name, err)
				return
			}
			prog, err := engine.LoadSchemaProgram(artifact, trainer.Doc.Language())
			if err != nil {
				fuzzPrograms.err = err
				return
			}
			f, err := prefilter.FromSchemaProgram(prog, domain)
			if err != nil {
				fuzzPrograms.err = err
				return
			}
			fuzzPrograms.progs[domain] = prog
			fuzzPrograms.filters[domain] = f
		}
	})
	return fuzzPrograms.err
}

func fuzzDocument(domain, src string) (engine.Document, error) {
	switch domain {
	case "web":
		return weblang.NewDocument(src)
	case "sheet":
		return sheetlang.FromCSV(src)
	default:
		return textlang.NewDocument(src), nil
	}
}

// FuzzPrefilterSound fuzzes the soundness contract of the admission test:
// for any document the filter rejects, (a) the document parses — the
// substrate-hazard gate must have routed unparseable bytes to the full
// path — and (b) a real run of the program extracts zero regions for every
// field. A counterexample here means prefiltered batch output could
// diverge from the full run.
func FuzzPrefilterSound(f *testing.F) {
	if err := fuzzSetup(); err != nil {
		f.Fatal(err)
	}
	for _, task := range corpus.All() {
		for i, domain := range fuzzDomains {
			if task.Domain == domain {
				f.Add(uint8(i), task.Source)
			}
		}
	}
	for i, domain := range fuzzDomains {
		for _, pad := range bench.PaddingDocs(domain, 2, 99) {
			f.Add(uint8(i), pad.Content)
		}
		f.Add(uint8(i), "")
		f.Add(uint8(i), "a,b\n1,2\n")
		f.Add(uint8(i), "<html><body><div class='results'>x</div></body></html>")
	}
	f.Fuzz(func(t *testing.T, which uint8, src string) {
		domain := fuzzDomains[int(which)%len(fuzzDomains)]
		flt := fuzzPrograms.filters[domain]
		if flt.Admit(src) {
			return
		}
		doc, err := fuzzDocument(domain, src)
		if err != nil {
			t.Fatalf("%s: rejected document failed to parse (hazard gate broken): %v", domain, err)
		}
		_, cr, err := fuzzPrograms.progs[domain].Run(doc)
		if err != nil {
			// The only run error an empty extraction can produce is the
			// (document-independent) schema-consistency failure.
			if !strings.Contains(err.Error(), "inconsistent with schema") {
				t.Fatalf("%s: run on rejected document failed: %v", domain, err)
			}
			return
		}
		for color, regions := range cr {
			if len(regions) != 0 {
				t.Fatalf("%s: field %s extracted %d regions from a document the prefilter rejected (doc=%q)",
					domain, color, len(regions), src)
			}
		}
	})
}
