package serve_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"flashextract/internal/batch"
	"flashextract/internal/metrics"
	"flashextract/internal/serve"
)

// TestSoakSequentialScans drives 1,000 scan requests through one stream
// against one server and asserts the process stays flat: goroutine count
// unchanged, heap growth bounded, the compiled-program pool (not repeated
// deserialization) carrying the load, and the monitor's conservation
// counters intact at the end.
func TestSoakSequentialScans(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const scans = 1000
	dir := programDir(t)
	mon := &batch.Monitor{}
	reg := metrics.NewRegistry()
	s := newServer(t, dir, serve.Options{Monitor: mon, Metrics: reg})
	entry, err := s.Registry().Resolve("chairs")
	if err != nil {
		t.Fatal(err)
	}

	ss := startSession(t, context.Background(), s)
	if got := ss.recvResponse(); got.Op != serve.OpReady {
		t.Fatalf("first frame = %+v", got)
	}
	// Warm up, then baseline: the first requests may grow pools and
	// runtime service goroutines that are steady-state afterwards.
	for i := 0; i < 20; i++ {
		if resp := ss.roundTrip(soakScan(i)); !resp.OK {
			t.Fatalf("warmup scan %d: %+v", i, resp)
		}
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	goroutines := runtime.NumGoroutine()

	for i := 0; i < scans; i++ {
		if resp := ss.roundTrip(soakScan(i)); !resp.OK {
			t.Fatalf("scan %d: %+v", i, resp)
		}
	}

	if got := runtime.NumGoroutine(); got > goroutines+3 {
		t.Errorf("goroutines grew across the soak: %d -> %d", goroutines, got)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if grown := int64(after.HeapAlloc) - int64(before.HeapAlloc); grown > 16<<20 {
		t.Errorf("heap grew %d bytes across %d scans", grown, scans)
	}
	// The pool, not per-request deserialization, carried the load: one
	// validation compile at load time plus at most a handful of pool
	// misses — three orders of magnitude under one-compile-per-scan.
	if c := entry.Compiles(); c > 4 {
		t.Errorf("Compiles = %d after %d scans; the LRU pool is not being reused", c, scans)
	}
	if cached := s.Registry().CachedInstances(); cached > serve.DefaultCompiledCap {
		t.Errorf("CachedInstances = %d, exceeds the cap", cached)
	}
	if got := s.InflightDocs(); got != 0 {
		t.Errorf("in-flight docs after drain: %d", got)
	}
	if err := mon.ConservationError(); err != nil {
		t.Errorf("monitor conservation after soak: %v", err)
	}
	h := mon.Health()
	if h.Runs != scans+20 || h.InFlight != 0 || h.Processed != scans+20 {
		t.Errorf("monitor history: %+v", h)
	}
	if got := reg.Counter(metrics.ServeRequests); got != scans+20 {
		t.Errorf("ServeRequests = %d, want %d", got, scans+20)
	}
	if resp := ss.roundTrip(`{"id":"z","op":"close"}`); !resp.OK {
		t.Fatalf("close = %+v", resp)
	}
	if err := ss.close(); err != nil {
		t.Fatalf("serve returned %v", err)
	}
}

var soakNames = []string{"Aeron", "Tulip", "Bistro", "Windsor", "Morris", "Wegner", "Eames"}

func soakScan(i int) string {
	return fmt.Sprintf(`{"id":"s%d","op":"scan","program":"chairs","doc_name":"d%d.txt","content":"inventory\nChair: %s (price: $%d.25)\n"}`, i, i, soakNames[i%len(soakNames)], i%90+1)
}
