package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flashextract/internal/metrics"
	"flashextract/internal/serve"
)

func TestNewRequiresRegistry(t *testing.T) {
	if _, err := serve.New(serve.Options{}); err == nil {
		t.Fatal("New accepted a nil registry")
	}
}

func TestHandleLineScan(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{})
	resp := s.HandleLine(context.Background(),
		[]byte(`{"id":"h1","op":"scan","program":"chairs","content":"`+
			`inventory\nChair: Bistro (price: $75.40)\n"}`))
	if !resp.OK || resp.Error != nil {
		t.Fatalf("scan failed: %+v", resp)
	}
	if resp.ID != "h1" || resp.Op != serve.OpScan {
		t.Fatalf("response does not echo the request: %+v", resp)
	}
	if !strings.Contains(string(resp.Record), `"Prices":[75.40]`) {
		t.Fatalf("record = %s", resp.Record)
	}
	if got := s.InflightDocs(); got != 0 {
		t.Fatalf("in-flight docs not released: %d", got)
	}
}

// TestHandleLineInvariant: every input — valid, malformed, or hostile —
// yields exactly one well-formed frame: ok xor error.
func TestHandleLineInvariant(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{})
	inputs := []string{
		`{"id":"1","op":"list_programs"}`,
		`{"id":"2","op":"reload"}`,
		`{"id":"3","op":"close"}`,
		`{"id":"4","op":"scan","program":"nope","content":"x"}`,
		`not json`,
		`null`,
		``,
		`{"op":"scan_batch","program":"chairs","docs":[]}`,
	}
	for _, in := range inputs {
		resp := s.HandleLine(context.Background(), []byte(in))
		if resp.OK == (resp.Error != nil) {
			t.Errorf("input %q: frame is not ok xor error: %+v", in, resp)
		}
		if _, err := json.Marshal(resp); err != nil {
			t.Errorf("input %q: response does not marshal: %v", in, err)
		}
	}
}

func TestHandleLineRejectsClose(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{})
	resp := s.HandleLine(context.Background(), []byte(`{"id":"c","op":"close"}`))
	if resp.Error == nil || resp.Error.Code != serve.CodeBadRequest {
		t.Fatalf("close over the sync transport = %+v, want bad_request", resp)
	}
}

func TestServeMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newServer(t, programDir(t), serve.Options{Metrics: reg, MaxInflight: 1})
	ctx := context.Background()
	s.HandleLine(ctx, []byte(`{"id":"1","op":"list_programs"}`))
	s.HandleLine(ctx, []byte(`{"id":"2","op":"scan","program":"nope","content":"x"}`))
	s.HandleLine(ctx, []byte(`{"id":"3","op":"scan_batch","program":"chairs","docs":[{"content":"a"},{"content":"b"}]}`))
	s.HandleLine(ctx, []byte(`{"id":"4","op":"reload"}`))
	if got := reg.Counter(metrics.ServeRequests); got != 4 {
		t.Errorf("ServeRequests = %d, want 4", got)
	}
	if got := reg.Counter(metrics.ServeErrors); got != 2 {
		t.Errorf("ServeErrors = %d, want 2 (unknown program + overloaded)", got)
	}
	if got := reg.Counter(metrics.ServeOverloaded); got != 1 {
		t.Errorf("ServeOverloaded = %d, want 1", got)
	}
	if got := reg.Counter(metrics.ServeReloads); got != 1 {
		t.Errorf("ServeReloads = %d, want 1", got)
	}
}

func TestRPCHandler(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{})
	h := s.RPCHandler()

	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest(http.MethodGet, "/rpc", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /rpc = %d, want 405", rr.Code)
	}

	body := strings.NewReader(`{"id":"r1","op":"scan","program":"chairs","content":"inventory\nChair: Bistro (price: $75.40)\n"}` + "\n")
	rr = httptest.NewRecorder()
	h(rr, httptest.NewRequest(http.MethodPost, "/rpc", body))
	if rr.Code != http.StatusOK {
		t.Fatalf("POST /rpc = %d, want 200", rr.Code)
	}
	if got := rr.Header().Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", got)
	}
	out := rr.Body.String()
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("POST /rpc wrote %d frames, want exactly 1: %q", strings.Count(out, "\n"), out)
	}
	var resp serve.Response
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.ID != "r1" {
		t.Fatalf("rpc response = %+v", resp)
	}

	// close is stream-level and refused over HTTP too.
	rr = httptest.NewRecorder()
	h(rr, httptest.NewRequest(http.MethodPost, "/rpc", strings.NewReader(`{"id":"c","op":"close"}`)))
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != serve.CodeBadRequest {
		t.Fatalf("close over /rpc = %+v, want bad_request", resp)
	}
}

func TestProgramsHandler(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{})
	// One successful scan and one failing document, so the counters move.
	s.HandleLine(context.Background(), []byte(`{"id":"1","op":"scan","program":"chairs","content":"inventory\nChair: Bistro (price: $75.40)\n"}`))

	rr := httptest.NewRecorder()
	s.ProgramsHandler()(rr, httptest.NewRequest(http.MethodGet, "/programs", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /programs = %d", rr.Code)
	}
	var file struct {
		Schema   string `json:"schema"`
		Programs []struct {
			Ref      string `json:"ref"`
			DocType  string `json:"doc_type"`
			Digest   string `json:"digest"`
			Cached   int    `json:"cached"`
			Compiles int64  `json:"compiles"`
			Scans    int64  `json:"scans"`
			Docs     int64  `json:"docs"`
			Errors   int64  `json:"errors"`
		} `json:"programs"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if file.Schema != "flashextract-serve-programs/v1" {
		t.Fatalf("schema = %q", file.Schema)
	}
	if len(file.Programs) != 1 {
		t.Fatalf("programs = %+v", file.Programs)
	}
	p := file.Programs[0]
	if p.Ref != "chairs@1" || p.DocType != "text" || len(p.Digest) != 64 {
		t.Fatalf("program listing = %+v", p)
	}
	if p.Scans != 1 || p.Docs != 1 || p.Errors != 0 {
		t.Fatalf("serving counters = scans=%d docs=%d errors=%d, want 1/1/0", p.Scans, p.Docs, p.Errors)
	}
	if p.Compiles < 1 || p.Cached < 1 {
		t.Fatalf("pool state = compiles=%d cached=%d", p.Compiles, p.Cached)
	}
}

// TestStreamOverlapsScans: the stream transport overlaps scan requests —
// two scans sent back to back both complete, and close drains them before
// responding.
func TestStreamConcurrentScans(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{})
	ss := startSession(t, context.Background(), s)
	if got := ss.recvResponse(); got.Op != serve.OpReady {
		t.Fatalf("first frame = %+v, want ready", got)
	}
	ss.send(`{"id":"a","op":"scan","program":"chairs","content":"inventory\nChair: A (price: $1.00)\n"}`)
	ss.send(`{"id":"b","op":"scan","program":"chairs","content":"inventory\nChair: B (price: $2.00)\n"}`)
	ss.send(`{"id":"z","op":"close"}`)
	got := map[string]bool{}
	var last serve.Response
	for i := 0; i < 3; i++ {
		last = ss.recvResponse()
		if !last.OK {
			t.Fatalf("frame failed: %+v", last)
		}
		got[last.ID] = true
	}
	if !got["a"] || !got["b"] || !got["z"] {
		t.Fatalf("missing responses: %v", got)
	}
	if last.Op != serve.OpClose {
		t.Fatalf("close was not the last frame: %+v", last)
	}
	if err := ss.close(); err != nil {
		t.Fatalf("serve returned %v", err)
	}
}
