package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"flashextract/internal/engine"
	"flashextract/internal/schema"
	"flashextract/internal/serve"
	"flashextract/internal/textlang"
)

// learnChairProgram learns the chair-inventory text program of the batch
// tests and returns its serialized artifact. Learning is deterministic, so
// the artifact bytes (and their digest) are stable across test runs.
func learnChairProgram(t testing.TB) []byte {
	t.Helper()
	doc := textlang.NewDocument("inventory\nChair: Aeron (price: $540.00)\nChair: Tulip (price: $99.99)\n")
	sch := schema.MustParse(`Struct(Names: Seq([name] String), Prices: Seq([price] Float))`)
	s := engine.NewSession(doc, sch)
	for _, ex := range []struct{ color, sub string }{
		{"name", "Aeron"}, {"name", "Tulip"}, {"price", "540.00"}, {"price", "99.99"},
	} {
		r, ok := doc.FindRegion(ex.sub, 0)
		if !ok {
			t.Fatalf("example %q not found", ex.sub)
		}
		if err := s.AddPositive(ex.color, r); err != nil {
			t.Fatal(err)
		}
	}
	for _, fi := range s.Schema().Fields() {
		if _, _, err := s.Learn(fi.Color()); err != nil {
			t.Fatalf("learning %s: %v", fi.Color(), err)
		}
		if err := s.Commit(fi.Color()); err != nil {
			t.Fatal(err)
		}
	}
	q, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := engine.SaveSchemaProgram(q, doc.Language())
	if err != nil {
		t.Fatal(err)
	}
	return artifact
}

// learnNamesProgram learns a names-only variant — a genuinely different
// artifact, for version-upgrade scenarios.
func learnNamesProgram(t testing.TB) []byte {
	t.Helper()
	doc := textlang.NewDocument("inventory\nChair: Aeron (price: $540.00)\nChair: Tulip (price: $99.99)\n")
	sch := schema.MustParse(`Struct(Names: Seq([name] String))`)
	s := engine.NewSession(doc, sch)
	for _, sub := range []string{"Aeron", "Tulip"} {
		r, ok := doc.FindRegion(sub, 0)
		if !ok {
			t.Fatalf("example %q not found", sub)
		}
		if err := s.AddPositive("name", r); err != nil {
			t.Fatal(err)
		}
	}
	for _, fi := range s.Schema().Fields() {
		if _, _, err := s.Learn(fi.Color()); err != nil {
			t.Fatalf("learning %s: %v", fi.Color(), err)
		}
		if err := s.Commit(fi.Color()); err != nil {
			t.Fatal(err)
		}
	}
	q, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := engine.SaveSchemaProgram(q, doc.Language())
	if err != nil {
		t.Fatal(err)
	}
	return artifact
}

func chairDoc(name, price string) string {
	return fmt.Sprintf("inventory\nChair: %s (price: $%s)\n", name, price)
}

// writeProgram writes an artifact into a program directory under the
// registry's filename convention.
func writeProgram(t testing.TB, dir, file string, artifact []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, file), artifact, 0o644); err != nil {
		t.Fatal(err)
	}
}

// removeProgram deletes an artifact from a program directory.
func removeProgram(t testing.TB, dir, file string) {
	t.Helper()
	if err := os.Remove(filepath.Join(dir, file)); err != nil {
		t.Fatal(err)
	}
}

// programDir creates a program directory holding chairs@1.
func programDir(t testing.TB) string {
	t.Helper()
	dir := t.TempDir()
	writeProgram(t, dir, "chairs@1.text.json", learnChairProgram(t))
	return dir
}

// newServer builds a server over a freshly loaded registry.
func newServer(t testing.TB, dir string, opts serve.Options) *serve.Server {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = serve.NewRegistry(dir, 0)
	}
	if _, _, err := opts.Registry.Load(); err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// session drives one Serve stream request-at-a-time: send writes a frame,
// recv reads the next response line, close shuts the client side down and
// waits for Serve to return.
type session struct {
	t    *testing.T
	in   *io.PipeWriter
	out  *bufio.Scanner
	done chan error
}

func startSession(t *testing.T, ctx context.Context, s *serve.Server) *session {
	t.Helper()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	ss := &session{t: t, in: inW, done: make(chan error, 1)}
	ss.out = bufio.NewScanner(outR)
	ss.out.Buffer(make([]byte, 64*1024), serve.MaxFrameBytes)
	go func() {
		err := s.Serve(ctx, inR, outW)
		outW.Close()
		inR.Close()
		ss.done <- err
	}()
	return ss
}

func (ss *session) send(line string) {
	ss.t.Helper()
	if _, err := io.WriteString(ss.in, line+"\n"); err != nil {
		ss.t.Fatalf("sending %q: %v", line, err)
	}
}

func (ss *session) recv() string {
	ss.t.Helper()
	if !ss.out.Scan() {
		ss.t.Fatalf("stream ended early: %v", ss.out.Err())
	}
	return ss.out.Text()
}

// recvResponse parses the next frame.
func (ss *session) recvResponse() serve.Response {
	ss.t.Helper()
	line := ss.recv()
	var resp serve.Response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		ss.t.Fatalf("bad response frame %q: %v", line, err)
	}
	return resp
}

// close closes the client side and waits for Serve to return.
func (ss *session) close() error {
	ss.t.Helper()
	ss.in.Close()
	return <-ss.done
}

// roundTrip sends one frame and returns its parsed response.
func (ss *session) roundTrip(line string) serve.Response {
	ss.t.Helper()
	ss.send(line)
	return ss.recvResponse()
}

// mustJSON marshals a request for sending.
func mustJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// joinRecords reassembles a response's record stream into the NDJSON bytes
// the batch CLI would have written.
func joinRecords(records []json.RawMessage) []byte {
	var buf bytes.Buffer
	for _, r := range records {
		buf.Write(r)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}
