// Package serve is the long-lived extraction service of the repository:
// the learn-once/serve-many end state of §7 of the paper, where extraction
// programs synthesized from examples are named, versioned, and applied at
// scale by a persistent process instead of a one-shot CLI run.
//
// The server speaks an NDJSON request/response protocol — one JSON frame
// per line — over stdin/stdout (Server.Serve) and over HTTP (POST /rpc on
// the admin endpoint). On startup it emits a ready frame carrying the
// protocol identifier; every subsequent response echoes the id of the
// request that caused it, and every failure is a structured error frame,
// never a process exit. The protocol schema is flashextract-serve/v1,
// documented in EXPERIMENTS.md.
//
// Its core is a program registry (see Registry): saved program artifacts
// loaded from a directory by naming convention, hot-reloadable while
// requests are in flight, with a size-capped LRU pool of compiled
// programs so repeated requests do not re-deserialize artifacts.
// Extraction itself runs through the same internal/batch worker pool as
// `flashextract batch`, so scan_batch output is byte-identical to the
// one-shot path and the chaos, metrics, and trace plumbing of the batch
// runtime work unchanged inside the persistent process.
package serve

import (
	"encoding/json"
	"fmt"

	"flashextract/internal/batch"
)

// Protocol is the protocol identifier carried by the ready frame.
const Protocol = "flashextract-serve/v1"

// MaxFrameBytes bounds one NDJSON frame (a request line). Frames beyond it
// abort the stream with an error — a defense against unbounded buffering,
// not a per-document limit (documents ride inside the frame).
const MaxFrameBytes = 32 << 20

// The request ops of the protocol.
const (
	// OpScan runs a program over one inline document and returns its
	// record.
	OpScan = "scan"
	// OpScanBatch runs a program over a set of documents (inline and/or
	// server-side globs) through the batch worker pool and returns the
	// full record stream.
	OpScanBatch = "scan_batch"
	// OpExplain runs a program over one inline document like scan, but
	// with execution capture on: the response carries, alongside the
	// record, one flashextract-explain/v1 frame mapping every extracted
	// leaf to its source byte range and operator path.
	OpExplain = "explain"
	// OpListPrograms lists the registry catalog.
	OpListPrograms = "list_programs"
	// OpReload rescans the program directory, atomically swapping the
	// catalog; in-flight requests finish on the version they resolved.
	OpReload = "reload"
	// OpClose drains in-flight requests and shuts the stream down; its
	// response is the last frame the server writes.
	OpClose = "close"
	// OpReady is the op of the unsolicited frame the server emits on
	// startup (responses only — never a valid request op).
	OpReady = "ready"
)

// The error codes of an error frame. Request-level failures use the first
// group; per-document extraction failures surfacing through scan map the
// batch failure taxonomy into the second.
const (
	// CodeBadRequest: the frame was not a well-formed request (invalid
	// JSON, wrong field types, missing required fields, bad values).
	CodeBadRequest = "bad_request"
	// CodeUnknownOp: the op is not part of the protocol.
	CodeUnknownOp = "unknown_op"
	// CodeUnknownProgram: no catalog entry has the requested name.
	CodeUnknownProgram = "unknown_program"
	// CodeVersionMismatch: the name exists but not at the requested
	// version.
	CodeVersionMismatch = "version_mismatch"
	// CodeOverloaded: admitting the request would exceed the server's
	// bounded in-flight document budget; retry later.
	CodeOverloaded = "overloaded"
	// CodeDeadline: the per-request deadline or run budget was exhausted.
	CodeDeadline = "deadline"
	// CodeCancelled: the server was shutting down or the request's context
	// was cancelled mid-run.
	CodeCancelled = "cancelled"
	// CodeReloadFailed: the program directory rescan failed; the previous
	// catalog stays live.
	CodeReloadFailed = "reload_failed"
	// CodeInternal: the batch invocation itself failed (a runtime bug, not
	// a document failure).
	CodeInternal = "internal"
)

// Doc is one inline document of a scan_batch request.
type Doc struct {
	// Name labels the document in its output record.
	Name string `json:"name"`
	// Content is the document's raw text.
	Content string `json:"content"`
}

// Request is one protocol frame from client to server.
type Request struct {
	// ID is echoed on the response, correlating frames on a multiplexed
	// stream.
	ID string `json:"id"`
	// Op selects the operation (one of the Op* constants).
	Op string `json:"op"`
	// Program references a registry entry: "name" resolves the newest
	// version, "name@V" pins one. Required for scan and scan_batch.
	Program string `json:"program"`
	// DocName labels a scan's document in its record ("doc" when empty).
	DocName string `json:"doc_name"`
	// Content is the scan document's raw text.
	Content string `json:"content"`
	// Docs are the inline documents of a scan_batch.
	Docs []Doc `json:"docs"`
	// Globs are server-side paths/patterns of a scan_batch, expanded,
	// deduplicated, and sorted exactly like the batch CLI's positional
	// arguments; the resulting file sources follow the inline Docs.
	Globs []string `json:"globs"`
	// TimeoutMS bounds each document's run in milliseconds; 0 means the
	// server's default, negative is rejected.
	TimeoutMS int64 `json:"timeout_ms"`
	// Ordered selects input-order record emission for scan_batch; nil
	// means true (deterministic output byte streams by default).
	Ordered *bool `json:"ordered"`
}

// ProgramInfo is one catalog entry of a list_programs response.
type ProgramInfo struct {
	// Name and Version identify the entry; Ref is "name@version".
	Name    string `json:"name"`
	Version int    `json:"version"`
	Ref     string `json:"ref"`
	// DocType is the document type the program runs on.
	DocType string `json:"doc_type"`
	// Digest is the hex SHA-256 of the artifact bytes.
	Digest string `json:"digest"`
}

// Summary is the deterministic slice of a batch summary carried by a
// scan_batch response (wall-clock fields are deliberately absent so
// transcripts are byte-stable).
type Summary struct {
	Docs             int `json:"docs"`
	Errors           int `json:"errors"`
	Skipped          int `json:"skipped"`
	Retries          int `json:"retries"`
	PrefilterSkipped int `json:"prefilter_skipped,omitempty"`
}

// FrameError is the structured error of a failed request.
type FrameError struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
}

// Response is one protocol frame from server to client. Exactly one is
// written per request frame, plus the unsolicited ready frame on startup.
type Response struct {
	// ID echoes the request id ("" for the ready frame and for frames that
	// were not valid JSON).
	ID string `json:"id"`
	// Op echoes the request op (omitted when the frame was malformed).
	Op string `json:"op,omitempty"`
	// OK distinguishes results from error frames.
	OK bool `json:"ok"`
	// Protocol is the protocol identifier (ready frames only).
	Protocol string `json:"protocol,omitempty"`
	// ProgramCount is the catalog size (ready and reload frames).
	ProgramCount int `json:"program_count,omitempty"`
	// Added/Removed count catalog changes (reload frames).
	Added   int `json:"added,omitempty"`
	Removed int `json:"removed,omitempty"`
	// Programs is the catalog listing (list_programs frames).
	Programs []ProgramInfo `json:"programs,omitempty"`
	// Record is the scan's single batch record, byte-for-byte as the batch
	// runtime emitted it.
	Record json.RawMessage `json:"record,omitempty"`
	// Records is the scan_batch record stream in emission order; joining
	// with newlines reproduces the batch CLI's output bytes.
	Records []json.RawMessage `json:"records,omitempty"`
	// Explains is the provenance sidecar of an explain op: one
	// flashextract-explain/v1 frame per record, aligned with Record /
	// Records order.
	Explains []json.RawMessage `json:"explains,omitempty"`
	// Summary aggregates a scan_batch run.
	Summary *Summary `json:"summary,omitempty"`
	// Error describes the failure (error frames only).
	Error *FrameError `json:"error,omitempty"`
}

// errorResponse builds an error frame.
func errorResponse(id, op, code, msg string) Response {
	return Response{ID: id, Op: op, Error: &FrameError{Code: code, Message: msg}}
}

// codeForKind maps the batch failure taxonomy of a scan's record onto a
// frame error code: budget exhaustion is the request's deadline,
// cancellation is the server draining, and every other kind keeps its
// batch name under a doc_ prefix (the record itself carries the detail).
func codeForKind(kind string) string {
	switch kind {
	case batch.KindBudget:
		return CodeDeadline
	case batch.KindCancelled:
		return CodeCancelled
	case batch.KindProgram:
		return CodeInternal
	default:
		return "doc_" + kind
	}
}

// decodeRequest parses one frame line into a Request. Failures are
// reported as crafted messages (never the JSON decoder's own text) so
// protocol transcripts are stable across toolchain versions.
func decodeRequest(line []byte) (Request, *FrameError) {
	var probe any
	if err := json.Unmarshal(line, &probe); err != nil {
		return Request{}, &FrameError{Code: CodeBadRequest, Message: "serve: frame is not valid JSON"}
	}
	if _, ok := probe.(map[string]any); !ok {
		return Request{}, &FrameError{Code: CodeBadRequest, Message: "serve: frame is not a JSON object"}
	}
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		// Salvage the id (when it at least is a string) so the error frame
		// still correlates.
		if id, ok := probe.(map[string]any)["id"].(string); ok {
			req.ID = id
		}
		return req, &FrameError{Code: CodeBadRequest, Message: "serve: frame fields have the wrong types"}
	}
	if req.Op == "" {
		return req, &FrameError{Code: CodeBadRequest, Message: "serve: frame is missing the op field"}
	}
	if req.TimeoutMS < 0 {
		return req, &FrameError{Code: CodeBadRequest, Message: fmt.Sprintf("serve: negative timeout_ms %d", req.TimeoutMS)}
	}
	return req, nil
}
