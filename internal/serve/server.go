package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"flashextract/internal/batch"
	"flashextract/internal/faults"
	"flashextract/internal/logx"
	"flashextract/internal/metrics"
	"flashextract/internal/reqid"
	"flashextract/internal/trace"
)

// DefaultMaxInflight bounds the documents admitted across all in-flight
// requests when Options.MaxInflight is non-positive.
const DefaultMaxInflight = 64

// Options configures a Server.
type Options struct {
	// Registry is the program catalog requests resolve against (required).
	Registry *Registry
	// MaxInflight bounds the documents admitted across all concurrently
	// running requests — the server's backpressure: a request whose
	// documents do not fit is answered with an overloaded error frame
	// instead of being queued. <= 0 selects DefaultMaxInflight.
	MaxInflight int
	// Workers bounds each scan_batch's worker pool (scan always runs one
	// worker); 0 means GOMAXPROCS, exactly as in the batch CLI.
	Workers int
	// DefaultTimeout bounds each document's run when a request carries no
	// timeout_ms (0 = unbounded). Rides the batch runtime's core.Budget
	// plumbing.
	DefaultTimeout time.Duration
	// Metrics receives the serve_* counters and frame latency histogram, on
	// top of the batch_* metrics the runs themselves record; nil means none.
	Metrics metrics.Sink
	// Monitor is shared by every run the server launches, so /healthz
	// aggregates the process's whole serving history.
	Monitor *batch.Monitor
	// Trace / Chaos / SelfCheck / Prefilter configure each run exactly as
	// the one-shot batch CLI flags do.
	Trace     bool
	Chaos     *faults.Injector
	SelfCheck bool
	Prefilter bool
	// AccessLog receives one flashextract-access-log/v1 NDJSON line per
	// handled frame: request id, op, program, document count, status,
	// latency, and response bytes. nil disables access logging.
	AccessLog io.Writer
	// SlowRequests bounds the ring of slowest requests whose traces the
	// /requests admin endpoint retains; <= 0 selects DefaultSlowRequests.
	SlowRequests int
}

// Server is the long-lived extraction service: it answers protocol frames
// (HandleLine) and serves NDJSON streams (Serve) against a hot-reloadable
// program registry, running every extraction through the batch worker
// pool. One Server handles any number of concurrent streams and requests.
type Server struct {
	opts   Options
	lim    *limiter
	access *accessLog
	slow   *slowRing
}

// New builds a server. The registry must be non-nil (Load it before or
// after — an empty catalog is serveable, every scan just misses).
func New(opts Options) (*Server, error) {
	if opts.Registry == nil {
		return nil, fmt.Errorf("serve: Options.Registry is required")
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.Nop
	}
	if opts.SlowRequests <= 0 {
		opts.SlowRequests = DefaultSlowRequests
	}
	return &Server{
		opts:   opts,
		lim:    &limiter{cap: opts.MaxInflight},
		access: newAccessLog(opts.AccessLog),
		slow:   newSlowRing(opts.SlowRequests),
	}, nil
}

// Registry returns the server's program registry.
func (s *Server) Registry() *Registry { return s.opts.Registry }

// Reload rescans the program directory — the reload op and the SIGHUP
// handler share it. On failure the previous catalog stays live.
func (s *Server) Reload() (added, removed int, err error) {
	added, removed, err = s.opts.Registry.Load()
	if err == nil {
		s.opts.Metrics.Count(metrics.ServeReloads, 1)
	}
	return added, removed, err
}

// Ready returns the unsolicited frame the server emits when a stream
// opens: the protocol identifier and the catalog size.
func (s *Server) Ready() Response {
	return Response{Op: OpReady, OK: true, Protocol: Protocol, ProgramCount: s.opts.Registry.Len()}
}

// limiter is the in-flight document budget: a try-acquire semaphore —
// admission never blocks, it either fits or fails (the overloaded frame).
type limiter struct {
	mu        sync.Mutex
	cap, used int
}

func (l *limiter) tryAcquire(n int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.used+n > l.cap {
		return false
	}
	l.used += n
	return true
}

func (l *limiter) release(n int) {
	l.mu.Lock()
	l.used -= n
	l.mu.Unlock()
}

// InflightDocs reports the documents currently admitted (test introspection).
func (s *Server) InflightDocs() int {
	s.lim.mu.Lock()
	defer s.lim.mu.Unlock()
	return s.lim.used
}

// scanWork is an admitted scan/scan_batch: program resolved, sources
// expanded, and docs in-flight units held until run releases them.
type scanWork struct {
	req     Request
	entry   *Entry
	sources []batch.Source
	docs    int
	ordered bool
}

// prepare validates a scan/scan_batch request, resolves its program in the
// current catalog, expands its sources, and admits it against the
// in-flight limit. It returns the admitted work, or the error frame that
// answers the request. Resolution is synchronous with frame arrival, so a
// later reload never changes which version an already-read request runs —
// in-flight requests finish on the version they resolved.
func (s *Server) prepare(req Request) (*scanWork, Response) {
	if req.Program == "" {
		return nil, errorResponse(req.ID, req.Op, CodeBadRequest,
			fmt.Sprintf("serve: %s requires a program reference", req.Op))
	}
	entry, err := s.opts.Registry.Resolve(req.Program)
	if err != nil {
		code := CodeUnknownProgram
		if errors.Is(err, ErrVersionMismatch) {
			code = CodeVersionMismatch
		}
		return nil, errorResponse(req.ID, req.Op, code, err.Error())
	}
	w := &scanWork{req: req, entry: entry, ordered: true}
	switch req.Op {
	case OpScan, OpExplain:
		name := req.DocName
		if name == "" {
			name = "doc"
		}
		w.sources = []batch.Source{batch.StringSource(name, req.Content)}
	case OpScanBatch:
		if len(req.Docs) == 0 && len(req.Globs) == 0 {
			return nil, errorResponse(req.ID, req.Op, CodeBadRequest,
				"serve: scan_batch requires docs or globs")
		}
		for i, d := range req.Docs {
			name := d.Name
			if name == "" {
				name = fmt.Sprintf("doc%d", i)
			}
			w.sources = append(w.sources, batch.StringSource(name, d.Content))
		}
		files, err := expandGlobs(req.Globs)
		if err != nil {
			return nil, errorResponse(req.ID, req.Op, CodeBadRequest, err.Error())
		}
		w.sources = append(w.sources, files...)
		w.ordered = req.Ordered == nil || *req.Ordered
	}
	w.docs = len(w.sources)
	if !s.lim.tryAcquire(w.docs) {
		s.opts.Metrics.Count(metrics.ServeOverloaded, 1)
		return nil, errorResponse(req.ID, req.Op, CodeOverloaded,
			fmt.Sprintf("serve: admitting %d document(s) would exceed the in-flight limit of %d", w.docs, s.opts.MaxInflight))
	}
	return w, Response{}
}

// expandGlobs resolves server-side paths/patterns into a deterministic,
// de-duplicated list of file sources — the same semantics as the batch
// CLI's positional arguments, so scan_batch over globs is byte-identical
// to a one-shot batch over them.
func expandGlobs(globs []string) ([]batch.Source, error) {
	seen := map[string]bool{}
	var paths []string
	for _, g := range globs {
		matches, err := filepath.Glob(g)
		if err != nil {
			return nil, fmt.Errorf("serve: bad glob %q: %w", g, err)
		}
		if matches == nil {
			// A non-pattern path that doesn't exist fails loudly per
			// document, not silently: keep it so Open reports the error.
			matches = []string{g}
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				paths = append(paths, m)
			}
		}
	}
	sort.Strings(paths)
	sources := make([]batch.Source, len(paths))
	for i, p := range paths {
		sources[i] = batch.FileSource(p)
	}
	return sources, nil
}

// run executes admitted work through the batch worker pool, capturing the
// record stream. The pool, chaos sites, metrics, monitor, and tracing are
// exactly the one-shot batch runtime's — only the output goes into the
// response frame instead of stdout.
func (s *Server) run(ctx context.Context, w *scanWork) Response {
	defer s.lim.release(w.docs)
	timeout := s.opts.DefaultTimeout
	if w.req.TimeoutMS > 0 {
		timeout = time.Duration(w.req.TimeoutMS) * time.Millisecond
	}
	workers := s.opts.Workers
	if w.req.Op == OpScan || w.req.Op == OpExplain {
		workers = 1
	}
	var buf, provBuf bytes.Buffer
	opts := batch.Options{
		Programs:   w.entry,
		DocType:    w.entry.DocType,
		Workers:    workers,
		DocTimeout: timeout,
		Ordered:    w.ordered,
		Metrics:    s.opts.Metrics,
		Monitor:    s.opts.Monitor,
		Trace:      s.opts.Trace,
		Chaos:      s.opts.Chaos,
		SelfCheck:  s.opts.SelfCheck,
		Prefilter:  s.opts.Prefilter,
	}
	if w.req.Op == OpExplain {
		opts.Provenance = true
		opts.ProvenanceOut = &provBuf
	}
	sum, err := batch.Run(ctx, opts, w.sources, &buf)
	w.entry.noteScan(int64(sum.Docs), int64(sum.Errors))
	if err != nil {
		return errorResponse(w.req.ID, w.req.Op, CodeInternal, err.Error())
	}
	records := splitRecords(buf.Bytes())
	if w.req.Op == OpScanBatch {
		return Response{ID: w.req.ID, Op: w.req.Op, OK: true,
			Records: records,
			Summary: &Summary{Docs: sum.Docs, Errors: sum.Errors, Skipped: sum.Skipped,
				Retries: sum.Retries, PrefilterSkipped: sum.PrefilterSkipped}}
	}
	// scan/explain: exactly one document went in, so exactly one record came
	// out — unless the run was cancelled before the document was dispatched.
	if len(records) == 0 {
		return errorResponse(w.req.ID, w.req.Op, CodeCancelled, "serve: cancelled before the document was dispatched")
	}
	explains := splitRecords(provBuf.Bytes())
	line := records[0]
	var meta struct {
		OK    bool   `json:"ok"`
		Kind  string `json:"kind"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(line, &meta); err != nil {
		return errorResponse(w.req.ID, w.req.Op, CodeInternal, "serve: unreadable batch record: "+err.Error())
	}
	if !meta.OK {
		resp := errorResponse(w.req.ID, w.req.Op, codeForKind(meta.Kind), meta.Error)
		resp.Record = line
		resp.Explains = explains
		return resp
	}
	return Response{ID: w.req.ID, Op: w.req.Op, OK: true, Record: line, Explains: explains}
}

// splitRecords cuts a captured NDJSON stream into its lines.
func splitRecords(stream []byte) []json.RawMessage {
	var out []json.RawMessage
	for _, line := range bytes.Split(stream, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		out = append(out, json.RawMessage(append([]byte(nil), line...)))
	}
	return out
}

// handleSync answers the synchronous ops: list_programs, reload, and the
// unknown-op error. scan/scan_batch go through prepare/run; close is
// transport-level and handled by the caller.
func (s *Server) handleSync(req Request) Response {
	switch req.Op {
	case OpListPrograms:
		entries := s.opts.Registry.List()
		infos := make([]ProgramInfo, 0, len(entries))
		for _, e := range entries {
			infos = append(infos, e.Info())
		}
		return Response{ID: req.ID, Op: req.Op, OK: true, ProgramCount: len(infos), Programs: infos}
	case OpReload:
		added, removed, err := s.Reload()
		if err != nil {
			return errorResponse(req.ID, req.Op, CodeReloadFailed, err.Error())
		}
		return Response{ID: req.ID, Op: req.Op, OK: true,
			ProgramCount: s.opts.Registry.Len(), Added: added, Removed: removed}
	default:
		return errorResponse(req.ID, req.Op, CodeUnknownOp, fmt.Sprintf("serve: unknown op %q", req.Op))
	}
}

// scanOp reports whether op is an extraction request (the ops that admit
// documents, run the batch pool, and enter the slow-request ring).
func scanOp(op string) bool {
	return op == OpScan || op == OpScanBatch || op == OpExplain
}

// reqInfo is the per-request observability state minted at frame receipt:
// the request id, the start time, the admitted document count, and the
// request root span (tracing on, extraction ops only).
type reqInfo struct {
	id    string
	start time.Time
	docs  int
	root  *trace.Span
}

// startRequest mints a request id, installs it in the context, and — for
// extraction ops under tracing — starts the request root span that
// processDoc parents each document's span under.
func (s *Server) startRequest(ctx context.Context, op string, start time.Time) (context.Context, *reqInfo) {
	ri := &reqInfo{id: reqid.New(), start: start}
	ctx = reqid.Into(ctx, ri.id)
	if s.opts.Trace && scanOp(op) {
		ctx, ri.root = trace.NewTracer().StartRoot(ctx, "request:"+op)
		ri.root.SetString("request_id", ri.id)
	}
	return ctx, ri
}

// observe records one handled frame everywhere the request is visible:
// the serve metrics, the request root span, the slow-request ring, and
// the access log.
func (s *Server) observe(req Request, ri *reqInfo, resp *Response) {
	lat := time.Since(ri.start)
	s.opts.Metrics.Count(metrics.ServeRequests, 1)
	if resp.Error != nil {
		s.opts.Metrics.Count(metrics.ServeErrors, 1)
	}
	if req.Op == OpExplain {
		s.opts.Metrics.Count(metrics.ServeExplainRequests, 1)
		if resp.Error != nil {
			s.opts.Metrics.Count(metrics.ServeExplainErrors, 1)
		}
	}
	s.opts.Metrics.Observe(metrics.ServeFrameSeconds, lat.Seconds())
	status := "ok"
	if resp.Error != nil {
		status = resp.Error.Code
	}
	var node *trace.Node
	if ri.root != nil {
		ri.root.SetString("op", req.Op)
		if req.Program != "" {
			ri.root.SetString("program", req.Program)
		}
		ri.root.SetInt("docs", int64(ri.docs))
		ri.root.SetString("status", status)
		ri.root.End()
		node = trace.ToNode(ri.root)
	}
	if scanOp(req.Op) {
		s.slow.record(RequestTrace{
			RequestID: ri.id,
			ID:        req.ID,
			Op:        req.Op,
			Program:   req.Program,
			Docs:      ri.docs,
			Status:    status,
			LatencyMS: float64(lat) / float64(time.Millisecond),
			Trace:     node,
		})
	}
	s.access.write(ri, req, status, lat, resp)
}

// RequestsHandler serves the slow-request ring as
// flashextract-requests/v1: the N slowest extraction requests handled so
// far, slowest first, each with its request root trace when tracing is
// on. It is mounted on the admin endpoint as /requests.
func (s *Server) RequestsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		file := requestsFile{Schema: RequestsSchema, Requests: s.slow.snapshot()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(file)
	}
}

// HandleLine answers one protocol frame synchronously: every input yields
// exactly one response frame, malformed input included. It backs the HTTP
// /rpc transport and the protocol fuzzer; the stream transport (Serve)
// runs the same handlers but overlaps scan/scan_batch requests. close is
// stream-level flow control and is rejected here.
func (s *Server) HandleLine(ctx context.Context, line []byte) Response {
	start := time.Now()
	var resp Response
	req, ferr := decodeRequest(line)
	ctx, ri := s.startRequest(ctx, req.Op, start)
	switch {
	case ferr != nil:
		resp = Response{ID: req.ID, Op: req.Op, Error: ferr}
	case scanOp(req.Op):
		work, eresp := s.prepare(req)
		if work == nil {
			resp = eresp
		} else {
			ri.docs = work.docs
			resp = s.run(ctx, work)
		}
	case req.Op == OpClose:
		resp = errorResponse(req.ID, req.Op, CodeBadRequest, "serve: close is only valid on the stream transport")
	default:
		resp = s.handleSync(req)
	}
	s.observe(req, ri, &resp)
	return resp
}

// Serve speaks the NDJSON stream protocol over in/out: the ready frame,
// then one response frame per request line. scan and scan_batch run
// concurrently (bounded by the in-flight document limit); list_programs,
// reload, and close are handled in arrival order, and close drains every
// in-flight request before its response — the last frame written.
//
// Serve returns when the input reaches EOF, a close frame is handled, the
// context is cancelled (in-flight requests drain with cancelled records),
// or a write to out fails. A reader blocked on an un-closed input is the
// caller's to unblock (close the input when cancelling the context).
func (s *Server) Serve(ctx context.Context, in io.Reader, out io.Writer) error {
	log := logx.From(ctx)
	var wmu sync.Mutex
	var werr error
	write := func(resp Response) {
		line, err := json.Marshal(resp)
		if err != nil {
			// A response that cannot marshal is a server bug; degrade to a
			// crafted internal error frame rather than dropping the frame.
			line, _ = json.Marshal(errorResponse(resp.ID, resp.Op, CodeInternal, "serve: response did not marshal"))
		}
		line = append(line, '\n')
		wmu.Lock()
		defer wmu.Unlock()
		if werr != nil {
			return
		}
		_, werr = out.Write(line)
	}
	writeErr := func() error {
		wmu.Lock()
		defer wmu.Unlock()
		if werr != nil {
			return fmt.Errorf("serve: writing response: %w", werr)
		}
		return nil
	}
	write(s.Ready())
	log.Info("serve stream open", "programs", s.opts.Registry.Len(),
		"max_inflight", s.opts.MaxInflight)

	// The reader feeds request lines to the loop; sctx unblocks a reader
	// stuck handing over a line once Serve returns for any reason.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	lines := make(chan []byte)
	readErr := make(chan error, 1)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(in)
		sc.Buffer(make([]byte, 64*1024), MaxFrameBytes)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			select {
			case lines <- line:
			case <-sctx.Done():
				return
			}
		}
		readErr <- sc.Err()
	}()

	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			log.Info("serve stream cancelled")
			return ctx.Err()
		case line, ok := <-lines:
			if !ok {
				wg.Wait()
				log.Info("serve stream closed", "reason", "eof")
				select {
				case err := <-readErr:
					if err != nil {
						return fmt.Errorf("serve: reading input: %w", err)
					}
				default:
				}
				return writeErr()
			}
			start := time.Now()
			req, ferr := decodeRequest(line)
			rctx, ri := s.startRequest(ctx, req.Op, start)
			switch {
			case ferr != nil:
				resp := Response{ID: req.ID, Op: req.Op, Error: ferr}
				s.observe(req, ri, &resp)
				write(resp)
			case scanOp(req.Op):
				// Resolve and admit synchronously — frame order decides which
				// program version runs and who wins the in-flight budget —
				// then extract concurrently.
				work, eresp := s.prepare(req)
				if work == nil {
					s.observe(req, ri, &eresp)
					write(eresp)
					continue
				}
				ri.docs = work.docs
				wg.Add(1)
				go func() {
					defer wg.Done()
					resp := s.run(rctx, work)
					s.observe(req, ri, &resp)
					write(resp)
				}()
			case req.Op == OpClose:
				wg.Wait()
				resp := Response{ID: req.ID, Op: OpClose, OK: true}
				s.observe(req, ri, &resp)
				write(resp)
				log.Info("serve stream closed", "reason", "close frame")
				return writeErr()
			default:
				resp := s.handleSync(req)
				s.observe(req, ri, &resp)
				write(resp)
			}
			if err := writeErr(); err != nil {
				return err
			}
		}
	}
}

// RPCHandler serves the protocol over HTTP: POST one request frame, get
// one response frame — the same handlers as the stream, minus close. It is
// mounted on the admin endpoint as /rpc.
func (s *Server) RPCHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "serve: /rpc takes POST", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameBytes+1))
		var resp Response
		switch {
		case err != nil:
			resp = errorResponse("", "", CodeBadRequest, "serve: reading request body failed")
		case len(body) > MaxFrameBytes:
			resp = errorResponse("", "", CodeBadRequest, "serve: frame exceeds the size limit")
		default:
			resp = s.HandleLine(r.Context(), bytes.TrimSpace(body))
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		line, merr := json.Marshal(resp)
		if merr != nil {
			line, _ = json.Marshal(errorResponse(resp.ID, resp.Op, CodeInternal, "serve: response did not marshal"))
		}
		_, _ = w.Write(append(line, '\n'))
	}
}

// programsFile is the /programs response envelope.
type programsFile struct {
	Schema   string          `json:"schema"`
	Programs []programStatus `json:"programs"`
}

// programStatus is one catalog entry's live serving state.
type programStatus struct {
	ProgramInfo
	// Cached is the entry's spare compiled instances currently pooled;
	// Compiles counts artifact deserializations (pool misses).
	Cached   int   `json:"cached"`
	Compiles int64 `json:"compiles"`
	// Scans / Docs / Errors are the per-program serving counters.
	Scans  int64 `json:"scans"`
	Docs   int64 `json:"docs"`
	Errors int64 `json:"errors"`
}

// ProgramsHandler serves the catalog with per-program serving counters as
// flashextract-serve-programs/v1. It is mounted on the admin endpoint as
// /programs.
func (s *Server) ProgramsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		entries := s.opts.Registry.List()
		file := programsFile{Schema: "flashextract-serve-programs/v1",
			Programs: make([]programStatus, 0, len(entries))}
		for _, e := range entries {
			file.Programs = append(file.Programs, programStatus{
				ProgramInfo: e.Info(),
				Cached:      e.Cached(),
				Compiles:    e.Compiles(),
				Scans:       e.Scans(),
				Docs:        e.Docs(),
				Errors:      e.Errors(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(file)
	}
}
