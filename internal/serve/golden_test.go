package serve_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flashextract/internal/faults"
	"flashextract/internal/serve"
)

var update = flag.Bool("update", false, "rewrite the golden protocol transcripts")

// step is one scripted exchange of a golden session: an optional action
// run before the request is sent (e.g. dropping a new program artifact
// into the directory ahead of a reload frame).
type step struct {
	before func(t *testing.T)
	req    string
}

// transcript drives a scripted session request-at-a-time and renders both
// directions: "> " client frames, "< " server frames. Requests wait for
// their response before the next is sent, so the transcript bytes are
// fully deterministic even though the server overlaps scans in general.
func transcript(t *testing.T, s *serve.Server, steps []step) []byte {
	t.Helper()
	ss := startSession(t, context.Background(), s)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "< %s\n", ss.recv())
	for _, st := range steps {
		if st.before != nil {
			st.before(t)
		}
		ss.send(st.req)
		fmt.Fprintf(&buf, "> %s\n", st.req)
		fmt.Fprintf(&buf, "< %s\n", ss.recv())
	}
	if err := ss.close(); err != nil {
		t.Fatalf("serve returned %v", err)
	}
	return buf.Bytes()
}

// checkGolden compares a transcript byte-for-byte against its golden file
// (rewriting it under -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/serve -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("transcript diverges from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenBasicSession covers the happy path end to end: ready, catalog
// listing, scans, an inline scan_batch, a hot reload picking up a new
// version, and close.
func TestGoldenBasicSession(t *testing.T) {
	dir := programDir(t)
	s := newServer(t, dir, serve.Options{})
	got := transcript(t, s, []step{
		{req: `{"id":"1","op":"list_programs"}`},
		{req: `{"id":"2","op":"scan","program":"chairs","content":"inventory\nChair: Bistro (price: $75.40)\n"}`},
		{req: `{"id":"3","op":"scan","program":"chairs@1","doc_name":"b.txt","content":"inventory\nChair: Windsor (price: $185.00)\n"}`},
		{req: `{"id":"4","op":"scan_batch","program":"chairs","docs":[{"name":"a.txt","content":"inventory\nChair: Aeron (price: $540.00)\n"},{"name":"b.txt","content":"inventory\nChair: Tulip (price: $99.99)\n"}]}`},
		{
			before: func(t *testing.T) { writeProgram(t, dir, "chairs@2.text.json", learnNamesProgram(t)) },
			req:    `{"id":"5","op":"reload"}`,
		},
		{req: `{"id":"6","op":"scan","program":"chairs","content":"inventory\nChair: Bistro (price: $75.40)\n"}`},
		{req: `{"id":"7","op":"scan","program":"chairs@1","content":"inventory\nChair: Bistro (price: $75.40)\n"}`},
		{req: `{"id":"8","op":"close"}`},
	})
	checkGolden(t, "basic_session", got)
}

// TestGoldenMalformedFrames covers the decode taxonomy: every broken input
// yields exactly one structured error frame with a crafted message, and
// the stream keeps serving afterwards.
func TestGoldenMalformedFrames(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{})
	got := transcript(t, s, []step{
		{req: `{this is not json`},
		{req: `42`},
		{req: `["op","scan"]`},
		{req: `{"id":"e1","op":7}`},
		{req: `{"id":"e2"}`},
		{req: `{"id":"e3","op":"scan","program":"chairs","timeout_ms":-5}`},
		{req: `{"id":"e4","op":"frobnicate"}`},
		{req: `{"id":"e5","op":"scan","content":"inventory\n"}`},
		{req: `{"id":"e6","op":"close"}`},
	})
	checkGolden(t, "malformed_frames", got)
}

// TestGoldenProgramResolution covers registry misses: unknown names,
// version mismatches, bad version syntax, and an empty scan_batch.
func TestGoldenProgramResolution(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{})
	got := transcript(t, s, []step{
		{req: `{"id":"r1","op":"scan","program":"tables","content":"x"}`},
		{req: `{"id":"r2","op":"scan","program":"chairs@9","content":"x"}`},
		{req: `{"id":"r3","op":"scan","program":"chairs@zero","content":"x"}`},
		{req: `{"id":"r4","op":"scan_batch","program":"chairs"}`},
		{req: `{"id":"r5","op":"close"}`},
	})
	checkGolden(t, "program_resolution", got)
}

// TestGoldenDeadline covers the deadline taxonomy deterministically: the
// chaos budget site trips every run, so the scan's document fails with a
// budget record that surfaces as a deadline error frame carrying the
// record.
func TestGoldenDeadline(t *testing.T) {
	inj, err := faults.ParseSpec("seed=7,rate=1,sites=engine.budget")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(t, programDir(t), serve.Options{Chaos: inj})
	got := transcript(t, s, []step{
		{req: `{"id":"d1","op":"scan","program":"chairs","content":"inventory\nChair: Bistro (price: $75.40)\n","timeout_ms":5000}`},
		{req: `{"id":"d2","op":"close"}`},
	})
	checkGolden(t, "deadline", got)
}

// TestGoldenOverload covers backpressure: with two in-flight document
// slots, a three-document scan_batch is refused with an overloaded frame
// while a single scan still fits.
func TestGoldenOverload(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{MaxInflight: 2})
	got := transcript(t, s, []step{
		{req: `{"id":"o1","op":"scan_batch","program":"chairs","docs":[{"name":"a","content":"inventory\n"},{"name":"b","content":"inventory\n"},{"name":"c","content":"inventory\n"}]}`},
		{req: `{"id":"o2","op":"scan","program":"chairs","content":"inventory\nChair: Bistro (price: $75.40)\n"}`},
		{req: `{"id":"o3","op":"close"}`},
	})
	checkGolden(t, "overload", got)
}
