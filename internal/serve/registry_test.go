package serve_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flashextract/internal/batch"
	"flashextract/internal/serve"
)

func TestLoadFilenameConvention(t *testing.T) {
	artifact := learnChairProgram(t)
	bad := []string{
		"chairs.json",            // no version
		"chairs@0.text.json",     // version must be positive
		"chairs@-1.text.json",    // negative version
		"chairs@1.5.text.json",   // non-integer version
		"chairs@x.text.json",     // non-numeric version
		"@1.text.json",           // empty name
		"cha irs@1.text.json",    // bad name charset
		"chairs@1.json",          // missing doctype
		"chairs@1.parquet.json",  // unknown doctype
		"chairs@1.text.ndjson.x", // not .json at all (ignored, not error)
	}
	for _, name := range bad[:len(bad)-1] {
		dir := t.TempDir()
		writeProgram(t, dir, name, artifact)
		if _, _, err := serve.NewRegistry(dir, 0).Load(); err == nil {
			t.Errorf("Load accepted %q", name)
		}
	}
	// Non-.json files are simply not part of the catalog.
	dir := t.TempDir()
	writeProgram(t, dir, "chairs@1.text.json", artifact)
	writeProgram(t, dir, "README.md", []byte("notes"))
	r := serve.NewRegistry(dir, 0)
	if _, _, err := r.Load(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestLoadMissingDir(t *testing.T) {
	r := serve.NewRegistry(filepath.Join(t.TempDir(), "nope"), 0)
	if _, _, err := r.Load(); err == nil {
		t.Fatal("Load of a missing directory succeeded")
	}
}

func TestLoadDuplicateRef(t *testing.T) {
	dir := t.TempDir()
	writeProgram(t, dir, "chairs@1.text.json", learnChairProgram(t))
	writeProgram(t, dir, "chairs@1.sheet.json", learnChairProgram(t))
	if _, _, err := serve.NewRegistry(dir, 0).Load(); err == nil ||
		!strings.Contains(err.Error(), "duplicate program") {
		t.Fatalf("Load = %v, want duplicate program error", err)
	}
}

// TestLoadCorruptKeepsCatalog: a failed rescan must leave the previous
// catalog live — a bad deploy never takes down serving.
func TestLoadCorruptKeepsCatalog(t *testing.T) {
	dir := programDir(t)
	r := serve.NewRegistry(dir, 0)
	if _, _, err := r.Load(); err != nil {
		t.Fatal(err)
	}
	writeProgram(t, dir, "chairs@2.text.json", []byte("{corrupt"))
	if _, _, err := r.Load(); err == nil {
		t.Fatal("Load accepted a corrupt artifact")
	}
	e, err := r.Resolve("chairs")
	if err != nil || e.Version != 1 {
		t.Fatalf("Resolve after failed reload = %v, %v; want chairs@1", e, err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want the previous catalog", r.Len())
	}
}

func TestResolve(t *testing.T) {
	dir := programDir(t)
	writeProgram(t, dir, "chairs@2.text.json", learnNamesProgram(t))
	r := serve.NewRegistry(dir, 0)
	if _, _, err := r.Load(); err != nil {
		t.Fatal(err)
	}
	if e, err := r.Resolve("chairs"); err != nil || e.Version != 2 {
		t.Fatalf(`Resolve("chairs") = v%d, %v; want the newest version 2`, e.Version, err)
	}
	if e, err := r.Resolve("chairs@1"); err != nil || e.Version != 1 {
		t.Fatalf(`Resolve("chairs@1") = %v, %v; want v1`, e, err)
	}
	if _, err := r.Resolve("tables"); !errors.Is(err, serve.ErrUnknownProgram) {
		t.Fatalf(`Resolve("tables") = %v, want ErrUnknownProgram`, err)
	}
	if _, err := r.Resolve("chairs@3"); !errors.Is(err, serve.ErrVersionMismatch) {
		t.Fatalf(`Resolve("chairs@3") = %v, want ErrVersionMismatch`, err)
	}
	if _, err := r.Resolve("chairs@x"); !errors.Is(err, serve.ErrVersionMismatch) {
		t.Fatalf(`Resolve("chairs@x") = %v, want ErrVersionMismatch`, err)
	}
	if _, err := r.Resolve(""); !errors.Is(err, serve.ErrUnknownProgram) {
		t.Fatalf(`Resolve("") = %v, want ErrUnknownProgram`, err)
	}
}

// TestReloadPreservesIdentity: an unchanged artifact keeps its entry — and
// with it the compiled-program pool and serving counters — across reloads.
func TestReloadPreservesIdentity(t *testing.T) {
	dir := programDir(t)
	r := serve.NewRegistry(dir, 0)
	if _, _, err := r.Load(); err != nil {
		t.Fatal(err)
	}
	e1, err := r.Resolve("chairs")
	if err != nil {
		t.Fatal(err)
	}
	compiles := e1.Compiles()
	added, removed, err := r.Load()
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || removed != 0 {
		t.Fatalf("no-op reload reported added=%d removed=%d", added, removed)
	}
	e2, err := r.Resolve("chairs")
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatal("unchanged artifact did not keep its entry identity across reload")
	}
	if e2.Compiles() != compiles {
		t.Fatalf("reload reset the compile counter: %d -> %d", compiles, e2.Compiles())
	}
}

// TestEntrySurvivesCatalogDrop: an entry resolved before a reload stays
// fully runnable after the reload drops it — the in-flight-on-old-version
// guarantee of hot reload.
func TestEntrySurvivesCatalogDrop(t *testing.T) {
	dir := programDir(t)
	r := serve.NewRegistry(dir, 0)
	if _, _, err := r.Load(); err != nil {
		t.Fatal(err)
	}
	old, err := r.Resolve("chairs")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "chairs@1.text.json")); err != nil {
		t.Fatal(err)
	}
	writeProgram(t, dir, "chairs@2.text.json", learnNamesProgram(t))
	added, removed, err := r.Load()
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || removed != 1 {
		t.Fatalf("reload reported added=%d removed=%d, want 1/1", added, removed)
	}
	if e, err := r.Resolve("chairs"); err != nil || e.Version != 2 {
		t.Fatalf("catalog resolves v%d, %v; want the new version 2", e.Version, err)
	}
	// The dropped entry still runs documents through the batch pool.
	var out strings.Builder
	sum, err := batch.Run(context.Background(), batch.Options{
		Programs: old, DocType: old.DocType, Workers: 1, Ordered: true,
	}, []batch.Source{batch.StringSource("d", chairDoc("Bistro", "75.40"))}, &out)
	if err != nil {
		t.Fatalf("running the dropped entry: %v", err)
	}
	if sum.Docs != 1 || sum.Errors != 0 {
		t.Fatalf("dropped entry run summary: %+v", sum)
	}
	if !strings.Contains(out.String(), `"Prices":[75.40]`) {
		t.Fatalf("dropped entry did not run the old program: %s", out.String())
	}
}

// TestCompiledPoolLRU: the registry-wide instance pool respects its cap,
// reuses instances across acquire/release cycles, and evicts the least
// recently used entries' spares first.
func TestCompiledPoolLRU(t *testing.T) {
	dir := t.TempDir()
	artifact := learnChairProgram(t)
	writeProgram(t, dir, "a@1.text.json", artifact)
	writeProgram(t, dir, "b@1.text.json", artifact)
	writeProgram(t, dir, "c@1.text.json", artifact)
	r := serve.NewRegistry(dir, 2)
	if _, _, err := r.Load(); err != nil {
		t.Fatal(err)
	}
	if got := r.CachedInstances(); got > 2 {
		t.Fatalf("CachedInstances after load = %d, want <= cap 2", got)
	}
	a, _ := r.Resolve("a")
	b, _ := r.Resolve("b")
	c, _ := r.Resolve("c")

	// Acquire/release on one entry reuses the pooled instance: no compile.
	before := a.Compiles()
	for i := 0; i < 5; i++ {
		p, err := a.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		a.Release(p)
	}
	if a.Compiles() > before+1 {
		t.Fatalf("pool did not amortize compiles: %d -> %d", before, a.Compiles())
	}

	// Filling every pool keeps the global cap: releasing a third entry's
	// instance evicts the least recently used spare.
	for _, e := range []*serve.Entry{a, b, c} {
		p, err := e.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		e.Release(p)
	}
	if got := r.CachedInstances(); got != 2 {
		t.Fatalf("CachedInstances = %d, want exactly cap 2", got)
	}
	// a was released first, so its spare was the LRU victim; its next
	// acquire is a fresh compile, while c (most recent) hits its pool.
	ac, cc := a.Compiles(), c.Compiles()
	pa, _ := a.Acquire()
	pc, _ := c.Acquire()
	if a.Compiles() != ac+1 {
		t.Fatalf("LRU victim a should recompile: compiles %d -> %d", ac, a.Compiles())
	}
	if c.Compiles() != cc {
		t.Fatalf("most-recent c should hit its pool: compiles %d -> %d", cc, c.Compiles())
	}
	a.Release(pa)
	c.Release(pc)
}
