package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"flashextract/internal/admin"
	"flashextract/internal/batch"
	"flashextract/internal/metrics"
	"flashextract/internal/serve"
)

// TestConcurrentScrapes hammers /metrics and /requests while extraction
// requests are in flight — the observability plane must be readable at any
// moment of a run without torn data (the race detector is the real
// assertion here) — and then self-checks that the whole arrangement
// drained without leaking goroutines.
func TestConcurrentScrapes(t *testing.T) {
	baseline := runtime.NumGoroutine()

	reg := metrics.NewRegistry()
	mon := &batch.Monitor{}
	s := newServer(t, programDir(t), serve.Options{
		Metrics:   reg,
		Monitor:   mon,
		Trace:     true,
		AccessLog: io.Discard,
	})
	adm := admin.New(reg, mon)
	adm.Handle("/requests", s.RequestsHandler())
	if err := adm.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := adm.Addr()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup

	// The extraction load: concurrent scan_batch requests keep the batch
	// pool, slow-request ring, metrics, and access log all hot.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				docs := []map[string]string{
					{"name": "a.txt", "content": chairDoc("Aeron", "540.00")},
					{"name": "b.txt", "content": chairDoc("Tulip", "99.99")},
				}
				line := mustJSON(t, map[string]any{
					"id": fmt.Sprintf("w%d-%d", w, i), "op": "scan_batch",
					"program": "chairs", "docs": docs,
				})
				resp := s.HandleLine(ctx, []byte(line))
				if !resp.OK && ctx.Err() == nil {
					t.Errorf("scan_batch failed mid-load: %+v", resp)
					return
				}
			}
		}(w)
	}

	// The scrapers: each endpoint is polled for the duration of the load.
	scrape := func(path string, check func(body []byte) error) {
		defer wg.Done()
		client := &http.Client{Timeout: 2 * time.Second}
		for ctx.Err() == nil {
			resp, err := client.Get("http://" + addr + path)
			if err != nil {
				if ctx.Err() == nil {
					t.Errorf("GET %s: %v", path, err)
				}
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				continue // injected/transient read noise is not the point here
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s = %d", path, resp.StatusCode)
				return
			}
			if err := check(body); err != nil {
				t.Errorf("GET %s: %v", path, err)
				return
			}
		}
	}
	wg.Add(2)
	go scrape("/metrics", func(body []byte) error {
		if len(body) > 0 && !strings.HasPrefix(string(body), "# HELP ") {
			return fmt.Errorf("exposition does not open with a HELP line: %.60q", body)
		}
		return nil
	})
	go scrape("/requests", func(body []byte) error {
		var file struct {
			Schema   string               `json:"schema"`
			Requests []serve.RequestTrace `json:"requests"`
		}
		if err := json.Unmarshal(body, &file); err != nil {
			return fmt.Errorf("not JSON: %v", err)
		}
		if file.Schema != serve.RequestsSchema {
			return fmt.Errorf("schema = %q", file.Schema)
		}
		for _, rt := range file.Requests {
			if rt.RequestID == "" {
				return fmt.Errorf("retained request without id: %+v", rt)
			}
		}
		return nil
	})

	time.Sleep(300 * time.Millisecond)
	cancel()
	wg.Wait()

	sctx, scancel := context.WithTimeout(context.Background(), time.Second)
	defer scancel()
	if err := adm.Shutdown(sctx); err != nil {
		t.Fatalf("admin shutdown: %v", err)
	}

	// Goroutine-leak self-check, the same contract the CLI enforces: after
	// load and shutdown the process drains back to (about) its baseline.
	const slack = 3
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d alive after shutdown (baseline %d)", n, baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The scrape ran against live data: the load must have actually counted.
	if reg.Counter(metrics.ServeRequests) == 0 {
		t.Fatal("no serve requests recorded during the load")
	}
	if reg.Counter(metrics.BatchDocs) == 0 {
		t.Fatal("no batch docs recorded during the load")
	}
}
