package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flashextract/internal/batch"
	"flashextract/internal/faults"
	"flashextract/internal/serve"
)

// writeCorpus materializes a mixed corpus — matching documents, empty
// files, and garbage — as files, returning the glob that covers them.
func writeCorpus(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < n; i++ {
		var content string
		switch i % 4 {
		case 0, 1:
			content = chairDoc(fmt.Sprintf("Model%d", i), fmt.Sprintf("%d.75", i+1))
		case 2:
			content = "no chairs here\n"
		case 3:
			content = ""
		}
		path := filepath.Join(dir, fmt.Sprintf("doc%03d.txt", i))
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, "*.txt")
}

// oneShot runs the corpus through batch.Run exactly as the one-shot CLI
// does — artifact deserialization per worker, no registry — and returns
// the NDJSON bytes.
func oneShot(t *testing.T, artifact []byte, glob string, chaosSpec string) []byte {
	t.Helper()
	matches, err := filepath.Glob(glob)
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]batch.Source, len(matches))
	for i, m := range matches {
		sources[i] = batch.FileSource(m)
	}
	opts := batch.Options{Program: artifact, DocType: "text", Workers: 4, Ordered: true}
	if chaosSpec != "" {
		inj, err := faults.ParseSpec(chaosSpec)
		if err != nil {
			t.Fatal(err)
		}
		opts.Chaos = inj
		opts.SelfCheck = true
	}
	var buf bytes.Buffer
	if _, err := batch.Run(context.Background(), opts, sources, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// viaServe runs the same corpus through a fresh server's scan_batch and
// returns the reassembled NDJSON bytes.
func viaServe(t *testing.T, glob string, chaosSpec string) []byte {
	t.Helper()
	opts := serve.Options{Workers: 4}
	if chaosSpec != "" {
		inj, err := faults.ParseSpec(chaosSpec)
		if err != nil {
			t.Fatal(err)
		}
		opts.Chaos = inj
		opts.SelfCheck = true
	}
	s := newServer(t, programDir(t), opts)
	req := mustJSON(t, map[string]any{
		"id": "diff", "op": "scan_batch", "program": "chairs", "globs": []string{glob},
	})
	resp := s.HandleLine(context.Background(), []byte(req))
	if !resp.OK {
		t.Fatalf("scan_batch failed: %+v", resp)
	}
	return joinRecords(resp.Records)
}

// TestScanBatchMatchesOneShotBatch: the tentpole differential — the
// persistent server's scan_batch must be byte-identical to the one-shot
// batch runtime over the same corpus and program, glob expansion included.
func TestScanBatchMatchesOneShotBatch(t *testing.T) {
	glob := writeCorpus(t, 24)
	artifact := learnChairProgram(t)
	want := oneShot(t, artifact, glob, "")
	got := viaServe(t, glob, "")
	if len(want) == 0 {
		t.Fatal("empty one-shot output; the corpus did not run")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("scan_batch diverges from one-shot batch\n--- serve ---\n%s--- batch ---\n%s", got, want)
	}
}

// TestScanBatchMatchesOneShotBatchChaos: the same differential with the
// deterministic transient/output-neutral chaos sites armed — fresh
// injectors built from the same seed on both sides, since fault decisions
// are deterministic per (seed, site, key) but consume attempts.
func TestScanBatchMatchesOneShotBatchChaos(t *testing.T) {
	glob := writeCorpus(t, 24)
	artifact := learnChairProgram(t)
	const spec = "seed=11,delay=1ms"
	want := oneShot(t, artifact, glob, spec)
	got := viaServe(t, glob, spec)
	if !bytes.Equal(got, want) {
		t.Errorf("chaos scan_batch diverges from one-shot chaos batch\n--- serve ---\n%s--- batch ---\n%s", got, want)
	}
	// And chaos must have been byte-neutral in the first place.
	if plain := oneShot(t, artifact, glob, ""); !bytes.Equal(want, plain) {
		t.Errorf("transient chaos sites changed the one-shot output")
	}
}

// TestScanMatchesScanBatch: a scan is definitionally a one-document
// scan_batch; their records must be byte-identical.
func TestScanMatchesScanBatch(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{})
	content := chairDoc("Bistro", "75.40")
	scan := s.HandleLine(context.Background(), []byte(mustJSON(t, map[string]any{
		"id": "1", "op": "scan", "program": "chairs", "doc_name": "d.txt", "content": content,
	})))
	sb := s.HandleLine(context.Background(), []byte(mustJSON(t, map[string]any{
		"id": "2", "op": "scan_batch", "program": "chairs",
		"docs": []map[string]string{{"name": "d.txt", "content": content}},
	})))
	if !scan.OK || !sb.OK {
		t.Fatalf("scan=%+v scan_batch=%+v", scan, sb)
	}
	if len(sb.Records) != 1 || !bytes.Equal(scan.Record, sb.Records[0]) {
		t.Errorf("scan record %s != scan_batch record %v", scan.Record, sb.Records)
	}
}
