package serve

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"flashextract/internal/batch"
	"flashextract/internal/docstore"
	"flashextract/internal/engine"
)

// DefaultCompiledCap bounds the registry's pool of compiled program
// instances when NewRegistry is given a non-positive cap.
const DefaultCompiledCap = 16

// Registry is the program catalog of the extraction server: named,
// versioned saved programs loaded from a directory, the learn-once/
// serve-many store of §7 of the paper.
//
// Artifacts follow the naming convention
//
//	<name>@<version>.<doctype>.json
//
// e.g. invoices@3.text.json — name [A-Za-z0-9_-]+, version a positive
// integer, doctype one of text/web/sheet. Load scans the directory and
// swaps the catalog atomically; entries whose bytes did not change keep
// their identity (and their compiled-program pool and counters) across
// reloads, and an entry resolved before a reload stays runnable after it,
// so in-flight requests always finish on the version they resolved.
//
// Compiled programs are pooled per entry under a registry-wide LRU with a
// size cap: Acquire checks an instance out (compiling only on a pool
// miss), Release returns it, and the least recently used entries' spare
// instances are dropped first when the cap is exceeded. Entry implements
// batch.ProgramSource, so the batch worker pool draws its per-worker
// programs straight from the pool.
type Registry struct {
	dir string
	cap int

	mu      sync.RWMutex
	catalog map[string][]*Entry // name → entries, version ascending

	// The compiled-instance pool: entries with spare instances sit in an
	// LRU list (front = most recently used); cached counts the spare
	// instances across all entries.
	pmu    sync.Mutex
	lru    *list.List
	cached int
}

// Entry is one catalog program: an immutable artifact plus its pooled
// compiled instances and serving counters. Entries remain valid after the
// catalog drops them — holders finish their runs on the old version.
type Entry struct {
	// Name, Version, and DocType come from the filename convention.
	Name    string
	Version int
	DocType string
	// Path is the artifact file the entry was loaded from.
	Path string
	// Digest is the hex SHA-256 of the artifact bytes.
	Digest string

	raw []byte
	reg *Registry

	// free holds spare compiled instances; elem is the entry's LRU slot
	// (non-nil iff len(free) > 0). Both are guarded by reg.pmu.
	free []*engine.SchemaProgram
	elem *list.Element

	// compiles counts artifact deserializations (pool misses); scans,
	// docs, and errs are the per-program serving counters surfaced by
	// /programs.
	compiles atomic.Int64
	scans    atomic.Int64
	docs     atomic.Int64
	errs     atomic.Int64
}

// Errors distinguishing the two ways a program reference can miss, so the
// server can answer unknown_program vs version_mismatch.
var (
	ErrUnknownProgram  = fmt.Errorf("serve: unknown program")
	ErrVersionMismatch = fmt.Errorf("serve: version mismatch")
)

// NewRegistry creates a registry over a program directory; call Load
// before serving. cap bounds the pooled compiled instances (<= 0 selects
// DefaultCompiledCap).
func NewRegistry(dir string, cap int) *Registry {
	if cap <= 0 {
		cap = DefaultCompiledCap
	}
	return &Registry{dir: dir, cap: cap, catalog: map[string][]*Entry{}, lru: list.New()}
}

// Dir returns the program directory the registry scans.
func (r *Registry) Dir() string { return r.dir }

// Load (re)scans the program directory and atomically swaps the catalog.
// Every discovered artifact is compiled once up front, so a corrupt file
// fails the whole load and the previous catalog stays live — a bad deploy
// never takes down serving. Unchanged entries (same name, version, and
// digest) keep their identity; Load reports how many entries were added
// and removed relative to the previous catalog.
func (r *Registry) Load() (added, removed int, err error) {
	if _, err := os.Stat(r.dir); err != nil {
		return 0, 0, fmt.Errorf("serve: program directory: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(r.dir, "*.json"))
	if err != nil {
		return 0, 0, fmt.Errorf("serve: scanning %s: %w", r.dir, err)
	}
	sort.Strings(names)
	// Filename-only pre-pass: catch convention violations and duplicate
	// references before paying for any compile.
	refs := map[string]string{}
	for _, path := range names {
		name, version, _, err := parseProgramFilename(filepath.Base(path))
		if err != nil {
			return 0, 0, err
		}
		ref := fmt.Sprintf("%s@%d", name, version)
		if prev, ok := refs[ref]; ok {
			return 0, 0, fmt.Errorf("serve: duplicate program %s (%s and %s)", ref, prev, path)
		}
		refs[ref] = path
	}
	next := map[string][]*Entry{}
	seen := map[string]*Entry{}
	compiled := map[*Entry]*engine.SchemaProgram{}
	for _, path := range names {
		e, prog, err := r.loadEntry(path)
		if err != nil {
			return 0, 0, err
		}
		seen[e.Ref()] = e
		compiled[e] = prog
		next[e.Name] = append(next[e.Name], e)
	}
	for _, es := range next {
		sort.Slice(es, func(i, j int) bool { return es[i].Version < es[j].Version })
	}

	r.mu.Lock()
	prev := r.catalog
	// Preserve identity for unchanged artifacts (same name, version, and
	// digest) so their pools and counters survive the reload.
	for name, es := range next {
		for i, e := range es {
			for _, old := range prev[name] {
				if old.Version == e.Version && old.Digest == e.Digest {
					es[i] = old
				}
			}
		}
	}
	kept := map[*Entry]bool{}
	for _, es := range next {
		for _, e := range es {
			kept[e] = true
		}
	}
	for _, es := range prev {
		for _, e := range es {
			if !kept[e] {
				removed++
			}
		}
	}
	prevCount := 0
	for _, es := range prev {
		prevCount += len(es)
	}
	added = len(seen) - (prevCount - removed)
	r.catalog = next
	r.mu.Unlock()
	// Seed the pools of the entries that actually entered the catalog with
	// their validation compiles; instances of entries superseded by an
	// unchanged predecessor are simply dropped.
	for e, prog := range compiled {
		if kept[e] {
			e.Release(prog)
		}
	}
	return added, removed, nil
}

// loadEntry parses one artifact file — filename convention, digest, and a
// validation compile returned alongside the entry so Load can seed the
// pool of entries that make it into the catalog.
func (r *Registry) loadEntry(path string) (*Entry, *engine.SchemaProgram, error) {
	name, version, docType, err := parseProgramFilename(filepath.Base(path))
	if err != nil {
		return nil, nil, err
	}
	lang, err := batch.LanguageFor(docType)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: %s: %w", filepath.Base(path), err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: reading %s: %w", filepath.Base(path), err)
	}
	e := &Entry{
		Name: name, Version: version, DocType: docType, Path: path,
		Digest: docstore.Hash(raw).String(),
		raw:    raw, reg: r,
	}
	prog, err := engine.LoadSchemaProgram(raw, lang)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: compiling %s: %w", filepath.Base(path), err)
	}
	e.compiles.Add(1)
	return e, prog, nil
}

// parseProgramFilename splits "<name>@<version>.<doctype>.json".
func parseProgramFilename(base string) (name string, version int, docType string, err error) {
	fail := func() (string, int, string, error) {
		return "", 0, "", fmt.Errorf("serve: program file %q does not match <name>@<version>.<doctype>.json", base)
	}
	stem, ok := strings.CutSuffix(base, ".json")
	if !ok {
		return fail()
	}
	stem, docType, ok = cutLast(stem, ".")
	if !ok || docType == "" {
		return fail()
	}
	name, ver, ok := strings.Cut(stem, "@")
	if !ok || name == "" || strings.ContainsAny(name, ".@/\\") {
		return fail()
	}
	for _, c := range name {
		if !(c == '-' || c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return fail()
		}
	}
	version, aerr := strconv.Atoi(ver)
	if aerr != nil || version < 1 {
		return fail()
	}
	return name, version, docType, nil
}

// cutLast splits s around the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// Resolve looks a program reference up in the current catalog: "name"
// resolves the newest version, "name@V" pins one. Misses wrap
// ErrUnknownProgram or ErrVersionMismatch so the server can classify
// them. The returned entry stays runnable even if a reload later drops it
// from the catalog.
func (r *Registry) Resolve(ref string) (*Entry, error) {
	name, ver, pinned := strings.Cut(ref, "@")
	if name == "" {
		return nil, fmt.Errorf("%w: empty program reference", ErrUnknownProgram)
	}
	r.mu.RLock()
	es := r.catalog[name]
	r.mu.RUnlock()
	if len(es) == 0 {
		return nil, fmt.Errorf("%w %q", ErrUnknownProgram, name)
	}
	if !pinned {
		return es[len(es)-1], nil
	}
	v, err := strconv.Atoi(ver)
	if err != nil || v < 1 {
		return nil, fmt.Errorf("%w %q: bad version %q", ErrVersionMismatch, name, ver)
	}
	for _, e := range es {
		if e.Version == v {
			return e, nil
		}
	}
	have := make([]string, len(es))
	for i, e := range es {
		have[i] = strconv.Itoa(e.Version)
	}
	return nil, fmt.Errorf("%w: %s has versions %s, not %d", ErrVersionMismatch, name, strings.Join(have, ", "), v)
}

// List returns the catalog, sorted by name then version.
func (r *Registry) List() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.catalog))
	for name := range r.catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*Entry
	for _, name := range names {
		out = append(out, r.catalog[name]...)
	}
	return out
}

// Len returns the number of catalog entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, es := range r.catalog {
		n += len(es)
	}
	return n
}

// Ref returns the entry's canonical "name@version" reference.
func (e *Entry) Ref() string { return fmt.Sprintf("%s@%d", e.Name, e.Version) }

// Raw returns the artifact bytes (callers must not mutate them).
func (e *Entry) Raw() []byte { return e.raw }

// Info returns the entry's protocol listing.
func (e *Entry) Info() ProgramInfo {
	return ProgramInfo{Name: e.Name, Version: e.Version, Ref: e.Ref(),
		DocType: e.DocType, Digest: e.Digest}
}

// Compiles returns how many times the artifact has been deserialized —
// the pool-miss count the soak test pins down to prove the LRU carries
// the serving load.
func (e *Entry) Compiles() int64 { return e.compiles.Load() }

// Scans / Docs / Errors return the entry's serving counters: requests that
// ran it, documents those runs processed, and error records among them.
func (e *Entry) Scans() int64  { return e.scans.Load() }
func (e *Entry) Docs() int64   { return e.docs.Load() }
func (e *Entry) Errors() int64 { return e.errs.Load() }

// noteScan records one run of the entry into its serving counters.
func (e *Entry) noteScan(docs, errs int64) {
	e.scans.Add(1)
	e.docs.Add(docs)
	e.errs.Add(errs)
}

// Cached reports the entry's spare compiled instances currently pooled.
func (e *Entry) Cached() int {
	e.reg.pmu.Lock()
	defer e.reg.pmu.Unlock()
	return len(e.free)
}

// Acquire implements batch.ProgramSource: it checks a compiled instance
// out of the pool, compiling the artifact only on a miss. The instance is
// exclusively the caller's until Release.
func (e *Entry) Acquire() (*engine.SchemaProgram, error) {
	e.reg.pmu.Lock()
	if n := len(e.free); n > 0 {
		prog := e.free[n-1]
		e.free = e.free[:n-1]
		e.reg.cached--
		e.touchLocked()
		e.reg.pmu.Unlock()
		return prog, nil
	}
	e.reg.pmu.Unlock()
	lang, err := batch.LanguageFor(e.DocType)
	if err != nil {
		return nil, err
	}
	prog, err := engine.LoadSchemaProgram(e.raw, lang)
	if err != nil {
		return nil, fmt.Errorf("serve: compiling %s: %w", e.Ref(), err)
	}
	e.compiles.Add(1)
	return prog, nil
}

// Release implements batch.ProgramSource: it returns an instance to the
// pool and evicts least-recently-used spares beyond the registry cap.
func (e *Entry) Release(prog *engine.SchemaProgram) {
	if prog == nil {
		return
	}
	r := e.reg
	r.pmu.Lock()
	defer r.pmu.Unlock()
	e.free = append(e.free, prog)
	r.cached++
	e.touchLocked()
	for r.cached > r.cap {
		back := r.lru.Back()
		if back == nil {
			return
		}
		tail := back.Value.(*Entry)
		n := len(tail.free)
		tail.free[n-1] = nil
		tail.free = tail.free[:n-1]
		r.cached--
		if len(tail.free) == 0 {
			r.lru.Remove(back)
			tail.elem = nil
		}
	}
}

// touchLocked moves the entry to the LRU front (inserting or removing its
// slot as its spare count crosses zero). Callers hold reg.pmu.
func (e *Entry) touchLocked() {
	if len(e.free) == 0 {
		if e.elem != nil {
			e.reg.lru.Remove(e.elem)
			e.elem = nil
		}
		return
	}
	if e.elem == nil {
		e.elem = e.reg.lru.PushFront(e)
		return
	}
	e.reg.lru.MoveToFront(e.elem)
}

// CachedInstances reports the spare compiled instances pooled across the
// registry (test introspection).
func (r *Registry) CachedInstances() int {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	return r.cached
}
