package serve_test

import (
	"context"
	"encoding/json"
	"testing"

	"flashextract/internal/serve"
)

// FuzzServeRequest fuzzes the NDJSON frame decoder end to end through
// HandleLine: whatever bytes arrive, the server must not panic and must
// answer with exactly one well-formed frame — ok xor error, marshalable,
// and with a crafted (never toolchain-dependent) bad_request message for
// malformed input. The registry is empty, so program references miss
// cheaply and the fuzzer spends its budget on the decoder, not on
// extraction.
func FuzzServeRequest(f *testing.F) {
	seeds := []string{
		`{"id":"1","op":"list_programs"}`,
		`{"id":"2","op":"reload"}`,
		`{"id":"3","op":"close"}`,
		`{"id":"4","op":"scan","program":"chairs","content":"inventory\n"}`,
		`{"id":"5","op":"scan_batch","program":"chairs@2","docs":[{"name":"a","content":"x"}],"timeout_ms":50,"ordered":false}`,
		`{"id":"6","op":"scan_batch","program":"p","globs":["*.txt"]}`,
		`{"id":"7","op":"scan","program":"p","timeout_ms":-1}`,
		`{"id":8,"op":"scan"}`,
		`{not json`,
		`42`,
		`"scan"`,
		`[]`,
		`null`,
		``,
		"\x00\xff\xfe",
		`{"op":{}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	dir := f.TempDir()
	reg := serve.NewRegistry(dir, 0)
	if _, _, err := reg.Load(); err != nil {
		f.Fatal(err)
	}
	srv, err := serve.New(serve.Options{Registry: reg})
	if err != nil {
		f.Fatal(err)
	}
	ctx := context.Background()
	f.Fuzz(func(t *testing.T, line []byte) {
		resp := srv.HandleLine(ctx, line)
		if resp.OK == (resp.Error != nil) {
			t.Fatalf("input %q: frame is not ok xor error: %+v", line, resp)
		}
		out, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("input %q: response does not marshal: %v", line, err)
		}
		if !json.Valid(out) {
			t.Fatalf("input %q: response is not valid JSON: %s", line, out)
		}
		var round serve.Response
		if err := json.Unmarshal(out, &round); err != nil {
			t.Fatalf("input %q: response does not round-trip: %v", line, err)
		}
	})
}
