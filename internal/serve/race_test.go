package serve_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"flashextract/internal/batch"
	"flashextract/internal/faults"
	"flashextract/internal/metrics"
	"flashextract/internal/serve"
)

// waitGoroutines polls until the goroutine count drains back to (about)
// the baseline, failing the test if it never does — the leak self-check of
// the concurrency suite.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const slack = 3
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestConcurrentClients runs N concurrent stream clients interleaving
// scan, scan_batch, list_programs, and reload against one server — with
// hot reloads rewriting the program directory mid-flight — and self-checks
// for goroutine leaks after every stream closes. Run under -race, this is
// the data-race coverage of the serving stack.
func TestConcurrentClients(t *testing.T) {
	dir := programDir(t)
	reg := metrics.NewRegistry()
	s := newServer(t, dir, serve.Options{Metrics: reg, Monitor: &batch.Monitor{}, MaxInflight: 256})
	baseline := runtime.NumGoroutine()

	const clients = 8
	const iters = 12
	// A writer goroutine keeps flipping chairs@2 in and out of the
	// directory so reloads genuinely add and remove catalog entries.
	namesArtifact := learnNamesProgram(t)
	var flip sync.WaitGroup
	stopFlip := make(chan struct{})
	flip.Add(1)
	go func() {
		defer flip.Done()
		present := false
		for {
			select {
			case <-stopFlip:
				return
			default:
			}
			// Plain os calls: helpers that can Fatal don't belong off the
			// test goroutine, and a transient fs hiccup here is harmless.
			if present {
				_ = os.Remove(filepath.Join(dir, "chairs@2.text.json"))
			} else {
				_ = os.WriteFile(filepath.Join(dir, "chairs@2.text.json"), namesArtifact, 0o644)
			}
			present = !present
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ss := startSession(t, context.Background(), s)
			if got := ss.recvResponse(); got.Op != serve.OpReady {
				t.Errorf("client %d: first frame %+v", c, got)
				return
			}
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("c%d-%d", c, i)
				switch i % 4 {
				case 0:
					resp := ss.roundTrip(`{"id":"` + id + `","op":"scan","program":"chairs@1","content":"inventory\nChair: X (price: $1.00)\n"}`)
					if !resp.OK {
						t.Errorf("client %d scan: %+v", c, resp)
					}
				case 1:
					resp := ss.roundTrip(`{"id":"` + id + `","op":"scan_batch","program":"chairs@1","docs":[{"name":"a","content":"inventory\nChair: Y (price: $2.00)\n"},{"name":"b","content":"x"}]}`)
					if !resp.OK || len(resp.Records) != 2 {
						t.Errorf("client %d scan_batch: %+v", c, resp)
					}
				case 2:
					resp := ss.roundTrip(`{"id":"` + id + `","op":"list_programs"}`)
					if !resp.OK {
						t.Errorf("client %d list: %+v", c, resp)
					}
				case 3:
					// Reload races with the flipper; both outcomes are fine,
					// but the frame must be well-formed.
					resp := ss.roundTrip(`{"id":"` + id + `","op":"reload"}`)
					if resp.OK == (resp.Error != nil) {
						t.Errorf("client %d reload frame: %+v", c, resp)
					}
				}
			}
			resp := ss.roundTrip(`{"id":"bye","op":"close"}`)
			if !resp.OK || resp.Op != serve.OpClose {
				t.Errorf("client %d close: %+v", c, resp)
			}
			if err := ss.close(); err != nil {
				t.Errorf("client %d serve returned %v", c, err)
			}
		}(c)
	}
	wg.Wait()
	close(stopFlip)
	flip.Wait()
	waitGoroutines(t, baseline)
	if got := s.InflightDocs(); got != 0 {
		t.Fatalf("in-flight docs after drain: %d", got)
	}
}

// TestReloadKeepsInFlightOnOldVersion proves hot-reload isolation end to
// end: a scan resolves chairs@1, a worker-slow chaos stall holds it in
// flight while a reload replaces the catalog with chairs@2 — and the scan
// still answers with the old program's output (prices present), while a
// scan sent after the reload runs the new one (names only).
func TestReloadKeepsInFlightOnOldVersion(t *testing.T) {
	dir := programDir(t)
	inj, err := faults.ParseSpec("seed=3,rate=1,delay=150ms,sites=batch.worker_slow")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(t, dir, serve.Options{Chaos: inj})
	ss := startSession(t, context.Background(), s)
	if got := ss.recvResponse(); got.Op != serve.OpReady {
		t.Fatalf("first frame = %+v", got)
	}

	// The scan resolves v1 at frame arrival, then stalls in the worker.
	ss.send(`{"id":"old","op":"scan","program":"chairs","content":"inventory\nChair: Bistro (price: $75.40)\n"}`)
	// The reload processes inline while the scan is stalled: v1 out, v2 in.
	removeProgram(t, dir, "chairs@1.text.json")
	writeProgram(t, dir, "chairs@2.text.json", learnNamesProgram(t))
	ss.send(`{"id":"swap","op":"reload"}`)

	reload := ss.recvResponse()
	if reload.ID != "swap" || !reload.OK || reload.Added != 1 || reload.Removed != 1 {
		t.Fatalf("reload frame = %+v (the stalled scan must not block it)", reload)
	}
	old := ss.recvResponse()
	if old.ID != "old" || !old.OK {
		t.Fatalf("stalled scan = %+v", old)
	}
	if !strings.Contains(string(old.Record), `"Prices":[75.40]`) {
		t.Fatalf("in-flight scan did not finish on the old version: %s", old.Record)
	}

	after := ss.roundTrip(`{"id":"new","op":"scan","program":"chairs","content":"inventory\nChair: Bistro (price: $75.40)\n"}`)
	if !after.OK {
		t.Fatalf("post-reload scan = %+v", after)
	}
	if strings.Contains(string(after.Record), "Prices") {
		t.Fatalf("post-reload scan still ran the old version: %s", after.Record)
	}
	if resp := ss.roundTrip(`{"id":"z","op":"close"}`); !resp.OK {
		t.Fatalf("close = %+v", resp)
	}
	if err := ss.close(); err != nil {
		t.Fatalf("serve returned %v", err)
	}
}

// TestConcurrentHandleLine exercises the synchronous transport under
// concurrency: the /rpc path shares the limiter, registry, and pools with
// the streams.
func TestConcurrentHandleLine(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{MaxInflight: 64})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				line := fmt.Sprintf(`{"id":"h%d-%d","op":"scan","program":"chairs","content":"inventory\nChair: Z (price: $9.99)\n"}`, c, i)
				resp := s.HandleLine(context.Background(), []byte(line))
				if !resp.OK {
					t.Errorf("scan: %+v", resp)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if got := s.InflightDocs(); got != 0 {
		t.Fatalf("in-flight docs after drain: %d", got)
	}
}

// TestStreamCancelDrains: cancelling the stream context mid-request
// returns from Serve with every in-flight request answered (cancelled
// records, not dropped frames) and no goroutine left behind.
func TestStreamCancelDrains(t *testing.T) {
	dir := programDir(t)
	inj, err := faults.ParseSpec("seed=5,rate=1,delay=100ms,sites=batch.worker_slow")
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(t, dir, serve.Options{Chaos: inj})
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ss := startSession(t, ctx, s)
	if got := ss.recvResponse(); got.Op != serve.OpReady {
		t.Fatalf("first frame = %+v", got)
	}
	ss.send(`{"id":"s","op":"scan","program":"chairs","content":"inventory\nChair: Q (price: $3.50)\n"}`)
	time.Sleep(20 * time.Millisecond) // let the scan enter its stall
	cancel()
	// The stalled scan's frame is still written before Serve returns.
	resp := ss.recvResponse()
	if resp.ID != "s" {
		t.Fatalf("in-flight frame = %+v", resp)
	}
	if resp.OK == (resp.Error != nil) {
		t.Fatalf("drained frame is not ok xor error: %+v", resp)
	}
	if err := ss.close(); err != context.Canceled {
		t.Fatalf("serve returned %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)
}
