package serve

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"flashextract/internal/trace"
)

// DefaultSlowRequests bounds the slow-request ring when
// Options.SlowRequests is non-positive.
const DefaultSlowRequests = 16

// RequestsSchema identifies the /requests response envelope.
const RequestsSchema = "flashextract-requests/v1"

// AccessLogSchema identifies access-log NDJSON lines.
const AccessLogSchema = "flashextract-access-log/v1"

// RequestTrace is one retained slow request: its identity, outcome, and —
// when tracing is on — the request root span tree, documents included.
type RequestTrace struct {
	// RequestID is the server-minted id correlating the request across the
	// access log, span attributes, and batch log lines.
	RequestID string `json:"request_id"`
	// ID is the client-supplied frame id (may be empty).
	ID string `json:"id,omitempty"`
	Op string `json:"op"`
	// Program is the requested program reference.
	Program string `json:"program,omitempty"`
	// Docs is the number of documents the request admitted.
	Docs int `json:"docs"`
	// Status is "ok" or the error frame's code.
	Status    string  `json:"status"`
	LatencyMS float64 `json:"latency_ms"`
	// Trace is the request root span tree (flashextract-trace/v1 node),
	// null when tracing is off.
	Trace *trace.Node `json:"trace,omitempty"`
}

// requestsFile is the /requests response envelope.
type requestsFile struct {
	Schema   string         `json:"schema"`
	Requests []RequestTrace `json:"requests"`
}

// slowRing retains the cap slowest extraction requests seen so far —
// tail-latency capture: the requests worth explaining are the ones that
// were slow, and their traces are gone from the per-doc ring by the time
// anyone asks.
type slowRing struct {
	mu  sync.Mutex
	cap int
	rs  []RequestTrace
}

func newSlowRing(cap int) *slowRing {
	return &slowRing{cap: cap}
}

// record offers one finished request to the ring; it is kept if the ring
// has room or the request is slower than the current fastest entry.
func (r *slowRing) record(rt RequestTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rs = append(r.rs, rt)
	sort.SliceStable(r.rs, func(i, j int) bool { return r.rs[i].LatencyMS > r.rs[j].LatencyMS })
	if len(r.rs) > r.cap {
		r.rs = r.rs[:r.cap]
	}
}

// snapshot returns the retained requests, slowest first.
func (r *slowRing) snapshot() []RequestTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RequestTrace, len(r.rs))
	copy(out, r.rs)
	return out
}

// accessEntry is one flashextract-access-log/v1 NDJSON line: the
// structured access record of one handled frame.
type accessEntry struct {
	Schema    string  `json:"schema"`
	RequestID string  `json:"request_id"`
	ID        string  `json:"id,omitempty"`
	Op        string  `json:"op,omitempty"`
	Program   string  `json:"program,omitempty"`
	Docs      int     `json:"docs"`
	Status    string  `json:"status"`
	LatencyMS float64 `json:"latency_ms"`
	// Bytes is the marshaled size of the response frame.
	Bytes int `json:"bytes"`
}

// accessLog serializes access-log lines onto one writer. A nil writer
// disables it — write is then a no-op, so disabled servers never pay the
// response re-marshal that sizes the bytes field.
type accessLog struct {
	mu sync.Mutex
	w  io.Writer
}

func newAccessLog(w io.Writer) *accessLog {
	return &accessLog{w: w}
}

func (a *accessLog) write(ri *reqInfo, req Request, status string, lat time.Duration, resp *Response) {
	if a.w == nil {
		return
	}
	n := 0
	if b, err := json.Marshal(resp); err == nil {
		n = len(b) + 1 // the newline the transport appends
	}
	line, err := json.Marshal(accessEntry{
		Schema:    AccessLogSchema,
		RequestID: ri.id,
		ID:        req.ID,
		Op:        req.Op,
		Program:   req.Program,
		Docs:      ri.docs,
		Status:    status,
		LatencyMS: float64(lat) / float64(time.Millisecond),
		Bytes:     n,
	})
	if err != nil {
		return
	}
	line = append(line, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _ = a.w.Write(line)
}
