package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"flashextract/internal/batch"
	"flashextract/internal/metrics"
	"flashextract/internal/provenance"
	"flashextract/internal/serve"
)

// TestExplainOp runs the explain op over the chair document and checks
// the response carries both the scan record and a provenance frame whose
// leaves round-trip through the document bytes.
func TestExplainOp(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newServer(t, programDir(t), serve.Options{Metrics: reg})
	doc := chairDoc("Aeron", "540.00")
	resp := s.HandleLine(context.Background(), []byte(mustJSON(t, map[string]any{
		"id": "e1", "op": "explain", "program": "chairs",
		"doc_name": "chair.txt", "content": doc,
	})))
	if !resp.OK || resp.Error != nil {
		t.Fatalf("explain failed: %+v", resp)
	}
	if resp.Record == nil {
		t.Fatal("explain response has no record")
	}
	if len(resp.Explains) != 1 {
		t.Fatalf("explain response has %d frames, want 1", len(resp.Explains))
	}
	var frame provenance.Frame
	if err := json.Unmarshal(resp.Explains[0], &frame); err != nil {
		t.Fatal(err)
	}
	if frame.SchemaName != provenance.Schema {
		t.Fatalf("frame schema = %q", frame.SchemaName)
	}
	if frame.Doc != "chair.txt" {
		t.Fatalf("frame doc = %q", frame.Doc)
	}
	if frame.RequestID == "" {
		t.Fatal("frame has no request id")
	}
	if len(frame.Leaves) == 0 {
		t.Fatal("frame has no leaves")
	}
	for _, leaf := range frame.Leaves {
		if leaf.Span == nil || leaf.Span.Space != "bytes" {
			t.Fatalf("leaf %s has no byte span: %+v", leaf.Path, leaf.Span)
		}
		if got := doc[leaf.Span.Start:leaf.Span.End]; got != leaf.Text {
			t.Fatalf("leaf %s: doc[%d:%d] = %q, want %q",
				leaf.Path, leaf.Span.Start, leaf.Span.End, got, leaf.Text)
		}
		if len(leaf.Ops) == 0 {
			t.Fatalf("leaf %s has no operator path", leaf.Path)
		}
	}
	if got := reg.Counter(metrics.ServeExplainRequests); got != 1 {
		t.Fatalf("serve_explain_requests = %d, want 1", got)
	}
	if got := reg.Counter(metrics.ServeExplainErrors); got != 0 {
		t.Fatalf("serve_explain_errors = %d, want 0", got)
	}
}

// TestExplainMatchesScanRecord pins the differential guarantee at the
// protocol level: explain's record is byte-identical to scan's.
func TestExplainMatchesScanRecord(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{})
	doc := chairDoc("Tulip", "99.99")
	scan := s.HandleLine(context.Background(), []byte(mustJSON(t, map[string]any{
		"id": "s", "op": "scan", "program": "chairs", "doc_name": "d.txt", "content": doc,
	})))
	explain := s.HandleLine(context.Background(), []byte(mustJSON(t, map[string]any{
		"id": "e", "op": "explain", "program": "chairs", "doc_name": "d.txt", "content": doc,
	})))
	if !scan.OK || !explain.OK {
		t.Fatalf("scan ok=%v explain ok=%v", scan.OK, explain.OK)
	}
	if string(scan.Record) != string(explain.Record) {
		t.Fatalf("explain record differs from scan record:\nscan:    %s\nexplain: %s",
			scan.Record, explain.Record)
	}
}

// TestExplainErrors checks error accounting: an explain against an
// unknown program is an explain error, with no provenance fabricated.
func TestExplainErrors(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newServer(t, programDir(t), serve.Options{Metrics: reg})
	resp := s.HandleLine(context.Background(), []byte(`{"id":"x","op":"explain","program":"nope","content":"a"}`))
	if resp.Error == nil || resp.Error.Code != serve.CodeUnknownProgram {
		t.Fatalf("response = %+v", resp)
	}
	if len(resp.Explains) != 0 {
		t.Fatalf("error response carries %d explain frames", len(resp.Explains))
	}
	if got := reg.Counter(metrics.ServeExplainErrors); got != 1 {
		t.Fatalf("serve_explain_errors = %d, want 1", got)
	}
}

// TestAccessLog checks that every handled frame — ok, error, and
// malformed alike — produces one valid access-log line with a non-empty
// request id and sane fields.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s := newServer(t, programDir(t), serve.Options{AccessLog: &buf})
	ctx := context.Background()
	s.HandleLine(ctx, []byte(mustJSON(t, map[string]any{
		"id": "a", "op": "scan", "program": "chairs", "content": chairDoc("Aeron", "1.00"),
	})))
	s.HandleLine(ctx, []byte(`{"id":"b","op":"list_programs"}`))
	s.HandleLine(ctx, []byte(`not json`))
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d access-log lines, want 3", len(lines))
	}
	seen := map[string]bool{}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d is not valid JSON: %q", i, line)
		}
		var e struct {
			Schema    string  `json:"schema"`
			RequestID string  `json:"request_id"`
			Op        string  `json:"op"`
			Docs      int     `json:"docs"`
			Status    string  `json:"status"`
			LatencyMS float64 `json:"latency_ms"`
			Bytes     int     `json:"bytes"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatal(err)
		}
		if e.Schema != serve.AccessLogSchema {
			t.Fatalf("line %d schema = %q", i, e.Schema)
		}
		if e.RequestID == "" {
			t.Fatalf("line %d has no request id", i)
		}
		if seen[e.RequestID] {
			t.Fatalf("request id %s reused", e.RequestID)
		}
		seen[e.RequestID] = true
		if e.Bytes <= 0 {
			t.Fatalf("line %d bytes = %d", i, e.Bytes)
		}
		if e.LatencyMS < 0 {
			t.Fatalf("line %d latency = %v", i, e.LatencyMS)
		}
	}
	var first struct {
		Op     string `json:"op"`
		Docs   int    `json:"docs"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Op != "scan" || first.Docs != 1 || first.Status != "ok" {
		t.Fatalf("scan line = %+v", first)
	}
	var bad struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &bad); err != nil {
		t.Fatal(err)
	}
	if bad.Status != serve.CodeBadRequest {
		t.Fatalf("malformed-frame line status = %q", bad.Status)
	}
}

// TestRequestsEndpoint checks the slow-request ring: extraction requests
// land in /requests with their request ids and, under tracing, a request
// root trace whose children are the document spans.
func TestRequestsEndpoint(t *testing.T) {
	s := newServer(t, programDir(t), serve.Options{Trace: true, Monitor: &batch.Monitor{}, SlowRequests: 4})
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		resp := s.HandleLine(ctx, []byte(mustJSON(t, map[string]any{
			"id": "r", "op": "scan", "program": "chairs", "content": chairDoc("Aeron", "2.00"),
		})))
		if !resp.OK {
			t.Fatalf("scan %d failed: %+v", i, resp)
		}
	}
	rr := httptest.NewRecorder()
	s.RequestsHandler()(rr, httptest.NewRequest("GET", "/requests", nil))
	var file struct {
		Schema   string               `json:"schema"`
		Requests []serve.RequestTrace `json:"requests"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	if file.Schema != serve.RequestsSchema {
		t.Fatalf("schema = %q", file.Schema)
	}
	if len(file.Requests) != 4 {
		t.Fatalf("%d retained requests, want the ring cap 4", len(file.Requests))
	}
	for i, rt := range file.Requests {
		if rt.RequestID == "" || rt.Op != "scan" || rt.Docs != 1 || rt.Status != "ok" {
			t.Fatalf("request %d = %+v", i, rt)
		}
		if rt.Trace == nil {
			t.Fatalf("request %d has no trace under Trace: true", i)
		}
		if rt.Trace.Name != "request:scan" {
			t.Fatalf("request %d root span = %q", i, rt.Trace.Name)
		}
		if len(rt.Trace.Children) == 0 {
			t.Fatalf("request %d trace has no document children", i)
		}
		if i > 0 && rt.LatencyMS > file.Requests[i-1].LatencyMS {
			t.Fatalf("requests not sorted slowest-first at %d", i)
		}
	}
}
