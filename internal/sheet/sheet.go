// Package sheet is the spreadsheet substrate for the FlashExtract
// spreadsheet instantiation (§5.3): a rectangular grid of string cells
// with a small CSV reader for loading test and benchmark workbooks.
package sheet

import (
	"fmt"
	"strings"
)

// Grid is a rectangular spreadsheet: Rows × Cols cells of text. Missing
// trailing cells are empty strings.
type Grid struct {
	Rows, Cols int
	cells      [][]string
}

// New creates an empty grid of the given size.
func New(rows, cols int) *Grid {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sheet: invalid dimensions %d×%d", rows, cols))
	}
	cells := make([][]string, rows)
	for i := range cells {
		cells[i] = make([]string, cols)
	}
	return &Grid{Rows: rows, Cols: cols, cells: cells}
}

// Cell returns the content of cell (r, c); out-of-range coordinates yield
// the empty string, mirroring how spreadsheet UIs expose unbounded grids.
func (g *Grid) Cell(r, c int) string {
	if r < 0 || r >= g.Rows || c < 0 || c >= g.Cols {
		return ""
	}
	return g.cells[r][c]
}

// InRange reports whether (r, c) lies inside the grid.
func (g *Grid) InRange(r, c int) bool {
	return r >= 0 && r < g.Rows && c >= 0 && c < g.Cols
}

// Set assigns cell (r, c); it panics on out-of-range coordinates.
func (g *Grid) Set(r, c int, v string) {
	if !g.InRange(r, c) {
		panic(fmt.Sprintf("sheet: Set(%d,%d) out of range %d×%d", r, c, g.Rows, g.Cols))
	}
	g.cells[r][c] = v
}

// FromCSV parses comma-separated values with double-quote quoting ("" as
// an escaped quote) into a grid, padding short rows.
func FromCSV(src string) (*Grid, error) {
	var rows [][]string
	var cur []string
	var field strings.Builder
	inQuotes := false
	// fieldStarted distinguishes a genuinely empty final field (e.g. a
	// trailing `""`) from end-of-input after a flushed row: a quoted empty
	// string leaves field.Len() == 0 but must still produce a cell.
	fieldStarted := false
	flushField := func() {
		cur = append(cur, field.String())
		field.Reset()
		fieldStarted = false
	}
	flushRow := func() {
		flushField()
		rows = append(rows, cur)
		cur = nil
	}
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case inQuotes:
			if c == '"' {
				if i+1 < len(src) && src[i+1] == '"' {
					field.WriteByte('"')
					i += 2
					continue
				}
				inQuotes = false
				i++
				continue
			}
			field.WriteByte(c)
			i++
		case c == '"' && field.Len() == 0:
			inQuotes = true
			fieldStarted = true
			i++
		case c == ',':
			flushField()
			i++
		case c == '\r':
			i++
		case c == '\n':
			flushRow()
			i++
		default:
			field.WriteByte(c)
			fieldStarted = true
			i++
		}
	}
	if inQuotes {
		return nil, fmt.Errorf("sheet: unterminated quoted field")
	}
	if fieldStarted || field.Len() > 0 || len(cur) > 0 {
		flushRow()
	}
	cols := 0
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	g := New(len(rows), cols)
	for r, row := range rows {
		for c, v := range row {
			g.cells[r][c] = v
		}
	}
	return g, nil
}

// CheckCSV reports whether FromCSV would accept src, without building the
// grid. The reader's only failure mode is an unterminated quoted field, so
// the check replays just the quote state machine: inQuotes plus the
// current field length (a quote only opens a quoted field when the field
// is empty so far; ',' and '\n' reset the field, '\r' does not). The batch
// prefilter relies on (CheckCSV(src) == nil) ⇔ (FromCSV(src) succeeds);
// the agreement is fuzzed by FuzzFromCSV.
func CheckCSV(src string) error {
	inQuotes := false
	fieldLen := 0
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case inQuotes:
			if c == '"' {
				if i+1 < len(src) && src[i+1] == '"' {
					fieldLen++
					i += 2
					continue
				}
				inQuotes = false
				i++
				continue
			}
			fieldLen++
			i++
		case c == '"' && fieldLen == 0:
			inQuotes = true
			i++
		case c == ',':
			fieldLen = 0
			i++
		case c == '\r':
			i++
		case c == '\n':
			fieldLen = 0
			i++
		default:
			fieldLen++
			i++
		}
	}
	if inQuotes {
		return fmt.Errorf("sheet: unterminated quoted field")
	}
	return nil
}

// MustFromCSV is FromCSV for statically known workbooks.
func MustFromCSV(src string) *Grid {
	g, err := FromCSV(src)
	if err != nil {
		panic(err)
	}
	return g
}

// ToCSV renders the grid back to CSV (quoting fields that need it).
func (g *Grid) ToCSV() string {
	var b strings.Builder
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if c > 0 {
				b.WriteByte(',')
			}
			b.WriteString(quoteCSV(g.cells[r][c]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func quoteCSV(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
