package sheet

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFromCSVBasic(t *testing.T) {
	g := MustFromCSV("a,b,c\nd,e,f\n")
	if g.Rows != 2 || g.Cols != 3 {
		t.Fatalf("dims = %d×%d", g.Rows, g.Cols)
	}
	if g.Cell(0, 0) != "a" || g.Cell(1, 2) != "f" {
		t.Fatal("cell contents wrong")
	}
}

func TestFromCSVQuoting(t *testing.T) {
	g := MustFromCSV(`"a,b","say ""hi""",c` + "\n")
	if g.Cell(0, 0) != "a,b" {
		t.Fatalf("quoted comma = %q", g.Cell(0, 0))
	}
	if g.Cell(0, 1) != `say "hi"` {
		t.Fatalf("escaped quote = %q", g.Cell(0, 1))
	}
	if g.Cell(0, 2) != "c" {
		t.Fatalf("plain = %q", g.Cell(0, 2))
	}
}

func TestFromCSVRaggedRowsPadded(t *testing.T) {
	g := MustFromCSV("a,b,c\nd\n")
	if g.Cols != 3 {
		t.Fatalf("cols = %d", g.Cols)
	}
	if g.Cell(1, 1) != "" || g.Cell(1, 2) != "" {
		t.Fatal("short rows should pad with empty cells")
	}
}

func TestFromCSVNoTrailingNewline(t *testing.T) {
	g := MustFromCSV("a,b\nc,d")
	if g.Rows != 2 || g.Cell(1, 1) != "d" {
		t.Fatalf("rows = %d", g.Rows)
	}
}

func TestFromCSVQuotedNewline(t *testing.T) {
	g := MustFromCSV("\"two\nlines\",x\n")
	if g.Rows != 1 || g.Cell(0, 0) != "two\nlines" {
		t.Fatalf("got %d rows, cell = %q", g.Rows, g.Cell(0, 0))
	}
}

// TestFromCSVFinalEmptyQuotedField is the regression test for the dropped
// final row: a last field that is an empty quoted string with no trailing
// newline used to leave field.Len() == 0 and len(cur) == 0, so the row was
// never flushed.
func TestFromCSVFinalEmptyQuotedField(t *testing.T) {
	cases := []struct {
		src        string
		rows, cols int
		last       string
	}{
		{`""`, 1, 1, ""},
		{"a,b\n\"\"", 2, 2, ""},
		{`x,""`, 1, 2, ""},
		{"\"\"\n\"\"", 2, 1, ""},
		{`"q""uote"`, 1, 1, `q"uote`},
	}
	for _, c := range cases {
		g := MustFromCSV(c.src)
		if g.Rows != c.rows || g.Cols != c.cols {
			t.Errorf("FromCSV(%q) = %d×%d, want %d×%d", c.src, g.Rows, g.Cols, c.rows, c.cols)
			continue
		}
		if got := g.Cell(g.Rows-1, g.Cols-1); got != c.last {
			t.Errorf("FromCSV(%q) last cell = %q, want %q", c.src, got, c.last)
		}
	}
}

func TestFromCSVUnterminatedQuote(t *testing.T) {
	if _, err := FromCSV(`"never closed`); err == nil {
		t.Fatal("expected error")
	}
}

func TestCellOutOfRange(t *testing.T) {
	g := New(2, 2)
	if g.Cell(-1, 0) != "" || g.Cell(0, 5) != "" || g.Cell(9, 9) != "" {
		t.Fatal("out-of-range cells must read empty")
	}
	if g.InRange(2, 0) || !g.InRange(1, 1) {
		t.Fatal("InRange broken")
	}
}

func TestSetPanicsOutOfRange(t *testing.T) {
	g := New(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Set(1, 0, "x")
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 2)
}

func TestToCSVRoundTrip(t *testing.T) {
	src := "plain,\"with,comma\",\"q\"\"uote\"\nx,y,z\n"
	g := MustFromCSV(src)
	again := MustFromCSV(g.ToCSV())
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if g.Cell(r, c) != again.Cell(r, c) {
				t.Fatalf("round trip changed (%d,%d): %q vs %q", r, c, g.Cell(r, c), again.Cell(r, c))
			}
		}
	}
}

func TestToCSVRoundTripProperty(t *testing.T) {
	// Round-tripping a grid of arbitrary printable content preserves it.
	f := func(vals [4]string) bool {
		g := New(2, 2)
		for i, v := range vals {
			cleaned := strings.Map(func(r rune) rune {
				if r < ' ' || r > '~' {
					return '_'
				}
				return r
			}, v)
			g.Set(i/2, i%2, cleaned)
		}
		again, err := FromCSV(g.ToCSV())
		if err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			if again.Cell(i/2, i%2) != g.Cell(i/2, i%2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
