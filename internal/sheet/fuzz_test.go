package sheet

import (
	"strings"
	"testing"
)

// FuzzFromCSV asserts the reader never panics and that grids round-trip
// through ToCSV.
func FuzzFromCSV(f *testing.F) {
	for _, seed := range []string{
		"", "a,b\nc,d\n", `"x,y",z`, `"q""uote"`, "ragged\na,b,c\n", "\"open",
		"a\r\nb\r\n", "\"two\nlines\",x", `""`, "a,b\n\"\"", `x,""`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := FromCSV(src)
		// The prefilter's parse-hazard gate depends on CheckCSV agreeing
		// with FromCSV on every input.
		checkErr := CheckCSV(src)
		if (err == nil) != (checkErr == nil) {
			t.Fatalf("CheckCSV/FromCSV disagree: FromCSV=%v CheckCSV=%v", err, checkErr)
		}
		if err != nil {
			if err.Error() != checkErr.Error() {
				t.Fatalf("error messages differ: FromCSV=%q CheckCSV=%q", err, checkErr)
			}
			return
		}
		assertRoundTrip(t, g)
	})
}

// FuzzGridRoundTrip fuzzes the inverse direction: build a grid directly
// from fuzzed cell contents (including empty and quote-only cells the CSV
// reader used to drop at end of input) and assert FromCSV(ToCSV(g))
// reproduces it exactly.
func FuzzGridRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(1), `""`)
	f.Add(uint8(2), uint8(3), "a|b||c,d|\"|\nnl")
	f.Add(uint8(3), uint8(2), "|x|\r|,|\"\"|q\"uote")
	f.Fuzz(func(t *testing.T, rows, cols uint8, cells string) {
		nr := int(rows)%4 + 1
		nc := int(cols)%4 + 1
		g := New(nr, nc)
		parts := strings.Split(cells, "|")
		for i, p := range parts {
			r, c := i/nc, i%nc
			if r >= nr {
				break
			}
			g.Set(r, c, p)
		}
		assertRoundTrip(t, g)
	})
}

// assertRoundTrip checks FromCSV(ToCSV(g)) reproduces g cell for cell.
func assertRoundTrip(t *testing.T, g *Grid) {
	t.Helper()
	again, err := FromCSV(g.ToCSV())
	if err != nil {
		t.Fatalf("ToCSV output unparseable: %v", err)
	}
	if again.Rows != g.Rows || again.Cols != g.Cols {
		t.Fatalf("round trip changed dims: %dx%d vs %dx%d", g.Rows, g.Cols, again.Rows, again.Cols)
	}
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			if g.Cell(r, c) != again.Cell(r, c) {
				t.Fatalf("round trip changed cell (%d,%d): %q vs %q", r, c, g.Cell(r, c), again.Cell(r, c))
			}
		}
	}
}
