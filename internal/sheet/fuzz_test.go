package sheet

import "testing"

// FuzzFromCSV asserts the reader never panics and that grids round-trip
// through ToCSV.
func FuzzFromCSV(f *testing.F) {
	for _, seed := range []string{
		"", "a,b\nc,d\n", `"x,y",z`, `"q""uote"`, "ragged\na,b,c\n", "\"open",
		"a\r\nb\r\n", "\"two\nlines\",x",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := FromCSV(src)
		if err != nil {
			return
		}
		again, err := FromCSV(g.ToCSV())
		if err != nil {
			t.Fatalf("ToCSV output unparseable: %v", err)
		}
		if again.Rows != g.Rows || again.Cols != g.Cols {
			t.Fatalf("round trip changed dims: %dx%d vs %dx%d", g.Rows, g.Cols, again.Rows, again.Cols)
		}
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				if g.Cell(r, c) != again.Cell(r, c) {
					t.Fatalf("round trip changed cell (%d,%d)", r, c)
				}
			}
		}
	})
}
