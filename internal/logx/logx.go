// Package logx is the structured-logging seam of the repository: a thin
// layer over log/slog that carries a logger through context.Context the
// same way internal/metrics carries its sink and internal/trace its span.
// Call sites fetch the logger with From unconditionally — when none is
// installed they get a logger whose handler discards everything, so the
// library never logs unless a CLI (or test) opted in via Into.
package logx

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// New builds a logger writing to w at the named level ("debug", "info",
// "warn", or "error"), as text or JSON — the backing for the -log-level
// and -log-json CLI flags.
func New(w io.Writer, level string, json bool) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("logx: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}

// discardHandler drops every record. (slog.DiscardHandler arrived in Go
// 1.24; this keeps the module buildable at its declared go 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Nop is a logger that discards every record; From returns it when no
// logger is installed, so call sites never need nil checks.
var Nop = slog.New(discardHandler{})

// loggerKey keys the *slog.Logger installed in a context.
type loggerKey struct{}

// Into returns a context carrying the logger.
func Into(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey{}, l)
}

// From returns the logger carried by the context, or Nop when none is
// installed. The result is never nil.
func From(ctx context.Context) *slog.Logger {
	if ctx == nil {
		return Nop
	}
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok && l != nil {
		return l
	}
	return Nop
}
