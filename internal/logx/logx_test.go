package logx

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLevels(t *testing.T) {
	var buf bytes.Buffer
	for _, lvl := range []string{"debug", "info", "", "warn", "warning", "error", "DEBUG", "Info"} {
		if _, err := New(&buf, lvl, false); err != nil {
			t.Fatalf("New(%q): %v", lvl, err)
		}
	}
	if _, err := New(&buf, "verbose", false); err == nil {
		t.Fatal("New(verbose): want error, got nil")
	}
}

func TestNewFiltersByLevel(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "warn", false)
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("dropped")
	l.Info("dropped too")
	l.Warn("kept", "k", 1)
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("sub-warn records leaked: %q", out)
	}
	if !strings.Contains(out, "kept") || !strings.Contains(out, "k=1") {
		t.Fatalf("warn record missing: %q", out)
	}
}

func TestNewJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "info", true)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "n", 7)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("output is not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["n"] != float64(7) {
		t.Fatalf("unexpected record: %v", rec)
	}
}

func TestFromDefaultsToNop(t *testing.T) {
	if From(context.Background()) != Nop {
		t.Fatal("From(empty ctx) != Nop")
	}
	if From(nil) != Nop { //nolint:staticcheck // nil ctx is the degenerate case under test
		t.Fatal("From(nil) != Nop")
	}
	// Nop must accept records without panicking or emitting.
	Nop.Debug("x")
	Nop.Info("x")
	Nop.With("k", "v").WithGroup("g").Error("x")
}

func TestIntoFromRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, "info", false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := Into(context.Background(), l)
	From(ctx).Info("through context")
	if !strings.Contains(buf.String(), "through context") {
		t.Fatalf("logger did not round-trip: %q", buf.String())
	}
}
