// Package admin is the serving-runtime introspection endpoint of the
// repository: a small HTTP server exposing the live state of a batch run —
// Prometheus metrics, a liveness snapshot of the worker pool, Go's pprof
// profiles, and the span trees of recently processed documents. It is
// stdlib-only (net/http + net/http/pprof) and mounts pprof on its own mux,
// so importing it never registers handlers on http.DefaultServeMux.
//
//	GET /metrics        Prometheus text exposition of the run's Registry
//	GET /healthz        JSON liveness snapshot (batch.Monitor.Health)
//	GET /trace/last?n=  recent document span trees as flashextract-trace/v1
//	GET /debug/pprof/   Go runtime profiles (heap, goroutine, profile, …)
package admin

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"flashextract/internal/batch"
	"flashextract/internal/faults"
	"flashextract/internal/metrics"
	"flashextract/internal/trace"
)

// Server is the admin HTTP server of a serving process. Create with New,
// start with Start, stop with Shutdown. A Server is reusable: Start after
// Shutdown binds a fresh listener over the same mux, so embedders (and
// tests) can cycle the endpoint any number of times in one process.
type Server struct {
	reg *metrics.Registry
	mon *batch.Monitor
	mux *http.ServeMux
	inj *faults.Injector

	mu  sync.Mutex
	srv *http.Server
	ln  net.Listener
}

// SetInjector arms fault injection on the server's response writes
// (faults.SiteAdminWrite, keyed by request path). Injected write failures
// are transient: the first attempts at a path fail, later ones succeed —
// and because every handler already tolerates write errors, the server
// must survive them without aborting the batch. Call before Start.
func (s *Server) SetInjector(inj *faults.Injector) { s.inj = inj }

// faultingWriter wraps a ResponseWriter so the configured injector can
// fail Write calls at the admin.write site.
type faultingWriter struct {
	http.ResponseWriter
	inj  *faults.Injector
	path string
}

func (w *faultingWriter) Write(p []byte) (int, error) {
	if err := w.inj.Fail(faults.SiteAdminWrite, w.path); err != nil {
		return 0, err
	}
	return w.ResponseWriter.Write(p)
}

// withFaults arms the injector on one handler's response writer.
func (s *Server) withFaults(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.inj.Armed(faults.SiteAdminWrite) {
			w = &faultingWriter{ResponseWriter: w, inj: s.inj, path: r.URL.Path}
		}
		h(w, r)
	}
}

// traceFile is the /trace/last response envelope: the flashextract-trace/v1
// schema documented in EXPERIMENTS.md.
type traceFile struct {
	Schema string        `json:"schema"`
	Traces []*trace.Node `json:"traces"`
}

// New builds a server over the run's metrics registry and monitor. Either
// may be nil: /metrics then serves an empty registry and /healthz an
// "idle" snapshot, so the server is always safe to stand up first and
// attach a run to later.
func New(reg *metrics.Registry, mon *batch.Monitor) *Server {
	s := &Server{reg: reg, mon: mon, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.withFaults(s.handleMetrics))
	s.mux.HandleFunc("/healthz", s.withFaults(s.handleHealthz))
	s.mux.HandleFunc("/trace/last", s.withFaults(s.handleTraceLast))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handle mounts an additional endpoint on the server's mux — the seam the
// extraction server uses to add /programs and /rpc next to the built-in
// introspection routes. The handler rides the same fault-injection wrapper
// as the built-ins. Registering an already-taken pattern panics (ServeMux
// semantics), so embedders own their route namespace.
func (s *Server) Handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.withFaults(h))
}

// Start binds addr (":8080", "127.0.0.1:0", …) and serves in a background
// goroutine. It returns after the listener is bound, so Addr is valid —
// callers using port 0 can read the chosen port immediately. The
// http.Server is built per Start (a shut-down http.Server is not
// reusable), so Start→Shutdown→Start cycles work on one *Server.
func (s *Server) Start(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return fmt.Errorf("admin: already serving on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("admin: listening on %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func(srv *http.Server, ln net.Listener) {
		// ErrServerClosed is the normal Shutdown signal; anything else is
		// lost here by design — the admin plane must never abort a batch.
		_ = srv.Serve(ln)
	}(s.srv, ln)
	return nil
}

// Addr returns the bound listen address, or "" when not serving.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server, waiting for in-flight requests up
// to the context's deadline. After Shutdown the server can Start again.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// handleMetrics serves the Prometheus text exposition of the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap metrics.Snapshot
	if s.reg != nil {
		snap = s.reg.Snapshot()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WritePrometheus(w, snap)
}

// handleHealthz serves the monitor's liveness snapshot as JSON. The status
// code is always 200: a batch server with zero workers is "done" or
// "idle", not unhealthy — orchestration reads the body.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.mon.Health())
}

// handleTraceLast serves the last n (default all retained) document span
// trees, newest first, as a flashextract-trace/v1 document. Non-numeric n
// is a client error; numeric n is never one — negative clamps to 0 (all
// retained) and values beyond the int range clamp to the range end, since
// the ring caps the result size anyway.
func (s *Server) handleTraceLast(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if errors.Is(err, strconv.ErrRange) {
			v = math.MaxInt
			if strings.HasPrefix(strings.TrimSpace(q), "-") {
				v = 0
			}
		} else if err != nil {
			http.Error(w, "admin: n must be an integer", http.StatusBadRequest)
			return
		}
		if v < 0 {
			v = 0
		}
		n = v
	}
	roots := s.mon.RecentTraces(n)
	file := traceFile{Schema: "flashextract-trace/v1", Traces: make([]*trace.Node, 0, len(roots))}
	for _, root := range roots {
		file.Traces = append(file.Traces, trace.ToNode(root))
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(file)
}
