package admin

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"flashextract/internal/batch"
	"flashextract/internal/faults"
	"flashextract/internal/metrics"
	"flashextract/internal/trace"
)

// startTestServer binds an ephemeral port and tears the server down with
// the test.
func startTestServer(t *testing.T, reg *metrics.Registry, mon *batch.Monitor) *Server {
	t.Helper()
	s := New(reg, mon)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

var promLine = regexp.MustCompile(`^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9][0-9eE+.\-]*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? \+Inf)$`)

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Count(metrics.BatchDocs, 3)
	reg.Observe(metrics.BatchDocSeconds, 0.25)
	s := startTestServer(t, reg, nil)

	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	if !strings.Contains(body, "batch_docs_processed 3") {
		t.Fatalf("counter missing from exposition:\n%s", body)
	}
	if !strings.Contains(body, `batch_doc_run_seconds_bucket{le="+Inf"} 1`) {
		t.Fatalf("histogram +Inf bucket missing:\n%s", body)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
	}
}

func TestHealthzEndpoint(t *testing.T) {
	mon := &batch.Monitor{}
	s := startTestServer(t, nil, mon)

	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", code)
	}
	var h batch.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz is not JSON: %v (%q)", err, body)
	}
	if h.Status != "idle" {
		t.Fatalf("fresh monitor status = %q, want idle", h.Status)
	}
}

func TestHealthzNilMonitor(t *testing.T) {
	s := startTestServer(t, nil, nil)
	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"idle"`) {
		t.Fatalf("nil-monitor healthz = %d %q", code, body)
	}
}

func TestTraceLastEndpoint(t *testing.T) {
	mon := &batch.Monitor{}
	// Simulate three finished documents: a tiny tracer per doc, pushed
	// through Monitor's public trace surface the way processDoc does.
	for i := 0; i < 3; i++ {
		tr := trace.NewTracer()
		_, root := tr.StartRoot(context.Background(), "doc:"+string(rune('a'+i)))
		root.SetInt("index", int64(i))
		root.End()
		mon.RecordTrace(root)
	}
	s := startTestServer(t, nil, mon)

	code, body := get(t, "http://"+s.Addr()+"/trace/last?n=2")
	if code != http.StatusOK {
		t.Fatalf("GET /trace/last = %d", code)
	}
	var file struct {
		Schema string        `json:"schema"`
		Traces []*trace.Node `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &file); err != nil {
		t.Fatalf("trace/last is not JSON: %v", err)
	}
	if file.Schema != "flashextract-trace/v1" {
		t.Fatalf("schema = %q", file.Schema)
	}
	if len(file.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(file.Traces))
	}
	// Newest first: the last pushed doc leads.
	if file.Traces[0].Name != "doc:c" || file.Traces[1].Name != "doc:b" {
		t.Fatalf("trace order = %q, %q", file.Traces[0].Name, file.Traces[1].Name)
	}

	code, body = get(t, "http://"+s.Addr()+"/trace/last?n=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("bad n = %d (%q)", code, body)
	}
}

// TestTraceLastNParam pins the n= contract: non-numeric values are a 400,
// numeric values never are — negative clamps to "all retained", values
// beyond the int range clamp to the range end (the ring caps the result
// size anyway), and absent/empty n means all.
func TestTraceLastNParam(t *testing.T) {
	mon := &batch.Monitor{}
	for i := 0; i < 3; i++ {
		tr := trace.NewTracer()
		_, root := tr.StartRoot(context.Background(), "doc:"+string(rune('a'+i)))
		root.End()
		mon.RecordTrace(root)
	}
	s := startTestServer(t, nil, mon)

	cases := []struct {
		name  string
		query string
		code  int
		// traces is checked only for 200 responses.
		traces int
	}{
		{name: "absent", query: "", code: http.StatusOK, traces: 3},
		{name: "empty", query: "?n=", code: http.StatusOK, traces: 3},
		{name: "normal", query: "?n=2", code: http.StatusOK, traces: 2},
		{name: "zero", query: "?n=0", code: http.StatusOK, traces: 3},
		{name: "one", query: "?n=1", code: http.StatusOK, traces: 1},
		{name: "plus-signed", query: "?n=%2B2", code: http.StatusOK, traces: 2},
		{name: "larger-than-retained", query: "?n=100", code: http.StatusOK, traces: 3},
		{name: "negative", query: "?n=-5", code: http.StatusOK, traces: 3},
		{name: "overflow", query: "?n=99999999999999999999", code: http.StatusOK, traces: 3},
		{name: "negative-overflow", query: "?n=-99999999999999999999", code: http.StatusOK, traces: 3},
		{name: "non-numeric", query: "?n=bogus", code: http.StatusBadRequest},
		{name: "float", query: "?n=1.5", code: http.StatusBadRequest},
		{name: "trailing-junk", query: "?n=2x", code: http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := get(t, "http://"+s.Addr()+"/trace/last"+tc.query)
			if code != tc.code {
				t.Fatalf("GET /trace/last%s = %d, want %d (%q)", tc.query, code, tc.code, body)
			}
			if code != http.StatusOK {
				if !strings.Contains(body, "n must be an integer") {
					t.Fatalf("400 body = %q", body)
				}
				return
			}
			var file struct {
				Traces []*trace.Node `json:"traces"`
			}
			if err := json.Unmarshal([]byte(body), &file); err != nil {
				t.Fatalf("body is not JSON: %v", err)
			}
			if len(file.Traces) != tc.traces {
				t.Fatalf("traces = %d, want %d", len(file.Traces), tc.traces)
			}
		})
	}
}

func TestPprofEndpoint(t *testing.T) {
	s := startTestServer(t, nil, nil)
	code, body := get(t, "http://"+s.Addr()+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof goroutine = %d", code)
	}
}

// TestInjectedWriteErrors arms the admin.write chaos site at rate 1.0 and
// asserts the server survives failed response writes: the first attempts
// at a path yield a short/empty body, and once the injected transient
// budget for that path is consumed, the same endpoint serves normally.
func TestInjectedWriteErrors(t *testing.T) {
	inj, err := faults.ParseSpec("seed=1,rate=1.0,failures=2,sites=admin.write")
	if err != nil {
		t.Fatal(err)
	}
	mon := &batch.Monitor{}
	s := New(nil, mon)
	s.SetInjector(inj)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	// The injected failures are transient per path: after at most
	// DefaultFailures failed writes, /healthz must serve a full snapshot.
	var body string
	ok := false
	for i := 0; i < faults.DefaultFailures+2; i++ {
		_, body = get(t, "http://"+s.Addr()+"/healthz")
		if strings.Contains(body, `"status"`) {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("healthz never recovered from injected write faults; last body %q", body)
	}
	var h batch.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("recovered healthz body is not JSON: %v", err)
	}
	// An uninjected endpoint on the same server works throughout.
	if code, _ := get(t, "http://"+s.Addr()+"/metrics"); code != http.StatusOK {
		t.Fatalf("metrics status %d after write faults", code)
	}
}

// TestRestartCycle: one Server must survive repeated Start/Shutdown
// cycles in-process — the http.Server is rebuilt per Start, so a
// shut-down listener never poisons the next cycle.
func TestRestartCycle(t *testing.T) {
	s := New(metrics.NewRegistry(), &batch.Monitor{})
	for i := 0; i < 3; i++ {
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatalf("cycle %d: Start: %v", i, err)
		}
		addr := s.Addr()
		if addr == "" {
			t.Fatalf("cycle %d: no address while serving", i)
		}
		if code, _ := get(t, "http://"+addr+"/healthz"); code != http.StatusOK {
			t.Fatalf("cycle %d: /healthz = %d", i, code)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if err := s.Shutdown(ctx); err != nil {
			cancel()
			t.Fatalf("cycle %d: Shutdown: %v", i, err)
		}
		cancel()
		if s.Addr() != "" {
			t.Fatalf("cycle %d: address still set after shutdown", i)
		}
	}
	// Shutdown when not serving is a no-op, not an error.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("idle Shutdown: %v", err)
	}
}

// TestStartWhileServing: a second Start without a Shutdown is refused —
// the listener is a singleton per server.
func TestStartWhileServing(t *testing.T) {
	s := startTestServer(t, metrics.NewRegistry(), &batch.Monitor{})
	if err := s.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start succeeded while serving")
	}
}

// TestHandleExtraRoute: embedder-mounted routes (the extraction server's
// /programs and /rpc) serve through the same mux and fault wrapper.
func TestHandleExtraRoute(t *testing.T) {
	s := New(metrics.NewRegistry(), &batch.Monitor{})
	s.Handle("/extra", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "extra ok")
	})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	if code, body := get(t, "http://"+s.Addr()+"/extra"); code != http.StatusOK || body != "extra ok" {
		t.Fatalf("/extra = %d %q", code, body)
	}
}
