package xpath

import (
	"strings"
	"testing"

	"flashextract/internal/htmldom"
)

const shopPage = `<html><body>
<div class="list">
  <div class="product" id="p1"><span class="name">Widget</span><span class="price">$9.99</span></div>
  <div class="product" id="p2"><span class="name">Gadget</span><span class="price">$19.50</span></div>
  <div class="ad"><span class="name">Buy now!</span></div>
  <div class="product" id="p3"><span class="name">Doohickey</span><span class="price">$3.25</span></div>
</div>
</body></html>`

func shop(t *testing.T) *htmldom.Node {
	t.Helper()
	return htmldom.MustParse(shopPage)
}

func names(ns []*htmldom.Node) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = strings.TrimSpace(n.TextContent())
	}
	return out
}

func TestSelectByClass(t *testing.T) {
	doc := shop(t)
	p, err := Parse(`/html/body/div/div[@class='product']/span[@class='name']`)
	if err != nil {
		t.Fatal(err)
	}
	got := names(p.Select(doc))
	want := []string{"Widget", "Gadget", "Doohickey"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Select = %v, want %v", got, want)
	}
}

func TestSelectWildcardAndIndex(t *testing.T) {
	doc := shop(t)
	p, err := Parse(`/html/body/*/div[2]/span[1]`)
	if err != nil {
		t.Fatal(err)
	}
	got := names(p.Select(doc))
	if len(got) != 1 || got[0] != "Gadget" {
		t.Fatalf("Select = %v", got)
	}
}

func TestSelectIndexWithAttrPredicate(t *testing.T) {
	doc := shop(t)
	// The 3rd *product* div is Doohickey (the ad does not count).
	p, err := Parse(`/html/body/div/div[@class='product'][3]/span[@class='name']`)
	if err != nil {
		t.Fatal(err)
	}
	got := names(p.Select(doc))
	if len(got) != 1 || got[0] != "Doohickey" {
		t.Fatalf("Select = %v", got)
	}
}

func TestSelectNoMatch(t *testing.T) {
	doc := shop(t)
	p, _ := Parse(`/html/body/table/tr`)
	if got := p.Select(doc); got != nil {
		t.Fatalf("Select = %v, want nil", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, expr := range []string{
		`/html/body/div`,
		`/html/body/div[@class='product'][2]/span[@id='x']`,
		`/*/div[3]`,
	} {
		p, err := Parse(expr)
		if err != nil {
			t.Fatalf("Parse(%q): %v", expr, err)
		}
		if p.String() != expr {
			t.Fatalf("round trip %q → %q", expr, p.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, expr := range []string{
		``, `html/body`, `/div[`, `/div[@class]`, `/div[x]`, `/div[0]`, `//div`,
	} {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", expr)
		}
	}
}

func TestLearnGeneralizesFromTwoExamples(t *testing.T) {
	doc := shop(t)
	nameSpans := doc.FindAll(func(n *htmldom.Node) bool {
		return n.Tag == "span" && n.HasClass("name") && n.Parent.HasClass("product")
	})
	if len(nameSpans) != 3 {
		t.Fatalf("setup: %d name spans", len(nameSpans))
	}
	paths := Learn(doc, nameSpans[:2])
	if len(paths) == 0 {
		t.Fatal("no paths learned")
	}
	top := paths[0]
	got := names(top.Select(doc))
	want := []string{"Widget", "Gadget", "Doohickey"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("top path %s selects %v, want %v", top, got, want)
	}
	// The ad's name span must be excluded by the class context.
	for _, g := range got {
		if g == "Buy now!" {
			t.Fatalf("top path %s selected the ad", top)
		}
	}
}

func TestLearnSingleExampleIncludesPinnedVariant(t *testing.T) {
	doc := shop(t)
	p2 := doc.Find(func(n *htmldom.Node) bool {
		if v, ok := n.Attr("id"); ok && v == "p2" {
			return true
		}
		return false
	})
	paths := Learn(doc, []*htmldom.Node{p2})
	if len(paths) == 0 {
		t.Fatal("no paths learned")
	}
	var pinned *Path
	for _, p := range paths {
		sel := p.Select(doc)
		if len(sel) == 1 && sel[0] == p2 {
			pinned = p
			break
		}
	}
	if pinned == nil {
		t.Fatal("no variant pins the single example")
	}
	// Every learned path must select the example.
	for _, p := range paths {
		found := false
		for _, n := range p.Select(doc) {
			if n == p2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("path %s does not select its example", p)
		}
	}
}

func TestLearnRanksClassContextAboveIndex(t *testing.T) {
	doc := shop(t)
	products := doc.FindAll(func(n *htmldom.Node) bool { return n.HasClass("product") })
	paths := Learn(doc, products[:2])
	if len(paths) == 0 {
		t.Fatal("no paths learned")
	}
	top := paths[0]
	if got := len(top.Select(doc)); got != 3 {
		t.Fatalf("top path %s selects %d nodes, want all 3 products", top, got)
	}
}

func TestLearnDifferentDepthsFails(t *testing.T) {
	doc := shop(t)
	list := doc.Find(func(n *htmldom.Node) bool { return n.HasClass("list") })
	name := doc.Find(func(n *htmldom.Node) bool { return n.HasClass("name") })
	if paths := Learn(doc, []*htmldom.Node{list, name}); paths != nil {
		t.Fatalf("expected nil for mixed depths, got %v", paths)
	}
}

func TestLearnForeignNodeFails(t *testing.T) {
	doc := shop(t)
	other := htmldom.MustParse("<p>x</p>")
	p := other.Find(func(n *htmldom.Node) bool { return n.Tag == "p" })
	if paths := Learn(doc, []*htmldom.Node{p}); paths != nil {
		t.Fatal("expected nil for a node outside the root")
	}
}

func TestLearnEmpty(t *testing.T) {
	if got := Learn(shop(t), nil); got != nil {
		t.Fatal("expected nil for no examples")
	}
}

func TestCostOrdering(t *testing.T) {
	classy, _ := Parse(`/div[@class='a']/span[@class='b']`)
	indexed, _ := Parse(`/div[2]/span[3]`)
	starred, _ := Parse(`/*/*`)
	if !(classy.Cost() < indexed.Cost()) {
		t.Fatalf("class path should rank above indexed: %d vs %d", classy.Cost(), indexed.Cost())
	}
	if !(classy.Cost() < starred.Cost()) {
		t.Fatalf("class path should rank above starred: %d vs %d", classy.Cost(), starred.Cost())
	}
}

func TestEmptyPathSelectsRoot(t *testing.T) {
	doc := shop(t)
	p := &Path{}
	sel := p.Select(doc)
	if len(sel) != 1 || sel[0] != doc {
		t.Fatalf("empty path = %v", sel)
	}
	if p.String() != "/." {
		t.Fatalf("String = %q", p.String())
	}
}

func TestParseArbitraryInputNoPanic(t *testing.T) {
	rng := uint64(99)
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	for i := 0; i < 300; i++ {
		n := int(next() % 24)
		b := make([]byte, n)
		for j := range b {
			b[j] = "/*[]@='abz019 "[next()%14]
		}
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}
