package xpath

import (
	"strings"
	"testing"

	"flashextract/internal/htmldom"
)

// representable reports whether the path's textual form can express it at
// all: the quoting-only literal syntax (no escapes, as in XPath 1.0) and
// the step/predicate delimiters make some fuzzer-made tags and attribute
// values unprintable, so the round-trip oracle does not apply to them.
func representable(p *Path) bool {
	for _, s := range p.Steps {
		if strings.ContainsAny(s.Tag, "/[]") {
			return false
		}
		for _, a := range s.Attrs {
			if strings.ContainsAny(a.Key, "/[]='\"") || strings.ContainsAny(a.Val, "/]") {
				return false
			}
			if strings.Contains(a.Val, "'") && strings.Contains(a.Val, `"`) {
				return false
			}
		}
	}
	return true
}

// FuzzXPathLearn feeds arbitrary HTML and example picks to the
// wrapper-induction learner and asserts its contract: it never panics, and
// every candidate path it returns selects all of its example nodes, and
// its String() form parses back to a path selecting the same node set.
// Seeds cover the corpus page shapes (product lists, tables, nesting).
func FuzzXPathLearn(f *testing.F) {
	f.Add(shopPage, 3, 7)
	f.Add(`<table><tr><td>a</td><td>1</td></tr><tr><td>b</td><td>2</td></tr></table>`, 2, 5)
	f.Add(`<ul><li id="x">one</li><li>two</li><li class="c">three</li></ul>`, 1, 2)
	f.Add(`<div><div><div><span>deep</span></div></div></div>`, 0, 3)
	f.Add(``, 0, 0)
	f.Add(`<p>`, 0, 0)
	f.Fuzz(func(t *testing.T, src string, i, j int) {
		if len(src) > 4096 {
			t.Skip()
		}
		root, err := htmldom.Parse(src)
		if err != nil || root == nil {
			return
		}
		// Learn's contract covers proper descendants of root, so the root
		// itself is not a valid example pick.
		var nodes []*htmldom.Node
		root.Walk(func(n *htmldom.Node) {
			if n.Tag != "" && n != root {
				nodes = append(nodes, n)
			}
		})
		if len(nodes) == 0 {
			return
		}
		if i < 0 {
			i = -i
		}
		if j < 0 {
			j = -j
		}
		examples := []*htmldom.Node{nodes[i%len(nodes)], nodes[j%len(nodes)]}

		for _, p := range Learn(root, examples) {
			sel := map[*htmldom.Node]bool{}
			for _, n := range p.Select(root) {
				sel[n] = true
			}
			for _, ex := range examples {
				if !sel[ex] {
					t.Fatalf("learned path %s misses its own example <%s>", p, ex.Tag)
				}
			}
			if !representable(p) {
				continue
			}
			again, err := Parse(p.String())
			if err != nil {
				t.Fatalf("learned path %s does not parse back: %v", p, err)
			}
			reSel := again.Select(root)
			if len(reSel) != len(sel) {
				t.Fatalf("path %s round-trip selects %d nodes, original %d", p, len(reSel), len(sel))
			}
			for _, n := range reSel {
				if !sel[n] {
					t.Fatalf("path %s round-trip selects different nodes", p)
				}
			}
		}
	})
}
