package xpath

import (
	"sort"

	"flashextract/internal/htmldom"
)

// Learn generalizes example nodes — all descendants of root at the same
// depth — into a ranked list of candidate paths, each of which selects (at
// least) every example. This is the domain-specific wrapper-induction
// learner of the webpage instantiation: inconsistent tags become
// wildcards, and common class/id attributes and consistent sibling
// positions become predicates. Candidates range from general (class
// context, no positions) to specific (ids and positions).
func Learn(root *htmldom.Node, examples []*htmldom.Node) []*Path {
	if len(examples) == 0 {
		return nil
	}
	levels, ok := buildLevels(root, examples)
	if !ok {
		return nil
	}
	variants := []struct {
		class, id, index bool
	}{
		{class: true},                        // the generalizing default
		{class: true, id: true},              // pinned by id
		{class: true, index: true},           // positional
		{},                                   // bare tags
		{index: true},                        // tags + positions
		{class: true, id: true, index: true}, // fully pinned
	}
	var out []*Path
	seen := map[string]bool{}
	for _, v := range variants {
		p := buildPath(levels, v.class, v.id, v.index)
		key := p.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		if selectsAll(p, root, examples) {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost() < out[j].Cost() })
	return out
}

// levelInfo aggregates the example nodes at one depth.
type levelInfo struct {
	tag   string // common tag or "*"
	class string // common class attribute value, or "" when inconsistent
	hasCl bool
	id    string
	hasID bool
	nodes []*htmldom.Node
}

func buildLevels(root *htmldom.Node, examples []*htmldom.Node) ([]levelInfo, bool) {
	chains := make([][]*htmldom.Node, len(examples))
	for i, ex := range examples {
		chain := ex.PathFromRoot(root)
		if chain == nil {
			return nil, false
		}
		chains[i] = chain
		if len(chain) != len(chains[0]) {
			return nil, false // different depths: a single path cannot cover them
		}
	}
	depth := len(chains[0])
	levels := make([]levelInfo, depth)
	for l := 0; l < depth; l++ {
		info := levelInfo{tag: chains[0][l].Tag, hasCl: true, hasID: true}
		for i, chain := range chains {
			n := chain[l]
			info.nodes = append(info.nodes, n)
			if n.Tag != info.tag {
				info.tag = "*"
			}
			cl, ok := n.Attr("class")
			if !ok || (i > 0 && cl != info.class) {
				info.hasCl = false
			} else {
				info.class = cl
			}
			id, ok := n.Attr("id")
			if !ok || (i > 0 && id != info.id) {
				info.hasID = false
			} else {
				info.id = id
			}
		}
		levels[l] = info
	}
	return levels, true
}

func buildPath(levels []levelInfo, withClass, withID, withIndex bool) *Path {
	p := &Path{}
	for _, info := range levels {
		s := Step{Tag: info.tag}
		if withClass && info.hasCl {
			s.Attrs = append(s.Attrs, htmldom.Attr{Key: "class", Val: info.class})
		}
		if withID && info.hasID {
			s.Attrs = append(s.Attrs, htmldom.Attr{Key: "id", Val: info.id})
		}
		if withIndex {
			if idx, ok := commonIndex(info.nodes, s); ok {
				s.Index = idx
			}
		}
		p.Steps = append(p.Steps, s)
	}
	return p
}

// commonIndex returns the position of every node among its siblings
// matching the step, when that position is the same for all nodes.
func commonIndex(nodes []*htmldom.Node, s Step) (int, bool) {
	idx := 0
	for i, n := range nodes {
		if n.Parent == nil {
			return 0, false
		}
		pos, count := 0, 0
		for _, c := range n.Parent.Children {
			if s.matches(c) {
				count++
			}
			if c == n {
				pos = count
				break
			}
		}
		if pos == 0 {
			return 0, false
		}
		if i == 0 {
			idx = pos
		} else if pos != idx {
			return 0, false
		}
	}
	return idx, true
}

func selectsAll(p *Path, root *htmldom.Node, examples []*htmldom.Node) bool {
	selected := p.Select(root)
	inSel := map[*htmldom.Node]bool{}
	for _, n := range selected {
		inSel[n] = true
	}
	for _, ex := range examples {
		if !inSel[ex] {
			return false
		}
	}
	return true
}
