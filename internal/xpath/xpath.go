// Package xpath implements the XPath subset used by the webpage
// instantiation of FlashExtract (§5.2): absolute child-axis paths with tag
// names or wildcards, attribute-equality predicates, and positional
// predicates — e.g.
//
//	/html/body/div[@class='result'][2]/*/span[@id='price']
//
// together with the wrapper-induction learner that generalizes example
// nodes into ranked path candidates (wildcards for inconsistent tags,
// class/id predicates, optional positional predicates).
package xpath

import (
	"fmt"
	"strings"

	"flashextract/internal/htmldom"
)

// Step is one location step of a path: a tag test (or "*") plus optional
// predicates.
type Step struct {
	// Tag is the lowercase element tag, or "*" for any element.
	Tag string
	// Attrs are attribute-equality predicates, e.g. class='result'.
	Attrs []htmldom.Attr
	// Index is the 1-based position among the sibling elements matching
	// the step's tag and attribute predicates; 0 means no positional
	// predicate.
	Index int
}

func (s Step) String() string {
	var b strings.Builder
	b.WriteString(s.Tag)
	for _, a := range s.Attrs {
		// Like XPath 1.0 literals there is no escape syntax, only the
		// choice of quote character; values holding both kinds cannot be
		// printed faithfully.
		q := "'"
		if strings.Contains(a.Val, "'") {
			q = `"`
		}
		fmt.Fprintf(&b, "[@%s=%s%s%s]", a.Key, q, a.Val, q)
	}
	if s.Index > 0 {
		fmt.Fprintf(&b, "[%d]", s.Index)
	}
	return b.String()
}

// matches reports whether a node satisfies the step's tag and attribute
// predicates (the positional predicate is handled by Select).
func (s Step) matches(n *htmldom.Node) bool {
	if n.Type != htmldom.ElementNode {
		return false
	}
	if s.Tag != "*" && n.Tag != s.Tag {
		return false
	}
	for _, a := range s.Attrs {
		v, ok := n.Attr(a.Key)
		if !ok || v != a.Val {
			return false
		}
	}
	return true
}

// Path is an absolute child-axis path evaluated from a context node.
type Path struct {
	Steps []Step
}

func (p *Path) String() string {
	if len(p.Steps) == 0 {
		return "/."
	}
	var b strings.Builder
	for _, s := range p.Steps {
		b.WriteString("/")
		b.WriteString(s.String())
	}
	return b.String()
}

// Select returns the nodes reached from root by the path, in document
// order.
func (p *Path) Select(root *htmldom.Node) []*htmldom.Node {
	cur := []*htmldom.Node{root}
	for _, step := range p.Steps {
		var next []*htmldom.Node
		for _, n := range cur {
			if step.Index > 0 {
				count := 0
				for _, c := range n.Children {
					if step.matches(c) {
						count++
						if count == step.Index {
							next = append(next, c)
							break
						}
					}
				}
				continue
			}
			for _, c := range n.Children {
				if step.matches(c) {
					next = append(next, c)
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// Cost is the heuristic ranking score of the path: wildcards, positional
// predicates, and id pins make a path less likely to capture a repeating
// intent than tag names with class context.
func (p *Path) Cost() int {
	c := 3 * len(p.Steps)
	for _, s := range p.Steps {
		if s.Tag == "*" {
			c += 2
		}
		if s.Index > 0 {
			c += 3
		}
		for _, a := range s.Attrs {
			if a.Key == "id" {
				c++
			} else {
				c--
			}
		}
	}
	return c
}

// Parse parses the textual form of a path.
func Parse(expr string) (*Path, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" || expr[0] != '/' {
		return nil, fmt.Errorf("xpath: path must start with '/': %q", expr)
	}
	p := &Path{}
	rest := expr
	for rest != "" {
		if rest[0] != '/' {
			return nil, fmt.Errorf("xpath: expected '/' at %q", rest)
		}
		rest = rest[1:]
		end := strings.IndexByte(rest, '/')
		var raw string
		if end < 0 {
			raw, rest = rest, ""
		} else {
			raw, rest = rest[:end], rest[end:]
		}
		step, err := parseStep(raw)
		if err != nil {
			return nil, err
		}
		p.Steps = append(p.Steps, step)
	}
	return p, nil
}

func parseStep(raw string) (Step, error) {
	var s Step
	i := 0
	for i < len(raw) && raw[i] != '[' {
		i++
	}
	s.Tag = strings.ToLower(strings.TrimSpace(raw[:i]))
	if s.Tag == "" {
		return s, fmt.Errorf("xpath: empty step in %q", raw)
	}
	for i < len(raw) {
		if raw[i] != '[' {
			return s, fmt.Errorf("xpath: expected '[' in step %q", raw)
		}
		close := strings.IndexByte(raw[i:], ']')
		if close < 0 {
			return s, fmt.Errorf("xpath: unterminated predicate in %q", raw)
		}
		pred := raw[i+1 : i+close]
		i += close + 1
		if strings.HasPrefix(pred, "@") {
			eq := strings.IndexByte(pred, '=')
			if eq < 0 {
				return s, fmt.Errorf("xpath: attribute predicate %q needs '='", pred)
			}
			key := strings.ToLower(pred[1:eq])
			// Unwrap exactly one matching quote pair: a quote character at
			// the far end may be part of the value itself.
			val := pred[eq+1:]
			if len(val) >= 2 && (val[0] == '\'' || val[0] == '"') && val[len(val)-1] == val[0] {
				val = val[1 : len(val)-1]
			}
			s.Attrs = append(s.Attrs, htmldom.Attr{Key: key, Val: val})
			continue
		}
		n := 0
		for _, c := range pred {
			if c < '0' || c > '9' {
				return s, fmt.Errorf("xpath: bad positional predicate %q", pred)
			}
			n = n*10 + int(c-'0')
		}
		if n == 0 {
			return s, fmt.Errorf("xpath: positional predicate must be ≥ 1 in %q", raw)
		}
		s.Index = n
	}
	return s, nil
}
