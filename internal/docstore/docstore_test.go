package docstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestDigestRoundTrip(t *testing.T) {
	d := Hash([]byte("hello"))
	got, err := ParseDigest(d.String())
	if err != nil {
		t.Fatalf("ParseDigest: %v", err)
	}
	if got != d {
		t.Fatalf("round trip changed digest: %s vs %s", got, d)
	}
	if _, err := ParseDigest("zz"); err == nil {
		t.Fatal("ParseDigest accepted junk")
	}
	if _, err := ParseDigest("abcd"); err == nil {
		t.Fatal("ParseDigest accepted a short digest")
	}
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Shard
		ok   bool
	}{
		{"", Shard{}, true},
		{"1/1", Shard{1, 1}, true},
		{"2/3", Shard{2, 3}, true},
		{"0/3", Shard{}, false},
		{"4/3", Shard{}, false},
		{"x/3", Shard{}, false},
		{"3", Shard{}, false},
		{"-1/2", Shard{}, false},
	} {
		got, err := ParseShard(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseShard(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseShard(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestShardPartition: for any n, every digest is owned by exactly one of
// the n shards — the property that makes sharded outputs union to the
// unsharded run.
func TestShardPartition(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16} {
		counts := make([]int, n)
		for i := 0; i < 500; i++ {
			d := Hash([]byte(fmt.Sprintf("doc-%d", i)))
			owners := 0
			for k := 1; k <= n; k++ {
				if (Shard{K: k, N: n}).Owns(d) {
					owners++
					counts[k-1]++
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d: digest %s owned by %d shards", n, d, owners)
			}
		}
		for k, c := range counts {
			if n <= 3 && c == 0 {
				t.Errorf("n=%d: shard %d owns no documents out of 500", n, k+1)
			}
		}
	}
	if !(Shard{}).Owns(Hash([]byte("x"))) {
		t.Fatal("disabled shard must own everything")
	}
}

func TestStoreSingleflight(t *testing.T) {
	s := NewStore()
	d := Hash([]byte("blob"))
	done, leader := s.Begin(d)
	if !leader {
		t.Fatal("first Begin must lead")
	}
	done2, leader2 := s.Begin(d)
	if leader2 {
		t.Fatal("second Begin must not lead")
	}
	select {
	case <-done2:
		t.Fatal("done closed before Complete")
	default:
	}
	oc := &Outcome{OK: true, Data: []byte(`{"x":1}`)}
	s.Complete(d, oc)
	<-done
	<-done2
	if got := s.Outcome(d); got != oc {
		t.Fatalf("Outcome = %v, want the completed one", got)
	}
	// A later Begin replays instantly.
	done3, leader3 := s.Begin(d)
	if leader3 {
		t.Fatal("post-completion Begin must not lead")
	}
	<-done3
	// Non-replayable completion.
	d2 := Hash([]byte("other"))
	if _, lead := s.Begin(d2); !lead {
		t.Fatal("fresh digest must lead")
	}
	s.Complete(d2, nil)
	if s.Outcome(d2) != nil {
		t.Fatal("nil completion must stay nil")
	}
}

func TestManifestRoundTripAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatalf("OpenManifest: %v", err)
	}
	d1 := Hash([]byte("a"))
	d2 := Hash([]byte("b"))
	m.Append(d1, &Outcome{OK: true, Data: []byte(`{"v":1}`)})
	m.Append(d2, &Outcome{Kind: "run", Error: "boom"})
	m.Append(d1, &Outcome{OK: true, Data: []byte(`{"v":999}`)}) // dup: ignored
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: torn trailing line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"digest":"beef`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if m2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m2.Len())
	}
	oc, ok := m2.Lookup(d1)
	if !ok || !oc.OK || string(oc.Data) != `{"v":1}` {
		t.Fatalf("Lookup(d1) = %+v %v", oc, ok)
	}
	oc, ok = m2.Lookup(d2)
	if !ok || oc.OK || oc.Kind != "run" || oc.Error != "boom" {
		t.Fatalf("Lookup(d2) = %+v %v", oc, ok)
	}
	// Appending after a reopen with a torn tail lands on a clean line:
	// a third open must see all three entries.
	d3 := Hash([]byte("c"))
	m2.Append(d3, &Outcome{OK: true})
	if m2.Err() != nil {
		t.Fatalf("Err: %v", m2.Err())
	}
	if err := m2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	m3, err := OpenManifest(path)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer m3.Close()
	if m3.Len() != 3 {
		t.Fatalf("after torn-tail repair Len = %d, want 3", m3.Len())
	}
	if _, ok := m3.Lookup(d3); !ok {
		t.Fatal("entry appended after torn tail was lost")
	}
}
