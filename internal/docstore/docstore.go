// Package docstore gives batch documents a content-addressed identity:
// SHA-256 digests over the raw bytes, an in-run singleflight index so
// duplicate blobs are extracted once and their results replayed, a
// persisted hash→result manifest that makes interrupted runs resumable,
// and deterministic hash-range sharding so independent processes can
// split one corpus without coordination.
package docstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
)

// Digest is the content address of a document blob.
type Digest [sha256.Size]byte

// Hash computes the digest of a blob.
func Hash(data []byte) Digest { return sha256.Sum256(data) }

// String renders the digest in hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// ParseDigest parses the hex form produced by String.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(d) {
		return d, fmt.Errorf("docstore: bad digest %q", s)
	}
	copy(d[:], raw)
	return d, nil
}

// Outcome is the replayable result of extracting one blob: exactly the
// fields of a batch output record that are a pure function of the
// document's content. Per-attempt outcomes (read failures, cancellation,
// injected budget trips, panics) are never stored as outcomes.
type Outcome struct {
	OK    bool            `json:"ok"`
	Kind  string          `json:"kind,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
	Error string          `json:"error,omitempty"`
}

// Store is the in-run singleflight index: the first caller to Begin a
// digest becomes its leader and computes the outcome; concurrent callers
// wait on the returned channel and replay the completed outcome. Entries
// live for the whole run, so later duplicates replay instantly.
type Store struct {
	mu      sync.Mutex
	entries map[Digest]*entry
}

type entry struct {
	done    chan struct{}
	outcome *Outcome // nil after done means "not replayable, compute your own"
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{entries: map[Digest]*entry{}}
}

// Begin registers interest in a digest. When leader is true the caller
// owns the computation and must eventually call Complete (with nil for a
// non-replayable outcome). Otherwise the caller may wait on done and then
// read Outcome.
func (s *Store) Begin(d Digest) (done <-chan struct{}, leader bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[d]; ok {
		return e.done, false
	}
	e := &entry{done: make(chan struct{})}
	s.entries[d] = e
	return e.done, true
}

// Complete publishes the leader's outcome (nil = not replayable) and
// releases every waiter. Completing an un-begun or already-completed
// digest is a programming error and panics via the double close.
func (s *Store) Complete(d Digest, oc *Outcome) {
	s.mu.Lock()
	e := s.entries[d]
	s.mu.Unlock()
	e.outcome = oc
	close(e.done)
}

// Outcome returns the completed outcome for a digest, or nil when the
// leader declared it non-replayable. Only valid after the Begin channel
// is closed.
func (s *Store) Outcome(d Digest) *Outcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[d]; ok {
		return e.outcome
	}
	return nil
}

// Shard is one hash-range partition of a corpus, the k-th of n (1-based).
// The zero value (N == 0) is the disabled shard that owns everything.
type Shard struct {
	K, N int
}

// ParseShard parses the "k/n" CLI form; the empty string disables
// sharding.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	var sh Shard
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return sh, fmt.Errorf("docstore: shard %q is not of the form k/n", s)
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &sh.K, &sh.N); err != nil {
		return sh, fmt.Errorf("docstore: shard %q is not of the form k/n", s)
	}
	return sh, sh.Validate()
}

// Validate checks 1 ≤ K ≤ N (or the disabled zero value).
func (sh Shard) Validate() error {
	if sh.N == 0 && sh.K == 0 {
		return nil
	}
	if sh.N < 1 || sh.K < 1 || sh.K > sh.N {
		return fmt.Errorf("docstore: invalid shard %d/%d (want 1 ≤ k ≤ n)", sh.K, sh.N)
	}
	return nil
}

// Enabled reports whether the shard actually partitions.
func (sh Shard) Enabled() bool { return sh.N > 0 }

// String renders the CLI form.
func (sh Shard) String() string {
	if !sh.Enabled() {
		return ""
	}
	return fmt.Sprintf("%d/%d", sh.K, sh.N)
}

// Owns reports whether a digest falls in this shard's range. The uint64
// prefix space of the digest is cut into N contiguous, near-equal spans;
// every digest is owned by exactly one shard of a given N, so n shards'
// outputs union to the unsharded run.
func (sh Shard) Owns(d Digest) bool {
	if sh.N <= 1 {
		return true
	}
	v := binary.BigEndian.Uint64(d[:8])
	width := ^uint64(0)/uint64(sh.N) + 1
	return int(v/width)+1 == sh.K
}
