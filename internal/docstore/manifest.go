package docstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Manifest is the persisted hash→outcome map of a batch run, stored as
// append-only NDJSON ({"digest":"…", …outcome fields…} per line). Opening
// an existing manifest replays its entries so a resumed run skips every
// document whose content was already extracted; a truncated final line
// (crash mid-append) is tolerated and ignored. Only deterministic
// outcomes belong in a manifest — the batch layer enforces that.
type Manifest struct {
	mu       sync.Mutex
	seen     map[Digest]*Outcome
	f        *os.File
	firstErr error
}

type manifestEntry struct {
	Digest string `json:"digest"`
	Outcome
}

// OpenManifest loads the manifest at path (creating it when absent) and
// opens it for appending. A torn tail from an interrupted run — a final
// line that is truncated, unparseable, or missing its newline — is cut
// off so the resumed run re-extracts at most that one document and new
// appends land on a clean line boundary.
func OpenManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("docstore: reading manifest: %w", err)
	}
	m := &Manifest{seen: map[Digest]*Outcome{}}
	good := 0
	for good < len(data) {
		nl := bytes.IndexByte(data[good:], '\n')
		if nl < 0 {
			break // unterminated tail
		}
		var e manifestEntry
		if json.Unmarshal(data[good:good+nl], &e) != nil {
			break
		}
		d, err := ParseDigest(e.Digest)
		if err != nil {
			break
		}
		oc := e.Outcome
		m.seen[d] = &oc
		good += nl + 1
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("docstore: opening manifest: %w", err)
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, fmt.Errorf("docstore: truncating torn manifest tail: %w", err)
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("docstore: seeking manifest: %w", err)
	}
	m.f = f
	return m, nil
}

// Lookup returns the stored outcome for a digest, if present.
func (m *Manifest) Lookup(d Digest) (*Outcome, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	oc, ok := m.seen[d]
	return oc, ok
}

// Len returns the number of distinct digests in the manifest.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.seen)
}

// Append records an outcome for a digest, writing one NDJSON line.
// Digests already present are skipped, so concurrent duplicate computes
// persist once. Write failures are remembered and surfaced by Err — the
// run's records are already on their way to the output stream, so a
// broken manifest must not fail individual documents.
func (m *Manifest) Append(d Digest, oc *Outcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.seen[d]; ok {
		return
	}
	line, err := json.Marshal(manifestEntry{Digest: d.String(), Outcome: *oc})
	if err != nil {
		m.noteErr(fmt.Errorf("docstore: marshaling manifest entry: %w", err))
		return
	}
	line = append(line, '\n')
	if _, err := m.f.Write(line); err != nil {
		m.noteErr(fmt.Errorf("docstore: appending manifest: %w", err))
		return
	}
	m.seen[d] = oc
}

func (m *Manifest) noteErr(err error) {
	if m.firstErr == nil {
		m.firstErr = err
	}
}

// Err returns the first append failure, if any.
func (m *Manifest) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.firstErr
}

// Close syncs and closes the manifest file.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	if m.firstErr != nil {
		return m.firstErr
	}
	return err
}
