// Package faults is the deterministic fault-injection layer of the
// serving stack. An Injector, armed from a seed, decides — purely as a
// function of (seed, site, key) — whether a named injection site fails
// for a given key (usually a document name), how many consecutive
// attempts a transient fault survives, and how long a slow-worker stall
// lasts. Because every decision is a hash of stable inputs, a chaos run
// is reproducible across processes, worker counts, and goroutine
// schedules: the same seed always faults the same documents in the same
// way, which is what makes the batch chaos differential (output with
// transient faults + retries == output without faults) enforceable in CI.
//
// Injection sites are compiled into the serving path (batch, engine,
// tokens, admin) behind nil-safe Injector methods, so the fault layer
// costs one nil check per site when chaos is off. Arm it via
// Options/context in code, the `flashextract batch -chaos` flag, or the
// FLASHEXTRACT_CHAOS environment variable.
package faults

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The named injection sites wired through the serving stack. Sites fall
// in two classes: transient sites (recoverable by retry or harmless to
// output) and destructive sites (which turn documents into structured
// error records and therefore change batch output).
const (
	// SiteDocRead fails document reads in the batch worker pool with a
	// transient error; the worker's bounded retry loop recovers it.
	SiteDocRead = "batch.doc_read"
	// SiteDocParse corrupts the document's raw bytes before substrate
	// parsing, producing a structured "parse" failure record. Destructive.
	SiteDocParse = "batch.doc_parse"
	// SiteWorkerSlow stalls a batch worker before it processes a
	// document — a scheduling perturbation that must not change output.
	SiteWorkerSlow = "batch.worker_slow"
	// SiteBudget trips the synthesis/run budget mid-learner or mid-run,
	// exercising the graceful-degradation path. Destructive.
	SiteBudget = "engine.budget"
	// SiteCacheEvict caps the document evaluation cache at one byte,
	// forcing an eviction storm in tokens.Cache. Output-neutral: the
	// cache is a pure memoization layer.
	SiteCacheEvict = "tokens.cache_evict"
	// SiteAdminWrite fails response writes on the admin HTTP endpoints
	// for the first attempts of each path; the server must survive and
	// later requests must succeed. Transient.
	SiteAdminWrite = "admin.write"
)

// DefaultSites are the sites armed by a bare "seed=N" spec: exactly the
// transient/output-neutral set, so a default chaos run must be
// byte-identical to a fault-free run (the chaos differential).
var DefaultSites = []string{SiteDocRead, SiteWorkerSlow, SiteCacheEvict}

// AllSites lists every known injection site, for spec validation.
var AllSites = []string{
	SiteDocRead, SiteDocParse, SiteWorkerSlow,
	SiteBudget, SiteCacheEvict, SiteAdminWrite,
}

// Fault is an injected failure. It is the error returned by
// Injector.Fail, distinguishable from organic failures via errors.As and
// classified transient or not for the retry layer.
type Fault struct {
	// Site is the injection site that produced the fault.
	Site string
	// Key identifies the faulted unit (document name, URL path, …).
	Key string
	// Attempt is the 1-based attempt number that failed.
	Attempt int
	// Transient reports that a later attempt for the same key succeeds.
	Transient bool
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "permanent"
	if f.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("faults: injected %s fault at %s for %q (attempt %d)", kind, f.Site, f.Key, f.Attempt)
}

// IsTransient reports whether err is (or wraps) a transient injected
// fault, i.e. one that a bounded retry recovers.
func IsTransient(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Transient
}

// IsFault reports whether err is (or wraps) any injected fault.
func IsFault(err error) bool {
	var f *Fault
	return errors.As(err, &f)
}

// Injector decides fault injection deterministically from a seed. The
// zero value and the nil pointer are both disarmed: every method on a
// nil *Injector is a no-op, so injection sites need no conditionals.
type Injector struct {
	seed     int64
	rate     float64       // per-(site,key) fault probability
	failures int           // max consecutive transient failures per key
	delay    time.Duration // stall duration for SiteWorkerSlow
	sites    map[string]bool

	mu       sync.Mutex
	attempts map[string]int // consumed attempts per site\x00key
}

// Defaults for the tunable knobs of a spec.
const (
	DefaultRate     = 0.5
	DefaultFailures = 2
	DefaultDelay    = 2 * time.Millisecond
)

// New creates an injector for a seed with the default rate, transient
// failure count, stall delay, and DefaultSites armed.
func New(seed int64) *Injector {
	inj := &Injector{
		seed:     seed,
		rate:     DefaultRate,
		failures: DefaultFailures,
		delay:    DefaultDelay,
		sites:    map[string]bool{},
		attempts: map[string]int{},
	}
	for _, s := range DefaultSites {
		inj.sites[s] = true
	}
	return inj
}

// ParseSpec builds an injector from a comma-separated spec string:
//
//	seed=N[,rate=F][,failures=K][,delay=D][,sites=a;b;c]
//
// seed is required; sites are semicolon-separated site names (default
// DefaultSites, the transient/output-neutral set). Unknown keys and
// unknown site names are errors, so a typo never silently disarms chaos.
func ParseSpec(spec string) (*Injector, error) {
	var inj *Injector
	var sites []string
	seenSeed := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad spec element %q (want key=value)", part)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %w", v, err)
			}
			inj = New(n)
			seenSeed = true
		case "rate", "failures", "delay", "sites":
			if !seenSeed {
				return nil, fmt.Errorf("faults: spec must start with seed=N (got %q first)", part)
			}
			switch k {
			case "rate":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return nil, fmt.Errorf("faults: bad rate %q (want 0..1)", v)
				}
				inj.rate = f
			case "failures":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faults: bad failures %q (want >= 1)", v)
				}
				inj.failures = n
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faults: bad delay %q: %v", v, err)
				}
				inj.delay = d
			case "sites":
				sites = strings.Split(v, ";")
			}
		default:
			return nil, fmt.Errorf("faults: unknown spec key %q", k)
		}
	}
	if inj == nil {
		return nil, fmt.Errorf("faults: spec %q missing required seed=N", spec)
	}
	if sites != nil {
		inj.sites = map[string]bool{}
		for _, s := range sites {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			known := false
			for _, a := range AllSites {
				if s == a {
					known = true
					break
				}
			}
			if !known {
				return nil, fmt.Errorf("faults: unknown site %q (known: %s)", s, strings.Join(AllSites, ", "))
			}
			inj.sites[s] = true
		}
	}
	return inj, nil
}

// EnvVar is the environment variable FromEnv reads a chaos spec from.
const EnvVar = "FLASHEXTRACT_CHAOS"

// FromEnv builds an injector from the FLASHEXTRACT_CHAOS environment
// variable. An unset or empty variable yields (nil, nil): chaos off.
func FromEnv() (*Injector, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, nil
	}
	inj, err := ParseSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", EnvVar, err)
	}
	return inj, nil
}

// Seed returns the injector's seed.
func (i *Injector) Seed() int64 {
	if i == nil {
		return 0
	}
	return i.seed
}

// Sites returns the armed site names, sorted.
func (i *Injector) Sites() []string {
	if i == nil {
		return nil
	}
	out := make([]string, 0, len(i.sites))
	for s := range i.sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Rate returns the per-(site,key) fault probability.
func (i *Injector) Rate() float64 {
	if i == nil {
		return 0
	}
	return i.rate
}

// String renders a spec that round-trips through ParseSpec, for logs and
// chaos reports.
func (i *Injector) String() string {
	if i == nil {
		return ""
	}
	return fmt.Sprintf("seed=%d,rate=%g,failures=%d,delay=%s,sites=%s",
		i.seed, i.rate, i.failures, i.delay, strings.Join(i.Sites(), ";"))
}

// Armed reports whether a site is armed.
func (i *Injector) Armed(site string) bool {
	return i != nil && i.sites[site]
}

// Hit reports the deterministic fault decision for (site, key): true
// when the site is armed and the seeded hash of the pair falls under the
// rate. It is pure — no state is consumed — so callers can probe it any
// number of times and in any order.
func (i *Injector) Hit(site, key string) bool {
	if i == nil || !i.sites[site] {
		return false
	}
	return hash01(i.hash(site, key)) < i.rate
}

// Fail consumes one attempt at (site, key) and returns an injected
// transient *Fault while attempts remain, nil afterwards. The number of
// failing attempts — between 1 and the injector's failures knob — is
// itself a deterministic function of (seed, site, key), so a retry loop
// with at least failures+1 attempts always recovers, independent of
// scheduling. Keys the Hit decision rejects never fail.
func (i *Injector) Fail(site, key string) error {
	if i == nil || !i.sites[site] {
		return nil
	}
	h := i.hash(site, key)
	if hash01(h) >= i.rate {
		return nil
	}
	planned := 1 + int((h>>17)%uint64(i.failures))
	i.mu.Lock()
	ak := site + "\x00" + key
	n := i.attempts[ak]
	if n >= planned {
		i.mu.Unlock()
		return nil
	}
	i.attempts[ak] = n + 1
	i.mu.Unlock()
	return &Fault{Site: site, Key: key, Attempt: n + 1, Transient: true}
}

// Delay returns the stall duration for (site, key): the injector's delay
// knob when Hit, zero otherwise. Callers must honor context
// cancellation while stalling.
func (i *Injector) Delay(site, key string) time.Duration {
	if !i.Hit(site, key) {
		return 0
	}
	return i.delay
}

// Corrupt deterministically mangles data when (site, key) hits:
// truncating at a hash-derived offset and appending bytes chosen to
// break each substrate parser — the quote leads so that a cut landing on
// a CSV field boundary opens an unterminated quoted field, followed by a
// NUL, an unterminated comment for HTML, and an unterminated bracket for
// schemas. When the site misses, data is returned unchanged.
func (i *Injector) Corrupt(site, key string, data []byte) []byte {
	if !i.Hit(site, key) {
		return data
	}
	h := i.hash(site, key)
	cut := int(h % uint64(len(data)+1))
	out := make([]byte, 0, cut+8)
	out = append(out, data[:cut]...)
	return append(out, "\"\x00<!--["...)
}

// hash is FNV-1a over the seed, site, and key with separators, finalized
// by mix64. Raw FNV-1a has no avalanche on the trailing bytes — keys
// differing only in a final digit would share their top bits, and hash01
// reads exactly those bits — so the mixer is load-bearing, not cosmetic.
func (i *Injector) hash(site, key string) uint64 {
	h := uint64(14695981039346656037)
	step := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	s := i.seed
	for n := 0; n < 8; n++ {
		step(byte(s >> (8 * n)))
	}
	step(0x1f)
	for n := 0; n < len(site); n++ {
		step(site[n])
	}
	step(0x1f)
	for n := 0; n < len(key); n++ {
		step(key[n])
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so every
// input bit flips about half the output bits.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hash01 maps a hash to [0, 1).
func hash01(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// injectorKey keys the Injector installed in a context.
type injectorKey struct{}

// Into returns a context carrying the injector; the serving stack's
// injection sites read it back with From. A nil injector is fine.
func Into(ctx context.Context, i *Injector) context.Context {
	if i == nil {
		return ctx
	}
	return context.WithValue(ctx, injectorKey{}, i)
}

// From returns the injector carried by the context, or nil (disarmed)
// when none is installed.
func From(ctx context.Context) *Injector {
	if ctx == nil {
		return nil
	}
	i, _ := ctx.Value(injectorKey{}).(*Injector)
	return i
}
