package faults

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestHitDeterministic asserts the fault decision is a pure function of
// (seed, site, key): two injectors with the same seed agree on every
// probe, and probing repeatedly never changes the answer.
func TestHitDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	hits := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("doc%d.txt", i)
		ha := a.Hit(SiteDocRead, key)
		if hb := b.Hit(SiteDocRead, key); ha != hb {
			t.Fatalf("same seed disagrees on %q: %v vs %v", key, ha, hb)
		}
		if again := a.Hit(SiteDocRead, key); again != ha {
			t.Fatalf("repeated probe of %q changed: %v then %v", key, ha, again)
		}
		if ha {
			hits++
		}
	}
	// Rate 0.5 over 200 keys: a wildly skewed hash would be a bug.
	if hits < 50 || hits > 150 {
		t.Fatalf("hit count %d/200 far from rate 0.5", hits)
	}
	other := New(43)
	diff := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("doc%d.txt", i)
		if a.Hit(SiteDocRead, key) != other.Hit(SiteDocRead, key) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 42 and 43 produce identical decisions")
	}
}

// TestFailTransientSemantics asserts Fail fails a hit key a bounded,
// deterministic number of times and then succeeds forever — the contract
// the retry layer recovers.
func TestFailTransientSemantics(t *testing.T) {
	inj := New(7)
	faulted := false
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("doc%d", i)
		if !inj.Hit(SiteDocRead, key) {
			if err := inj.Fail(SiteDocRead, key); err != nil {
				t.Fatalf("missed key %q still failed: %v", key, err)
			}
			continue
		}
		faulted = true
		fails := 0
		for try := 0; try < 10; try++ {
			err := inj.Fail(SiteDocRead, key)
			if err == nil {
				break
			}
			if !IsTransient(err) || !IsFault(err) {
				t.Fatalf("injected fault not classified transient: %v", err)
			}
			fails++
		}
		if fails < 1 || fails > DefaultFailures {
			t.Fatalf("key %q failed %d times, want 1..%d", key, fails, DefaultFailures)
		}
		// Attempts are consumed: the key now succeeds forever.
		if err := inj.Fail(SiteDocRead, key); err != nil {
			t.Fatalf("key %q failed after recovery: %v", key, err)
		}
	}
	if !faulted {
		t.Fatal("no key hit at rate 0.5 over 100 keys")
	}
}

// TestNilInjectorDisarmed asserts every method of a nil *Injector is a
// no-op, matching the zero-cost contract of compiled-in sites.
func TestNilInjectorDisarmed(t *testing.T) {
	var inj *Injector
	if inj.Hit(SiteDocRead, "x") || inj.Armed(SiteDocRead) {
		t.Fatal("nil injector hit")
	}
	if err := inj.Fail(SiteDocRead, "x"); err != nil {
		t.Fatal(err)
	}
	if d := inj.Delay(SiteWorkerSlow, "x"); d != 0 {
		t.Fatalf("nil injector delay %v", d)
	}
	if got := inj.Corrupt(SiteDocParse, "x", []byte("abc")); string(got) != "abc" {
		t.Fatalf("nil injector corrupted data: %q", got)
	}
	if inj.Seed() != 0 || inj.Sites() != nil || inj.String() != "" {
		t.Fatal("nil injector exposes state")
	}
	if From(context.Background()) != nil {
		t.Fatal("empty context carries an injector")
	}
}

// TestParseSpec covers the spec grammar: defaults, every knob, site
// lists, and the error cases that must not silently disarm chaos.
func TestParseSpec(t *testing.T) {
	inj, err := ParseSpec("seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if inj.Seed() != 9 || inj.Rate() != DefaultRate {
		t.Fatalf("defaults wrong: %s", inj)
	}
	got := inj.Sites()
	want := []string{SiteDocRead, SiteCacheEvict, SiteWorkerSlow}
	if len(got) != len(want) {
		t.Fatalf("default sites = %v", got)
	}
	for _, s := range want {
		if !inj.Armed(s) {
			t.Fatalf("default site %s not armed", s)
		}
	}
	if inj.Armed(SiteDocParse) || inj.Armed(SiteBudget) {
		t.Fatal("destructive site armed by default")
	}

	inj, err = ParseSpec("seed=3,rate=1.0,failures=1,delay=5ms,sites=batch.doc_parse;engine.budget")
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Armed(SiteDocParse) || !inj.Armed(SiteBudget) || inj.Armed(SiteDocRead) {
		t.Fatalf("sites = %v", inj.Sites())
	}
	if !inj.Hit(SiteDocParse, "anything") {
		t.Fatal("rate=1.0 missed")
	}

	// Round trip: String() reparses to the same decisions.
	again, err := ParseSpec(inj.String())
	if err != nil {
		t.Fatalf("String() %q does not reparse: %v", inj, err)
	}
	if again.String() != inj.String() {
		t.Fatalf("round trip %q != %q", again, inj)
	}

	for _, bad := range []string{
		"", "rate=0.5", "seed=x", "seed=1,rate=2", "seed=1,failures=0",
		"seed=1,sites=no.such_site", "seed=1,bogus=3", "seed=1,delay=-1s",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestFromEnv asserts the environment arming path: empty means off,
// valid specs arm, bad specs error with the variable named.
func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if inj, err := FromEnv(); inj != nil || err != nil {
		t.Fatalf("empty env: %v, %v", inj, err)
	}
	t.Setenv(EnvVar, "seed=11")
	inj, err := FromEnv()
	if err != nil || inj.Seed() != 11 {
		t.Fatalf("env arm: %v, %v", inj, err)
	}
	t.Setenv(EnvVar, "nonsense")
	if _, err := FromEnv(); err == nil || !strings.Contains(err.Error(), EnvVar) {
		t.Fatalf("bad env spec error = %v", err)
	}
}

// TestCorruptDeterministic asserts corruption is stable per key and
// leaves missed keys untouched.
func TestCorruptDeterministic(t *testing.T) {
	inj, err := ParseSpec("seed=5,rate=1.0,sites=batch.doc_parse")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("Name,Price\nBolt,1.00\n")
	a := inj.Corrupt(SiteDocParse, "doc1", data)
	b := inj.Corrupt(SiteDocParse, "doc1", data)
	if string(a) != string(b) {
		t.Fatalf("corruption not deterministic: %q vs %q", a, b)
	}
	if string(a) == string(data) {
		t.Fatal("hit key not corrupted")
	}
	miss, _ := ParseSpec("seed=5,rate=0.0,sites=batch.doc_parse")
	if got := miss.Corrupt(SiteDocParse, "doc1", data); string(got) != string(data) {
		t.Fatalf("missed key corrupted: %q", got)
	}
}

// TestContextPlumbing asserts Into/From round-trips the injector.
func TestContextPlumbing(t *testing.T) {
	inj := New(1)
	ctx := Into(context.Background(), inj)
	if From(ctx) != inj {
		t.Fatal("context did not carry the injector")
	}
	if got := Into(context.Background(), nil); From(got) != nil {
		t.Fatal("nil injector installed")
	}
}

// TestDelay asserts the slow-worker site returns the configured stall
// for hit keys and zero otherwise.
func TestDelay(t *testing.T) {
	inj, err := ParseSpec("seed=2,rate=1.0,delay=7ms,sites=batch.worker_slow")
	if err != nil {
		t.Fatal(err)
	}
	if d := inj.Delay(SiteWorkerSlow, "k"); d != 7*time.Millisecond {
		t.Fatalf("delay = %v", d)
	}
	if d := inj.Delay(SiteDocRead, "k"); d != 0 {
		t.Fatalf("unarmed site delayed %v", d)
	}
}

// TestIsTransientWrapped asserts classification survives error wrapping,
// which the batch runtime relies on when it annotates read failures.
func TestIsTransientWrapped(t *testing.T) {
	f := &Fault{Site: SiteDocRead, Key: "d", Attempt: 1, Transient: true}
	wrapped := fmt.Errorf("reading document: %w", f)
	if !IsTransient(wrapped) || !IsFault(wrapped) {
		t.Fatal("wrapped transient fault not classified")
	}
	if IsTransient(errors.New("organic failure")) {
		t.Fatal("organic error classified transient")
	}
	perm := &Fault{Site: SiteDocParse, Key: "d", Attempt: 1}
	if IsTransient(perm) || !IsFault(perm) {
		t.Fatal("permanent fault misclassified")
	}
}
