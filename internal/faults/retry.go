package faults

import (
	"context"
	"time"
)

// RetryPolicy bounds retries of a transient operation with exponential
// backoff and deterministic jitter. The zero value retries nothing
// (one attempt, no sleeps); DefaultRetry is the batch runtime's policy.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included).
	// Values below 1 behave as 1.
	Attempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it. Zero means no sleeping between attempts.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (0 = uncapped).
	MaxDelay time.Duration
}

// DefaultRetry is the batch worker pool's document-read policy: three
// tries with 1ms/2ms backoff. Three tries strictly exceeds the default
// injected transient failure count (DefaultFailures = 2), which is what
// makes the chaos differential recover every injected read fault.
var DefaultRetry = RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond}

// Do runs fn up to p.Attempts times, retrying only while retryable(err)
// reports the failure transient and the context is alive. It returns the
// number of attempts actually made and the final error (nil on success).
// Backoff between attempts is BaseDelay doubled per retry, capped at
// MaxDelay, and jittered deterministically from key — the same key
// always waits the same schedule, keeping chaos runs reproducible.
func (p RetryPolicy) Do(ctx context.Context, key string, retryable func(error) bool, fn func() error) (int, error) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for try := 1; ; try++ {
		err = fn()
		if err == nil || try >= attempts || !retryable(err) {
			return try, err
		}
		if ctx != nil && ctx.Err() != nil {
			return try, err
		}
		if d := p.backoff(key, try); d > 0 {
			t := time.NewTimer(d)
			if ctx == nil {
				<-t.C
			} else {
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return try, err
				}
			}
		}
	}
}

// backoff computes the wait before retry number try (1-based): BaseDelay
// doubled per prior retry, scaled by a deterministic jitter in
// [0.5, 1.0) derived from (key, try), capped at MaxDelay.
func (p RetryPolicy) backoff(key string, try int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay << (try - 1)
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	h := uint64(14695981039346656037)
	for n := 0; n < len(key); n++ {
		h ^= uint64(key[n])
		h *= 1099511628211
	}
	h ^= uint64(try)
	h *= 1099511628211
	jitter := 0.5 + hash01(mix64(h))/2
	return time.Duration(float64(d) * jitter)
}
