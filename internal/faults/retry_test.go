package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func alwaysRetryable(error) bool { return true }

// TestRetryFirstTrySuccess asserts success costs exactly one attempt and
// no sleeping.
func TestRetryFirstTrySuccess(t *testing.T) {
	tries, err := DefaultRetry.Do(context.Background(), "k", alwaysRetryable, func() error { return nil })
	if tries != 1 || err != nil {
		t.Fatalf("got %d tries, %v", tries, err)
	}
}

// TestRetryRecoversTransient asserts a fault that clears within the
// attempt budget ends in success, with the attempt count reported.
func TestRetryRecoversTransient(t *testing.T) {
	calls := 0
	tries, err := DefaultRetry.Do(context.Background(), "k", alwaysRetryable, func() error {
		calls++
		if calls < 3 {
			return &Fault{Site: SiteDocRead, Key: "k", Attempt: calls, Transient: true}
		}
		return nil
	})
	if err != nil || tries != 3 || calls != 3 {
		t.Fatalf("tries=%d calls=%d err=%v", tries, calls, err)
	}
}

// TestRetryExhaustsBudget asserts a fault that never clears surfaces the
// last error after exactly Attempts tries.
func TestRetryExhaustsBudget(t *testing.T) {
	calls := 0
	sentinel := errors.New("still broken")
	tries, err := DefaultRetry.Do(context.Background(), "k", alwaysRetryable, func() error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || tries != DefaultRetry.Attempts || calls != DefaultRetry.Attempts {
		t.Fatalf("tries=%d calls=%d err=%v", tries, calls, err)
	}
}

// TestRetryStopsOnPermanent asserts a non-retryable error returns
// immediately — permanent failures must not eat the backoff schedule.
func TestRetryStopsOnPermanent(t *testing.T) {
	calls := 0
	tries, err := DefaultRetry.Do(context.Background(), "k",
		func(err error) bool { return IsTransient(err) },
		func() error {
			calls++
			return errors.New("file does not exist")
		})
	if tries != 1 || calls != 1 || err == nil {
		t.Fatalf("tries=%d calls=%d err=%v", tries, calls, err)
	}
}

// TestRetryHonorsCancellation asserts a cancelled context stops the loop
// between attempts instead of sleeping through the backoff.
func TestRetryHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{Attempts: 100, BaseDelay: time.Hour}
	calls := 0
	start := time.Now()
	tries, err := p.Do(ctx, "k", alwaysRetryable, func() error {
		calls++
		cancel()
		return errors.New("transient-looking")
	})
	if tries != 1 || calls != 1 || err == nil {
		t.Fatalf("tries=%d calls=%d err=%v", tries, calls, err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("slept through backoff despite cancellation")
	}
}

// TestRetryZeroPolicy asserts the zero value makes exactly one attempt.
func TestRetryZeroPolicy(t *testing.T) {
	var p RetryPolicy
	calls := 0
	tries, err := p.Do(context.Background(), "k", alwaysRetryable, func() error {
		calls++
		return errors.New("fail")
	})
	if tries != 1 || calls != 1 || err == nil {
		t.Fatalf("tries=%d calls=%d err=%v", tries, calls, err)
	}
}

// TestBackoffSchedule asserts backoff doubles from BaseDelay, is capped
// at MaxDelay, stays within the jitter window [0.5, 1.0)×nominal, and is
// deterministic per (key, try).
func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{Attempts: 5, BaseDelay: 8 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	for try := 1; try <= 4; try++ {
		nominal := p.BaseDelay << (try - 1)
		if nominal > p.MaxDelay {
			nominal = p.MaxDelay
		}
		for _, key := range []string{"a.txt", "b.txt", "c.txt"} {
			d := p.backoff(key, try)
			if d2 := p.backoff(key, try); d2 != d {
				t.Fatalf("backoff(%q,%d) not deterministic: %v vs %v", key, try, d, d2)
			}
			lo, hi := nominal/2, nominal
			if d < lo || d >= hi {
				t.Fatalf("backoff(%q,%d) = %v outside [%v, %v)", key, try, d, lo, hi)
			}
		}
	}
	if d := (RetryPolicy{Attempts: 3}).backoff("k", 1); d != 0 {
		t.Fatalf("zero BaseDelay backoff = %v", d)
	}
}

// TestRetryRecoversInjectedFault wires the injector and the retry policy
// together: every key the injector faults must recover within
// DefaultRetry.Attempts, because planned failures ≤ DefaultFailures <
// Attempts. This is the invariant the chaos differential rests on.
func TestRetryRecoversInjectedFault(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		inj := New(seed)
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("doc%d.txt", i)
			tries, err := DefaultRetry.Do(context.Background(), key, IsTransient, func() error {
				return inj.Fail(SiteDocRead, key)
			})
			if err != nil {
				t.Fatalf("seed %d key %q not recovered after %d tries: %v", seed, key, tries, err)
			}
			if inj.Hit(SiteDocRead, key) && tries < 2 {
				t.Fatalf("seed %d key %q hit but succeeded first try", seed, key)
			}
		}
	}
}
