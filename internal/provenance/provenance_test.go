package provenance_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"flashextract/internal/batch"
	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
	"flashextract/internal/engine"
	"flashextract/internal/provenance"
)

func TestExplainHadoopXLRoundTrip(t *testing.T) {
	task := corpus.ByName("hadoop-xl")
	if task == nil {
		t.Fatal("corpus task hadoop-xl not found")
	}
	art, err := bench.LearnSchemaProgram(task, 3)
	if err != nil {
		t.Fatalf("learning hadoop-xl: %v", err)
	}
	lang, err := batch.LanguageFor(task.Domain)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := engine.LoadSchemaProgram(art, lang)
	if err != nil {
		t.Fatalf("loading program: %v", err)
	}
	inst, _, caps, err := prog.RunCapturedContext(context.Background(), task.Doc)
	if err != nil {
		t.Fatalf("captured run: %v", err)
	}
	frame := provenance.Explain(prog, inst, caps, task.Name, 0)
	if frame.SchemaName != provenance.Schema {
		t.Fatalf("frame schema = %q", frame.SchemaName)
	}
	if len(frame.Leaves) == 0 {
		t.Fatal("explain frame has no leaves")
	}
	fields := map[string]int{}
	for _, leaf := range frame.Leaves {
		fields[leaf.Field]++
		if leaf.Span == nil {
			t.Fatalf("leaf %s has no source span", leaf.Path)
		}
		if leaf.Span.Space != "bytes" {
			t.Fatalf("leaf %s span space = %q, want bytes", leaf.Path, leaf.Span.Space)
		}
		// The round-trip guarantee: slicing the document at the span
		// reproduces the leaf's text exactly.
		if got := task.Source[leaf.Span.Start:leaf.Span.End]; got != leaf.Text {
			t.Fatalf("leaf %s: doc[%d:%d] = %q, want %q",
				leaf.Path, leaf.Span.Start, leaf.Span.End, got, leaf.Text)
		}
		if len(leaf.Ops) == 0 {
			t.Fatalf("leaf %s has no operator path", leaf.Path)
		}
		if !strings.HasPrefix(leaf.Path, "Stamps[") && !strings.HasPrefix(leaf.Path, "Warnings[") {
			t.Fatalf("unexpected leaf path %q", leaf.Path)
		}
	}
	if len(fields) != 2 {
		t.Fatalf("leaves cover fields %v, want both schema colors", fields)
	}
	// Frames must round-trip through JSON (they are NDJSON lines).
	b, err := json.Marshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b) {
		t.Fatal("frame did not marshal to valid JSON")
	}
}

func TestExplainMatchesUncapturedRun(t *testing.T) {
	task := corpus.ByName("hadoop-xl")
	art, err := bench.LearnSchemaProgram(task, 3)
	if err != nil {
		t.Fatal(err)
	}
	lang, _ := batch.LanguageFor(task.Domain)
	prog, err := engine.LoadSchemaProgram(art, lang)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := prog.RunContext(context.Background(), task.Doc)
	if err != nil {
		t.Fatal(err)
	}
	captured, _, _, err := prog.RunCapturedContext(context.Background(), task.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != captured.String() {
		t.Fatal("captured run produced a different instance than the plain run")
	}
}

func TestUnavailableFrame(t *testing.T) {
	f := provenance.Unavailable("doc.txt", 7, "error: parse")
	if f.Unavailable != "error: parse" || f.Doc != "doc.txt" || f.Index != 7 {
		t.Fatalf("frame = %+v", f)
	}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != provenance.Schema {
		t.Fatalf("schema field = %v", m["schema"])
	}
	if _, ok := m["leaves"]; !ok {
		t.Fatal("leaves must be present (empty array) even when unavailable")
	}
}
