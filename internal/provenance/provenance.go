// Package provenance builds flashextract-explain/v1 frames: per-record
// explanations mapping every extracted leaf value back to its source
// coordinates in the document and to the path of core operator
// subexpressions that produced it.
//
// A frame is assembled from the three artifacts of a captured run
// (engine.SchemaProgram.RunCapturedContext): the filled instance, which the
// frame walks in lockstep with the schema; the regions at its leaves,
// whose SourceSpan gives the document coordinates; and the per-field
// ExecCaptures, which give each leaf region's operator path.
package provenance

import (
	"fmt"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/region"
	"flashextract/internal/schema"
)

// Schema identifies explain frames in NDJSON streams.
const Schema = "flashextract-explain/v1"

// Frame explains one extracted record (one emitted NDJSON line): its
// document, record index, and the provenance of every non-null leaf.
type Frame struct {
	SchemaName string `json:"schema"`
	Doc        string `json:"doc"`
	Index      int    `json:"index"`
	RequestID  string `json:"request_id,omitempty"`
	Program    string `json:"program,omitempty"`
	Leaves     []Leaf `json:"leaves"`
	// Unavailable explains why a record has no leaf provenance: the run
	// failed, or the record came from a path that did not re-execute the
	// program (dedup hit, resume skip, prefilter drop).
	Unavailable string `json:"unavailable,omitempty"`
}

// Leaf is the provenance of one leaf value of a record.
type Leaf struct {
	// Path locates the leaf within the record, e.g. "Stamps[2]" or
	// "host.name".
	Path string `json:"path"`
	// Field is the schema color of the leaf's field.
	Field string `json:"field"`
	// Ancestor is the color of the field's extraction ancestor, empty for
	// the whole document (⊥).
	Ancestor string `json:"ancestor,omitempty"`
	Text     string `json:"text"`
	// Span gives the leaf's source coordinates; nil when the region type
	// cannot report them.
	Span *Span `json:"span,omitempty"`
	// Ops is the leaf region's path through the core operators, innermost
	// producer first (e.g. ["Map:LinesMap", "FilterBool"]).
	Ops []string `json:"ops,omitempty"`
}

// Span is the JSON form of region.SourceSpan.
type Span struct {
	Space string    `json:"space"`
	Start int       `json:"start,omitempty"`
	End   int       `json:"end,omitempty"`
	Grid  *GridRect `json:"grid,omitempty"`
}

// GridRect is the inclusive cell rectangle of a grid-space span.
type GridRect struct {
	R1 int `json:"r1"`
	C1 int `json:"c1"`
	R2 int `json:"r2"`
	C2 int `json:"c2"`
}

func spanOf(r region.Region) *Span {
	ss, ok := r.(region.SourceSpanner)
	if !ok {
		return nil
	}
	s := ss.SourceSpan()
	out := &Span{Space: s.Space, Start: s.Start, End: s.End}
	if s.Space == "grid" {
		out.Start, out.End = 0, 0
		out.Grid = &GridRect{R1: s.R1, C1: s.C1, R2: s.R2, C2: s.C2}
	}
	return out
}

// Explain builds the explain frame for one extracted record instance. The
// caps map is the per-field-color captures from a RunCapturedContext run;
// it may be nil, in which case leaves carry spans but no operator paths.
// doc and index identify the record; the caller stamps RequestID and
// Program as appropriate.
func Explain(prog *engine.SchemaProgram, inst *engine.Instance, caps map[string]*core.ExecCapture, doc string, index int) *Frame {
	f := &Frame{SchemaName: Schema, Doc: doc, Index: index, Leaves: []Leaf{}}
	w := &walker{prog: prog, caps: caps, frame: f}
	m := prog.Schema
	switch {
	case m.TopSeq != nil:
		// A top-level sequence record is one item: a single inner field.
		w.field(m.TopSeq.Inner, inst, "")
	default:
		w.structure(m.TopStruct, inst, "")
	}
	return f
}

// Unavailable builds a frame that records why provenance is absent for a
// record (error paths and shortcut paths that skip re-execution).
func Unavailable(doc string, index int, reason string) *Frame {
	return &Frame{SchemaName: Schema, Doc: doc, Index: index, Leaves: []Leaf{}, Unavailable: reason}
}

type walker struct {
	prog  *engine.SchemaProgram
	caps  map[string]*core.ExecCapture
	frame *Frame
}

func (w *walker) structure(s *schema.Struct, inst *engine.Instance, path string) {
	if inst.IsNull() || inst.Kind != engine.StructInstance {
		return
	}
	for i, e := range s.Elements {
		if i >= len(inst.Elements) {
			return
		}
		sub := join(path, e.Name)
		v := inst.Elements[i].Value
		if e.Seq != nil {
			w.seq(e.Seq, v, sub)
		} else {
			w.field(e.Field, v, sub)
		}
	}
}

func (w *walker) seq(s *schema.Seq, inst *engine.Instance, path string) {
	if inst.IsNull() || inst.Kind != engine.SeqInstance {
		return
	}
	for i, it := range inst.Items {
		w.field(s.Inner, it, fmt.Sprintf("%s[%d]", path, i))
	}
}

func (w *walker) field(f *schema.Field, inst *engine.Instance, path string) {
	if inst.IsNull() {
		return
	}
	if !f.IsLeaf() {
		w.structure(f.Struct, inst, path)
		return
	}
	if inst.Kind != engine.LeafInstance || inst.Region == nil {
		return
	}
	leaf := Leaf{Path: path, Field: f.Color, Text: inst.Text, Span: spanOf(inst.Region)}
	if fp := w.prog.Fields[f.Color]; fp != nil && fp.Ancestor != nil {
		leaf.Ancestor = fp.Ancestor.Color()
	}
	if c := w.caps[f.Color]; c != nil {
		leaf.Ops = c.Steps(inst.Region)
	}
	w.frame.Leaves = append(w.frame.Leaves, leaf)
}

func join(path, name string) string {
	if path == "" {
		return name
	}
	return path + "." + name
}
