package textlang

import (
	"testing"

	"flashextract/internal/core"
	"flashextract/internal/tokens"
)

// FuzzAbstractSound pins the soundness contract of the abstraction layer's
// line-predicate check: whenever predFeasible rejects a candidate on a
// state, concretely executing that candidate on the same state must not
// succeed. This is exactly the property the pruning sites in learnPred rely
// on for bit-identical output with pruning on or off — a single
// counterexample here would mean pruning can drop a consistent program.
func FuzzAbstractSound(f *testing.F) {
	f.Add(analyteText, uint8(1), uint8(3))
	f.Add("ERROR 2026-01-03 boot failed\nINFO ok\nERROR 2026-01-04 disk full\n", uint8(0), uint8(2))
	f.Add("a,1\nb,22\nc,333\n", uint8(2), uint8(0))
	f.Add("one two\tthree\nfour\n\nfive", uint8(3), uint8(1))
	f.Add("x", uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, text string, i, j uint8) {
		if len(text) > 2048 {
			t.Skip()
		}
		doc := NewDocument(text)
		whole := doc.WholeRegion().(Region)
		lines := linesIn(whole)
		if len(lines) == 0 {
			t.Skip()
		}
		src := lines[int(i)%len(lines)]
		dst := lines[int(j)%len(lines)]

		// Candidates exactly as learnPred derives them: every predicate form
		// instantiated from the source line's text, then checked against a
		// state whose λ-bound line is (in general) a different line.
		cands := candidatesForLine(src.Value(), predStartsWith, predEndsWith, predContains, tokens.Standard)
		cands = append(cands, candidatesForLine(src.Value(), predPredStartsWith, predPredEndsWith, predPredContains, tokens.Standard)...)
		cands = append(cands, candidatesForLine(src.Value(), predSuccStartsWith, predSuccEndsWith, predSuccContains, tokens.Standard)...)

		st := core.NewState(whole).Bind(lambdaVar, dst)
		for _, cand := range cands {
			if predFeasible(st, cand) {
				continue // only rejections carry a proof obligation
			}
			v, err := cand.Exec(st)
			if err == nil && v == core.Value(true) {
				t.Fatalf("abstraction unsound: predFeasible rejected %s on line [%d,%d) of %q, but Exec accepts",
					cand, dst.Start, dst.End, text)
			}
		}
	})
}
