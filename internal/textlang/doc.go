// Package textlang implements Ltext, the FlashExtract data-extraction DSL
// for text files (Fig. 7 of the paper), together with its learners. A
// region is a pair of character positions in the file; sequence programs
// combine line-level maps (LinesMap), position-sequence maps (StartSeqMap,
// EndSeqMap), line and position filters, and a top-level Merge; region
// programs pair two learned position attributes.
package textlang

import (
	"fmt"
	"strings"
	"sync"

	"flashextract/internal/engine"
	"flashextract/internal/region"
	"flashextract/internal/tokens"
)

// Document is a text file.
type Document struct {
	// Text is the full file content.
	Text string
	lang *lang

	mu        sync.RWMutex
	lineCache map[[2]int][]Region

	// cache memoizes token boundaries, regex-pair position sequences, and
	// learning indexes over ranges of Text; program execution and the
	// learners share it across candidates and refinement iterations.
	cache *tokens.Cache
}

// NewDocument creates a text document.
func NewDocument(text string) *Document {
	d := &Document{Text: text}
	d.lang = &lang{}
	d.cache = tokens.NewCache(text)
	return d
}

// EvalCache returns the document's evaluation cache.
func (d *Document) EvalCache() *tokens.Cache { return d.cache }

// CacheStats reports the evaluation cache's counters (engine.CacheStatser).
func (d *Document) CacheStats() engine.CacheStats {
	s := d.cache.Stats()
	return engine.CacheStats{Hits: s.Hits, Misses: s.Misses, Entries: s.Entries, Evictions: s.Evictions, ApproxBytes: s.ApproxBytes}
}

// LimitCacheBytes caps the evaluation cache's approximate resident bytes;
// the synthesis driver calls it when the budget sets MaxCacheBytes.
func (d *Document) LimitCacheBytes(n int64) { d.cache.SetMaxBytes(n) }

// WholeRegion returns the region covering the entire file.
func (d *Document) WholeRegion() region.Region {
	return Region{Doc: d, Start: 0, End: len(d.Text)}
}

// Language returns the Ltext DSL.
func (d *Document) Language() engine.Language { return d.lang }

// Region returns the region of d spanning [start, end). It panics on an
// invalid range.
func (d *Document) Region(start, end int) Region {
	if start < 0 || end > len(d.Text) || start > end {
		panic(fmt.Sprintf("textlang: invalid region [%d,%d) for document of length %d", start, end, len(d.Text)))
	}
	return Region{Doc: d, Start: start, End: end}
}

// FindRegion returns the region of the n-th occurrence (0-based) of sub in
// the document, or ok=false. It is a convenience for writing examples.
func (d *Document) FindRegion(sub string, n int) (Region, bool) {
	from := 0
	for i := 0; ; i++ {
		j := indexFrom(d.Text, sub, from)
		if j < 0 {
			return Region{}, false
		}
		if i == n {
			return d.Region(j, j+len(sub)), true
		}
		from = j + 1
	}
}

func indexFrom(s, sub string, from int) int {
	if from < 0 || from > len(s) {
		return -1
	}
	j := strings.Index(s[from:], sub)
	if j < 0 {
		return -1
	}
	return from + j
}

// Region is a pair of character positions in a text document (Def. 2): all
// characters in [Start, End).
type Region struct {
	Doc        *Document
	Start, End int
}

var _ region.Region = Region{}

// Contains reports nesting (including equality) within the same document.
func (r Region) Contains(other region.Region) bool {
	o, ok := other.(Region)
	return ok && o.Doc == r.Doc && r.Start <= o.Start && o.End <= r.End
}

// Overlaps reports whether the two regions share characters.
func (r Region) Overlaps(other region.Region) bool {
	o, ok := other.(Region)
	return ok && o.Doc == r.Doc && r.Start < o.End && o.Start < r.End
}

// Interval exposes the region as a half-open interval of its document
// (core.Interval): region equality is exactly document+endpoint equality
// and conflictOverlap is exactly strict intersection within one document,
// so PreferNonOverlapping may use the O(n log n) sweep.
func (r Region) Interval() (space any, start, end int) {
	return r.Doc, r.Start, r.End
}

// Less orders regions by start position; at equal starts the larger region
// comes first (outer before inner).
func (r Region) Less(other region.Region) bool {
	o := other.(Region)
	if r.Start != o.Start {
		return r.Start < o.Start
	}
	return r.End > o.End
}

// Value returns the text of the region.
func (r Region) Value() string { return r.Doc.Text[r.Start:r.End] }

// SourceSpan reports the region's raw byte range: slicing the document
// text at [Start, End) reproduces Value.
func (r Region) SourceSpan() region.SourceSpan {
	return region.SourceSpan{Space: "bytes", Start: r.Start, End: r.End}
}

func (r Region) String() string { return fmt.Sprintf("[%d,%d)", r.Start, r.End) }

// maxLineCacheEntries bounds the per-document line cache; on overflow
// only sub-document entries are evicted, so the hot whole-document entry
// (the input of every ⊥-relative candidate) is never lost.
const maxLineCacheEntries = 256

// linesIn splits a region into its lines (split(R0, '\n')): the segments
// between newline characters, clipped to the region. Interior empty lines
// are kept; the empty segment after a trailing newline is dropped. Line
// lists are cached on the document — predicates over the preceding and
// succeeding lines consult them once per evaluation, which would otherwise
// be quadratic in document size.
func linesIn(r Region) []Region {
	d := r.Doc
	key := [2]int{r.Start, r.End}
	d.mu.RLock()
	lines, ok := d.lineCache[key]
	d.mu.RUnlock()
	if ok {
		return lines
	}

	text := r.Value()
	var out []Region
	start := 0
	for i := 0; i <= len(text); i++ {
		if i < len(text) && text[i] != '\n' {
			continue
		}
		if i == len(text) && start == i && len(out) > 0 {
			break // trailing newline: no final empty line
		}
		out = append(out, Region{Doc: r.Doc, Start: r.Start + start, End: r.Start + i})
		start = i + 1
	}

	whole := [2]int{0, len(d.Text)}
	d.mu.Lock()
	if d.lineCache == nil {
		d.lineCache = map[[2]int][]Region{}
	}
	if len(d.lineCache) >= maxLineCacheEntries && key != whole {
		for k := range d.lineCache {
			if k != whole {
				delete(d.lineCache, k)
			}
		}
	}
	d.lineCache[key] = out
	d.mu.Unlock()
	return out
}

// lineContaining returns the line of r that fully contains [start, end),
// or ok=false (e.g. for multi-line subregions).
func lineContaining(r Region, start, end int) (Region, bool) {
	for _, l := range linesIn(r) {
		if l.Start <= start && end <= l.End {
			return l, true
		}
	}
	return Region{}, false
}

// Span returns the minimal region covering a and b, enabling bottom-up
// structure inference (see engine.Spanner).
func (d *Document) Span(a, b region.Region) (region.Region, error) {
	ar, ok1 := a.(Region)
	br, ok2 := b.(Region)
	if !ok1 || !ok2 || ar.Doc != d || br.Doc != d {
		return nil, fmt.Errorf("textlang: Span requires two regions of this document")
	}
	out := Region{Doc: d, Start: ar.Start, End: ar.End}
	if br.Start < out.Start {
		out.Start = br.Start
	}
	if br.End > out.End {
		out.End = br.End
	}
	return out, nil
}
