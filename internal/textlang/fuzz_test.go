package textlang

import (
	"context"
	"testing"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/region"
)

// FuzzTextLearn throws arbitrary documents and example regions at the text
// DSL's two synthesis entry points and asserts the learner's contract: it
// never panics, and every program it returns — with and without a tight
// candidate budget — actually reproduces the examples when executed
// (soundness, including under truncation). Seeds mirror the corpus region
// shapes: the paper's analyte report, log lines, and CSV-ish rows.
func FuzzTextLearn(f *testing.F) {
	f.Add(analyteText, 22, 29, 60, 67)
	f.Add("ERROR 2026-01-03 boot failed\nINFO ok\nERROR 2026-01-04 disk full\n", 0, 5, 37, 42)
	f.Add("a,1\nb,22\nc,333\n", 2, 3, 6, 8)
	f.Add("x", 0, 1, 0, 1)
	f.Add("", 0, 0, 0, 0)
	f.Add("one two\tthree\nfour", 0, 3, 4, 7)
	f.Fuzz(func(t *testing.T, text string, a, b, c, d int) {
		if len(text) > 2048 {
			t.Skip()
		}
		doc := NewDocument(text)
		clamp := func(i int) int {
			if i < 0 {
				i = -i
			}
			if len(text) == 0 {
				return 0
			}
			return i % (len(text) + 1)
		}
		a, b, c, d = clamp(a), clamp(b), clamp(c), clamp(d)
		if b < a {
			a, b = b, a
		}
		if d < c {
			c, d = d, c
		}
		r1, r2 := doc.Region(a, b), doc.Region(c, d)
		whole := doc.WholeRegion()
		lang := doc.Language()

		for _, budget := range []core.SynthBudget{{}, {MaxCandidates: 32}} {
			ctx, _ := core.WithBudget(context.Background(), budget)

			seqEx := engine.SeqRegionExample{Input: whole, Positive: []region.Region{r1, r2}}
			for i, p := range lang.SynthesizeSeqRegion(ctx, []engine.SeqRegionExample{seqEx}) {
				if i >= 3 { // verifying the top of the ranked list is enough
					break
				}
				out, err := p.ExtractSeq(whole)
				if err != nil {
					t.Fatalf("learned program %s fails on its own document: %v", p, err)
				}
				if !containsInOrder(out, r1, r2) {
					t.Fatalf("program %s output drops its examples [%d,%d) [%d,%d)", p, a, b, c, d)
				}
			}

			regEx := engine.RegionExample{Input: whole, Output: r1}
			for i, p := range lang.SynthesizeRegion(ctx, []engine.RegionExample{regEx}) {
				if i >= 3 {
					break
				}
				got, err := p.Extract(whole)
				if err != nil {
					t.Fatalf("learned program %s fails on its own document: %v", p, err)
				}
				gr, ok := got.(Region)
				if !ok || gr.Start != a || gr.End != b {
					t.Fatalf("program %s extracts %v, example was [%d,%d)", p, got, a, b)
				}
			}
		}
	})
}

// containsInOrder reports whether out contains r1 followed by r2 (by
// character span). Coincident examples only need one occurrence.
func containsInOrder(out []region.Region, r1, r2 Region) bool {
	i := 0
	want := []Region{r1, r2}
	if r1.Start == r2.Start && r1.End == r2.End {
		want = want[:1]
	}
	for _, r := range out {
		tr, ok := r.(Region)
		if !ok {
			return false
		}
		if tr.Start == want[i].Start && tr.End == want[i].End {
			i++
			if i == len(want) {
				return true
			}
		}
	}
	return false
}
