package textlang

import (
	"context"
	"strings"
	"testing"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/region"
	"flashextract/internal/tokens"
)

func TestSeqProgramSerializationRoundTrip(t *testing.T) {
	d := analyteDoc()
	l := d.Language().(*lang)
	be := mustFind(t, d, "Be", 0)
	sc := mustFind(t, d, "Sc", 0)
	progs := l.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{be, sc},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	data, err := l.MarshalSeqProgram(progs[0])
	if err != nil {
		t.Fatal(err)
	}
	back, err := l.UnmarshalSeqProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	orig := values(extractAll(t, progs[0], d.WholeRegion()))
	again := values(extractAll(t, back, d.WholeRegion()))
	if strings.Join(orig, "|") != strings.Join(again, "|") {
		t.Fatalf("round trip changed behaviour: %v vs %v", orig, again)
	}
	// The artifact must reference only serializable leaf operators.
	for _, frag := range []string{"text."} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("artifact missing %q:\n%s", frag, data)
		}
	}
}

func TestRegionProgramSerializationRoundTrip(t *testing.T) {
	d := analyteDoc()
	l := d.Language().(*lang)
	l0 := lineRegion(t, d, `""Be""`, 0)
	l1 := lineRegion(t, d, `""Sc""`, 0)
	mass0 := d.Region(l0.Start+len(`ICP,""Be"",`), l0.Start+len(`ICP,""Be"",9`))
	progs := l.SynthesizeRegion(context.Background(), []engine.RegionExample{{Input: l0, Output: mass0}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	data, err := l.MarshalRegionProgram(progs[0])
	if err != nil {
		t.Fatal(err)
	}
	back, err := l.UnmarshalRegionProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := progs[0].Extract(l1)
	r2, _ := back.Extract(l1)
	if r1 == nil || r2 == nil || r1.Value() != r2.Value() {
		t.Fatalf("round trip changed behaviour: %v vs %v", r1, r2)
	}
}

func TestLinePredSerializationAllKinds(t *testing.T) {
	d := NewDocument("a 1\nb 2\nc 3\n")
	whole := d.WholeRegion().(Region)
	lines := linesIn(whole)
	st := core.NewState(whole).Bind(lambdaVar, lines[1])
	for kind := predTrue; kind <= predSuccContains; kind++ {
		p := linePred{kind: kind}
		if kind != predTrue {
			p.r = tokens.Regex{tokens.Number}
			p.k = 1
		}
		spec, err := p.EncodeProgram()
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		back, err := decodeLeaf(spec)
		if err != nil {
			t.Fatalf("kind %d decode: %v", kind, err)
		}
		v1, e1 := p.Exec(st)
		v2, e2 := back.Exec(st)
		if (e1 == nil) != (e2 == nil) || v1 != v2 {
			t.Fatalf("kind %d: behaviour changed (%v,%v vs %v,%v)", kind, v1, e1, v2, e2)
		}
		if back.String() != p.String() {
			t.Fatalf("kind %d: display changed: %s vs %s", kind, p, back)
		}
	}
}

func TestDecodeLeafErrors(t *testing.T) {
	for _, spec := range []core.ProgramSpec{
		{Op: "text.unknown"},
		{Op: "text.posSeq", Attrs: map[string]string{"rr": "junk"}},
		{Op: "text.linePair", Attrs: map[string]string{"p1": "junk", "p2": "junk"}},
		{Op: "text.pred", Attrs: map[string]string{"kind": "zzz"}},
		{Op: "text.pred", Attrs: map[string]string{"kind": "2", "r": "junk", "k": "1"}},
		{Op: "text.startPair", Attrs: map[string]string{"p": "junk"}},
	} {
		if _, err := decodeLeaf(spec); err == nil {
			t.Errorf("decodeLeaf(%s) succeeded, want error", spec.Op)
		}
	}
}
