package textlang

import (
	"flashextract/internal/core"
	"flashextract/internal/prefilter"
)

// This file exposes Ltext programs to the batch prefilter. Text documents
// are raw bytes and lines are byte subranges of them, so token evidence
// translates to exact substring/byte-class requirements on the document.

// CoreProgram exposes the compiled combinator tree for static analysis.
func (p seqProgram) CoreProgram() core.Program { return p.p }

// CoreProgram exposes the compiled combinator tree for static analysis.
func (p regProgram) CoreProgram() core.Program { return p.p }

// AdmissionCond: a PosSeq position requires its regex pair to match.
func (p posSeqProg) AdmissionCond() prefilter.Cond {
	return prefilter.CondRegexPair(p.rr)
}

// AdmissionCond: both position attributes must evaluate on the line.
func (p linePairProg) AdmissionCond() prefilter.Cond {
	return prefilter.And(prefilter.CondAttr(p.p1), prefilter.CondAttr(p.p2))
}

// AdmissionCond: the position attribute must evaluate on the line.
func (p linePosProg) AdmissionCond() prefilter.Cond {
	return prefilter.CondAttr(p.p)
}

// AdmissionCond: the end attribute must evaluate on the suffix.
func (p startPairProg) AdmissionCond() prefilter.Cond {
	return prefilter.CondAttr(p.p)
}

// AdmissionCond: the start attribute must evaluate on the prefix.
func (p endPairProg) AdmissionCond() prefilter.Cond {
	return prefilter.CondAttr(p.p)
}

// AdmissionCond: both position attributes must evaluate on the region.
func (p regionPairProg) AdmissionCond() prefilter.Cond {
	return prefilter.And(prefilter.CondAttr(p.p1), prefilter.CondAttr(p.p2))
}

// AdmissionCond derives what a line must contain for the predicate to
// accept it. The Pred/Succ forms inspect a neighbouring line, which is
// still a byte subrange of the document, so the same evidence applies.
func (p linePred) AdmissionCond() prefilter.Cond {
	switch p.kind {
	case predTrue:
		return prefilter.True()
	case predContains, predPredContains, predSuccContains:
		if p.k == 0 {
			// "contains exactly zero matches" is satisfied by absence.
			return prefilter.True()
		}
		return prefilter.CondRegex(p.r)
	default:
		// StartsWith/EndsWith anchor the regex inside the subject line.
		return prefilter.CondRegex(p.r)
	}
}
