package textlang

import (
	"fmt"
	"strconv"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/tokens"
)

// This file implements program serialization for Ltext (see core.Encode):
// learned extraction programs become portable JSON artifacts that can be
// re-loaded and run on other documents without re-learning.

// EncodeProgram serializes the fixed split expression.
func (splitLinesProg) EncodeProgram() (core.ProgramSpec, error) {
	return core.ProgramSpec{Op: "text.split"}, nil
}

// EncodeProgram serializes PosSeq(R0, rr).
func (p posSeqProg) EncodeProgram() (core.ProgramSpec, error) {
	rr, err := tokens.MarshalRegexPair(p.rr)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	return core.ProgramSpec{Op: "text.posSeq", Attrs: map[string]string{"rr": rr}}, nil
}

func attrPairSpec(op string, p1, p2 tokens.Attr) (core.ProgramSpec, error) {
	a1, err := tokens.MarshalAttr(p1)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	a2, err := tokens.MarshalAttr(p2)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	return core.ProgramSpec{Op: op, Attrs: map[string]string{"p1": a1, "p2": a2}}, nil
}

func attrSpec(op string, p tokens.Attr) (core.ProgramSpec, error) {
	a, err := tokens.MarshalAttr(p)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	return core.ProgramSpec{Op: op, Attrs: map[string]string{"p": a}}, nil
}

// EncodeProgram serializes the LinesMap pair function.
func (p linePairProg) EncodeProgram() (core.ProgramSpec, error) {
	return attrPairSpec("text.linePair", p.p1, p.p2)
}

// EncodeProgram serializes the LinesMap position function.
func (p linePosProg) EncodeProgram() (core.ProgramSpec, error) {
	return attrSpec("text.linePos", p.p)
}

// EncodeProgram serializes the StartSeqMap pair function.
func (p startPairProg) EncodeProgram() (core.ProgramSpec, error) {
	return attrSpec("text.startPair", p.p)
}

// EncodeProgram serializes the EndSeqMap pair function.
func (p endPairProg) EncodeProgram() (core.ProgramSpec, error) {
	return attrSpec("text.endPair", p.p)
}

// EncodeProgram serializes the N2 region pair.
func (p regionPairProg) EncodeProgram() (core.ProgramSpec, error) {
	return attrPairSpec("text.regionPair", p.p1, p.p2)
}

// EncodeProgram serializes a line predicate.
func (p linePred) EncodeProgram() (core.ProgramSpec, error) {
	var rr string
	var err error
	if p.kind != predTrue {
		rr, err = tokens.MarshalRegexPair(tokens.RegexPair{Left: p.r})
		if err != nil {
			return core.ProgramSpec{}, err
		}
	}
	return core.ProgramSpec{Op: "text.pred", Attrs: map[string]string{
		"kind": strconv.Itoa(int(p.kind)),
		"r":    rr,
		"k":    strconv.Itoa(p.k),
	}}, nil
}

// decodeLeaf reconstructs Ltext leaf programs.
func decodeLeaf(spec core.ProgramSpec) (core.Program, error) {
	switch spec.Op {
	case "text.split":
		return splitLines, nil
	case "text.posSeq":
		rr, err := tokens.UnmarshalRegexPair(spec.Attrs["rr"])
		if err != nil {
			return nil, err
		}
		return posSeqProg{rr: rr}, nil
	case "text.linePair", "text.regionPair":
		p1, err := tokens.UnmarshalAttr(spec.Attrs["p1"])
		if err != nil {
			return nil, err
		}
		p2, err := tokens.UnmarshalAttr(spec.Attrs["p2"])
		if err != nil {
			return nil, err
		}
		if spec.Op == "text.linePair" {
			return linePairProg{p1: p1, p2: p2}, nil
		}
		return regionPairProg{p1: p1, p2: p2}, nil
	case "text.linePos", "text.startPair", "text.endPair":
		p, err := tokens.UnmarshalAttr(spec.Attrs["p"])
		if err != nil {
			return nil, err
		}
		switch spec.Op {
		case "text.linePos":
			return linePosProg{p: p}, nil
		case "text.startPair":
			return startPairProg{p: p}, nil
		default:
			return endPairProg{p: p}, nil
		}
	case "text.pred":
		kind, err := strconv.Atoi(spec.Attrs["kind"])
		if err != nil {
			return nil, fmt.Errorf("textlang: bad predicate kind %q", spec.Attrs["kind"])
		}
		p := linePred{kind: predKind(kind)}
		if p.kind != predTrue {
			rr, err := tokens.UnmarshalRegexPair(spec.Attrs["r"])
			if err != nil {
				return nil, err
			}
			p.r = rr.Left
			if p.k, err = strconv.Atoi(spec.Attrs["k"]); err != nil {
				return nil, fmt.Errorf("textlang: bad predicate count %q", spec.Attrs["k"])
			}
		}
		return p, nil
	default:
		return nil, fmt.Errorf("textlang: unknown leaf operator %q", spec.Op)
	}
}

func decodeContext() core.DecodeContext {
	return core.DecodeContext{Leaf: decodeLeaf, Less: regionLess}
}

// MarshalSeqProgram implements engine.ProgramCodec.
func (l *lang) MarshalSeqProgram(p engine.SeqRegionProgram) ([]byte, error) {
	sp, ok := p.(seqProgram)
	if !ok {
		return nil, fmt.Errorf("textlang: cannot serialize foreign program %T", p)
	}
	return core.MarshalProgram(sp.p)
}

// UnmarshalSeqProgram implements engine.ProgramCodec.
func (l *lang) UnmarshalSeqProgram(data []byte) (engine.SeqRegionProgram, error) {
	p, err := decodeContext().UnmarshalProgram(data)
	if err != nil {
		return nil, err
	}
	return seqProgram{p}, nil
}

// MarshalRegionProgram implements engine.ProgramCodec.
func (l *lang) MarshalRegionProgram(p engine.RegionProgram) ([]byte, error) {
	rp, ok := p.(regProgram)
	if !ok {
		return nil, fmt.Errorf("textlang: cannot serialize foreign program %T", p)
	}
	return core.MarshalProgram(rp.p)
}

// UnmarshalRegionProgram implements engine.ProgramCodec.
func (l *lang) UnmarshalRegionProgram(data []byte) (engine.RegionProgram, error) {
	p, err := decodeContext().UnmarshalProgram(data)
	if err != nil {
		return nil, err
	}
	return regProgram{p}, nil
}
