package textlang

import (
	"context"
	"strings"
	"testing"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/region"
	"flashextract/internal/tokens"
)

// analyteText mirrors the structure of the paper's Ex. 1 (Fig. 1): a
// sequence of sample reports, each listing analytes with mass and
// concentration mean.
const analyteText = `DLZ - Summary Report

"Sample ID:,""5007-01"""
Analyte,"Mass","Conc. Mean"
ICP,""Be"",9,0.070073
ICP,""Sc"",45,0.042397
ICP,""Mn"",55,0.031052

DLZ - Summary Report

"Sample ID:,""5007-02"""
Analyte,"Mass","Conc. Mean"
ICP,""Be"",9,0.080112
ICP,""V"",51,0.069071
`

func analyteDoc() *Document { return NewDocument(analyteText) }

// mustFind returns the n-th occurrence region of sub.
func mustFind(t *testing.T, d *Document, sub string, n int) Region {
	t.Helper()
	r, ok := d.FindRegion(sub, n)
	if !ok {
		t.Fatalf("occurrence %d of %q not found", n, sub)
	}
	return r
}

// lineRegion returns the full-line region containing the n-th occurrence
// of sub.
func lineRegion(t *testing.T, d *Document, sub string, n int) Region {
	t.Helper()
	r := mustFind(t, d, sub, n)
	whole := d.WholeRegion().(Region)
	l, ok := lineContaining(whole, r.Start, r.End)
	if !ok {
		t.Fatalf("no line contains %q", sub)
	}
	return l
}

func extractAll(t *testing.T, p engine.SeqRegionProgram, in region.Region) []region.Region {
	t.Helper()
	out, err := p.ExtractSeq(in)
	if err != nil {
		t.Fatalf("ExtractSeq(%s): %v", p, err)
	}
	return out
}

// ---- document / region mechanics ----

func TestRegionBasics(t *testing.T) {
	d := NewDocument("hello world")
	r := d.Region(0, 5)
	if r.Value() != "hello" {
		t.Fatalf("Value = %q", r.Value())
	}
	o := d.Region(6, 11)
	if r.Overlaps(o) {
		t.Fatal("disjoint regions overlap")
	}
	if !d.WholeRegion().Contains(r) || !d.WholeRegion().Contains(o) {
		t.Fatal("whole region should contain everything")
	}
	if !r.Less(o) || o.Less(r) {
		t.Fatal("ordering broken")
	}
	outer := d.Region(0, 11)
	if !outer.Less(r) {
		t.Fatal("outer region should order before inner at same start")
	}
	if r.String() != "[0,5)" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestRegionPanicsOnBadRange(t *testing.T) {
	d := NewDocument("abc")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Region(2, 9)
}

func TestLinesIn(t *testing.T) {
	d := NewDocument("a\n\nbc\n")
	lines := linesIn(d.WholeRegion().(Region))
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (incl. interior empty)", len(lines))
	}
	if lines[0].Value() != "a" || lines[1].Value() != "" || lines[2].Value() != "bc" {
		t.Fatalf("lines = %q %q %q", lines[0].Value(), lines[1].Value(), lines[2].Value())
	}
	// no trailing newline
	d2 := NewDocument("x\ny")
	lines2 := linesIn(d2.WholeRegion().(Region))
	if len(lines2) != 2 || lines2[1].Value() != "y" {
		t.Fatalf("lines2 = %v", lines2)
	}
	// sub-region clipping
	mid := d2.Region(1, 3) // "\ny"… clipped segments "" and "y"
	linesMid := linesIn(mid)
	if len(linesMid) != 2 || linesMid[0].Value() != "" || linesMid[1].Value() != "y" {
		t.Fatalf("clipped lines = %v", linesMid)
	}
}

func TestFindRegion(t *testing.T) {
	d := NewDocument("ab ab ab")
	r, ok := d.FindRegion("ab", 2)
	if !ok || r.Start != 6 {
		t.Fatalf("FindRegion = %v, %v", r, ok)
	}
	if _, ok := d.FindRegion("zz", 0); ok {
		t.Fatal("found nonexistent substring")
	}
}

// ---- sequence synthesis: whole-line extraction (Ex. 4 of the paper) ----

func TestLearnYellowLines(t *testing.T) {
	d := analyteDoc()
	lang := d.Language()
	// The analyte lines are those starting with "ICP," — give the first
	// two as examples.
	l0 := lineRegion(t, d, `""Be""`, 0)
	l1 := lineRegion(t, d, `""Sc""`, 0)
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{l0, l1},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	got := extractAll(t, progs[0], d.WholeRegion())
	if len(got) != 5 {
		t.Fatalf("top program %s extracted %d regions, want the 5 analyte lines:\n%v", progs[0], len(got), got)
	}
	for _, r := range got {
		if !strings.HasPrefix(r.Value(), "ICP,") {
			t.Fatalf("non-analyte line extracted: %q by %s", r.Value(), progs[0])
		}
	}
}

// ---- substring sequence extraction (Ex. 5: the magenta analyte names) ----

func TestLearnAnalyteNames(t *testing.T) {
	d := analyteDoc()
	lang := d.Language()
	be := mustFind(t, d, "Be", 0)
	sc := mustFind(t, d, "Sc", 0)
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{be, sc},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	got := extractAll(t, progs[0], d.WholeRegion())
	want := []string{"Be", "Sc", "Mn", "Be", "V"}
	if len(got) != len(want) {
		t.Fatalf("program %s extracted %d regions (%v), want %d", progs[0], len(got), values(got), len(want))
	}
	for i, r := range got {
		if r.Value() != want[i] {
			t.Fatalf("extracted %v, want %v", values(got), want)
		}
	}
}

func values(rs []region.Region) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Value()
	}
	return out
}

// ---- negative examples refine the learned program ----

func TestNegativeExampleRefinement(t *testing.T) {
	d := analyteDoc()
	lang := d.Language()
	// Positive: the first analyte line. Suppose the initial program also
	// captured the header line; the user strikes it as negative.
	l0 := lineRegion(t, d, `""Be""`, 0)
	header := lineRegion(t, d, "Analyte,", 0)
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{l0},
		Negative: []region.Region{header},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	for _, p := range progs {
		for _, r := range extractAll(t, p, d.WholeRegion()) {
			if r.Overlaps(header) {
				t.Fatalf("program %s extracts the negative region", p)
			}
		}
	}
}

// ---- region (struct field) synthesis within a line ----

func TestLearnRegionWithinLine(t *testing.T) {
	d := analyteDoc()
	lang := d.Language()
	// Input: the first analyte line; output: the mass number "9".
	l0 := lineRegion(t, d, `""Be""`, 0)
	l1 := lineRegion(t, d, `""Sc""`, 0)
	mass0 := d.Region(l0.Start+len(`ICP,""Be"",`), l0.Start+len(`ICP,""Be"",9`))
	if mass0.Value() != "9" {
		t.Fatalf("test setup: mass0 = %q", mass0.Value())
	}
	progs := lang.SynthesizeRegion(context.Background(), []engine.RegionExample{{Input: l0, Output: mass0}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	// The top program must find the mass in the second analyte line too.
	r, err := progs[0].Extract(l1)
	if err != nil || r == nil {
		t.Fatalf("Extract on line 2: %v, %v", r, err)
	}
	if r.Value() != "45" {
		t.Fatalf("program %s extracted %q from line 2, want 45", progs[0], r.Value())
	}
}

func TestRegionProgramNullOnNoMatch(t *testing.T) {
	d := analyteDoc()
	lang := d.Language()
	l0 := lineRegion(t, d, `""Be""`, 0)
	conc0 := mustFind(t, d, "0.070073", 0)
	progs := lang.SynthesizeRegion(context.Background(), []engine.RegionExample{{Input: l0, Output: conc0}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	// Run on a line with no decimal number: expect null, not an error.
	headerLine := lineRegion(t, d, "DLZ", 0)
	r, err := progs[0].Extract(headerLine)
	if err != nil {
		t.Fatalf("Extract error: %v", err)
	}
	if r != nil && strings.Contains(r.Value(), "0.") {
		t.Fatalf("unexpectedly extracted %q from the header", r.Value())
	}
}

// ---- FilterInt behaviour: alternating lines ----

func TestLearnAlternatingLines(t *testing.T) {
	text := "h1\nv1\nh2\nv2\nh3\nv3\nh4\nv4\n"
	d := NewDocument(text)
	lang := d.Language()
	// Positives: the first two h-lines (indices 0 and 2).
	whole := d.WholeRegion().(Region)
	lines := linesIn(whole)
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{lines[0], lines[2]},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	got := extractAll(t, progs[0], d.WholeRegion())
	if len(got) != 4 {
		t.Fatalf("%s extracted %v, want the 4 h-lines", progs[0], values(got))
	}
	for _, r := range got {
		if !strings.HasPrefix(r.Value(), "h") {
			t.Fatalf("%s extracted %v", progs[0], values(got))
		}
	}
}

// ---- multi-line structure boundaries via Merge/StartSeqMap ----

func TestLearnMultiLineStructures(t *testing.T) {
	d := analyteDoc()
	lang := d.Language()
	// Green regions: each sample report, from "DLZ" up to (not including)
	// the blank line before the next report / end of file.
	start2 := mustFind(t, d, "DLZ", 1)
	g1 := d.Region(0, start2.Start-1)         // first sample incl. trailing newline of its last line
	g2 := d.Region(start2.Start, len(d.Text)) // second sample to EOF
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{g1, g2},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs for multi-line structures")
	}
	got := extractAll(t, progs[0], d.WholeRegion())
	if len(got) != 2 {
		t.Fatalf("%s extracted %d regions, want 2: %v", progs[0], len(got), got)
	}
	if got[0].(Region) != g1 || got[1].(Region) != g2 {
		t.Fatalf("extracted %v and %v, want %v and %v", got[0], got[1], g1, g2)
	}
}

// ---- transferring a program to a similar document ----

func TestProgramTransfersToSimilarDocument(t *testing.T) {
	d := analyteDoc()
	lang := d.Language()
	be := mustFind(t, d, "Be", 0)
	sc := mustFind(t, d, "Sc", 0)
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{be, sc},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	other := NewDocument(`DLZ - Summary Report

"Sample ID:,""9001-07"""
Analyte,"Mass","Conc. Mean"
ICP,""Fe"",56,0.120073
ICP,""Cu"",63,0.042399
`)
	got := extractAll(t, progs[0], other.WholeRegion())
	want := []string{"Fe", "Cu"}
	if len(got) != 2 || got[0].Value() != want[0] || got[1].Value() != want[1] {
		t.Fatalf("transfer extracted %v, want %v", values(got), want)
	}
}

// ---- soundness of every returned program ----

func TestAllReturnedProgramsConsistent(t *testing.T) {
	d := analyteDoc()
	lang := d.Language()
	be := mustFind(t, d, "Be", 0)
	sc := mustFind(t, d, "Sc", 0)
	exs := []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{be, sc},
	}}
	for _, p := range lang.SynthesizeSeqRegion(context.Background(), exs) {
		got := extractAll(t, p, d.WholeRegion())
		if !regionSubseq([]region.Region{be, sc}, got) {
			t.Fatalf("program %s is inconsistent with its examples", p)
		}
	}
}

func regionSubseq(sub, seq []region.Region) bool {
	i := 0
	for _, v := range seq {
		if i == len(sub) {
			return true
		}
		if v == sub[i] {
			i++
		}
	}
	return i == len(sub)
}

// ---- degenerate inputs ----

func TestSynthesizeSeqRegionEmpty(t *testing.T) {
	var l lang
	if got := l.SynthesizeSeqRegion(context.Background(), nil); got != nil {
		t.Fatal("expected nil for no examples")
	}
}

func TestSynthesizeRegionEmpty(t *testing.T) {
	var l lang
	if got := l.SynthesizeRegion(context.Background(), nil); got != nil {
		t.Fatal("expected nil for no examples")
	}
}

func TestSynthesizeRegionRejectsOutsideOutput(t *testing.T) {
	d := analyteDoc()
	var l lang
	in := d.Region(0, 3)
	out := d.Region(5, 9)
	if got := l.SynthesizeRegion(context.Background(), []engine.RegionExample{{Input: in, Output: out}}); got != nil {
		t.Fatal("output outside input must fail")
	}
}

// ---- program display ----

func TestProgramStringsMentionOperators(t *testing.T) {
	d := analyteDoc()
	lang := d.Language()
	l0 := lineRegion(t, d, `""Be""`, 0)
	l1 := lineRegion(t, d, `""Sc""`, 0)
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{l0, l1},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	s := progs[0].String()
	for _, frag := range []string{"Map", "FilterInt", "split"} {
		if !strings.Contains(s, frag) {
			t.Errorf("program display %q missing %q", s, frag)
		}
	}
}

// ---- direct exec-path tests for leaf programs ----

func TestPosSeqProgExec(t *testing.T) {
	d := NewDocument("a1 b2 c3")
	// Evaluate on a sub-region to check the absolute-offset conversion.
	sub := d.Region(3, 8) // "b2 c3"
	st := core.NewState(sub)
	p := posSeqProg{rr: tokens.RegexPair{Left: tokens.Regex{tokens.Number}}}
	v, err := p.Exec(st)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := core.AsSeq(v)
	if len(seq) != 2 || seq[0] != 5 || seq[1] != 8 {
		t.Fatalf("positions = %v, want [5 8]", seq)
	}
	if !strings.Contains(p.String(), "PosSeq") {
		t.Fatalf("String = %q", p.String())
	}
}

func TestLinePredSubjectMissingNeighbor(t *testing.T) {
	d := NewDocument("only\nlines")
	whole := d.WholeRegion().(Region)
	lines := linesIn(whole)
	st := core.NewState(whole).Bind(lambdaVar, lines[0])
	pred := linePred{kind: predPredStartsWith}
	v, err := pred.Exec(st)
	if err != nil || v != core.Value(false) {
		t.Fatalf("predicate on missing predecessor = %v, %v (want false)", v, err)
	}
	st2 := core.NewState(whole).Bind(lambdaVar, lines[1])
	pred2 := linePred{kind: predSuccEndsWith}
	v2, err := pred2.Exec(st2)
	if err != nil || v2 != core.Value(false) {
		t.Fatalf("predicate on missing successor = %v, %v (want false)", v2, err)
	}
}

func TestRegionPairProgRejectsInvertedPositions(t *testing.T) {
	d := NewDocument("abc")
	st := core.NewState(d.WholeRegion().(Region))
	p := regionPairProg{p1: tokens.AbsPos{K: 2}, p2: tokens.AbsPos{K: 1}}
	if _, err := p.Exec(st); err == nil {
		t.Fatal("inverted positions should fail")
	}
}
