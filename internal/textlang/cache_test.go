package textlang

import (
	"context"
	"math/rand"
	"testing"

	"flashextract/internal/engine"
	"flashextract/internal/region"
	"flashextract/internal/tokens"
)

// TestCachedExecMatchesDirect checks that routing program execution
// through the document cache is observationally identical to evaluating
// attributes and regex pairs directly on the text slices.
func TestCachedExecMatchesDirect(t *testing.T) {
	const text = "a: 10\nbb: 220\nccc: 3999\n\ndddd: 17\n"
	d := NewDocument(text)
	rng := rand.New(rand.NewSource(11))
	attrs := []tokens.Attr{
		tokens.AbsPos{K: 1},
		tokens.AbsPos{K: -1},
		tokens.RegPos{RR: tokens.RegexPair{Left: tokens.Regex{tokens.Colon, tokens.Space}}, K: 1},
		tokens.RegPos{RR: tokens.RegexPair{Right: tokens.Regex{tokens.Number}}, K: -1},
	}
	pairs := []tokens.RegexPair{
		{Left: tokens.Regex{tokens.Colon, tokens.Space}, Right: tokens.Regex{tokens.Number}},
		{Left: tokens.Regex{tokens.Word}},
		{Right: tokens.Regex{tokens.Lower}},
	}
	for trial := 0; trial < 300; trial++ {
		lo := rng.Intn(len(text))
		hi := lo + rng.Intn(len(text)-lo)
		for _, a := range attrs {
			want, wantErr := a.Eval(text[lo:hi])
			got, gotErr := evalPos(d, lo, hi, a)
			if (wantErr == nil) != (gotErr == nil) || (wantErr == nil && got != want) {
				t.Fatalf("evalPos(%d,%d,%s) = (%d,%v), direct (%d,%v)", lo, hi, a, got, gotErr, want, wantErr)
			}
		}
		for _, rr := range pairs {
			want := rr.Positions(text[lo:hi])
			got := positionsIn(d, lo, hi, rr)
			if len(got) != len(want) {
				t.Fatalf("positionsIn(%d,%d,%s) = %v, direct %v", lo, hi, rr, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("positionsIn(%d,%d,%s) = %v, direct %v", lo, hi, rr, got, want)
				}
			}
		}
	}
}

// TestSynthesisDeterministicWithWarmCache re-runs synthesis on the same
// document and requires the identical ranked program lists both times —
// the warm cache must not change what is learned, only how fast. A fresh
// document (cold cache) must also agree.
func TestSynthesisDeterministicWithWarmCache(t *testing.T) {
	const text = "name: alice\nrole: admin\nname: bob\nrole: user\nname: carol\n"
	run := func(d *Document) []string {
		lang := d.lang
		a, _ := d.FindRegion("alice", 0)
		b, _ := d.FindRegion("bob", 0)
		progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
			Input:    d.WholeRegion(),
			Positive: []region.Region{a, b},
		}})
		out := make([]string, len(progs))
		for i, p := range progs {
			out[i] = p.String()
		}
		return out
	}
	d := NewDocument(text)
	cold := run(d)
	warm := run(d)
	fresh := run(NewDocument(text))
	if len(cold) == 0 {
		t.Fatal("no programs learned")
	}
	for i := range cold {
		if cold[i] != warm[i] || cold[i] != fresh[i] {
			t.Fatalf("program %d differs: cold %q, warm %q, fresh %q", i, cold[i], warm[i], fresh[i])
		}
	}
	if len(cold) != len(warm) || len(cold) != len(fresh) {
		t.Fatalf("list lengths differ: %d cold, %d warm, %d fresh", len(cold), len(warm), len(fresh))
	}
}
