package textlang

import (
	"flashextract/internal/abstract"
	"flashextract/internal/core"
	"flashextract/internal/tokens"
)

// Abstraction transformers of the Ltext leaf programs (see internal/core's
// AbstractEval seam and DESIGN.md "Abstraction-guided pruning"). Every
// transformer is a sound over-approximation of the program's concrete
// semantics, built from O(1)-after-caching facts: line counts from the
// document's line cache, regex-pair match-count bounds from the token
// boundary cache, and exact counts from the refinement store. A document
// without an evaluation cache degrades to ⊤ (never rejects).

// ---- sequence programs ----

// AbstractSeq of split(R0, '\n'): the line count is exact (linesIn is
// memoized) and every line lies within R0.
func (splitLinesProg) AbstractSeq(_ *abstract.Ctx, st core.State) abstract.Seq {
	r0, err := inputRegion(st)
	if err != nil {
		return abstract.InfeasibleSeq()
	}
	return abstract.Seq{
		Count: abstract.Exact(len(linesIn(r0))),
		Span:  abstract.NewSpan(r0.Doc, r0.Start, r0.End),
	}
}

// AbstractSeq of PosSeq(R0, rr): the count is bounded by the refinement
// store's exact fact when one was learned, else by the boundary-cache match
// bound. Outputs are positions (not regions), so the span carries no
// information.
func (p posSeqProg) AbstractSeq(ac *abstract.Ctx, st core.State) abstract.Seq {
	r0, err := inputRegion(st)
	if err != nil {
		return abstract.InfeasibleSeq()
	}
	return abstract.Seq{
		Count: pairCount(ac, r0.Doc, r0.Start, r0.End, p.rr),
		Span:  abstract.TopSpan(),
	}
}

// RefineAbstract of PosSeq records the exact match count of the failing
// state's input range — cache-hot, because the concrete execution that just
// rejected the candidate computed the very same position sequence.
func (p posSeqProg) RefineAbstract(ac *abstract.Ctx, st core.State) {
	r0, err := inputRegion(st)
	if err != nil || r0.Doc.cache == nil {
		return
	}
	ps := positionsIn(r0.Doc, r0.Start, r0.End, p.rr)
	ac.Refine(abstract.Key{Lo: r0.Start, Hi: r0.End, Fp: tokens.PairFingerprint(p.rr)}, len(ps))
}

// ---- scalar (map-function and N2) programs ----

// AbstractScalar of λx: Pair(Pos(x, p1), Pos(x, p2)): infeasible when
// either attribute provably has no position in the line; the output region
// lies within the line.
func (p linePairProg) AbstractScalar(ac *abstract.Ctx, st core.State) abstract.Scalar {
	x, err := lambdaRegion(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	if !attrFeasible(ac, x.Doc, x.Start, x.End, p.p1) || !attrFeasible(ac, x.Doc, x.Start, x.End, p.p2) {
		return abstract.InfeasibleScalar()
	}
	return abstract.Scalar{Span: abstract.NewSpan(x.Doc, x.Start, x.End)}
}

// AbstractScalar of λx: Pos(x, p): the output is a position, so only
// feasibility propagates.
func (p linePosProg) AbstractScalar(ac *abstract.Ctx, st core.State) abstract.Scalar {
	x, err := lambdaRegion(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	if !attrFeasible(ac, x.Doc, x.Start, x.End, p.p) {
		return abstract.InfeasibleScalar()
	}
	return abstract.TopScalar()
}

// AbstractScalar of λx: Pair(x, Pos(R0[x:], p)): the output region starts
// at x and ends within R0.
func (p startPairProg) AbstractScalar(ac *abstract.Ctx, st core.State) abstract.Scalar {
	x, err := lambdaPos(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	r0, err := inputRegion(st)
	if err != nil || x < r0.Start || x > r0.End {
		return abstract.InfeasibleScalar()
	}
	if !attrFeasible(ac, r0.Doc, x, r0.End, p.p) {
		return abstract.InfeasibleScalar()
	}
	return abstract.Scalar{Span: abstract.NewSpan(r0.Doc, x, r0.End)}
}

// AbstractScalar of λx: Pair(Pos(R0[:x], p), x): the mirror of
// startPairProg.
func (p endPairProg) AbstractScalar(ac *abstract.Ctx, st core.State) abstract.Scalar {
	x, err := lambdaPos(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	r0, err := inputRegion(st)
	if err != nil || x < r0.Start || x > r0.End {
		return abstract.InfeasibleScalar()
	}
	if !attrFeasible(ac, r0.Doc, r0.Start, x, p.p) {
		return abstract.InfeasibleScalar()
	}
	return abstract.Scalar{Span: abstract.NewSpan(r0.Doc, r0.Start, x)}
}

// AbstractScalar of the N2 program Pair(Pos(R0, p1), Pos(R0, p2)).
func (p regionPairProg) AbstractScalar(ac *abstract.Ctx, st core.State) abstract.Scalar {
	r0, err := inputRegion(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	if !attrFeasible(ac, r0.Doc, r0.Start, r0.End, p.p1) || !attrFeasible(ac, r0.Doc, r0.Start, r0.End, p.p2) {
		return abstract.InfeasibleScalar()
	}
	return abstract.Scalar{Span: abstract.NewSpan(r0.Doc, r0.Start, r0.End)}
}

// ---- shared attribute feasibility ----

// attrFeasible reports whether a position attribute can possibly resolve
// over Text[lo:hi]: AbsPos by pure range arithmetic, RegPos by comparing
// |K| against the match-count upper bound (refinement store first, then the
// boundary-cache bound). true means "cannot disprove", never "will match".
func attrFeasible(ac *abstract.Ctx, d *Document, lo, hi int, a tokens.Attr) bool {
	switch v := a.(type) {
	case tokens.AbsPos:
		k := v.K
		if k < 0 {
			k = (hi - lo) + k + 1
		}
		return k >= 0 && k <= hi-lo
	case tokens.RegPos:
		return pairCount(ac, d, lo, hi, v.RR).AtLeast(abs(v.K)) && v.K != 0
	}
	return true
}

// pairCount returns the count interval of rr's matches in Text[lo:hi]: the
// refinement store's exact fact when present, else the boundary-anchored
// upper bound, else ⊤ for cache-less documents.
func pairCount(ac *abstract.Ctx, d *Document, lo, hi int, rr tokens.RegexPair) abstract.Interval {
	if d == nil || d.cache == nil {
		return abstract.TopInterval()
	}
	if n, ok := ac.Exact(abstract.Key{Lo: lo, Hi: hi, Fp: tokens.PairFingerprint(rr)}); ok {
		return abstract.Exact(n)
	}
	cntLo, cntHi, exact := d.cache.PairCountBounds(lo, hi, rr)
	if exact {
		return abstract.Exact(cntHi)
	}
	return abstract.Range(cntLo, cntHi)
}

func abs(k int) int {
	if k < 0 {
		return -k
	}
	return k
}

// ---- line-predicate feasibility (the FilterBool predicate learner) ----

// predFeasible reports whether a line predicate can possibly evaluate to
// true on the example state — the consistency requirement of the predicate
// learner's verification loop. It rides the token boundary cache: a
// StartsWith(r) match requires r's first token to have a (left-maximal) run
// start at the line start, EndsWith(r) requires a run end at the line end,
// and Contains(r, k) requires at least k starts of r's first token and k
// ends of its last (every concrete match consumes one of each). false is a
// proof that the concrete verification would reject the candidate.
func predFeasible(st core.State, p linePred) bool {
	if p.kind == predTrue || len(p.r) == 0 {
		return true
	}
	x, err := lambdaRegion(st)
	if err != nil {
		// Exec errors on this state, so the concrete check rejects too.
		return false
	}
	if x.Doc == nil || x.Doc.cache == nil {
		return true
	}
	rx, ok := p.subject(st, x)
	if !ok {
		// A missing neighbor line makes the predicate concretely false.
		return false
	}
	cache := x.Doc.cache
	switch p.kind {
	case predStartsWith, predPredStartsWith, predSuccStartsWith:
		pre, _ := cache.Boundaries(rx.Start, rx.End, p.r[0])
		return len(pre) > 0 && pre[0] == 0
	case predEndsWith, predPredEndsWith, predSuccEndsWith:
		_, suf := cache.Boundaries(rx.Start, rx.End, p.r[len(p.r)-1])
		return len(suf) > 0 && suf[len(suf)-1] == rx.End-rx.Start
	default: // the Contains forms
		pre, _ := cache.Boundaries(rx.Start, rx.End, p.r[0])
		_, suf := cache.Boundaries(rx.Start, rx.End, p.r[len(p.r)-1])
		ub := len(pre)
		if len(suf) < ub {
			ub = len(suf)
		}
		return ub >= p.k
	}
}

// Interface conformance: the compiler pins every transformer to the seam.
var (
	_ core.AbstractSeqProgram    = splitLinesProg{}
	_ core.AbstractSeqProgram    = posSeqProg{}
	_ core.AbstractRefiner       = posSeqProg{}
	_ core.AbstractScalarProgram = linePairProg{}
	_ core.AbstractScalarProgram = linePosProg{}
	_ core.AbstractScalarProgram = startPairProg{}
	_ core.AbstractScalarProgram = endPairProg{}
	_ core.AbstractScalarProgram = regionPairProg{}
)
