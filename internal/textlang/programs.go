package textlang

import (
	"fmt"
	"sort"

	"flashextract/internal/core"
	"flashextract/internal/tokens"
)

// inputRegion extracts the R0 binding from a state.
func inputRegion(st core.State) (Region, error) {
	r, ok := st.Input().(Region)
	if !ok {
		return Region{}, fmt.Errorf("textlang: input is %T, want a text region", st.Input())
	}
	return r, nil
}

// lambdaRegion extracts the λ-bound line variable x from a state.
func lambdaRegion(st core.State) (Region, error) {
	v, ok := st.Lookup(lambdaVar)
	if !ok {
		return Region{}, fmt.Errorf("textlang: free variable %s is unbound", lambdaVar)
	}
	r, ok := v.(Region)
	if !ok {
		return Region{}, fmt.Errorf("textlang: %s is %T, want a text region", lambdaVar, v)
	}
	return r, nil
}

// lambdaPos extracts the λ-bound position variable x from a state.
func lambdaPos(st core.State) (int, error) {
	v, ok := st.Lookup(lambdaVar)
	if !ok {
		return 0, fmt.Errorf("textlang: free variable %s is unbound", lambdaVar)
	}
	k, ok := v.(int)
	if !ok {
		return 0, fmt.Errorf("textlang: %s is %T, want a position", lambdaVar, v)
	}
	return k, nil
}

// lambdaVar is the λ-bound variable name used by all Ltext map and filter
// operators.
const lambdaVar = "x"

// splitLinesProg is the fixed expression split(R0, '\n').
type splitLinesProg struct{}

// splitLines is the canonical instance of the fixed expression.
var splitLines = splitLinesProg{}

// Exec splits the input region into its lines.
func (splitLinesProg) Exec(st core.State) (core.Value, error) {
	r0, err := inputRegion(st)
	if err != nil {
		return nil, err
	}
	lines := linesIn(r0)
	out := make([]core.Value, len(lines))
	for i, l := range lines {
		out[i] = l
	}
	return out, nil
}

func (splitLinesProg) String() string { return "split(R0, '\\n')" }

// Cost makes the fixed expression free for ranking purposes.
func (splitLinesProg) Cost() int { return 0 }

// evalPos evaluates a position attribute over Text[lo:hi] through the
// document's evaluation cache, falling back to a direct evaluation for
// documents without one.
func evalPos(d *Document, lo, hi int, a tokens.Attr) (int, error) {
	if d.cache == nil {
		return a.Eval(d.Text[lo:hi])
	}
	return d.cache.EvalAttr(lo, hi, a)
}

// positionsIn returns the position sequence of rr within Text[lo:hi]
// through the document's evaluation cache.
func positionsIn(d *Document, lo, hi int, rr tokens.RegexPair) []int {
	if d.cache == nil {
		return rr.Positions(d.Text[lo:hi])
	}
	return d.cache.Positions(lo, hi, rr)
}

// countIn memoizes CountMatches over a document range via the evaluation
// cache; the isolated-substring semantics match CountMatches on the slice.
func countIn(d *Document, lo, hi int, r tokens.Regex) int {
	if d.cache == nil {
		return tokens.CountMatches(r, d.Text[lo:hi])
	}
	return d.cache.CountIn(lo, hi, r)
}

// posSeqProg is PosSeq(R0, rr): the sequence of absolute positions in R0
// identified by the regex pair rr.
type posSeqProg struct {
	rr tokens.RegexPair
}

func (p posSeqProg) Exec(st core.State) (core.Value, error) {
	r0, err := inputRegion(st)
	if err != nil {
		return nil, err
	}
	ps := positionsIn(r0.Doc, r0.Start, r0.End, p.rr)
	out := make([]core.Value, len(ps))
	for i, k := range ps {
		out[i] = r0.Start + k
	}
	return out, nil
}

func (p posSeqProg) String() string { return fmt.Sprintf("PosSeq(R0, %s)", p.rr) }

// linePairProg is λx: Pair(Pos(x, p1), Pos(x, p2)) — the map function of
// the LinesMap rule of SS, producing a region within the line x.
type linePairProg struct {
	p1, p2 tokens.Attr
}

func (p linePairProg) Exec(st core.State) (core.Value, error) {
	x, err := lambdaRegion(st)
	if err != nil {
		return nil, err
	}
	a, err := evalPos(x.Doc, x.Start, x.End, p.p1)
	if err != nil {
		return nil, err
	}
	b, err := evalPos(x.Doc, x.Start, x.End, p.p2)
	if err != nil {
		return nil, err
	}
	if a > b {
		return nil, core.ErrNoMatch
	}
	return Region{Doc: x.Doc, Start: x.Start + a, End: x.Start + b}, nil
}

func (p linePairProg) String() string {
	return fmt.Sprintf("Pair(Pos(x, %s), Pos(x, %s))", p.p1, p.p2)
}

// linePosProg is λx: Pos(x, p) — the map function of the LinesMap rule of
// PS, producing a position within the line x.
type linePosProg struct {
	p tokens.Attr
}

func (p linePosProg) Exec(st core.State) (core.Value, error) {
	x, err := lambdaRegion(st)
	if err != nil {
		return nil, err
	}
	k, err := evalPos(x.Doc, x.Start, x.End, p.p)
	if err != nil {
		return nil, err
	}
	return x.Start + k, nil
}

func (p linePosProg) String() string { return fmt.Sprintf("Pos(x, %s)", p.p) }

// startPairProg is λx: Pair(x, Pos(R0[x:], p)) — the map function of
// StartSeqMap: x is a start position, and the end position is found by
// evaluating p on the suffix of R0 starting at x.
type startPairProg struct {
	p tokens.Attr
}

func (p startPairProg) Exec(st core.State) (core.Value, error) {
	x, err := lambdaPos(st)
	if err != nil {
		return nil, err
	}
	r0, err := inputRegion(st)
	if err != nil {
		return nil, err
	}
	if x < r0.Start || x > r0.End {
		return nil, core.ErrNoMatch
	}
	e, err := evalPos(r0.Doc, x, r0.End, p.p)
	if err != nil {
		return nil, err
	}
	return Region{Doc: r0.Doc, Start: x, End: x + e}, nil
}

func (p startPairProg) String() string {
	return fmt.Sprintf("Pair(x, Pos(R0[x:], %s))", p.p)
}

// endPairProg is λx: Pair(Pos(R0[:x], p), x) — the map function of
// EndSeqMap: x is an end position, and the start position is found by
// evaluating p on the prefix of R0 ending at x.
type endPairProg struct {
	p tokens.Attr
}

func (p endPairProg) Exec(st core.State) (core.Value, error) {
	x, err := lambdaPos(st)
	if err != nil {
		return nil, err
	}
	r0, err := inputRegion(st)
	if err != nil {
		return nil, err
	}
	if x < r0.Start || x > r0.End {
		return nil, core.ErrNoMatch
	}
	s, err := evalPos(r0.Doc, r0.Start, x, p.p)
	if err != nil {
		return nil, err
	}
	return Region{Doc: r0.Doc, Start: r0.Start + s, End: x}, nil
}

func (p endPairProg) String() string {
	return fmt.Sprintf("Pair(Pos(R0[:x], %s), x)", p.p)
}

// regionPairProg is the N2 region program Pair(Pos(R0, p1), Pos(R0, p2)).
type regionPairProg struct {
	p1, p2 tokens.Attr
}

func (p regionPairProg) Exec(st core.State) (core.Value, error) {
	r0, err := inputRegion(st)
	if err != nil {
		return nil, err
	}
	a, err := evalPos(r0.Doc, r0.Start, r0.End, p.p1)
	if err != nil {
		return nil, err
	}
	b, err := evalPos(r0.Doc, r0.Start, r0.End, p.p2)
	if err != nil {
		return nil, err
	}
	if a > b {
		return nil, core.ErrNoMatch
	}
	return Region{Doc: r0.Doc, Start: r0.Start + a, End: r0.Start + b}, nil
}

func (p regionPairProg) String() string {
	return fmt.Sprintf("Pair(Pos(R0, %s), Pos(R0, %s))", p.p1, p.p2)
}

// predKind enumerates the line predicate forms of Fig. 7.
type predKind int

const (
	predTrue predKind = iota
	predStartsWith
	predEndsWith
	predContains
	predPredStartsWith
	predPredEndsWith
	predPredContains
	predSuccStartsWith
	predSuccEndsWith
	predSuccContains
)

var predNames = map[predKind]string{
	predTrue:           "True",
	predStartsWith:     "StartsWith",
	predEndsWith:       "EndsWith",
	predContains:       "Contains",
	predPredStartsWith: "PredStartsWith",
	predPredEndsWith:   "PredEndsWith",
	predPredContains:   "PredContains",
	predSuccStartsWith: "SuccStartsWith",
	predSuccEndsWith:   "SuccEndsWith",
	predSuccContains:   "SuccContains",
}

// linePred is a line predicate b: a boolean program over the λ-bound line
// x. The Pred*/Succ* forms take hints from the preceding and succeeding
// lines of x within R0.
type linePred struct {
	kind predKind
	r    tokens.Regex
	k    int // occurrence count for the Contains forms
}

func (p linePred) Exec(st core.State) (core.Value, error) {
	if p.kind == predTrue {
		return true, nil
	}
	x, err := lambdaRegion(st)
	if err != nil {
		return nil, err
	}
	rx, ok := p.subject(st, x)
	if !ok {
		return false, nil
	}
	switch p.kind {
	case predStartsWith, predPredStartsWith, predSuccStartsWith:
		return p.r.MatchPrefix(rx.Value(), 0) >= 0, nil
	case predEndsWith, predPredEndsWith, predSuccEndsWith:
		text := rx.Value()
		return p.r.MatchSuffix(text, len(text)) >= 0, nil
	default:
		return countIn(rx.Doc, rx.Start, rx.End, p.r) == p.k, nil
	}
}

// subject resolves the line the predicate inspects: x itself, or its
// predecessor/successor line within R0.
func (p linePred) subject(st core.State, x Region) (Region, bool) {
	switch p.kind {
	case predStartsWith, predEndsWith, predContains:
		return x, true
	}
	r0, err := inputRegion(st)
	if err != nil {
		return Region{}, false
	}
	lines := linesIn(r0)
	// Lines are disjoint and sorted by start, so the λ-bound line can be
	// located by binary search; predicates run once per line per candidate,
	// and a linear scan here is quadratic in the number of lines.
	idx := sort.Search(len(lines), func(i int) bool { return lines[i].Start >= x.Start })
	if idx >= len(lines) || lines[idx] != x {
		return Region{}, false
	}
	switch p.kind {
	case predPredStartsWith, predPredEndsWith, predPredContains:
		idx--
	default:
		idx++
	}
	if idx < 0 || idx >= len(lines) {
		return Region{}, false
	}
	return lines[idx], true
}

func (p linePred) String() string {
	if p.kind == predTrue {
		return "λx: True"
	}
	switch p.kind {
	case predContains, predPredContains, predSuccContains:
		return fmt.Sprintf("λx: %s(%s, %d, x)", predNames[p.kind], p.r, p.k)
	default:
		return fmt.Sprintf("λx: %s(%s, x)", predNames[p.kind], p.r)
	}
}

// ---- ranking costs (see core.Coster) ----

// Cost of a position sequence is the cost of its regex pair.
func (p posSeqProg) Cost() int { return p.rr.Cost() }

// Cost of a line pair is the cost of its two position attributes.
func (p linePairProg) Cost() int { return p.p1.Cost() + p.p2.Cost() }

// Cost of a line position is the cost of its attribute.
func (p linePosProg) Cost() int { return p.p.Cost() }

// Cost carries a small bias so that line-structured extraction is
// preferred over raw position pairing when both fit.
func (p startPairProg) Cost() int { return p.p.Cost() + 1 }

// Cost carries the same bias as startPairProg.
func (p endPairProg) Cost() int { return p.p.Cost() + 1 }

// Cost of a region pair is the cost of its two position attributes.
func (p regionPairProg) Cost() int { return p.p1.Cost() + p.p2.Cost() }

// Cost ranks self-inspecting predicates before neighbor-based ones,
// penalizes dynamic tokens (which overfit easily in predicates) and large
// exact occurrence counts (an incidental "exactly 13 words" match is
// almost never the intent), and puts the vacuous True last.
func (p linePred) Cost() int {
	base := 0
	switch p.kind {
	case predTrue:
		return 6
	case predStartsWith, predEndsWith, predContains:
	default:
		base = 3
	}
	k := p.k
	if k > 0 {
		k--
	}
	return base + len(p.r) + 3*p.r.DynamicCount() + k
}
