package textlang

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/region"
	"flashextract/internal/tokens"
	"flashextract/internal/trace"
)

// endPairSpan closes a pair-learner span with its example and program
// counts (nil-safe, matching the other learner spans).
func endPairSpan(sp *trace.Span, examples, programs int) {
	if sp == nil {
		return
	}
	sp.SetInt("examples", int64(examples))
	sp.SetInt("programs", int64(programs))
	sp.End()
}

// attrCap bounds how many position attributes are used per side when
// crossing start and end attribute lists.
const attrCap = 12

// dynMaxLen, dynMinOccur, and dynCap parameterize dynamic-token discovery.
const (
	dynMaxLen   = 6
	dynMinOccur = 2
	dynCap      = 24
)

// lang implements engine.Language for text documents.
type lang struct{}

// learnCtx carries the per-synthesis-call token pool (standard tokens plus
// dynamic tokens promoted from the neighborhood of the examples) and the
// document whose evaluation cache serves boundary indexes to the learners.
type learnCtx struct {
	toks   []tokens.Token
	doc    *Document
	poolID uint64

	// lsFlight single-flights the LS sub-learn per example fingerprint when
	// an abstract-pruning context is present: all three SS rules re-learn LS,
	// and their witness sequences coincide whenever the example regions or
	// positions live on the same lines, so the second and third invocations
	// replay the first result instead of re-exploring every candidate. The
	// learner is deterministic in (doc, pool, examples), so a replay is
	// bit-identical to a recomputation. Results of budget-truncated runs are
	// never cached.
	lsMu     sync.Mutex
	lsFlight map[string]*lsEntry
}

// lsEntry is one in-flight or completed LS sub-learn: done is closed when ps
// is ready, and ok reports whether the result is replayable (false when the
// computation was cut short by the budget).
type lsEntry struct {
	done chan struct{}
	ps   []core.Program
	ok   bool
}

func newLearnCtx(doc *Document, boundary []Region) *learnCtx {
	var pexs []tokens.PosExample
	for _, r := range boundary {
		pexs = append(pexs,
			tokens.PosExample{S: doc.Text, K: r.Start},
			tokens.PosExample{S: doc.Text, K: r.End})
	}
	dyn := tokens.DiscoverDynamicTokens(doc.Text, pexs, dynMaxLen, dynMinOccur, dynCap)
	pool := make([]tokens.Token, 0, len(tokens.Standard)+len(dyn))
	pool = append(pool, tokens.Standard...)
	pool = append(pool, dyn...)
	return &learnCtx{toks: pool, doc: doc, poolID: tokens.PoolID(pool)}
}

// index returns the memoized boundary index of Text[lo:hi] for the
// context's token pool.
func (c *learnCtx) index(lo, hi int) *tokens.Index {
	if c.doc == nil || c.doc.cache == nil {
		return nil
	}
	return c.doc.cache.IndexFor(lo, hi, c.toks, c.poolID)
}

func regionLess(a, b core.Value) bool { return a.(Region).Less(b.(Region)) }

// conflictOverlap treats a negative instance as violated when an output
// region overlaps (or equals) it.
func conflictOverlap(out, neg core.Value) bool {
	o, ok1 := out.(Region)
	n, ok2 := neg.(Region)
	if !ok1 || !ok2 {
		return false
	}
	return o == n || o.Overlaps(n)
}

// SynthesizeSeqRegion learns N1 programs (Fig. 7): a Merge of pair
// sequence expressions.
func (l *lang) SynthesizeSeqRegion(ctx context.Context, exs []engine.SeqRegionExample) []engine.SeqRegionProgram {
	if len(exs) == 0 {
		return nil
	}
	var doc *Document
	var boundary []Region
	specs := make([]core.SeqSpec, 0, len(exs))
	for _, ex := range exs {
		in, ok := ex.Input.(Region)
		if !ok {
			return nil
		}
		doc = in.Doc
		spec := core.SeqSpec{State: core.NewState(in).WithExecMemo()}
		for _, p := range ex.Positive {
			pr, ok := p.(Region)
			if !ok {
				return nil
			}
			boundary = append(boundary, pr)
			spec.Positive = append(spec.Positive, pr)
		}
		for _, n := range ex.Negative {
			nr, ok := n.(Region)
			if !ok {
				return nil
			}
			spec.Negative = append(spec.Negative, nr)
		}
		specs = append(specs, spec)
	}
	lc := newLearnCtx(doc, boundary)
	ss := core.PreferNonOverlapping(lc.learnSS(), conflictOverlap)
	n1 := core.PreferNonOverlapping(core.MergeOp{A: ss, Less: regionLess}.Learn, conflictOverlap)
	progs := core.SynthesizeSeqRegionProg(ctx, n1, specs, conflictOverlap)
	out := make([]engine.SeqRegionProgram, len(progs))
	for i, p := range progs {
		out[i] = seqProgram{p}
	}
	return out
}

// SynthesizeRegion learns N2 programs: Pair(Pos(R0, p1), Pos(R0, p2)).
func (l *lang) SynthesizeRegion(ctx context.Context, exs []engine.RegionExample) []engine.RegionProgram {
	if len(exs) == 0 {
		return nil
	}
	var doc *Document
	var boundary []Region
	var coreExs []core.Example
	var ins, outs []Region
	for _, ex := range exs {
		in, ok1 := ex.Input.(Region)
		out, ok2 := ex.Output.(Region)
		if !ok1 || !ok2 || !in.Contains(out) {
			return nil
		}
		doc = in.Doc
		boundary = append(boundary, out)
		coreExs = append(coreExs, core.Example{State: core.NewState(in), Output: out})
		ins = append(ins, in)
		outs = append(outs, out)
	}
	lc := newLearnCtx(doc, boundary)
	var sExs, eExs []tokens.PosExample
	for i, in := range ins {
		ix := lc.index(in.Start, in.End)
		sExs = append(sExs, tokens.PosExample{S: in.Value(), K: outs[i].Start - in.Start, Ix: ix})
		eExs = append(eExs, tokens.PosExample{S: in.Value(), K: outs[i].End - in.Start, Ix: ix})
	}
	n2 := func(ctx context.Context, _ []core.Example) (out []core.Program) {
		ctx, sp := trace.Start(ctx, "pair")
		if sp != nil {
			sp.SetString("form", "region")
			defer func() { endPairSpan(sp, len(coreExs), len(out)) }()
		}
		p1s := capAttrs(tokens.LearnAttrsStop(sExs, lc.toks, core.StopFunc(ctx)), attrCap)
		p2s := capAttrs(tokens.LearnAttrsStop(eExs, lc.toks, core.StopFunc(ctx)), attrCap)
		bud := core.BudgetFrom(ctx)
		for _, p1 := range p1s {
			if bud.ExhaustedNow() {
				break
			}
			for _, p2 := range p2s {
				out = append(out, regionPairProg{p1: p1, p2: p2})
			}
		}
		return out
	}
	progs := core.SynthesizeRegionProg(ctx, n2, coreExs)
	out := make([]engine.RegionProgram, len(progs))
	for i, p := range progs {
		out[i] = regProgram{p}
	}
	return out
}

func capAttrs(as []tokens.Attr, n int) []tokens.Attr {
	if len(as) > n {
		return as[:n]
	}
	return as
}

// ---- sequence non-terminal SS and its three rules ----

// learnSS returns the learner for the pair-sequence non-terminal SS.
func (c *learnCtx) learnSS() core.SeqLearner {
	return core.UnionLearners(
		c.linesMapOp().Learn,
		c.startSeqMapOp().Learn,
		c.endSeqMapOp().Learn,
	)
}

// linesMapOp is SS ::= LinesMap(λx: Pair(Pos(x,p1), Pos(x,p2)), LS).
func (c *learnCtx) linesMapOp() core.MapOp {
	return core.MapOp{
		Name: "LinesMap",
		Var:  lambdaVar,
		F:    c.learnLinePair,
		S:    c.learnLS(),
		Decompose: func(st core.State, y []core.Value) ([]core.Value, error) {
			r0, err := inputRegion(st)
			if err != nil {
				return nil, err
			}
			out := make([]core.Value, len(y))
			for i, v := range y {
				yr, ok := v.(Region)
				if !ok {
					return nil, fmt.Errorf("textlang: LinesMap output is %T, want region", v)
				}
				line, ok := lineContaining(r0, yr.Start, yr.End)
				if !ok {
					return nil, core.ErrNoMatch
				}
				out[i] = line
			}
			return out, nil
		},
	}
}

// startSeqMapOp is SS ::= StartSeqMap(λx: Pair(x, Pos(R0[x:], p)), PS).
func (c *learnCtx) startSeqMapOp() core.MapOp {
	return core.MapOp{
		Name: "StartSeqMap",
		Var:  lambdaVar,
		F:    c.learnStartPair,
		S:    c.learnPS(),
		Decompose: func(st core.State, y []core.Value) ([]core.Value, error) {
			out := make([]core.Value, len(y))
			for i, v := range y {
				yr, ok := v.(Region)
				if !ok {
					return nil, fmt.Errorf("textlang: StartSeqMap output is %T, want region", v)
				}
				out[i] = yr.Start
			}
			return out, nil
		},
	}
}

// endSeqMapOp is SS ::= EndSeqMap(λx: Pair(Pos(R0[:x], p), x), PS).
func (c *learnCtx) endSeqMapOp() core.MapOp {
	return core.MapOp{
		Name: "EndSeqMap",
		Var:  lambdaVar,
		F:    c.learnEndPair,
		S:    c.learnPS(),
		Decompose: func(st core.State, y []core.Value) ([]core.Value, error) {
			out := make([]core.Value, len(y))
			for i, v := range y {
				yr, ok := v.(Region)
				if !ok {
					return nil, fmt.Errorf("textlang: EndSeqMap output is %T, want region", v)
				}
				out[i] = yr.End
			}
			return out, nil
		},
	}
}

// ---- line sequence non-terminal LS ----

// learnLS is LS ::= FilterInt(init, iter, FilterBool(b, split(R0,'\n'))).
//
// The returned learner is replay-memoized through the learn context (see
// lsFlight): with abstraction-guided pruning active, identical LS example
// sets — which all three SS rules produce whenever their witnesses land on
// the same lines — are learned once and replayed, so the replayed candidate
// explorations never reach concrete execution.
func (c *learnCtx) learnLS() core.SeqLearner {
	inner := core.FilterBoolOp{
		Var: lambdaVar,
		B:   c.learnPred,
		S:   learnSplit,
	}
	ls := core.FilterIntOp{S: inner.Learn}.Learn
	return func(ctx context.Context, exs []core.SeqExample) []core.Program {
		pr := core.PrunerFrom(ctx)
		if pr == nil {
			return ls(ctx, exs)
		}
		key, ok := lsKey(exs)
		if !ok {
			return ls(ctx, exs)
		}
		c.lsMu.Lock()
		if c.lsFlight == nil {
			c.lsFlight = map[string]*lsEntry{}
		}
		if e, hit := c.lsFlight[key]; hit {
			c.lsMu.Unlock()
			// The SS rules run concurrently (UnionLearners), so a second
			// identical sub-learn may still be in flight; wait for it rather
			// than duplicating its exploration.
			<-e.done
			if e.ok {
				pr.Ctx().CountReplay()
				// The replay leaves a marker span where the recomputation's
				// learner subtree would sit, so traces stay self-explanatory.
				if _, sp := trace.Start(ctx, "ls_replay"); sp != nil {
					sp.SetInt("programs", int64(len(e.ps)))
					sp.End()
				}
				return e.ps
			}
			return ls(ctx, exs)
		}
		e := &lsEntry{done: make(chan struct{})}
		c.lsFlight[key] = e
		c.lsMu.Unlock()
		bud := core.BudgetFrom(ctx)
		truncBefore := len(bud.Truncations())
		e.ps = ls(ctx, exs)
		e.ok = !bud.ExhaustedNow() && len(bud.Truncations()) == truncBefore
		if !e.ok {
			// A truncated result is budget-dependent, not a document fact;
			// drop the entry so later callers learn afresh.
			c.lsMu.Lock()
			delete(c.lsFlight, key)
			c.lsMu.Unlock()
		}
		close(e.done)
		return e.ps
	}
}

// lsKey fingerprints an LS example set: the input region and the positive
// line regions of every example. ok is false when the examples are not
// region-shaped (no replay then — learn normally).
func lsKey(exs []core.SeqExample) (string, bool) {
	var b strings.Builder
	for _, ex := range exs {
		r0, err := inputRegion(ex.State)
		if err != nil {
			return "", false
		}
		fmt.Fprintf(&b, "r0:%p:%d-%d|", r0.Doc, r0.Start, r0.End)
		for _, v := range ex.Positive {
			r, ok := v.(Region)
			if !ok {
				return "", false
			}
			fmt.Fprintf(&b, "%d-%d,", r.Start, r.End)
		}
		b.WriteByte(';')
	}
	return b.String(), true
}

// learnSplit is the learner of the fixed expression split(R0, '\n'):
// consistent iff every positive instance is a line of the input region.
func learnSplit(_ context.Context, exs []core.SeqExample) []core.Program {
	for _, ex := range exs {
		out, err := splitLines.Exec(ex.State)
		if err != nil {
			return nil
		}
		lines, err := core.AsSeq(out)
		if err != nil || !core.IsSubsequence(ex.Positive, lines) {
			return nil
		}
	}
	return []core.Program{splitLines}
}

// ---- position sequence non-terminal PS ----

// learnPS is PS ::= LinesMap(λx: Pos(x,p), LS)
//
//	| FilterInt(init, iter, PosSeq(R0, rr)).
func (c *learnCtx) learnPS() core.SeqLearner {
	linesMap := core.MapOp{
		Name: "LinesMap",
		Var:  lambdaVar,
		F:    c.learnLinePos,
		S:    c.learnLS(),
		Decompose: func(st core.State, y []core.Value) ([]core.Value, error) {
			r0, err := inputRegion(st)
			if err != nil {
				return nil, err
			}
			out := make([]core.Value, len(y))
			for i, v := range y {
				k, ok := v.(int)
				if !ok {
					return nil, fmt.Errorf("textlang: position sequence output is %T, want int", v)
				}
				line, ok := lineContaining(r0, k, k)
				if !ok {
					return nil, core.ErrNoMatch
				}
				out[i] = line
			}
			return out, nil
		},
	}
	filtered := core.FilterIntOp{S: c.learnPosSeq}
	return core.UnionLearners(filtered.Learn, linesMap.Learn)
}

// learnPosSeq learns PosSeq(R0, rr) programs from positive position
// instances.
func (c *learnCtx) learnPosSeq(ctx context.Context, exs []core.SeqExample) []core.Program {
	var spexs []tokens.SeqPosExample
	for _, ex := range exs {
		r0, err := inputRegion(ex.State)
		if err != nil {
			return nil
		}
		sp := tokens.SeqPosExample{S: r0.Value(), Ix: c.index(r0.Start, r0.End)}
		for _, v := range ex.Positive {
			k, ok := v.(int)
			if !ok || k < r0.Start || k > r0.End {
				return nil
			}
			sp.Ks = append(sp.Ks, k-r0.Start)
		}
		sort.Ints(sp.Ks)
		spexs = append(spexs, sp)
	}
	pairs := tokens.LearnRegexPairsStop(spexs, c.toks, core.StopFunc(ctx))
	out := make([]core.Program, len(pairs))
	for i, rr := range pairs {
		out[i] = posSeqProg{rr: rr}
	}
	return out
}

// ---- scalar learners for the map functions ----

// learnLinePair learns λx: Pair(Pos(x,p1), Pos(x,p2)) from examples that
// bind x to a line and output a region within that line.
func (c *learnCtx) learnLinePair(ctx context.Context, exs []core.Example) (out []core.Program) {
	ctx, sp := trace.Start(ctx, "pair")
	if sp != nil {
		sp.SetString("form", "line")
		defer func() { endPairSpan(sp, len(exs), len(out)) }()
	}
	var sExs, eExs []tokens.PosExample
	for _, ex := range exs {
		x, err := lambdaRegion(ex.State)
		if err != nil {
			return nil
		}
		y, ok := ex.Output.(Region)
		if !ok || !x.Contains(y) {
			return nil
		}
		ix := c.index(x.Start, x.End)
		sExs = append(sExs, tokens.PosExample{S: x.Value(), K: y.Start - x.Start, Ix: ix})
		eExs = append(eExs, tokens.PosExample{S: x.Value(), K: y.End - x.Start, Ix: ix})
	}
	p1s := capAttrs(tokens.LearnAttrsStop(sExs, c.toks, core.StopFunc(ctx)), attrCap)
	p2s := capAttrs(tokens.LearnAttrsStop(eExs, c.toks, core.StopFunc(ctx)), attrCap)
	for _, p1 := range p1s {
		for _, p2 := range p2s {
			out = append(out, linePairProg{p1: p1, p2: p2})
		}
	}
	return out
}

// learnLinePos learns λx: Pos(x, p) from examples that bind x to a line
// and output a position within that line.
func (c *learnCtx) learnLinePos(ctx context.Context, exs []core.Example) []core.Program {
	var pexs []tokens.PosExample
	for _, ex := range exs {
		x, err := lambdaRegion(ex.State)
		if err != nil {
			return nil
		}
		k, ok := ex.Output.(int)
		if !ok || k < x.Start || k > x.End {
			return nil
		}
		pexs = append(pexs, tokens.PosExample{S: x.Value(), K: k - x.Start, Ix: c.index(x.Start, x.End)})
	}
	attrs := capAttrs(tokens.LearnAttrsStop(pexs, c.toks, core.StopFunc(ctx)), attrCap)
	out := make([]core.Program, len(attrs))
	for i, p := range attrs {
		out[i] = linePosProg{p: p}
	}
	return out
}

// learnStartPair learns λx: Pair(x, Pos(R0[x:], p)) from examples that
// bind x to a start position and output the region starting there.
func (c *learnCtx) learnStartPair(ctx context.Context, exs []core.Example) (out []core.Program) {
	ctx, sp := trace.Start(ctx, "pair")
	if sp != nil {
		sp.SetString("form", "start")
		defer func() { endPairSpan(sp, len(exs), len(out)) }()
	}
	var pexs []tokens.PosExample
	for _, ex := range exs {
		x, err := lambdaPos(ex.State)
		if err != nil {
			return nil
		}
		r0, err := inputRegion(ex.State)
		if err != nil {
			return nil
		}
		y, ok := ex.Output.(Region)
		if !ok || y.Start != x || y.End > r0.End {
			return nil
		}
		pexs = append(pexs, tokens.PosExample{S: r0.Doc.Text[x:r0.End], K: y.End - x, Ix: c.index(x, r0.End)})
	}
	attrs := capAttrs(tokens.LearnAttrsStop(pexs, c.toks, core.StopFunc(ctx)), attrCap)
	out = make([]core.Program, len(attrs))
	for i, p := range attrs {
		out[i] = startPairProg{p: p}
	}
	return out
}

// learnEndPair learns λx: Pair(Pos(R0[:x], p), x) from examples that bind
// x to an end position and output the region ending there.
func (c *learnCtx) learnEndPair(ctx context.Context, exs []core.Example) (out []core.Program) {
	ctx, sp := trace.Start(ctx, "pair")
	if sp != nil {
		sp.SetString("form", "end")
		defer func() { endPairSpan(sp, len(exs), len(out)) }()
	}
	var pexs []tokens.PosExample
	for _, ex := range exs {
		x, err := lambdaPos(ex.State)
		if err != nil {
			return nil
		}
		r0, err := inputRegion(ex.State)
		if err != nil {
			return nil
		}
		y, ok := ex.Output.(Region)
		if !ok || y.End != x || y.Start < r0.Start {
			return nil
		}
		pexs = append(pexs, tokens.PosExample{S: r0.Doc.Text[r0.Start:x], K: y.Start - r0.Start, Ix: c.index(r0.Start, x)})
	}
	attrs := capAttrs(tokens.LearnAttrsStop(pexs, c.toks, core.StopFunc(ctx)), attrCap)
	out = make([]core.Program, len(attrs))
	for i, p := range attrs {
		out[i] = endPairProg{p: p}
	}
	return out
}

// ---- line predicate learner ----

// learnPred learns line predicates b by brute-force search over candidate
// regexes derived from the first positive line (and its neighbor lines),
// verified against all examples.
func (c *learnCtx) learnPred(ctx context.Context, exs []core.Example) []core.Program {
	if len(exs) == 0 {
		return []core.Program{linePred{kind: predTrue}}
	}
	first, err := lambdaRegion(exs[0].State)
	if err != nil {
		return nil
	}
	cands := []linePred{{kind: predTrue}}
	cands = append(cands, candidatesForLine(first.Value(), predStartsWith, predEndsWith, predContains, c.toks)...)
	if r0, err := inputRegion(exs[0].State); err == nil {
		lines := linesIn(r0)
		for i, l := range lines {
			if l != first {
				continue
			}
			if i > 0 {
				cands = append(cands, candidatesForLine(lines[i-1].Value(), predPredStartsWith, predPredEndsWith, predPredContains, c.toks)...)
			}
			if i+1 < len(lines) {
				cands = append(cands, candidatesForLine(lines[i+1].Value(), predSuccStartsWith, predSuccEndsWith, predSuccContains, c.toks)...)
			}
			break
		}
	}

	bud := core.BudgetFrom(ctx)
	pr := core.PrunerFrom(ctx)
	if pr == nil {
		bud.AddCandidates(int64(len(cands)))
	}
	var out []core.Program
	seen := map[string]bool{}
	for _, cand := range cands {
		if bud.Exhausted() {
			break
		}
		key := cand.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		if pr != nil {
			// Every rejection below is a proof that the verification loop
			// underneath would reject the same candidate, so the output set
			// is bit-identical with pruning on or off.
			feasible := true
			for _, ex := range exs {
				if !predFeasible(ex.State, cand) {
					feasible = false
					break
				}
			}
			if !feasible {
				pr.Ctx().CountPruned()
				continue
			}
			bud.AddCandidates(1)
		}
		ok := true
		for _, ex := range exs {
			v, err := cand.Exec(ex.State)
			if err != nil || v != core.Value(true) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, cand)
		}
	}
	return out
}

// candidatesForLine generates predicate candidates whose regexes are
// derived from the given line text: prefixes for the StartsWith form,
// suffixes for EndsWith, and per-token occurrence counts for Contains.
func candidatesForLine(text string, starts, ends, contains predKind, toks []tokens.Token) []linePred {
	var out []linePred
	for _, r := range tokens.SeqsStartingAt(text, 0, toks) {
		if len(r) > 0 {
			out = append(out, linePred{kind: starts, r: r})
		}
	}
	for _, r := range tokens.SeqsEndingAt(text, len(text), toks) {
		if len(r) > 0 {
			out = append(out, linePred{kind: ends, r: r})
		}
	}
	for _, t := range toks {
		r := tokens.Regex{t}
		if n := tokens.CountMatches(r, text); n > 0 {
			out = append(out, linePred{kind: contains, r: r, k: n})
		}
	}
	// Rank: standard-token and shorter regexes first; the paper relies on
	// CleanUp for output minimality, ranking only breaks ties.
	sort.SliceStable(out, func(i, j int) bool {
		si := 2*out[i].r.DynamicCount() + len(out[i].r)
		sj := 2*out[j].r.DynamicCount() + len(out[j].r)
		return si < sj
	})
	return out
}

// ---- adapters to the engine interfaces ----

type seqProgram struct{ p core.Program }

func (sp seqProgram) ExtractSeq(r region.Region) ([]region.Region, error) {
	return sp.extract(r, nil)
}

// ExtractSeqCaptured runs the program with an execution capture attached,
// recording the operator path of every emitted region (provenance).
func (sp seqProgram) ExtractSeqCaptured(r region.Region, c *core.ExecCapture) ([]region.Region, error) {
	return sp.extract(r, c)
}

func (sp seqProgram) extract(r region.Region, c *core.ExecCapture) ([]region.Region, error) {
	in, ok := r.(Region)
	if !ok {
		return nil, fmt.Errorf("textlang: input is %T, want a text region", r)
	}
	st := core.NewState(in)
	if c != nil {
		st = st.WithCapture(c)
	}
	v, err := sp.p.Exec(st)
	if err != nil {
		return nil, err
	}
	seq, err := core.AsSeq(v)
	if err != nil {
		return nil, err
	}
	out := make([]region.Region, len(seq))
	for i, e := range seq {
		er, ok := e.(Region)
		if !ok {
			return nil, fmt.Errorf("textlang: program produced %T, want region", e)
		}
		out[i] = er
	}
	return out, nil
}

func (sp seqProgram) String() string { return sp.p.String() }

type regProgram struct{ p core.Program }

func (rp regProgram) Extract(r region.Region) (region.Region, error) {
	return rp.extract(r, nil)
}

// ExtractCaptured runs the program with an execution capture attached.
func (rp regProgram) ExtractCaptured(r region.Region, c *core.ExecCapture) (region.Region, error) {
	return rp.extract(r, c)
}

func (rp regProgram) extract(r region.Region, c *core.ExecCapture) (region.Region, error) {
	in, ok := r.(Region)
	if !ok {
		return nil, fmt.Errorf("textlang: input is %T, want a text region", r)
	}
	st := core.NewState(in)
	if c != nil {
		st = st.WithCapture(c)
	}
	v, err := rp.p.Exec(st)
	if err != nil {
		// A non-matching region program denotes the null instance.
		return nil, nil
	}
	er, ok := v.(Region)
	if !ok {
		return nil, fmt.Errorf("textlang: program produced %T, want region", v)
	}
	return er, nil
}

func (rp regProgram) String() string { return rp.p.String() }
