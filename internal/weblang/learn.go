package weblang

import (
	"context"
	"fmt"
	"sort"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/htmldom"
	"flashextract/internal/region"
	"flashextract/internal/tokens"
	"flashextract/internal/xpath"
)

// attrCap bounds per-side position attribute lists in cross products.
const attrCap = 12

// Dynamic-token discovery parameters (over the page's text content).
const (
	dynMaxLen   = 8
	dynMinOccur = 2
	dynCap      = 24
)

// lang implements engine.Language for webpages.
type lang struct{}

// webCtx carries the per-call token pool and the document whose evaluation
// cache serves boundary indexes to the learners.
type webCtx struct {
	toks   []tokens.Token
	doc    *Document
	poolID uint64
}

func newWebCtx(doc *Document, boundary []region.Region) *webCtx {
	var pexs []tokens.PosExample
	for _, r := range boundary {
		_, lo, hi, ok := textRange(r)
		if !ok {
			continue
		}
		pexs = append(pexs,
			tokens.PosExample{S: doc.Text, K: lo},
			tokens.PosExample{S: doc.Text, K: hi})
	}
	dyn := tokens.DiscoverDynamicTokens(doc.Text, pexs, dynMaxLen, dynMinOccur, dynCap)
	pool := make([]tokens.Token, 0, len(tokens.Standard)+len(dyn))
	pool = append(pool, tokens.Standard...)
	pool = append(pool, dyn...)
	return &webCtx{toks: pool, doc: doc, poolID: tokens.PoolID(pool)}
}

// index returns the memoized boundary index of Text[lo:hi] for the
// context's token pool.
func (c *webCtx) index(lo, hi int) *tokens.Index {
	if c.doc == nil || c.doc.cache == nil {
		return nil
	}
	return c.doc.cache.IndexFor(lo, hi, c.toks, c.poolID)
}

func webLess(a, b core.Value) bool {
	ar, ok1 := a.(region.Region)
	br, ok2 := b.(region.Region)
	if !ok1 || !ok2 {
		return false
	}
	return ar.Less(br)
}

func conflictOverlap(out, neg core.Value) bool {
	o, ok1 := out.(region.Region)
	n, ok2 := neg.(region.Region)
	if !ok1 || !ok2 {
		return false
	}
	return o == n || o.Overlaps(n)
}

// SynthesizeSeqRegion learns N1 programs (Fig. 8): a Merge of node
// sequences (XPaths) or of position-pair sequences.
func (l *lang) SynthesizeSeqRegion(ctx context.Context, exs []engine.SeqRegionExample) []engine.SeqRegionProgram {
	if len(exs) == 0 {
		return nil
	}
	var doc *Document
	var boundary []region.Region
	specs := make([]core.SeqSpec, 0, len(exs))
	for _, ex := range exs {
		in, ok := ex.Input.(NodeRegion)
		if !ok {
			return nil
		}
		doc = in.Doc
		spec := core.SeqSpec{State: core.NewState(in).WithExecMemo()}
		for _, p := range ex.Positive {
			boundary = append(boundary, p)
			spec.Positive = append(spec.Positive, core.Value(p))
		}
		for _, n := range ex.Negative {
			spec.Negative = append(spec.Negative, core.Value(n))
		}
		specs = append(specs, spec)
	}
	lc := newWebCtx(doc, boundary)
	inner := core.PreferNonOverlapping(
		core.UnionLearners(learnNS, lc.learnSS()),
		conflictOverlap,
	)
	n1 := core.PreferNonOverlapping(
		core.MergeOp{A: inner, Less: webLess}.Learn,
		conflictOverlap,
	)
	progs := core.SynthesizeSeqRegionProg(ctx, n1, specs, conflictOverlap)
	out := make([]engine.SeqRegionProgram, len(progs))
	for i, p := range progs {
		out[i] = seqProgram{p}
	}
	return out
}

// SynthesizeRegion learns N2 programs: an XPath when the output is a node,
// or a position pair within the input's text content when the output is a
// span.
func (l *lang) SynthesizeRegion(ctx context.Context, exs []engine.RegionExample) []engine.RegionProgram {
	if len(exs) == 0 {
		return nil
	}
	if _, isNode := exs[0].Output.(NodeRegion); isNode {
		return synthesizeNodeRegion(ctx, exs)
	}
	return synthesizeSpanRegion(ctx, exs)
}

func synthesizeNodeRegion(ctx context.Context, exs []engine.RegionExample) []engine.RegionProgram {
	var coreExs []core.Example
	var paths []*xpath.Path
	for i, ex := range exs {
		in, ok1 := ex.Input.(NodeRegion)
		out, ok2 := ex.Output.(NodeRegion)
		if !ok1 || !ok2 || !in.Contains(out) {
			return nil
		}
		coreExs = append(coreExs, core.Example{State: core.NewState(in), Output: out})
		if i == 0 {
			paths = xpath.Learn(in.Node, []*htmldom.Node{out.Node})
		}
	}
	var cands []core.Program
	for _, p := range paths {
		cands = append(cands, xpathRegionProg{path: p})
	}
	progs := core.SynthesizeRegionProg(ctx, func(context.Context, []core.Example) []core.Program { return cands }, coreExs)
	return wrapRegionPrograms(progs)
}

func synthesizeSpanRegion(ctx context.Context, exs []engine.RegionExample) []engine.RegionProgram {
	var doc *Document
	var boundary []region.Region
	var coreExs []core.Example
	var ranges [][2]int
	var outs []SpanRegion
	for _, ex := range exs {
		out, ok := ex.Output.(SpanRegion)
		if !ok || !ex.Input.Contains(out) {
			return nil
		}
		d, lo, hi, ok := textRange(ex.Input)
		if !ok {
			return nil
		}
		doc = d
		boundary = append(boundary, out)
		coreExs = append(coreExs, core.Example{State: core.NewState(ex.Input), Output: out})
		ranges = append(ranges, [2]int{lo, hi})
		outs = append(outs, out)
	}
	lc := newWebCtx(doc, boundary)
	var sExs, eExs []tokens.PosExample
	for i, rg := range ranges {
		lo, hi := rg[0], rg[1]
		ix := lc.index(lo, hi)
		sExs = append(sExs, tokens.PosExample{S: doc.Text[lo:hi], K: outs[i].Start - lo, Ix: ix})
		eExs = append(eExs, tokens.PosExample{S: doc.Text[lo:hi], K: outs[i].End - lo, Ix: ix})
	}
	n2 := func(ctx context.Context, _ []core.Example) []core.Program {
		p1s := capAttrs(tokens.LearnAttrsStop(sExs, lc.toks, core.StopFunc(ctx)), attrCap)
		p2s := capAttrs(tokens.LearnAttrsStop(eExs, lc.toks, core.StopFunc(ctx)), attrCap)
		bud := core.BudgetFrom(ctx)
		var out []core.Program
		for _, p1 := range p1s {
			if bud.ExhaustedNow() {
				break
			}
			for _, p2 := range p2s {
				out = append(out, spanPairProg{p1: p1, p2: p2})
			}
		}
		return out
	}
	progs := core.SynthesizeRegionProg(ctx, n2, coreExs)
	return wrapRegionPrograms(progs)
}

func capAttrs(as []tokens.Attr, n int) []tokens.Attr {
	if len(as) > n {
		return as[:n]
	}
	return as
}

// ---- NS: node sequences via XPaths ----

// learnNS learns XPaths programs: candidates are generalized from the
// first example and verified against the rest.
func learnNS(_ context.Context, exs []core.SeqExample) []core.Program {
	var first []*htmldom.Node
	var firstRoot *htmldom.Node
	for _, ex := range exs {
		r0, ok := ex.State.Input().(NodeRegion)
		if !ok {
			return nil
		}
		var nodes []*htmldom.Node
		for _, v := range ex.Positive {
			nr, ok := v.(NodeRegion)
			if !ok {
				return nil
			}
			nodes = append(nodes, nr.Node)
		}
		if first == nil && len(nodes) > 0 {
			first, firstRoot = nodes, r0.Node
		}
	}
	if first == nil {
		return nil
	}
	paths := xpath.Learn(firstRoot, first)
	var out []core.Program
	for _, p := range paths {
		prog := xpathsProg{path: p}
		if core.ConsistentSeq(prog, exs) {
			out = append(out, prog)
		}
	}
	return out
}

// learnES is ES ::= FilterInt(init, iter, XPaths).
func learnES(ctx context.Context, exs []core.SeqExample) []core.Program {
	return core.FilterIntOp{S: learnNS}.Learn(ctx, exs)
}

// ---- SS: position-pair sequences ----

func (c *webCtx) learnSS() core.SeqLearner {
	seqPairMap := core.MapOp{
		Name: "SeqPairMap",
		Var:  lambdaVar,
		F:    c.learnNodeSpanPair,
		S:    learnES,
		Decompose: func(st core.State, y []core.Value) ([]core.Value, error) {
			r0, err := inputNode(st)
			if err != nil {
				return nil, err
			}
			out := make([]core.Value, len(y))
			for i, v := range y {
				sp, ok := v.(SpanRegion)
				if !ok {
					return nil, fmt.Errorf("weblang: SeqPairMap output is %T, want span", v)
				}
				node := deepestNodeContaining(sp.Doc, sp.Start, sp.End)
				if !r0.Node.IsAncestorOf(node) {
					return nil, core.ErrNoMatch
				}
				out[i] = NodeRegion{Doc: sp.Doc, Node: node}
			}
			return out, nil
		},
	}
	startSeqMap := core.MapOp{
		Name: "StartSeqMap",
		Var:  lambdaVar,
		F:    c.learnStartPair,
		S:    c.learnPS(),
		Decompose: func(st core.State, y []core.Value) ([]core.Value, error) {
			out := make([]core.Value, len(y))
			for i, v := range y {
				sp, ok := v.(SpanRegion)
				if !ok {
					return nil, fmt.Errorf("weblang: StartSeqMap output is %T, want span", v)
				}
				out[i] = sp.Start
			}
			return out, nil
		},
	}
	endSeqMap := core.MapOp{
		Name: "EndSeqMap",
		Var:  lambdaVar,
		F:    c.learnEndPair,
		S:    c.learnPS(),
		Decompose: func(st core.State, y []core.Value) ([]core.Value, error) {
			out := make([]core.Value, len(y))
			for i, v := range y {
				sp, ok := v.(SpanRegion)
				if !ok {
					return nil, fmt.Errorf("weblang: EndSeqMap output is %T, want span", v)
				}
				out[i] = sp.End
			}
			return out, nil
		},
	}
	return core.UnionLearners(seqPairMap.Learn, startSeqMap.Learn, endSeqMap.Learn)
}

// learnPS is PS ::= FilterInt(init, iter, PosSeq(R0, rr)).
func (c *webCtx) learnPS() core.SeqLearner {
	return core.FilterIntOp{S: c.learnPosSeq}.Learn
}

func (c *webCtx) learnPosSeq(ctx context.Context, exs []core.SeqExample) []core.Program {
	var spexs []tokens.SeqPosExample
	for _, ex := range exs {
		doc, lo, hi, err := inputTextRange(ex.State)
		if err != nil {
			return nil
		}
		sp := tokens.SeqPosExample{S: doc.Text[lo:hi], Ix: c.index(lo, hi)}
		for _, v := range ex.Positive {
			k, ok := v.(int)
			if !ok || k < lo || k > hi {
				return nil
			}
			sp.Ks = append(sp.Ks, k-lo)
		}
		sort.Ints(sp.Ks)
		spexs = append(spexs, sp)
	}
	pairs := tokens.LearnRegexPairsStop(spexs, c.toks, core.StopFunc(ctx))
	out := make([]core.Program, len(pairs))
	for i, rr := range pairs {
		out[i] = posSeqProg{rr: rr}
	}
	return out
}

// learnNodeSpanPair learns λx: Pair(Pos(x.Val, p1), Pos(x.Val, p2)) from
// examples binding x to a node and outputting a span within its text.
func (c *webCtx) learnNodeSpanPair(ctx context.Context, exs []core.Example) []core.Program {
	var sExs, eExs []tokens.PosExample
	for _, ex := range exs {
		v, _ := ex.State.Lookup(lambdaVar)
		x, ok := v.(NodeRegion)
		if !ok {
			return nil
		}
		y, ok := ex.Output.(SpanRegion)
		if !ok || !x.Contains(y) {
			return nil
		}
		text := x.Node.TextContent()
		ix := c.index(x.Node.TextStart, x.Node.TextEnd)
		sExs = append(sExs, tokens.PosExample{S: text, K: y.Start - x.Node.TextStart, Ix: ix})
		eExs = append(eExs, tokens.PosExample{S: text, K: y.End - x.Node.TextStart, Ix: ix})
	}
	p1s := capAttrs(tokens.LearnAttrsStop(sExs, c.toks, core.StopFunc(ctx)), attrCap)
	p2s := capAttrs(tokens.LearnAttrsStop(eExs, c.toks, core.StopFunc(ctx)), attrCap)
	var out []core.Program
	for _, p1 := range p1s {
		for _, p2 := range p2s {
			out = append(out, nodeSpanPairProg{p1: p1, p2: p2})
		}
	}
	return out
}

// learnStartPair learns λx: Pair(x, Pos(R0[x:], p)).
func (c *webCtx) learnStartPair(ctx context.Context, exs []core.Example) []core.Program {
	var pexs []tokens.PosExample
	for _, ex := range exs {
		doc, _, hi, err := inputTextRange(ex.State)
		if err != nil {
			return nil
		}
		v, _ := ex.State.Lookup(lambdaVar)
		x, ok := v.(int)
		if !ok {
			return nil
		}
		y, ok := ex.Output.(SpanRegion)
		if !ok || y.Start != x || y.End > hi {
			return nil
		}
		pexs = append(pexs, tokens.PosExample{S: doc.Text[x:hi], K: y.End - x, Ix: c.index(x, hi)})
	}
	attrs := capAttrs(tokens.LearnAttrsStop(pexs, c.toks, core.StopFunc(ctx)), attrCap)
	out := make([]core.Program, len(attrs))
	for i, p := range attrs {
		out[i] = startPairProg{p: p}
	}
	return out
}

// learnEndPair learns λx: Pair(Pos(R0[:x], p), x).
func (c *webCtx) learnEndPair(ctx context.Context, exs []core.Example) []core.Program {
	var pexs []tokens.PosExample
	for _, ex := range exs {
		doc, lo, _, err := inputTextRange(ex.State)
		if err != nil {
			return nil
		}
		v, _ := ex.State.Lookup(lambdaVar)
		x, ok := v.(int)
		if !ok {
			return nil
		}
		y, ok := ex.Output.(SpanRegion)
		if !ok || y.End != x || y.Start < lo {
			return nil
		}
		pexs = append(pexs, tokens.PosExample{S: doc.Text[lo:x], K: y.Start - lo, Ix: c.index(lo, x)})
	}
	attrs := capAttrs(tokens.LearnAttrsStop(pexs, c.toks, core.StopFunc(ctx)), attrCap)
	out := make([]core.Program, len(attrs))
	for i, p := range attrs {
		out[i] = endPairProg{p: p}
	}
	return out
}

// ---- adapters to the engine interfaces ----

type seqProgram struct{ p core.Program }

func (sp seqProgram) ExtractSeq(r region.Region) ([]region.Region, error) {
	return sp.extract(r, nil)
}

// ExtractSeqCaptured runs the program with an execution capture attached,
// recording the operator path of every emitted region (provenance).
func (sp seqProgram) ExtractSeqCaptured(r region.Region, c *core.ExecCapture) ([]region.Region, error) {
	return sp.extract(r, c)
}

func (sp seqProgram) extract(r region.Region, c *core.ExecCapture) ([]region.Region, error) {
	in, ok := r.(NodeRegion)
	if !ok {
		return nil, fmt.Errorf("weblang: input is %T, want a node region", r)
	}
	st := core.NewState(in)
	if c != nil {
		st = st.WithCapture(c)
	}
	v, err := sp.p.Exec(st)
	if err != nil {
		return nil, err
	}
	seq, err := core.AsSeq(v)
	if err != nil {
		return nil, err
	}
	out := make([]region.Region, len(seq))
	for i, e := range seq {
		er, ok := e.(region.Region)
		if !ok {
			return nil, fmt.Errorf("weblang: program produced %T, want region", e)
		}
		out[i] = er
	}
	return out, nil
}

func (sp seqProgram) String() string { return sp.p.String() }

type regProgram struct{ p core.Program }

func (rp regProgram) Extract(r region.Region) (region.Region, error) {
	return rp.extract(r, nil)
}

// ExtractCaptured runs the program with an execution capture attached.
func (rp regProgram) ExtractCaptured(r region.Region, c *core.ExecCapture) (region.Region, error) {
	return rp.extract(r, c)
}

func (rp regProgram) extract(r region.Region, c *core.ExecCapture) (region.Region, error) {
	st := core.NewState(r)
	if c != nil {
		st = st.WithCapture(c)
	}
	v, err := rp.p.Exec(st)
	if err != nil {
		return nil, nil // null instance
	}
	er, ok := v.(region.Region)
	if !ok {
		return nil, fmt.Errorf("weblang: program produced %T, want region", v)
	}
	return er, nil
}

func (rp regProgram) String() string { return rp.p.String() }

func wrapRegionPrograms(ps []core.Program) []engine.RegionProgram {
	out := make([]engine.RegionProgram, len(ps))
	for i, p := range ps {
		out[i] = regProgram{p}
	}
	return out
}
