package weblang

import (
	"flashextract/internal/core"
	"flashextract/internal/prefilter"
)

// This file exposes Lweb programs to the batch prefilter. Position
// programs evaluate over entity-decoded text content concatenated across
// text nodes, so only the weakened (per-byte, entity-widened) conditions
// are sound there; XPath structure, by contrast, pins start tags and
// attribute literals that must appear in the raw HTML source.

// CoreProgram exposes the compiled combinator tree for static analysis.
func (p seqProgram) CoreProgram() core.Program { return p.p }

// CoreProgram exposes the compiled combinator tree for static analysis.
func (p regProgram) CoreProgram() core.Program { return p.p }

// AdmissionCond: every selected node embeds the path's tags/attributes.
func (p xpathsProg) AdmissionCond() prefilter.Cond {
	return prefilter.CondXPath(p.path)
}

// AdmissionCond: the path must select at least one node.
func (p xpathRegionProg) AdmissionCond() prefilter.Cond {
	return prefilter.CondXPath(p.path)
}

// AdmissionCond: both span attributes must evaluate on the node's text.
func (p nodeSpanPairProg) AdmissionCond() prefilter.Cond {
	return prefilter.And(prefilter.CondAttrHTML(p.p1), prefilter.CondAttrHTML(p.p2))
}

// AdmissionCond: a PosSeq position requires its regex pair to match the
// text content.
func (p posSeqProg) AdmissionCond() prefilter.Cond {
	return prefilter.CondRegexPairHTML(p.rr)
}

// AdmissionCond: the end attribute must evaluate on the text suffix.
func (p startPairProg) AdmissionCond() prefilter.Cond {
	return prefilter.CondAttrHTML(p.p)
}

// AdmissionCond: the start attribute must evaluate on the text prefix.
func (p endPairProg) AdmissionCond() prefilter.Cond {
	return prefilter.CondAttrHTML(p.p)
}

// AdmissionCond: both span attributes must evaluate on the text.
func (p spanPairProg) AdmissionCond() prefilter.Cond {
	return prefilter.And(prefilter.CondAttrHTML(p.p1), prefilter.CondAttrHTML(p.p2))
}
