// Package weblang implements Lweb, the FlashExtract data-extraction DSL
// for webpages (Fig. 8 of the paper), together with its learners. A leaf
// region is either an HTML node or a pair of character positions within
// the document's text content; node sequences are selected by learned
// XPath expressions (wrapper induction), and intra-node substrings reuse
// the token/regex position machinery of the text instantiation.
package weblang

import (
	"fmt"
	"strings"
	"sync"

	"flashextract/internal/engine"
	"flashextract/internal/htmldom"
	"flashextract/internal/region"
	"flashextract/internal/tokens"
)

// Document is a parsed webpage.
type Document struct {
	// Root is the document node of the parsed page.
	Root *htmldom.Node
	// Text is the page's global text content; span regions index into it.
	Text string
	lang *lang

	// cache memoizes token boundaries, regex-pair position sequences, and
	// learning indexes over ranges of Text (node text contents are exact
	// slices of it); program execution and the learners share it.
	cache *tokens.Cache

	// tagCounts maps element tags to their document-wide occurrence count,
	// computed lazily on first use; the abstraction transformers use it as a
	// sound upper bound on XPath result counts.
	tagOnce   sync.Once
	tagCounts map[string]int
}

// tagCount returns the number of element nodes in the document with the
// given (lowercase) tag. The count is over the whole document, so it bounds
// an XPath's results from any context node.
func (d *Document) tagCount(tag string) int {
	d.tagOnce.Do(func() {
		d.tagCounts = make(map[string]int)
		var walk func(n *htmldom.Node)
		walk = func(n *htmldom.Node) {
			if n.Type == htmldom.ElementNode {
				d.tagCounts[n.Tag]++
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		if d.Root != nil {
			walk(d.Root)
		}
	})
	return d.tagCounts[tag]
}

// NewDocument parses an HTML page.
func NewDocument(html string) (*Document, error) {
	root, err := htmldom.Parse(html)
	if err != nil {
		return nil, err
	}
	d := &Document{Root: root, Text: root.TextContent()}
	d.lang = &lang{}
	d.cache = tokens.NewCache(d.Text)
	return d, nil
}

// EvalCache returns the document's evaluation cache.
func (d *Document) EvalCache() *tokens.Cache { return d.cache }

// CacheStats reports the evaluation cache's counters (engine.CacheStatser).
func (d *Document) CacheStats() engine.CacheStats {
	s := d.cache.Stats()
	return engine.CacheStats{Hits: s.Hits, Misses: s.Misses, Entries: s.Entries, Evictions: s.Evictions, ApproxBytes: s.ApproxBytes}
}

// LimitCacheBytes caps the evaluation cache's approximate resident bytes;
// the synthesis driver calls it when the budget sets MaxCacheBytes.
func (d *Document) LimitCacheBytes(n int64) { d.cache.SetMaxBytes(n) }

// MustNewDocument is NewDocument for statically known pages.
func MustNewDocument(html string) *Document {
	d, err := NewDocument(html)
	if err != nil {
		panic(err)
	}
	return d
}

// WholeRegion returns the node region of the document root.
func (d *Document) WholeRegion() region.Region {
	return NodeRegion{Doc: d, Node: d.Root}
}

// Language returns the Lweb DSL.
func (d *Document) Language() engine.Language { return d.lang }

// NodeOf returns the node region for an HTML node of this document.
func (d *Document) NodeOf(n *htmldom.Node) NodeRegion {
	return NodeRegion{Doc: d, Node: n}
}

// FindNode returns the node region of the first descendant element
// accepted by the predicate, or ok=false.
func (d *Document) FindNode(pred func(*htmldom.Node) bool) (NodeRegion, bool) {
	n := d.Root.Find(pred)
	if n == nil {
		return NodeRegion{}, false
	}
	return NodeRegion{Doc: d, Node: n}, true
}

// FindSpan returns the span region of the n-th occurrence (0-based) of sub
// in the document text, or ok=false.
func (d *Document) FindSpan(sub string, n int) (SpanRegion, bool) {
	from := 0
	for i := 0; ; i++ {
		j := strings.Index(d.Text[from:], sub)
		if j < 0 {
			return SpanRegion{}, false
		}
		j += from
		if i == n {
			return SpanRegion{Doc: d, Start: j, End: j + len(sub)}, true
		}
		from = j + 1
	}
}

// NodeRegion is a region denoting an HTML node.
type NodeRegion struct {
	Doc  *Document
	Node *htmldom.Node
}

var _ region.Region = NodeRegion{}

// textRange returns the global text range of any weblang region.
func textRange(r region.Region) (doc *Document, lo, hi int, ok bool) {
	switch v := r.(type) {
	case NodeRegion:
		return v.Doc, v.Node.TextStart, v.Node.TextEnd, true
	case SpanRegion:
		return v.Doc, v.Start, v.End, true
	default:
		return nil, 0, 0, false
	}
}

// Contains reports nesting: a node contains its descendants and any span
// within its text range.
func (r NodeRegion) Contains(other region.Region) bool {
	switch o := other.(type) {
	case NodeRegion:
		return o.Doc == r.Doc && r.Node.IsAncestorOf(o.Node)
	case SpanRegion:
		return o.Doc == r.Doc && r.Node.TextStart <= o.Start && o.End <= r.Node.TextEnd
	default:
		return false
	}
}

// Overlaps reports whether the regions share document content.
func (r NodeRegion) Overlaps(other region.Region) bool {
	switch o := other.(type) {
	case NodeRegion:
		if o.Doc != r.Doc {
			return false
		}
		return r.Node.IsAncestorOf(o.Node) || o.Node.IsAncestorOf(r.Node)
	case SpanRegion:
		return o.Doc == r.Doc && r.Node.TextStart < o.End && o.Start < r.Node.TextEnd
	default:
		return false
	}
}

// Less orders regions in document order; outer regions come first.
func (r NodeRegion) Less(other region.Region) bool {
	switch o := other.(type) {
	case NodeRegion:
		return r.Node.Index < o.Node.Index
	case SpanRegion:
		if r.Node.TextStart != o.Start {
			return r.Node.TextStart < o.Start
		}
		return true // the node (outer) before a span at the same start
	default:
		return false
	}
}

// Value returns the node's text content.
func (r NodeRegion) Value() string { return r.Node.TextContent() }

// SourceSpan reports the node's range in the document's global
// text-content layer (not the raw HTML).
func (r NodeRegion) SourceSpan() region.SourceSpan {
	return region.SourceSpan{Space: "text", Start: r.Node.TextStart, End: r.Node.TextEnd}
}

func (r NodeRegion) String() string {
	return fmt.Sprintf("<%s #%d>", r.Node.Tag, r.Node.Index)
}

// SpanRegion is a region denoting a pair of character positions within the
// document's global text content.
type SpanRegion struct {
	Doc        *Document
	Start, End int
}

var _ region.Region = SpanRegion{}

// Contains reports range nesting.
func (r SpanRegion) Contains(other region.Region) bool {
	doc, lo, hi, ok := textRange(other)
	return ok && doc == r.Doc && r.Start <= lo && hi <= r.End
}

// Overlaps reports range intersection.
func (r SpanRegion) Overlaps(other region.Region) bool {
	doc, lo, hi, ok := textRange(other)
	return ok && doc == r.Doc && r.Start < hi && lo < r.End
}

// Interval exposes the span as a half-open interval of the document's
// global text (core.Interval): span equality is document+endpoint equality
// and conflictOverlap between spans is strict range intersection, so
// all-span sequences get the O(n log n) overlap sweep. NodeRegion must not
// implement this — distinct nested nodes can share one text range yet
// overlap — and mixed node/span outputs therefore keep the exact pairwise
// check.
func (r SpanRegion) Interval() (space any, start, end int) {
	return r.Doc, r.Start, r.End
}

// Less orders spans by text position; larger spans first at equal starts.
func (r SpanRegion) Less(other region.Region) bool {
	switch o := other.(type) {
	case SpanRegion:
		if r.Start != o.Start {
			return r.Start < o.Start
		}
		return r.End > o.End
	case NodeRegion:
		return r.Start < o.Node.TextStart
	default:
		return false
	}
}

// Value returns the text of the span.
func (r SpanRegion) Value() string { return r.Doc.Text[r.Start:r.End] }

// SourceSpan reports the span's range in the document's global
// text-content layer: slicing Doc.Text at [Start, End) reproduces Value.
func (r SpanRegion) SourceSpan() region.SourceSpan {
	return region.SourceSpan{Space: "text", Start: r.Start, End: r.End}
}

func (r SpanRegion) String() string { return fmt.Sprintf("txt[%d,%d)", r.Start, r.End) }

// deepestNodeContaining returns the deepest element node whose text range
// contains [lo, hi).
func deepestNodeContaining(d *Document, lo, hi int) *htmldom.Node {
	best := d.Root
	cur := d.Root
	for {
		descended := false
		for _, c := range cur.Children {
			if c.Type != htmldom.ElementNode {
				continue
			}
			if c.TextStart <= lo && hi <= c.TextEnd {
				cur = c
				best = c
				descended = true
				break
			}
		}
		if !descended {
			return best
		}
	}
}

// Span returns the deepest element node whose text content covers both
// regions, enabling bottom-up structure inference (see engine.Spanner):
// the common container of a title node and its author spans is the
// publication element.
func (d *Document) Span(a, b region.Region) (region.Region, error) {
	da, lo1, hi1, ok1 := textRange(a)
	db, lo2, hi2, ok2 := textRange(b)
	if !ok1 || !ok2 || da != d || db != d {
		return nil, fmt.Errorf("weblang: Span requires two regions of this document")
	}
	lo, hi := lo1, hi1
	if lo2 < lo {
		lo = lo2
	}
	if hi2 > hi {
		hi = hi2
	}
	node := deepestNodeContaining(d, lo, hi)
	// Nodes are only comparable containers when they are elements; for
	// node inputs also require ancestry so empty-text nodes stay covered.
	if na, isNode := a.(NodeRegion); isNode {
		if nb, isNode2 := b.(NodeRegion); isNode2 {
			anc := na.Node
			for anc != nil && !anc.IsAncestorOf(nb.Node) {
				anc = anc.Parent
			}
			if anc != nil && node.IsAncestorOf(anc) {
				node = anc
			}
		}
	}
	return NodeRegion{Doc: d, Node: node}, nil
}
