package weblang

import (
	"flashextract/internal/abstract"
	"flashextract/internal/core"
	"flashextract/internal/tokens"
	"flashextract/internal/xpath"
)

// Abstraction transformers of the Lweb leaf programs (see internal/core's
// AbstractEval seam and DESIGN.md "Abstraction-guided pruning"). XPath
// programs are bounded by document-wide tag counts; token-position programs
// reuse the same regex-pair match bounds as the text instantiation, over
// the document's global text content. Every transformer soundly
// over-approximates the concrete semantics; documents without an evaluation
// cache degrade to ⊤.

// ---- XPath programs ----

// pathCount bounds how many nodes a path can select under any context node
// of the document: exactly zero when a concrete-tag step names a tag the
// document does not contain anywhere (Select empties mid-walk), otherwise
// at most the document-wide count of the final step's tag.
func pathCount(d *Document, p *xpath.Path) abstract.Interval {
	if d == nil || p == nil {
		return abstract.TopInterval()
	}
	if len(p.Steps) == 0 {
		// The empty path selects the context node itself.
		return abstract.Exact(1)
	}
	for _, s := range p.Steps {
		if s.Tag != "*" && d.tagCount(s.Tag) == 0 {
			return abstract.Exact(0)
		}
	}
	if last := p.Steps[len(p.Steps)-1]; last.Tag != "*" {
		return abstract.Range(0, d.tagCount(last.Tag))
	}
	return abstract.TopInterval()
}

// AbstractSeq of XPaths(R0, path). NodeRegion does not implement
// core.Interval, so the span carries no rejection power; only the count
// bound does.
func (p xpathsProg) AbstractSeq(_ *abstract.Ctx, st core.State) abstract.Seq {
	r0, err := inputNode(st)
	if err != nil {
		return abstract.InfeasibleSeq()
	}
	return abstract.Seq{Count: pathCount(r0.Doc, p.path), Span: abstract.TopSpan()}
}

// AbstractScalar of XPath(R0, path): infeasible when the path provably
// selects nothing (Exec then returns ErrNoMatch on every input).
func (p xpathRegionProg) AbstractScalar(_ *abstract.Ctx, st core.State) abstract.Scalar {
	r0, err := inputNode(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	if !pathCount(r0.Doc, p.path).AtLeast(1) {
		return abstract.InfeasibleScalar()
	}
	return abstract.TopScalar()
}

// ---- token-position programs ----

// AbstractSeq of PosSeq(R0, rr) over the input region's text content.
// Outputs are positions, so the span carries no information.
func (p posSeqProg) AbstractSeq(ac *abstract.Ctx, st core.State) abstract.Seq {
	doc, lo, hi, err := inputTextRange(st)
	if err != nil {
		return abstract.InfeasibleSeq()
	}
	return abstract.Seq{Count: pairCount(ac, doc, lo, hi, p.rr), Span: abstract.TopSpan()}
}

// RefineAbstract of PosSeq records the exact match count of the failing
// state's input range — cache-hot, because the concrete execution that just
// rejected the candidate computed the very same position sequence.
func (p posSeqProg) RefineAbstract(ac *abstract.Ctx, st core.State) {
	doc, lo, hi, err := inputTextRange(st)
	if err != nil || doc.cache == nil {
		return
	}
	ps := positionsIn(doc, lo, hi, p.rr)
	ac.Refine(abstract.Key{Lo: lo, Hi: hi, Fp: tokens.PairFingerprint(p.rr)}, len(ps))
}

// AbstractScalar of λx: Pair(Pos(x.Val, p1), Pos(x.Val, p2)): infeasible
// when either attribute provably has no position in the node's text; the
// output span lies within the node's text range.
func (p nodeSpanPairProg) AbstractScalar(ac *abstract.Ctx, st core.State) abstract.Scalar {
	v, ok := st.Lookup(lambdaVar)
	if !ok {
		return abstract.InfeasibleScalar()
	}
	x, ok := v.(NodeRegion)
	if !ok {
		return abstract.InfeasibleScalar()
	}
	lo, hi := x.Node.TextStart, x.Node.TextEnd
	if !attrFeasible(ac, x.Doc, lo, hi, p.p1) || !attrFeasible(ac, x.Doc, lo, hi, p.p2) {
		return abstract.InfeasibleScalar()
	}
	return abstract.Scalar{Span: abstract.NewSpan(x.Doc, lo, hi)}
}

// AbstractScalar of λx: Pair(x, Pos(R0[x:], p)): the output span starts at
// x and ends within the input range.
func (p startPairProg) AbstractScalar(ac *abstract.Ctx, st core.State) abstract.Scalar {
	doc, lo, hi, err := inputTextRange(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	v, _ := st.Lookup(lambdaVar)
	x, ok := v.(int)
	if !ok || x < lo || x > hi {
		return abstract.InfeasibleScalar()
	}
	if !attrFeasible(ac, doc, x, hi, p.p) {
		return abstract.InfeasibleScalar()
	}
	return abstract.Scalar{Span: abstract.NewSpan(doc, x, hi)}
}

// AbstractScalar of λx: Pair(Pos(R0[:x], p), x): the mirror of
// startPairProg.
func (p endPairProg) AbstractScalar(ac *abstract.Ctx, st core.State) abstract.Scalar {
	doc, lo, hi, err := inputTextRange(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	v, _ := st.Lookup(lambdaVar)
	x, ok := v.(int)
	if !ok || x < lo || x > hi {
		return abstract.InfeasibleScalar()
	}
	if !attrFeasible(ac, doc, lo, x, p.p) {
		return abstract.InfeasibleScalar()
	}
	return abstract.Scalar{Span: abstract.NewSpan(doc, lo, x)}
}

// AbstractScalar of the N2 program Pair(Pos(R0, p1), Pos(R0, p2)).
func (p spanPairProg) AbstractScalar(ac *abstract.Ctx, st core.State) abstract.Scalar {
	doc, lo, hi, err := inputTextRange(st)
	if err != nil {
		return abstract.InfeasibleScalar()
	}
	if !attrFeasible(ac, doc, lo, hi, p.p1) || !attrFeasible(ac, doc, lo, hi, p.p2) {
		return abstract.InfeasibleScalar()
	}
	return abstract.Scalar{Span: abstract.NewSpan(doc, lo, hi)}
}

// ---- shared attribute feasibility (weblang twin of textlang's) ----

// attrFeasible reports whether a position attribute can possibly resolve
// over Text[lo:hi]: AbsPos by pure range arithmetic, RegPos by comparing
// |K| against the match-count upper bound. true means "cannot disprove".
func attrFeasible(ac *abstract.Ctx, d *Document, lo, hi int, a tokens.Attr) bool {
	switch v := a.(type) {
	case tokens.AbsPos:
		k := v.K
		if k < 0 {
			k = (hi - lo) + k + 1
		}
		return k >= 0 && k <= hi-lo
	case tokens.RegPos:
		return pairCount(ac, d, lo, hi, v.RR).AtLeast(absK(v.K)) && v.K != 0
	}
	return true
}

// pairCount returns the count interval of rr's matches in Text[lo:hi]: the
// refinement store's exact fact when present, else the boundary-anchored
// upper bound, else ⊤ for cache-less documents.
func pairCount(ac *abstract.Ctx, d *Document, lo, hi int, rr tokens.RegexPair) abstract.Interval {
	if d == nil || d.cache == nil {
		return abstract.TopInterval()
	}
	if n, ok := ac.Exact(abstract.Key{Lo: lo, Hi: hi, Fp: tokens.PairFingerprint(rr)}); ok {
		return abstract.Exact(n)
	}
	cntLo, cntHi, exact := d.cache.PairCountBounds(lo, hi, rr)
	if exact {
		return abstract.Exact(cntHi)
	}
	return abstract.Range(cntLo, cntHi)
}

func absK(k int) int {
	if k < 0 {
		return -k
	}
	return k
}

// Interface conformance: the compiler pins every transformer to the seam.
var (
	_ core.AbstractSeqProgram    = xpathsProg{}
	_ core.AbstractScalarProgram = xpathRegionProg{}
	_ core.AbstractSeqProgram    = posSeqProg{}
	_ core.AbstractRefiner       = posSeqProg{}
	_ core.AbstractScalarProgram = nodeSpanPairProg{}
	_ core.AbstractScalarProgram = startPairProg{}
	_ core.AbstractScalarProgram = endPairProg{}
	_ core.AbstractScalarProgram = spanPairProg{}
)
