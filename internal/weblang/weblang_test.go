package weblang

import (
	"context"
	"strings"
	"testing"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/htmldom"
	"flashextract/internal/region"
)

// scholarPage mirrors the paper's Ex. 2: a publication list where each
// entry has a title and a comma-separated author list inside a single div.
const scholarPage = `<html><body>
<div id="results">
  <div class="pub">
    <a class="title">Program Synthesis A</a>
    <div class="authors">M Vaziri, S Gulwani, V Le</div>
    <span class="venue">PLDI 2014</span><span class="cites">Cited by 120</span>
  </div>
  <div class="pub">
    <a class="title">Type Systems B</a>
    <div class="authors">A One, B Two</div>
    <span class="venue">POPL 2013</span><span class="cites">Cited by 85</span>
  </div>
  <div class="pub">
    <a class="title">Verification C</a>
    <div class="authors">C Three, M Vaziri</div>
    <span class="venue">CAV 2012</span><span class="cites">Cited by 40</span>
  </div>
</div>
</body></html>`

// shopPage mirrors the SXPath benchmark tasks: product info regions,
// product name elements, price elements, and the price number substring.
const shopPage = `<html><body>
<div class="listing">
  <div class="item"><h2 class="pname">Widget</h2><div class="price">Sale: $9.99 USD</div></div>
  <div class="item"><h2 class="pname">Gadget</h2><div class="price">Sale: $19.50 USD</div></div>
  <div class="item"><h2 class="pname">Doohickey</h2><div class="price">Sale: $3.25 USD</div></div>
</div>
</body></html>`

func nodeByClassText(t *testing.T, d *Document, class, text string) NodeRegion {
	t.Helper()
	n, ok := d.FindNode(func(n *htmldom.Node) bool {
		return n.HasClass(class) && strings.Contains(n.TextContent(), text)
	})
	if !ok {
		t.Fatalf("no node with class %q containing %q", class, text)
	}
	return n
}

func extractSeq(t *testing.T, p engine.SeqRegionProgram, in region.Region) []region.Region {
	t.Helper()
	out, err := p.ExtractSeq(in)
	if err != nil {
		t.Fatalf("ExtractSeq(%s): %v", p, err)
	}
	return out
}

func regionValues(rs []region.Region) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = strings.TrimSpace(r.Value())
	}
	return out
}

// ---- region mechanics ----

func TestNodeRegionContainsAndOverlap(t *testing.T) {
	d := MustNewDocument(scholarPage)
	results := nodeByClassText(t, d, "pub", "Program Synthesis A")
	title := nodeByClassText(t, d, "title", "Program Synthesis A")
	other := nodeByClassText(t, d, "pub", "Type Systems B")
	if !results.Contains(title) || title.Contains(results) {
		t.Fatal("node containment broken")
	}
	if !results.Overlaps(title) || results.Overlaps(other) {
		t.Fatal("node overlap broken")
	}
	if !results.Less(other) {
		t.Fatal("document order broken")
	}
	if !d.WholeRegion().Contains(results) {
		t.Fatal("whole region should contain everything")
	}
}

func TestSpanRegionMechanics(t *testing.T) {
	d := MustNewDocument(scholarPage)
	authors := nodeByClassText(t, d, "authors", "M Vaziri, S Gulwani")
	vaziri, ok := d.FindSpan("M Vaziri", 0)
	if !ok {
		t.Fatal("span not found")
	}
	if !authors.Contains(vaziri) {
		t.Fatal("node should contain the span in its text")
	}
	if vaziri.Value() != "M Vaziri" {
		t.Fatalf("span value = %q", vaziri.Value())
	}
	gulwani, _ := d.FindSpan("S Gulwani", 0)
	if vaziri.Overlaps(gulwani) {
		t.Fatal("disjoint spans should not overlap")
	}
	if !vaziri.Less(gulwani) {
		t.Fatal("span order broken")
	}
	if !vaziri.Overlaps(authors) {
		t.Fatal("span/node overlap broken")
	}
}

func TestDeepestNodeContaining(t *testing.T) {
	d := MustNewDocument(scholarPage)
	sp, _ := d.FindSpan("S Gulwani", 0)
	n := deepestNodeContaining(d, sp.Start, sp.End)
	if !n.HasClass("authors") {
		t.Fatalf("deepest node = %s", n.Tag)
	}
}

// ---- node-sequence extraction (titles, products) ----

func TestLearnTitleNodes(t *testing.T) {
	d := MustNewDocument(scholarPage)
	lang := d.Language()
	t1 := nodeByClassText(t, d, "title", "Program Synthesis A")
	t2 := nodeByClassText(t, d, "title", "Type Systems B")
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{t1, t2},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	got := regionValues(extractSeq(t, progs[0], d.WholeRegion()))
	want := "Program Synthesis A,Type Systems B,Verification C"
	if strings.Join(got, ",") != want {
		t.Fatalf("top program %s extracted %v", progs[0], got)
	}
}

func TestLearnProductRegions(t *testing.T) {
	d := MustNewDocument(shopPage)
	lang := d.Language()
	i1 := nodeByClassText(t, d, "item", "Widget")
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{i1},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	got := extractSeq(t, progs[0], d.WholeRegion())
	if len(got) != 3 {
		t.Fatalf("top program %s extracted %d regions, want 3", progs[0], len(got))
	}
}

// ---- intra-node substring sequences (the author list of Ex. 2) ----

func TestLearnAuthorsWithinAuthorGroup(t *testing.T) {
	// As in the paper's Ex. 2, the comma-separated author list lives in a
	// single div (the "yellow" author group); individual authors are
	// learned relative to it. The user ends up giving all three authors of
	// the first publication (the last author is not comma-terminated, so
	// two examples leave it out — the refinement step of §3).
	d := MustNewDocument(scholarPage)
	lang := d.Language()
	div1 := nodeByClassText(t, d, "authors", "M Vaziri, S Gulwani")
	a1, _ := d.FindSpan("M Vaziri", 0)
	a2, _ := d.FindSpan("S Gulwani", 0)
	a3, _ := d.FindSpan("V Le", 0)
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    div1,
		Positive: []region.Region{a1, a2, a3},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	got := regionValues(extractSeq(t, progs[0], div1))
	want := []string{"M Vaziri", "S Gulwani", "V Le"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("top program %s extracted %v, want %v", progs[0], got, want)
	}
	// The same program must extract the authors of another publication.
	div2 := nodeByClassText(t, d, "authors", "A One")
	got2 := regionValues(extractSeq(t, progs[0], div2))
	want2 := []string{"A One", "B Two"}
	if strings.Join(got2, "|") != strings.Join(want2, "|") {
		t.Fatalf("on pub2, %s extracted %v, want %v", progs[0], got2, want2)
	}
}

func TestLearnAuthorsTwoExamplesStaysSound(t *testing.T) {
	// With only two comma-terminated examples, every returned program must
	// still cover the examples (the user refines from there).
	d := MustNewDocument(scholarPage)
	lang := d.Language()
	div1 := nodeByClassText(t, d, "authors", "M Vaziri, S Gulwani")
	a1, _ := d.FindSpan("M Vaziri", 0)
	a2, _ := d.FindSpan("S Gulwani", 0)
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    div1,
		Positive: []region.Region{a1, a2},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	for _, p := range progs {
		got := extractSeq(t, p, div1)
		found := 0
		for _, r := range got {
			if r == region.Region(a1) || r == region.Region(a2) {
				found++
			}
		}
		if found != 2 {
			t.Fatalf("program %s does not cover the examples: %v", p, regionValues(got))
		}
	}
}

// ---- region programs (struct fields) ----

func TestLearnTitleWithinPublication(t *testing.T) {
	d := MustNewDocument(scholarPage)
	lang := d.Language()
	pub1 := nodeByClassText(t, d, "pub", "Program Synthesis A")
	pub2 := nodeByClassText(t, d, "pub", "Type Systems B")
	t1 := nodeByClassText(t, d, "title", "Program Synthesis A")
	progs := lang.SynthesizeRegion(context.Background(), []engine.RegionExample{{Input: pub1, Output: t1}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	r, err := progs[0].Extract(pub2)
	if err != nil || r == nil {
		t.Fatalf("Extract: %v, %v", r, err)
	}
	if strings.TrimSpace(r.Value()) != "Type Systems B" {
		t.Fatalf("program %s extracted %q", progs[0], r.Value())
	}
}

func TestLearnPriceNumberSpan(t *testing.T) {
	d := MustNewDocument(shopPage)
	lang := d.Language()
	price1 := nodeByClassText(t, d, "price", "$9.99")
	price2 := nodeByClassText(t, d, "price", "$19.50")
	num1, ok := d.FindSpan("9.99", 0)
	if !ok {
		t.Fatal("span not found")
	}
	progs := lang.SynthesizeRegion(context.Background(), []engine.RegionExample{{Input: price1, Output: num1}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	r, err := progs[0].Extract(price2)
	if err != nil || r == nil {
		t.Fatalf("Extract: %v, %v", r, err)
	}
	if r.Value() != "19.50" {
		t.Fatalf("program %s extracted %q, want 19.50", progs[0], r.Value())
	}
}

func TestRegionProgramNullWhenAbsent(t *testing.T) {
	d := MustNewDocument(scholarPage)
	lang := d.Language()
	pub1 := nodeByClassText(t, d, "pub", "Program Synthesis A")
	v1 := nodeByClassText(t, d, "venue", "PLDI 2014")
	progs := lang.SynthesizeRegion(context.Background(), []engine.RegionExample{{Input: pub1, Output: v1}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	// Run against a node with no venue span at all.
	title := nodeByClassText(t, d, "title", "Program Synthesis A")
	r, err := progs[0].Extract(title)
	if err != nil {
		t.Fatalf("Extract error: %v", err)
	}
	if r != nil {
		if nr, isNode := r.(NodeRegion); isNode && nr.Node.HasClass("venue") {
			t.Fatalf("extracted a venue from inside a title: %v", r)
		}
	}
}

// ---- negative examples ----

func TestNegativeExampleExcludesAds(t *testing.T) {
	page := `<html><body>
<div class="row"><span>keep1</span></div>
<div class="row"><span>skip</span></div>
<div class="row"><span>keep2</span></div>
<div class="row"><span>keep3</span></div>
</body></html>`
	d := MustNewDocument(page)
	lang := d.Language()
	rows := d.Root.FindAll(func(n *htmldom.Node) bool { return n.HasClass("row") })
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{d.NodeOf(rows[0]), d.NodeOf(rows[2])},
		Negative: []region.Region{d.NodeOf(rows[1])},
	}})
	for _, p := range progs {
		for _, r := range extractSeq(t, p, d.WholeRegion()) {
			if r.Overlaps(d.NodeOf(rows[1])) {
				t.Fatalf("program %s extracts the negative region", p)
			}
		}
	}
}

// ---- cross-document transfer ----

func TestProgramTransfersToAnotherScholarPage(t *testing.T) {
	d := MustNewDocument(scholarPage)
	lang := d.Language()
	t1 := nodeByClassText(t, d, "title", "Program Synthesis A")
	t2 := nodeByClassText(t, d, "title", "Type Systems B")
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{t1, t2},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	other := MustNewDocument(`<html><body>
<div id="results">
  <div class="pub"><a class="title">New Paper X</a><div class="authors">X, Y</div><span class="venue">V1</span><span class="cites">Cited by 1</span></div>
  <div class="pub"><a class="title">New Paper Y</a><div class="authors">Z</div><span class="venue">V2</span><span class="cites">Cited by 2</span></div>
</div>
</body></html>`)
	got := regionValues(extractSeq(t, progs[0], other.WholeRegion()))
	if strings.Join(got, ",") != "New Paper X,New Paper Y" {
		t.Fatalf("transfer extracted %v", got)
	}
}

// ---- degenerate inputs ----

func TestSynthesizeEmptyInputs(t *testing.T) {
	var l lang
	if got := l.SynthesizeSeqRegion(context.Background(), nil); got != nil {
		t.Fatal("expected nil")
	}
	if got := l.SynthesizeRegion(context.Background(), nil); got != nil {
		t.Fatal("expected nil")
	}
}

func TestSynthesizeRegionRejectsOutsideOutput(t *testing.T) {
	d := MustNewDocument(scholarPage)
	var l lang
	pub1 := nodeByClassText(t, d, "pub", "Program Synthesis A")
	t2 := nodeByClassText(t, d, "title", "Type Systems B")
	if got := l.SynthesizeRegion(context.Background(), []engine.RegionExample{{Input: pub1, Output: t2}}); got != nil {
		t.Fatal("output outside input must fail")
	}
}

func TestSeqProgramStringMentionsXPath(t *testing.T) {
	d := MustNewDocument(shopPage)
	lang := d.Language()
	i1 := nodeByClassText(t, d, "item", "Widget")
	i2 := nodeByClassText(t, d, "item", "Gadget")
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{i1, i2},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	if !strings.Contains(progs[0].String(), "XPaths") {
		t.Fatalf("String = %q", progs[0].String())
	}
}

// ---- span sequences across element nodes (SeqPairMap) ----

func TestLearnPriceNumberSequence(t *testing.T) {
	// "Widget" and "Gadget" both end in 't', so two examples let an
	// overfit left-context win; the user adds the third price (the
	// refinement loop of §3) and the program generalizes.
	d := MustNewDocument(shopPage)
	lang := d.Language()
	n1, _ := d.FindSpan("9.99", 0)
	n2, _ := d.FindSpan("19.50", 0)
	n3, _ := d.FindSpan("3.25", 0)
	progs := lang.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
		Input:    d.WholeRegion(),
		Positive: []region.Region{n1, n2, n3},
	}})
	if len(progs) == 0 {
		t.Fatal("no programs")
	}
	got := regionValues(extractSeq(t, progs[0], d.WholeRegion()))
	want := []string{"9.99", "19.50", "3.25"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("top program %s extracted %v, want %v", progs[0], got, want)
	}
}

// ---- serialization round trips ----

func TestSeqProgramSerializationRoundTrip(t *testing.T) {
	d := MustNewDocument(shopPage)
	l := d.Language().(*lang)
	for name, positives := range map[string][]region.Region{
		"nodes": {nodeByClassText(t, d, "pname", "Widget"), nodeByClassText(t, d, "pname", "Gadget")},
		"spans": {mustSpan(t, d, "9.99"), mustSpan(t, d, "19.50")},
	} {
		progs := l.SynthesizeSeqRegion(context.Background(), []engine.SeqRegionExample{{
			Input:    d.WholeRegion(),
			Positive: positives,
		}})
		if len(progs) == 0 {
			t.Fatalf("%s: no programs", name)
		}
		data, err := l.MarshalSeqProgram(progs[0])
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back, err := l.UnmarshalSeqProgram(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		origOut := regionValues(extractSeq(t, progs[0], d.WholeRegion()))
		backOut := regionValues(extractSeq(t, back, d.WholeRegion()))
		if strings.Join(origOut, "|") != strings.Join(backOut, "|") {
			t.Fatalf("%s: round trip changed behaviour: %v vs %v", name, origOut, backOut)
		}
	}
}

func TestRegionProgramSerializationRoundTrip(t *testing.T) {
	d := MustNewDocument(shopPage)
	l := d.Language().(*lang)
	item := nodeByClassText(t, d, "item", "Widget")
	item2 := nodeByClassText(t, d, "item", "Gadget")
	for name, ex := range map[string]engine.RegionExample{
		"node": {Input: item, Output: nodeByClassText(t, d, "pname", "Widget")},
		"span": {Input: nodeByClassText(t, d, "price", "9.99"), Output: mustSpan(t, d, "9.99")},
	} {
		progs := l.SynthesizeRegion(context.Background(), []engine.RegionExample{ex})
		if len(progs) == 0 {
			t.Fatalf("%s: no programs", name)
		}
		data, err := l.MarshalRegionProgram(progs[0])
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back, err := l.UnmarshalRegionProgram(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		var in region.Region = item2
		if name == "span" {
			in = nodeByClassText(t, d, "price", "19.50")
		}
		r1, err1 := progs[0].Extract(in)
		r2, err2 := back.Extract(in)
		if (err1 == nil) != (err2 == nil) || (r1 != nil) != (r2 != nil) {
			t.Fatalf("%s: round trip changed behaviour", name)
		}
		if r1 != nil && r1.Value() != r2.Value() {
			t.Fatalf("%s: values differ: %q vs %q", name, r1.Value(), r2.Value())
		}
	}
}

func TestDecodeLeafErrors(t *testing.T) {
	for _, spec := range []core.ProgramSpec{
		{Op: "web.unknown"},
		{Op: "web.xpath", Attrs: map[string]string{"path": "no-slash"}},
		{Op: "web.posSeq", Attrs: map[string]string{"rr": "junk"}},
		{Op: "web.startPair", Attrs: map[string]string{"p": "junk"}},
		{Op: "web.spanPair", Attrs: map[string]string{"p1": "junk", "p2": "junk"}},
	} {
		if _, err := decodeLeaf(spec); err == nil {
			t.Errorf("decodeLeaf(%s) succeeded, want error", spec.Op)
		}
	}
}

func mustSpan(t *testing.T, d *Document, sub string) SpanRegion {
	t.Helper()
	s, ok := d.FindSpan(sub, 0)
	if !ok {
		t.Fatalf("span %q not found", sub)
	}
	return s
}

// ---- region mechanics edge cases ----

func TestSpanVersusNodeOrdering(t *testing.T) {
	d := MustNewDocument(shopPage)
	price := nodeByClassText(t, d, "price", "9.99")
	sp := mustSpan(t, d, "9.99")
	if !price.Less(sp) {
		t.Fatal("node at same content should order before inner span")
	}
	if sp.Less(price) {
		t.Fatal("span should not order before its containing node")
	}
	if price.String() == "" || sp.String() == "" {
		t.Fatal("String() should be non-empty")
	}
}

func TestSpanContainsNode(t *testing.T) {
	d := MustNewDocument(shopPage)
	price := nodeByClassText(t, d, "price", "9.99")
	wide := SpanRegion{Doc: d, Start: price.Node.TextStart, End: price.Node.TextEnd}
	if !wide.Contains(price) {
		t.Fatal("span covering a node's text range should contain it")
	}
	if !wide.Overlaps(price) {
		t.Fatal("span should overlap the node")
	}
}

func TestWebSpan(t *testing.T) {
	d := MustNewDocument(scholarPage)
	title := nodeByClassText(t, d, "title", "Program Synthesis A")
	venue := nodeByClassText(t, d, "venue", "PLDI 2014")
	joined, err := d.Span(title, venue)
	if err != nil {
		t.Fatal(err)
	}
	nr, ok := joined.(NodeRegion)
	if !ok || !nr.Node.HasClass("pub") {
		t.Fatalf("Span = %v, want the pub container", joined)
	}
	// span + node input
	author, _ := d.FindSpan("M Vaziri", 0)
	joined2, err := d.Span(title, author)
	if err != nil {
		t.Fatal(err)
	}
	if nr2 := joined2.(NodeRegion); !nr2.Node.HasClass("pub") {
		t.Fatalf("Span with span input = %v", joined2)
	}
	// foreign region errors
	other := MustNewDocument("<p>x</p>")
	if _, err := d.Span(title, other.WholeRegion()); err == nil {
		t.Fatal("cross-document span accepted")
	}
}
