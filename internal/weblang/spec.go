package weblang

import (
	"fmt"

	"flashextract/internal/core"
	"flashextract/internal/engine"
	"flashextract/internal/tokens"
	"flashextract/internal/xpath"
)

// This file implements program serialization for Lweb (see core.Encode).

// EncodeProgram serializes an XPaths node-sequence expression.
func (p xpathsProg) EncodeProgram() (core.ProgramSpec, error) {
	return core.ProgramSpec{Op: "web.xpaths", Attrs: map[string]string{"path": p.path.String()}}, nil
}

// EncodeProgram serializes an N2 XPath expression.
func (p xpathRegionProg) EncodeProgram() (core.ProgramSpec, error) {
	return core.ProgramSpec{Op: "web.xpath", Attrs: map[string]string{"path": p.path.String()}}, nil
}

// EncodeProgram serializes the SeqPairMap function.
func (p nodeSpanPairProg) EncodeProgram() (core.ProgramSpec, error) {
	return webAttrPairSpec("web.nodeSpanPair", p.p1, p.p2)
}

// EncodeProgram serializes PosSeq(R0, rr).
func (p posSeqProg) EncodeProgram() (core.ProgramSpec, error) {
	rr, err := tokens.MarshalRegexPair(p.rr)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	return core.ProgramSpec{Op: "web.posSeq", Attrs: map[string]string{"rr": rr}}, nil
}

// EncodeProgram serializes the StartSeqMap function.
func (p startPairProg) EncodeProgram() (core.ProgramSpec, error) {
	return webAttrSpec("web.startPair", p.p)
}

// EncodeProgram serializes the EndSeqMap function.
func (p endPairProg) EncodeProgram() (core.ProgramSpec, error) {
	return webAttrSpec("web.endPair", p.p)
}

// EncodeProgram serializes the N2 span pair expression.
func (p spanPairProg) EncodeProgram() (core.ProgramSpec, error) {
	return webAttrPairSpec("web.spanPair", p.p1, p.p2)
}

func webAttrSpec(op string, p tokens.Attr) (core.ProgramSpec, error) {
	a, err := tokens.MarshalAttr(p)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	return core.ProgramSpec{Op: op, Attrs: map[string]string{"p": a}}, nil
}

func webAttrPairSpec(op string, p1, p2 tokens.Attr) (core.ProgramSpec, error) {
	a1, err := tokens.MarshalAttr(p1)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	a2, err := tokens.MarshalAttr(p2)
	if err != nil {
		return core.ProgramSpec{}, err
	}
	return core.ProgramSpec{Op: op, Attrs: map[string]string{"p1": a1, "p2": a2}}, nil
}

// decodeLeaf reconstructs Lweb leaf programs.
func decodeLeaf(spec core.ProgramSpec) (core.Program, error) {
	switch spec.Op {
	case "web.xpaths", "web.xpath":
		path, err := xpath.Parse(spec.Attrs["path"])
		if err != nil {
			return nil, err
		}
		if spec.Op == "web.xpaths" {
			return xpathsProg{path: path}, nil
		}
		return xpathRegionProg{path: path}, nil
	case "web.posSeq":
		rr, err := tokens.UnmarshalRegexPair(spec.Attrs["rr"])
		if err != nil {
			return nil, err
		}
		return posSeqProg{rr: rr}, nil
	case "web.startPair", "web.endPair":
		p, err := tokens.UnmarshalAttr(spec.Attrs["p"])
		if err != nil {
			return nil, err
		}
		if spec.Op == "web.startPair" {
			return startPairProg{p: p}, nil
		}
		return endPairProg{p: p}, nil
	case "web.nodeSpanPair", "web.spanPair":
		p1, err := tokens.UnmarshalAttr(spec.Attrs["p1"])
		if err != nil {
			return nil, err
		}
		p2, err := tokens.UnmarshalAttr(spec.Attrs["p2"])
		if err != nil {
			return nil, err
		}
		if spec.Op == "web.nodeSpanPair" {
			return nodeSpanPairProg{p1: p1, p2: p2}, nil
		}
		return spanPairProg{p1: p1, p2: p2}, nil
	default:
		return nil, fmt.Errorf("weblang: unknown leaf operator %q", spec.Op)
	}
}

func decodeContext() core.DecodeContext {
	return core.DecodeContext{Leaf: decodeLeaf, Less: webLess}
}

// MarshalSeqProgram implements engine.ProgramCodec.
func (l *lang) MarshalSeqProgram(p engine.SeqRegionProgram) ([]byte, error) {
	sp, ok := p.(seqProgram)
	if !ok {
		return nil, fmt.Errorf("weblang: cannot serialize foreign program %T", p)
	}
	return core.MarshalProgram(sp.p)
}

// UnmarshalSeqProgram implements engine.ProgramCodec.
func (l *lang) UnmarshalSeqProgram(data []byte) (engine.SeqRegionProgram, error) {
	p, err := decodeContext().UnmarshalProgram(data)
	if err != nil {
		return nil, err
	}
	return seqProgram{p}, nil
}

// MarshalRegionProgram implements engine.ProgramCodec.
func (l *lang) MarshalRegionProgram(p engine.RegionProgram) ([]byte, error) {
	rp, ok := p.(regProgram)
	if !ok {
		return nil, fmt.Errorf("weblang: cannot serialize foreign program %T", p)
	}
	return core.MarshalProgram(rp.p)
}

// UnmarshalRegionProgram implements engine.ProgramCodec.
func (l *lang) UnmarshalRegionProgram(data []byte) (engine.RegionProgram, error) {
	p, err := decodeContext().UnmarshalProgram(data)
	if err != nil {
		return nil, err
	}
	return regProgram{p}, nil
}
