package weblang

import (
	"fmt"

	"flashextract/internal/core"
	"flashextract/internal/tokens"
	"flashextract/internal/xpath"
)

// lambdaVar is the λ-bound variable name used by the Lweb map operators.
const lambdaVar = "x"

func inputNode(st core.State) (NodeRegion, error) {
	r, ok := st.Input().(NodeRegion)
	if !ok {
		return NodeRegion{}, fmt.Errorf("weblang: input is %T, want an HTML node region", st.Input())
	}
	return r, nil
}

// inputTextRange resolves the global text slice of the input region (node
// or span).
func inputTextRange(st core.State) (doc *Document, lo, hi int, err error) {
	switch v := st.Input().(type) {
	case NodeRegion:
		return v.Doc, v.Node.TextStart, v.Node.TextEnd, nil
	case SpanRegion:
		return v.Doc, v.Start, v.End, nil
	default:
		return nil, 0, 0, fmt.Errorf("weblang: input is %T, want a web region", st.Input())
	}
}

// evalPos evaluates a position attribute over Text[lo:hi] through the
// document's evaluation cache, falling back to a direct evaluation for
// documents without one.
func evalPos(d *Document, lo, hi int, a tokens.Attr) (int, error) {
	if d.cache == nil {
		return a.Eval(d.Text[lo:hi])
	}
	return d.cache.EvalAttr(lo, hi, a)
}

// positionsIn returns the position sequence of rr within Text[lo:hi]
// through the document's evaluation cache.
func positionsIn(d *Document, lo, hi int, rr tokens.RegexPair) []int {
	if d.cache == nil {
		return rr.Positions(d.Text[lo:hi])
	}
	return d.cache.Positions(lo, hi, rr)
}

// xpathsProg is the NS expression: an XPath selecting a node sequence
// under the input node.
type xpathsProg struct {
	path *xpath.Path
}

func (p xpathsProg) Exec(st core.State) (core.Value, error) {
	r0, err := inputNode(st)
	if err != nil {
		return nil, err
	}
	nodes := p.path.Select(r0.Node)
	out := make([]core.Value, len(nodes))
	for i, n := range nodes {
		out[i] = NodeRegion{Doc: r0.Doc, Node: n}
	}
	return out, nil
}

func (p xpathsProg) String() string { return fmt.Sprintf("XPaths(%s)", p.path) }

// Cost defers to the path's ranking score.
func (p xpathsProg) Cost() int { return p.path.Cost() }

// xpathRegionProg is the N2 XPath expression: it extracts the first node
// selected by the path under the input node.
type xpathRegionProg struct {
	path *xpath.Path
}

func (p xpathRegionProg) Exec(st core.State) (core.Value, error) {
	r0, err := inputNode(st)
	if err != nil {
		return nil, err
	}
	nodes := p.path.Select(r0.Node)
	if len(nodes) == 0 {
		return nil, core.ErrNoMatch
	}
	return NodeRegion{Doc: r0.Doc, Node: nodes[0]}, nil
}

func (p xpathRegionProg) String() string { return fmt.Sprintf("XPath(%s)", p.path) }

// Cost defers to the path's ranking score.
func (p xpathRegionProg) Cost() int { return p.path.Cost() }

// nodeSpanPairProg is λx: Pair(Pos(x.Val, p1), Pos(x.Val, p2)) — the map
// function of SeqPairMap, producing a span within the text of node x.
type nodeSpanPairProg struct {
	p1, p2 tokens.Attr
}

func (p nodeSpanPairProg) Exec(st core.State) (core.Value, error) {
	v, ok := st.Lookup(lambdaVar)
	if !ok {
		return nil, fmt.Errorf("weblang: free variable %s is unbound", lambdaVar)
	}
	x, ok := v.(NodeRegion)
	if !ok {
		return nil, fmt.Errorf("weblang: %s is %T, want a node region", lambdaVar, v)
	}
	a, err := evalPos(x.Doc, x.Node.TextStart, x.Node.TextEnd, p.p1)
	if err != nil {
		return nil, err
	}
	b, err := evalPos(x.Doc, x.Node.TextStart, x.Node.TextEnd, p.p2)
	if err != nil {
		return nil, err
	}
	if a > b {
		return nil, core.ErrNoMatch
	}
	return SpanRegion{Doc: x.Doc, Start: x.Node.TextStart + a, End: x.Node.TextStart + b}, nil
}

func (p nodeSpanPairProg) String() string {
	return fmt.Sprintf("Pair(Pos(x.Val, %s), Pos(x.Val, %s))", p.p1, p.p2)
}

// Cost is the cost of the two position attributes.
func (p nodeSpanPairProg) Cost() int { return p.p1.Cost() + p.p2.Cost() }

// posSeqProg is PosSeq(R0, rr) over the input region's text content.
type posSeqProg struct {
	rr tokens.RegexPair
}

func (p posSeqProg) Exec(st core.State) (core.Value, error) {
	doc, lo, hi, err := inputTextRange(st)
	if err != nil {
		return nil, err
	}
	ps := positionsIn(doc, lo, hi, p.rr)
	out := make([]core.Value, len(ps))
	for i, k := range ps {
		out[i] = lo + k
	}
	return out, nil
}

func (p posSeqProg) String() string { return fmt.Sprintf("PosSeq(R0, %s)", p.rr) }

// Cost defers to the regex pair.
func (p posSeqProg) Cost() int { return p.rr.Cost() }

// startPairProg is λx: Pair(x, Pos(R0[x:], p)).
type startPairProg struct {
	p tokens.Attr
}

func (p startPairProg) Exec(st core.State) (core.Value, error) {
	doc, lo, hi, err := inputTextRange(st)
	if err != nil {
		return nil, err
	}
	v, _ := st.Lookup(lambdaVar)
	x, ok := v.(int)
	if !ok {
		return nil, fmt.Errorf("weblang: %s is %T, want a position", lambdaVar, v)
	}
	if x < lo || x > hi {
		return nil, core.ErrNoMatch
	}
	e, err := evalPos(doc, x, hi, p.p)
	if err != nil {
		return nil, err
	}
	return SpanRegion{Doc: doc, Start: x, End: x + e}, nil
}

func (p startPairProg) String() string { return fmt.Sprintf("Pair(x, Pos(R0[x:], %s))", p.p) }

// Cost carries a small bias against raw position pairing.
func (p startPairProg) Cost() int { return p.p.Cost() + 1 }

// endPairProg is λx: Pair(Pos(R0[:x], p), x).
type endPairProg struct {
	p tokens.Attr
}

func (p endPairProg) Exec(st core.State) (core.Value, error) {
	doc, lo, hi, err := inputTextRange(st)
	if err != nil {
		return nil, err
	}
	v, _ := st.Lookup(lambdaVar)
	x, ok := v.(int)
	if !ok {
		return nil, fmt.Errorf("weblang: %s is %T, want a position", lambdaVar, v)
	}
	if x < lo || x > hi {
		return nil, core.ErrNoMatch
	}
	s, err := evalPos(doc, lo, x, p.p)
	if err != nil {
		return nil, err
	}
	return SpanRegion{Doc: doc, Start: lo + s, End: x}, nil
}

func (p endPairProg) String() string { return fmt.Sprintf("Pair(Pos(R0[:x], %s), x)", p.p) }

// Cost carries the same bias as startPairProg.
func (p endPairProg) Cost() int { return p.p.Cost() + 1 }

// spanPairProg is the N2 expression Pair(Pos(R0, p1), Pos(R0, p2)): a span
// within the input region's text content.
type spanPairProg struct {
	p1, p2 tokens.Attr
}

func (p spanPairProg) Exec(st core.State) (core.Value, error) {
	doc, lo, hi, err := inputTextRange(st)
	if err != nil {
		return nil, err
	}
	a, err := evalPos(doc, lo, hi, p.p1)
	if err != nil {
		return nil, err
	}
	b, err := evalPos(doc, lo, hi, p.p2)
	if err != nil {
		return nil, err
	}
	if a > b {
		return nil, core.ErrNoMatch
	}
	return SpanRegion{Doc: doc, Start: lo + a, End: lo + b}, nil
}

func (p spanPairProg) String() string {
	return fmt.Sprintf("Pair(Pos(R0, %s), Pos(R0, %s))", p.p1, p.p2)
}

// Cost is the cost of the two position attributes.
func (p spanPairProg) Cost() int { return p.p1.Cost() + p.p2.Cost() }
