package region

// SourceSpan is the document-coordinate description of a region, reported
// for extraction provenance: where in the source document a leaf value
// came from, in the substrate's natural addressing.
//
// Space selects the coordinate system and which fields are meaningful:
//
//	"bytes"  [Start, End) byte offsets into the raw document text —
//	         slicing the document at the span reproduces the region's
//	         value (text documents).
//	"text"   [Start, End) byte offsets into the document's extracted
//	         text-content layer (webpages: node text and intra-node
//	         spans index the global text content, not the raw HTML).
//	"grid"   the inclusive cell rectangle (R1,C1)-(R2,C2)
//	         (spreadsheets; Start/End are zero).
type SourceSpan struct {
	Space          string
	Start, End     int
	R1, C1, R2, C2 int
}

// SourceSpanner is implemented by regions that can report their source
// coordinates. All substrate regions implement it; the provenance layer
// type-asserts against it when building explain frames.
type SourceSpanner interface {
	SourceSpan() SourceSpan
}
