// Package region defines the document-independent notion of a region
// (Def. 2 of the FlashExtract paper): a two-dimensional portion of a
// document's visualization layer that a user can highlight. Concrete
// representations live in the domain packages — a pair of character
// positions for text files, an HTML node or intra-node span for webpages,
// and a cell or cell pair for spreadsheets.
package region

// Region is a highlightable portion of a document. Implementations must be
// comparable Go values (or implement core.Equaler) so the synthesis
// framework can test region equality.
type Region interface {
	// Contains reports whether other is nested inside (or equal to) the
	// receiver. It is the nestedness API assumed by the paper's Fill
	// semantics.
	Contains(other Region) bool
	// Overlaps reports whether the receiver and other share any part of the
	// document.
	Overlaps(other Region) bool
	// Less orders regions by their location in the document (reading
	// order). It is only called on regions of the same document.
	Less(other Region) bool
	// Value returns the text value of the region (meaningful for leaf
	// regions).
	Value() string
	// String returns a compact human-readable description.
	String() string
}

// Sort orders regions in document order using insertion sort; region lists
// during synthesis are short.
func Sort(rs []Region) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Less(rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// Subregions returns the ordered subset of candidates nested inside r
// (the Subregions helper of Fig. 5).
func Subregions(r Region, candidates []Region) []Region {
	var out []Region
	for _, c := range candidates {
		if r.Contains(c) {
			out = append(out, c)
		}
	}
	Sort(out)
	return out
}

// Subregion returns the single candidate nested inside r, or nil if none
// exists (the Subregion helper of Fig. 5). When several candidates are
// nested — possible only if the highlighting is inconsistent with the
// schema — the first in document order is returned.
func Subregion(r Region, candidates []Region) Region {
	subs := Subregions(r, candidates)
	if len(subs) == 0 {
		return nil
	}
	return subs[0]
}
