package region

import (
	"fmt"
	"testing"
	"testing/quick"
)

// ival is a simple interval region for testing the package helpers.
type ival struct{ s, e int }

func (r ival) Contains(other Region) bool {
	o := other.(ival)
	return r.s <= o.s && o.e <= r.e
}

func (r ival) Overlaps(other Region) bool {
	o := other.(ival)
	return r.s < o.e && o.s < r.e
}

func (r ival) Less(other Region) bool {
	o := other.(ival)
	if r.s != o.s {
		return r.s < o.s
	}
	return r.e > o.e
}

func (r ival) Value() string  { return fmt.Sprintf("%d..%d", r.s, r.e) }
func (r ival) String() string { return r.Value() }

func TestSort(t *testing.T) {
	rs := []Region{ival{4, 6}, ival{0, 2}, ival{0, 9}, ival{3, 3}}
	Sort(rs)
	want := []Region{ival{0, 9}, ival{0, 2}, ival{3, 3}, ival{4, 6}}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("Sort = %v", rs)
		}
	}
}

func TestSortStability(t *testing.T) {
	// Regions that are not Less than each other keep insertion order.
	a := ival{1, 4}
	rs := []Region{a, a, ival{0, 1}}
	Sort(rs)
	if rs[0] != Region(ival{0, 1}) || rs[1] != Region(a) {
		t.Fatalf("Sort = %v", rs)
	}
}

func TestSubregions(t *testing.T) {
	outer := ival{0, 10}
	cands := []Region{ival{12, 14}, ival{8, 10}, ival{0, 3}, ival{5, 12}}
	got := Subregions(outer, cands)
	if len(got) != 2 || got[0] != Region(ival{0, 3}) || got[1] != Region(ival{8, 10}) {
		t.Fatalf("Subregions = %v", got)
	}
}

func TestSubregion(t *testing.T) {
	outer := ival{0, 10}
	if got := Subregion(outer, []Region{ival{11, 12}}); got != nil {
		t.Fatalf("Subregion = %v, want nil", got)
	}
	if got := Subregion(outer, []Region{ival{4, 6}}); got != Region(ival{4, 6}) {
		t.Fatalf("Subregion = %v", got)
	}
	// multiple nested: first in document order
	got := Subregion(outer, []Region{ival{7, 8}, ival{1, 2}})
	if got != Region(ival{1, 2}) {
		t.Fatalf("Subregion = %v", got)
	}
}

func TestSortProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var rs []Region
		for i := 0; i+1 < len(raw); i += 2 {
			s := int(raw[i] % 50)
			e := s + int(raw[i+1]%20)
			rs = append(rs, ival{s, e})
		}
		Sort(rs)
		for i := 1; i < len(rs); i++ {
			if rs[i].Less(rs[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
