package reqid

import (
	"context"
	"testing"
)

func TestNewFormat(t *testing.T) {
	id := New()
	if len(id) != 16 {
		t.Fatalf("id %q is not 16 hex chars", id)
	}
	for _, r := range id {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			t.Fatalf("id %q contains non-hex rune %q", id, r)
		}
	}
}

func TestNewUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := New()
		if seen[id] {
			t.Fatalf("id %q repeated within 1000 draws", id)
		}
		seen[id] = true
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := From(ctx); got != "" {
		t.Fatalf("empty context carries id %q", got)
	}
	ctx = Into(ctx, "deadbeefdeadbeef")
	if got := From(ctx); got != "deadbeefdeadbeef" {
		t.Fatalf("From = %q", got)
	}
	if got := From(nil); got != "" { //nolint:staticcheck // nil-robustness is the contract
		t.Fatalf("nil context carries id %q", got)
	}
}
