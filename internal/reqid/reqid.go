// Package reqid generates and carries request identifiers. A request id
// is minted where a request enters the system (the serve loop, a batch
// run) and flows through context into the engine, tracer, logger, and
// access log, correlating everything one request caused.
package reqid

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

type ctxKey struct{}

// New returns a fresh 16-hex-character request id.
func New() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; a zero id
		// is still a valid (if non-unique) identifier.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Into returns a context carrying the request id.
func Into(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// From returns the context's request id, or "" when none was installed
// (or the context is nil).
func From(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
