// Package schema implements the output-schema language of FlashExtract
// (Fig. 4 of the paper):
//
//	Schema    M ::= S | T
//	Structure T ::= Struct(id1 : E1, …, idn : En)
//	Element   E ::= f | S
//	Sequence  S ::= Seq(f)
//	Field     f ::= [color] τ | [color] T
//
// A field is the colored, extractable unit; τ is an atomic leaf type
// (String, Int, Float). The schema language deliberately disallows a
// sequence directly nested inside another sequence: a colored structure
// must sit in between, serving as the learning boundary for the inner
// sequence.
package schema

import (
	"fmt"
	"strings"
)

// LeafType is an atomic type τ of a leaf field.
type LeafType int

// The atomic leaf types supported by the schema language.
const (
	String LeafType = iota
	Int
	Float
)

func (t LeafType) String() string {
	switch t {
	case String:
		return "String"
	case Int:
		return "Int"
	case Float:
		return "Float"
	default:
		return fmt.Sprintf("LeafType(%d)", int(t))
	}
}

// ValidValue reports whether a leaf region's text value is of type t
// (the typing condition of Def. 3).
func (t LeafType) ValidValue(s string) bool {
	s = strings.TrimSpace(s)
	switch t {
	case String:
		return true
	case Int:
		if s == "" {
			return false
		}
		i := 0
		if s[0] == '-' || s[0] == '+' {
			i = 1
			if len(s) == 1 {
				return false
			}
		}
		for ; i < len(s); i++ {
			if s[i] < '0' || s[i] > '9' {
				return false
			}
		}
		return true
	case Float:
		if s == "" {
			return false
		}
		i, digits, dot := 0, false, false
		if s[0] == '-' || s[0] == '+' {
			i = 1
		}
		for ; i < len(s); i++ {
			switch {
			case s[i] >= '0' && s[i] <= '9':
				digits = true
			case s[i] == '.' && !dot:
				dot = true
			default:
				return false
			}
		}
		return digits
	default:
		return false
	}
}

// Field is a colored field: either a leaf of an atomic type, or a colored
// structure.
type Field struct {
	// Color is the field's unique highlighting color.
	Color string
	// Leaf is the atomic type when Struct is nil.
	Leaf LeafType
	// Struct is non-nil for structure fields.
	Struct *Struct
}

// IsLeaf reports whether f is a leaf field.
func (f *Field) IsLeaf() bool { return f.Struct == nil }

func (f *Field) String() string {
	if f.IsLeaf() {
		return fmt.Sprintf("[%s] %s", f.Color, f.Leaf)
	}
	return fmt.Sprintf("[%s] %s", f.Color, f.Struct)
}

// Struct is a structure with named elements.
type Struct struct {
	Elements []Element
}

func (s *Struct) String() string {
	parts := make([]string, len(s.Elements))
	for i, e := range s.Elements {
		parts[i] = fmt.Sprintf("%s: %s", e.Name, e.itemString())
	}
	return "Struct(" + strings.Join(parts, ", ") + ")"
}

// Element is a named element of a structure: either a field or a sequence.
type Element struct {
	Name string
	// Field is non-nil when the element is a field (E ::= f).
	Field *Field
	// Seq is non-nil when the element is a sequence (E ::= S).
	Seq *Seq
}

func (e Element) itemString() string {
	if e.Field != nil {
		return e.Field.String()
	}
	return e.Seq.String()
}

// Seq is a sequence over a field.
type Seq struct {
	Inner *Field
}

func (s *Seq) String() string { return fmt.Sprintf("Seq(%s)", s.Inner) }

// Schema is a top-level schema M ::= S | T. Exactly one of TopSeq and
// TopStruct is non-nil.
type Schema struct {
	TopSeq    *Seq
	TopStruct *Struct

	fields []*FieldInfo
	byCol  map[string]*FieldInfo
}

func (m *Schema) String() string {
	if m.TopSeq != nil {
		return m.TopSeq.String()
	}
	return m.TopStruct.String()
}

// validIdent reports whether s is a legal color or element name: the
// identifier syntax of the schema language.
func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
		if !ok {
			return false
		}
	}
	return true
}

// FieldInfo records a field's position in the schema: its immediate
// ancestor field (nil for ⊥), whether a sequence construct separates it
// from that ancestor, and its display path.
type FieldInfo struct {
	Field *Field
	// Parent is the immediately enclosing colored field, or nil when the
	// field relates directly to ⊥ (the whole document).
	Parent *FieldInfo
	// ViaSeq reports whether a Seq construct lies between Parent and this
	// field.
	ViaSeq bool
	// Name is the element name (or "item" for sequence inner fields at the
	// top level).
	Name string
	// Path is the dotted path from the root, for display.
	Path string
	// Depth is the nesting depth (top-level fields have depth 0).
	Depth int
}

// Color returns the field's color.
func (fi *FieldInfo) Color() string { return fi.Field.Color }

// IsSequenceAncestor reports whether ancestor (nil meaning ⊥) is a
// sequence-ancestor of fi: at least one sequence construct occurs in the
// nesting between them (Def. 1). It panics if ancestor is not an ancestor
// of fi.
func (fi *FieldInfo) IsSequenceAncestor(ancestor *FieldInfo) bool {
	via := false
	for cur := fi; cur != nil; cur = cur.Parent {
		via = via || cur.ViaSeq
		if cur.Parent == ancestor {
			return via
		}
	}
	panic(fmt.Sprintf("schema: %s is not an ancestor of %s", ancestor.Path, fi.Path))
}

// Ancestors returns fi's ancestor fields from the immediate parent up to
// the top-level field, followed by nil representing ⊥.
func (fi *FieldInfo) Ancestors() []*FieldInfo {
	var out []*FieldInfo
	for cur := fi.Parent; cur != nil; cur = cur.Parent {
		out = append(out, cur)
	}
	out = append(out, nil)
	return out
}

// Fields returns all fields of the schema in top-down topological order
// (parents before children, document order among siblings).
func (m *Schema) Fields() []*FieldInfo { return m.fields }

// FieldByColor returns the field with the given color, or nil.
func (m *Schema) FieldByColor(color string) *FieldInfo {
	return m.byCol[color]
}

// Validate checks well-formedness: exactly one top-level construct,
// non-empty structures, unique non-empty colors, and unique element names
// per structure. It also indexes the fields; it must be called before
// Fields or FieldByColor (Parse does so automatically).
func (m *Schema) Validate() error {
	if (m.TopSeq == nil) == (m.TopStruct == nil) {
		return fmt.Errorf("schema: exactly one of a top-level sequence or structure is required")
	}
	m.fields = nil
	m.byCol = map[string]*FieldInfo{}
	var walkField func(f *Field, parent *FieldInfo, viaSeq bool, name, path string, depth int) error
	walkStruct := func(s *Struct, parent *FieldInfo, path string, depth int) error {
		if len(s.Elements) == 0 {
			return fmt.Errorf("schema: structure at %q has no elements", path)
		}
		seen := map[string]bool{}
		for _, e := range s.Elements {
			if !validIdent(e.Name) {
				return fmt.Errorf("schema: invalid element name %q at %q (want letters, digits, '_', '-')", e.Name, path)
			}
			if seen[e.Name] {
				return fmt.Errorf("schema: duplicate element name %q at %q", e.Name, path)
			}
			seen[e.Name] = true
			childPath := e.Name
			if path != "" {
				childPath = path + "." + e.Name
			}
			switch {
			case e.Field != nil:
				if err := walkField(e.Field, parent, false, e.Name, childPath, depth); err != nil {
					return err
				}
			case e.Seq != nil:
				if e.Seq.Inner == nil {
					return fmt.Errorf("schema: sequence at %q has no inner field", childPath)
				}
				if err := walkField(e.Seq.Inner, parent, true, e.Name, childPath, depth); err != nil {
					return err
				}
			default:
				return fmt.Errorf("schema: element %q has neither field nor sequence", childPath)
			}
		}
		return nil
	}
	walkField = func(f *Field, parent *FieldInfo, viaSeq bool, name, path string, depth int) error {
		if !validIdent(f.Color) {
			return fmt.Errorf("schema: field at %q has an invalid color %q (want letters, digits, '_', '-')", path, f.Color)
		}
		if _, dup := m.byCol[f.Color]; dup {
			return fmt.Errorf("schema: color %q used by more than one field", f.Color)
		}
		fi := &FieldInfo{Field: f, Parent: parent, ViaSeq: viaSeq, Name: name, Path: path, Depth: depth}
		m.fields = append(m.fields, fi)
		m.byCol[f.Color] = fi
		if !f.IsLeaf() {
			return walkStruct(f.Struct, fi, path, depth+1)
		}
		return nil
	}
	if m.TopSeq != nil {
		if m.TopSeq.Inner == nil {
			return fmt.Errorf("schema: top-level sequence has no inner field")
		}
		return walkField(m.TopSeq.Inner, nil, true, "item", "item", 0)
	}
	return walkStruct(m.TopStruct, nil, "", 0)
}
