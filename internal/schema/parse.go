package schema

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses the textual schema syntax used throughout the paper, e.g.
//
//	Seq([green] Struct(
//	    SampleID: [orange] String,
//	    Intensities: Seq([yellow] Struct(
//	        Analyte: [magenta] String,
//	        Mass:    [violet] Int,
//	        CMean:   [blue] Float))))
//
// and validates the result.
func Parse(src string) (*Schema, error) {
	p := &parser{lex: newLexer(src)}
	m, err := p.parseSchema()
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustParse is Parse for statically known schemas; it panics on error.
// It is for compiled-in schema literals (tests, examples) only — never
// call it on user-supplied input; use Parse, whose *ParseError carries
// the offset a caller needs for a file/line diagnostic.
func MustParse(src string) *Schema {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

// ParseError is a syntax error in schema text, carrying the byte offset
// where parsing failed so callers can point at the exact spot in a file
// (errors.As-able from Parse's error).
type ParseError struct {
	// Offset is the 0-based byte offset into the source text.
	Offset int
	// Msg describes what was expected and found.
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("schema: at offset %d: %s", e.Offset, e.Msg)
}

// perr builds a *ParseError at a token position.
func perr(pos int, format string, args ...any) error {
	return &ParseError{Offset: pos, Msg: fmt.Sprintf(format, args...)}
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokColon
	tokComma
	tokInvalid
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) describe() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.run()
	return l
}

func (l *lexer) run() {
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		switch {
		case unicode.IsSpace(c):
			l.pos++
		case c == '(':
			l.emit(tokLParen, 1)
		case c == ')':
			l.emit(tokRParen, 1)
		case c == '[':
			l.emit(tokLBracket, 1)
		case c == ']':
			l.emit(tokRBracket, 1)
		case c == ':':
			l.emit(tokColon, 1)
		case c == ',':
			l.emit(tokComma, 1)
		default:
			start := l.pos
			for l.pos < len(l.src) && isIdentChar(rune(l.src[l.pos])) {
				l.pos++
			}
			if l.pos == start {
				// Not an identifier character: surface a parse error
				// rather than smuggling arbitrary bytes into names.
				l.toks = append(l.toks, token{kind: tokInvalid, text: string(c), pos: start})
				l.pos++
				continue
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
}

func (l *lexer) emit(k tokKind, n int) {
	l.toks = append(l.toks, token{kind: k, text: l.src[l.pos : l.pos+n], pos: l.pos})
	l.pos += n
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-'
}

type parser struct {
	lex *lexer
	i   int
}

func (p *parser) peek() token { return p.lex.toks[p.i] }

func (p *parser) next() token {
	t := p.lex.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, perr(t.pos, "expected %s, found %s", what, t.describe())
	}
	return t, nil
}

func (p *parser) parseSchema() (*Schema, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, perr(t.pos, "expected Seq or Struct, found %s", t.describe())
	}
	m := &Schema{}
	switch t.text {
	case "Seq":
		s, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		m.TopSeq = s
	case "Struct":
		st, err := p.parseStruct()
		if err != nil {
			return nil, err
		}
		m.TopStruct = st
	default:
		return nil, perr(t.pos, "expected Seq or Struct, found %q", t.text)
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, perr(t.pos, "unexpected trailing input %s", t.describe())
	}
	return m, nil
}

func (p *parser) parseSeq() (*Seq, error) {
	if _, err := p.expect(tokIdent, "Seq"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	f, err := p.parseField()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return &Seq{Inner: f}, nil
}

func (p *parser) parseStruct() (*Struct, error) {
	if _, err := p.expect(tokIdent, "Struct"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	st := &Struct{}
	for {
		name, err := p.expect(tokIdent, "element name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon, "':'"); err != nil {
			return nil, err
		}
		el := Element{Name: name.text}
		if t := p.peek(); t.kind == tokIdent && t.text == "Seq" {
			s, err := p.parseSeq()
			if err != nil {
				return nil, err
			}
			el.Seq = s
		} else {
			f, err := p.parseField()
			if err != nil {
				return nil, err
			}
			el.Field = f
		}
		st.Elements = append(st.Elements, el)
		t := p.next()
		if t.kind == tokRParen {
			return st, nil
		}
		if t.kind != tokComma {
			return nil, perr(t.pos, "expected ',' or ')', found %s", t.describe())
		}
	}
}

func (p *parser) parseField() (*Field, error) {
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return nil, err
	}
	color, err := p.expect(tokIdent, "color name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket, "']'"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokIdent {
		return nil, perr(t.pos, "expected a type or Struct, found %s", t.describe())
	}
	f := &Field{Color: color.text}
	switch t.text {
	case "Struct":
		st, err := p.parseStruct()
		if err != nil {
			return nil, err
		}
		f.Struct = st
	case "String", "Int", "Float":
		p.next()
		f.Leaf = map[string]LeafType{"String": String, "Int": Int, "Float": Float}[t.text]
	case "Seq":
		return nil, perr(t.pos, "a sequence cannot be directly nested inside another sequence; wrap it in a colored Struct")
	default:
		return nil, perr(t.pos, "unknown type %q (want String, Int, Float, or Struct)", t.text)
	}
	return f, nil
}

// FormatIndented pretty-prints a schema with indentation.
func FormatIndented(m *Schema) string {
	var b strings.Builder
	if m.TopSeq != nil {
		writeSeq(&b, m.TopSeq, 0)
	} else {
		writeStruct(&b, m.TopStruct, 0)
	}
	return b.String()
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("  ")
	}
}

func writeSeq(b *strings.Builder, s *Seq, depth int) {
	b.WriteString("Seq(")
	writeField(b, s.Inner, depth)
	b.WriteString(")")
}

func writeStruct(b *strings.Builder, s *Struct, depth int) {
	b.WriteString("Struct(\n")
	for i, e := range s.Elements {
		indent(b, depth+1)
		b.WriteString(e.Name)
		b.WriteString(": ")
		if e.Field != nil {
			writeField(b, e.Field, depth+1)
		} else {
			writeSeq(b, e.Seq, depth+1)
		}
		if i < len(s.Elements)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	indent(b, depth)
	b.WriteString(")")
}

func writeField(b *strings.Builder, f *Field, depth int) {
	fmt.Fprintf(b, "[%s] ", f.Color)
	if f.IsLeaf() {
		b.WriteString(f.Leaf.String())
	} else {
		writeStruct(b, f.Struct, depth)
	}
}
