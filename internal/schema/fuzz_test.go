package schema

import "testing"

// FuzzParse asserts the schema parser never panics and that successful
// parses round-trip through String().
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		analyteSchema, "Seq([a] String)", "Struct(A: [x] Int)", "Seq(",
		"Struct(A: Seq([b] Float))", "[a]", "Seq([a] Seq([b] Int))",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		again, err := Parse(m.String())
		if err != nil {
			t.Fatalf("String() output unparseable: %v\n%s", err, m)
		}
		if again.String() != m.String() {
			t.Fatal("String() round trip not stable")
		}
	})
}
