package schema

import (
	"errors"
	"testing"
)

// FuzzParse asserts the schema parser never panics and that successful
// parses round-trip through String().
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		analyteSchema, "Seq([a] String)", "Struct(A: [x] Int)", "Seq(",
		"Struct(A: Seq([b] Float))", "[a]", "Seq([a] Seq([b] Int))",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		again, err := Parse(m.String())
		if err != nil {
			t.Fatalf("String() output unparseable: %v\n%s", err, m)
		}
		if again.String() != m.String() {
			t.Fatal("String() round trip not stable")
		}
	})
}

// FuzzSchemaParse asserts the error-or-valid-result contract on the
// public parse path for arbitrary bytes: no panic ever; a returned error
// is either a *ParseError whose offset points inside the source (so CLI
// diagnostics never index out of range) or a validation error; a returned
// schema is fully valid with enumerable fields.
func FuzzSchemaParse(f *testing.F) {
	for _, seed := range []string{
		analyteSchema, "Seq([a] String)", "Struct(", "Seq([a] Str\x00ing)",
		"Seq([a] String)\"<!--[", "", "]][[", "Seq([a] Struct(B: [b] Int))",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			var perr *ParseError
			if errors.As(err, &perr) && (perr.Offset < 0 || perr.Offset > len(src)) {
				t.Fatalf("parse error offset %d outside source of length %d", perr.Offset, len(src))
			}
			return
		}
		if m == nil {
			t.Fatal("nil schema without error")
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parsed schema fails validation: %v", err)
		}
		for _, fi := range m.Fields() {
			if fi.Color() == "" {
				t.Fatal("parsed schema has a field with no color")
			}
		}
	})
}
