package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

const analyteSchema = `
Seq([green] Struct(
    SampleID: [orange] String,
    Intensities: Seq([yellow] Struct(
        Analyte: [magenta] String,
        Mass:    [violet] Int,
        CMean:   [blue] Float))))
`

func TestParseAnalyteSchema(t *testing.T) {
	m, err := Parse(analyteSchema)
	if err != nil {
		t.Fatal(err)
	}
	fields := m.Fields()
	if len(fields) != 6 {
		t.Fatalf("got %d fields, want 6", len(fields))
	}
	colors := make([]string, len(fields))
	for i, f := range fields {
		colors[i] = f.Color()
	}
	want := []string{"green", "orange", "yellow", "magenta", "violet", "blue"}
	for i := range want {
		if colors[i] != want[i] {
			t.Fatalf("field order = %v, want %v", colors, want)
		}
	}
}

func TestParseSimpleTopStruct(t *testing.T) {
	m, err := Parse(`Struct(Name: [red] String, Age: [blue] Int)`)
	if err != nil {
		t.Fatal(err)
	}
	if m.TopStruct == nil || len(m.TopStruct.Elements) != 2 {
		t.Fatalf("bad top struct: %v", m)
	}
	red := m.FieldByColor("red")
	if red == nil || red.Parent != nil || red.ViaSeq {
		t.Fatalf("red field info wrong: %+v", red)
	}
	if red.IsSequenceAncestor(nil) {
		t.Fatal("⊥ should be a structure-ancestor of a top-struct field")
	}
}

func TestAncestorRelations(t *testing.T) {
	m := MustParse(analyteSchema)
	green := m.FieldByColor("green")
	yellow := m.FieldByColor("yellow")
	magenta := m.FieldByColor("magenta")
	orange := m.FieldByColor("orange")

	if green.Parent != nil || !green.ViaSeq {
		t.Fatalf("green: %+v", green)
	}
	if !green.IsSequenceAncestor(nil) {
		t.Fatal("⊥ must be a sequence-ancestor of green")
	}
	if yellow.Parent != green || !yellow.ViaSeq {
		t.Fatalf("yellow parent: %+v", yellow)
	}
	if !yellow.IsSequenceAncestor(green) {
		t.Fatal("green must be a sequence-ancestor of yellow")
	}
	if magenta.IsSequenceAncestor(yellow) {
		t.Fatal("yellow must be a structure-ancestor of magenta")
	}
	if !magenta.IsSequenceAncestor(green) {
		t.Fatal("green must be a sequence-ancestor of magenta (via yellow's Seq)")
	}
	if orange.IsSequenceAncestor(green) {
		t.Fatal("green must be a structure-ancestor of orange")
	}

	anc := magenta.Ancestors()
	if len(anc) != 3 || anc[0] != yellow || anc[1] != green || anc[2] != nil {
		t.Fatalf("Ancestors(magenta) = %v", anc)
	}
}

func TestIsSequenceAncestorPanicsOnNonAncestor(t *testing.T) {
	m := MustParse(analyteSchema)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.FieldByColor("orange").IsSequenceAncestor(m.FieldByColor("yellow"))
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"", "expected Seq or Struct"},
		{"Foo()", "expected Seq or Struct"},
		{"Seq(Seq([a] String))", "'['"},
		{"Seq([a] Seq([b] String))", "directly nested"},
		{"Seq([a] Bogus)", "unknown type"},
		{"Struct()", "element name"},
		{"Struct(A: [c] String) extra", "trailing"},
		{"Struct(A: [c] String, A: [d] String)", "duplicate element name"},
		{"Struct(A: [c] String, B: [c] Int)", `color "c" used by more than one`},
		{"Seq([a] Struct(X: [a] String))", "more than one"},
		{"Struct(A [c] String)", "':'"},
		{"Seq([a] String", "')'"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestValidateRequiresExactlyOneTop(t *testing.T) {
	if err := (&Schema{}).Validate(); err == nil {
		t.Fatal("empty schema validated")
	}
	both := &Schema{TopSeq: &Seq{}, TopStruct: &Struct{}}
	if err := both.Validate(); err == nil {
		t.Fatal("double-topped schema validated")
	}
}

func TestLeafTypeValidValue(t *testing.T) {
	cases := []struct {
		t    LeafType
		s    string
		want bool
	}{
		{String, "anything at all", true},
		{String, "", true},
		{Int, "42", true},
		{Int, "-7", true},
		{Int, "+7", true},
		{Int, " 12 ", true},
		{Int, "", false},
		{Int, "-", false},
		{Int, "1.5", false},
		{Int, "abc", false},
		{Float, "0.070073", true},
		{Float, "-3.", true},
		{Float, "12", true},
		{Float, ".5", true},
		{Float, "", false},
		{Float, ".", false},
		{Float, "1.2.3", false},
		{Float, "1e5", false},
	}
	for _, c := range cases {
		if got := c.t.ValidValue(c.s); got != c.want {
			t.Errorf("%v.ValidValue(%q) = %v, want %v", c.t, c.s, got, c.want)
		}
	}
}

func TestLeafTypeString(t *testing.T) {
	if String.String() != "String" || Int.String() != "Int" || Float.String() != "Float" {
		t.Fatal("LeafType.String broken")
	}
	if !strings.Contains(LeafType(99).String(), "99") {
		t.Fatal("unknown LeafType should include its number")
	}
}

func TestStringRoundTrip(t *testing.T) {
	m := MustParse(analyteSchema)
	again, err := Parse(m.String())
	if err != nil {
		t.Fatalf("re-parsing String() output: %v", err)
	}
	if again.String() != m.String() {
		t.Fatalf("round trip changed schema:\n%s\nvs\n%s", m, again)
	}
}

func TestFormatIndentedRoundTrip(t *testing.T) {
	for _, src := range []string{
		analyteSchema,
		`Struct(Name: [red] String, Rows: Seq([row] Struct(V: [v] Int)))`,
		`Seq([x] Float)`,
	} {
		m := MustParse(src)
		formatted := FormatIndented(m)
		again, err := Parse(formatted)
		if err != nil {
			t.Fatalf("FormatIndented output unparseable: %v\n%s", err, formatted)
		}
		if again.String() != m.String() {
			t.Fatalf("indent round trip changed schema")
		}
	}
}

func TestFieldStringForms(t *testing.T) {
	m := MustParse(analyteSchema)
	s := m.String()
	for _, want := range []string{"[green]", "[yellow]", "Seq(", "Struct(", "Mass: [violet] Int"} {
		if !strings.Contains(s, want) {
			t.Errorf("schema String() missing %q: %s", want, s)
		}
	}
}

func TestIntValidValueProperty(t *testing.T) {
	// Any string of digits (len ≥ 1) is a valid Int.
	f := func(n uint32) bool {
		s := ""
		for v := n; ; v /= 10 {
			s = string(rune('0'+v%10)) + s
			if v < 10 {
				break
			}
		}
		return Int.ValidValue(s) && Float.ValidValue(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldsTopologicalOrder(t *testing.T) {
	m := MustParse(analyteSchema)
	depth := map[string]int{"green": 0, "orange": 1, "yellow": 1, "magenta": 2, "violet": 2, "blue": 2}
	seen := map[string]bool{}
	for _, fi := range m.Fields() {
		if fi.Parent != nil && !seen[fi.Parent.Color()] {
			t.Fatalf("field %s appears before its parent", fi.Color())
		}
		seen[fi.Color()] = true
		if depth[fi.Color()] != fi.Depth {
			t.Errorf("depth(%s) = %d, want %d", fi.Color(), fi.Depth, depth[fi.Color()])
		}
	}
}

func TestParseArbitraryInputNoPanic(t *testing.T) {
	rng := uint64(7)
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	for i := 0; i < 300; i++ {
		n := int(next() % 40)
		b := make([]byte, n)
		for j := range b {
			b[j] = "Seq([x] String)Int Float:,"[next()%26]
		}
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}
