package batch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"flashextract/internal/batch"
	"flashextract/internal/engine"
	"flashextract/internal/metrics"
	"flashextract/internal/schema"
	"flashextract/internal/sheetlang"
	"flashextract/internal/textlang"
)

// learnTextProgram learns the chair-inventory program of the CLI tests and
// returns its serialized artifact.
func learnTextProgram(t *testing.T) []byte {
	t.Helper()
	doc := textlang.NewDocument("inventory\nChair: Aeron (price: $540.00)\nChair: Tulip (price: $99.99)\n")
	sch := schema.MustParse(`Struct(Names: Seq([name] String), Prices: Seq([price] Float))`)
	s := engine.NewSession(doc, sch)
	for _, ex := range []struct{ color, sub string }{
		{"name", "Aeron"}, {"name", "Tulip"}, {"price", "540.00"}, {"price", "99.99"},
	} {
		r, ok := doc.FindRegion(ex.sub, 0)
		if !ok {
			t.Fatalf("example %q not found", ex.sub)
		}
		if err := s.AddPositive(ex.color, r); err != nil {
			t.Fatal(err)
		}
	}
	return learnAndSave(t, s, doc.Language())
}

// learnSheetProgram learns a two-column part/price extraction over a CSV
// workbook. Sheet programs extract cell text verbatim, so documents whose
// cells hold "007"-style ints and ".5"-style floats reach the JSON emitter
// unchanged — the end-to-end regression the emitter fix guarantees.
func learnSheetProgram(t *testing.T) []byte {
	t.Helper()
	doc := sheetlang.MustFromCSV("Name,Price\nBolt,0.50\nNut,1.25\nWasher,2.00\n")
	sch := schema.MustParse(`Seq([rec] Struct(Part: [part] String, Price: [price] Float))`)
	s := engine.NewSession(doc, sch)
	for _, r := range []struct{ r1, c1, r2, c2 int }{{1, 0, 1, 1}, {2, 0, 2, 1}} {
		if err := s.AddPositive("rec", doc.Rect(r.r1, r.c1, r.r2, r.c2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddPositive("part", doc.CellAt(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPositive("price", doc.CellAt(1, 1)); err != nil {
		t.Fatal(err)
	}
	return learnAndSave(t, s, doc.Language())
}

func learnAndSave(t *testing.T, s *engine.Session, lang engine.Language) []byte {
	t.Helper()
	for _, fi := range s.Schema().Fields() {
		if _, _, err := s.Learn(fi.Color()); err != nil {
			t.Fatalf("learning %s: %v", fi.Color(), err)
		}
		if err := s.Commit(fi.Color()); err != nil {
			t.Fatal(err)
		}
	}
	q, err := s.Program()
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := engine.SaveSchemaProgram(q, lang)
	if err != nil {
		t.Fatal(err)
	}
	return artifact
}

func chairDoc(name, price string) string {
	return fmt.Sprintf("inventory\nChair: %s (price: $%s)\n", name, price)
}

// decodeLines unmarshals every NDJSON line, failing on any invalid JSON.
func decodeLines(t *testing.T, out string) []batch.Record {
	t.Helper()
	var recs []batch.Record
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d is not valid JSON: %q", i, line)
		}
		var r batch.Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		recs = append(recs, r)
	}
	return recs
}

func TestBatchEndToEnd(t *testing.T) {
	prog := learnTextProgram(t)
	sources := []batch.Source{
		batch.StringSource("a.txt", chairDoc("Bistro", "75.40")),
		batch.StringSource("b.txt", chairDoc("Windsor", "185.00")),
		batch.StringSource("c.txt", chairDoc("Tulip", "99.99")),
	}
	var out bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "text", Workers: 2, Ordered: true,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Docs != 3 || sum.Errors != 0 || sum.Skipped != 0 || sum.Cancelled {
		t.Fatalf("summary = %+v", sum)
	}
	recs := decodeLines(t, out.String())
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, want := range []string{"Bistro", "Windsor", "Tulip"} {
		if recs[i].Index != i || !recs[i].OK || !strings.Contains(string(recs[i].Data), want) {
			t.Errorf("record %d = %+v, want data containing %q", i, recs[i], want)
		}
	}
}

// TestBatchValidJSONForHostileNumbers runs a sheet program over workbooks
// whose cells hold the number spellings that used to produce invalid JSON
// ("007", ".5", "+.5"). Every line must pass json.Valid and the values
// must arrive normalized.
func TestBatchValidJSONForHostileNumbers(t *testing.T) {
	prog := learnSheetProgram(t)
	sources := []batch.Source{
		batch.StringSource("zeros.csv", "Name,Price\nBolt,007\nNut,.5\n"),
		batch.StringSource("plus.csv", "Name,Price\nCog,+.5\nPin,3.\n"),
	}
	var out bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "sheet", Workers: 2, Ordered: true,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("summary = %+v\n%s", sum, out.String())
	}
	recs := decodeLines(t, out.String())
	if !strings.Contains(string(recs[0].Data), `"Price":7`) ||
		!strings.Contains(string(recs[0].Data), `"Price":0.5`) {
		t.Errorf("zeros.csv data = %s, want normalized 7 and 0.5", recs[0].Data)
	}
	if !strings.Contains(string(recs[1].Data), `"Price":0.5`) ||
		!strings.Contains(string(recs[1].Data), `"Price":3.0`) {
		t.Errorf("plus.csv data = %s, want normalized 0.5 and 3.0", recs[1].Data)
	}
}

// TestBatchGoldenNDJSON pins the exact ordered output byte stream.
func TestBatchGoldenNDJSON(t *testing.T) {
	prog := learnSheetProgram(t)
	sources := []batch.Source{
		batch.StringSource("one.csv", "Name,Price\nBolt,007\n"),
		batch.StringSource("two.csv", "Name,Price\nNut,.5\nCog,1.25\n"),
		{Name: "bad.csv", Open: func() ([]byte, error) { return nil, errors.New("disk on fire") }},
	}
	var out bytes.Buffer
	if _, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "sheet", Workers: 3, Ordered: true,
	}, sources, &out); err != nil {
		t.Fatal(err)
	}
	want := `{"doc":"one.csv","index":0,"ok":true,"data":[{"Part":"Bolt","Price":7}]}
{"doc":"two.csv","index":1,"ok":true,"data":[{"Part":"Nut","Price":0.5},{"Part":"Cog","Price":1.25}]}
{"doc":"bad.csv","index":2,"ok":false,"kind":"read","error":"disk on fire"}
`
	if out.String() != want {
		t.Errorf("golden NDJSON mismatch:\ngot:\n%swant:\n%s", out.String(), want)
	}
}

// TestBatchFailureIsolation injects unreadable and unparseable documents
// among good ones: each must yield exactly one error record while the rest
// of the batch completes.
func TestBatchFailureIsolation(t *testing.T) {
	prog := learnSheetProgram(t)
	sources := []batch.Source{
		batch.StringSource("good1.csv", "Name,Price\nBolt,1.00\n"),
		{Name: "unreadable.csv", Open: func() ([]byte, error) { return nil, errors.New("permission denied") }},
		batch.StringSource("corrupt.csv", "Name,Price\n\"never closed,1.00\n"),
		batch.StringSource("good2.csv", "Name,Price\nNut,2.00\n"),
	}
	reg := metrics.NewRegistry()
	var out bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "sheet", Workers: 4, Ordered: true, Metrics: reg,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Docs != 4 || sum.Errors != 2 || sum.Cancelled {
		t.Fatalf("summary = %+v\n%s", sum, out.String())
	}
	recs := decodeLines(t, out.String())
	if !recs[0].OK || recs[1].OK || recs[2].OK || !recs[3].OK {
		t.Fatalf("ok flags wrong: %+v", recs)
	}
	if !strings.Contains(recs[1].Error, "permission denied") {
		t.Errorf("unreadable error = %q", recs[1].Error)
	}
	if !strings.Contains(recs[2].Error, "unterminated") {
		t.Errorf("corrupt error = %q", recs[2].Error)
	}
	if got := reg.Counter(metrics.BatchDocs); got != 4 {
		t.Errorf("batch.docs_processed = %d, want 4", got)
	}
	if got := reg.Counter(metrics.BatchErrors); got != 2 {
		t.Errorf("batch.errors = %d, want 2", got)
	}
	snap := reg.Snapshot()
	if h, ok := snap.Histograms[metrics.BatchDocSeconds]; !ok || h.Count != 4 {
		t.Errorf("latency histogram = %+v", snap.Histograms)
	}
}

// TestBatchDocTimeout gives each document an already-unmeetable deadline:
// every record must be a structured deadline error, not a hang or a crash.
func TestBatchDocTimeout(t *testing.T) {
	prog := learnTextProgram(t)
	sources := []batch.Source{
		batch.StringSource("a.txt", chairDoc("Bistro", "75.40")),
		batch.StringSource("b.txt", chairDoc("Windsor", "185.00")),
	}
	var out bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "text", Workers: 2, Ordered: true, DocTimeout: time.Nanosecond,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 2 {
		t.Fatalf("summary = %+v\n%s", sum, out.String())
	}
	for _, rec := range decodeLines(t, out.String()) {
		if rec.OK || (!strings.Contains(rec.Error, "deadline") && !strings.Contains(rec.Error, "budget")) {
			t.Errorf("record = %+v, want deadline error", rec)
		}
	}
}

// slowSource blocks Open until released, to hold documents in flight.
func slowSource(name string, release <-chan struct{}, data string) batch.Source {
	return batch.Source{Name: name, Open: func() ([]byte, error) {
		<-release
		return []byte(data), nil
	}}
}

// TestBatchCancelDrainsWithoutLeaks cancels mid-run and asserts: Run
// returns, every dispatched document still got exactly one record (a
// contiguous prefix in ordered mode), the rest are counted skipped, and no
// goroutines are left behind.
func TestBatchCancelDrainsWithoutLeaks(t *testing.T) {
	prog := learnTextProgram(t)
	before := runtime.NumGoroutine()

	release := make(chan struct{})
	var once sync.Once
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sources []batch.Source
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("doc%02d.txt", i)
		if i < 2 {
			// The first two documents block until the test cancels.
			sources = append(sources, slowSource(name, release, chairDoc("Bistro", "75.40")))
		} else {
			sources = append(sources, batch.StringSource(name, chairDoc("Windsor", "185.00")))
		}
	}
	go func() {
		// Let the pool pick up the blocking documents, then cancel and
		// release them: the feeder must stop dispatching and the workers
		// must finish what they hold.
		time.Sleep(10 * time.Millisecond)
		cancel()
		once.Do(func() { close(release) })
	}()
	var out bytes.Buffer
	sum, err := batch.Run(ctx, batch.Options{
		Program: prog, DocType: "text", Workers: 2, Ordered: true,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Cancelled {
		t.Fatalf("summary = %+v, want Cancelled", sum)
	}
	if sum.Docs+sum.Skipped != len(sources) {
		t.Fatalf("docs %d + skipped %d != %d inputs", sum.Docs, sum.Skipped, len(sources))
	}
	recs := decodeLines(t, out.String())
	if len(recs) != sum.Docs {
		t.Fatalf("emitted %d records, summary says %d", len(recs), sum.Docs)
	}
	for i, rec := range recs {
		if rec.Index != i {
			t.Fatalf("ordered drain emitted non-contiguous indices: %+v", recs)
		}
	}

	// All pool goroutines must have exited.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
	}
}

// TestBatchUnorderedCoversAll checks completion-order mode still emits one
// record per document with the right index labels.
func TestBatchUnorderedCoversAll(t *testing.T) {
	prog := learnTextProgram(t)
	var sources []batch.Source
	for i := 0; i < 12; i++ {
		sources = append(sources, batch.StringSource(fmt.Sprintf("d%02d", i), chairDoc("Bistro", "75.40")))
	}
	var out bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "text", Workers: 4,
	}, sources, &out)
	if err != nil || sum.Docs != 12 || sum.Errors != 0 {
		t.Fatalf("summary = %+v, err = %v", sum, err)
	}
	seen := map[int]bool{}
	for _, rec := range decodeLines(t, out.String()) {
		if seen[rec.Index] {
			t.Fatalf("duplicate index %d", rec.Index)
		}
		seen[rec.Index] = true
	}
	if len(seen) != 12 {
		t.Fatalf("covered %d indices", len(seen))
	}
}

func TestBatchBadOptions(t *testing.T) {
	prog := learnTextProgram(t)
	var out bytes.Buffer
	if _, err := batch.Run(context.Background(), batch.Options{Program: prog, DocType: "bogus"}, nil, &out); err == nil {
		t.Error("unknown doc type accepted")
	}
	if _, err := batch.Run(context.Background(), batch.Options{Program: []byte("not json"), DocType: "text"}, nil, &out); err == nil {
		t.Error("corrupt program accepted")
	}
	// Mismatched type: a text program loaded as a sheet program must fail
	// up front, not per document.
	if _, err := batch.Run(context.Background(), batch.Options{Program: prog, DocType: "sheet"}, nil, &out); err == nil {
		t.Error("text program accepted for sheet batch")
	}
}

// failingWriter errors after the first write.
type failingWriter struct{ n int }

func (w *failingWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("pipe closed")
	}
	return len(p), nil
}

func TestBatchWriteErrorSurfaces(t *testing.T) {
	prog := learnTextProgram(t)
	sources := []batch.Source{
		batch.StringSource("a", chairDoc("Bistro", "75.40")),
		batch.StringSource("b", chairDoc("Windsor", "185.00")),
		batch.StringSource("c", chairDoc("Tulip", "99.99")),
	}
	_, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "text", Workers: 1, Ordered: true,
	}, sources, &failingWriter{})
	if err == nil || !strings.Contains(err.Error(), "pipe closed") {
		t.Fatalf("err = %v, want write error", err)
	}
}
