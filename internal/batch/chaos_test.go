package batch_test

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"flashextract/internal/batch"
	"flashextract/internal/faults"
	"flashextract/internal/metrics"
)

// chaosSources builds a corpus large enough that the default 0.5 fault
// rate hits several documents on any seed. Chair names stay alphabetic so
// the learned token programs generalize to every document.
func chaosSources(n int) []batch.Source {
	names := []string{
		"Aeron", "Bistro", "Windsor", "Tulip", "Eames", "Panton",
		"Tolix", "Cesca", "Womb", "Wassily", "Acapulco", "Barcelona",
	}
	var sources []batch.Source
	for i := 0; i < n; i++ {
		doc := fmt.Sprintf("doc%02d.txt", i)
		price := fmt.Sprintf("%d.%02d", 10+i, (i*7)%100)
		sources = append(sources, batch.StringSource(doc, chairDoc(names[i%len(names)], price)))
	}
	return sources
}

// TestChaosDifferential is the core chaos guarantee: a run with the
// default (transient/output-neutral) fault sites armed produces NDJSON
// byte-identical to a fault-free run, for several seeds, because every
// injected read fault is recovered by the bounded retry loop, worker
// stalls only perturb scheduling, and cache eviction storms only evict a
// memoization layer. At least one seed must actually exercise the retry
// path, or the test proves nothing.
func TestChaosDifferential(t *testing.T) {
	prog := learnTextProgram(t)
	sources := chaosSources(12)

	var clean bytes.Buffer
	if _, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "text", Workers: 3, Ordered: true,
	}, sources, &clean); err != nil {
		t.Fatal(err)
	}

	totalRetries := 0
	for seed := int64(1); seed <= 5; seed++ {
		reg := metrics.NewRegistry()
		var out bytes.Buffer
		sum, err := batch.Run(context.Background(), batch.Options{
			Program: prog, DocType: "text", Workers: 3, Ordered: true,
			Chaos: faults.New(seed), SelfCheck: true, Metrics: reg,
		}, sources, &out)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.String() != clean.String() {
			t.Errorf("seed %d: chaos output diverges from fault-free run:\nchaos:\n%sclean:\n%s",
				seed, out.String(), clean.String())
		}
		if sum.Errors != 0 {
			t.Errorf("seed %d: %d error records under transient-only chaos", seed, sum.Errors)
		}
		if got := int(reg.Counter(metrics.BatchRetries)); got != sum.Retries {
			t.Errorf("seed %d: metric batch_retries=%d, summary says %d", seed, got, sum.Retries)
		}
		totalRetries += sum.Retries
	}
	if totalRetries == 0 {
		t.Error("no seed exercised the retry path; differential is vacuous")
	}
}

// TestChaosDeterministicAcrossWorkerCounts pins the determinism claim the
// package documents: the same seed faults the same documents the same way
// regardless of pool size, so ordered output is identical at 1 and 4
// workers.
func TestChaosDeterministicAcrossWorkerCounts(t *testing.T) {
	prog := learnTextProgram(t)
	sources := chaosSources(8)
	var outs [2]bytes.Buffer
	for i, workers := range []int{1, 4} {
		if _, err := batch.Run(context.Background(), batch.Options{
			Program: prog, DocType: "text", Workers: workers, Ordered: true,
			Chaos: faults.New(7), SelfCheck: true,
		}, sources, &outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if outs[0].String() != outs[1].String() {
		t.Errorf("seed 7 output differs between 1 and 4 workers:\n%s---\n%s",
			outs[0].String(), outs[1].String())
	}
}

// TestChaosRetryExhaustionIsReadError arms doc_read with up to 10 planned
// failures per document — more than the 3-attempt retry budget. Documents
// whose hash plans few failures recover (counted as retries); the ones
// that exhaust the budget must become structured "read" records naming
// the injected fault — never a crash, and never a silent drop.
func TestChaosRetryExhaustionIsReadError(t *testing.T) {
	prog := learnTextProgram(t)
	inj, err := faults.ParseSpec("seed=2,rate=1.0,failures=10,sites=batch.doc_read")
	if err != nil {
		t.Fatal(err)
	}
	sources := chaosSources(8)
	var out bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "text", Workers: 2, Ordered: true, Chaos: inj,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors == 0 || sum.Retries == 0 {
		t.Fatalf("summary = %+v, want both exhausted and recovered documents", sum)
	}
	if sum.Docs != len(sources) {
		t.Fatalf("summary = %+v, want one record per document", sum)
	}
	for _, rec := range decodeLines(t, out.String()) {
		if !rec.OK && (rec.Kind != batch.KindRead || !strings.Contains(rec.Error, "injected")) {
			t.Errorf("record = %+v, want kind=read injected error", rec)
		}
	}
}

// TestChaosCorruptionIsParseNotPanic arms the destructive doc_parse site
// at rate 1.0, so every document's bytes are truncated at a hash-derived
// offset and suffixed with parser-hostile bytes. Every failure must be a
// structured record — kind "parse" when the CSV parser rejects the bytes,
// kind "run" when they still parse but extraction then fails — and the
// recover-to-"panic" backstop must never fire. At least one document must
// take the genuine parse-error path, or the classification is untested.
func TestChaosCorruptionIsParseNotPanic(t *testing.T) {
	prog := learnSheetProgram(t)
	inj, err := faults.ParseSpec("seed=3,rate=1.0,sites=batch.doc_parse")
	if err != nil {
		t.Fatal(err)
	}
	var sources []batch.Source
	for i := 0; i < 12; i++ {
		sources = append(sources, batch.StringSource(fmt.Sprintf("c%02d.csv", i),
			fmt.Sprintf("Name,Price\nBolt,%d.00\nNut,%d.50\n", i+1, i+2)))
	}
	var out bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "sheet", Workers: 2, Ordered: true, Chaos: inj,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors == 0 {
		t.Fatalf("summary = %+v, want corruption-induced errors\n%s", sum, out.String())
	}
	parseKinds := 0
	for _, rec := range decodeLines(t, out.String()) {
		switch {
		case rec.Kind == batch.KindPanic:
			t.Errorf("record = %+v: corruption reached the panic backstop", rec)
		case rec.Kind == batch.KindParse:
			parseKinds++
			if !strings.Contains(rec.Error, "unterminated") {
				t.Errorf("parse record = %+v, want the substrate's own diagnostic", rec)
			}
		case !rec.OK && rec.Kind != batch.KindRun:
			t.Errorf("record = %+v, want kind parse or run for corrupted bytes", rec)
		}
	}
	if parseKinds == 0 {
		t.Errorf("no document took the parse-error path:\n%s", out.String())
	}
}

// TestChaosBudgetTripIsBudgetKind arms the engine.budget site: a budget
// tripped mid-run must classify as a structured "budget" record.
func TestChaosBudgetTripIsBudgetKind(t *testing.T) {
	prog := learnTextProgram(t)
	inj, err := faults.ParseSpec("seed=1,rate=1.0,sites=engine.budget")
	if err != nil {
		t.Fatal(err)
	}
	sources := chaosSources(3)
	var out bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "text", Workers: 2, Ordered: true, Chaos: inj,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != len(sources) {
		t.Fatalf("summary = %+v, want all docs budget-tripped\n%s", sum, out.String())
	}
	for _, rec := range decodeLines(t, out.String()) {
		if rec.OK || rec.Kind != batch.KindBudget {
			t.Errorf("record = %+v, want kind=budget", rec)
		}
	}
}

// TestChaosConservationUnderCancellation cancels a chaos run (worker
// stalls armed, so cancellation lands mid-stall) and audits the monitor's
// counters: submitted == processed, in-flight drained to zero, one record
// per processed document, no goroutines leaked. This pins the
// double-count/leak class of bug in the pool's accounting.
func TestChaosConservationUnderCancellation(t *testing.T) {
	prog := learnTextProgram(t)
	before := runtime.NumGoroutine()
	inj, err := faults.ParseSpec("seed=4,rate=1.0,delay=20ms,sites=batch.worker_slow")
	if err != nil {
		t.Fatal(err)
	}
	sources := chaosSources(24)
	mon := &batch.Monitor{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	var out bytes.Buffer
	sum, err := batch.Run(ctx, batch.Options{
		Program: prog, DocType: "text", Workers: 2, Ordered: true,
		Chaos: inj, Monitor: mon,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Cancelled {
		t.Fatalf("summary = %+v, want Cancelled (cancel raced past the run?)", sum)
	}
	if cerr := mon.ConservationError(); cerr != nil {
		t.Fatal(cerr)
	}
	h := mon.Health()
	if h.Submitted != int64(sum.Docs) || h.Processed != int64(sum.Docs) || h.InFlight != 0 {
		t.Fatalf("health = %+v, summary = %+v: counters out of conservation", h, sum)
	}
	if recs := decodeLines(t, out.String()); len(recs) != sum.Docs {
		t.Fatalf("emitted %d records, summary says %d", len(recs), sum.Docs)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, now)
	}
}
