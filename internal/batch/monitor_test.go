package batch_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"flashextract/internal/batch"
	"flashextract/internal/trace"
)

// TestMonitorTracksRun runs a real batch with a Monitor attached and
// asserts the health snapshot converges to the run's summary and every
// document's span tree lands in the ring, newest first.
func TestMonitorTracksRun(t *testing.T) {
	prog := learnTextProgram(t)
	sources := []batch.Source{
		batch.StringSource("a.txt", chairDoc("Bistro", "75.40")),
		batch.StringSource("b.txt", chairDoc("Windsor", "185.00")),
		batch.StringSource("c.txt", "not a chair document at all"),
	}
	mon := &batch.Monitor{}
	var out bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "text", Workers: 2, Ordered: true,
		Monitor: mon, Trace: true,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Docs != 3 {
		t.Fatalf("summary = %+v", sum)
	}

	h := mon.Health()
	if h.Status != "done" {
		t.Fatalf("status = %q, want done", h.Status)
	}
	if h.WorkersAlive != 0 || h.InFlight != 0 {
		t.Fatalf("post-run liveness = %+v, want zeros", h)
	}
	if h.Processed != int64(sum.Docs) || h.Failed != int64(sum.Errors) {
		t.Fatalf("monitor %+v disagrees with summary %+v", h, sum)
	}

	roots := mon.RecentTraces(0)
	if len(roots) != 3 {
		t.Fatalf("retained traces = %d, want 3", len(roots))
	}
	seen := map[string]bool{}
	for _, root := range roots {
		if !strings.HasPrefix(root.Name(), "doc:") {
			t.Fatalf("root span %q lacks doc: prefix", root.Name())
		}
		seen[root.Name()] = true
		if root.Duration() <= 0 {
			t.Fatalf("root span %q not ended", root.Name())
		}
		// Every traced document synthesis runs under the doc root; the
		// extraction executes a learned program (no synthesis), so the
		// tree may be shallow, but the ok attr must be present.
		var hasOK bool
		for _, a := range root.Attrs() {
			if a.Key == "ok" {
				hasOK = true
			}
		}
		if !hasOK {
			t.Fatalf("root span %q missing ok attr", root.Name())
		}
	}
	for _, name := range []string{"doc:a.txt", "doc:b.txt", "doc:c.txt"} {
		if !seen[name] {
			t.Fatalf("missing trace for %s (have %v)", name, seen)
		}
	}
}

// TestMonitorRingBound asserts the trace ring drops oldest-first at its
// bound.
func TestMonitorRingBound(t *testing.T) {
	mon := &batch.Monitor{}
	prog := learnTextProgram(t)
	var sources []batch.Source
	for _, n := range []string{"1", "2", "3", "4", "5"} {
		sources = append(sources, batch.StringSource(n, chairDoc("Tulip", "99.99")))
	}
	var out bytes.Buffer
	_, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "text", Workers: 1, Ordered: true,
		Monitor: mon, Trace: true, TraceRing: 2,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	roots := mon.RecentTraces(0)
	if len(roots) != 2 {
		t.Fatalf("ring size = %d, want 2", len(roots))
	}
	if roots[0].Name() != "doc:5" || roots[1].Name() != "doc:4" {
		t.Fatalf("ring = %q, %q, want newest first", roots[0].Name(), roots[1].Name())
	}
}

// TestMonitorNilIsNoOp asserts every Monitor method is nil-safe, matching
// the nil-receiver contract relied on by the batch hot path.
func TestMonitorNilIsNoOp(t *testing.T) {
	var mon *batch.Monitor
	if h := mon.Health(); h.Status != "idle" {
		t.Fatalf("nil monitor health = %+v", h)
	}
	if tr := mon.RecentTraces(5); tr != nil {
		t.Fatalf("nil monitor traces = %v", tr)
	}
	mon.RecordTrace(&trace.Span{})
}
