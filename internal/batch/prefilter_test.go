package batch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"flashextract/internal/batch"
	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
	"flashextract/internal/faults"
)

// domainPrograms learns one schema program per domain (on the first corpus
// task of the domain, as the other differential tests do) exactly once per
// test binary.
var domainPrograms struct {
	once  sync.Once
	progs map[string][]byte
	srcs  map[string][]batch.Source
	err   error
}

func learnDomain(t *testing.T, domain string) ([]byte, []batch.Source) {
	t.Helper()
	domainPrograms.once.Do(func() {
		domainPrograms.progs = map[string][]byte{}
		domainPrograms.srcs = map[string][]batch.Source{}
		trainers := map[string]*bench.Task{}
		for _, task := range corpus.All() {
			if _, ok := trainers[task.Domain]; !ok {
				trainers[task.Domain] = task
			}
			domainPrograms.srcs[task.Domain] = append(domainPrograms.srcs[task.Domain],
				batch.StringSource(task.Name, task.Source))
		}
		for domain, trainer := range trainers {
			prog, err := bench.LearnSchemaProgram(trainer, 3)
			if err != nil {
				domainPrograms.err = fmt.Errorf("learning %s: %w", trainer.Name, err)
				return
			}
			domainPrograms.progs[domain] = prog
		}
	})
	if domainPrograms.err != nil {
		t.Fatal(domainPrograms.err)
	}
	prog, ok := domainPrograms.progs[domain]
	if !ok {
		t.Fatalf("no corpus tasks for domain %q", domain)
	}
	return prog, domainPrograms.srcs[domain]
}

// paddedSources is the corpus of a domain plus n synthetic non-matching
// documents, interleaved deterministically so padding is not all at the
// tail.
func paddedSources(domain string, real []batch.Source, n int) []batch.Source {
	pads := bench.PaddingDocs(domain, n, 42)
	out := make([]batch.Source, 0, len(real)+len(pads))
	for i := 0; i < len(real) || i < len(pads); i++ {
		if i < len(pads) {
			out = append(out, batch.StringSource(pads[i].Name, pads[i].Content))
		}
		if i < len(real) {
			out = append(out, real[i])
		}
	}
	return out
}

func runBatch(t *testing.T, opts batch.Options, sources []batch.Source) (string, batch.Summary) {
	t.Helper()
	var out bytes.Buffer
	sum, err := batch.Run(context.Background(), opts, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	return out.String(), sum
}

// TestPrefilterCorpusDifferential is the soundness acceptance check of the
// run-path prefilter: over every corpus document of a domain plus a pile
// of synthetic non-matching padding, the ordered NDJSON output with
// -prefilter must be byte-identical to the full run — at any worker count.
// It also pins the optimization's teeth: at least 80% of the padding must
// be rejected by the static admission test.
func TestPrefilterCorpusDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential is not short")
	}
	const padding = 40
	for _, domain := range []string{"text", "web", "sheet"} {
		domain := domain
		t.Run(domain, func(t *testing.T) {
			t.Parallel()
			prog, real := learnDomain(t, domain)
			sources := paddedSources(domain, real, padding)
			base := batch.Options{Program: prog, DocType: domain, Ordered: true}

			var ref string
			for _, workers := range []int{1, 4} {
				opts := base
				opts.Workers = workers
				off, offSum := runBatch(t, opts, sources)
				opts.Prefilter = true
				on, onSum := runBatch(t, opts, sources)
				if off != on {
					t.Fatalf("workers=%d: prefiltered output differs from full run:\n--- off ---\n%s--- on ---\n%s",
						workers, off, on)
				}
				if ref == "" {
					ref = off
				} else if off != ref {
					t.Fatalf("workers=%d output differs from workers=1", workers)
				}
				if offSum.PrefilterSkipped != 0 {
					t.Fatalf("prefilter-off run reported %d skips", offSum.PrefilterSkipped)
				}
				if onSum.Docs != len(sources) {
					t.Fatalf("prefilter-on run emitted %d of %d records", onSum.Docs, len(sources))
				}
				if min := padding * 8 / 10; onSum.PrefilterSkipped < min {
					t.Errorf("workers=%d: prefilter skipped %d docs, want >= %d of %d padding",
						workers, onSum.PrefilterSkipped, min, padding)
				}
			}
		})
	}
}

// TestDedupExactlyOnce: with -dedup, every distinct blob is extracted once
// and every duplicate replays — the hit count is exactly (documents -
// distinct contents) — without changing a byte of output.
func TestDedupExactlyOnce(t *testing.T) {
	prog, real := learnDomain(t, "text")
	sources := append([]batch.Source{}, real...)
	// Duplicate the first corpus document and one padding blob.
	dups := bench.DuplicateDocs("dup-real", sourceContent(t, real[0]), 6)
	pad := bench.PaddingDocs("text", 1, 7)[0]
	dups = append(dups, bench.DuplicateDocs("dup-pad", pad.Content, 4)...)
	for _, d := range dups {
		sources = append(sources, batch.StringSource(d.Name, d.Content))
	}
	unique := map[string]bool{}
	for _, s := range sources {
		unique[sourceContent(t, s)] = true
	}
	base := batch.Options{Program: prog, DocType: "text", Ordered: true, Workers: 4}
	off, _ := runBatch(t, base, sources)
	on := base
	on.Dedup = true
	onOut, onSum := runBatch(t, on, sources)
	if off != onOut {
		t.Fatalf("dedup changed the output:\n--- off ---\n%s--- on ---\n%s", off, onOut)
	}
	if want := len(sources) - len(unique); onSum.DedupHits != want {
		t.Errorf("DedupHits = %d, want %d (%d docs, %d distinct)",
			onSum.DedupHits, want, len(sources), len(unique))
	}
}

func sourceContent(t *testing.T, s batch.Source) string {
	t.Helper()
	data, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestResumeReplay: a second run pointed at the first run's manifest
// replays every journaled outcome instead of recomputing it, and its
// output is byte-identical to a cold run over the same corpus.
func TestResumeReplay(t *testing.T) {
	prog, real := learnDomain(t, "text")
	sources := paddedSources("text", real, 6)
	manifest := filepath.Join(t.TempDir(), "manifest.json")
	base := batch.Options{Program: prog, DocType: "text", Ordered: true, Workers: 2}

	first := base
	first.Resume = manifest
	_, firstSum := runBatch(t, first, sources[:len(sources)/2])
	if firstSum.ResumeHits != 0 {
		t.Fatalf("cold run reported %d resume hits", firstSum.ResumeHits)
	}

	cold, _ := runBatch(t, base, sources)
	second := base
	second.Resume = manifest
	warm, warmSum := runBatch(t, second, sources)
	if warm != cold {
		t.Fatalf("resumed output differs from cold run:\n--- cold ---\n%s--- warm ---\n%s", cold, warm)
	}
	if warmSum.ResumeHits != firstSum.Docs {
		t.Errorf("ResumeHits = %d, want %d (docs journaled by the first run)",
			warmSum.ResumeHits, firstSum.Docs)
	}
}

// TestShardUnion: the record multisets of the k/n shards union exactly to
// the unsharded run — no document lost, none duplicated.
func TestShardUnion(t *testing.T) {
	prog, real := learnDomain(t, "text")
	sources := paddedSources("text", real, 6)
	base := batch.Options{Program: prog, DocType: "text", Ordered: true, Workers: 2}
	full, _ := runBatch(t, base, sources)

	const n = 3
	var union []string
	for k := 1; k <= n; k++ {
		opts := base
		opts.ShardIndex, opts.ShardCount = k, n
		out, sum := runBatch(t, opts, sources)
		if sum.Docs+sum.ShardDropped != len(sources) {
			t.Fatalf("shard %d/%d: docs=%d dropped=%d of %d sources",
				k, n, sum.Docs, sum.ShardDropped, len(sources))
		}
		union = append(union, splitLines(out)...)
	}
	want := splitLines(full)
	sort.Strings(union)
	sort.Strings(want)
	if !equalStrings(union, want) {
		t.Fatalf("shard union (%d records) differs from unsharded run (%d records)", len(union), len(want))
	}
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPrefilterChaosDifferential: the shortcut paths mirror the chaos
// checkpoints of the full path, so even with every output-deterministic
// fault site armed (reads, corruption, stalls, budget trips, cache
// evictions), a prefiltered+deduped run is byte-identical to the full one
// under the same seed.
func TestPrefilterChaosDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos differential is not short")
	}
	spec := "seed=7,rate=0.4,sites=" + strings.Join([]string{
		faults.SiteDocRead, faults.SiteDocParse, faults.SiteWorkerSlow,
		faults.SiteBudget, faults.SiteCacheEvict,
	}, ";")
	for _, domain := range []string{"text", "sheet"} {
		domain := domain
		t.Run(domain, func(t *testing.T) {
			t.Parallel()
			prog, real := learnDomain(t, domain)
			sources := paddedSources(domain, real, 10)
			run := func(prefilter, dedup bool) string {
				inj, err := faults.ParseSpec(spec)
				if err != nil {
					t.Fatal(err)
				}
				out, _ := runBatch(t, batch.Options{
					Program: prog, DocType: domain, Ordered: true, Workers: 3,
					Chaos: inj, SelfCheck: true, Prefilter: prefilter, Dedup: dedup,
				}, sources)
				return out
			}
			off := run(false, false)
			on := run(true, true)
			if off != on {
				t.Fatalf("chaos output diverged:\n--- off ---\n%s--- on ---\n%s", off, on)
			}
			for i, line := range splitLines(off) {
				if !json.Valid([]byte(line)) {
					t.Errorf("line %d is not valid JSON: %q", i, line)
				}
			}
		})
	}
}
