package batch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"flashextract/internal/batch"
	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
	"flashextract/internal/faults"
	"flashextract/internal/provenance"
)

// TestProvenanceDifferential is the provenance guard: enabling execution
// capture must not perturb the main NDJSON stream by a single byte, over
// the full corpus of every domain — capture only observes operator
// outputs, it never changes them.
func TestProvenanceDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential is not short")
	}
	trainers := map[string]string{}
	domains := map[string][]batch.Source{}
	for _, task := range corpus.All() {
		if _, ok := trainers[task.Domain]; !ok {
			trainers[task.Domain] = task.Name
		}
		domains[task.Domain] = append(domains[task.Domain],
			batch.StringSource(task.Name, task.Source))
	}
	for domain, sources := range domains {
		domain, sources := domain, sources
		t.Run(domain, func(t *testing.T) {
			t.Parallel()
			prog, err := bench.LearnSchemaProgram(corpus.ByName(trainers[domain]), 3)
			if err != nil {
				t.Fatal(err)
			}
			run := func(prov bool, provOut *bytes.Buffer) string {
				var out bytes.Buffer
				opts := batch.Options{
					Program: prog, DocType: domain, Workers: 4, Ordered: true,
					Provenance: prov,
				}
				if provOut != nil {
					opts.ProvenanceOut = provOut
				}
				if _, err := batch.Run(context.Background(), opts, sources, &out); err != nil {
					t.Fatal(err)
				}
				return out.String()
			}
			var sidecar bytes.Buffer
			off := run(false, nil)
			on := run(true, &sidecar)
			if off != on {
				t.Errorf("provenance-on output differs from provenance-off:\n--- off ---\n%s--- on ---\n%s", off, on)
			}
			// The sidecar aligns line-for-line with the main stream.
			main := strings.Split(strings.TrimSuffix(on, "\n"), "\n")
			frames := strings.Split(strings.TrimSuffix(sidecar.String(), "\n"), "\n")
			if len(frames) != len(main) {
				t.Fatalf("%d explain frames for %d records", len(frames), len(main))
			}
			for i, line := range frames {
				var f provenance.Frame
				if err := json.Unmarshal([]byte(line), &f); err != nil {
					t.Fatalf("frame %d: %v", i, err)
				}
				if f.SchemaName != provenance.Schema {
					t.Fatalf("frame %d schema = %q", i, f.SchemaName)
				}
				var rec batch.Record
				if err := json.Unmarshal([]byte(main[i]), &rec); err != nil {
					t.Fatal(err)
				}
				if f.Doc != rec.Doc || f.Index != rec.Index {
					t.Fatalf("frame %d (%s #%d) does not match record (%s #%d)",
						i, f.Doc, f.Index, rec.Doc, rec.Index)
				}
				if rec.OK && f.Unavailable != "" {
					t.Fatalf("frame %d unavailable (%q) for an ok record", i, f.Unavailable)
				}
				if !rec.OK && f.Unavailable == "" {
					t.Fatalf("frame %d has no unavailable reason for error record %s", i, rec.Doc)
				}
			}
		})
	}
}

// TestProvenanceDifferentialUnderChaos extends the guard to fault
// injection: with the transient chaos sites armed, provenance-on output
// must still match the fault-free, provenance-off baseline.
func TestProvenanceDifferentialUnderChaos(t *testing.T) {
	prog := learnTextProgram(t)
	sources := chaosSources(12)

	var clean bytes.Buffer
	if _, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "text", Workers: 3, Ordered: true,
	}, sources, &clean); err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		var out, sidecar bytes.Buffer
		if _, err := batch.Run(context.Background(), batch.Options{
			Program: prog, DocType: "text", Workers: 3, Ordered: true,
			Provenance: true, ProvenanceOut: &sidecar,
			Chaos: faults.New(seed), SelfCheck: true,
		}, sources, &out); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.String() != clean.String() {
			t.Errorf("seed %d: provenance+chaos output diverges from clean run", seed)
		}
		if n := len(strings.Split(strings.TrimSuffix(sidecar.String(), "\n"), "\n")); n != len(sources) {
			t.Errorf("seed %d: %d frames for %d documents", seed, n, len(sources))
		}
	}
}

// TestProvenanceShortcutFrames pins the sidecar on the paths that skip
// re-execution: duplicates replay an outcome, so their frames say so
// instead of fabricating provenance.
func TestProvenanceShortcutFrames(t *testing.T) {
	prog := learnTextProgram(t)
	sources := []batch.Source{
		batch.StringSource("a.txt", chairDoc("Aeron", "12.00")),
		batch.StringSource("b.txt", chairDoc("Aeron", "12.00")), // identical bytes
	}
	var out, sidecar bytes.Buffer
	sum, err := batch.Run(context.Background(), batch.Options{
		Program: prog, DocType: "text", Workers: 1, Ordered: true,
		Dedup: true, Provenance: true, ProvenanceOut: &sidecar,
	}, sources, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.DedupHits != 1 {
		t.Fatalf("DedupHits = %d, want 1", sum.DedupHits)
	}
	frames := strings.Split(strings.TrimSuffix(sidecar.String(), "\n"), "\n")
	if len(frames) != 2 {
		t.Fatalf("%d frames, want 2", len(frames))
	}
	var first, second provenance.Frame
	if err := json.Unmarshal([]byte(frames[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(frames[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.Unavailable != "" || len(first.Leaves) == 0 {
		t.Fatalf("leader frame = %+v, want captured leaves", first)
	}
	if !strings.HasPrefix(second.Unavailable, "dedup:") {
		t.Fatalf("duplicate frame unavailable = %q, want dedup reason", second.Unavailable)
	}
}
