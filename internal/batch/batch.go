// Package batch is the serving-path runtime of the repository: it runs a
// saved schema extraction program (engine.SaveSchemaProgram) over a whole
// collection of documents — the "learn once from examples, then run over
// similar files" end state of §2 and §6 of the paper.
//
// The runtime is a bounded worker pool streaming NDJSON: one JSON record
// per input document, written as each document finishes (or in input order
// with Options.Ordered). Failures are isolated per document — a corrupt
// document yields a structured error record, never an aborted batch — and
// each document's run is bounded by Options.DocTimeout through the
// core.Budget/context plumbing of the synthesis stack. Cancelling the
// context (e.g. on SIGINT) drains gracefully: no new documents start,
// in-flight documents finish or trip their budget, and every dispatched
// document still gets exactly one record.
//
// Every emitted line is machine-checkably valid JSON: instance payloads
// are rendered by export.JSONValue (which the fixed number normalization
// of export makes RFC 8259-clean) and re-verified with json.Valid before
// the record is written.
package batch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"flashextract/internal/core"
	"flashextract/internal/docstore"
	"flashextract/internal/engine"
	"flashextract/internal/export"
	"flashextract/internal/faults"
	"flashextract/internal/logx"
	"flashextract/internal/metrics"
	"flashextract/internal/prefilter"
	"flashextract/internal/provenance"
	"flashextract/internal/reqid"
	"flashextract/internal/sheet"
	"flashextract/internal/sheetlang"
	"flashextract/internal/textlang"
	"flashextract/internal/trace"
	"flashextract/internal/weblang"
)

// Source is one input document of a batch: a name for the output records
// and a lazy reader, so a large collection is not resident all at once.
type Source struct {
	// Name labels the document in its output record (a file path, URL, …).
	Name string
	// Open returns the document's raw content.
	Open func() ([]byte, error)
}

// FileSource is a Source reading a file from disk.
func FileSource(path string) Source {
	return Source{Name: path, Open: func() ([]byte, error) { return os.ReadFile(path) }}
}

// StringSource is a Source over in-memory content.
func StringSource(name, data string) Source {
	return Source{Name: name, Open: func() ([]byte, error) { return []byte(data), nil }}
}

// ProgramSource supplies compiled program instances to the worker pool in
// place of per-worker deserialization of Options.Program. Acquire hands a
// worker an instance no other goroutine holds; Release returns it when the
// worker drains, so instances are reused across runs without ever being
// shared between concurrently running documents. The long-lived server's
// program registry implements it to amortize compilation across requests.
type ProgramSource interface {
	Acquire() (*engine.SchemaProgram, error)
	Release(*engine.SchemaProgram)
}

// Options configures a batch run.
type Options struct {
	// Program is the serialized schema extraction program artifact
	// (the output of SaveProgram / engine.SaveSchemaProgram). Ignored when
	// Programs is set.
	Program []byte
	// Programs, when non-nil, supplies the workers' compiled program
	// instances instead of Program — the learn-once/serve-many seam of the
	// persistent server.
	Programs ProgramSource
	// DocType is the document type the program was learned on: "text",
	// "web", or "sheet".
	DocType string
	// Workers bounds the worker pool; 0 or negative means GOMAXPROCS.
	Workers int
	// DocTimeout bounds each document's run (0 = none). The deadline is
	// enforced cooperatively by engine.RunContext via a core.Budget.
	DocTimeout time.Duration
	// Ordered emits records in input order instead of completion order,
	// making the output byte stream deterministic for any worker count.
	Ordered bool
	// Metrics receives batch_docs_processed / batch_errors counters and
	// the batch_doc_run_seconds latency histogram; nil means none.
	Metrics metrics.Sink
	// Monitor, when non-nil, receives live worker-pool and per-document
	// state and retains recent document span trees — the backing store of
	// the admin server's /healthz and /trace/last endpoints.
	Monitor *Monitor
	// Trace turns on per-document span trees: each document is run under
	// its own tracer with a "doc:<name>" root span, and the finished tree
	// is pushed into Monitor's ring. Requires Monitor (otherwise the trees
	// would have no reader and the option is ignored).
	Trace bool
	// TraceRing bounds Monitor's retained trace trees; 0 means
	// DefaultTraceRing.
	TraceRing int
	// Chaos arms deterministic fault injection for the run (nil = off).
	// The injector is also installed in the per-document context, so
	// engine-level sites (faults.SiteBudget) see it too.
	Chaos *faults.Injector
	// SelfCheck verifies the well-formedness invariants of every extracted
	// instance (engine.CheckInstance) before its record is emitted as ok;
	// a violation becomes a structured "invariant" error record.
	SelfCheck bool
	// Prefilter enables the static admission test: the program is analyzed
	// once for a conservative condition every matching document must meet,
	// and documents failing it short-circuit to the (precomputed) zero-match
	// record without parsing or building an evaluation cache. Sound by
	// construction — the output stream is byte-identical with or without it.
	Prefilter bool
	// Dedup enables the content-addressed store: documents with identical
	// raw bytes are extracted once per run and the result replayed for the
	// duplicates (outcomes that are a pure function of content only).
	Dedup bool
	// Resume is the path of a digest→outcome manifest (NDJSON). When set,
	// outcomes recorded by an earlier run are replayed instead of
	// re-extracted, and this run's deterministic outcomes are appended —
	// making interrupted batches resumable. Resume assumes the same program
	// and options as the run that wrote the manifest.
	Resume string
	// ShardIndex/ShardCount select the 1-based hash-range shard of the
	// corpus this run owns (k of n); documents outside it produce no
	// record, so n shards' outputs union to the unsharded run. 0/0 (the
	// zero values) disable sharding.
	ShardIndex int
	ShardCount int
	// Provenance runs every fully-executed document with execution capture
	// and writes one flashextract-explain/v1 frame per emitted record to
	// ProvenanceOut — a sidecar stream aligned line-for-line with the main
	// output. Records whose document did not re-execute the program (error
	// paths, prefilter/dedup/resume shortcuts) get a frame with the
	// "unavailable" reason set. The main NDJSON stream is unaffected:
	// capture only observes operator outputs, so output is byte-identical
	// with or without this option (see the provenance differential tests).
	Provenance bool
	// ProvenanceOut receives the explain frames (NDJSON); nil discards
	// them.
	ProvenanceOut io.Writer
}

// The failure kinds of a Record, so downstream consumers can distinguish
// failure modes structurally instead of parsing error strings.
const (
	// KindRead: the source could not be opened/read (after retries).
	KindRead = "read"
	// KindParse: the document's bytes did not parse as its type.
	KindParse = "parse"
	// KindProgram: the program artifact failed to deserialize in a worker.
	KindProgram = "program"
	// KindCancelled: the run's context was cancelled before or during the
	// document.
	KindCancelled = "cancelled"
	// KindBudget: the per-document deadline or budget was exhausted.
	KindBudget = "budget"
	// KindRun: the extraction program itself failed on the document.
	KindRun = "run"
	// KindRender: the extracted instance did not render to valid JSON.
	KindRender = "render"
	// KindInvariant: the instance failed the post-Fill self-check.
	KindInvariant = "invariant"
	// KindPanic: a panic escaped the document's processing and was
	// recovered at the isolation boundary.
	KindPanic = "panic"
)

// Record is one NDJSON output line: the result of running the program on
// one input document, or the structured error that isolated its failure.
type Record struct {
	// Doc is the source's name.
	Doc string `json:"doc"`
	// Index is the source's position in the input, so completion-order
	// output can be re-ordered downstream.
	Index int `json:"index"`
	// OK distinguishes results from error records.
	OK bool `json:"ok"`
	// Kind classifies the failure (one of the Kind* constants; error
	// records only).
	Kind string `json:"kind,omitempty"`
	// Data is the extracted instance as a compact JSON value (results only).
	Data json.RawMessage `json:"data,omitempty"`
	// Error describes the per-document failure (error records only).
	Error string `json:"error,omitempty"`

	// retries is the number of extra read attempts this document consumed,
	// aggregated into Summary.Retries (not part of the NDJSON record).
	retries int
	// drop marks a document outside this run's shard: it flows through the
	// ordered-emission plumbing (keeping the pending map gap-free) but is
	// never written and counts only toward Summary.ShardDropped.
	drop bool
	// skippedByFilter / dedupHit / resumeHit tag how a shortcut produced
	// this record, for the run's counters and trace attributes.
	skippedByFilter bool
	dedupHit        bool
	resumeHit       bool
	// prov is the record's marshaled flashextract-explain/v1 frame, set on
	// the full execution path when Options.Provenance is on. Unexported, so
	// it never perturbs the main NDJSON line.
	prov json.RawMessage
}

// Summary aggregates one batch run.
type Summary struct {
	// Docs is the number of records emitted (results and errors).
	Docs int
	// Errors is the number of error records among them.
	Errors int
	// Skipped is the number of input documents never started because the
	// context was cancelled.
	Skipped int
	// Cancelled reports whether the run was cut short by its context.
	Cancelled bool
	// Retries is the number of retried document-read attempts across the
	// run (attempts beyond each document's first).
	Retries int
	// PrefilterSkipped is the number of documents rejected by the static
	// admission test, whose zero-match records were emitted without
	// parsing or running the program.
	PrefilterSkipped int
	// DedupHits is the number of documents replayed from an identical blob
	// extracted earlier in this run.
	DedupHits int
	// ResumeHits is the number of documents replayed from the resume
	// manifest of an earlier run.
	ResumeHits int
	// ShardDropped is the number of documents outside this run's
	// hash-range shard (no record emitted).
	ShardDropped int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// job pairs a source with its input position.
type job struct {
	index int
	src   Source
}

// Run executes the batch: it validates the options, spins up the worker
// pool, and streams one record per dispatched document to out. Run returns
// only after every goroutine it started has exited; a cancelled context
// drains in-flight documents rather than abandoning them. The returned
// error reports option/program problems or a failed write to out —
// per-document failures are error records in the stream, not errors here.
func Run(ctx context.Context, opts Options, sources []Source, out io.Writer) (Summary, error) {
	start := time.Now()
	lang, err := languageFor(opts.DocType)
	if err != nil {
		return Summary{}, err
	}
	// Validate the artifact once up front so a corrupt program fails the
	// batch immediately instead of once per document; the instance also
	// feeds the static prefilter analysis below (it is never run).
	var prog0 *engine.SchemaProgram
	if opts.Programs != nil {
		prog0, err = opts.Programs.Acquire()
	} else {
		prog0, err = engine.LoadSchemaProgram(opts.Program, lang)
	}
	if err != nil {
		return Summary{}, err
	}
	// prog0 is only read (prefilter analysis, the empty-outcome probe), so
	// a registry-owned instance can go back to its pool as soon as the
	// pre-run analysis is done — including on every error path.
	releaseProg0 := func() {
		if opts.Programs != nil && prog0 != nil {
			opts.Programs.Release(prog0)
			prog0 = nil
		}
	}
	defer releaseProg0()
	env := &runEnv{shard: docstore.Shard{K: opts.ShardIndex, N: opts.ShardCount}}
	if err := env.shard.Validate(); err != nil {
		return Summary{}, err
	}
	if opts.Prefilter {
		f, err := prefilter.FromSchemaProgram(prog0, opts.DocType)
		if err != nil {
			return Summary{}, err
		}
		// A non-selective filter admits everything; skip the per-document
		// admission probe entirely rather than paying it for nothing.
		if f.Selective() {
			empty, err := emptyOutcome(prog0, opts.DocType, opts.SelfCheck)
			if err != nil {
				return Summary{}, err
			}
			env.filter, env.empty = f, empty
		}
	}
	if opts.Dedup {
		env.store = docstore.NewStore()
	}
	if opts.Resume != "" {
		m, err := docstore.OpenManifest(opts.Resume)
		if err != nil {
			return Summary{}, err
		}
		env.manifest = m
	}
	releaseProg0()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) && len(sources) > 0 {
		workers = len(sources)
	}
	sink := opts.Metrics
	if sink == nil {
		sink = metrics.Nop
	}
	mon := opts.Monitor
	mon.setRingCap(opts.TraceRing)
	mon.runStarted(start)
	ctx = faults.Into(ctx, opts.Chaos)
	log := logx.From(ctx)
	log.Info("batch run starting", "docs", len(sources), "workers", workers,
		"doc_type", opts.DocType, "ordered", opts.Ordered, "chaos", opts.Chaos.String())

	// submitted counts documents actually handed to a worker; the jobs
	// channel is unbuffered, so a completed send means a worker holds the
	// job and will produce exactly one record for it. It is read again only
	// after the results channel closes, which happens-after the dispatch
	// goroutine finishes.
	submitted := 0
	jobs := make(chan job)
	results := make(chan Record, workers)
	go func() {
		defer close(jobs)
		for i, src := range sources {
			select {
			case jobs <- job{index: i, src: src}:
				submitted++
				mon.docSubmitted()
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mon.workerUp()
			defer mon.workerDown()
			// Each worker gets its own program instance — deserialized here,
			// or checked out of the ProgramSource pool — so program state is
			// never shared across concurrently running documents.
			var prog *engine.SchemaProgram
			var err error
			if opts.Programs != nil {
				prog, err = opts.Programs.Acquire()
				if prog != nil {
					defer opts.Programs.Release(prog)
				}
			} else {
				prog, err = engine.LoadSchemaProgram(opts.Program, lang)
			}
			for j := range jobs {
				var rec Record
				if err != nil {
					rec = Record{Doc: j.src.Name, Index: j.index, Kind: KindProgram, Error: err.Error()}
					mon.docStarted()
					mon.docFinished(false, nil)
				} else {
					rec = processDoc(ctx, prog, opts, env, j, sink)
				}
				results <- rec
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	sum := Summary{}
	var writeErr error
	emit := func(rec Record) {
		sum.Retries += rec.retries
		if rec.drop {
			sum.ShardDropped++
			return
		}
		sum.Docs++
		if !rec.OK {
			sum.Errors++
		}
		if rec.skippedByFilter {
			sum.PrefilterSkipped++
		}
		if rec.dedupHit {
			sum.DedupHits++
		}
		if rec.resumeHit {
			sum.ResumeHits++
		}
		if writeErr != nil {
			return
		}
		writeErr = writeRecord(out, rec)
		// The provenance sidecar is written by the same emit path as the
		// record, so ordered runs order the two streams identically and a
		// frame exists for every emitted line.
		if writeErr == nil && opts.Provenance && opts.ProvenanceOut != nil {
			writeErr = writeProvenance(opts.ProvenanceOut, rec)
		}
	}
	// In ordered mode, records are held until every lower index has been
	// written. Dispatch is sequential from index 0 and every dispatched
	// document produces exactly one record, so the pending set always
	// drains completely — even when cancellation cuts dispatch short.
	pending := map[int]Record{}
	next := 0
	for rec := range results {
		if !opts.Ordered {
			emit(rec)
			continue
		}
		pending[rec.Index] = rec
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			emit(r)
		}
	}
	sum.Skipped = len(sources) - sum.Docs - sum.ShardDropped
	sum.Cancelled = ctx.Err() != nil
	sum.Elapsed = time.Since(start)
	// The run is drained: mark it finished *before* the conservation check,
	// so a shared monitor knows this run no longer accounts for in-flight
	// documents. (In a persistent server several runs share one monitor;
	// ConservationError only judges a fully quiescent monitor.)
	mon.runFinished(time.Now())
	// Counter conservation: every dispatched document produced exactly one
	// record or one shard drop, and the monitor agrees (processed ==
	// submitted, nothing left in flight). A violation is a runtime bug, not
	// a document failure, so it fails the run.
	if sum.Docs+sum.ShardDropped != submitted {
		if writeErr == nil {
			writeErr = fmt.Errorf("batch: conservation violated: %d records for %d dispatched documents", sum.Docs+sum.ShardDropped, submitted)
		}
	} else if err := mon.ConservationError(); err != nil && writeErr == nil {
		writeErr = err
	}
	// The resume manifest's durability matters to the next run, so a failed
	// append or close fails this one.
	if env.manifest != nil {
		if cerr := env.manifest.Close(); cerr != nil && writeErr == nil {
			writeErr = cerr
		}
	}
	log.Info("batch run finished", "docs", sum.Docs, "errors", sum.Errors,
		"skipped", sum.Skipped, "cancelled", sum.Cancelled, "retries", sum.Retries,
		"prefilter_skipped", sum.PrefilterSkipped, "dedup_hits", sum.DedupHits,
		"resume_hits", sum.ResumeHits, "shard_dropped", sum.ShardDropped,
		"elapsed", sum.Elapsed)
	return sum, writeErr
}

// runEnv is the per-run machinery of the prefilter and docstore layers,
// shared read-mostly across the worker pool.
type runEnv struct {
	// filter is the static admission test (nil = prefiltering off or the
	// analysis produced a condition that admits everything).
	filter *prefilter.Filter
	// empty is the precomputed outcome of a zero-match document — what the
	// full path provably produces for any document the filter rejects.
	empty *docstore.Outcome
	// store is the in-run content-addressed singleflight index (nil = off).
	store *docstore.Store
	// manifest is the cross-run resume journal (nil = off).
	manifest *docstore.Manifest
	// shard is this run's hash-range partition (zero value = everything).
	shard docstore.Shard
}

// needsDigest reports whether any enabled layer keys off document content.
func (e *runEnv) needsDigest() bool {
	return e.store != nil || e.manifest != nil || e.shard.Enabled()
}

// processDoc runs the program over one document, converting every failure
// mode — unreadable source, unparseable document, budget exhaustion,
// renderer fault, even a panic — into a structured error record. With
// Options.Trace the document runs under its own tracer whose "doc:<name>"
// root span (with the full execution tree beneath it) lands in the
// Monitor's ring — per-document tracers keep concurrent documents' trees
// disjoint without any cross-worker synchronization on the hot path.
func processDoc(ctx context.Context, prog *engine.SchemaProgram, opts Options, env *runEnv, j job, sink metrics.Sink) (rec Record) {
	start := time.Now()
	rec = Record{Doc: j.src.Name, Index: j.index}
	var root *trace.Span
	if parent := trace.FromContext(ctx); parent != nil {
		// A request-scoped span (the serve loop's request root) already owns
		// this context: the document becomes a child of the request tree
		// instead of starting a tracer of its own.
		ctx, root = trace.Start(ctx, "doc:"+j.src.Name)
		root.SetInt("index", int64(j.index))
	} else if opts.Trace && opts.Monitor != nil {
		ctx, root = trace.NewTracer().StartRoot(ctx, "doc:"+j.src.Name)
		root.SetInt("index", int64(j.index))
	}
	if rid := reqid.From(ctx); rid != "" {
		root.SetString("request_id", rid)
	}
	opts.Monitor.docStarted()
	defer func() {
		if r := recover(); r != nil {
			rec.OK = false
			rec.Data = nil
			rec.Kind = KindPanic
			rec.Error = fmt.Sprintf("panic: %v", r)
		}
		if rec.drop {
			// Outside this run's shard: no record, no error accounting —
			// only the drop counter and the monitor's conservation pair.
			sink.Count(metrics.BatchShardDropped, 1)
			opts.Monitor.addShardDropped(1)
			root.SetBool("shard_dropped", true)
			root.End()
			opts.Monitor.docFinished(true, root)
			return
		}
		sink.Count(metrics.BatchDocs, 1)
		if !rec.OK {
			sink.Count(metrics.BatchErrors, 1)
		}
		if rec.skippedByFilter {
			sink.Count(metrics.BatchPrefilterSkipped, 1)
			opts.Monitor.addPrefilterSkipped(1)
			root.SetBool("prefilter_skipped", true)
		}
		if rec.dedupHit {
			sink.Count(metrics.BatchDedupHits, 1)
			opts.Monitor.addDedupHits(1)
			root.SetBool("dedup_replayed", true)
		}
		if rec.resumeHit {
			sink.Count(metrics.BatchResumeHits, 1)
			opts.Monitor.addResumeHits(1)
			root.SetBool("resume_replayed", true)
		}
		sink.Observe(metrics.BatchDocSeconds, time.Since(start).Seconds())
		root.SetBool("ok", rec.OK)
		if rec.Error != "" {
			root.SetString("error", rec.Error)
		}
		root.End()
		opts.Monitor.docFinished(rec.OK, root)
		lg := logx.From(ctx)
		if rec.OK {
			lg.Debug("document processed", "doc", rec.Doc, "index", rec.Index,
				"elapsed", time.Since(start))
		} else {
			lg.Warn("document failed", "doc", rec.Doc, "index", rec.Index,
				"error", rec.Error, "elapsed", time.Since(start))
		}
	}()
	// A document dispatched just as the run is cancelled still gets its
	// record — but a cheap structured one, without opening the source.
	if ctx.Err() != nil {
		rec.Kind = KindCancelled
		rec.Error = "cancelled before start: " + ctx.Err().Error()
		return rec
	}
	inj := faults.From(ctx)
	// Chaos site: stall this worker before it touches the document — a
	// scheduling perturbation that must not change the output stream.
	if d := inj.Delay(faults.SiteWorkerSlow, j.src.Name); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	// Transient read failures — injected (faults.SiteDocRead) or organic
	// I/O timeouts — are retried with bounded, jittered backoff; permanent
	// failures (missing file, permission) surface immediately.
	var data []byte
	tries, err := faults.DefaultRetry.Do(ctx, j.src.Name, retryableRead, func() error {
		if ferr := inj.Fail(faults.SiteDocRead, j.src.Name); ferr != nil {
			return ferr
		}
		var oerr error
		data, oerr = j.src.Open()
		return oerr
	})
	if tries > 1 {
		rec.retries = tries - 1
		sink.Count(metrics.BatchRetries, int64(tries-1))
		opts.Monitor.addRetries(int64(tries - 1))
	}
	if err != nil {
		rec.Kind = KindRead
		rec.Error = err.Error()
		return rec
	}
	// Chaos site: corrupt the raw bytes before substrate parsing, turning
	// this document into a structured parse failure. Hashing happens after
	// corruption, so the content address names the bytes that will actually
	// be extracted.
	data = inj.Corrupt(faults.SiteDocParse, j.src.Name, data)
	if env.needsDigest() {
		dg := docstore.Hash(data)
		// Sharding first: a document outside this run's range must produce
		// no record at all — regardless of the prefilter — so the n shards'
		// outputs union exactly to the unsharded run.
		if !env.shard.Owns(dg) {
			rec.drop = true
			return rec
		}
		// Resume: replay the persisted outcome of an earlier run.
		if env.manifest != nil {
			if oc, ok := env.manifest.Lookup(dg); ok {
				rec.resumeHit = true
				applyOutcome(ctx, inj, j.src.Name, &rec, oc)
				return rec
			}
		}
		if env.store != nil {
			done, leader := env.store.Begin(dg)
			if leader {
				// Publish this document's outcome for in-run duplicates and
				// the resume manifest. Registered after the recover defer, so
				// on a panic it runs first and sees the pre-recover record
				// ({OK:false, Kind:""}), which shareableOutcome maps to nil —
				// panics are never replayed.
				defer func() {
					oc := shareableOutcome(rec)
					env.store.Complete(dg, oc)
					if env.manifest != nil && oc != nil {
						env.manifest.Append(dg, oc)
					}
				}()
			} else {
				select {
				case <-done:
					if oc := env.store.Outcome(dg); oc != nil {
						rec.dedupHit = true
						applyOutcome(ctx, inj, j.src.Name, &rec, oc)
						return rec
					}
					// The leader's outcome was not replayable (cancelled,
					// budget-tripped, panicked): compute our own below.
				case <-ctx.Done():
					// Don't block a draining run on the leader; fall through —
					// the full path resolves quickly under a cancelled context.
				}
			}
		} else if env.manifest != nil {
			// Resume without dedup: still journal this outcome.
			defer func() {
				if oc := shareableOutcome(rec); oc != nil {
					env.manifest.Append(dg, oc)
				}
			}()
		}
	}
	// Static admission: a document failing the program's conservative
	// prefilter condition provably yields zero matches, so the precomputed
	// zero-match outcome stands in for the whole parse-and-run pipeline.
	// (Admit returns true for documents its substrate scanner rejects, so
	// parse errors always surface through the full path below.)
	if env.filter != nil && !env.filter.Admit(string(data)) {
		rec.skippedByFilter = true
		applyOutcome(ctx, inj, j.src.Name, &rec, env.empty)
		return rec
	}
	doc, err := newDocument(opts.DocType, string(data))
	if err != nil {
		rec.Kind = KindParse
		rec.Error = err.Error()
		return rec
	}
	// Chaos site: force an eviction storm in the document's evaluation
	// cache. The cache is pure memoization, so output must not change.
	if inj.Hit(faults.SiteCacheEvict, j.src.Name) {
		if lc, ok := doc.(interface{ LimitCacheBytes(int64) }); ok {
			lc.LimitCacheBytes(1)
		}
	}
	dctx := ctx
	if opts.DocTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(dctx, opts.DocTimeout)
		defer cancel()
	}
	dctx, bud := core.WithBudget(dctx, core.SynthBudget{})
	// Chaos site: exhaust the run budget before extraction starts.
	if inj.Hit(faults.SiteBudget, "run:"+j.src.Name) {
		bud.Trip(core.ReasonInjected)
	}
	var inst *engine.Instance
	var caps map[string]*core.ExecCapture
	if opts.Provenance {
		inst, _, caps, err = prog.RunCapturedContext(dctx, doc)
	} else {
		inst, _, err = prog.RunContext(dctx, doc)
	}
	if err != nil {
		rec.Kind = classifyRunError(err, bud)
		rec.Error = err.Error()
		return rec
	}
	if opts.SelfCheck {
		if err := engine.CheckInstance(prog.Schema, inst, doc.WholeRegion()); err != nil {
			rec.Kind = KindInvariant
			rec.Error = err.Error()
			return rec
		}
	}
	raw, err := export.JSONValue(inst)
	if err != nil {
		rec.Kind = KindRender
		rec.Error = err.Error()
		return rec
	}
	rec.OK = true
	rec.Data = raw
	if opts.Provenance {
		frame := provenance.Explain(prog, inst, caps, j.src.Name, j.index)
		frame.RequestID = reqid.From(ctx)
		if fb, err := json.Marshal(frame); err == nil {
			rec.prov = fb
		}
	}
	return rec
}

// writeProvenance writes the record's explain frame to the sidecar stream,
// synthesizing an "unavailable" frame for records whose document did not
// re-execute the program.
func writeProvenance(out io.Writer, rec Record) error {
	line := rec.prov
	if line == nil {
		frame := provenance.Unavailable(rec.Doc, rec.Index, unavailableReason(rec))
		b, err := json.Marshal(frame)
		if err != nil {
			return fmt.Errorf("batch: marshaling explain frame: %w", err)
		}
		line = b
	}
	line = append(line, '\n')
	if _, err := out.Write(line); err != nil {
		return fmt.Errorf("batch: writing provenance: %w", err)
	}
	return nil
}

// unavailableReason classifies why a record carries no captured frame.
func unavailableReason(rec Record) string {
	switch {
	case rec.skippedByFilter:
		return "prefilter: document provably yields zero matches; program not re-executed"
	case rec.dedupHit:
		return "dedup: outcome replayed from an identical document"
	case rec.resumeHit:
		return "resume: outcome replayed from an earlier run's manifest"
	case !rec.OK:
		return "error: " + rec.Kind
	default:
		return "not captured"
	}
}

// applyOutcome copies a replayed (or precomputed) outcome into the record,
// first mirroring the chaos and cancellation checkpoints the full path
// would have hit for this document name, so shortcut paths stay
// byte-identical to full runs under fault injection. A parse outcome
// replays as-is: the full path fails at parse before reaching the
// cache-evict and budget sites, so they must not be consumed here either.
func applyOutcome(ctx context.Context, inj *faults.Injector, name string, rec *Record, oc *docstore.Outcome) {
	if oc.Kind != KindParse {
		// Parity with the full path's cache-eviction site: there is no cache
		// to evict on a shortcut, but the injector decision is still drawn.
		inj.Hit(faults.SiteCacheEvict, name)
		budget := inj.Hit(faults.SiteBudget, "run:"+name)
		if err := ctx.Err(); err != nil {
			rec.Kind = KindCancelled
			rec.Error = err.Error()
			return
		}
		if budget {
			rec.Kind = KindBudget
			rec.Error = fmt.Sprintf("engine: run budget exhausted: %s", core.ReasonInjected)
			return
		}
	}
	rec.OK = oc.OK
	rec.Kind = oc.Kind
	rec.Data = oc.Data
	rec.Error = oc.Error
}

// shareableOutcome extracts the replayable part of a record: exactly the
// outcomes that are a pure function of document content. Per-attempt
// failures — reads, cancellation, budget trips, panics — return nil and are
// recomputed by every holder of the same bytes.
func shareableOutcome(rec Record) *docstore.Outcome {
	if rec.OK && rec.Kind == "" {
		return &docstore.Outcome{OK: true, Data: rec.Data}
	}
	switch rec.Kind {
	case KindParse, KindRun, KindRender, KindInvariant:
		return &docstore.Outcome{Kind: rec.Kind, Error: rec.Error}
	}
	return nil
}

// emptyOutcome precomputes the record a zero-match document produces, by
// replaying SchemaProgram.RunContext's post-extraction pipeline on the
// empty highlighting: consistency check, Fill, the optional instance
// self-check, and JSON rendering. Every step's output is independent of
// the document when the highlighting is empty (Fill and CheckInstance use
// the whole-region only through the regions of the instance, of which
// there are none), so one outcome stands in for every rejected document.
func emptyOutcome(prog *engine.SchemaProgram, docType string, selfCheck bool) (*docstore.Outcome, error) {
	cr := engine.Highlighting{}
	for _, fi := range prog.Schema.Fields() {
		cr.Add(fi.Color())
	}
	if err := cr.ConsistentWith(prog.Schema); err != nil {
		return &docstore.Outcome{Kind: KindRun,
			Error: fmt.Sprintf("engine: extraction result inconsistent with schema: %s", err)}, nil
	}
	probe, err := newDocument(docType, "")
	if err != nil {
		return nil, err
	}
	inst := engine.Fill(prog.Schema, cr, probe.WholeRegion())
	if selfCheck {
		if err := engine.CheckInstance(prog.Schema, inst, probe.WholeRegion()); err != nil {
			return &docstore.Outcome{Kind: KindInvariant, Error: err.Error()}, nil
		}
	}
	raw, err := export.JSONValue(inst)
	if err != nil {
		return &docstore.Outcome{Kind: KindRender, Error: err.Error()}, nil
	}
	return &docstore.Outcome{OK: true, Data: raw}, nil
}

// retryableRead reports whether a document-read failure is worth retrying:
// injected transient faults and timeout-flavored I/O errors are; permanent
// filesystem conditions (missing file, directory, permission) are not.
func retryableRead(err error) bool {
	if faults.IsTransient(err) {
		return true
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var timeout interface{ Timeout() bool }
	return errors.As(err, &timeout) && timeout.Timeout()
}

// classifyRunError maps a RunContext failure to a record kind using the
// context sentinels and the budget's trip reason.
func classifyRunError(err error, bud *core.Budget) string {
	switch {
	case errors.Is(err, context.Canceled):
		return KindCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return KindBudget
	}
	switch bud.Reason() {
	case core.ReasonCancelled:
		return KindCancelled
	case core.ReasonDeadline, core.ReasonCandidates, core.ReasonInjected:
		return KindBudget
	}
	return KindRun
}

// writeRecord marshals one record and writes it as an NDJSON line,
// re-checking json.Valid so the valid-output guarantee holds even if a
// payload slipped past the renderer.
func writeRecord(out io.Writer, rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil || !json.Valid(line) {
		rec.OK = false
		rec.Data = nil
		rec.Kind = KindRender
		rec.Error = fmt.Sprintf("batch: record for %s did not marshal to valid JSON", rec.Doc)
		if line, err = json.Marshal(rec); err != nil {
			return fmt.Errorf("batch: marshaling error record: %w", err)
		}
	}
	line = append(line, '\n')
	if _, err := out.Write(line); err != nil {
		return fmt.Errorf("batch: writing output: %w", err)
	}
	return nil
}

// LanguageFor returns the DSL of a document type ("text", "web", or
// "sheet"), for deserializing program artifacts outside a run — the
// server's program registry compiles catalog entries with it.
func LanguageFor(docType string) (engine.Language, error) { return languageFor(docType) }

// languageFor returns the DSL of a document type, for deserializing the
// program artifact.
func languageFor(docType string) (engine.Language, error) {
	switch docType {
	case "text":
		return textlang.NewDocument("").Language(), nil
	case "web":
		d, err := weblang.NewDocument("<html></html>")
		if err != nil {
			return nil, err
		}
		return d.Language(), nil
	case "sheet":
		return sheetlang.NewDocument(sheet.New(0, 0)).Language(), nil
	default:
		return nil, fmt.Errorf("batch: unknown document type %q (want text, web, or sheet)", docType)
	}
}

// newDocument opens one input document of the batch's type.
func newDocument(docType, src string) (engine.Document, error) {
	switch docType {
	case "text":
		return textlang.NewDocument(src), nil
	case "web":
		return weblang.NewDocument(src)
	case "sheet":
		return sheetlang.FromCSV(src)
	default:
		return nil, fmt.Errorf("batch: unknown document type %q", docType)
	}
}
