package batch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"flashextract/internal/batch"
	"flashextract/internal/bench"
	"flashextract/internal/bench/corpus"
)

// TestBatchCorpusDifferential is the acceptance check of the batch
// runtime: for each domain, a program learned on one corpus task is run
// over every corpus document of that domain, and the ordered output with
// workers=4 must be bit-identical to workers=1. Documents the program
// does not fit still produce deterministic records (results or structured
// errors), so the comparison covers the failure-isolation path too.
func TestBatchCorpusDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential is not short")
	}
	trainers := map[string]string{}
	domains := map[string][]batch.Source{}
	for _, task := range corpus.All() {
		if task.Source == "" {
			t.Fatalf("task %s has no raw source", task.Name)
		}
		if _, ok := trainers[task.Domain]; !ok {
			trainers[task.Domain] = task.Name
		}
		domains[task.Domain] = append(domains[task.Domain],
			batch.StringSource(task.Name, task.Source))
	}
	for domain, sources := range domains {
		domain, sources := domain, sources
		t.Run(domain, func(t *testing.T) {
			t.Parallel()
			prog, err := bench.LearnSchemaProgram(corpus.ByName(trainers[domain]), 3)
			if err != nil {
				t.Fatal(err)
			}
			run := func(workers int) string {
				var out bytes.Buffer
				sum, err := batch.Run(context.Background(), batch.Options{
					Program: prog, DocType: domain, Workers: workers, Ordered: true,
				}, sources, &out)
				if err != nil {
					t.Fatal(err)
				}
				if sum.Docs != len(sources) || sum.Skipped != 0 || sum.Cancelled {
					t.Fatalf("workers=%d summary = %+v", workers, sum)
				}
				return out.String()
			}
			serial := run(1)
			parallel := run(4)
			if serial != parallel {
				t.Errorf("workers=4 output differs from workers=1:\n--- serial ---\n%s--- parallel ---\n%s",
					serial, parallel)
			}
			for i, line := range strings.Split(strings.TrimSuffix(serial, "\n"), "\n") {
				if !json.Valid([]byte(line)) {
					t.Errorf("line %d is not valid JSON: %q", i, line)
				}
			}
		})
	}
}
