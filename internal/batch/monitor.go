// Monitor is the introspection seam of the batch runtime: a lock-light
// aggregation point the worker pool updates as it runs, read concurrently
// by the admin server's /healthz and /trace/last endpoints. All counters
// are atomics, so observing a live run never contends with it; the only
// lock guards the bounded ring of recently finished document traces.
package batch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flashextract/internal/trace"
)

// DefaultTraceRing bounds how many finished document span trees a Monitor
// retains for /trace/last when Options.TraceRing is zero.
const DefaultTraceRing = 32

// Monitor aggregates the live state of the batch runtime. One Monitor can
// outlive any single Run: a persistent server hands the same instance to
// every run it launches, so the counters accumulate across requests and
// /healthz reports the process's whole serving history. The zero value is
// ready to use; pass it via Options.Monitor and hand the same instance to
// the admin server. A nil *Monitor is a valid no-op receiver throughout,
// so the batch hot path carries no conditionals at call sites.
type Monitor struct {
	workersAlive     atomic.Int64
	submitted        atomic.Int64
	inFlight         atomic.Int64
	processed        atomic.Int64
	failed           atomic.Int64
	retries          atomic.Int64
	prefilterSkipped atomic.Int64
	dedupHits        atomic.Int64
	resumeHits       atomic.Int64
	shardDropped     atomic.Int64
	activeRuns       atomic.Int64 // Runs started and not yet drained
	runs             atomic.Int64 // total Runs ever started
	started          atomic.Int64 // unix nanos of the first Run start; 0 = never
	finished         atomic.Int64 // unix nanos of the last drain; 0 = running

	mu      sync.Mutex
	ring    []*trace.Span // finished document root spans, oldest first
	ringCap int
}

// Health is the point-in-time snapshot served by /healthz.
type Health struct {
	// Status is "idle" before the run starts, "running" while workers are
	// alive, and "done" after Run returns.
	Status string `json:"status"`
	// WorkersAlive is the number of worker goroutines currently running.
	WorkersAlive int64 `json:"workers_alive"`
	// Submitted is the number of documents handed to a worker.
	Submitted int64 `json:"submitted"`
	// InFlight is the number of documents being processed right now.
	InFlight int64 `json:"in_flight"`
	// Processed is the number of documents finished (results and errors).
	Processed int64 `json:"processed"`
	// Failed is the number of error records among them.
	Failed int64 `json:"failed"`
	// Retries is the number of retried document-read attempts.
	Retries int64 `json:"retries"`
	// PrefilterSkipped is the number of documents the static admission
	// test rejected (run short-circuited to the precomputed empty result).
	PrefilterSkipped int64 `json:"prefilter_skipped"`
	// DedupHits is the number of documents replayed from an identical
	// blob already extracted in this run.
	DedupHits int64 `json:"dedup_hits"`
	// ResumeHits is the number of documents replayed from the resume
	// manifest of an earlier run.
	ResumeHits int64 `json:"resume_hits"`
	// ShardDropped is the number of documents outside this process's
	// hash-range shard.
	ShardDropped int64 `json:"shard_dropped"`
	// Runs is the number of batch runs this monitor has seen — 1 for a
	// one-shot batch, one per scan/scan_batch request in the server.
	Runs int64 `json:"runs"`
	// UptimeSeconds is the time since the first run started (0 before it).
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// setRingCap sets the trace ring bound; values <= 0 select DefaultTraceRing.
func (m *Monitor) setRingCap(n int) {
	if m == nil {
		return
	}
	if n <= 0 {
		n = DefaultTraceRing
	}
	m.mu.Lock()
	m.ringCap = n
	m.mu.Unlock()
}

// runStarted marks the beginning of one batch run. Runs may overlap: the
// monitor counts active runs and reports "running" while any is live.
func (m *Monitor) runStarted(now time.Time) {
	if m == nil {
		return
	}
	m.activeRuns.Add(1)
	m.runs.Add(1)
	m.started.CompareAndSwap(0, now.UnixNano())
	m.finished.Store(0)
}

// runFinished marks the end of one batch run; the finish timestamp is
// recorded when the last overlapping run drains.
func (m *Monitor) runFinished(now time.Time) {
	if m == nil {
		return
	}
	if m.activeRuns.Add(-1) == 0 {
		m.finished.Store(now.UnixNano())
	}
}

// workerUp / workerDown track worker-pool liveness.
func (m *Monitor) workerUp() {
	if m != nil {
		m.workersAlive.Add(1)
	}
}

func (m *Monitor) workerDown() {
	if m != nil {
		m.workersAlive.Add(-1)
	}
}

// docSubmitted marks one document handed to a worker. Together with
// docStarted/docFinished it upholds the conservation invariant checked by
// ConservationError.
func (m *Monitor) docSubmitted() {
	if m != nil {
		m.submitted.Add(1)
	}
}

// docStarted marks one document entering processing.
func (m *Monitor) docStarted() {
	if m != nil {
		m.inFlight.Add(1)
	}
}

// addRetries records n retried document-read attempts.
func (m *Monitor) addRetries(n int64) {
	if m != nil {
		m.retries.Add(n)
	}
}

// addPrefilterSkipped / addDedupHits / addResumeHits / addShardDropped
// record the run-path shortcuts of the prefilter and docstore layers.
func (m *Monitor) addPrefilterSkipped(n int64) {
	if m != nil {
		m.prefilterSkipped.Add(n)
	}
}

func (m *Monitor) addDedupHits(n int64) {
	if m != nil {
		m.dedupHits.Add(n)
	}
}

func (m *Monitor) addResumeHits(n int64) {
	if m != nil {
		m.resumeHits.Add(n)
	}
}

func (m *Monitor) addShardDropped(n int64) {
	if m != nil {
		m.shardDropped.Add(n)
	}
}

// docFinished marks one document leaving processing and records its
// outcome and, when tracing was on, its finished root span.
func (m *Monitor) docFinished(ok bool, root *trace.Span) {
	if m == nil {
		return
	}
	m.inFlight.Add(-1)
	m.processed.Add(1)
	if !ok {
		m.failed.Add(1)
	}
	m.RecordTrace(root)
}

// RecordTrace inserts a finished document root span into the bounded
// trace ring (nil spans are ignored). The batch runtime calls this for
// every traced document; embedders running documents outside Run can use
// it to surface their own traces through /trace/last.
func (m *Monitor) RecordTrace(root *trace.Span) {
	if m == nil || root == nil {
		return
	}
	m.mu.Lock()
	if m.ringCap == 0 {
		m.ringCap = DefaultTraceRing
	}
	m.ring = append(m.ring, root)
	if over := len(m.ring) - m.ringCap; over > 0 {
		m.ring = append(m.ring[:0], m.ring[over:]...)
	}
	m.mu.Unlock()
}

// ConservationError checks the counter-conservation invariant of a
// drained monitor: every document handed to a worker was processed exactly
// once (processed == submitted) and nothing is left in flight. Run calls
// it after the results channel closes; while any other run sharing the
// monitor is still active the check is vacuous (documents are legitimately
// in flight) and nil is returned — the last run to drain judges the whole
// history. A nil error means the invariant holds; nil Monitors always
// hold it.
func (m *Monitor) ConservationError() error {
	if m == nil {
		return nil
	}
	if m.activeRuns.Load() > 0 {
		return nil
	}
	sub, inf, proc := m.submitted.Load(), m.inFlight.Load(), m.processed.Load()
	if inf != 0 || proc != sub {
		return fmt.Errorf("batch: counter conservation violated: submitted=%d processed=%d in_flight=%d", sub, proc, inf)
	}
	return nil
}

// Health returns the current liveness snapshot.
func (m *Monitor) Health() Health {
	if m == nil {
		return Health{Status: "idle"}
	}
	h := Health{
		WorkersAlive:     m.workersAlive.Load(),
		Submitted:        m.submitted.Load(),
		InFlight:         m.inFlight.Load(),
		Processed:        m.processed.Load(),
		Failed:           m.failed.Load(),
		Retries:          m.retries.Load(),
		PrefilterSkipped: m.prefilterSkipped.Load(),
		DedupHits:        m.dedupHits.Load(),
		ResumeHits:       m.resumeHits.Load(),
		ShardDropped:     m.shardDropped.Load(),
		Runs:             m.runs.Load(),
	}
	started := m.started.Load()
	finished := m.finished.Load()
	switch {
	case started == 0:
		h.Status = "idle"
	case m.activeRuns.Load() > 0 || finished == 0:
		h.Status = "running"
		h.UptimeSeconds = time.Since(time.Unix(0, started)).Seconds()
	default:
		h.Status = "done"
		h.UptimeSeconds = time.Unix(0, finished).Sub(time.Unix(0, started)).Seconds()
	}
	return h
}

// RecentTraces returns up to n of the most recently finished document span
// trees, newest first. n <= 0 means all retained traces.
func (m *Monitor) RecentTraces(n int) []*trace.Span {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := len(m.ring)
	if n > 0 && n < k {
		k = n
	}
	out := make([]*trace.Span, 0, k)
	for i := len(m.ring) - 1; i >= len(m.ring)-k; i-- {
		out = append(out, m.ring[i])
	}
	return out
}
