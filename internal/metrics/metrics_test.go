package metrics

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry()
	r.Count(CandidatesExplored, 3)
	r.Count(CandidatesExplored, 4)
	r.Count(CacheHits, 1)
	if got := r.Counter(CandidatesExplored); got != 7 {
		t.Fatalf("Counter = %d, want 7", got)
	}
	if got := r.Counter("never.recorded"); got != 0 {
		t.Fatalf("unrecorded counter = %d, want 0", got)
	}
	s := r.Snapshot()
	if s.Counters[CandidatesExplored] != 7 || s.Counters[CacheHits] != 1 {
		t.Fatalf("snapshot counters = %v", s.Counters)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	for _, v := range []float64{0.00005, 0.001, 0.001, 0.2, 100} {
		r.Observe(PhaseLearn, v)
	}
	h := r.Snapshot().Histograms[PhaseLearn]
	if h.Count != 5 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Min != 0.00005 || h.Max != 100 {
		t.Fatalf("min/max = %v/%v", h.Min, h.Max)
	}
	if want := h.Sum / 5; h.Mean != want {
		t.Fatalf("mean = %v, want %v", h.Mean, want)
	}
	// 0.00005 → 0.0001 bucket, the two 1ms samples → 0.0016, 0.2 → 0.4096,
	// and 100s overflows to +Inf.
	for bound, n := range map[string]int64{"0.0001": 1, "0.0016": 2, "0.4096": 1, "+Inf": 1} {
		if h.Buckets[bound] != n {
			t.Fatalf("bucket %s = %d, want %d (all: %v)", bound, h.Buckets[bound], n, h.Buckets)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Count(LearnCalls, 1)
				r.Observe(PhaseValidate, 0.001)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters[LearnCalls] != 8000 || s.Histograms[PhaseValidate].Count != 8000 {
		t.Fatalf("lost updates: %v / %v", s.Counters, s.Histograms[PhaseValidate])
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Count(CacheMisses, 2)
	r.Observe(PhaseLearn, 0.01)
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(out, &s); err != nil {
		t.Fatalf("registry JSON does not parse back: %v", err)
	}
	if s.Counters[CacheMisses] != 2 || s.Histograms[PhaseLearn].Count != 1 {
		t.Fatalf("round trip lost data: %s", out)
	}
}

func TestContextCarriage(t *testing.T) {
	if From(context.Background()) != Nop {
		t.Fatal("empty context should yield Nop")
	}
	if From(nil) != Nop { //nolint:staticcheck // nil-robustness is the contract
		t.Fatal("nil context should yield Nop")
	}
	r := NewRegistry()
	ctx := Into(context.Background(), r)
	From(ctx).Count(CacheHits, 5)
	if r.Counter(CacheHits) != 5 {
		t.Fatal("sink from context did not record into the registry")
	}
	// Nop must swallow records without effect.
	Nop.Count(CacheHits, 1)
	Nop.Observe(PhaseLearn, 1)
}
