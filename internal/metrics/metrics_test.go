package metrics

import (
	"context"
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry()
	r.Count(CandidatesExplored, 3)
	r.Count(CandidatesExplored, 4)
	r.Count(CacheHits, 1)
	if got := r.Counter(CandidatesExplored); got != 7 {
		t.Fatalf("Counter = %d, want 7", got)
	}
	if got := r.Counter("never.recorded"); got != 0 {
		t.Fatalf("unrecorded counter = %d, want 0", got)
	}
	s := r.Snapshot()
	if s.Counters[CandidatesExplored] != 7 || s.Counters[CacheHits] != 1 {
		t.Fatalf("snapshot counters = %v", s.Counters)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	for _, v := range []float64{0.00005, 0.001, 0.001, 0.2, 100} {
		r.Observe(PhaseLearn, v)
	}
	h := r.Snapshot().Histograms[PhaseLearn]
	if h.Count != 5 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Min != 0.00005 || h.Max != 100 {
		t.Fatalf("min/max = %v/%v", h.Min, h.Max)
	}
	if want := h.Sum / 5; h.Mean != want {
		t.Fatalf("mean = %v, want %v", h.Mean, want)
	}
	// 0.00005 → 0.0001 bucket, the two 1ms samples → 0.0016, 0.2 → 0.4096,
	// and 100s overflows to +Inf.
	byLe := map[string]int64{}
	for _, b := range h.Buckets {
		byLe[b.Le] = b.Count
	}
	for bound, n := range map[string]int64{"0.0001": 1, "0.0016": 2, "0.4096": 1, "+Inf": 1} {
		if byLe[bound] != n {
			t.Fatalf("bucket %s = %d, want %d (all: %v)", bound, byLe[bound], n, h.Buckets)
		}
	}
	// Every bucket is present, in ascending bound order with +Inf last,
	// regardless of which received samples — the stable order the renderer
	// and -metrics-json rely on.
	if len(h.Buckets) != len(bucketBounds)+1 {
		t.Fatalf("buckets = %d entries, want %d", len(h.Buckets), len(bucketBounds)+1)
	}
	for i, b := range h.Buckets {
		want := "+Inf"
		if i < len(bucketBounds) {
			want = formatBound(bucketBounds[i])
		}
		if b.Le != want {
			t.Fatalf("bucket %d bound = %s, want %s", i, b.Le, want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	// 100 samples spread across 1ms..100ms-ish buckets.
	for i := 0; i < 100; i++ {
		r.Observe(PhaseLearn, 0.001*float64(i+1))
	}
	h := r.Snapshot().Histograms[PhaseLearn]
	if h.P50 <= 0 || h.P90 < h.P50 || h.P99 < h.P90 {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", h.P50, h.P90, h.P99)
	}
	if h.P50 < h.Min || h.P99 > h.Max {
		t.Fatalf("quantiles escape [min,max]: p50=%v p99=%v min=%v max=%v", h.P50, h.P99, h.Min, h.Max)
	}
	// The true p50 is ~50ms; the estimate must land in the right bucket
	// region (between 25.6ms and 102.4ms bounds).
	if h.P50 < 0.0256 || h.P50 > 0.1024 {
		t.Fatalf("p50 = %v, want within (0.0256, 0.1024]", h.P50)
	}

	// Empty histogram: all quantiles zero.
	empty := NewRegistry()
	empty.Observe(PhaseValidate, 0) // count=1, all zeros
	h2 := empty.Snapshot().Histograms[PhaseValidate]
	if h2.P50 != 0 || h2.P99 != 0 {
		t.Fatalf("zero-sample quantiles = %v/%v", h2.P50, h2.P99)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Count(LearnCalls, 1)
				r.Observe(PhaseValidate, 0.001)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters[LearnCalls] != 8000 || s.Histograms[PhaseValidate].Count != 8000 {
		t.Fatalf("lost updates: %v / %v", s.Counters, s.Histograms[PhaseValidate])
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Count(CacheMisses, 2)
	r.Observe(PhaseLearn, 0.01)
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(out, &s); err != nil {
		t.Fatalf("registry JSON does not parse back: %v", err)
	}
	if s.Counters[CacheMisses] != 2 || s.Histograms[PhaseLearn].Count != 1 {
		t.Fatalf("round trip lost data: %s", out)
	}
}

func TestContextCarriage(t *testing.T) {
	if From(context.Background()) != Nop {
		t.Fatal("empty context should yield Nop")
	}
	if From(nil) != Nop { //nolint:staticcheck // nil-robustness is the contract
		t.Fatal("nil context should yield Nop")
	}
	r := NewRegistry()
	ctx := Into(context.Background(), r)
	From(ctx).Count(CacheHits, 5)
	if r.Counter(CacheHits) != 5 {
		t.Fatal("sink from context did not record into the registry")
	}
	// Nop must swallow records without effect.
	Nop.Count(CacheHits, 1)
	Nop.Observe(PhaseLearn, 1)
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Count(LearnCalls, 3)
	r.Count(BatchDocs, 10)
	r.Observe(PhaseLearn, 0.002)
	r.Observe(PhaseLearn, 0.2)
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	// Every non-comment line must match the exposition grammar.
	lineRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9][0-9eE+.\-]*$`)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !lineRe.MatchString(line) {
			t.Fatalf("line %q does not match the exposition format", line)
		}
	}
	for _, want := range []string{
		"# HELP synth_learn_calls Synthesis driver invocations.\n",
		"# TYPE synth_learn_calls counter\nsynth_learn_calls 3\n",
		"# HELP synth_phase_learn_seconds DSL learning phase latency in seconds.\n",
		"batch_docs_processed 10\n",
		"# TYPE synth_phase_learn_seconds histogram\n",
		`synth_phase_learn_seconds_bucket{le="+Inf"} 2`,
		"synth_phase_learn_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the 2ms sample is counted by every bound
	// from its own bucket (0.0064) up through +Inf.
	if !strings.Contains(out, `synth_phase_learn_seconds_bucket{le="0.0064"} 1`) ||
		!strings.Contains(out, `synth_phase_learn_seconds_bucket{le="0.1024"} 1`) {
		t.Fatalf("expected cumulative bucket values:\n%s", out)
	}
	// Deterministic output: a second render is byte-identical.
	var b2 strings.Builder
	if err := WritePrometheus(&b2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Fatalf("exposition output not deterministic")
	}
}

// TestPrometheusGoldenExposition pins the full byte output for a small
// snapshot: HELP before TYPE for every metric, sorted names, ascending
// buckets with +Inf last, and a generic HELP fallback for names outside
// the canonical set.
func TestPrometheusGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Count(LearnCalls, 3)
	r.Count(CacheHits, 2)
	r.Count("zz_custom", 1)
	r.Observe(PhaseLearn, 0.002)
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	const golden = `# HELP cache_hits Document evaluation cache probes that hit.
# TYPE cache_hits counter
cache_hits 2
# HELP synth_learn_calls Synthesis driver invocations.
# TYPE synth_learn_calls counter
synth_learn_calls 3
# HELP zz_custom flashextract counter metric.
# TYPE zz_custom counter
zz_custom 1
# HELP synth_phase_learn_seconds DSL learning phase latency in seconds.
# TYPE synth_phase_learn_seconds histogram
synth_phase_learn_seconds_bucket{le="0.0001"} 0
synth_phase_learn_seconds_bucket{le="0.0004"} 0
synth_phase_learn_seconds_bucket{le="0.0016"} 0
synth_phase_learn_seconds_bucket{le="0.0064"} 1
synth_phase_learn_seconds_bucket{le="0.0256"} 1
synth_phase_learn_seconds_bucket{le="0.1024"} 1
synth_phase_learn_seconds_bucket{le="0.4096"} 1
synth_phase_learn_seconds_bucket{le="1.6384"} 1
synth_phase_learn_seconds_bucket{le="6.5536"} 1
synth_phase_learn_seconds_bucket{le="26.2144"} 1
synth_phase_learn_seconds_bucket{le="+Inf"} 1
synth_phase_learn_seconds_sum 0.002
synth_phase_learn_seconds_count 1
`
	if got := b.String(); got != golden {
		t.Fatalf("exposition differs from golden:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestPrometheusHelpCoversCanonicalNames: every canonical name constant
// has a specific HELP line, so no first-party metric ships the generic
// fallback text.
func TestPrometheusHelpCoversCanonicalNames(t *testing.T) {
	for _, name := range []string{
		CandidatesExplored, CacheHits, CacheMisses, LearnerFanout, LearnCalls,
		PartialResults, PhaseLearn, PhaseValidate, IncrementalHits, IncrementalFallbacks,
		BatchDocs, BatchErrors, BatchDocSeconds, BatchRetries, BatchPrefilterSkipped,
		BatchDedupHits, BatchResumeHits, BatchShardDropped,
		ServeRequests, ServeErrors, ServeOverloaded, ServeReloads, ServeFrameSeconds,
		ServeExplainRequests, ServeExplainErrors,
	} {
		if _, ok := helpText[name]; !ok {
			t.Errorf("metric %q has no HELP text", name)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"batch_docs":   "batch_docs",
		"batch.docs":   "batch_docs",
		"9lives":       "_lives",
		"ok:colon":     "ok:colon",
		"sp ace/slash": "sp_ace_slash",
		"":             "_",
	} {
		if got := sanitizeName(in); got != want {
			t.Fatalf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
